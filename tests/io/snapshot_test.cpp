#include "io/graph_snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/io.h"
#include "io/container.h"
#include "io/dataset_snapshot.h"
#include "ml/dataset.h"
#include "stats/rng.h"

namespace sybil::io {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void expect_identical(const graph::TimestampedGraph& a,
                      const graph::TimestampedGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (graph::NodeId u = 0; u < a.node_count(); ++u) {
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (std::size_t i = 0; i < na.size(); ++i) {
      // Element-wise: same neighbor, same timestamp bits, same tie
      // strength, same insertion order.
      EXPECT_EQ(na[i].node, nb[i].node) << "node " << u << " slot " << i;
      EXPECT_EQ(na[i].created_at, nb[i].created_at);
      EXPECT_EQ(na[i].weak, nb[i].weak);
    }
  }
}

graph::TimestampedGraph tiny_graph() {
  graph::TimestampedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.5, /*weak=*/true);
  g.add_edge(0, 3, 3.0);
  return g;
}

TEST(GraphSnapshot, RoundTripsFullFidelity) {
  stats::Rng rng(7);
  graph::TimestampedGraph g = graph::osn_like_graph(
      {.nodes = 500, .mean_links = 8.0, .triadic_closure = 0.2,
       .pa_beta = 1.0},
      rng);
  // Weak ties and fresh timestamps on top of the generator output.
  g.add_edge(0, 499, 123.25, /*weak=*/true);

  const std::string path = temp_path("graph_rt.snap");
  save_graph_snapshot(g, path);
  expect_identical(g, load_graph_snapshot(path));
  std::remove(path.c_str());
}

TEST(GraphSnapshot, BinaryMatchesTextForSharedContent) {
  // The text edge list is lossy (no weak flags, no adjacency order), so
  // equivalence is on the shared content: edge set + timestamps.
  stats::Rng rng(8);
  const graph::TimestampedGraph g = graph::osn_like_graph(
      {.nodes = 300, .mean_links = 6.0, .triadic_closure = 0.1,
       .pa_beta = 1.0},
      rng);

  std::stringstream text;
  graph::save_edge_list(g, text);
  const graph::TimestampedGraph from_text = graph::load_edge_list(text);

  const std::string path = temp_path("graph_text_vs_bin.snap");
  save_graph_snapshot(g, path);
  const graph::TimestampedGraph from_binary = load_graph_snapshot(path);
  std::remove(path.c_str());

  ASSERT_EQ(from_text.node_count(), from_binary.node_count());
  ASSERT_EQ(from_text.edge_count(), from_binary.edge_count());
  for (graph::NodeId u = 0; u < from_binary.node_count(); ++u) {
    for (const graph::Neighbor& nb : from_binary.neighbors(u)) {
      ASSERT_TRUE(from_text.has_edge(u, nb.node));
      EXPECT_DOUBLE_EQ(*from_text.edge_time(u, nb.node), nb.created_at);
    }
  }
}

TEST(GraphSnapshot, SaveIsByteStable) {
  const std::string a = temp_path("graph_stable_a.snap");
  const std::string b = temp_path("graph_stable_b.snap");
  save_graph_snapshot(tiny_graph(), a);
  save_graph_snapshot(tiny_graph(), b);
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  const std::string ba((std::istreambuf_iterator<char>(fa)), {});
  const std::string bb((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_FALSE(ba.empty());
  EXPECT_EQ(ba, bb);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(GraphSnapshot, RejectsWrongPayloadKind) {
  const std::string path = temp_path("dataset_as_graph.snap");
  ml::Dataset data(2);
  const double row[] = {1.0, 2.0};
  data.add(row, ml::kSybilLabel);
  save_dataset_snapshot(data, path);
  try {
    load_graph_snapshot(path);
    FAIL() << "expected kWrongPayload";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrorCode::kWrongPayload);
  }
  std::remove(path.c_str());
}

TEST(CsrSnapshot, MmapAndStreamLoadsAgree) {
  stats::Rng rng(9);
  const graph::TimestampedGraph g = graph::osn_like_graph(
      {.nodes = 400, .mean_links = 10.0, .triadic_closure = 0.2,
       .pa_beta = 1.0},
      rng);
  const graph::CsrGraph csr = graph::CsrGraph::from(g);
  const std::string path = temp_path("csr_rt.snap");
  save_csr_snapshot(csr, path);

  const graph::CsrGraph via_mmap = load_csr_snapshot(path, true);
  const graph::CsrGraph via_read = load_csr_snapshot(path, false);
  for (const graph::CsrGraph* loaded : {&via_mmap, &via_read}) {
    ASSERT_EQ(loaded->node_count(), csr.node_count());
    ASSERT_EQ(loaded->edge_count(), csr.edge_count());
    for (graph::NodeId u = 0; u < csr.node_count(); ++u) {
      const auto expect = csr.neighbors(u);
      const auto got = loaded->neighbors(u);
      ASSERT_TRUE(std::equal(expect.begin(), expect.end(), got.begin(),
                             got.end()))
          << "node " << u;
    }
  }
  std::remove(path.c_str());
}

TEST(CsrSnapshot, ViewOutlivesLoadCall) {
  // The zero-copy view must keep its file mapping alive on its own.
  const std::string path = temp_path("csr_view.snap");
  save_csr_snapshot(graph::CsrGraph::from(tiny_graph()), path);
  graph::CsrGraph loaded = load_csr_snapshot(path, true);
  std::remove(path.c_str());  // unlink: the mapping must still be valid
  EXPECT_EQ(loaded.node_count(), 4u);
  EXPECT_EQ(loaded.degree(0), 2u);
  EXPECT_EQ(loaded.neighbors(1).size(), 2u);
  // Copies of a view share the backing.
  const graph::CsrGraph copy = loaded;
  EXPECT_EQ(copy.degree(0), 2u);
}

TEST(DatasetSnapshot, RoundTripsBitExact) {
  ml::Dataset data(3);
  const double r0[] = {1.5, -2.0, 1e-300};
  const double r1[] = {0.0, 4.25, -0.0};
  data.add(r0, ml::kSybilLabel);
  data.add(r1, ml::kNormalLabel);

  const std::string path = temp_path("dataset_rt.snap");
  save_dataset_snapshot(data, path);
  const ml::Dataset loaded = load_dataset_snapshot(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), data.size());
  ASSERT_EQ(loaded.feature_count(), data.feature_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(loaded.label(i), data.label(i));
    const auto expect = data.row(i);
    const auto got = loaded.row(i);
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(expect[j], got[j]);  // bit-exact, not approximately
    }
  }
}

TEST(DatasetSnapshot, RejectsBitFlippedLabel) {
  ml::Dataset data(1);
  const double row[] = {1.0};
  data.add(row, ml::kSybilLabel);
  const std::string path = temp_path("dataset_flip.snap");
  save_dataset_snapshot(data, path);

  // Flip one byte in the middle of the file and expect a checksum
  // rejection (never a dataset with a garbage label).
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), {});
  in.close();
  bytes[bytes.size() / 2] ^= 0x10;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  try {
    load_dataset_snapshot(path);
    FAIL() << "expected a typed SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrorCode::kChecksumMismatch);
  }
  std::remove(path.c_str());
}

// --- Golden files: the committed v1 binaries in tests/data/ ----------
//
// These freeze the on-disk format: if serialization drifts without a
// format-version bump, the byte comparison (and the CRCs) catch it.

std::string golden(const char* name) {
  return std::string(SYBIL_TEST_DATA_DIR) + "/" + name;
}

TEST(GoldenFiles, GraphV1LoadsAndMatches) {
  const graph::TimestampedGraph g = load_graph_snapshot(golden("graph_v1.snap"));
  expect_identical(g, tiny_graph());
}

TEST(GoldenFiles, GraphV1BytesAreFrozen) {
  const std::string fresh = temp_path("graph_golden_fresh.snap");
  save_graph_snapshot(tiny_graph(), fresh);
  std::ifstream fa(golden("graph_v1.snap"), std::ios::binary);
  std::ifstream fb(fresh, std::ios::binary);
  ASSERT_TRUE(fa.good());
  const std::string ba((std::istreambuf_iterator<char>(fa)), {});
  const std::string bb((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_EQ(ba, bb)
      << "on-disk graph format changed without a format-version bump";
  std::remove(fresh.c_str());
}

TEST(GoldenFiles, CsrV1Loads) {
  const graph::CsrGraph csr = load_csr_snapshot(golden("csr_v1.snap"));
  EXPECT_EQ(csr.node_count(), 4u);
  EXPECT_EQ(csr.edge_count(), 3u);
  EXPECT_TRUE(csr.has_edge(0, 1));
  EXPECT_TRUE(csr.has_edge(1, 2));
  EXPECT_TRUE(csr.has_edge(0, 3));
  EXPECT_FALSE(csr.has_edge(2, 3));
}

TEST(GoldenFiles, DatasetV1Loads) {
  const ml::Dataset data = load_dataset_snapshot(golden("dataset_v1.snap"));
  ASSERT_EQ(data.size(), 2u);
  ASSERT_EQ(data.feature_count(), 2u);
  EXPECT_EQ(data.label(0), ml::kSybilLabel);
  EXPECT_EQ(data.label(1), ml::kNormalLabel);
  EXPECT_EQ(data.row(0)[0], 1.5);
  EXPECT_EQ(data.row(0)[1], -2.0);
  EXPECT_EQ(data.row(1)[0], 0.25);
  EXPECT_EQ(data.row(1)[1], 4.0);
}

TEST(GoldenFiles, TruncatedGoldenIsRejected) {
  std::ifstream in(golden("graph_v1.snap"), std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string bytes((std::istreambuf_iterator<char>(in)), {});
  bytes.resize(bytes.size() / 2);
  std::vector<std::byte> image(bytes.size());
  std::memcpy(image.data(), bytes.data(), bytes.size());
  try {
    ContainerReader reader(std::move(image), PayloadKind::kTimestampedGraph);
    FAIL() << "expected kTruncated";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrorCode::kTruncated);
  }
}

}  // namespace
}  // namespace sybil::io
