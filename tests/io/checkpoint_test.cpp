#include "osn/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "io/error.h"
#include "osn/simulator.h"

namespace sybil::osn {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

GroundTruthConfig small_config() {
  GroundTruthConfig cfg;
  cfg.background_users = 600;
  cfg.subject_normals = 60;
  cfg.subject_sybils = 60;
  cfg.sim_hours = 36.0;
  cfg.seed = 1234;
  return cfg;
}

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

/// The full-state signature: a simulator serialized to checkpoint
/// bytes. Two simulators with equal signatures are indistinguishable to
/// every downstream consumer (same graph, ledgers, RNG stream, ...).
std::string signature(const GroundTruthSimulator& sim, const char* name) {
  const std::string path = temp_path(name);
  save_checkpoint(sim, path);
  std::string bytes = file_bytes(path);
  std::remove(path.c_str());
  return bytes;
}

// A hook-thrown exception standing in for SIGKILL: run() unwinds
// without any cleanup of the hour loop, exactly like a dead process,
// and the checkpoint on disk is all that survives.
struct SimulatedCrash {};

TEST(Checkpoint, KillAndResumeMatchesUninterruptedRun) {
  // Reference: one uninterrupted window.
  GroundTruthSimulator uninterrupted(small_config());
  uninterrupted.run();

  // Interrupted: checkpoint at hour 17, crash at hour 20.
  const std::string ckpt = temp_path("ckpt_kill.snap");
  {
    GroundTruthSimulator victim(small_config());
    victim.set_hour_hook([&](Time, Network&) {
      if (victim.hours_completed() == 17) save_checkpoint(victim, ckpt);
      if (victim.hours_completed() == 20) throw SimulatedCrash{};
    });
    EXPECT_THROW(victim.run(), SimulatedCrash);
  }

  auto resumed = load_checkpoint(ckpt);
  std::remove(ckpt.c_str());
  EXPECT_EQ(resumed->hours_completed(), 17u);
  EXPECT_FALSE(resumed->finished());
  resumed->run();
  EXPECT_TRUE(resumed->finished());
  EXPECT_EQ(resumed->hours_completed(), 36u);

  // Byte-identical full state: graph, ledgers, events, RNG stream,
  // pending heap — not just summary statistics.
  EXPECT_EQ(signature(*resumed, "sig_resumed.snap"),
            signature(uninterrupted, "sig_reference.snap"));
}

TEST(Checkpoint, SaveLoadSaveIsByteStable) {
  GroundTruthSimulator sim(small_config());
  const std::string first = temp_path("ckpt_stable1.snap");
  save_checkpoint(sim, first);
  const auto loaded = load_checkpoint(first);
  const std::string second = temp_path("ckpt_stable2.snap");
  save_checkpoint(*loaded, second);
  EXPECT_EQ(file_bytes(first), file_bytes(second));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(Checkpoint, RestoredMidRunStateIsFaithful) {
  const std::string ckpt = temp_path("ckpt_faithful.snap");
  GroundTruthSimulator sim(small_config());
  sim.set_hour_hook([&](Time, Network&) {
    if (sim.hours_completed() == 10) save_checkpoint(sim, ckpt);
  });
  sim.run();

  const auto restored = load_checkpoint(ckpt);
  std::remove(ckpt.c_str());
  EXPECT_EQ(restored->hours_completed(), 10u);
  EXPECT_EQ(restored->network().account_count(),
            sim.network().account_count());
  EXPECT_EQ(restored->subject_sybils(), sim.subject_sybils());
  EXPECT_EQ(restored->subject_normals(), sim.subject_normals());
  // Mid-window state: some friendships exist, requests are in flight.
  EXPECT_GT(restored->network().graph().edge_count(), 0u);
}

TEST(Checkpoint, FinishedSimulatorRefusesSecondRun) {
  const std::string ckpt = temp_path("ckpt_finished.snap");
  GroundTruthSimulator sim(small_config());
  sim.run();
  save_checkpoint(sim, ckpt);
  const auto restored = load_checkpoint(ckpt);
  std::remove(ckpt.c_str());
  EXPECT_TRUE(restored->finished());
  EXPECT_THROW(restored->run(), std::logic_error);
}

TEST(Checkpoint, RejectsBitFlippedFile) {
  const std::string ckpt = temp_path("ckpt_corrupt.snap");
  GroundTruthSimulator sim(small_config());
  save_checkpoint(sim, ckpt);

  std::string bytes = file_bytes(ckpt);
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x08);
  std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  try {
    load_checkpoint(ckpt);
    FAIL() << "expected a typed SnapshotError";
  } catch (const io::SnapshotError& e) {
    EXPECT_EQ(e.code(), io::SnapshotErrorCode::kChecksumMismatch);
  }
  std::remove(ckpt.c_str());
}

TEST(Checkpoint, MissingFileIsOpenFailed) {
  try {
    load_checkpoint("/nonexistent/sybil.ckpt");
    FAIL() << "expected kOpenFailed";
  } catch (const io::SnapshotError& e) {
    EXPECT_EQ(e.code(), io::SnapshotErrorCode::kOpenFailed);
  }
}

}  // namespace
}  // namespace sybil::osn
