// Round trip of the bench DefenseScenario container (the storage behind
// bench_defense_evaluation --save-graph / --load-graph).
#include "runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "graph/generators.h"
#include "io/error.h"
#include "io/graph_snapshot.h"
#include "stats/rng.h"

namespace sybil::bench {
namespace {

TEST(ScenarioSnapshot, RoundTripsEverything) {
  const DefenseScenario original = synthetic_scenario(400, 60, 20, 5);
  const std::string path = ::testing::TempDir() + "/scenario_rt.snap";
  save_scenario(original, path);
  const DefenseScenario loaded = load_scenario(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.is_sybil, original.is_sybil);
  EXPECT_EQ(loaded.honest_seeds, original.honest_seeds);
  EXPECT_EQ(loaded.eval_sample, original.eval_sample);
  ASSERT_EQ(loaded.g.node_count(), original.g.node_count());
  ASSERT_EQ(loaded.g.edge_count(), original.g.edge_count());
  const auto eo = original.g.offsets();
  const auto lo = loaded.g.offsets();
  ASSERT_TRUE(std::equal(eo.begin(), eo.end(), lo.begin(), lo.end()));
  const auto et = original.g.targets();
  const auto lt = loaded.g.targets();
  ASSERT_TRUE(std::equal(et.begin(), et.end(), lt.begin(), lt.end()));
}

TEST(ScenarioSnapshot, LoadedGraphSurvivesUnlink) {
  const DefenseScenario original = synthetic_scenario(200, 30, 10, 6);
  const std::string path = ::testing::TempDir() + "/scenario_unlink.snap";
  save_scenario(original, path);
  const DefenseScenario loaded = load_scenario(path);
  std::remove(path.c_str());
  // The CSR view keeps its backing alive; traversal still works.
  std::uint64_t degree_sum = 0;
  for (graph::NodeId u = 0; u < loaded.g.node_count(); ++u) {
    degree_sum += loaded.g.degree(u);
  }
  EXPECT_EQ(degree_sum, 2 * loaded.g.edge_count());
}

TEST(ScenarioSnapshot, RejectsNonScenarioFile) {
  const std::string path = ::testing::TempDir() + "/scenario_kind.snap";
  // A graph snapshot is a valid container of the WRONG payload kind.
  stats::Rng rng(3);
  const auto g = graph::osn_like_graph(
      {.nodes = 50, .mean_links = 4.0, .triadic_closure = 0.1,
       .pa_beta = 1.0},
      rng);
  io::save_graph_snapshot(g, path);
  try {
    load_scenario(path);
    FAIL() << "expected kWrongPayload";
  } catch (const io::SnapshotError& e) {
    EXPECT_EQ(e.code(), io::SnapshotErrorCode::kWrongPayload);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sybil::bench
