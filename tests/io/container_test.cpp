#include "io/container.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/metrics/metrics.h"

namespace sybil::io {
namespace {

std::vector<std::byte> payload_of(std::initializer_list<std::uint8_t> v) {
  std::vector<std::byte> out;
  for (auto b : v) out.push_back(std::byte{b});
  return out;
}

/// A small two-section container image used by every corruption test.
std::vector<std::byte> sample_image() {
  ContainerWriter writer(PayloadKind::kDataset);
  writer.add_section(1, payload_of({1, 2, 3, 4, 5}));
  const std::vector<std::uint64_t> values = {42, 7, 0xdeadbeef};
  writer.add_pod_section<std::uint64_t>(2, values);
  return writer.serialize();
}

SnapshotErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const SnapshotError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a SnapshotError";
  return SnapshotErrorCode::kOpenFailed;
}

SnapshotErrorCode open_code(std::vector<std::byte> image) {
  return code_of([image = std::move(image)]() mutable {
    ContainerReader reader(std::move(image), PayloadKind::kDataset);
  });
}

TEST(Container, RoundTripsSectionsInMemory) {
  const ContainerReader reader(sample_image(), PayloadKind::kDataset);
  EXPECT_EQ(reader.format_version(), kFormatVersion);
  EXPECT_TRUE(reader.has_section(1));
  EXPECT_TRUE(reader.has_section(2));
  EXPECT_FALSE(reader.has_section(3));

  const auto raw = reader.section(1);
  ASSERT_EQ(raw.size(), 5u);
  EXPECT_EQ(std::to_integer<int>(raw[4]), 5);

  const auto typed = reader.pod_section<std::uint64_t>(2);
  ASSERT_EQ(typed.size(), 3u);
  EXPECT_EQ(typed[2], 0xdeadbeefu);
}

TEST(Container, CommitThenOpenBothIoPaths) {
  const std::string path = ::testing::TempDir() + "/container_rt.snap";
  ContainerWriter writer(PayloadKind::kDataset);
  writer.add_section(9, payload_of({0xab, 0xcd}));
  writer.commit(path);

  for (const bool mmap : {true, false}) {
    const ContainerReader reader(path, PayloadKind::kDataset, mmap);
    const auto bytes = reader.section(9);
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(std::to_integer<int>(bytes[0]), 0xab);
  }
  // No temp file left behind after a successful commit.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(Container, CommitReplacesExistingFileAtomically) {
  const std::string path = ::testing::TempDir() + "/container_replace.snap";
  ContainerWriter first(PayloadKind::kDataset);
  first.add_section(1, payload_of({1}));
  first.commit(path);
  ContainerWriter second(PayloadKind::kDataset);
  second.add_section(1, payload_of({2, 2}));
  second.commit(path);
  const ContainerReader reader(path, PayloadKind::kDataset);
  EXPECT_EQ(reader.section(1).size(), 2u);
  std::remove(path.c_str());
}

TEST(Container, MissingFileIsOpenFailed) {
  EXPECT_EQ(code_of([] {
              ContainerReader r("/nonexistent/sybil.snap",
                                PayloadKind::kDataset);
            }),
            SnapshotErrorCode::kOpenFailed);
}

TEST(Container, RejectsTruncationAtEveryBoundary) {
  const auto image = sample_image();
  // Shorter than the header, mid-table, mid-payload, one byte short.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{16}, std::size_t{40}, image.size() - 1}) {
    std::vector<std::byte> cut(image.begin(), image.begin() + keep);
    EXPECT_EQ(open_code(std::move(cut)), SnapshotErrorCode::kTruncated)
        << "kept " << keep << " bytes";
  }
}

TEST(Container, RejectsBitFlipInPayload) {
  auto image = sample_image();
  image.back() ^= std::byte{0x01};  // last payload byte
  EXPECT_EQ(open_code(std::move(image)),
            SnapshotErrorCode::kChecksumMismatch);
}

TEST(Container, RejectsBitFlipInSectionTable) {
  auto image = sample_image();
  image[32] ^= std::byte{0x40};  // first table entry's id field
  EXPECT_EQ(open_code(std::move(image)),
            SnapshotErrorCode::kChecksumMismatch);
}

TEST(Container, RejectsWrongMagic) {
  auto image = sample_image();
  image[0] = std::byte{'X'};
  EXPECT_EQ(open_code(std::move(image)), SnapshotErrorCode::kBadMagic);
}

TEST(Container, RejectsForeignEndianness) {
  auto image = sample_image();
  std::swap(image[4], image[5]);  // endian tag reads 0x0201
  EXPECT_EQ(open_code(std::move(image)), SnapshotErrorCode::kBadEndianness);
}

TEST(Container, RejectsFutureFormatVersion) {
  auto image = sample_image();
  const std::uint32_t future = kFormatVersion + 1;
  std::memcpy(image.data() + 8, &future, sizeof(future));
  EXPECT_EQ(open_code(std::move(image)),
            SnapshotErrorCode::kUnsupportedVersion);
}

TEST(Container, RejectsWrongPayloadKind) {
  EXPECT_EQ(code_of([] {
              ContainerReader r(sample_image(), PayloadKind::kCsrGraph);
            }),
            SnapshotErrorCode::kWrongPayload);
}

TEST(Container, RejectsDeclaredSizeMismatch) {
  auto image = sample_image();
  image.push_back(std::byte{0});  // grow past the declared file_size
  EXPECT_EQ(open_code(std::move(image)), SnapshotErrorCode::kTruncated);
}

TEST(Container, MissingSectionIsTypedError) {
  const ContainerReader reader(sample_image(), PayloadKind::kDataset);
  EXPECT_EQ(code_of([&] { reader.section(77); }),
            SnapshotErrorCode::kMalformedSection);
}

TEST(Container, PodSectionRejectsLengthMismatch) {
  const ContainerReader reader(sample_image(), PayloadKind::kDataset);
  // Section 1 holds 5 bytes: not a multiple of sizeof(uint64_t).
  EXPECT_EQ(code_of([&] { reader.pod_section<std::uint64_t>(1); }),
            SnapshotErrorCode::kMalformedSection);
}

TEST(Container, WriterRejectsDuplicateSectionId) {
  ContainerWriter writer(PayloadKind::kDataset);
  writer.add_section(1, payload_of({1}));
  EXPECT_EQ(code_of([&] { writer.add_section(1, payload_of({2})); }),
            SnapshotErrorCode::kFormatViolation);
}

TEST(Container, ByteReaderRejectsOverrun) {
  const auto bytes = payload_of({1, 2, 3});
  ByteReader r(bytes);
  EXPECT_EQ(r.read<std::uint8_t>(), 1);
  EXPECT_EQ(code_of([&] { r.read<std::uint32_t>(); }),
            SnapshotErrorCode::kMalformedSection);
}

TEST(Container, SerializeIsDeterministic) {
  EXPECT_EQ(sample_image(), sample_image());
}

#if defined(__unix__) || defined(__APPLE__)
/// Durability-knob regression: SyncMode::kEnv commits fsync the image
/// and the parent directory unless SYBIL_IO_FSYNC opts out, and
/// SyncMode::kAlways ignores the knob. Counted via the io.fsyncs
/// metric (two per synced commit: file + directory).
TEST(Container, FsyncKnobGovernsEnvSyncCommits) {
  const char* prior = std::getenv("SYBIL_IO_FSYNC");
  const std::string saved = prior == nullptr ? "" : prior;
  const std::string path =
      ::testing::TempDir() + "/sybil_container_fsync.sybs";

  const auto commits_with = [&](const char* knob, SyncMode sync) {
#if SYBIL_METRICS_COMPILED
    if (knob == nullptr) {
      ::unsetenv("SYBIL_IO_FSYNC");
    } else {
      ::setenv("SYBIL_IO_FSYNC", knob, 1);
    }
    auto& fsyncs = core::metrics::MetricsRegistry::instance().counter("io.fsyncs");
    const std::uint64_t before = fsyncs.value();
    ContainerWriter writer(PayloadKind::kDataset);
    writer.add_section(1, payload_of({1, 2, 3}));
    writer.commit(path, sync);
    return fsyncs.value() - before;
#else
    (void)knob;
    (void)sync;
    return std::uint64_t{2};  // nothing to observe without metrics
#endif
  };

#if SYBIL_METRICS_COMPILED
  auto& registry = core::metrics::MetricsRegistry::instance();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
#endif
  EXPECT_EQ(commits_with(nullptr, SyncMode::kEnv), 2u);  // durable default
  EXPECT_EQ(commits_with("1", SyncMode::kEnv), 2u);
  EXPECT_EQ(commits_with("0", SyncMode::kEnv), 0u);   // knob opts out
  EXPECT_EQ(commits_with("off", SyncMode::kEnv), 0u);
  EXPECT_EQ(commits_with("0", SyncMode::kAlways), 2u);  // knob ignored
  EXPECT_EQ(commits_with("1", SyncMode::kNever), 0u);

#if SYBIL_METRICS_COMPILED
  registry.set_enabled(was_enabled);
#endif
  if (prior == nullptr) {
    ::unsetenv("SYBIL_IO_FSYNC");
  } else {
    ::setenv("SYBIL_IO_FSYNC", saved.c_str(), 1);
  }
  std::remove(path.c_str());
}
#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace sybil::io
