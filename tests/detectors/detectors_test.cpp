// Tests for the community-based Sybil defenses on the classic synthetic
// setting they were designed for: a fast-mixing honest region plus an
// injected tight-knit Sybil region behind a small attack-edge cut.
#include <gtest/gtest.h>

#include "detectors/community.h"
#include "detectors/evaluation.h"
#include "detectors/sybilguard.h"
#include "detectors/sybilinfer.h"
#include "detectors/sybillimit.h"
#include "detectors/sybilrank.h"
#include "detectors/sumup.h"
#include "graph/generators.h"

namespace sybil::detect {
namespace {

using graph::CsrGraph;
using graph::NodeId;

struct Synthetic {
  CsrGraph g;
  NodeId honest_count;
  NodeId sybil_count;
  std::vector<bool> is_sybil;

  static Synthetic make(std::uint64_t seed, NodeId honest = 800,
                        NodeId sybils = 120, double internal_p = 0.2,
                        std::uint64_t attack_edges = 15) {
    stats::Rng rng(seed);
    const auto base = graph::barabasi_albert(honest, 4, rng);
    const auto combined = graph::inject_sybil_community(
        base, sybils, internal_p, attack_edges, rng);
    Synthetic s;
    s.g = CsrGraph::from(combined);
    s.honest_count = honest;
    s.sybil_count = sybils;
    s.is_sybil.assign(honest + sybils, false);
    for (NodeId v = honest; v < honest + sybils; ++v) s.is_sybil[v] = true;
    return s;
  }
};

TEST(SybilGuard, HonestVerifierAcceptsHonestRejectsSybil) {
  // Route length must stay well below the graph size: if the verifier's
  // routes blanket the whole graph, everything intersects trivially.
  const Synthetic s = Synthetic::make(1, /*honest=*/2000, /*sybils=*/150,
                                      /*internal_p=*/0.3,
                                      /*attack_edges=*/6);
  SybilGuardParams params;
  params.route_length = 15;
  const SybilGuard guard(s.g, params);
  const NodeId verifier = 1500;  // a late, ordinary-degree honest node

  double honest_score = 0.0, sybil_score = 0.0;
  const int samples = 20;
  for (int i = 0; i < samples; ++i) {
    honest_score += guard.intersection_score(verifier, 100 + i * 53);
    sybil_score += guard.intersection_score(
        verifier, s.honest_count + static_cast<NodeId>(i * 5));
  }
  EXPECT_GT(honest_score / samples, 2.0 * sybil_score / samples);
}

TEST(SybilGuard, DefaultRouteLengthScalesWithGraph) {
  const Synthetic s = Synthetic::make(2);
  const SybilGuard guard(s.g);
  // sqrt(n log n) for n = 920 ≈ 79.
  EXPECT_GT(guard.route_length(), 60u);
  EXPECT_LT(guard.route_length(), 110u);
}

TEST(SybilGuard, IsolatedSuspectScoresZero) {
  graph::TimestampedGraph tg(3);
  tg.add_edge(0, 1, 0);
  const CsrGraph g = CsrGraph::from(tg);
  const SybilGuard guard(g, {.route_length = 4});
  EXPECT_DOUBLE_EQ(guard.intersection_score(0, 2), 0.0);
}

TEST(SybilLimit, TailIntersectionSeparates) {
  const Synthetic s = Synthetic::make(3);
  SybilLimitParams params;
  params.routes = 200;
  params.route_length = 12;
  const SybilLimit limit(s.g, params);
  auto verifier = limit.make_verifier(5);
  double honest_score = 0.0, sybil_score = 0.0;
  const int samples = 20;
  for (int i = 0; i < samples; ++i) {
    honest_score += verifier.tail_score(20 + i * 11);
    sybil_score += verifier.tail_score(
        s.honest_count + static_cast<NodeId>(i * 4));
  }
  EXPECT_GT(honest_score, 1.5 * sybil_score);
}

TEST(SybilLimit, BalanceConditionCapsAcceptances) {
  const Synthetic s = Synthetic::make(4);
  SybilLimitParams params;
  params.routes = 150;
  params.route_length = 12;
  params.balance_floor = 1;
  params.balance_alpha = 1.0;
  const SybilLimit limit(s.g, params);
  auto verifier = limit.make_verifier(0);
  std::size_t honest_accepted = 0, sybil_accepted = 0;
  for (NodeId v = 1; v < 200; ++v) {
    honest_accepted += verifier.accepts(v);
  }
  for (NodeId v = s.honest_count; v < s.honest_count + s.sybil_count; ++v) {
    sybil_accepted += verifier.accepts(v);
  }
  // Honest nodes are mostly admitted; the Sybil region is rate-limited
  // by its few attack-edge tails.
  EXPECT_GT(honest_accepted, 120u);
  EXPECT_LT(sybil_accepted, s.sybil_count / 2);
}

TEST(SybilLimit, TailsAreDeterministicPerNode) {
  const Synthetic s = Synthetic::make(5);
  const SybilLimit limit(s.g, {.routes = 50, .route_length = 10});
  EXPECT_EQ(limit.tails_of(7), limit.tails_of(7));
  EXPECT_NE(limit.tails_of(7), limit.tails_of(8));
}

TEST(SybilInfer, ScoresSeparateRegions) {
  const Synthetic s = Synthetic::make(6);
  SybilInferParams params;
  params.walks_per_seed = 50;
  const SybilInfer infer(s.g, params);
  std::vector<NodeId> seeds;
  for (NodeId v = 0; v < 40; ++v) seeds.push_back(v * 7 % s.honest_count);
  const auto scores = infer.scores(seeds);
  const auto metrics = evaluate_scores(scores, s.is_sybil);
  EXPECT_GT(metrics.auc, 0.8);
}

TEST(SybilInfer, RequiresSeeds) {
  const Synthetic s = Synthetic::make(7);
  const SybilInfer infer(s.g);
  EXPECT_THROW(infer.scores({}), std::invalid_argument);
}

TEST(SybilRank, RanksSybilsLast) {
  const Synthetic s = Synthetic::make(8);
  std::vector<NodeId> seeds = {1, 50, 100, 200, 400};
  const auto scores = sybilrank_scores(s.g, seeds);
  const auto metrics = evaluate_scores(scores, s.is_sybil);
  EXPECT_GT(metrics.auc, 0.9);
  EXPECT_GT(metrics.sybil_rejection, 0.8);
  EXPECT_LE(metrics.honest_rejection, 0.06);
}

TEST(SybilRank, RequiresSeeds) {
  const Synthetic s = Synthetic::make(9);
  EXPECT_THROW(sybilrank_scores(s.g, {}), std::invalid_argument);
}

TEST(SumUp, SybilVotesCappedByCut) {
  const Synthetic s = Synthetic::make(10, 600, 100, 0.25, 8);
  // All Sybils vote; far fewer than 100 votes can cross the 8-edge cut.
  std::vector<NodeId> voters;
  for (NodeId v = s.honest_count; v < s.honest_count + s.sybil_count; ++v) {
    voters.push_back(v);
  }
  const auto result = sumup_collect(s.g, 0, voters, {.c_max = 100});
  EXPECT_LE(result.accepted_count, 8u + 4u);  // cut + envelope slack
  EXPECT_LT(result.accepted_count, voters.size() / 4);
}

TEST(SumUp, HonestVotesMostlyCollected) {
  const Synthetic s = Synthetic::make(11, 600, 80, 0.25, 8);
  std::vector<NodeId> voters;
  for (NodeId v = 1; v < 201; ++v) voters.push_back(v);
  const auto result = sumup_collect(s.g, 0, voters, {.c_max = 200});
  EXPECT_GT(result.accepted_count, 150u);
}

TEST(SumUp, Errors) {
  const Synthetic s = Synthetic::make(12, 100, 10, 0.3, 4);
  EXPECT_THROW(sumup_collect(s.g, 5000, {1}, {}), std::out_of_range);
  EXPECT_THROW(sumup_collect(s.g, 0, {9999}, {}), std::out_of_range);
}

TEST(Community, ExpansionRanksSybilsLate) {
  const Synthetic s = Synthetic::make(13);
  const auto ranking = community_expand(s.g, 0);
  // Average rank of honest nodes must be far ahead of Sybil ranks.
  double honest_rank = 0.0, sybil_rank = 0.0;
  std::size_t hn = 0, sn = 0;
  for (NodeId v = 0; v < s.g.node_count(); ++v) {
    if (ranking.rank[v] == CommunityRanking::kUnranked) continue;
    if (s.is_sybil[v]) {
      sybil_rank += ranking.rank[v];
      ++sn;
    } else {
      honest_rank += ranking.rank[v];
      ++hn;
    }
  }
  ASSERT_GT(hn, 0u);
  ASSERT_GT(sn, 0u);
  EXPECT_LT(honest_rank / hn, 0.7 * (sybil_rank / sn));
}

TEST(Community, MaxSizeRespected) {
  const Synthetic s = Synthetic::make(14);
  const auto ranking = community_expand(s.g, 0, {.max_size = 50});
  EXPECT_EQ(ranking.order.size(), 50u);
  EXPECT_EQ(ranking.conductance_trace.size(), 50u);
  EXPECT_EQ(ranking.order[0], 0u);
  EXPECT_THROW(community_expand(s.g, 99999), std::out_of_range);
}

TEST(Evaluation, AucOfPerfectAndRandomScores) {
  std::vector<bool> is_sybil = {false, false, false, true, true, true};
  // Higher = more honest → perfect separation.
  const std::vector<double> perfect = {1.0, 0.9, 0.8, 0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(evaluate_scores(perfect, is_sybil).auc, 1.0);
  const std::vector<double> inverted = {0.1, 0.2, 0.3, 0.9, 1.0, 0.8};
  EXPECT_DOUBLE_EQ(evaluate_scores(inverted, is_sybil).auc, 0.0);
  const std::vector<double> all_same = {0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(evaluate_scores(all_same, is_sybil).auc, 0.5);
}

TEST(Evaluation, SubsetRestriction) {
  std::vector<bool> is_sybil = {false, true, false, true};
  const std::vector<double> scores = {1.0, 0.0, 0.0, 1.0};
  const std::vector<NodeId> subset = {0, 1};
  EXPECT_DOUBLE_EQ(evaluate_scores(scores, is_sybil, subset).auc, 1.0);
}

TEST(Evaluation, Errors) {
  EXPECT_THROW(
      evaluate_scores(std::vector<double>{1.0}, std::vector<bool>{true, false}),
      std::invalid_argument);
  EXPECT_THROW(evaluate_scores(std::vector<double>{1.0, 2.0},
                               std::vector<bool>{true, true}),
               std::invalid_argument);
}

TEST(Evaluation, DecisionsMetrics) {
  const std::vector<NodeId> nodes = {0, 1, 2, 3};
  const std::vector<bool> accepted = {true, false, true, false};
  std::vector<bool> is_sybil = {false, true, false, true};
  const auto m = evaluate_decisions(nodes, accepted, is_sybil);
  EXPECT_DOUBLE_EQ(m.sybil_rejection, 1.0);
  EXPECT_DOUBLE_EQ(m.honest_rejection, 0.0);
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
}

}  // namespace
}  // namespace sybil::detect
