// Golden test for the SybilDefense registry: every registered defense,
// created through DefenseRegistry with the same tuning, must produce
// scores identical to the direct pre-refactor call path on a fixed
// 500-node synthetic graph — and identical regardless of SYBIL_THREADS.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/parallel.h"
#include "detectors/clustering_ranker.h"
#include "detectors/community.h"
#include "detectors/defense.h"
#include "detectors/sumup.h"
#include "detectors/sybilguard.h"
#include "detectors/sybilinfer.h"
#include "detectors/sybilinfer_mcmc.h"
#include "detectors/sybillimit.h"
#include "detectors/sybilrank.h"
#include "graph/clustering.h"
#include "graph/generators.h"

namespace sybil::detect {
namespace {

using graph::CsrGraph;
using graph::NodeId;

constexpr NodeId kHonest = 420;
constexpr NodeId kSybils = 80;  // 500 nodes total

/// The fixed golden graph: honest BA core + injected Sybil community.
const CsrGraph& golden_graph() {
  static const CsrGraph g = [] {
    stats::Rng rng(7);
    const auto base = graph::barabasi_albert(kHonest, 4, rng);
    const auto combined =
        graph::inject_sybil_community(base, kSybils, 0.25, 10, rng);
    return CsrGraph::from(combined);
  }();
  return g;
}

std::vector<NodeId> golden_seeds() { return {5, 17, 120, 301}; }

/// Small, fast tuning shared by the registry path and the golden path.
DefenseTuning golden_tuning() {
  DefenseTuning t;
  t.seed = 99;
  t.route_length = 12;
  t.max_routes_per_node = 8;
  t.r_factor = 1.0;
  t.walks_per_seed = 50;
  t.mcmc_burn_in_sweeps = 2;
  t.mcmc_sample_sweeps = 3;
  return t;
}

std::vector<double> registry_scores(const std::string& name) {
  const auto defense = DefenseRegistry::create(name, golden_tuning());
  EXPECT_EQ(defense->name(), name);
  DefenseContext ctx;
  ctx.honest_seeds = golden_seeds();
  return defense->score(golden_graph(), ctx);
}

void expect_identical(const std::vector<double>& got,
                      const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    // Exact equality: the refactor must not perturb a single bit.
    ASSERT_EQ(got[v], want[v]) << "node " << v;
  }
}

TEST(DefenseRegistry, ListsAllEightDefensesInPresentationOrder) {
  const std::vector<std::string> expected = {
      "sybilguard", "sybillimit", "sybilinfer", "sybilinfer-mcmc",
      "sumup",      "sybilrank",  "community",  "clustering"};
  EXPECT_EQ(DefenseRegistry::names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(DefenseRegistry::contains(name)) << name;
  }
  EXPECT_FALSE(DefenseRegistry::contains("no-such-defense"));
  EXPECT_THROW(DefenseRegistry::create("no-such-defense"),
               std::out_of_range);
}

TEST(DefenseRegistry, SybilGuardMatchesDirectPath) {
  const DefenseTuning t = golden_tuning();
  SybilGuardParams params;
  params.seed = t.seed;
  params.route_length = t.route_length;
  params.max_routes_per_node = t.max_routes_per_node;
  const SybilGuard guard(golden_graph(), params);
  const NodeId verifier = golden_seeds().front();
  std::vector<double> want(golden_graph().node_count(), 0.0);
  for (NodeId v = 0; v < golden_graph().node_count(); ++v) {
    want[v] = guard.intersection_score(verifier, v);
  }
  expect_identical(registry_scores("sybilguard"), want);
}

TEST(DefenseRegistry, SybilLimitMatchesDirectPath) {
  const DefenseTuning t = golden_tuning();
  SybilLimitParams params;
  params.seed = t.seed;
  params.route_length = t.route_length;
  params.r_factor = t.r_factor;
  const SybilLimit limit(golden_graph(), params);
  const auto verifier = limit.make_verifier(golden_seeds().front());
  std::vector<double> want(golden_graph().node_count(), 0.0);
  for (NodeId v = 0; v < golden_graph().node_count(); ++v) {
    want[v] = verifier.tail_score(v);
  }
  expect_identical(registry_scores("sybillimit"), want);
}

TEST(DefenseRegistry, SybilInferMatchesDirectPath) {
  const DefenseTuning t = golden_tuning();
  SybilInferParams params;
  params.seed = t.seed;
  params.walks_per_seed = t.walks_per_seed;
  const SybilInfer infer(golden_graph(), params);
  expect_identical(registry_scores("sybilinfer"),
                   infer.scores(golden_seeds()));
}

TEST(DefenseRegistry, SybilInferMcmcMatchesDirectPath) {
  const DefenseTuning t = golden_tuning();
  SybilInferMcmcParams params;
  params.seed = t.seed;
  params.burn_in_sweeps = t.mcmc_burn_in_sweeps;
  params.sample_sweeps = t.mcmc_sample_sweeps;
  expect_identical(
      registry_scores("sybilinfer-mcmc"),
      sybilinfer_mcmc_scores(golden_graph(), golden_seeds(), params));
}

TEST(DefenseRegistry, SumUpMatchesDirectPath) {
  const NodeId collector = golden_seeds().front();
  std::vector<NodeId> voters;
  for (NodeId v = 0; v < golden_graph().node_count(); ++v) {
    if (v != collector) voters.push_back(v);
  }
  const auto result = sumup_collect(golden_graph(), collector, voters,
                                    {.c_max = voters.size()});
  std::vector<double> want(golden_graph().node_count(), 0.0);
  want[collector] = 1.0;
  for (std::size_t i = 0; i < voters.size(); ++i) {
    want[voters[i]] = result.accepted[i] ? 1.0 : 0.0;
  }
  expect_identical(registry_scores("sumup"), want);
}

TEST(DefenseRegistry, SybilRankMatchesDirectPath) {
  expect_identical(registry_scores("sybilrank"),
                   sybilrank_scores(golden_graph(), golden_seeds()));
}

TEST(DefenseRegistry, CommunityMatchesDirectPath) {
  const auto ranking =
      community_expand(golden_graph(), golden_seeds().front());
  std::vector<double> want(golden_graph().node_count(), 0.0);
  const double size = static_cast<double>(ranking.order.size());
  for (NodeId v = 0; v < golden_graph().node_count(); ++v) {
    if (ranking.rank[v] == CommunityRanking::kUnranked) continue;
    want[v] = 1.0 - static_cast<double>(ranking.rank[v]) / size;
  }
  expect_identical(registry_scores("community"), want);
}

TEST(DefenseRegistry, ClusteringMatchesSequentialPerNodePath) {
  // Golden path: the original one-node-at-a-time free function.
  std::vector<double> want(golden_graph().node_count(), 0.0);
  for (NodeId v = 0; v < golden_graph().node_count(); ++v) {
    want[v] = graph::local_clustering(golden_graph(), v);
  }
  expect_identical(registry_scores("clustering"), want);
}

TEST(DefenseRegistry, ScoresBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion end-to-end: every registered defense must
  // emit the exact same vector under 1 and 8 worker threads.
  for (const std::string& name : DefenseRegistry::names()) {
    core::set_thread_count(1);
    const std::vector<double> one = registry_scores(name);
    core::set_thread_count(8);
    const std::vector<double> eight = registry_scores(name);
    core::set_thread_count(0);
    ASSERT_EQ(one.size(), eight.size()) << name;
    for (std::size_t v = 0; v < one.size(); ++v) {
      ASSERT_EQ(one[v], eight[v]) << name << " node " << v;
    }
  }
}

TEST(DefenseRegistry, SampledEvaluationScoresOnlyRequestedNodes) {
  DefenseContext ctx;
  ctx.honest_seeds = golden_seeds();
  ctx.eval_nodes = {3, 9, 440, 470};
  const auto defense = DefenseRegistry::create("sybilguard", golden_tuning());
  const auto scores = defense->score(golden_graph(), ctx);
  ASSERT_EQ(scores.size(), golden_graph().node_count());
  const auto full = registry_scores("sybilguard");
  for (NodeId v : ctx.eval_nodes) EXPECT_EQ(scores[v], full[v]);
  // Every other slot stays at the 0.0 fill.
  std::size_t nonzero = 0;
  for (double s : scores) nonzero += s != 0.0;
  EXPECT_LE(nonzero, ctx.eval_nodes.size());
}

}  // namespace
}  // namespace sybil::detect
