#include "detectors/sybilinfer_mcmc.h"

#include <gtest/gtest.h>

#include "detectors/evaluation.h"
#include "graph/generators.h"

namespace sybil::detect {
namespace {

TEST(SybilInferMcmc, SeparatesInjectedCommunity) {
  stats::Rng rng(1);
  const auto base = graph::barabasi_albert(500, 4, rng);
  const auto combined =
      graph::inject_sybil_community(base, 80, 0.3, 8, rng);
  const auto g = graph::CsrGraph::from(combined);
  std::vector<bool> is_sybil(580, false);
  for (graph::NodeId v = 500; v < 580; ++v) is_sybil[v] = true;

  std::vector<graph::NodeId> seeds;
  for (graph::NodeId i = 0; i < 20; ++i) seeds.push_back(i * 23 % 500);

  const auto scores = sybilinfer_mcmc_scores(g, seeds);
  const auto metrics = evaluate_scores(scores, is_sybil);
  EXPECT_GT(metrics.auc, 0.9);
  EXPECT_GT(metrics.sybil_rejection, 0.7);
}

TEST(SybilInferMcmc, SeedsAlwaysScoredHonest) {
  stats::Rng rng(2);
  const auto base = graph::barabasi_albert(300, 3, rng);
  const auto combined = graph::inject_sybil_community(base, 40, 0.3, 5, rng);
  const auto g = graph::CsrGraph::from(combined);
  const std::vector<graph::NodeId> seeds = {0, 10, 20};
  const auto scores = sybilinfer_mcmc_scores(g, seeds);
  for (graph::NodeId s : seeds) EXPECT_DOUBLE_EQ(scores[s], 1.0);
}

TEST(SybilInferMcmc, WellMixedGraphStaysMostlyHonest) {
  // Without a Sybil region the posterior should keep nearly everyone
  // honest (no phantom cuts).
  stats::Rng rng(3);
  const auto g = graph::CsrGraph::from(graph::barabasi_albert(400, 4, rng));
  const std::vector<graph::NodeId> seeds = {1, 2, 3};
  const auto scores = sybilinfer_mcmc_scores(g, seeds);
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  EXPECT_GT(mean, 0.8);
}

TEST(SybilInferMcmc, Deterministic) {
  stats::Rng rng(4);
  const auto base = graph::barabasi_albert(200, 3, rng);
  const auto combined = graph::inject_sybil_community(base, 30, 0.3, 4, rng);
  const auto g = graph::CsrGraph::from(combined);
  const std::vector<graph::NodeId> seeds = {0, 5};
  SybilInferMcmcParams params;
  params.burn_in_sweeps = 10;
  params.sample_sweeps = 10;
  const auto a = sybilinfer_mcmc_scores(g, seeds, params);
  const auto b = sybilinfer_mcmc_scores(g, seeds, params);
  EXPECT_EQ(a, b);
}

TEST(SybilInferMcmc, Errors) {
  stats::Rng rng(5);
  const auto g = graph::CsrGraph::from(graph::barabasi_albert(50, 2, rng));
  EXPECT_THROW(sybilinfer_mcmc_scores(g, {}), std::invalid_argument);
  SybilInferMcmcParams bad;
  bad.stay_prob = 1.0;
  EXPECT_THROW(sybilinfer_mcmc_scores(g, {0}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace sybil::detect
