// End-to-end pipeline tests: simulator → features → classifiers, and
// campaign → topology, with property sweeps across seeds. These run at
// reduced scale; the full calibrated runs live in the benches.
#include <gtest/gtest.h>

#include <memory>

#include "attack/campaign.h"
#include "core/ground_truth.h"
#include "core/threshold_detector.h"
#include "core/topology.h"
#include "ml/kfold.h"
#include "ml/roc.h"
#include "ml/scaler.h"
#include "ml/svm.h"
#include "osn/simulator.h"

namespace sybil {
namespace {

osn::GroundTruthConfig small_gt(std::uint64_t seed) {
  osn::GroundTruthConfig c;
  c.background_users = 4000;
  c.subject_normals = 150;
  c.subject_sybils = 150;
  c.sim_hours = 250.0;
  c.seed = seed;
  return c;
}

class PipelineSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeeds, SvmSeparatesSimulatedPopulations) {
  osn::GroundTruthSimulator sim(small_gt(GetParam()));
  sim.run();
  const ml::Dataset data = core::build_ground_truth_dataset(
      sim.network(), sim.subject_normals(), sim.subject_sybils());
  stats::Rng rng(GetParam() + 1);
  const auto cm = ml::cross_validate(
      data, 5,
      [](const ml::Dataset& train) -> ml::Predictor {
        auto scaler = std::make_shared<ml::StandardScaler>();
        scaler->fit(train);
        auto model = std::make_shared<ml::SvmModel>(
            ml::SvmModel::train(scaler->transform(train), ml::SvmParams{}));
        return [scaler, model](std::span<const double> row) {
          return model->predict(scaler->transform(row));
        };
      },
      rng);
  // Even at 1/15 of bench scale the classes must separate strongly.
  EXPECT_GT(cm.accuracy(), 0.93) << "seed " << GetParam();
  EXPECT_LT(cm.false_positive_rate(), 0.05);
}

TEST_P(PipelineSeeds, FeatureDirectionsHoldAcrossSeeds) {
  osn::GroundTruthSimulator sim(small_gt(GetParam() + 100));
  sim.run();
  const auto nc = core::feature_columns(sim.network(), sim.subject_normals());
  const auto sc = core::feature_columns(sim.network(), sim.subject_sybils());
  const ml::Dataset data = core::build_ground_truth_dataset(
      sim.network(), sim.subject_normals(), sim.subject_sybils());
  std::vector<int> labels;
  for (std::size_t i = 0; i < data.size(); ++i) labels.push_back(data.label(i));
  // Each feature must be individually informative (AUC well above 0.5).
  const auto auc_of = [&](std::size_t column, double sign) {
    std::vector<double> scores;
    for (std::size_t i = 0; i < data.size(); ++i) {
      scores.push_back(sign * data.row(i)[column]);
    }
    return ml::roc_curve(scores, labels).auc;
  };
  EXPECT_GT(auc_of(0, +1.0), 0.95);  // invitation rate
  EXPECT_GT(auc_of(1, -1.0), 0.90);  // outgoing accept (low = sybil)
  EXPECT_GT(auc_of(2, +1.0), 0.70);  // incoming accept
  EXPECT_GT(auc_of(3, -1.0), 0.60);  // clustering (scale-limited here)
  static_cast<void>(nc);
  static_cast<void>(sc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeeds,
                         ::testing::Values(11ull, 22ull, 33ull));

class CampaignSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CampaignSeeds, TopologyInvariantsHold) {
  attack::CampaignConfig c;
  c.normal_users = 8000;
  c.sybils = 800;
  c.campaign_hours = 4000.0;
  c.seed = GetParam();
  const auto result = attack::run_campaign(c);
  const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);

  // Invariant 1: attack edges dominate Sybil edges globally.
  EXPECT_GT(topo.total_attack_edges(), 5 * topo.total_sybil_edges());

  // Invariant 2: the majority of Sybils have no Sybil edge (the paper's
  // central finding; at this compressed scale the fraction is higher
  // than the default-calibration 28%).
  EXPECT_LT(topo.fraction_with_sybil_edge(), 0.9);

  // Invariant 3: every component has more attack than Sybil edges.
  for (const auto& cs : topo.component_stats()) {
    EXPECT_GT(cs.attack_edges, cs.sybil_edges);
    EXPECT_LE(cs.audience, cs.attack_edges);
    EXPECT_GE(cs.audience, 1u);
  }

  // Invariant 4: totals are consistent with per-component tallies.
  std::uint64_t component_sybil_edges = 0;
  for (const auto& cs : topo.component_stats()) {
    component_sybil_edges += cs.sybil_edges;
  }
  EXPECT_LE(component_sybil_edges, topo.total_sybil_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignSeeds,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull));

TEST(Pipeline, ThresholdDetectorAgreesWithGroundTruthAtScale) {
  osn::GroundTruthConfig c = small_gt(77);
  c.background_users = 12'000;  // larger scale → cc separation emerges
  osn::GroundTruthSimulator sim(c);
  sim.run();
  const core::FeatureExtractor fx(sim.network());
  const core::ThresholdDetector det;
  std::size_t caught = 0;
  for (osn::NodeId s : sim.subject_sybils()) {
    caught += det.is_sybil(fx.extract(s), sim.network().ledger(s).sent());
  }
  std::size_t false_pos = 0;
  for (osn::NodeId u : sim.subject_normals()) {
    false_pos += det.is_sybil(fx.extract(u), sim.network().ledger(u).sent());
  }
  EXPECT_GT(caught, sim.subject_sybils().size() / 2);
  EXPECT_EQ(false_pos, 0u);
}

}  // namespace
}  // namespace sybil
