#include "faults/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>

#include "core/stream_detector.h"

namespace sybil::faults {
namespace {

/// Small clean log: seeded friendships, a request round, one ban.
osn::EventLog sample_log() {
  osn::EventLog log;
  log.append({osn::EventType::kAccountCreated, 0, 0, 0.0});
  log.append({osn::EventType::kFriendshipSeeded, 0, 1, 0.5});
  for (int i = 0; i < 40; ++i) {
    const auto t = 1.0 + 0.1 * i;
    const auto from = static_cast<graph::NodeId>(i % 5);
    const auto to = static_cast<graph::NodeId>(5 + i % 7);
    log.append({osn::EventType::kRequestSent, from, to, t});
    log.append({i % 3 == 0 ? osn::EventType::kRequestAccepted
                           : osn::EventType::kRequestRejected,
                to, from, t + 0.05});
  }
  log.append({osn::EventType::kAccountBanned, 3, 3, 6.0});
  log.append({osn::EventType::kRequestSent, 0, 9, 6.5});
  return log;
}

bool same_event(const osn::Event& a, const osn::Event& b) {
  return a.type == b.type && a.actor == b.actor && a.subject == b.subject &&
         ((std::isnan(a.time) && std::isnan(b.time)) || a.time == b.time);
}

TEST(FaultInjector, ZeroRatesIsIdentity) {
  const osn::EventLog log = sample_log();
  FaultInjector injector({});
  const std::vector<Arrival> out = injector.corrupt(log);
  ASSERT_EQ(out.size(), log.events().size());
  graph::Time prev = -1e300;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(same_event(out[i].event, log.events()[i])) << i;
    EXPECT_EQ(out[i].seq, i);
    EXPECT_GE(out[i].arrival, prev);  // delivery clock never rewinds
    prev = out[i].arrival;
  }
  const FaultReport& r = injector.report();
  EXPECT_EQ(r.events_in, log.events().size());
  EXPECT_EQ(r.events_out, log.events().size());
  EXPECT_EQ(r.dropped + r.reordered + r.duplicated + r.regressed +
                r.malformed + r.banned_party_injected,
            0u);
}

TEST(FaultInjector, SameSeedReplaysByteIdentically) {
  const osn::EventLog log = sample_log();
  FaultRates rates;
  rates.seed = 99;
  rates.drop = 0.2;
  rates.reorder = 0.4;
  rates.duplicate = 0.3;
  rates.regress = 0.1;
  rates.malform = 0.2;
  rates.banned_party = 1.0;
  FaultInjector a(rates), b(rates);
  const auto out_a = a.corrupt(log);
  const auto out_b = b.corrupt(log);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_TRUE(same_event(out_a[i].event, out_b[i].event)) << i;
    EXPECT_EQ(out_a[i].seq, out_b[i].seq) << i;
    EXPECT_EQ(out_a[i].arrival, out_b[i].arrival) << i;
  }
}

TEST(FaultInjector, ReportAccountingIsExact) {
  const osn::EventLog log = sample_log();
  FaultRates rates;
  rates.seed = 7;
  rates.drop = 0.3;
  rates.duplicate = 0.3;
  rates.banned_party = 1.0;
  FaultInjector injector(rates);
  const auto out = injector.corrupt(log);
  const FaultReport& r = injector.report();
  EXPECT_EQ(r.events_out, out.size());
  EXPECT_EQ(r.events_out, r.events_in - r.dropped + r.duplicated +
                              r.banned_party_injected);
  EXPECT_GT(r.dropped, 0u);
  EXPECT_GT(r.duplicated, 0u);
  EXPECT_EQ(r.banned_party_injected, 1u);  // one ban in the log
}

/// Every reordered arrival stays within the skew bound of its in-order
/// delivery slot, so a watermark of max_inversion + max_skew suffices.
TEST(FaultInjector, ReorderSkewIsBounded) {
  const osn::EventLog log = sample_log();
  FaultRates rates;
  rates.seed = 3;
  rates.reorder = 1.0;
  rates.max_skew_hours = 5.0;
  FaultInjector injector(rates);
  const auto out = injector.corrupt(log);
  // In-order slot of event i is the running max of times up to i.
  std::map<std::uint64_t, graph::Time> slot;
  graph::Time envelope = -1e300;
  for (std::size_t i = 0; i < log.events().size(); ++i) {
    envelope = std::max(envelope, log.events()[i].time);
    slot[i] = envelope;
  }
  graph::Time prev = -1e300;
  for (const Arrival& a : out) {
    ASSERT_TRUE(slot.contains(a.seq));
    EXPECT_GE(a.arrival, slot[a.seq]);
    EXPECT_LE(a.arrival, slot[a.seq] + rates.max_skew_hours);
    EXPECT_GE(a.arrival, prev);  // output sorted by arrival
    prev = a.arrival;
  }
}

/// Raising one fault's rate must not change which events another fault
/// selects: the dropped log's duplicates are exactly the surviving
/// subset of the drop-free run's duplicates.
TEST(FaultInjector, FaultStreamsAreIndependent) {
  const osn::EventLog log = sample_log();
  FaultRates base;
  base.seed = 11;
  base.duplicate = 0.5;
  FaultRates with_drop = base;
  with_drop.drop = 0.4;

  const auto count_seqs = [](const std::vector<Arrival>& out) {
    std::map<std::uint64_t, int> c;
    for (const Arrival& a : out) ++c[a.seq];
    return c;
  };
  const auto dup_only = count_seqs(FaultInjector(base).corrupt(log));
  const auto dropped = count_seqs(FaultInjector(with_drop).corrupt(log));
  for (const auto& [seq, count] : dropped) {
    // Every surviving event was duplicated iff it was duplicated in the
    // drop-free run.
    EXPECT_EQ(count, dup_only.at(seq)) << seq;
  }
}

/// Each malformed corruption trips structural validation: feeding the
/// injector's output into the hardened path quarantines exactly the
/// malformed arrivals, with typed reasons.
TEST(FaultInjector, MalformedEventsAreQuarantinedWithReasons) {
  const osn::EventLog log = sample_log();
  FaultRates rates;
  rates.seed = 5;
  rates.malform = 1.0;
  FaultInjector injector(rates);
  const auto out = injector.corrupt(log);
  ASSERT_EQ(injector.report().malformed, log.events().size());

  core::DetectorOptions opts;
  opts.ingest.watermark_hours = 100.0;
  core::StreamDetector det(opts);
  for (const Arrival& a : out) det.ingest(a.event, a.seq);
  det.finish();
  EXPECT_EQ(det.deadletter_total(), out.size());
  EXPECT_EQ(det.applied_total(), 0u);
  std::map<core::StreamErrorCode, int> reasons;
  for (const auto& dl : det.dead_letters()) ++reasons[dl.reason];
  // All four corruption kinds appear across 84 events.
  EXPECT_GT(reasons[core::StreamErrorCode::kUnknownEventType], 0);
  EXPECT_GT(reasons[core::StreamErrorCode::kInvalidAccountId], 0);
  EXPECT_GT(reasons[core::StreamErrorCode::kNonFiniteTime], 0);
  EXPECT_GT(reasons[core::StreamErrorCode::kSelfReferential], 0);
}

/// The synthetic post-ban request reaches the detector after the ban
/// and must leave the banned account's state frozen.
TEST(FaultInjector, InjectedBannedPartyRequestLeavesBannedStateFrozen) {
  const osn::EventLog log = sample_log();
  FaultRates rates;
  rates.seed = 21;
  rates.banned_party = 1.0;
  FaultInjector injector(rates);
  const auto out = injector.corrupt(log);
  ASSERT_EQ(injector.report().banned_party_injected, 1u);

  core::DetectorOptions opts;
  opts.ingest.watermark_hours = 100.0;
  core::StreamDetector det(opts);
  core::StreamDetector clean(opts);
  for (const Arrival& a : out) det.ingest(a.event, a.seq);
  det.finish();
  const auto& events = log.events();
  for (std::size_t i = 0; i < events.size(); ++i) clean.ingest(events[i], i);
  clean.finish();

  EXPECT_GE(det.banned_party_total(), 1u);
  // Account 3 (banned at t=6) has identical features with and without
  // the injected post-ban request.
  const core::SybilFeatures a = det.features(3);
  const core::SybilFeatures b = clean.features(3);
  EXPECT_DOUBLE_EQ(a.invite_rate_short, b.invite_rate_short);
  EXPECT_DOUBLE_EQ(a.outgoing_accept_ratio, b.outgoing_accept_ratio);
  EXPECT_DOUBLE_EQ(a.incoming_accept_ratio, b.incoming_accept_ratio);
}

TEST(FaultInjector, ValidateRejectsBadRates) {
  FaultRates rates;
  rates.drop = 1.5;
  EXPECT_THROW(FaultInjector{rates}, std::invalid_argument);
  rates = {};
  rates.reorder = -0.1;
  EXPECT_THROW(FaultInjector{rates}, std::invalid_argument);
  rates = {};
  rates.max_skew_hours = -1.0;
  EXPECT_THROW(FaultInjector{rates}, std::invalid_argument);
  rates = {};
  rates.regress_hours = 0.0;
  EXPECT_THROW(FaultInjector{rates}, std::invalid_argument);
}

}  // namespace
}  // namespace sybil::faults
