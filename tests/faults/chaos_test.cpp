// Chaos suite: the hardened ingestion invariants under seeded fault
// injection (docs/ROBUSTNESS.md).
//
//   * equivalence — faults the watermark can absorb (bounded reorder,
//     duplicates) leave flag sets and every feature byte-identical to
//     the clean ingest of the same log;
//   * accounting — with every fault enabled, nothing crashes and
//     events_in == applied + deduped + dead-lettered, exactly;
//   * determinism — the same chaos seed replays to byte-identical
//     dead-letter contents and flag sets at SYBIL_THREADS=1 and 8.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/metrics/export.h"
#include "core/metrics/metrics.h"
#include "core/parallel.h"
#include "core/stream_detector.h"
#include "faults/fault_injector.h"
#include "osn/network.h"
#include "stats/rng.h"

namespace sybil::faults {
namespace {

/// A logged network exercising every event type, with enough bursty
/// senders that the threshold rule fires: seeded friendships, mixed
/// accept/reject, mid-stream bans.
osn::EventLog build_log(std::uint64_t seed) {
  osn::Network net(/*keep_event_log=*/true);
  stats::Rng rng(seed);
  constexpr int kAccounts = 120;
  for (int i = 0; i < kAccounts; ++i) net.add_account(osn::Account{});
  for (int i = 0; i < 80; ++i) {
    net.add_friendship(
        static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
        static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
        -1.0 * static_cast<double>(i));
  }
  for (double t = 0.0; t < 40.0; t += 1.0) {
    for (int k = 0; k < 25; ++k) {
      const auto from =
          static_cast<osn::NodeId>(rng.uniform_index(kAccounts));
      const auto to = static_cast<osn::NodeId>(rng.uniform_index(kAccounts));
      net.send_request(from, to, t + rng.uniform(),
                       t + 1.0 + rng.uniform(2.0, 10.0));
    }
    net.process_responses(t + 1.0, [&](osn::NodeId, osn::NodeId,
                                       std::uint8_t) {
      return rng.bernoulli(0.4);
    });
    if (t == 20.0) net.ban(5, t);
  }
  net.process_responses(1e9, [&](osn::NodeId, osn::NodeId, std::uint8_t) {
    return rng.bernoulli(0.4);
  });
  return net.log();
}

struct IngestResult {
  core::FlagBatch flags;
  std::vector<core::SybilFeatures> features;
  std::vector<core::StreamDetector::DeadLetter> dead_letters;
  std::uint64_t dead_letters_dropped = 0;
  std::uint64_t events_in = 0, applied = 0, deduped = 0, deadlettered = 0;
};

IngestResult ingest_all(const std::vector<Arrival>& arrivals,
                        const core::DetectorOptions& opts,
                        std::size_t accounts) {
  core::StreamDetector det(opts);
  for (const Arrival& a : arrivals) det.ingest(a.event, a.seq);
  det.finish();
  IngestResult r;
  r.flags = det.take_flagged();
  for (std::size_t id = 0; id < accounts; ++id) {
    r.features.push_back(det.features(static_cast<osn::NodeId>(id)));
  }
  r.dead_letters.assign(det.dead_letters().begin(),
                        det.dead_letters().end());
  r.dead_letters_dropped = det.dead_letters_dropped();
  r.events_in = det.events_in();
  r.applied = det.applied_total();
  r.deduped = det.deduped_total();
  r.deadlettered = det.deadletter_total();
  return r;
}

std::vector<Arrival> clean_arrivals(const osn::EventLog& log) {
  std::vector<Arrival> arrivals;
  const auto& events = log.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    arrivals.push_back({events[i], i, events[i].time});
  }
  return arrivals;
}

void expect_features_equal(const std::vector<core::SybilFeatures>& a,
                           const std::vector<core::SybilFeatures>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i].invite_rate_short, b[i].invite_rate_short) << i;
    ASSERT_DOUBLE_EQ(a[i].invite_rate_long, b[i].invite_rate_long) << i;
    ASSERT_DOUBLE_EQ(a[i].outgoing_accept_ratio, b[i].outgoing_accept_ratio)
        << i;
    ASSERT_DOUBLE_EQ(a[i].incoming_accept_ratio, b[i].incoming_accept_ratio)
        << i;
    ASSERT_DOUBLE_EQ(a[i].clustering_coefficient,
                     b[i].clustering_coefficient)
        << i;
  }
}

void expect_flags_equal(const core::FlagBatch& a, const core::FlagBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].account, b[i].account) << i;
    ASSERT_DOUBLE_EQ(a[i].flagged_at, b[i].flagged_at) << i;
    ASSERT_DOUBLE_EQ(a[i].features.invite_rate_short,
                     b[i].features.invite_rate_short)
        << i;
  }
}

/// The headline invariant: any interleaving the watermark can absorb —
/// bounded reordering plus duplicate redelivery, at any rate — produces
/// byte-identical flag sets and feature snapshots. Property-style sweep
/// over seeds x rates x skew bounds.
TEST(Chaos, EquivalenceWithinWatermark) {
  const osn::EventLog log = build_log(17);
  constexpr std::size_t kAccounts = 120;
  const double inversion = log.max_inversion_hours();

  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const double rate : {0.3, 1.0}) {
      for (const double skew : {2.0, 6.0}) {
        core::DetectorOptions opts;
        // Redelivery delay compounds on reorder delay: a duplicate of a
        // maximally delayed event arrives up to 2 x skew past its
        // in-order slot, so that is the horizon the watermark must
        // cover for full equivalence.
        opts.ingest.watermark_hours = inversion + 2.0 * skew;

        const IngestResult clean =
            ingest_all(clean_arrivals(log), opts, kAccounts);
        ASSERT_EQ(clean.deadlettered, 0u);

        FaultRates rates;
        rates.seed = seed;
        rates.reorder = rate;
        rates.duplicate = rate;
        rates.max_skew_hours = skew;
        FaultInjector injector(rates);
        const IngestResult faulted =
            ingest_all(injector.corrupt(log), opts, kAccounts);

        ASSERT_EQ(faulted.deadlettered, 0u)
            << "seed=" << seed << " rate=" << rate << " skew=" << skew;
        ASSERT_EQ(faulted.deduped, injector.report().duplicated);
        ASSERT_EQ(faulted.applied, clean.applied);
        expect_flags_equal(clean.flags, faulted.flags);
        expect_features_equal(clean.features, faulted.features);
      }
    }
  }
}

/// Full hostile mode: every fault enabled. Nothing crashes, and the
/// accounting identity holds exactly — no event is lost or counted
/// twice, whatever happened to it.
TEST(Chaos, NeverCrashesAndAccountingIsExact) {
  const osn::EventLog log = build_log(23);
  for (const std::uint64_t seed : {4ull, 5ull, 6ull}) {
    FaultRates rates;
    rates.seed = seed;
    rates.drop = 0.2;
    rates.reorder = 0.3;
    rates.duplicate = 0.3;
    rates.regress = 0.2;
    rates.regress_hours = 500.0;
    rates.malform = 0.2;
    rates.banned_party = 1.0;
    FaultInjector injector(rates);
    const auto arrivals = injector.corrupt(log);

    core::DetectorOptions opts;
    opts.ingest.watermark_hours = log.max_inversion_hours() + 6.0;
    opts.ingest.dead_letter_capacity = 64;
    core::StreamDetector det(opts);
    for (const Arrival& a : arrivals) {
      det.ingest(a.event, a.seq);
      // The identity holds at EVERY point, not just at the end.
      ASSERT_EQ(det.events_in(), det.applied_total() + det.deduped_total() +
                                     det.deadletter_total() + det.buffered());
    }
    det.finish();
    EXPECT_EQ(det.buffered(), 0u);
    EXPECT_EQ(det.events_in(), arrivals.size());
    EXPECT_EQ(det.events_in(), det.applied_total() + det.deduped_total() +
                                   det.deadletter_total());
    EXPECT_LE(det.dead_letters().size(), opts.ingest.dead_letter_capacity);
    EXPECT_EQ(det.deadletter_total(),
              det.dead_letters().size() + det.dead_letters_dropped());
    EXPECT_GT(det.deadletter_total(), 0u);  // malform really fired
  }
}

/// The same chaos seed replays byte-identically whatever SYBIL_THREADS
/// is: dead-letter contents (events, seqs, reasons) and flag sets are
/// equal between a 1-thread and an 8-thread run.
TEST(Chaos, ReplayIsDeterministicAcrossThreadCounts) {
  const osn::EventLog log = build_log(31);
  constexpr std::size_t kAccounts = 120;
  FaultRates rates;
  rates.seed = 77;
  rates.drop = 0.1;
  rates.reorder = 0.5;
  rates.duplicate = 0.3;
  rates.malform = 0.1;
  core::DetectorOptions opts;
  opts.ingest.watermark_hours = log.max_inversion_hours() + 6.0;

  const auto run = [&] {
    FaultInjector injector(rates);
    return ingest_all(injector.corrupt(log), opts, kAccounts);
  };
  core::set_thread_count(1);
  const IngestResult one = run();
  core::set_thread_count(8);
  const IngestResult eight = run();
  core::set_thread_count(0);  // back to automatic

  expect_flags_equal(one.flags, eight.flags);
  expect_features_equal(one.features, eight.features);
  ASSERT_EQ(one.dead_letters.size(), eight.dead_letters.size());
  for (std::size_t i = 0; i < one.dead_letters.size(); ++i) {
    const auto& a = one.dead_letters[i];
    const auto& b = eight.dead_letters[i];
    ASSERT_EQ(a.seq, b.seq) << i;
    ASSERT_EQ(a.reason, b.reason) << i;
    ASSERT_EQ(a.event.type, b.event.type) << i;
    ASSERT_EQ(a.event.actor, b.event.actor) << i;
    ASSERT_EQ(a.event.subject, b.event.subject) << i;
    ASSERT_TRUE((std::isnan(a.event.time) && std::isnan(b.event.time)) ||
                a.event.time == b.event.time)
        << i;
  }
  EXPECT_EQ(one.dead_letters_dropped, eight.dead_letters_dropped);
}

/// Two detectors on two threads ingesting the same hostile feed stay
/// independent (no shared mutable state except the metrics registry,
/// which the tsan preset hammers here) and agree with each other.
TEST(Chaos, ConcurrentDetectorsAreIndependent) {
  const osn::EventLog log = build_log(41);
  constexpr std::size_t kAccounts = 120;
  FaultRates rates;
  rates.seed = 13;
  rates.reorder = 0.5;
  rates.duplicate = 0.5;
  rates.malform = 0.1;
  core::DetectorOptions opts;
  opts.ingest.watermark_hours = log.max_inversion_hours() + 6.0;
  FaultInjector injector(rates);
  const std::vector<Arrival> arrivals = injector.corrupt(log);

  IngestResult results[2];
  std::thread workers[2];
  for (int w = 0; w < 2; ++w) {
    workers[w] = std::thread([&, w] {
      results[w] = ingest_all(arrivals, opts, kAccounts);
    });
  }
  for (auto& t : workers) t.join();
  expect_flags_equal(results[0].flags, results[1].flags);
  expect_features_equal(results[0].features, results[1].features);
  EXPECT_EQ(results[0].deadlettered, results[1].deadlettered);
}

TEST(Chaos, StrictPolicyThrowsTypedErrorAfterAccounting) {
  core::DetectorOptions opts;
  opts.ingest.policy = core::IngestPolicy::kStrict;
  core::StreamDetector det(opts);
  const osn::Event bad{static_cast<osn::EventType>(0xFF), 0, 1, 1.0};
  try {
    det.ingest(bad, 0);
    FAIL() << "expected core::StreamError";
  } catch (const core::StreamError& e) {
    EXPECT_EQ(e.code(), core::StreamErrorCode::kUnknownEventType);
  }
  // The event was accounted for before the throw: the invariant holds
  // even at the throw site.
  EXPECT_EQ(det.events_in(), 1u);
  EXPECT_EQ(det.deadletter_total(), 1u);
  ASSERT_EQ(det.dead_letters().size(), 1u);
  EXPECT_EQ(det.dead_letters().front().reason,
            core::StreamErrorCode::kUnknownEventType);
}

TEST(Chaos, DeadLetterQueueIsBounded) {
  core::DetectorOptions opts;
  opts.ingest.dead_letter_capacity = 4;
  core::StreamDetector det(opts);
  for (int i = 0; i < 10; ++i) {
    const osn::Event bad{static_cast<osn::EventType>(0xFF),
                         static_cast<graph::NodeId>(i), 1,
                         static_cast<double>(i)};
    det.ingest(bad, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(det.deadletter_total(), 10u);
  EXPECT_EQ(det.dead_letters().size(), 4u);
  EXPECT_EQ(det.dead_letters_dropped(), 6u);
  // The queue keeps the most recent quarantines.
  EXPECT_EQ(det.dead_letters().front().event.actor, 6u);
  EXPECT_EQ(det.dead_letters().back().event.actor, 9u);
}

TEST(Chaos, TimeRegressionBeyondWatermarkIsQuarantined) {
  core::DetectorOptions opts;
  opts.ingest.watermark_hours = 10.0;
  core::StreamDetector det(opts);
  det.ingest({osn::EventType::kRequestSent, 0, 1, 100.0}, 0);
  // 15 hours behind the high watermark: outside the reorder horizon.
  det.ingest({osn::EventType::kRequestSent, 2, 3, 85.0}, 1);
  EXPECT_EQ(det.deadletter_total(), 1u);
  ASSERT_EQ(det.dead_letters().size(), 1u);
  EXPECT_EQ(det.dead_letters().front().reason,
            core::StreamErrorCode::kTimeRegression);
  // 5 hours behind: inside the horizon, buffered and applied.
  det.ingest({osn::EventType::kRequestSent, 4, 5, 95.0}, 2);
  det.finish();
  EXPECT_EQ(det.applied_total(), 2u);
  EXPECT_EQ(det.deadletter_total(), 1u);
}

#if SYBIL_METRICS_COMPILED
/// Dead-letter reasons must be distinguishable in dashboards: every
/// per-reason counter is pre-registered (visible at zero) and bumped on
/// quarantine, and all of them survive into the JSON export.
TEST(Chaos, DeadLetterReasonsExportedPerReason) {
  auto& registry = core::metrics::MetricsRegistry::instance();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const auto count_of = [&](const char* name) {
    return registry.counter(name).value();
  };
  const std::uint64_t self_before =
      count_of("stream.deadletter.self_referential");
  const std::uint64_t unknown_before =
      count_of("stream.deadletter.unknown_event_type");

  core::StreamDetector det;
  det.ingest({osn::EventType::kRequestSent, 4, 4, 1.0}, 0);
  det.ingest({static_cast<osn::EventType>(0xEE), 0, 1, 1.0}, 1);
  EXPECT_EQ(count_of("stream.deadletter.self_referential"),
            self_before + 1);
  EXPECT_EQ(count_of("stream.deadletter.unknown_event_type"),
            unknown_before + 1);

  const std::string json =
      core::metrics::export_json(registry.snapshot());
  for (const char* name :
       {"stream.deadletter.unknown_event_type",
        "stream.deadletter.invalid_account_id",
        "stream.deadletter.self_referential",
        "stream.deadletter.non_finite_time",
        "stream.deadletter.time_regression",
        "stream.deadletter.dropped"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  registry.set_enabled(was_enabled);
}
#endif  // SYBIL_METRICS_COMPILED

}  // namespace
}  // namespace sybil::faults
