// Storage-degraded service tier (docs/ROBUSTNESS.md §Storage fault
// model): the fourth degradation response, alongside the three queue
// tiers. When the disk under the WAL rejects writes the supervisor
// serves verdicts from memory, buffers appends in the WAL writer's
// bounded buffer, suspends checkpoints (counted), and retries on a
// deterministic capped exponential backoff clocked in offers.
//
//   * a run that degrades through an ENOSPC window and heals is
//     byte-identical (flags, stats_json) to one that never degraded —
//     pinned at SYBIL_THREADS=1 and 8 (the tsan preset runs this);
//   * the buffer bound fails loudly: a typed StorageBufferOverflow
//     that does NOT count the offer, leaving the caller free to
//     re-offer it after the disk heals;
//   * the backoff schedule is an exact function of the offer count;
//   * suspended checkpoints are counted, never silently skipped, and
//     never touch the generation directory;
//   * flush() while degraded forces a retry and throws the original
//     fault kind if the disk still refuses;
//   * power loss never degrades: it propagates typed (the machine is
//     gone; recovery is the crash path's job).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "io/faulty_vfs.h"
#include "io/vfs.h"
#include "osn/events.h"
#include "service/checkpoint.h"
#include "service/supervisor.h"
#include "service/workload.h"

namespace sybil::service {
namespace {

namespace fs = std::filesystem;

class StorageDegraded : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ::setenv("SYBIL_IO_FSYNC", "0", 1); }
  static void TearDownTestSuite() { ::unsetenv("SYBIL_IO_FSYNC"); }
};

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_deg_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<osn::Event> build_log(std::uint64_t events = 240) {
  WorkloadOptions w;
  w.accounts = 48;
  w.events = events;
  w.hours = 6.0;
  w.seed = 5;
  w.burst_senders = 2;
  w.burst_fraction = 0.3;
  return synthetic_workload(w);
}

ServiceOptions make_options(const std::string& dir, io::Vfs* vfs) {
  ServiceOptions o;
  o.dir = dir;
  o.vfs = vfs;
  // Every append reaches the disk through the vfs immediately, so a
  // configured fault fires on the very next offer.
  o.wal_fsync = WalFsync::kEveryAppend;
  o.wal_segment_records = 32;
  o.checkpoint_every = 64;
  o.checkpoint_retain = 2;
  o.detector.ingest.watermark_hours = 500.0;
  o.detector.rule.invite_rate_min = 4.0;
  o.detector.rule.min_requests = 5;
  return o;
}

void expect_flags_equal(const core::FlagBatch& a, const core::FlagBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].account, b[i].account) << i;
    ASSERT_DOUBLE_EQ(a[i].flagged_at, b[i].flagged_at) << i;
  }
}

struct RunResult {
  std::string stats;
  core::FlagBatch flags;
};

/// One full run; when `faulted`, the disk fills at offer 100 and heals
/// (with a forced retry) at offer 180 — the degraded window rides ~80
/// offers, several failed backoff retries and two checkpoint
/// boundaries.
RunResult run_stream(const std::vector<osn::Event>& log, bool faulted,
                     const std::string& tag) {
  const std::string dir = fresh_dir(tag);
  io::FaultyVfs v;
  ServiceSupervisor s(make_options(dir, &v));
  EXPECT_TRUE(s.start().cold_start);
  for (std::uint64_t i = 0; i < log.size(); ++i) {
    if (faulted && i == 100) {
      io::FaultConfig cfg;
      cfg.byte_budget = 0;
      v.configure(cfg);
    }
    if (faulted && i == 180) {
      v.clear_faults();
      EXPECT_TRUE(s.retry_storage_now());
    }
    s.offer(log[i], i);
    if (i % 7 == 6) s.pump(3);
  }
  s.flush();
  EXPECT_TRUE(s.accounting_ok());
  if (faulted) {
    EXPECT_GE(s.storage_degraded_entries(), 1u);
    EXPECT_GE(s.storage_degraded_exits(), 1u);
    EXPECT_GE(s.storage_retry_failures(), 1u);  // backoff retries failed
    EXPECT_FALSE(s.storage_degraded());
    EXPECT_EQ(s.storage_error_kind(), io::VfsFaultKind::kNoSpace);
    EXPECT_GE(s.storage_checkpoints_suspended(), 1u);
  } else {
    EXPECT_EQ(s.storage_degraded_entries(), 0u);
  }
  RunResult r;
  r.stats = s.stats_json();
  r.flags = s.take_flagged();
  return r;
}

// The name the tsan preset's filter regex pins — the degraded tier is
// single-threaded by design and SYBIL_THREADS must not perturb it.
TEST_F(StorageDegraded, ByteIdenticalAcrossThreadCounts) {
  const std::vector<osn::Event> log = build_log();
  RunResult first_clean;
  for (const int threads : {1, 8}) {
    SCOPED_TRACE("SYBIL_THREADS=" + std::to_string(threads));
    core::set_thread_count(threads);
    const std::string tag = "t" + std::to_string(threads);
    const RunResult clean = run_stream(log, false, "clean_" + tag);
    const RunResult degraded = run_stream(log, true, "deg_" + tag);
    ASSERT_FALSE(clean.flags.empty());
    // The degraded window is invisible in everything replay-exact.
    EXPECT_EQ(degraded.stats, clean.stats);
    expect_flags_equal(degraded.flags, clean.flags);
    // ...and the whole property is thread-count-invariant.
    if (threads == 1) {
      first_clean = clean;
    } else {
      EXPECT_EQ(clean.stats, first_clean.stats);
      expect_flags_equal(clean.flags, first_clean.flags);
    }
  }
  core::set_thread_count(0);
}

TEST_F(StorageDegraded, BufferOverflowThrowsTypedAndDropsNothing) {
  const std::vector<osn::Event> log = build_log(40);
  RunResult control;
  {
    const std::string dir = fresh_dir("ovf_control");
    io::FaultyVfs v;
    ServiceSupervisor s(make_options(dir, &v));
    s.start();
    for (std::uint64_t i = 0; i < log.size(); ++i) s.offer(log[i], i);
    s.flush();
    control.stats = s.stats_json();
    control.flags = s.take_flagged();
  }

  const std::string dir = fresh_dir("ovf");
  io::FaultyVfs v;
  ServiceOptions o = make_options(dir, &v);
  o.storage.buffer_records = 8;
  ServiceSupervisor s(o);
  s.start();
  io::FaultConfig cfg;
  cfg.byte_budget = 0;
  v.configure(cfg);

  // Offer 0 enters degraded mode with its record retained; offers 1..7
  // buffer behind it. Offer 8 would exceed the bound.
  for (std::uint64_t i = 0; i < 8; ++i) s.offer(log[i], i);
  EXPECT_TRUE(s.storage_degraded());
  EXPECT_EQ(s.storage_buffered(), 8u);
  const std::uint64_t offered_before = s.offered();
  try {
    s.offer(log[8], 8);
    FAIL() << "expected StorageBufferOverflow";
  } catch (const StorageBufferOverflow& e) {
    EXPECT_EQ(e.shard(), 0u);
    EXPECT_EQ(e.buffered(), 8u);
  }
  // The overflowed offer was not logged and not counted: the caller
  // may simply re-offer it once the disk heals.
  EXPECT_EQ(s.offered(), offered_before);
  EXPECT_TRUE(s.accounting_ok());

  v.clear_faults();
  ASSERT_TRUE(s.retry_storage_now());
  EXPECT_EQ(s.storage_buffered(), 0u);  // the backlog flushed whole
  for (std::uint64_t i = 8; i < log.size(); ++i) s.offer(log[i], i);
  s.flush();
  EXPECT_EQ(s.stats_json(), control.stats);
  expect_flags_equal(s.take_flagged(), control.flags);
}

TEST_F(StorageDegraded, BackoffScheduleIsDeterministic) {
  const std::vector<osn::Event> log = build_log(64);
  const std::string dir = fresh_dir("backoff");
  io::FaultyVfs v;
  ServiceOptions o = make_options(dir, &v);
  o.checkpoint_every = 0;  // no checkpoint noise in the op sequence
  o.storage.retry_backoff = 2;
  o.storage.retry_backoff_cap = 8;
  ServiceSupervisor s(o);
  s.start();
  io::FaultConfig cfg;
  cfg.byte_budget = 0;
  v.configure(cfg);

  // Offer 0 enters degraded mode (backoff 2). Retries then fire when
  // the per-offer countdown hits zero: post-entry offers 1 (backoff
  // doubles to 4), 5 (→8), 13 (capped at 8), 21, 29 — five retries,
  // all failing against the still-full disk.
  s.offer(log[0], 0);
  ASSERT_TRUE(s.storage_degraded());
  const std::uint64_t expected_at[] = {1, 5, 13, 21, 29};
  std::size_t expected_idx = 0;
  for (std::uint64_t i = 1; i <= 30; ++i) {
    s.offer(log[i], i);
    if (expected_idx < 5 && i == expected_at[expected_idx]) ++expected_idx;
    EXPECT_EQ(s.storage_retries(), expected_idx) << "after offer " << i;
  }
  EXPECT_EQ(s.storage_retries(), 5u);
  EXPECT_EQ(s.storage_retry_failures(), 5u);

  v.clear_faults();
  EXPECT_TRUE(s.retry_storage_now());
  EXPECT_EQ(s.storage_retries(), 6u);
  EXPECT_EQ(s.storage_retry_failures(), 5u);
  EXPECT_EQ(s.storage_degraded_exits(), 1u);
}

TEST_F(StorageDegraded, SuspendedCheckpointsAreCountedNotSilent) {
  const std::vector<osn::Event> log = build_log(16);
  const std::string dir = fresh_dir("ckpt_susp");
  io::FaultyVfs v;
  ServiceOptions o = make_options(dir, &v);
  o.checkpoint_every = 0;  // explicit checkpoints only
  ServiceSupervisor s(o);
  s.start();
  io::FaultConfig cfg;
  cfg.byte_budget = 0;
  v.configure(cfg);
  s.offer(log[0], 0);
  ASSERT_TRUE(s.storage_degraded());

  const std::string ckpt_dir = dir + "/ckpt";
  ASSERT_TRUE(list_checkpoints(ckpt_dir).empty());
  for (int i = 0; i < 3; ++i) s.checkpoint_now();
  EXPECT_EQ(s.storage_checkpoints_suspended(), 3u);
  // Suspension never touches the generation directory.
  EXPECT_TRUE(list_checkpoints(ckpt_dir).empty());

  v.clear_faults();
  ASSERT_TRUE(s.retry_storage_now());
  s.checkpoint_now();
  EXPECT_EQ(s.storage_checkpoints_suspended(), 3u);
  EXPECT_EQ(list_checkpoints(ckpt_dir).size(), 1u);
}

TEST_F(StorageDegraded, FlushWhileDegradedForcesRetryAndThrowsTyped) {
  const std::vector<osn::Event> log = build_log(16);
  const std::string dir = fresh_dir("flush_deg");
  io::FaultyVfs v;
  ServiceSupervisor s(make_options(dir, &v));
  s.start();
  io::FaultConfig cfg;
  cfg.byte_budget = 0;
  v.configure(cfg);
  s.offer(log[0], 0);
  ASSERT_TRUE(s.storage_degraded());

  // End-of-stream is the loud boundary: records may not stay buffered
  // behind a disk that still refuses writes.
  try {
    s.flush();
    FAIL() << "expected VfsError from flush";
  } catch (const io::VfsError& e) {
    EXPECT_EQ(e.kind(), io::VfsFaultKind::kNoSpace);
  }
  EXPECT_TRUE(s.storage_degraded());

  v.clear_faults();
  EXPECT_NO_THROW(s.flush());
  EXPECT_FALSE(s.storage_degraded());
  EXPECT_EQ(s.storage_buffered(), 0u);
}

TEST_F(StorageDegraded, PowerLossNeverDegrades) {
  const std::vector<osn::Event> log = build_log(16);
  const std::string dir = fresh_dir("powerloss");
  io::FaultyVfs v;
  ServiceSupervisor s(make_options(dir, &v));
  s.start();
  io::FaultConfig cfg;
  cfg.cut_at_op = v.ops();  // the very next mutating op: offer 0's append
  v.configure(cfg);
  try {
    s.offer(log[0], 0);
    FAIL() << "expected kPowerLoss";
  } catch (const io::VfsError& e) {
    EXPECT_EQ(e.kind(), io::VfsFaultKind::kPowerLoss);
  }
  // The machine is gone: no graceful tier for that, the crash/recovery
  // path owns it.
  EXPECT_FALSE(s.storage_degraded());
  EXPECT_TRUE(v.dead());
}

}  // namespace
}  // namespace sybil::service
