// Storage fault sweeps (docs/ROBUSTNESS.md §Storage fault model) — the
// headline recoverability proofs behind the injectable VFS:
//
//   * ENOSPC at EVERY mutating storage op of a ground-truth service
//     run: the supervisor never crashes and never loses an offer — it
//     rides the storage-degraded tier and, once the disk heals, the
//     finished run's flag verdicts and accounting JSON are
//     byte-identical to the undisturbed run (ENOSPC on the very first
//     boot op is also fine: start() fails typed and a fresh boot on the
//     same dir recovers);
//   * an atomic container commit aborted by ENOSPC at EVERY op leaves
//     the previously committed target byte-identical and no temp file
//     behind;
//   * power loss at EVERY fsync barrier (real-fsync mode, so renames
//     pin exactly as in production): every checkpoint generation that
//     survives the cut still loads — torn state is confined to the WAL
//     tail recovery is built to heal — and the recovered service,
//     re-driven from the report's resume point, finishes byte-identical
//     to the run that never lost power.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "io/container.h"
#include "io/faulty_vfs.h"
#include "io/vfs.h"
#include "osn/events.h"
#include "service/checkpoint.h"
#include "service/supervisor.h"
#include "service/workload.h"

namespace sybil::service {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_stor_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Small but behaviourally complete stream: two burst senders hot
/// enough to cross the relaxed rule below, organic accept/reject mix.
std::vector<osn::Event> build_log() {
  WorkloadOptions w;
  w.accounts = 48;
  w.events = 240;
  w.hours = 6.0;
  w.seed = 5;
  w.burst_senders = 2;
  w.burst_fraction = 0.3;
  return synthetic_workload(w);
}

ServiceOptions make_options(const std::string& dir, io::Vfs* vfs) {
  ServiceOptions o;
  o.dir = dir;
  o.vfs = vfs;
  // Every append fsyncs and segments/checkpoints roll often, so the op
  // sweep crosses every kind of write point many times in 240 events.
  o.wal_fsync = WalFsync::kEveryAppend;
  o.wal_segment_records = 32;
  o.checkpoint_every = 64;
  o.checkpoint_retain = 2;
  o.detector.ingest.watermark_hours = 500.0;  // absorb log inversions
  o.detector.rule.invite_rate_min = 4.0;
  o.detector.rule.min_requests = 5;
  return o;
}

/// Index-aligned driver (the recovery-suite idiom): offers log[i] with
/// seq i and pumps on a cadence keyed to stream position, so admission
/// decisions are a pure function of position and replay-exact.
void drive(ServiceSupervisor& s, const std::vector<osn::Event>& log,
           std::uint64_t offer_from = 0, std::uint64_t pump_from = 0) {
  for (std::uint64_t i = std::min(offer_from, pump_from); i < log.size();
       ++i) {
    if (i >= offer_from) s.offer(log[i], i);
    if (i >= pump_from && i % 7 == 6) s.pump(3);
  }
}

struct RunResult {
  std::string stats;
  core::FlagBatch flags;
};

void expect_flags_equal(const core::FlagBatch& a, const core::FlagBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].account, b[i].account) << i;
    ASSERT_DOUBLE_EQ(a[i].flagged_at, b[i].flagged_at) << i;
    ASSERT_DOUBLE_EQ(a[i].features.invite_rate_short,
                     b[i].features.invite_rate_short)
        << i;
    ASSERT_DOUBLE_EQ(a[i].features.outgoing_accept_ratio,
                     b[i].features.outgoing_accept_ratio)
        << i;
  }
}

// ---------------------------------------------------------------------------
// ENOSPC sweeps (fsync knob off: thousands of throwaway commits)

class StorageEnospcSweep : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ::setenv("SYBIL_IO_FSYNC", "0", 1); }
  static void TearDownTestSuite() { ::unsetenv("SYBIL_IO_FSYNC"); }
};

TEST_F(StorageEnospcSweep, EveryWritePointIsSurvivable) {
  const std::vector<osn::Event> log = build_log();

  // Reference run through a clean FaultyVfs: same op sequence as every
  // victim below up to its fault, and the op count bounds the sweep.
  RunResult control;
  std::uint64_t clean_ops = 0;
  {
    const std::string dir = fresh_dir("enospc_control");
    io::FaultyVfs vc;
    ServiceSupervisor s(make_options(dir, &vc));
    EXPECT_TRUE(s.start().cold_start);
    drive(s, log);
    s.flush();
    EXPECT_TRUE(s.accounting_ok());
    control.stats = s.stats_json();
    control.flags = s.take_flagged();
    clean_ops = vc.ops();
    fs::remove_all(dir);
  }
  ASSERT_FALSE(control.flags.empty());  // the property must bite
  ASSERT_GT(clean_ops, 100u);

  std::uint64_t runs_degraded = 0;
  std::uint64_t boot_failures = 0;
  for (std::uint64_t k = 0; k < clean_ops; ++k) {
    SCOPED_TRACE("ENOSPC from op " + std::to_string(k));
    const std::string dir = fresh_dir("enospc_sweep");
    io::FaultyVfs v;
    io::FaultConfig cfg;
    cfg.fail_from = k;
    cfg.fail_count = io::FaultConfig::kNever;  // the disk stays full
    cfg.fail_kind = io::VfsFaultKind::kNoSpace;
    v.configure(cfg);

    auto s = std::make_unique<ServiceSupervisor>(make_options(dir, &v));
    try {
      s->start();
    } catch (const io::VfsError& e) {
      // ENOSPC on a boot op: loud and typed, and a fresh boot on the
      // same dir after the disk heals must succeed.
      ASSERT_EQ(e.kind(), io::VfsFaultKind::kNoSpace);
      ++boot_failures;
      v.clear_faults();
      s = std::make_unique<ServiceSupervisor>(make_options(dir, &v));
      s->start();
    }
    // offer() never throws ENOSPC: the supervisor degrades instead.
    drive(*s, log);
    if (s->storage_degraded()) ++runs_degraded;
    EXPECT_TRUE(s->accounting_ok());

    v.clear_faults();  // the disk heals
    ASSERT_TRUE(s->retry_storage_now());
    EXPECT_FALSE(s->storage_degraded());
    s->flush();

    // Headline: byte-identical to the run whose disk never filled.
    EXPECT_EQ(s->stats_json(), control.stats);
    expect_flags_equal(s->take_flagged(), control.flags);
    s.reset();
    fs::remove_all(dir);
  }
  // The sweep must actually have exercised the degraded tier, not just
  // clean tails past the last write.
  EXPECT_GT(runs_degraded, clean_ops / 2);
  EXPECT_GT(boot_failures, 0u);
}

TEST_F(StorageEnospcSweep, ContainerCommitNeverTearsTheTarget) {
  const std::string dir = fresh_dir("container");
  const std::string target = dir + "/data.sybc";

  io::ContainerWriter w(io::PayloadKind::kDataset);
  w.add_section(1, std::vector<std::byte>(300, std::byte{0xAB}));
  w.add_section(2, std::vector<std::byte>(77, std::byte{0x01}));
  w.add_section(7, std::vector<std::byte>(512, std::byte{0xFE}));

  // Clean commit through a counting vfs bounds the sweep.
  io::FaultyVfs vc;
  w.commit(target, io::SyncMode::kEnv, &vc);
  const std::string committed = slurp(target);
  const std::uint64_t clean_ops = vc.ops();
  ASSERT_GT(clean_ops, 2u);  // temp open + write(s) + rename at least

  for (std::uint64_t k = 0; k < clean_ops; ++k) {
    SCOPED_TRACE("ENOSPC from op " + std::to_string(k));
    io::FaultyVfs v;
    io::FaultConfig cfg;
    cfg.fail_from = k;
    cfg.fail_count = io::FaultConfig::kNever;
    cfg.fail_kind = io::VfsFaultKind::kNoSpace;
    v.configure(cfg);
    EXPECT_THROW(w.commit(target, io::SyncMode::kEnv, &v), io::VfsError);
    // The committed generation is untouched and the temp was removed.
    EXPECT_EQ(slurp(target), committed);
    std::size_t entries = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      (void)e;
      ++entries;
    }
    EXPECT_EQ(entries, 1u);
  }
}

// ---------------------------------------------------------------------------
// Power-loss sweep (real fsync: barriers and rename pinning must work
// exactly as in production for the torn-state model to mean anything)

class StoragePowerLossSweep : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ::unsetenv("SYBIL_IO_FSYNC"); }
};

TEST_F(StoragePowerLossSweep, EveryFsyncBarrierIsSurvivable) {
  const std::vector<osn::Event> log = build_log();

  RunResult control;
  std::uint64_t clean_fsyncs = 0;
  {
    const std::string dir = fresh_dir("cut_control");
    io::FaultyVfs vc;
    ServiceSupervisor s(make_options(dir, &vc));
    EXPECT_TRUE(s.start().cold_start);
    drive(s, log);
    s.flush();
    control.stats = s.stats_json();
    control.flags = s.take_flagged();
    clean_fsyncs = vc.fsyncs();
    fs::remove_all(dir);
  }
  ASSERT_FALSE(control.flags.empty());
  ASSERT_GT(clean_fsyncs, 200u);  // kEveryAppend: ~one per offer

  for (std::uint64_t f = 0; f < clean_fsyncs; ++f) {
    SCOPED_TRACE("power cut at fsync " + std::to_string(f));
    const std::string dir = fresh_dir("cut_sweep");
    io::FaultyVfs v;
    io::FaultConfig cfg;
    cfg.cut_at_fsync = f;
    cfg.seed = f * 1000003 + 17;  // vary the torn-tail shape per cut
    v.configure(cfg);

    auto victim = std::make_unique<ServiceSupervisor>(make_options(dir, &v));
    bool cut = false;
    try {
      victim->start();
      drive(*victim, log);
      victim->flush();
    } catch (const io::VfsError& e) {
      // Power loss is the one storage fault that must NOT degrade:
      // the machine is gone, so it propagates typed.
      ASSERT_EQ(e.kind(), io::VfsFaultKind::kPowerLoss);
      cut = true;
    }
    // The victim's fsync ordinals track the control run exactly, so
    // every f below the clean total fires mid-run.
    ASSERT_TRUE(cut);
    victim.reset();  // dead device: teardown I/O silently no-ops

    v.reboot();
    // Generations are never corrupted by a cut: a checkpoint is only
    // visible if its bytes were fsync'd before the rename, and an
    // unpinned rename was undone by the cut. Whatever the cut left
    // visible must load.
    for (const auto& [pos, path] : list_checkpoints(dir + "/ckpt")) {
      SCOPED_TRACE(path);
      EXPECT_NO_THROW(load_service_checkpoint(path));
    }

    // Recover on the torn state root and finish the stream.
    ServiceSupervisor s(make_options(dir, &v));
    const RecoveryReport rep = s.start();
    drive(s, log, rep.next_index, rep.checkpoint_position);
    s.flush();
    EXPECT_TRUE(s.accounting_ok());
    EXPECT_EQ(s.stats_json(), control.stats);
    expect_flags_equal(s.take_flagged(), control.flags);
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace sybil::service
