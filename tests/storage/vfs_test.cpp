// Storage-VFS suite (docs/ROBUSTNESS.md §Storage fault model):
//
//   * the real passthrough: open/read/write/append/rename/truncate/
//     remove round-trips, typed open failures, default-vfs scoping;
//   * BufferedVfsFile retention: a faulted flush erases exactly the
//     written prefix, the suffix stays buffered, and a later retry
//     completes the file with no torn bytes — the property the
//     storage-degraded service tier rests on;
//   * FaultyVfs determinism: ENOSPC byte budgets persist the allowed
//     prefix, EIO op windows open and close exactly where configured,
//     short writes persist a seeded strict prefix, close-time
//     write-back failures surface as typed errors (the classic
//     swallowed-fclose bug), and `remove` is never injected;
//   * power loss: a cut keeps every fsync'd prefix, tears the unsynced
//     tail per the seed (byte-identically across re-runs), undoes
//     renames not pinned by a directory barrier, no-ops all I/O while
//     dead, and reboot()/settle() behave as documented.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "io/faulty_vfs.h"
#include "io/vfs.h"

namespace sybil::io {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_vfs_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_all(Vfs& vfs, const std::string& path, const std::string& bytes) {
  auto f = vfs.open(path, VfsMode::kTruncate);
  f->write(bytes.data(), bytes.size());
  f->close();
}

// write_all + a file barrier: content is durable, but a following rename
// still needs a directory fsync (the checkpoint commit pattern).
void write_synced(Vfs& vfs, const std::string& path, const std::string& bytes) {
  auto f = vfs.open(path, VfsMode::kTruncate);
  f->write(bytes.data(), bytes.size());
  f->fsync();
  f->close();
}

// ---------------------------------------------------------------------------
// The real passthrough

TEST(StorageVfs, RealVfsRoundTrip) {
  const std::string dir = fresh_dir("real_rt");
  const std::string path = dir + "/a.bin";
  Vfs& vfs = real_vfs();

  write_all(vfs, path, "hello world");
  {
    auto f = vfs.open(path, VfsMode::kRead);
    char buf[64];
    const std::size_t n = f->read(buf, sizeof buf);
    EXPECT_EQ(std::string(buf, n), "hello world");
    EXPECT_EQ(f->read(buf, sizeof buf), 0u);  // clean EOF
    f->close();
  }
  {
    auto f = vfs.open(path, VfsMode::kAppend);
    f->write("!", 1);
    f->fsync();
    f->close();
    f->close();  // idempotent
  }
  EXPECT_EQ(slurp(path), "hello world!");

  vfs.truncate(path, 5);
  EXPECT_EQ(slurp(path), "hello");

  const std::string moved = dir + "/b.bin";
  vfs.rename(path, moved);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(slurp(moved), "hello");
  vfs.sync_parent_dir(moved);

  EXPECT_TRUE(vfs.remove(moved));
  EXPECT_FALSE(vfs.remove(moved));  // best-effort, never throws
  EXPECT_FALSE(fs::exists(moved));
}

TEST(StorageVfs, OpenMissingFileThrowsTypedOpenError) {
  const std::string dir = fresh_dir("real_missing");
  try {
    real_vfs().open(dir + "/nope.bin", VfsMode::kRead);
    FAIL() << "expected VfsError";
  } catch (const VfsError& e) {
    EXPECT_EQ(e.code(), SnapshotErrorCode::kOpenFailed);
  }
}

TEST(StorageVfs, DefaultVfsScopingRestoresPrevious) {
  Vfs* before = default_vfs();
  ASSERT_NE(before, nullptr);
  FaultyVfs faulty;
  {
    ScopedDefaultVfs guard(&faulty);
    EXPECT_EQ(default_vfs(), &faulty);
  }
  EXPECT_EQ(default_vfs(), before);
}

// ---------------------------------------------------------------------------
// Deterministic fault injection

TEST(StorageFaulty, EnospcBudgetPersistsAllowedPrefix) {
  const std::string dir = fresh_dir("budget");
  const std::string path = dir + "/f.bin";
  FaultyVfs vfs;
  FaultConfig cfg;
  cfg.byte_budget = 10;
  vfs.configure(cfg);

  auto f = vfs.open(path, VfsMode::kTruncate);
  const std::string payload = "0123456789abcdef";  // 16 bytes
  try {
    f->write(payload.data(), payload.size());
    FAIL() << "expected kNoSpace";
  } catch (const VfsError& e) {
    EXPECT_EQ(e.kind(), VfsFaultKind::kNoSpace);
    EXPECT_EQ(e.bytes_written(), 10u);  // the crossing write's prefix
  }
  EXPECT_EQ(vfs.faults_injected(), 1u);

  // The caller retries exactly the unwritten suffix after the disk heals.
  vfs.clear_faults();
  f->write(payload.data() + 10, payload.size() - 10);
  f->close();
  EXPECT_EQ(slurp(path), payload);
}

TEST(StorageFaulty, EioWindowOpensAndClosesExactly) {
  const std::string dir = fresh_dir("eio");
  const std::string path = dir + "/f.bin";
  FaultyVfs vfs;
  auto f = vfs.open(path, VfsMode::kTruncate);  // op 0
  FaultConfig cfg;
  cfg.fail_from = vfs.ops();  // ops 1 and 2 fail
  cfg.fail_count = 2;
  cfg.fail_kind = VfsFaultKind::kIoError;
  vfs.configure(cfg);

  for (int i = 0; i < 2; ++i) {
    try {
      f->write("x", 1);
      FAIL() << "expected kIoError at op " << i;
    } catch (const VfsError& e) {
      EXPECT_EQ(e.kind(), VfsFaultKind::kIoError);
      EXPECT_EQ(e.bytes_written(), 0u);
    }
  }
  f->write("x", 1);  // the window closed; op 3 succeeds
  f->close();
  EXPECT_EQ(slurp(path), "x");
  EXPECT_EQ(vfs.faults_injected(), 2u);
}

TEST(StorageFaulty, ShortWritePersistsSeededStrictPrefix) {
  const std::string payload(100, 'z');
  std::size_t first_len = 0;
  for (int round = 0; round < 2; ++round) {
    const std::string dir = fresh_dir("short" + std::to_string(round));
    const std::string path = dir + "/f.bin";
    FaultyVfs vfs;
    auto f = vfs.open(path, VfsMode::kTruncate);
    FaultConfig cfg;
    cfg.fail_from = vfs.ops();
    cfg.fail_count = 1;
    cfg.fail_kind = VfsFaultKind::kShortWrite;
    cfg.seed = 42;
    vfs.configure(cfg);
    try {
      f->write(payload.data(), payload.size());
      FAIL() << "expected kShortWrite";
    } catch (const VfsError& e) {
      EXPECT_EQ(e.kind(), VfsFaultKind::kShortWrite);
      EXPECT_LT(e.bytes_written(), payload.size());  // strict prefix
      f->close();
      EXPECT_EQ(slurp(path), payload.substr(0, e.bytes_written()));
      if (round == 0) {
        first_len = e.bytes_written();
      } else {
        EXPECT_EQ(e.bytes_written(), first_len);  // seed-deterministic
      }
    }
  }
}

TEST(StorageFaulty, RemoveIsNeverInjected) {
  const std::string dir = fresh_dir("remove");
  const std::string path = dir + "/f.bin";
  FaultyVfs vfs;
  write_all(vfs, path, "x");
  const std::uint64_t ops = vfs.ops();
  FaultConfig cfg;
  cfg.fail_from = 0;
  cfg.fail_count = FaultConfig::kNever;
  vfs.configure(cfg);
  EXPECT_TRUE(vfs.remove(path));  // cleanup arm: no throw, no op charged
  EXPECT_EQ(vfs.ops(), ops);
  EXPECT_FALSE(fs::exists(path));
}

// ---------------------------------------------------------------------------
// BufferedVfsFile retention

TEST(StorageBuffered, FlushErasesExactlyTheWrittenPrefix) {
  const std::string dir = fresh_dir("retain");
  const std::string path = dir + "/f.bin";
  FaultyVfs vfs;
  FaultConfig cfg;
  cfg.byte_budget = 10;
  vfs.configure(cfg);

  BufferedVfsFile b(vfs.open(path, VfsMode::kTruncate));
  const std::string payload = "the quick brown fox jumps";  // 25 bytes
  b.write(payload.data(), payload.size());
  EXPECT_EQ(b.buffered(), payload.size());

  try {
    b.flush();
    FAIL() << "expected kNoSpace";
  } catch (const VfsError& e) {
    EXPECT_EQ(e.kind(), VfsFaultKind::kNoSpace);
  }
  // 10 bytes reached the file; exactly the suffix stays buffered.
  EXPECT_EQ(b.buffered(), payload.size() - 10);

  vfs.clear_faults();
  b.flush();  // resumes precisely where the fault struck
  EXPECT_EQ(b.buffered(), 0u);
  b.close();
  EXPECT_EQ(slurp(path), payload);  // no torn or duplicated bytes
}

TEST(StorageBuffered, CloseSurfacesWriteBackFailureAsTypedError) {
  const std::string dir = fresh_dir("close_err");
  const std::string path = dir + "/f.bin";
  FaultyVfs vfs;
  BufferedVfsFile b(vfs.open(path, VfsMode::kTruncate));
  b.write("doomed", 6);
  FaultConfig cfg;
  cfg.byte_budget = 0;
  vfs.configure(cfg);
  // The classic fclose bug inverted: the close-time write-back failure
  // is a typed error, not a silently dropped buffer.
  try {
    b.close();
    FAIL() << "expected kNoSpace from close";
  } catch (const VfsError& e) {
    EXPECT_EQ(e.kind(), VfsFaultKind::kNoSpace);
  }
  vfs.clear_faults();
  b.close();  // retry: the retained bytes land
  EXPECT_EQ(slurp(path), "doomed");
}

// ---------------------------------------------------------------------------
// Power loss

TEST(StoragePower, CutKeepsSyncedPrefixAndTearsUnsyncedTail) {
  const std::string dir = fresh_dir("cut");
  const std::string path = dir + "/f.bin";
  FaultyVfs vfs;
  FaultConfig cfg;
  cfg.seed = 7;
  vfs.configure(cfg);

  auto f = vfs.open(path, VfsMode::kTruncate);
  f->write("AAAA", 4);
  f->fsync();  // durable barrier
  f->write("BBBBBBBB", 8);
  vfs.cut_power();
  EXPECT_TRUE(vfs.dead());

  const std::string survived = slurp(path);
  ASSERT_GE(survived.size(), 4u);  // the fsync'd prefix always survives
  EXPECT_LT(survived.size(), 12u);  // the unsynced tail never fully does
  EXPECT_EQ(survived.substr(0, 4), "AAAA");

  // Dead device: all I/O silently no-ops until reboot.
  f->write("CCCC", 4);
  char buf[8];
  EXPECT_EQ(f->read(buf, sizeof buf), 0u);
  EXPECT_NO_THROW(vfs.rename(path, dir + "/g.bin"));
  EXPECT_EQ(slurp(path), survived);
  vfs.reboot();
  EXPECT_FALSE(vfs.dead());
}

TEST(StoragePower, TearIsByteDeterministicPerSeed) {
  std::string first;
  for (int round = 0; round < 2; ++round) {
    const std::string dir = fresh_dir("cut_det" + std::to_string(round));
    const std::string path = dir + "/f.bin";
    FaultyVfs vfs;
    FaultConfig cfg;
    cfg.seed = 99;
    vfs.configure(cfg);
    auto f = vfs.open(path, VfsMode::kTruncate);
    const std::string payload(64, 'Q');
    f->write(payload.data(), 16);
    f->fsync();
    f->write(payload.data() + 16, 48);
    vfs.cut_power();
    if (round == 0) {
      first = slurp(path);
    } else {
      EXPECT_EQ(slurp(path), first);  // same seed, same ops → same bytes
    }
  }
}

TEST(StoragePower, CutAtFsyncLandsBeforeDurability) {
  const std::string dir = fresh_dir("cut_fsync");
  const std::string path = dir + "/f.bin";
  FaultyVfs vfs;
  FaultConfig cfg;
  cfg.cut_at_fsync = 0;  // the very first barrier
  cfg.seed = 3;
  vfs.configure(cfg);
  auto f = vfs.open(path, VfsMode::kTruncate);
  f->write("unsynced", 8);
  try {
    f->fsync();
    FAIL() << "expected kPowerLoss";
  } catch (const VfsError& e) {
    EXPECT_EQ(e.kind(), VfsFaultKind::kPowerLoss);
  }
  EXPECT_TRUE(vfs.dead());
  // The cut lands before the fsync pins anything: the tail is torn.
  EXPECT_LT(slurp(path).size(), 8u);
}

TEST(StoragePower, CutAtOpFiresAtExactlyThatMutation) {
  const std::string dir = fresh_dir("cut_op");
  const std::string path = dir + "/f.bin";
  FaultyVfs vfs;
  auto f = vfs.open(path, VfsMode::kTruncate);  // op 0
  FaultConfig cfg;
  cfg.cut_at_op = vfs.ops() + 1;  // op 1 passes, op 2 cuts
  vfs.configure(cfg);
  f->write("ok", 2);  // op 1
  try {
    f->write("!!", 2);  // op 2
    FAIL() << "expected kPowerLoss";
  } catch (const VfsError& e) {
    EXPECT_EQ(e.kind(), VfsFaultKind::kPowerLoss);
  }
  EXPECT_TRUE(vfs.dead());
}

TEST(StoragePower, RenameUndoneUnlessDirectoryBarrierRan) {
  // Without the directory barrier: the file's bytes are durable (file
  // fsync ran) but the rename lives in directory metadata only, so the
  // cut undoes it and the content reappears under the old name.
  {
    const std::string dir = fresh_dir("ren_undo");
    FaultyVfs vfs;
    write_synced(vfs, dir + "/tmp", "payload");
    vfs.rename(dir + "/tmp", dir + "/final");
    vfs.cut_power();
    EXPECT_FALSE(fs::exists(dir + "/final"));
    EXPECT_EQ(slurp(dir + "/tmp"), "payload");
  }
  // With the barrier: the rename is pinned.
  {
    const std::string dir = fresh_dir("ren_pin");
    FaultyVfs vfs;
    write_synced(vfs, dir + "/tmp", "payload");
    vfs.rename(dir + "/tmp", dir + "/final");
    vfs.sync_parent_dir(dir + "/final");
    vfs.cut_power();
    EXPECT_EQ(slurp(dir + "/final"), "payload");
  }
}

TEST(StoragePower, SettleDeclaresHistoryDurable) {
  const std::string dir = fresh_dir("settle");
  FaultyVfs vfs;
  write_all(vfs, dir + "/tmp", "generation");
  vfs.rename(dir + "/tmp", dir + "/final");  // no barrier ran
  vfs.settle();  // ...but the device quiesced before the fault plan
  vfs.cut_power();
  EXPECT_EQ(slurp(dir + "/final"), "generation");  // intact, rename kept
}

}  // namespace
}  // namespace sybil::io
