#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sybil::stats {
namespace {

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Summarize, MatchesRunning) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const RunningStats s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{5.0}), 5.0);
  EXPECT_THROW(median(std::vector<double>{}), std::invalid_argument);
}

TEST(Gini, KnownCases) {
  // Perfect equality → 0.
  EXPECT_NEAR(gini(std::vector<double>{1.0, 1.0, 1.0, 1.0}), 0.0, 1e-12);
  // All mass on one of n: gini = (n-1)/n.
  EXPECT_NEAR(gini(std::vector<double>{0.0, 0.0, 0.0, 10.0}), 0.75, 1e-12);
  EXPECT_THROW(gini(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(gini(std::vector<double>{-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(gini(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, Uncorrelated) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {1.0, -1.0, 1.0, -1.0};
  EXPECT_NEAR(pearson(xs, ys), std::abs(pearson(xs, ys)) < 0.5
                                   ? pearson(xs, ys)
                                   : 0.0,
              0.5);
}

TEST(Pearson, Errors) {
  EXPECT_THROW(pearson(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(pearson(std::vector<double>{1.0, 2.0},
                       std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(pearson(std::vector<double>{1.0, 1.0},
                       std::vector<double>{1.0, 2.0}),
               std::domain_error);
}

}  // namespace
}  // namespace sybil::stats
