#include "stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace sybil::stats {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
  }
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  std::uint64_t a = 1, b = 2;
  EXPECT_NE(splitmix64_next(a), splitmix64_next(b));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 45u);  // no degenerate all-zero state
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRange) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIndexRespectsBound) {
  Rng r(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 500; ++i) {
      ASSERT_LT(r.uniform_index(bound), bound);
    }
  }
}

TEST(Rng, UniformIndexBoundOneAlwaysZero) {
  Rng r(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng r(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) ++counts[r.uniform_index(6)];
  for (int c : counts) EXPECT_GT(c, 800);  // each face near 1000
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(12);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.uniform_int(-2, 2);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(14);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(100);
  Rng child = a.fork();
  // Child stream should not simply replay the parent stream.
  Rng parent_copy(100);
  (void)parent_copy();  // align with the fork draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child() == parent_copy());
  EXPECT_LT(equal, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, MeanAndVarianceNearUniform) {
  Rng r(GetParam());
  const int n = 10000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.uniform();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.03);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 31337ull,
                                           0xffffffffffffffffull));

}  // namespace
}  // namespace sybil::stats
