#include "stats/cdf.h"

#include <gtest/gtest.h>

#include <vector>

namespace sybil::stats {
namespace {

TEST(EmpiricalCdf, BasicFractions) {
  const std::vector<double> sample = {1.0, 2.0, 3.0, 4.0};
  EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, HandlesDuplicates) {
  const std::vector<double> sample = {1.0, 1.0, 1.0, 2.0};
  EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.75);
}

TEST(EmpiricalCdf, Quantiles) {
  const std::vector<double> sample = {5.0, 1.0, 3.0, 2.0, 4.0};
  EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_THROW(cdf.quantile(1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, MinMaxMean) {
  const std::vector<double> sample = {2.0, 8.0};
  EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.min(), 2.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 8.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 5.0);
}

TEST(EmpiricalCdf, EmptySampleThrows) {
  EXPECT_THROW(EmpiricalCdf(std::vector<double>{}), std::invalid_argument);
}

TEST(EmpiricalCdf, SeriesIsMonotonic) {
  std::vector<double> sample;
  for (int i = 0; i < 100; ++i) sample.push_back(i * i * 0.01);
  EmpiricalCdf cdf(sample);
  const auto pts = cdf.series(40);
  ASSERT_EQ(pts.size(), 40u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].cdf_percent, pts[i - 1].cdf_percent);
    EXPECT_GE(pts[i].x, pts[i - 1].x);
  }
  EXPECT_DOUBLE_EQ(pts.back().cdf_percent, 100.0);
}

TEST(EmpiricalCdf, LogSeriesRequiresPositive) {
  EmpiricalCdf with_zero(std::vector<double>{0.0, 1.0});
  EXPECT_THROW(with_zero.log_series(10), std::domain_error);
  EmpiricalCdf positive(std::vector<double>{0.1, 10.0, 1000.0});
  const auto pts = positive.log_series(10);
  EXPECT_NEAR(pts.front().x, 0.1, 1e-9);
  EXPECT_NEAR(pts.back().x, 1000.0, 1e-6);
}

TEST(EmpiricalCdf, TsvHasOneRowPerPoint) {
  EmpiricalCdf cdf(std::vector<double>{1.0, 2.0, 3.0});
  const std::string tsv = cdf.to_tsv(10);
  EXPECT_EQ(std::count(tsv.begin(), tsv.end(), '\n'), 10);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(LogHistogram, DecadeBins) {
  LogHistogram h(1.0, 1000.0, 1);  // one bin per decade
  h.add(2.0);     // decade [1, 10)
  h.add(50.0);    // decade [10, 100)
  h.add(999.0);   // decade [100, 1000)
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_NEAR(h.bin_lower(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_upper(1), 100.0, 1e-9);
}

TEST(LogHistogram, ClampsOutOfRange) {
  LogHistogram h(1.0, 100.0, 1);
  h.add(0.0);     // below range → bin 0
  h.add(1e9);     // above range → last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(h.bins() - 1), 1u);
}

TEST(LogHistogram, RejectsBadParameters) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 1), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sybil::stats
