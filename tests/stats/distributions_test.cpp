#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace sybil::stats {
namespace {

TEST(Exponential, MeanMatchesRate) {
  Rng r(1);
  const double lambda = 2.5;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += sample_exponential(r, lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.02);
}

TEST(Exponential, RejectsNonPositiveRate) {
  Rng r(2);
  EXPECT_THROW(sample_exponential(r, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_exponential(r, -1.0), std::invalid_argument);
}

TEST(Poisson, SmallMean) {
  Rng r(3);
  const double mean = 3.7;
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(sample_poisson(r, mean));
    sum += x;
    sq += x * x;
  }
  const double m = sum / n;
  EXPECT_NEAR(m, mean, 0.1);
  EXPECT_NEAR(sq / n - m * m, mean, 0.2);  // Poisson variance == mean
}

TEST(Poisson, LargeMeanUsesNormalApprox) {
  Rng r(4);
  const double mean = 500.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(sample_poisson(r, mean));
  }
  EXPECT_NEAR(sum / n, mean, 2.0);
}

TEST(Poisson, ZeroMeanIsZero) {
  Rng r(5);
  EXPECT_EQ(sample_poisson(r, 0.0), 0u);
}

TEST(Poisson, NegativeMeanThrows) {
  Rng r(6);
  EXPECT_THROW(sample_poisson(r, -1.0), std::invalid_argument);
}

TEST(Lognormal, MedianIsExpMu) {
  Rng r(7);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = sample_lognormal(r, std::log(50.0), 0.5);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 50.0, 2.0);
}

TEST(Normal, MeanAndStd) {
  Rng r(8);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_normal(r, 10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double m = sum / n;
  EXPECT_NEAR(m, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - m * m), 3.0, 0.05);
}

TEST(BoundedPareto, StaysInRange) {
  Rng r(9);
  for (int i = 0; i < 5000; ++i) {
    const double x = sample_bounded_pareto(r, 1.5, 2.0, 100.0);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 100.0);
  }
}

TEST(BoundedPareto, RejectsBadParameters) {
  Rng r(10);
  EXPECT_THROW(sample_bounded_pareto(r, 0.0, 1.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(sample_bounded_pareto(r, 1.0, 0.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(sample_bounded_pareto(r, 1.0, 3.0, 2.0),
               std::invalid_argument);
}

TEST(Zipf, RanksInBounds) {
  Rng r(11);
  ZipfSampler zipf(100, 1.2);
  for (int i = 0; i < 5000; ++i) {
    const auto k = zipf(r);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
  }
}

TEST(Zipf, FrequencyDecreasesWithRank) {
  Rng r(12);
  ZipfSampler zipf(50, 1.0);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(r)];
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], counts[25]);
  // Rank-1 to rank-2 ratio approximates 2^s = 2.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.3);
}

TEST(Zipf, ExponentNearOneIsHandled) {
  Rng r(13);
  ZipfSampler zipf(100, 1.0);  // the log-antiderivative branch
  std::uint64_t total = 0;
  for (int i = 0; i < 1000; ++i) total += zipf(r);
  EXPECT_GT(total, 1000u);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
}

TEST(Alias, MatchesWeights) {
  Rng r(14);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  AliasSampler alias(weights);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[alias(r)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Alias, ZeroWeightNeverSampled) {
  Rng r(15);
  const std::vector<double> weights = {0.0, 1.0, 0.0, 1.0};
  AliasSampler alias(weights);
  for (int i = 0; i < 10000; ++i) {
    const auto k = alias(r);
    ASSERT_TRUE(k == 1 || k == 3);
  }
}

TEST(Alias, RejectsInvalidWeights) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{-1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{
                   std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(Alias, SingleElement) {
  Rng r(16);
  AliasSampler alias(std::vector<double>{5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias(r), 0u);
}

TEST(WeightedOnce, MatchesWeights) {
  Rng r(17);
  const std::vector<double> weights = {2.0, 0.0, 8.0};
  std::vector<int> counts(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[sample_weighted_once(r, weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.01);
}

TEST(WeightedOnce, RejectsZeroTotal) {
  Rng r(18);
  EXPECT_THROW(sample_weighted_once(r, std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

TEST(SampleDistinct, ProducesDistinctValuesInRange) {
  Rng r(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = sample_distinct(r, 100, 10);
    ASSERT_EQ(picks.size(), 10u);
    std::set<std::uint64_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 10u);
    for (auto p : picks) EXPECT_LT(p, 100u);
  }
}

TEST(SampleDistinct, FullRange) {
  Rng r(20);
  const auto picks = sample_distinct(r, 5, 5);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(SampleDistinct, RejectsKGreaterThanN) {
  Rng r(21);
  EXPECT_THROW(sample_distinct(r, 3, 4), std::invalid_argument);
}

TEST(Shuffle, IsPermutation) {
  Rng r(22);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(r, v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Shuffle, ActuallyShuffles) {
  Rng r(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(r, v);
  int in_place = 0;
  for (int i = 0; i < 100; ++i) in_place += v[i] == i;
  EXPECT_LT(in_place, 10);
}

}  // namespace
}  // namespace sybil::stats
