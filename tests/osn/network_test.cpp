#include "osn/network.h"

#include <gtest/gtest.h>

namespace sybil::osn {
namespace {

Account normal_account() {
  Account a;
  a.kind = AccountKind::kNormal;
  return a;
}

Account sybil_account() {
  Account a;
  a.kind = AccountKind::kSybil;
  return a;
}

const Network::DecideFn kAcceptAll = [](NodeId, NodeId, std::uint8_t) {
  return true;
};
const Network::DecideFn kRejectAll = [](NodeId, NodeId, std::uint8_t) {
  return false;
};

TEST(Network, RequestLifecycleAccept) {
  Network net(true);
  const NodeId a = net.add_account(normal_account());
  const NodeId b = net.add_account(normal_account());
  EXPECT_EQ(net.send_request(a, b, 1.0, 2.0), RequestResult::kSent);
  EXPECT_EQ(net.pending_count(), 1u);
  EXPECT_FALSE(net.graph().has_edge(a, b));
  // Not yet due.
  EXPECT_EQ(net.process_responses(1.5, kAcceptAll), 0u);
  EXPECT_EQ(net.process_responses(2.5, kAcceptAll), 1u);
  EXPECT_TRUE(net.graph().has_edge(a, b));
  EXPECT_DOUBLE_EQ(*net.graph().edge_time(a, b), 2.0);
  EXPECT_EQ(net.ledger(a).sent(), 1u);
  EXPECT_EQ(net.ledger(a).sent_accepted(), 1u);
  EXPECT_EQ(net.ledger(b).received(), 1u);
  EXPECT_EQ(net.ledger(b).received_accepted(), 1u);
  EXPECT_EQ(net.log().count(EventType::kRequestAccepted), 1u);
}

TEST(Network, RequestLifecycleReject) {
  Network net;
  const NodeId a = net.add_account(normal_account());
  const NodeId b = net.add_account(normal_account());
  net.send_request(a, b, 0.0, 1.0);
  EXPECT_EQ(net.process_responses(2.0, kRejectAll), 0u);
  EXPECT_FALSE(net.graph().has_edge(a, b));
  EXPECT_EQ(net.ledger(a).sent_accepted(), 0u);
  EXPECT_EQ(net.ledger(b).received_accepted(), 0u);
}

TEST(Network, RejectsInvalidRequests) {
  Network net;
  const NodeId a = net.add_account(normal_account());
  const NodeId b = net.add_account(normal_account());
  EXPECT_EQ(net.send_request(a, a, 0.0, 1.0), RequestResult::kInvalid);
  EXPECT_EQ(net.send_request(a, 99, 0.0, 1.0), RequestResult::kInvalid);
  EXPECT_EQ(net.send_request(a, b, 0.0, 1.0), RequestResult::kSent);
  EXPECT_EQ(net.send_request(a, b, 0.5, 1.0), RequestResult::kDuplicate);
  // Reverse direction is a separate request.
  EXPECT_EQ(net.send_request(b, a, 0.5, 1.0), RequestResult::kSent);
}

TEST(Network, DuplicateAfterFriendshipIsAlreadyFriends) {
  Network net;
  const NodeId a = net.add_account(normal_account());
  const NodeId b = net.add_account(normal_account());
  net.add_friendship(a, b, 0.0);
  EXPECT_EQ(net.send_request(a, b, 1.0, 2.0), RequestResult::kAlreadyFriends);
}

TEST(Network, BanDropsPendingBothDirections) {
  Network net(true);
  const NodeId a = net.add_account(normal_account());
  const NodeId s = net.add_account(sybil_account());
  const NodeId b = net.add_account(normal_account());
  net.send_request(a, s, 0.0, 5.0);  // incoming to s
  net.send_request(s, b, 0.0, 5.0);  // outgoing from s
  net.ban(s, 1.0);
  EXPECT_TRUE(net.account(s).banned());
  EXPECT_EQ(net.process_responses(10.0, kAcceptAll), 0u);
  EXPECT_FALSE(net.graph().has_edge(a, s));
  EXPECT_FALSE(net.graph().has_edge(s, b));
  EXPECT_EQ(net.log().count(EventType::kRequestDropped), 2u);
  // The received counter keeps the censored request: incoming accept
  // ratio < 1, the Fig 3 censoring effect.
  EXPECT_EQ(net.ledger(s).received(), 1u);
  EXPECT_EQ(net.ledger(s).received_accepted(), 0u);
}

TEST(Network, BannedPartiesCannotSend) {
  Network net;
  const NodeId a = net.add_account(normal_account());
  const NodeId b = net.add_account(normal_account());
  net.ban(a, 0.0);
  EXPECT_EQ(net.send_request(a, b, 1.0, 2.0), RequestResult::kPartyBanned);
  EXPECT_EQ(net.send_request(b, a, 1.0, 2.0), RequestResult::kPartyBanned);
}

TEST(Network, BanIsIdempotent) {
  Network net;
  const NodeId a = net.add_account(normal_account());
  net.ban(a, 1.0);
  net.ban(a, 5.0);
  EXPECT_DOUBLE_EQ(*net.account(a).banned_at, 1.0);
}

TEST(Network, TagReachesDecision) {
  Network net;
  const NodeId a = net.add_account(normal_account());
  const NodeId b = net.add_account(normal_account());
  net.send_request(a, b, 0.0, 1.0, /*tag=*/7);
  std::uint8_t seen_tag = 0;
  net.process_responses(2.0, [&](NodeId, NodeId, std::uint8_t tag) {
    seen_tag = tag;
    return false;
  });
  EXPECT_EQ(seen_tag, 7);
}

TEST(Network, StrangerEdgesAreWeak) {
  Network net;
  const NodeId a = net.add_account(normal_account());
  const NodeId b = net.add_account(normal_account());
  const NodeId c = net.add_account(normal_account());
  net.send_request(a, b, 0.0, 1.0, /*tag=stranger*/ 0);
  net.send_request(a, c, 0.0, 1.0, /*tag=fof*/ 1);
  net.process_responses(2.0, kAcceptAll);
  for (const auto& nb : net.graph().neighbors(a)) {
    EXPECT_EQ(nb.weak, nb.node == b);
  }
}

TEST(Network, ResponsesProcessedInTimeOrder) {
  Network net;
  const NodeId a = net.add_account(normal_account());
  const NodeId b = net.add_account(normal_account());
  const NodeId c = net.add_account(normal_account());
  net.send_request(a, b, 0.0, 5.0);
  net.send_request(a, c, 0.0, 2.0);
  net.process_responses(10.0, kAcceptAll);
  // Edge times match respond_at and neighbor order is chronological.
  const auto nbrs = net.graph().neighbors(a);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].node, c);
  EXPECT_EQ(nbrs[1].node, b);
}

TEST(Network, IdsOfKind) {
  Network net;
  net.add_account(normal_account());
  const NodeId s = net.add_account(sybil_account());
  net.add_account(normal_account());
  const auto sybils = net.ids_of_kind(AccountKind::kSybil);
  ASSERT_EQ(sybils.size(), 1u);
  EXPECT_EQ(sybils[0], s);
  EXPECT_EQ(net.ids_of_kind(AccountKind::kNormal).size(), 2u);
}

TEST(Network, AddFriendshipValidation) {
  Network net;
  const NodeId a = net.add_account(normal_account());
  EXPECT_THROW(net.add_friendship(a, 42, 0.0), std::out_of_range);
}

}  // namespace
}  // namespace sybil::osn
