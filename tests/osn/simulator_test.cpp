// Integration-style tests of the ground-truth simulator at reduced scale.
// These verify the *mechanisms* (feature separation directions, censoring,
// determinism); the full-scale calibration against paper numbers lives in
// the benches and EXPERIMENTS.md.
#include "osn/simulator.h"

#include <gtest/gtest.h>

#include "core/ground_truth.h"
#include "stats/summary.h"

namespace sybil::osn {
namespace {

GroundTruthConfig small_config(std::uint64_t seed = 42) {
  GroundTruthConfig c;
  c.background_users = 3000;
  c.subject_normals = 120;
  c.subject_sybils = 120;
  c.sim_hours = 200.0;
  c.seed = seed;
  return c;
}

class SimulatorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim_ = new GroundTruthSimulator(small_config());
    sim_->run();
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }
  static GroundTruthSimulator* sim_;
};

GroundTruthSimulator* SimulatorFixture::sim_ = nullptr;

TEST_F(SimulatorFixture, PopulationsTracked) {
  EXPECT_EQ(sim_->subject_normals().size(), 120u);
  EXPECT_EQ(sim_->subject_sybils().size(), 120u);
  EXPECT_EQ(sim_->network().account_count(), 3000u + 120u + 120u);
}

TEST_F(SimulatorFixture, RunTwiceThrows) {
  EXPECT_THROW(sim_->run(), std::logic_error);
}

TEST_F(SimulatorFixture, SybilsSendMoreAndAreAcceptedLess) {
  const auto nc =
      core::feature_columns(sim_->network(), sim_->subject_normals());
  const auto sc =
      core::feature_columns(sim_->network(), sim_->subject_sybils());
  const double n_rate = stats::summarize(nc.invite_rate_short).mean();
  const double s_rate = stats::summarize(sc.invite_rate_short).mean();
  EXPECT_GT(s_rate, 5.0 * n_rate);
  const double n_acc = stats::summarize(nc.outgoing_accept).mean();
  const double s_acc = stats::summarize(sc.outgoing_accept).mean();
  EXPECT_GT(n_acc, 1.8 * s_acc);
}

TEST_F(SimulatorFixture, SybilsAcceptNearlyAllIncoming) {
  const auto sc =
      core::feature_columns(sim_->network(), sim_->subject_sybils());
  EXPECT_GT(stats::summarize(sc.incoming_accept).mean(), 0.85);
}

TEST_F(SimulatorFixture, SybilClusteringBelowNormal) {
  const auto nc =
      core::feature_columns(sim_->network(), sim_->subject_normals());
  const auto sc =
      core::feature_columns(sim_->network(), sim_->subject_sybils());
  EXPECT_GT(stats::summarize(nc.clustering).mean(),
            2.0 * stats::summarize(sc.clustering).mean());
}

TEST_F(SimulatorFixture, AllSybilsEventuallyBanned) {
  // Ban window [60, 380] exceeds the 200h run for some Sybils, so not
  // all are banned — but some must be, and banned ones stop at their
  // ban time.
  std::size_t banned = 0;
  for (NodeId s : sim_->subject_sybils()) {
    if (sim_->network().account(s).banned()) {
      ++banned;
      EXPECT_LE(*sim_->network().account(s).banned_at, 200.0);
    }
  }
  EXPECT_GT(banned, 20u);
}

TEST_F(SimulatorFixture, SomeSybilsCensoredByBan) {
  // At least one banned Sybil should have an unanswered (dropped)
  // incoming request — the Fig 3 censoring effect.
  std::size_t censored = 0;
  for (NodeId s : sim_->subject_sybils()) {
    const auto& led = sim_->network().ledger(s);
    if (sim_->network().account(s).banned() &&
        led.received() > led.received_accepted()) {
      ++censored;
    }
  }
  EXPECT_GT(censored, 0u);
}

TEST_F(SimulatorFixture, BudgetsRespected) {
  for (NodeId s : sim_->subject_sybils()) {
    const Account& acc = sim_->network().account(s);
    if (acc.request_budget > 0) {
      EXPECT_LE(sim_->network().ledger(s).sent(), acc.request_budget);
    }
  }
}

TEST(Simulator, DeterministicAcrossRuns) {
  GroundTruthSimulator a(small_config(7)), b(small_config(7));
  a.run();
  b.run();
  EXPECT_EQ(a.network().graph().edge_count(),
            b.network().graph().edge_count());
  for (NodeId s : a.subject_sybils()) {
    EXPECT_EQ(a.network().ledger(s).sent(), b.network().ledger(s).sent());
  }
}

TEST(Simulator, DifferentSeedsDiffer) {
  GroundTruthSimulator a(small_config(1)), b(small_config(2));
  a.run();
  b.run();
  EXPECT_NE(a.network().graph().edge_count(),
            b.network().graph().edge_count());
}

}  // namespace
}  // namespace sybil::osn
