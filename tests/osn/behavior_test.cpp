#include "osn/behavior.h"

#include <gtest/gtest.h>

#include "stats/summary.h"

namespace sybil::osn {
namespace {

TEST(Behavior, NormalAccountPopulationStatistics) {
  NormalBehaviorParams p;
  stats::Rng rng(1);
  int female = 0, aggressive = 0;
  stats::RunningStats openness;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Account a = make_normal_account(p, 0.0, rng);
    EXPECT_EQ(a.kind, AccountKind::kNormal);
    EXPECT_FALSE(a.banned());
    EXPECT_GE(a.openness, 0.0);
    EXPECT_LE(a.openness, 1.0);
    female += a.gender == Gender::kFemale;
    aggressive += a.invite_rate > p.session_invites_cap;
    openness.add(a.openness);
  }
  EXPECT_NEAR(female / static_cast<double>(n), p.female_fraction, 0.02);
  EXPECT_NEAR(aggressive / static_cast<double>(n), p.aggressive_fraction,
              0.005);
  EXPECT_NEAR(openness.mean(), 0.5, 0.05);  // openness heterogeneity
}

TEST(Behavior, AggressiveNormalsCappedBelowSybilRates) {
  NormalBehaviorParams p;
  stats::Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const Account a = make_normal_account(p, 0.0, rng);
    EXPECT_LE(a.invite_rate, p.aggressive_rate_cap);
  }
}

TEST(Behavior, SybilAccountProperties) {
  SybilBehaviorParams p;
  stats::Rng rng(3);
  int female = 0, stealthy = 0;
  stats::RunningStats rate;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Account a = make_sybil_account(p, 5.0, rng);
    EXPECT_EQ(a.kind, AccountKind::kSybil);
    EXPECT_DOUBLE_EQ(a.created_at, 5.0);
    EXPECT_DOUBLE_EQ(a.openness, 1.0);  // accepts everything
    EXPECT_GT(a.request_budget, 0u);
    EXPECT_GE(a.attractiveness, 0.0);
    EXPECT_LE(a.attractiveness, 1.0);
    female += a.gender == Gender::kFemale;
    stealthy += a.stealthy;
    if (!a.stealthy) rate.add(a.invite_rate);
  }
  EXPECT_NEAR(female / static_cast<double>(n), p.female_fraction, 0.02);
  EXPECT_NEAR(stealthy / static_cast<double>(n), p.stealth_fraction, 0.005);
  // Lognormal(ln 60, 0.45) mean ≈ 60 * exp(0.45²/2) ≈ 66.4.
  EXPECT_NEAR(rate.mean(), 66.4, 3.0);
}

TEST(Behavior, StealthySybilsAreThrottled) {
  SybilBehaviorParams p;
  p.stealth_fraction = 1.0;
  stats::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const Account a = make_sybil_account(p, 0.0, rng);
    EXPECT_TRUE(a.stealthy);
    EXPECT_LT(a.invite_rate, 40.0);  // throttled below the Fig 1 threshold
  }
}

TEST(Behavior, FofRequestsAcceptedMoreThanStranger) {
  NormalBehaviorParams p;
  stats::Rng rng(5);
  Account target = make_normal_account(p, 0.0, rng);
  target.openness = 0.5;
  Account requester = make_normal_account(p, 0.0, rng);
  requester.attractiveness = 0.5;
  int fof = 0, stranger = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    fof += normal_accepts(p, target, requester, kTagFriendOfFriend, rng);
    stranger += normal_accepts(p, target, requester, kTagStranger, rng);
  }
  // FoF ≈ base + openness-term; stranger ≈ openness * scale * (...).
  EXPECT_NEAR(fof / static_cast<double>(n),
              p.fof_accept_base + p.fof_accept_openness * 0.5, 0.02);
  EXPECT_NEAR(stranger / static_cast<double>(n),
              0.5 * p.stranger_scale * (0.35 + 0.65 * 0.5), 0.02);
  EXPECT_GT(fof, 2 * stranger);
}

TEST(Behavior, AttractivenessRaisesStrangerAcceptance) {
  NormalBehaviorParams p;
  stats::Rng rng(6);
  Account target;
  target.openness = 0.8;
  Account plain, attractive;
  plain.attractiveness = 0.2;
  attractive.attractiveness = 0.95;
  int plain_ok = 0, attractive_ok = 0;
  for (int i = 0; i < 20000; ++i) {
    plain_ok += normal_accepts(p, target, plain, kTagStranger, rng);
    attractive_ok += normal_accepts(p, target, attractive, kTagStranger, rng);
  }
  EXPECT_GT(attractive_ok, plain_ok * 3 / 2);
}

TEST(Behavior, ClosedUsersRarelyAcceptStrangers) {
  NormalBehaviorParams p;
  stats::Rng rng(7);
  Account target;
  target.openness = 0.0;
  Account requester;
  requester.attractiveness = 1.0;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(normal_accepts(p, target, requester, kTagStranger, rng));
  }
}

}  // namespace
}  // namespace sybil::osn
