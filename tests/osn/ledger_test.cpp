#include "osn/ledger.h"

#include <gtest/gtest.h>

namespace sybil::osn {
namespace {

TEST(Ledger, StartsEmpty) {
  RequestLedger led;
  EXPECT_EQ(led.sent(), 0u);
  EXPECT_EQ(led.received(), 0u);
  EXPECT_DOUBLE_EQ(led.short_term_rate(), 0.0);
  EXPECT_DOUBLE_EQ(led.long_term_rate(400.0), 0.0);
}

TEST(Ledger, CountsSentAndAccepted) {
  RequestLedger led;
  led.record_sent(1.0);
  led.record_sent(1.5);
  led.record_sent_accepted();
  led.record_received();
  led.record_received_accepted();
  EXPECT_EQ(led.sent(), 2u);
  EXPECT_EQ(led.sent_accepted(), 1u);
  EXPECT_EQ(led.received(), 1u);
  EXPECT_EQ(led.received_accepted(), 1u);
}

TEST(Ledger, HourBuckets) {
  RequestLedger led;
  // 3 invites in hour 0, 1 in hour 5.
  led.record_sent(0.1);
  led.record_sent(0.5);
  led.record_sent(0.9);
  led.record_sent(5.2);
  EXPECT_EQ(led.active_hours(), 2u);
  EXPECT_EQ(led.max_hourly(), 3u);
  EXPECT_DOUBLE_EQ(led.short_term_rate(), 2.0);  // 4 sent / 2 active hours
}

TEST(Ledger, LongTermRateUsesLifetime) {
  RequestLedger led;
  led.record_sent(10.0);
  led.record_sent(19.0);
  // Lifetime = 19 - 10 + 1 = 10h, under the 400h cap → 2/10.
  EXPECT_DOUBLE_EQ(led.long_term_rate(400.0), 0.2);
  // A tighter window caps the denominator: 2/5.
  EXPECT_DOUBLE_EQ(led.long_term_rate(5.0), 0.4);
}

TEST(Ledger, BurstThenSilenceKeepsShortRateHigh) {
  RequestLedger led;
  for (int i = 0; i < 50; ++i) led.record_sent(3.0 + i * 0.01);
  EXPECT_DOUBLE_EQ(led.short_term_rate(), 50.0);
  // Long-window rate is diluted by the idle span only up to lifetime.
  EXPECT_NEAR(led.long_term_rate(400.0), 50.0 / 1.49, 1.0);
}

TEST(Ledger, NegativePreWindowTimesWork) {
  RequestLedger led;
  led.record_sent(-5.5);
  led.record_sent(-5.2);
  EXPECT_EQ(led.active_hours(), 1u);
  EXPECT_EQ(led.max_hourly(), 2u);
}

}  // namespace
}  // namespace sybil::osn
