// Sharded-service suite (docs/ROBUSTNESS.md §Sharded recovery):
//
//   * the routing table: owner placement is stable and balanced, pair
//     events double-deliver to both owners, edge/ban events broadcast;
//   * cross-shard exactly-once: a friend-request event landing on two
//     shards is WAL-logged once per shard, redelivery below a shard's
//     frontier is suppressed, and the owner-filtered merge never
//     double-counts an account;
//   * the N-vs-1 equivalence: the merged N-shard FlagBatch is
//     byte-identical to the 1-shard run, at SYBIL_THREADS=1 and 8;
//   * per-shard isolation: one overloaded shard sheds and degrades
//     alone while its peers stay at full service;
//   * per-shard recovery: kill shard 1 at EVERY durability boundary
//     while shards 0 and 2 run clean — per-shard stats JSON and the
//     merged flags are byte-identical to the uninterrupted run; a
//     strided whole-process kill sweep proves the same for the
//     min-frontier resume path;
//   * foreign state fails loudly: a checkpoint or WAL segment written
//     by another shard identity refuses to load, and a state root with
//     directories from a larger partition count refuses to start;
//   * metric aggregation: per-reason dead-letter counters published
//     under service.shard.<i>.* sum exactly into the service.* twins.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/metrics/metrics.h"
#include "core/parallel.h"
#include "faults/process_faults.h"
#include "io/error.h"
#include "service/router.h"
#include "service/wal.h"
#include "service/workload.h"

namespace sybil::service {
namespace {

namespace fs = std::filesystem;

class Shard : public ::testing::Test {
 protected:
  // Shard suites churn throwaway checkpoints; skip fsync (same knob and
  // rationale as the recovery suite).
  static void SetUpTestSuite() { ::setenv("SYBIL_IO_FSYNC", "0", 1); }
  static void TearDownTestSuite() { ::unsetenv("SYBIL_IO_FSYNC"); }
};

// Heavy crash sweeps get their own fixture name so the tsan preset can
// select the light tests by name (Shard[.]) without paying for the
// boundary sweep under a 10x-slowdown sanitizer.
using ShardedRecovery = Shard;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_shard_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Shed-free shard template with the relaxed rule the synthetic burst
/// senders cross. Default overload watermarks are far above anything
/// these workloads queue, so admission never depends on pump cadence —
/// the precondition for N-vs-1 and crash-resume equivalence checks.
ShardRouterOptions make_router_options(const std::string& dir,
                                       std::uint32_t shards,
                                       ShardCrashHook hook = {}) {
  ShardRouterOptions o;
  o.shards = shards;
  o.crash_hook = std::move(hook);
  o.shard.dir = dir;
  o.shard.wal_fsync = WalFsync::kNever;
  o.shard.wal_segment_records = 32;
  o.shard.checkpoint_every = 96;
  o.shard.checkpoint_retain = 2;
  o.shard.detector.rule.invite_rate_min = 4.0;
  o.shard.detector.rule.outgoing_accept_max = 0.5;
  o.shard.detector.rule.min_requests = 5;
  return o;
}

WorkloadOptions small_workload(std::uint64_t seed) {
  WorkloadOptions w;
  w.accounts = 64;
  w.events = 400;
  w.hours = 6.0;
  w.seed = seed;
  w.burst_senders = 2;
  w.burst_fraction = 0.3;
  w.malformed_fraction = 0.02;
  return w;
}

/// Offers log[from..N) with seq == index and a fixed pump cadence, then
/// flushes. With shed-free options the cadence is immaterial to every
/// counter in stats_json, so crash-resume re-drives need no schedule
/// alignment (unlike the single-shard overloaded recovery suite).
void drive(ShardRouter& router, const std::vector<osn::Event>& log,
           std::uint64_t from) {
  for (std::uint64_t i = from; i < log.size(); ++i) {
    router.offer(log[i], i);
    if (i % 16 == 15) router.pump();
  }
  router.flush(/*checkpoint=*/true);
}

void expect_flags_equal(const core::FlagBatch& a, const core::FlagBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].account, b[i].account) << i;
    ASSERT_DOUBLE_EQ(a[i].flagged_at, b[i].flagged_at) << i;
    ASSERT_EQ(a[i].features.as_vector(), b[i].features.as_vector()) << i;
  }
}

/// Durable per-shard outcome: each shard's canonical stats JSON plus
/// the owner-merged flags. This is what crash recovery must reproduce
/// byte-for-byte; the router's own copies/offers counters are process-
/// lifetime transport accounting and legitimately differ once a resume
/// re-drives (suppressed copies are the retry protocol working).
struct ShardedRun {
  std::vector<std::string> shard_stats;
  core::FlagBatch flags;
};

ShardedRun capture(ShardRouter& router, double sweep_at) {
  router.sweep_flags(sweep_at);
  EXPECT_TRUE(router.accounting_ok());
  ShardedRun run;
  for (std::uint32_t i = 0; i < router.shards(); ++i) {
    run.shard_stats.push_back(router.shard(i).stats_json());
  }
  run.flags = router.take_flagged();
  return run;
}

/// First `want` account ids owned by `target` under `shards`.
std::vector<graph::NodeId> owned_ids(std::uint32_t target,
                                     std::uint32_t shards,
                                     std::size_t want) {
  std::vector<graph::NodeId> out;
  for (graph::NodeId id = 1; out.size() < want; ++id) {
    if (shard_of(id, shards) == target) out.push_back(id);
  }
  return out;
}

TEST_F(Shard, OwnerPlacementIsStableAndBalanced) {
  std::vector<std::uint64_t> hits(8, 0);
  for (graph::NodeId id = 0; id < 10000; ++id) {
    const std::uint32_t s = shard_of(id, 8);
    ASSERT_LT(s, 8u);
    ASSERT_EQ(s, shard_of(id, 8)) << "placement must be a pure function";
    ASSERT_EQ(shard_of(id, 1), 0u);
    ++hits[s];
  }
  for (std::size_t s = 0; s < hits.size(); ++s) {
    // 10000/8 = 1250 expected; a mixing failure (striping) would put
    // whole residue classes on one shard and blow far past this band.
    EXPECT_GT(hits[s], 1000u) << "shard " << s;
    EXPECT_LT(hits[s], 1500u) << "shard " << s;
  }
}

TEST_F(Shard, RoutingTableShape) {
  constexpr std::uint32_t kN = 4;
  const auto ids0 = owned_ids(0, kN, 2);
  const auto ids2 = owned_ids(2, kN, 1);

  // Single-party events go to the actor's owner only.
  const auto created =
      route_shards({osn::EventType::kAccountCreated, ids2[0], ids2[0], 0.0},
                   kN);
  EXPECT_EQ(created, (std::vector<std::uint32_t>{2}));

  // Pair events double-deliver to both owners, ascending...
  const auto pair = route_shards(
      {osn::EventType::kRequestSent, ids2[0], ids0[0], 1.0}, kN);
  EXPECT_EQ(pair, (std::vector<std::uint32_t>{0, 2}));
  // ...collapsing to one copy when the parties share a shard.
  const auto collapsed = route_shards(
      {osn::EventType::kRequestSent, ids0[0], ids0[1], 1.0}, kN);
  EXPECT_EQ(collapsed, (std::vector<std::uint32_t>{0}));

  // Edge-creating and ban events broadcast; unknown types route like a
  // pair so some shard's dead-letter path classifies them.
  for (const auto type : {osn::EventType::kRequestAccepted,
                          osn::EventType::kFriendshipSeeded,
                          osn::EventType::kAccountBanned}) {
    EXPECT_EQ(route_shards({type, ids0[0], ids2[0], 2.0}, kN),
              (std::vector<std::uint32_t>{0, 1, 2, 3}));
  }
  EXPECT_EQ(route_shards(
                {static_cast<osn::EventType>(0xEE), ids2[0], ids0[0], 3.0},
                kN),
            (std::vector<std::uint32_t>{0, 2}));
}

TEST_F(Shard, PairEventLandsOnBothShardsExactlyOnce) {
  const std::string dir = fresh_dir("pair");
  ShardRouter router(make_router_options(dir, 2));
  router.start();
  const graph::NodeId a = owned_ids(0, 2, 1)[0];
  const graph::NodeId b = owned_ids(1, 2, 1)[0];

  const RouteResult first =
      router.offer({osn::EventType::kRequestSent, a, b, 1.0}, 0);
  EXPECT_EQ(first.routed, 2u);
  EXPECT_EQ(first.delivered, 2u);
  EXPECT_EQ(first.suppressed, 0u);
  EXPECT_EQ(router.shard(0).offered(), 1u);  // one WAL copy per owner
  EXPECT_EQ(router.shard(1).offered(), 1u);

  // At-least-once upstream: the identical (event, seq) redelivery is
  // suppressed by both frontiers — the WALs stay duplicate-free.
  const RouteResult again =
      router.offer({osn::EventType::kRequestSent, a, b, 1.0}, 0);
  EXPECT_EQ(again.delivered, 0u);
  EXPECT_EQ(again.suppressed, 2u);
  EXPECT_EQ(router.shard(0).offered(), 1u);
  EXPECT_EQ(router.shard(1).offered(), 1u);

  router.flush(/*checkpoint=*/false);  // pump + drain the reorder buffer
  // Each owner applies its replica copy once; global truth stays with
  // the owner filter, and the accounting sees exactly the 2-copy fanout.
  EXPECT_EQ(router.shard(0).detector().applied_total(), 1u);
  EXPECT_EQ(router.shard(1).detector().applied_total(), 1u);
  EXPECT_TRUE(router.accounting_ok());

  // Auto-seqs cannot define a redelivery frontier.
  EXPECT_THROW(router.offer({osn::EventType::kRequestSent, a, b, 2.0},
                            core::StreamDetector::kAutoSeq),
               std::invalid_argument);
}

TEST_F(Shard, FrontierSurvivesRestartAndSuppressesRedelivery) {
  const std::string dir = fresh_dir("frontier");
  const WorkloadOptions w = small_workload(21);
  const std::vector<osn::Event> log = synthetic_workload(w);
  std::vector<std::string> stats_before;
  {
    ShardRouter router(make_router_options(dir, 3));
    router.start();
    drive(router, log, 0);
    for (std::uint32_t i = 0; i < 3; ++i) {
      stats_before.push_back(router.shard(i).stats_json());
    }
  }
  ShardRouter router(make_router_options(dir, 3));
  const RouterRecoveryReport report = router.start();
  // The min frontier trails the stream end by however many tail events
  // happened not to route to the laziest shard — never past it.
  EXPECT_GT(report.next_seq, 0u);
  EXPECT_LE(report.next_seq, log.size());
  EXPECT_EQ(report.next_seq, router.next_seq());

  // Re-drive the whole stream: every copy is below every frontier.
  for (std::uint64_t i = 0; i < log.size(); ++i) {
    const RouteResult r = router.offer(log[i], i);
    EXPECT_EQ(r.delivered, 0u) << "seq " << i;
    EXPECT_EQ(r.suppressed, r.routed) << "seq " << i;
  }
  router.flush(/*checkpoint=*/false);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(router.shard(i).stats_json(), stats_before[i]) << "shard " << i;
  }
  EXPECT_TRUE(router.accounting_ok());
}

TEST_F(Shard, MergedFlagsMatchSingleShardAcrossThreadCounts) {
  WorkloadOptions w;
  w.accounts = 600;
  w.events = 4000;
  w.hours = 10.0;
  w.seed = 5;
  w.burst_senders = 4;
  w.burst_fraction = 0.25;
  w.malformed_fraction = 0.02;
  const std::vector<osn::Event> log = synthetic_workload(w);

  const auto run = [&](std::uint32_t shards, const std::string& dir) {
    ShardRouter router(make_router_options(dir, shards));
    router.start();
    drive(router, log, 0);
    return capture(router, w.hours + 1.0);
  };

  core::set_thread_count(1);
  const ShardedRun single = run(1, fresh_dir("eq_n1"));
  const ShardedRun sharded = run(4, fresh_dir("eq_n4"));
  core::set_thread_count(8);
  const ShardedRun sharded8 = run(4, fresh_dir("eq_n4_t8"));
  core::set_thread_count(0);  // back to automatic

  ASSERT_FALSE(single.flags.records.empty())
      << "the burst senders must flag for the equivalence check to bite";
  expect_flags_equal(sharded.flags, single.flags);
  expect_flags_equal(sharded8.flags, single.flags);

  // The owner filter guarantees each account flags at most once in the
  // merged batch — the flag-level face of cross-shard exactly-once.
  std::set<graph::NodeId> accounts;
  for (const auto& r : sharded.flags.records) {
    EXPECT_TRUE(accounts.insert(r.account).second)
        << "account " << r.account << " flagged on two shards";
  }
}

TEST_F(Shard, OneOverloadedShardShedsAlone) {
  auto options = make_router_options(fresh_dir("overload"), 3);
  options.shard.detector.overload.queue_capacity = 24;
  options.shard.detector.overload.shed_watermark = 8;
  options.shard.detector.overload.sweep_only_watermark = 16;
  options.shard.detector.overload.resume_watermark = 4;
  ShardRouter router(options);
  router.start();

  // Pair traffic whose endpoints both live on shard 1: every copy
  // collapses onto the victim, nothing reaches its peers.
  const auto ids = owned_ids(1, 3, 12);
  double t = 0.0;
  std::uint64_t seq = 0;
  for (int round = 0; round < 6; ++round) {
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      router.offer({osn::EventType::kRequestSent, ids[i], ids[i + 1],
                    t += 0.01},
                   seq++);
    }
  }
  EXPECT_GT(router.shard(1).shed_total(), 0u);
  EXPECT_NE(router.shard(1).tier(), core::ServiceTier::kFull);
  for (const std::uint32_t peer : {0u, 2u}) {
    EXPECT_EQ(router.shard(peer).shed_total(), 0u) << "shard " << peer;
    EXPECT_EQ(router.shard(peer).tier(), core::ServiceTier::kFull)
        << "shard " << peer;
    EXPECT_EQ(router.shard(peer).queue_depth(), 0u) << "shard " << peer;
  }
  EXPECT_TRUE(router.accounting_ok());

  // Draining the victim's queue recovers it through the hysteresis
  // band (tier decisions happen at the next admission, not mid-pump).
  router.pump();
  router.offer({osn::EventType::kRequestSent, ids[0], ids[1], t += 0.01},
               seq++);
  EXPECT_EQ(router.shard(1).tier(), core::ServiceTier::kFull);
}

TEST_F(Shard, CheckpointFromAnotherShardIdentityFailsLoudly) {
  const std::string dir = fresh_dir("identity");
  ServiceOptions o;
  o.dir = dir;
  o.wal_fsync = WalFsync::kNever;
  o.shard_id = 0;
  o.shard_count = 2;
  {
    ServiceSupervisor s(o);
    s.start();
    s.offer({osn::EventType::kRequestSent, 1, 2, 0.5}, 0);
    s.flush();  // leaves a checkpoint stamped (shard 0 of 2)
  }
  // Same state handed to the wrong shard id, or to a router with a
  // different partition count: refuse to load, never fall back — this
  // is misconfiguration, not corruption.
  ServiceOptions wrong_id = o;
  wrong_id.shard_id = 1;
  EXPECT_THROW(ServiceSupervisor(wrong_id).start(), std::logic_error);
  ServiceOptions wrong_count = o;
  wrong_count.shard_count = 3;
  EXPECT_THROW(ServiceSupervisor(wrong_count).start(), std::logic_error);

  // The WAL segments carry the same identity stamp independently.
  WalScanReport report;
  EXPECT_THROW(scan_wal(dir + "/wal", 0, report, /*expected_shard=*/1),
               io::SnapshotError);
  EXPECT_NO_THROW(scan_wal(dir + "/wal", 0, report, /*expected_shard=*/0));
}

TEST_F(Shard, ReshardedStateRootRefusesToStart) {
  const std::string dir = fresh_dir("reshard");
  {
    ShardRouter router(make_router_options(dir, 4));
    router.start();
    router.offer({osn::EventType::kRequestSent, 1, 2, 0.5}, 0);
    router.flush();
  }
  ShardRouter shrunk(make_router_options(dir, 2));
  EXPECT_THROW(shrunk.start(), std::runtime_error);
  // The original partition count still starts fine.
  ShardRouter same(make_router_options(dir, 4));
  EXPECT_NO_THROW(same.start());
}

#if SYBIL_METRICS_COMPILED
TEST_F(Shard, DeadLetterMetricsAggregateExactly) {
  auto& registry = core::metrics::MetricsRegistry::instance();
  registry.reset();

  const WorkloadOptions w = [] {
    WorkloadOptions o = small_workload(33);
    o.events = 1200;
    o.malformed_fraction = 0.05;
    return o;
  }();
  const std::vector<osn::Event> log = synthetic_workload(w);
  ShardRouter router(make_router_options(fresh_dir("metrics"), 2));
  router.start();
  drive(router, log, 0);  // flush() publishes the final deltas

  std::uint64_t detector_total = 0;
  for (std::size_t r = 0; r < core::kStreamErrorCodeCount; ++r) {
    const auto code = static_cast<core::StreamErrorCode>(r);
    const std::string reason = core::to_string(code);
    std::uint64_t per_shard_sum = 0;
    std::uint64_t detector_sum = 0;
    for (std::uint32_t i = 0; i < router.shards(); ++i) {
      per_shard_sum += registry
                           .counter("service.shard." + std::to_string(i) +
                                    ".deadletter." + reason)
                           .value();
      detector_sum += router.shard(i).detector().deadletter_by_reason(code);
    }
    // Per-shard copies sum exactly into the aggregate twin, and both
    // equal the detectors' ground truth — no reason drifts.
    EXPECT_EQ(per_shard_sum,
              registry.counter("service.deadletter." + reason).value())
        << reason;
    EXPECT_EQ(per_shard_sum, detector_sum) << reason;
    detector_total += detector_sum;
  }
  ASSERT_GT(detector_total, 0u)
      << "the malformed mix must actually dead-letter";
  EXPECT_EQ(registry.counter("service.deadletter.total").value(),
            detector_total);
  registry.reset();
}
#endif  // SYBIL_METRICS_COMPILED

/// Uninterrupted 3-shard reference run whose hook counts the victim
/// shard's durability boundaries (installing a hook also switches WAL
/// appends to two-phase writes — the I/O pattern the crashing runs
/// see, so the on-disk artifacts compare like-for-like).
ShardedRun run_baseline(const std::vector<osn::Event>& log,
                        const std::string& dir, double sweep_at,
                        std::uint32_t victim, std::uint64_t* boundaries) {
  ShardRouter router(make_router_options(
      dir, 3, [victim, boundaries](std::uint32_t shard, CrashPoint) {
        if (victim == faults::ShardCrashInjector::kAnyShard ||
            shard == victim) {
          ++*boundaries;
        }
      }));
  router.start();
  drive(router, log, 0);
  return capture(router, sweep_at);
}

TEST_F(ShardedRecovery, KillOneShardAtEveryBoundary) {
  constexpr std::uint32_t kVictim = 1;
  const WorkloadOptions w = small_workload(7);
  const std::vector<osn::Event> log = synthetic_workload(w);
  std::uint64_t boundaries = 0;
  const ShardedRun base = run_baseline(log, fresh_dir("kill_base"),
                                       w.hours + 1.0, kVictim, &boundaries);
  ASSERT_GT(boundaries, log.size() / 2);
  ASSERT_FALSE(base.flags.records.empty())
      << "the run must actually flag accounts for the comparison to bite";

  const std::string dir = fresh_dir("kill_sweep");
  for (std::uint64_t b = 0; b < boundaries; ++b) {
    fs::remove_all(dir);
    faults::ShardCrashInjector crash(kVictim, b);
    ShardRouter router(make_router_options(dir, 3, std::ref(crash)));
    bool crashed = false;
    bool booted = false;
    try {
      router.start();
      booted = true;
      drive(router, log, 0);
    } catch (const faults::InjectedCrash&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "boundary " << b << " never crossed";

    ShardedRun run;
    if (booted) {
      // Only the victim restarts; shards 0 and 2 keep their live state.
      // Resume from the *minimum* frontier — the victim may have made
      // the crashing seq durable before a later-ordered shard saw it.
      router.restart_shard(kVictim);
      drive(router, log, router.next_seq());
      run = capture(router, w.hours + 1.0);
    } else {
      // A crash during boot takes the whole process with it: recover
      // the fleet in a fresh router instead.
      ShardRouter rebooted(make_router_options(dir, 3));
      const RouterRecoveryReport report = rebooted.start();
      drive(rebooted, log, report.next_seq);
      run = capture(rebooted, w.hours + 1.0);
    }
    for (std::uint32_t i = 0; i < 3; ++i) {
      ASSERT_EQ(run.shard_stats[i], base.shard_stats[i])
          << "crash boundary " << b << ", shard " << i;
    }
    expect_flags_equal(run.flags, base.flags);
    if (::testing::Test::HasFailure()) FAIL() << "crash boundary " << b;
  }
}

/// Whole-process death: every shard's in-memory state dies at once and
/// a fresh router resumes from the min-frontier of the recovered fleet.
/// Strided because the per-shard sweep above already covers every
/// boundary kind exhaustively; this pins the multi-shard resume path.
TEST_F(ShardedRecovery, WholeProcessKillSweepResumesFromMinFrontier) {
  const WorkloadOptions w = small_workload(9);
  const std::vector<osn::Event> log = synthetic_workload(w);
  std::uint64_t boundaries = 0;
  const ShardedRun base =
      run_baseline(log, fresh_dir("proc_base"), w.hours + 1.0,
                   faults::ShardCrashInjector::kAnyShard, &boundaries);

  const std::string dir = fresh_dir("proc_sweep");
  for (std::uint64_t b = 0; b < boundaries; b += 13) {
    fs::remove_all(dir);
    {
      faults::ShardCrashInjector crash(faults::ShardCrashInjector::kAnyShard,
                                       b);
      ShardRouter victim(make_router_options(dir, 3, std::ref(crash)));
      bool crashed = false;
      try {
        victim.start();
        drive(victim, log, 0);
      } catch (const faults::InjectedCrash&) {
        crashed = true;
      }
      ASSERT_TRUE(crashed) << "boundary " << b << " never crossed";
    }  // simulated process death: the whole router is abandoned

    ShardRouter recovered(make_router_options(dir, 3));
    const RouterRecoveryReport report = recovered.start();
    EXPECT_TRUE(recovered.accounting_ok()) << "boundary " << b;
    drive(recovered, log, report.next_seq);
    const ShardedRun run = capture(recovered, w.hours + 1.0);
    for (std::uint32_t i = 0; i < 3; ++i) {
      ASSERT_EQ(run.shard_stats[i], base.shard_stats[i])
          << "crash boundary " << b << ", shard " << i;
    }
    expect_flags_equal(run.flags, base.flags);
    if (::testing::Test::HasFailure()) FAIL() << "crash boundary " << b;
  }
}

}  // namespace
}  // namespace sybil::service
