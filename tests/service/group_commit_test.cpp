// WAL group-commit suite (ISSUE 7 tentpole b):
//
//   * unit level: appends inside a begin_group()/commit_group() bracket
//     buffer in the segment file and land with ONE flush at commit;
//     commit reports the group size and fires CrashPoint::kWalGroupCommit
//     after the sync; abort closes the bracket without either;
//   * bracket misuse fails loudly (double begin, commit without begin);
//   * trajectory identity: driving a ShardRouter through offer_batch()
//     produces byte-identical per-shard stats JSON and merged flags to
//     the per-event offer() path with the same pump cadence;
//   * crash sweep: killing the router at EVERY kWalGroupCommit boundary
//     and resuming from the recovered min frontier reproduces the
//     uninterrupted run byte-for-byte (the PR 5/6 recovery contract,
//     extended to the new coalesced durability boundary);
//   * the parallel shard pump is byte-identical at SYBIL_THREADS 1 / 8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "faults/process_faults.h"
#include "service/router.h"
#include "service/wal.h"
#include "service/workload.h"

namespace sybil::service {
namespace {

namespace fs = std::filesystem;

class GroupCommit : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ::setenv("SYBIL_IO_FSYNC", "0", 1); }
  static void TearDownTestSuite() { ::unsetenv("SYBIL_IO_FSYNC"); }
};

// Heavy boundary sweep under its own fixture name, mirroring the
// ShardedRecovery split (CMakePresets.json tsan filter).
using GroupCommitRecovery = GroupCommit;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_gc_" + name;
  fs::remove_all(dir);
  return dir;
}

osn::Event event_at(std::uint64_t i) {
  osn::Event e;
  e.type = osn::EventType::kRequestSent;
  e.actor = static_cast<graph::NodeId>(i + 1);
  e.subject = static_cast<graph::NodeId>(i + 2);
  e.time = 0.25 * static_cast<double>(i);
  return e;
}

std::string only_segment(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_TRUE(found.empty()) << "expected a single segment";
    found = entry.path().string();
  }
  EXPECT_FALSE(found.empty());
  return found;
}

constexpr std::uint64_t kWalHeaderBytes = 24;
constexpr std::uint64_t kWalRecordBytes = 44;

TEST_F(GroupCommit, AppendsBufferUntilTheCommitFlush) {
  const std::string dir = fresh_dir("buffer");
  WalOptions opts;
  opts.dir = dir;
  opts.fsync = WalFsync::kEveryAppend;
  WalWriter w(opts, 0);

  // Outside a group, kEveryAppend flushes per record.
  w.append(event_at(0), 0, 0);
  const std::string seg = only_segment(dir);
  EXPECT_EQ(fs::file_size(seg), kWalHeaderBytes + kWalRecordBytes);

  // Inside the bracket, records stay in the stdio buffer: the on-disk
  // size must not move until commit_group() issues the single flush.
  w.begin_group();
  EXPECT_TRUE(w.in_group());
  for (std::uint64_t i = 1; i <= 10; ++i) w.append(event_at(i), i, 0);
  EXPECT_EQ(fs::file_size(seg), kWalHeaderBytes + kWalRecordBytes);
  EXPECT_EQ(w.commit_group(), 10u);
  EXPECT_FALSE(w.in_group());
  EXPECT_EQ(fs::file_size(seg), kWalHeaderBytes + 11 * kWalRecordBytes);

  // Every buffered record became exactly as durable as per-record
  // fsync would have made it.
  w.sync();
  WalScanReport report;
  const auto records = scan_wal(dir, 0, report);
  ASSERT_EQ(records.size(), 11u);
  EXPECT_EQ(report.torn_tails_healed, 0u);
}

TEST_F(GroupCommit, CommitFiresTheCrashPointAfterTheSync) {
  const std::string dir = fresh_dir("boundary");
  faults::CrashInjector crash(
      0, static_cast<std::uint32_t>(CrashPoint::kWalGroupCommit));
  WalOptions opts;
  opts.dir = dir;
  opts.fsync = WalFsync::kEveryAppend;
  opts.crash_hook = std::ref(crash);
  {
    WalWriter w(opts, 0);
    w.begin_group();
    for (std::uint64_t i = 0; i < 5; ++i) w.append(event_at(i), i, 0);
    // The hook throws at the commit boundary — AFTER the coalesced
    // fsync, so the whole group is already durable.
    EXPECT_THROW(w.commit_group(), faults::InjectedCrash);
    EXPECT_EQ(crash.crossings(), 1u);
  }
  WalScanReport report;
  EXPECT_EQ(scan_wal(dir, 0, report).size(), 5u);
}

TEST_F(GroupCommit, BracketMisuseThrowsAndAbortClosesQuietly) {
  const std::string dir = fresh_dir("misuse");
  std::uint64_t boundary_crossings = 0;
  WalOptions opts;
  opts.dir = dir;
  opts.fsync = WalFsync::kEveryAppend;
  opts.crash_hook = [&](CrashPoint p) {
    if (p == CrashPoint::kWalGroupCommit) ++boundary_crossings;
  };
  WalWriter w(opts, 0);

  EXPECT_THROW(w.commit_group(), std::logic_error);
  w.begin_group();
  EXPECT_THROW(w.begin_group(), std::logic_error);
  w.append(event_at(0), 0, 0);

  // Abort is the unwind path: it closes the bracket with neither the
  // commit fsync nor the crash point, and is idempotent.
  w.abort_group();
  w.abort_group();
  EXPECT_FALSE(w.in_group());
  EXPECT_EQ(boundary_crossings, 0u);

  // A fresh bracket opens cleanly after an abort.
  w.begin_group();
  w.append(event_at(1), 1, 0);
  EXPECT_EQ(w.commit_group(), 1u);
  EXPECT_EQ(boundary_crossings, 1u);
}

// ---- Router-level batch semantics ----------------------------------

ShardRouterOptions router_options(const std::string& dir,
                                  std::uint32_t shards,
                                  ShardCrashHook hook = {}) {
  ShardRouterOptions o;
  o.shards = shards;
  o.crash_hook = std::move(hook);
  o.shard.dir = dir;
  o.shard.wal_fsync = WalFsync::kNever;  // sweep speed; the boundary
                                         // crash point fires regardless
  o.shard.wal_segment_records = 32;
  o.shard.checkpoint_every = 96;
  o.shard.checkpoint_retain = 2;
  o.shard.detector.rule.invite_rate_min = 4.0;
  o.shard.detector.rule.outgoing_accept_max = 0.5;
  o.shard.detector.rule.min_requests = 5;
  return o;
}

WorkloadOptions workload_options() {
  WorkloadOptions w;
  w.accounts = 64;
  w.events = 400;
  w.hours = 6.0;
  w.seed = 77;
  w.burst_senders = 2;
  w.burst_fraction = 0.3;
  w.malformed_fraction = 0.02;
  return w;
}

constexpr std::uint64_t kBatch = 64;

/// Offers log[from..N) in kBatch-sized group-committed runs, pumping
/// after each — the same cadence drive_serial uses, so the two paths
/// must agree on every replay-exact counter.
void drive_batched(ShardRouter& router, const std::vector<osn::Event>& log,
                   std::uint64_t from) {
  const std::span<const osn::Event> all(log);
  for (std::uint64_t base = from; base < log.size(); base += kBatch) {
    const std::size_t n =
        std::min<std::size_t>(kBatch, log.size() - base);
    router.offer_batch(all.subspan(base, n), base);
    router.pump();
  }
  router.flush(/*checkpoint=*/true);
}

void drive_serial(ShardRouter& router, const std::vector<osn::Event>& log,
                  std::uint64_t from) {
  for (std::uint64_t i = from; i < log.size(); ++i) {
    router.offer(log[i], i);
    if ((i + 1 - from) % kBatch == 0) router.pump();
  }
  router.flush(/*checkpoint=*/true);
}

struct CapturedRun {
  std::vector<std::string> shard_stats;
  core::FlagBatch flags;
};

CapturedRun capture(ShardRouter& router, double sweep_at) {
  router.sweep_flags(sweep_at);
  EXPECT_TRUE(router.accounting_ok());
  CapturedRun run;
  for (std::uint32_t i = 0; i < router.shards(); ++i) {
    run.shard_stats.push_back(router.shard(i).stats_json());
  }
  run.flags = router.take_flagged();
  return run;
}

void expect_runs_equal(const CapturedRun& a, const CapturedRun& b) {
  ASSERT_EQ(a.shard_stats.size(), b.shard_stats.size());
  for (std::size_t i = 0; i < a.shard_stats.size(); ++i) {
    EXPECT_EQ(a.shard_stats[i], b.shard_stats[i]) << "shard " << i;
  }
  ASSERT_EQ(a.flags.size(), b.flags.size());
  for (std::size_t i = 0; i < a.flags.size(); ++i) {
    EXPECT_EQ(a.flags[i].account, b.flags[i].account) << i;
    EXPECT_DOUBLE_EQ(a.flags[i].flagged_at, b.flags[i].flagged_at) << i;
    EXPECT_EQ(a.flags[i].features.as_vector(), b.flags[i].features.as_vector())
        << i;
  }
}

TEST_F(GroupCommit, BatchTrajectoryIdenticalToSerialOffers) {
  const std::vector<osn::Event> log = synthetic_workload(workload_options());

  ShardRouter serial(router_options(fresh_dir("traj_serial"), 3));
  serial.start();
  drive_serial(serial, log, 0);

  ShardRouter batched(router_options(fresh_dir("traj_batch"), 3));
  batched.start();
  drive_batched(batched, log, 0);

  // Transport accounting agrees too — batching changes fsync count,
  // never fanout.
  EXPECT_EQ(serial.offers(), batched.offers());
  EXPECT_EQ(serial.copies_routed(), batched.copies_routed());
  EXPECT_EQ(serial.copies_delivered(), batched.copies_delivered());

  expect_runs_equal(capture(serial, 7.0), capture(batched, 7.0));
}

TEST_F(GroupCommit, ParallelPumpByteIdenticalAcrossThreadCounts) {
  const std::vector<osn::Event> log = synthetic_workload(workload_options());

  core::set_thread_count(1);
  ShardRouter one(router_options(fresh_dir("pump_t1"), 4));
  one.start();
  drive_batched(one, log, 0);
  const CapturedRun run_one = capture(one, 7.0);

  core::set_thread_count(8);
  ShardRouter eight(router_options(fresh_dir("pump_t8"), 4));
  eight.start();
  drive_batched(eight, log, 0);
  const CapturedRun run_eight = capture(eight, 7.0);
  core::set_thread_count(0);  // back to automatic

  expect_runs_equal(run_one, run_eight);
}

/// Kill the fleet at EVERY group-commit boundary, recover, resume from
/// the router's min frontier with the same batched drive, and demand
/// the uninterrupted run's bytes. InjectedCrash unwinds through
/// offer_batch's abort path, so surviving shards' open groups must not
/// poison the restarted drive.
TEST_F(GroupCommitRecovery, KillAtEveryGroupCommitBoundary) {
  const std::vector<osn::Event> log = synthetic_workload(workload_options());

  ShardRouter clean(router_options(fresh_dir("sweep_clean"), 3));
  clean.start();
  drive_batched(clean, log, 0);
  const CapturedRun want = capture(clean, 7.0);

  // Count the boundaries one uninterrupted batched drive crosses.
  std::uint64_t boundaries = 0;
  {
    ShardRouter counter(router_options(
        fresh_dir("sweep_count"), 3,
        [&boundaries](std::uint32_t, CrashPoint p) {
          if (p == CrashPoint::kWalGroupCommit) ++boundaries;
        }));
    counter.start();
    drive_batched(counter, log, 0);
  }
  ASSERT_GT(boundaries, 10u) << "sweep would be vacuous";

  for (std::uint64_t at = 0; at < boundaries; ++at) {
    const std::string dir =
        fresh_dir("sweep_" + std::to_string(at));
    faults::ShardCrashInjector crash(
        faults::ShardCrashInjector::kAnyShard, at,
        static_cast<std::uint32_t>(CrashPoint::kWalGroupCommit));
    bool crashed = false;
    {
      ShardRouter victim(router_options(dir, 3, std::ref(crash)));
      victim.start();
      try {
        drive_batched(victim, log, 0);
      } catch (const faults::InjectedCrash&) {
        crashed = true;
      }
    }
    ASSERT_TRUE(crashed) << "boundary " << at << " never crossed";

    ShardRouter revived(router_options(dir, 3));
    const RouterRecoveryReport report = revived.start();
    ASSERT_LE(report.next_seq, log.size());
    drive_batched(revived, log, report.next_seq);
    const CapturedRun got = capture(revived, 7.0);
    ASSERT_EQ(got.shard_stats, want.shard_stats) << "boundary " << at;
    expect_runs_equal(got, want);
  }
}

}  // namespace
}  // namespace sybil::service
