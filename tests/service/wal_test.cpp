// WAL unit suite: record round-trips, segment rotation, torn-tail
// healing (both via the crash hook and via simulated torn writes),
// pruning, and cold-start scans (docs/FORMATS.md §WAL).
#include "service/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <string>

#include "faults/process_faults.h"
#include "io/error.h"
#include "osn/events.h"

namespace sybil::service {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_wal_" + name;
  fs::remove_all(dir);
  return dir;
}

osn::Event event_at(std::uint64_t i) {
  osn::Event e;
  e.type = static_cast<osn::EventType>(i % osn::kEventTypeCount);
  e.actor = static_cast<graph::NodeId>(i);
  e.subject = static_cast<graph::NodeId>(i + 1);
  e.time = 0.5 * static_cast<double>(i);
  return e;
}

/// The only segment file in `dir` (fails the test if there are more).
std::string only_segment(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_TRUE(found.empty()) << "expected a single segment";
    found = entry.path().string();
  }
  EXPECT_FALSE(found.empty());
  return found;
}

TEST(Wal, RoundTripsRecords) {
  const std::string dir = fresh_dir("roundtrip");
  WalOptions opts;
  opts.dir = dir;
  opts.fsync = WalFsync::kNever;
  {
    WalWriter w(opts, 0);
    for (std::uint64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(w.append(event_at(i), 1000 + i,
                         static_cast<std::uint32_t>(i % 16)),
                i);
    }
    EXPECT_EQ(w.next_index(), 100u);
    EXPECT_EQ(w.segments_opened(), 1u);
  }
  WalScanReport report;
  const auto records = scan_wal(dir, 0, report);
  ASSERT_EQ(records.size(), 100u);
  for (std::uint64_t i = 0; i < records.size(); ++i) {
    const WalRecord& r = records[i];
    EXPECT_EQ(r.index, i);
    EXPECT_EQ(r.seq, 1000 + i);
    EXPECT_EQ(r.flags, static_cast<std::uint32_t>(i % 16));
    const osn::Event e = event_at(i);
    EXPECT_EQ(r.event.type, e.type);
    EXPECT_EQ(r.event.actor, e.actor);
    EXPECT_EQ(r.event.subject, e.subject);
    EXPECT_DOUBLE_EQ(r.event.time, e.time);
  }
  EXPECT_EQ(report.next_index, 100u);
  EXPECT_EQ(report.records_scanned, 100u);
  EXPECT_EQ(report.records_returned, 100u);
  EXPECT_EQ(report.torn_tails_healed, 0u);
  EXPECT_EQ(report.records_truncated, 0u);
}

TEST(Wal, RotatesSegmentsAndSkipsCoveredOnesOnScan) {
  const std::string dir = fresh_dir("rotate");
  WalOptions opts;
  opts.dir = dir;
  opts.segment_records = 4;
  opts.fsync = WalFsync::kNever;
  {
    WalWriter w(opts, 0);
    for (std::uint64_t i = 0; i < 10; ++i) w.append(event_at(i), i, 0);
    EXPECT_EQ(w.segments_opened(), 3u);  // bases 0, 4, 8
  }
  WalScanReport report;
  auto records = scan_wal(dir, 0, report);
  ASSERT_EQ(records.size(), 10u);
  EXPECT_EQ(report.segments_scanned, 3u);

  // A scan from index 7 must skip the first segment entirely (its
  // whole range [0, 4) is behind) and return exactly records 7..9.
  records = scan_wal(dir, 7, report);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().index, 7u);
  EXPECT_EQ(records.back().index, 9u);
  EXPECT_EQ(report.segments_scanned, 2u);
  EXPECT_EQ(report.next_index, 10u);
}

TEST(Wal, HealsTornTailFromSimulatedPartialFlush) {
  const std::string dir = fresh_dir("torn");
  WalOptions opts;
  opts.dir = dir;
  opts.fsync = WalFsync::kNever;
  {
    WalWriter w(opts, 0);
    for (std::uint64_t i = 0; i < 10; ++i) w.append(event_at(i), i, 0);
  }
  const std::string segment = only_segment(dir);
  const auto torn = faults::tear_file_tail(segment, /*seed=*/42,
                                           /*max_tear_bytes=*/30);
  ASSERT_GE(torn.bytes_torn, 1u);
  ASSERT_LE(torn.bytes_torn, 30u);

  // Record 9 is torn (or bit-flipped); strict prefix keeps 0..8.
  WalScanReport report;
  const auto records = scan_wal(dir, 0, report);
  ASSERT_EQ(records.size(), 9u);
  EXPECT_EQ(records.back().index, 8u);
  EXPECT_EQ(report.torn_tails_healed, 1u);
  EXPECT_GE(report.records_truncated, 1u);
  EXPECT_EQ(report.next_index, 9u);

  // Healing truncated the file in place; a rescan is clean.
  WalScanReport again;
  EXPECT_EQ(scan_wal(dir, 0, again).size(), 9u);
  EXPECT_EQ(again.torn_tails_healed, 0u);

  // A writer resumes on a fresh segment past the healed tail.
  {
    WalWriter w(opts, report.next_index);
    EXPECT_EQ(w.append(event_at(9), 9, 0), 9u);
  }
  EXPECT_EQ(scan_wal(dir, 0, again).size(), 10u);
}

TEST(Wal, CrashHookTearsRecordMidWrite) {
  const std::string dir = fresh_dir("crashhalf");
  WalOptions opts;
  opts.dir = dir;
  opts.fsync = WalFsync::kNever;
  faults::CrashInjector crash(
      3, static_cast<std::uint32_t>(CrashPoint::kWalRecordHalf));
  opts.crash_hook = std::ref(crash);
  {
    WalWriter w(opts, 0);
    for (std::uint64_t i = 0; i < 3; ++i) w.append(event_at(i), i, 0);
    EXPECT_THROW(w.append(event_at(3), 3, 0), faults::InjectedCrash);
    EXPECT_EQ(w.next_index(), 3u);  // the torn record never counted
  }  // simulated death: the flushed first half reaches disk on close
  WalScanReport report;
  const auto records = scan_wal(dir, 0, report);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(report.torn_tails_healed, 1u);
  EXPECT_EQ(report.records_truncated, 1u);
  EXPECT_EQ(report.next_index, 3u);
  EXPECT_FALSE(crash.armed());
}

TEST(Wal, PrunesFullyCoveredSegments) {
  const std::string dir = fresh_dir("prune");
  WalOptions opts;
  opts.dir = dir;
  opts.segment_records = 4;
  opts.fsync = WalFsync::kNever;
  {
    WalWriter w(opts, 0);
    for (std::uint64_t i = 0; i < 12; ++i) w.append(event_at(i), i, 0);
  }
  // Segments cover [0,4), [4,8), [8,...]; index 8 retires the first two.
  EXPECT_EQ(prune_wal(dir, 8), 2u);
  WalScanReport report;
  const auto records = scan_wal(dir, 8, report);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().index, 8u);
  // The live segment is never pruned, whatever the index.
  EXPECT_EQ(prune_wal(dir, 1000), 0u);
}

TEST(Wal, ScanOfMissingDirectoryIsAColdStart) {
  WalScanReport report;
  const auto records =
      scan_wal(fresh_dir("coldstart"), 0, report);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(report.next_index, 0u);
  EXPECT_EQ(report.segments_scanned, 0u);
}

TEST(Wal, ValidatesOptions) {
  WalOptions opts;
  EXPECT_THROW(opts.validate(), std::invalid_argument);  // empty dir
  opts.dir = fresh_dir("validate");
  opts.segment_records = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.segment_records = 1;
  EXPECT_NO_THROW(opts.validate());
}

}  // namespace
}  // namespace sybil::service
