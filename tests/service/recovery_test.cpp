// Recovery-determinism suite (docs/ROBUSTNESS.md §Recovery model):
//
//   * kill-and-recover at EVERY durability boundary of a 500-account
//     ground-truth run — final flag verdicts and the accounting JSON
//     are byte-identical to the uninterrupted run, including the shed
//     breakdown (the run deliberately overloads so tier transitions
//     and shedding are part of what must replay exactly);
//   * the same, pinned across SYBIL_THREADS=1 and 8;
//   * a corrupt newest checkpoint falls back to the previous
//     generation with a typed RecoveryReport — never a crash, never
//     silent loss;
//   * recovery with no checkpoint at all (cold start) rebuilds from
//     the full WAL.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "faults/process_faults.h"
#include "osn/network.h"
#include "service/supervisor.h"
#include "stats/rng.h"

namespace sybil::service {
namespace {

namespace fs = std::filesystem;

class ServiceRecovery : public ::testing::Test {
 protected:
  // The crash sweep commits thousands of checkpoints to a throwaway
  // dir; the durability knob exists exactly so such runs skip fsync.
  static void SetUpTestSuite() { ::setenv("SYBIL_IO_FSYNC", "0", 1); }
  static void TearDownTestSuite() { ::unsetenv("SYBIL_IO_FSYNC"); }
};

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_svc_" + name;
  fs::remove_all(dir);
  return dir;
}

/// A 500-account logged network exercising every event type: seeded
/// friendships, background chatter, three burst senders hot enough to
/// cross the (relaxed, see make_options) threshold rule even while the
/// overloaded service sheds part of the stream, mixed accept/reject,
/// and mid-stream bans.
std::vector<osn::Event> build_log(std::uint64_t seed) {
  osn::Network net(/*keep_event_log=*/true);
  stats::Rng rng(seed);
  constexpr int kAccounts = 500;
  for (int i = 0; i < kAccounts; ++i) net.add_account(osn::Account{});
  for (int i = 0; i < 60; ++i) {
    net.add_friendship(
        static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
        static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
        -1.0 * static_cast<double>(i));
  }
  for (double t = 0.0; t < 4.0; t += 1.0) {
    for (int k = 0; k < 15; ++k) {  // background chatter
      net.send_request(
          static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
          static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
          t + rng.uniform(), t + 1.0 + rng.uniform(2.0, 10.0));
    }
    for (int s = 0; s < 3; ++s) {  // Sybil bursts
      for (int k = 0; k < 25; ++k) {
        net.send_request(
            static_cast<osn::NodeId>(10 + s),
            static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
            t + rng.uniform(), t + 1.0 + rng.uniform(2.0, 10.0));
      }
    }
    net.process_responses(t + 1.0, [&](osn::NodeId, osn::NodeId,
                                       std::uint8_t) {
      return rng.bernoulli(0.4);
    });
    if (t == 2.0) {
      net.ban(3, t);
      net.ban(7, t);
    }
  }
  net.process_responses(1e9, [&](osn::NodeId, osn::NodeId, std::uint8_t) {
    return rng.bernoulli(0.4);
  });
  return net.log().events();
}

ServiceOptions make_options(const std::string& dir, CrashHook hook = {}) {
  ServiceOptions o;
  o.dir = dir;
  // In-process crash simulation: buffered bytes survive the simulated
  // death (abandoned-object close), so fsync is pure overhead here.
  o.wal_fsync = WalFsync::kNever;
  o.wal_segment_records = 48;
  o.checkpoint_every = 256;
  o.checkpoint_retain = 2;
  o.crash_hook = std::move(hook);
  // Watermarks the driver's pump cadence actually crosses, so tier
  // transitions and shedding are inside the determinism property.
  o.detector.overload.queue_capacity = 260;
  o.detector.overload.shed_watermark = 120;
  o.detector.overload.sweep_only_watermark = 200;
  o.detector.overload.resume_watermark = 60;
  o.detector.ingest.watermark_hours = 500.0;  // absorb log inversions
  // Relaxed rule so the burst senders flag even though shedding thins
  // their applied event stream.
  o.detector.rule.invite_rate_min = 4.0;
  o.detector.rule.min_requests = 5;
  return o;
}

/// Index-aligned driver: offers log[offer_from..N) with a fixed pump
/// cadence keyed to the event index. Alignment by index is what makes
/// queue depth — and therefore every admission decision — a pure
/// function of stream position.
///
/// After a crash, offers resume at the recovery report's next_index
/// (everything below it is already durable), but the pump schedule
/// must re-run from the recovered *checkpoint* position: pumps between
/// the checkpoint and the crash only touched in-memory state that died
/// with the process, so a cursor-replaying upstream re-applies them.
/// Re-pumping drains the identical FIFO prefix the lost pumps drained
/// (the replayed backlog is a superset of the live queue at each
/// schedule point), which re-aligns queue depth with the uninterrupted
/// run before the first post-crash admission decision.
void drive(ServiceSupervisor& s, const std::vector<osn::Event>& log,
           std::uint64_t offer_from, std::uint64_t pump_from = 0) {
  for (std::uint64_t i = std::min(offer_from, pump_from); i < log.size();
       ++i) {
    if (i >= offer_from) s.offer(log[i], i);
    if (i >= pump_from && i % 7 == 6) s.pump(3);
  }
  s.flush();
}

struct RunResult {
  std::string stats;
  core::FlagBatch flags;
  std::uint64_t boundaries = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t tier_transitions = 0;
};

/// The uninterrupted reference run, with a counting hook so the crash
/// sweep knows how many boundaries the schedule crosses. (The hook
/// switches WAL appends to two-phase writes, the same I/O pattern the
/// crashing runs see; detector state is unaffected.)
RunResult run_baseline(const std::vector<osn::Event>& log,
                       const std::string& dir) {
  RunResult result;
  const ServiceOptions opts = make_options(
      dir, [&result](CrashPoint) { ++result.boundaries; });
  ServiceSupervisor s(opts);
  const RecoveryReport report = s.start();
  EXPECT_TRUE(report.cold_start);
  drive(s, log, 0);
  EXPECT_TRUE(s.accounting_ok());
  result.stats = s.stats_json();
  result.flags = s.take_flagged();
  result.shed_total = s.shed_total();
  result.tier_transitions = s.tier_transitions();
  return result;
}

void expect_flags_equal(const core::FlagBatch& a, const core::FlagBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].account, b[i].account) << i;
    ASSERT_DOUBLE_EQ(a[i].flagged_at, b[i].flagged_at) << i;
    ASSERT_DOUBLE_EQ(a[i].features.invite_rate_short,
                     b[i].features.invite_rate_short)
        << i;
    ASSERT_DOUBLE_EQ(a[i].features.outgoing_accept_ratio,
                     b[i].features.outgoing_accept_ratio)
        << i;
    ASSERT_DOUBLE_EQ(a[i].features.clustering_coefficient,
                     b[i].features.clustering_coefficient)
        << i;
  }
}

/// Runs to the b-th boundary, dies there, recovers in a fresh
/// supervisor, finishes the stream, and returns the final state.
RunResult crash_recover_run(const std::vector<osn::Event>& log,
                            const std::string& dir, std::uint64_t b) {
  faults::CrashInjector crash(b);
  auto victim = std::make_unique<ServiceSupervisor>(
      make_options(dir, std::ref(crash)));
  bool crashed = false;
  try {
    victim->start();
    drive(*victim, log, 0);
  } catch (const faults::InjectedCrash&) {
    crashed = true;
  }
  EXPECT_TRUE(crashed) << "boundary " << b << " never crossed";
  victim.reset();  // simulated process death

  ServiceSupervisor recovered(make_options(dir));
  const RecoveryReport report = recovered.start();
  EXPECT_TRUE(recovered.accounting_ok()) << "boundary " << b;
  drive(recovered, log, report.next_index, report.checkpoint_position);
  EXPECT_TRUE(recovered.accounting_ok()) << "boundary " << b;
  RunResult result;
  result.stats = recovered.stats_json();
  result.flags = recovered.take_flagged();
  return result;
}

TEST_F(ServiceRecovery, ByteIdenticalAtEveryCrashPoint) {
  const std::vector<osn::Event> log = build_log(7);
  ASSERT_GT(log.size(), 500u);
  const RunResult base = run_baseline(log, fresh_dir("base"));
  ASSERT_GT(base.boundaries, 2 * log.size());  // half + append per offer
  ASSERT_FALSE(base.flags.records.empty())
      << "the run must actually flag accounts for the comparison to bite";
  ASSERT_GT(base.shed_total, 0u) << "overload must engage";
  ASSERT_GT(base.tier_transitions, 0u);

  const std::string dir = fresh_dir("sweep");
  for (std::uint64_t b = 0; b < base.boundaries; ++b) {
    fs::remove_all(dir);
    const RunResult run = crash_recover_run(log, dir, b);
    ASSERT_EQ(run.stats, base.stats) << "crash boundary " << b;
    expect_flags_equal(run.flags, base.flags);
    if (::testing::Test::HasFailure()) FAIL() << "crash boundary " << b;
  }
}

/// The recovery path is thread-count-invariant: a mid-run crash
/// recovered at SYBIL_THREADS=1 and at 8 lands on the same bytes.
TEST_F(ServiceRecovery, ByteIdenticalAcrossThreadCounts) {
  const std::vector<osn::Event> log = build_log(11);
  const RunResult base = run_baseline(log, fresh_dir("thr_base"));
  const std::uint64_t mid = base.boundaries / 2;

  core::set_thread_count(1);
  const RunResult one = crash_recover_run(log, fresh_dir("thr1"), mid);
  core::set_thread_count(8);
  const RunResult eight = crash_recover_run(log, fresh_dir("thr8"), mid);
  core::set_thread_count(0);  // back to automatic

  EXPECT_EQ(one.stats, base.stats);
  EXPECT_EQ(eight.stats, base.stats);
  expect_flags_equal(one.flags, base.flags);
  expect_flags_equal(eight.flags, base.flags);
}

TEST_F(ServiceRecovery, CorruptNewestCheckpointFallsBackAGeneration) {
  const std::vector<osn::Event> log = build_log(13);
  const RunResult base = run_baseline(log, fresh_dir("corrupt_base"));

  const std::string dir = fresh_dir("corrupt");
  {
    ServiceSupervisor s(make_options(dir));
    s.start();
    drive(s, log, 0);
  }
  const auto generations = list_checkpoints(dir + "/ckpt");
  ASSERT_EQ(generations.size(), 2u);  // retention holds
  faults::tear_file_tail(generations.back().second, /*seed=*/99);

  ServiceSupervisor recovered(make_options(dir));
  const RecoveryReport report = recovered.start();
  EXPECT_FALSE(report.cold_start);
  EXPECT_EQ(report.generations_discarded, 1u);
  EXPECT_EQ(report.checkpoint_file, generations.front().second);
  EXPECT_EQ(report.checkpoint_position, generations.front().first);
  EXPECT_GT(report.records_replayed, 0u);
  EXPECT_TRUE(recovered.accounting_ok());
  drive(recovered, log, report.next_index, report.checkpoint_position);
  EXPECT_EQ(recovered.stats_json(), base.stats);
  expect_flags_equal(recovered.take_flagged(), base.flags);
}

TEST_F(ServiceRecovery, ColdStartReplaysTheFullWal) {
  const std::vector<osn::Event> log = build_log(17);
  const RunResult base = run_baseline(log, fresh_dir("cold_base"));

  const std::string dir = fresh_dir("cold");
  {
    ServiceOptions opts = make_options(dir);
    opts.checkpoint_every = 0;  // never checkpoint...
    ServiceSupervisor s(opts);
    s.start();
    for (std::uint64_t i = 0; i < log.size(); ++i) {
      s.offer(log[i], i);
      if (i % 7 == 6) s.pump(3);
    }
    // ...and die without flush(): everything must come back from WAL.
  }
  ServiceSupervisor recovered(make_options(dir));
  const RecoveryReport report = recovered.start();
  EXPECT_TRUE(report.cold_start);
  EXPECT_EQ(report.records_replayed, log.size());
  EXPECT_EQ(report.next_index, log.size());
  EXPECT_TRUE(recovered.accounting_ok());
  // offer_from == N: only the pump schedule re-runs over the backlog.
  drive(recovered, log, report.next_index, report.checkpoint_position);
  EXPECT_EQ(recovered.stats_json(), base.stats);
  expect_flags_equal(recovered.take_flagged(), base.flags);
}

}  // namespace
}  // namespace sybil::service
