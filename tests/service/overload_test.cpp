// Overload-control suite: degradation-tier transitions with
// hysteresis, the bans-are-never-shed rule, capacity shedding, the
// flag-sweep-only tier's sweep path, option validation, and the
// accounting identity
//
//   offered == shed + queued + applied + deduped + dead-lettered
//              + buffered
//
// checked after every single operation (docs/ROBUSTNESS.md
// §Degradation tiers).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "service/supervisor.h"

namespace sybil::service {
namespace {

namespace fs = std::filesystem;

class ServiceOverload : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ::setenv("SYBIL_IO_FSYNC", "0", 1); }
  static void TearDownTestSuite() { ::unsetenv("SYBIL_IO_FSYNC"); }
};

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_ovl_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Tiny watermarks so every tier is reachable by hand:
/// resume 2 < shed 4 <= sweep-only 6 <= capacity 8.
ServiceOptions tiny_options(const std::string& dir) {
  ServiceOptions o;
  o.dir = dir;
  o.wal_fsync = WalFsync::kNever;
  o.checkpoint_every = 0;  // explicit checkpoints only
  o.detector.overload.queue_capacity = 8;
  o.detector.overload.shed_watermark = 4;
  o.detector.overload.sweep_only_watermark = 6;
  o.detector.overload.resume_watermark = 2;
  return o;
}

osn::Event request_at(double t, graph::NodeId from = 1,
                      graph::NodeId to = 2) {
  return osn::Event{osn::EventType::kRequestSent, from, to, t};
}

osn::Event ban_of(graph::NodeId who, double t) {
  return osn::Event{osn::EventType::kAccountBanned, who, who, t};
}

#define EXPECT_ACCOUNTED(s) EXPECT_TRUE((s).accounting_ok())

TEST_F(ServiceOverload, TiersDegradeAtWatermarksWithHysteresis) {
  ServiceSupervisor s(tiny_options(fresh_dir("tiers")));
  s.start();
  double t = 0.0;

  // Depth 0..3: full service.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(s.offer(request_at(t += 0.01)));
    EXPECT_EQ(s.tier(), core::ServiceTier::kFull);
    EXPECT_ACCOUNTED(s);
  }
  // Depth 4 at decision time: shed-low-priority. Requests still land.
  EXPECT_TRUE(s.offer(request_at(t += 0.01)));
  EXPECT_EQ(s.tier(), core::ServiceTier::kShedLowPriority);
  // ...but low-priority kinds are shed.
  EXPECT_FALSE(s.offer(
      osn::Event{osn::EventType::kAccountCreated, 9, 9, t += 0.01}));
  EXPECT_EQ(s.shed_low_priority(), 1u);
  EXPECT_ACCOUNTED(s);

  // Push depth to 6: sweep-only; now even requests are shed.
  EXPECT_TRUE(s.offer(request_at(t += 0.01)));  // depth 6
  EXPECT_FALSE(s.offer(request_at(t += 0.01)));
  EXPECT_EQ(s.tier(), core::ServiceTier::kSweepOnly);
  EXPECT_EQ(s.shed_sweep_only(), 1u);
  EXPECT_ACCOUNTED(s);

  // Hysteresis: draining to between resume (2) and shed (4) must NOT
  // restore service...
  s.pump(3);  // depth 3
  EXPECT_FALSE(s.offer(request_at(t += 0.01)));
  EXPECT_EQ(s.tier(), core::ServiceTier::kSweepOnly);
  // ...only draining to the resume watermark does.
  s.pump(1);  // depth 2
  EXPECT_TRUE(s.offer(request_at(t += 0.01)));
  EXPECT_EQ(s.tier(), core::ServiceTier::kFull);
  EXPECT_ACCOUNTED(s);
}

TEST_F(ServiceOverload, BansAreNeverShed) {
  ServiceSupervisor s(tiny_options(fresh_dir("bans")));
  s.start();
  double t = 0.0;
  // Fill past every watermark with bans: all admitted, even beyond the
  // hard capacity bound.
  for (graph::NodeId who = 0; who < 10; ++who) {
    EXPECT_TRUE(s.offer(ban_of(who, t += 0.01)));
    EXPECT_ACCOUNTED(s);
  }
  EXPECT_EQ(s.queue_depth(), 10u);  // capacity is 8
  EXPECT_EQ(s.shed_total(), 0u);
  EXPECT_EQ(s.tier(), core::ServiceTier::kSweepOnly);
  // A non-ban at depth >= capacity is a capacity shed, counted apart
  // from the tier sheds.
  EXPECT_FALSE(s.offer(request_at(t += 0.01)));
  EXPECT_EQ(s.shed_capacity(), 1u);
  EXPECT_EQ(s.shed_sweep_only(), 0u);
  EXPECT_ACCOUNTED(s);
}

TEST_F(ServiceOverload, PeriodicSweepFlagsEvidenceIngestMissed) {
  ServiceOptions opts = tiny_options(fresh_dir("sweep"));
  opts.detector.rule.invite_rate_min = 2.0;
  opts.detector.rule.min_requests = 3;
  opts.detector.ingest.watermark_hours = 0.0;  // apply in arrival order
  opts.detector.overload.queue_capacity = 64;
  opts.detector.overload.shed_watermark = 32;
  opts.detector.overload.sweep_only_watermark = 48;
  opts.detector.overload.resume_watermark = 8;
  ServiceSupervisor s(opts);
  s.start();
  double t = 0.0;
  auto seeded = [&](graph::NodeId u, graph::NodeId v) {
    return osn::Event{osn::EventType::kFriendshipSeeded, u, v, t += 0.001};
  };
  // Account 1 starts with two mutually-linked friends: clustering 1.0,
  // safely above the rule's clustering_max.
  s.offer(seeded(1, 2));
  s.offer(seeded(2, 3));
  s.offer(seeded(1, 3));
  // A request burst: rate and accept-ratio cross the thresholds, but
  // the high clustering keeps every ingest-time re-check negative.
  for (int k = 0; k < 8; ++k) {
    s.offer(request_at(t += 0.1, 1, static_cast<graph::NodeId>(10 + k)));
  }
  // Seeded friendships dilute clustering below the threshold — and the
  // seeded-friendship handler (rightly) re-checks nobody.
  for (graph::NodeId v = 20; v < 33; ++v) s.offer(seeded(1, v));
  s.pump();
  EXPECT_ACCOUNTED(s);
  EXPECT_TRUE(s.take_flagged().records.empty());
  // Only the periodic sweep re-evaluates existing evidence without new
  // ingestion; it must catch the account the event path missed.
  const std::size_t newly = s.sweep_flags(/*now=*/2.0);
  EXPECT_EQ(newly, 1u);
  const core::FlagBatch flags = s.take_flagged();
  ASSERT_EQ(flags.records.size(), 1u);
  EXPECT_EQ(flags.records.front().account, 1u);
  EXPECT_DOUBLE_EQ(flags.records.front().flagged_at, 2.0);
  EXPECT_ACCOUNTED(s);
}

TEST_F(ServiceOverload, StatsJsonCarriesShedBreakdownAndTier) {
  ServiceSupervisor s(tiny_options(fresh_dir("stats")));
  s.start();
  double t = 0.0;
  for (int i = 0; i < 7; ++i) s.offer(request_at(t += 0.01));
  const std::string json = s.stats_json();
  EXPECT_NE(json.find("\"offered\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed\":{\"low_priority\":0,\"sweep_only\":1,"
                       "\"capacity\":0,\"total\":1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"tier\":\"sweep-only\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"deadlettered\":{\"total\":0"), std::string::npos)
      << json;
}

TEST_F(ServiceOverload, ValidatesOverloadAndServiceOptions) {
  core::DetectorOptions d;
  d.overload.resume_watermark = d.overload.shed_watermark;  // no hysteresis
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = core::DetectorOptions{};
  d.overload.sweep_only_watermark = d.overload.queue_capacity + 1;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = core::DetectorOptions{};
  d.overload.shed_watermark = d.overload.sweep_only_watermark + 1;
  EXPECT_THROW(d.validate(), std::invalid_argument);

  ServiceOptions s;
  s.dir = "";
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.dir = "somewhere";
  s.checkpoint_retain = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.checkpoint_retain = 1;
  s.wal_segment_records = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.wal_segment_records = 1;
  EXPECT_NO_THROW(s.validate());
}

TEST_F(ServiceOverload, OperationsBeforeStartAreRejected) {
  ServiceSupervisor s(tiny_options(fresh_dir("nostart")));
  EXPECT_THROW(s.offer(request_at(0.0)), std::logic_error);
  EXPECT_THROW(s.pump(), std::logic_error);
  EXPECT_THROW(s.checkpoint_now(), std::logic_error);
  s.start();
  EXPECT_THROW(s.start(), std::logic_error);  // and never twice
}

}  // namespace
}  // namespace sybil::service
