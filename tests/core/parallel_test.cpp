// Determinism contract of core/parallel: the chunk partition, the
// parallel_for / parallel_reduce results, and the per-chunk RNG streams
// must be bit-identical whether the pool runs 1, 2 or 8 workers.
#include "core/parallel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sybil::core {
namespace {

/// Restores automatic thread-count resolution when a test exits.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(ChunkPartition, CoversRangeExactlyOnce) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                        std::size_t{64}, std::size_t{65}, std::size_t{1000}}) {
    const auto chunks = chunk_partition(n);
    std::size_t expect_begin = 0;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      EXPECT_EQ(chunks[i].index, i);
      EXPECT_EQ(chunks[i].begin, expect_begin);
      EXPECT_LT(chunks[i].begin, chunks[i].end);
      expect_begin = chunks[i].end;
    }
    EXPECT_EQ(expect_begin, n);
    EXPECT_LE(chunks.size(), kDefaultChunks);
  }
}

TEST(ChunkPartition, HonorsExplicitGrain) {
  const auto chunks = chunk_partition(10, 4);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].end, 4u);
  EXPECT_EQ(chunks[1].end, 8u);
  EXPECT_EQ(chunks[2].end, 10u);
}

TEST(ChunkPartition, IndependentOfThreadCount) {
  ThreadCountGuard guard;
  const auto reference = chunk_partition(1237);
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_thread_count(threads);
    const auto chunks = chunk_partition(1237);
    ASSERT_EQ(chunks.size(), reference.size());
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      EXPECT_EQ(chunks[i].begin, reference[i].begin);
      EXPECT_EQ(chunks[i].end, reference[i].end);
    }
  }
}

TEST(ThreadCount, SetOverrideTakesEffect) {
  ThreadCountGuard guard;
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_thread_count(threads);
    std::vector<int> visits(5000, 0);
    parallel_for(visits.size(), [&](const ChunkRange& c) {
      for (std::size_t i = c.begin; i < c.end; ++i) ++visits[i];
    });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 5000);
    for (int v : visits) ASSERT_EQ(v, 1);
  }
}

TEST(ParallelFor, BitIdenticalOutputAcrossThreadCounts) {
  ThreadCountGuard guard;
  const std::size_t n = 4096;
  auto compute = [&] {
    std::vector<double> out(n);
    parallel_for(n, [&](const ChunkRange& c) {
      for (std::size_t i = c.begin; i < c.end; ++i) {
        out[i] = std::sin(static_cast<double>(i)) / (1.0 + std::sqrt(i));
      }
    });
    return out;
  };
  set_thread_count(1);
  const std::vector<double> reference = compute();
  for (std::size_t threads : {2u, 8u}) {
    set_thread_count(threads);
    const std::vector<double> got = compute();
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < n; ++i) {
      // Bit-identity, not tolerance: the partition is fixed, so every
      // arithmetic op happens with identical operands in any schedule.
      ASSERT_EQ(got[i], reference[i]) << "index " << i;
    }
  }
}

TEST(ParallelReduce, BitIdenticalSumAcrossThreadCounts) {
  ThreadCountGuard guard;
  // Wildly mixed magnitudes so any change in summation order would
  // change the rounding — the whole point of the in-order combine.
  const std::size_t n = 10'000;
  auto term = [](std::size_t i) {
    return std::ldexp(1.0, static_cast<int>(i % 53)) /
           (1.0 + static_cast<double>(i));
  };
  auto compute = [&] {
    return parallel_reduce(
        n, 0.0,
        [&](const ChunkRange& c) {
          double partial = 0.0;
          for (std::size_t i = c.begin; i < c.end; ++i) partial += term(i);
          return partial;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  set_thread_count(1);
  const double reference = compute();
  // The reference must equal folding the chunk partials sequentially.
  const auto chunks = chunk_partition(n);
  double sequential = 0.0;
  for (const ChunkRange& c : chunks) {
    double partial = 0.0;
    for (std::size_t i = c.begin; i < c.end; ++i) partial += term(i);
    sequential += partial;
  }
  EXPECT_EQ(reference, sequential);
  for (std::size_t threads : {2u, 8u}) {
    set_thread_count(threads);
    ASSERT_EQ(compute(), reference) << threads << " threads";
  }
}

TEST(ChunkRng, StreamsAreStableAndDecorrelated) {
  // Same (seed, stream) -> identical draw sequence; the derivation is a
  // pure function, never dependent on pool state.
  stats::Rng a = chunk_rng(42, 7);
  stats::Rng b = chunk_rng(42, 7);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(a(), b());
  // Adjacent streams and adjacent seeds must diverge immediately.
  EXPECT_NE(chunk_rng(42, 7)(), chunk_rng(42, 8)());
  EXPECT_NE(chunk_rng(42, 7)(), chunk_rng(43, 7)());
  EXPECT_NE(chunk_rng(42, 0)(), chunk_rng(42, 1)());
}

TEST(ChunkRng, StochasticReduceBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  // The canonical stochastic-loop pattern (random-walk fan-out and
  // friends): each chunk draws only from its own derived stream.
  const std::size_t n = 20'000;
  const std::uint64_t master_seed = 0xfeedfaceULL;
  auto compute = [&] {
    return parallel_reduce(
        n, std::uint64_t{0},
        [&](const ChunkRange& c) {
          stats::Rng rng = chunk_rng(master_seed, c.index);
          std::uint64_t acc = 0;
          for (std::size_t i = c.begin; i < c.end; ++i) {
            acc += rng() >> 32;
          }
          return acc;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  };
  set_thread_count(1);
  const std::uint64_t reference = compute();
  for (std::size_t threads : {2u, 8u}) {
    set_thread_count(threads);
    ASSERT_EQ(compute(), reference) << threads << " threads";
  }
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadCountGuard guard;
  set_thread_count(4);
  EXPECT_THROW(
      parallel_for(1000,
                   [](const ChunkRange& c) {
                     if (c.begin >= 500) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::vector<int> visits(100, 0);
  parallel_for(visits.size(), [&](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) ++visits[i];
  });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 100);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadCountGuard guard;
  set_thread_count(4);
  std::vector<int> visits(256, 0);
  parallel_for(4, [&](const ChunkRange& outer) {
    for (std::size_t o = outer.begin; o < outer.end; ++o) {
      parallel_for(64, [&](const ChunkRange& inner) {
        for (std::size_t i = inner.begin; i < inner.end; ++i) {
          ++visits[o * 64 + i];
        }
      });
    }
  }, 1);
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 256);
}

}  // namespace
}  // namespace sybil::core
