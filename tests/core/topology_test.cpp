#include "core/topology.h"

#include <gtest/gtest.h>

namespace sybil::core {
namespace {

/// Crafted network:
///   normals: n0, n1, n2, n3
///   sybils:  s0-s1-s2 (a path: 2 sybil edges), s3 (isolated pair with
///   s4), s5 (no sybil edges)
///   attack edges: s0-n0, s0-n1, s1-n1, s3-n2, s5-n3, s5-n0
struct Crafted {
  osn::Network net;
  std::vector<osn::NodeId> normals, sybils;

  Crafted() {
    for (int i = 0; i < 4; ++i) {
      normals.push_back(net.add_account(osn::Account{}));
    }
    for (int i = 0; i < 6; ++i) {
      osn::Account a;
      a.kind = osn::AccountKind::kSybil;
      sybils.push_back(net.add_account(a));
    }
    double t = 1.0;
    const auto link = [&](osn::NodeId a, osn::NodeId b) {
      net.add_friendship(a, b, t);
      t += 1.0;
    };
    link(sybils[0], sybils[1]);
    link(sybils[1], sybils[2]);
    link(sybils[3], sybils[4]);
    link(sybils[0], normals[0]);
    link(sybils[0], normals[1]);
    link(sybils[1], normals[1]);
    link(sybils[3], normals[2]);
    link(sybils[5], normals[3]);
    link(sybils[5], normals[0]);
  }
};

TEST(Topology, EdgeTotals) {
  Crafted c;
  TopologyAnalyzer topo(c.net, c.sybils);
  EXPECT_EQ(topo.sybil_count(), 6u);
  EXPECT_EQ(topo.total_sybil_edges(), 3u);
  EXPECT_EQ(topo.total_attack_edges(), 6u);
}

TEST(Topology, FractionWithSybilEdge) {
  Crafted c;
  TopologyAnalyzer topo(c.net, c.sybils);
  // s0..s4 have sybil edges; s5 does not → 5/6.
  EXPECT_NEAR(topo.fraction_with_sybil_edge(), 5.0 / 6.0, 1e-12);
}

TEST(Topology, DegreeSequences) {
  Crafted c;
  TopologyAnalyzer topo(c.net, c.sybils);
  const auto total = topo.sybil_total_degrees();
  const auto sybil_only = topo.sybil_edge_degrees();
  ASSERT_EQ(total.size(), 6u);
  // s0: 1 sybil edge (to s1) + 2 attack edges.
  EXPECT_DOUBLE_EQ(total[0], 3.0);
  EXPECT_DOUBLE_EQ(sybil_only[0], 1.0);
  // s1: 2 sybil edges (path center) + 1 attack edge.
  EXPECT_DOUBLE_EQ(total[1], 3.0);
  EXPECT_DOUBLE_EQ(sybil_only[1], 2.0);
  // s5: only attack edges.
  EXPECT_DOUBLE_EQ(total[5], 2.0);
  EXPECT_DOUBLE_EQ(sybil_only[5], 0.0);
}

TEST(Topology, ComponentStats) {
  Crafted c;
  TopologyAnalyzer topo(c.net, c.sybils);
  const auto& stats = topo.component_stats();
  ASSERT_EQ(stats.size(), 2u);  // the singleton s5 is excluded
  // Largest first: {s0,s1,s2} with 2 sybil edges, 3 attack edges,
  // audience {n0, n1} = 2.
  EXPECT_EQ(stats[0].sybils, 3u);
  EXPECT_EQ(stats[0].sybil_edges, 2u);
  EXPECT_EQ(stats[0].attack_edges, 3u);
  EXPECT_EQ(stats[0].audience, 2u);
  // Pair {s3, s4}: 1 sybil edge, 1 attack edge, audience {n2}.
  EXPECT_EQ(stats[1].sybils, 2u);
  EXPECT_EQ(stats[1].sybil_edges, 1u);
  EXPECT_EQ(stats[1].attack_edges, 1u);
  EXPECT_EQ(stats[1].audience, 1u);
}

TEST(Topology, ComponentSizesAndMembers) {
  Crafted c;
  TopologyAnalyzer topo(c.net, c.sybils);
  EXPECT_EQ(topo.component_sizes(), (std::vector<double>{3.0, 2.0}));
  const auto members = topo.component_members(0);
  EXPECT_EQ(members.size(), 3u);
  EXPECT_TRUE(topo.component_members(5).empty());  // out of range → empty
}

TEST(Topology, ComponentDegrees) {
  Crafted c;
  TopologyAnalyzer topo(c.net, c.sybils);
  const auto cd = topo.component_degrees(0);
  ASSERT_EQ(cd.sybil_degree.size(), 3u);
  // Path s0-s1-s2: sybil degrees 1, 2, 1 in member order (s0,s1,s2).
  double sum = 0;
  for (double d : cd.sybil_degree) sum += d;
  EXPECT_DOUBLE_EQ(sum, 4.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(cd.total_degree[i], cd.sybil_degree[i]);
  }
}

TEST(Topology, AudienceCountsDistinctNormals) {
  // One sybil pair, both attacking the SAME normal: audience must be 1.
  osn::Network net;
  const auto n = net.add_account(osn::Account{});
  osn::Account s;
  s.kind = osn::AccountKind::kSybil;
  const auto s0 = net.add_account(s);
  const auto s1 = net.add_account(s);
  net.add_friendship(s0, s1, 1.0);
  net.add_friendship(s0, n, 2.0);
  net.add_friendship(s1, n, 3.0);
  TopologyAnalyzer topo(net, {s0, s1});
  ASSERT_EQ(topo.component_stats().size(), 1u);
  EXPECT_EQ(topo.component_stats()[0].attack_edges, 2u);
  EXPECT_EQ(topo.component_stats()[0].audience, 1u);
}

TEST(Topology, NoSybilsNoComponents) {
  osn::Network net;
  net.add_account(osn::Account{});
  TopologyAnalyzer topo(net, {});
  EXPECT_EQ(topo.sybil_count(), 0u);
  EXPECT_DOUBLE_EQ(topo.fraction_with_sybil_edge(), 0.0);
  EXPECT_TRUE(topo.component_stats().empty());
}

}  // namespace
}  // namespace sybil::core
