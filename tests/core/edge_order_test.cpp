#include "core/edge_order.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace sybil::core {
namespace {

TEST(EdgeOrderRow, RunStatistics) {
  EdgeOrderRow row;
  row.flags = {true, true, false, true, false, false};
  EXPECT_EQ(row.sybil_edge_count(), 3u);
  EXPECT_EQ(row.longest_sybil_run(), 2u);
  EXPECT_EQ(row.leading_sybil_run(), 2u);
  // positions 0,1,3 of 0..5 → mean (0 + 0.2 + 0.6)/3.
  EXPECT_NEAR(row.mean_sybil_position(), (0.0 + 0.2 + 0.6) / 3.0, 1e-12);
}

TEST(EdgeOrderRow, NoSybilEdges) {
  EdgeOrderRow row;
  row.flags = {false, false};
  EXPECT_EQ(row.sybil_edge_count(), 0u);
  EXPECT_EQ(row.longest_sybil_run(), 0u);
  EXPECT_DOUBLE_EQ(row.mean_sybil_position(), -1.0);
}

TEST(EdgeOrder, RowsAreChronological) {
  osn::Network net;
  osn::Account s;
  s.kind = osn::AccountKind::kSybil;
  const auto sybil = net.add_account(s);
  const auto other_sybil = net.add_account(s);
  const auto n0 = net.add_account(osn::Account{});
  const auto n1 = net.add_account(osn::Account{});
  // Insert out of chronological order to exercise the sort.
  net.add_friendship(sybil, n0, 5.0);
  net.add_friendship(sybil, other_sybil, 1.0);
  net.add_friendship(sybil, n1, 3.0);
  std::vector<bool> mask(net.account_count(), false);
  mask[sybil] = mask[other_sybil] = true;
  const auto rows =
      edge_order_rows(net, std::vector<osn::NodeId>{sybil}, mask);
  ASSERT_EQ(rows.size(), 1u);
  // Chronological: other_sybil (t=1), n1 (t=3), n0 (t=5).
  EXPECT_EQ(rows[0].flags, (std::vector<bool>{true, false, false}));
}

TEST(EdgeOrder, MaskSizeMismatchThrows) {
  osn::Network net;
  net.add_account(osn::Account{});
  EXPECT_THROW(
      edge_order_rows(net, std::vector<osn::NodeId>{}, std::vector<bool>{}),
      std::invalid_argument);
}

TEST(EdgeOrderSummary, DetectsIntentionalLeadingRuns) {
  std::vector<EdgeOrderRow> rows(2);
  // Fleet-wired Sybil: first 4 edges are Sybil edges.
  rows[0].flags = {true, true, true, true, false, false, false, false};
  // Accidental Sybil: one edge in the middle.
  rows[1].flags = {false, false, false, true, false, false, false, false};
  const auto s = summarize_edge_order(rows, 3);
  EXPECT_EQ(s.rows, 2u);
  EXPECT_EQ(s.rows_with_sybil_edges, 2u);
  EXPECT_EQ(s.intentional_rows, 1u);
}

TEST(EdgeOrderSummary, UniformPlacementLooksAccidental) {
  stats::Rng rng(1);
  std::vector<EdgeOrderRow> rows;
  for (int i = 0; i < 400; ++i) {
    EdgeOrderRow row;
    row.flags.assign(100, false);
    // Two uniformly placed Sybil edges per row.
    row.flags[rng.uniform_index(100)] = true;
    row.flags[rng.uniform_index(100)] = true;
    rows.push_back(std::move(row));
  }
  const auto s = summarize_edge_order(rows, 3);
  EXPECT_NEAR(s.mean_position, 0.5, 0.05);
  EXPECT_LT(s.ks_statistic, 0.08);
  // Uniform double placement rarely yields a 3-run.
  EXPECT_LT(s.intentional_rows, 5u);
}

TEST(EdgeOrderSummary, FrontLoadedPlacementIsDetectable) {
  std::vector<EdgeOrderRow> rows;
  for (int i = 0; i < 100; ++i) {
    EdgeOrderRow row;
    row.flags.assign(50, false);
    row.flags[0] = row.flags[1] = row.flags[2] = true;
    rows.push_back(std::move(row));
  }
  const auto s = summarize_edge_order(rows, 3);
  EXPECT_LT(s.mean_position, 0.1);
  EXPECT_GT(s.ks_statistic, 0.5);
  EXPECT_EQ(s.intentional_rows, 100u);
}

TEST(EdgeOrderSummary, EmptyInput) {
  const auto s = summarize_edge_order(std::vector<EdgeOrderRow>{});
  EXPECT_EQ(s.rows, 0u);
  EXPECT_EQ(s.rows_with_sybil_edges, 0u);
  EXPECT_DOUBLE_EQ(s.ks_statistic, 0.0);
}

}  // namespace
}  // namespace sybil::core
