#include "core/detector_options.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "core/realtime_detector.h"
#include "core/stream_detector.h"

namespace sybil::core {
namespace {

TEST(DetectorOptions, DefaultsAreValid) {
  EXPECT_NO_THROW(DetectorOptions{}.validate());
}

TEST(DetectorOptions, RejectsZeroFirstFriends) {
  DetectorOptions opts;
  opts.first_friends = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(DetectorOptions, RejectsZeroRetuneCadence) {
  DetectorOptions opts;
  opts.retune_every = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(DetectorOptions, RejectsOutOfRangeRuleRatios) {
  DetectorOptions opts;
  opts.rule.outgoing_accept_max = 1.5;
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.rule.outgoing_accept_max = -0.1;
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.rule.invite_rate_min = -1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.rule.clustering_max = 2.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(DetectorOptions, RejectsNaNRuleFields) {
  DetectorOptions opts;
  opts.rule.invite_rate_min = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(DetectorOptions, RejectsBadTunerConfig) {
  DetectorOptions opts;
  opts.tuner.fp_quantile = 1.0;  // must be strictly inside (0, 1)
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.tuner.fp_quantile = 0.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.tuner.smoothing = 1.5;
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.tuner.reservoir_capacity = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(DetectorOptions, RejectsBadIngestOptions) {
  DetectorOptions opts;
  opts.ingest.watermark_hours = -1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.ingest.watermark_hours = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.ingest.watermark_hours = std::numeric_limits<double>::infinity();
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.ingest.max_account_id = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(DetectorOptions, RejectsBadSweepDeadline) {
  DetectorOptions opts;
  opts.sweep_deadline_millis = -1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  opts = {};
  opts.sweep_deadline_millis = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(DetectorOptions, ZeroWatermarkAndBudgetsAreValid) {
  DetectorOptions opts;
  opts.ingest.watermark_hours = 0.0;   // release immediately
  opts.ingest.dead_letter_capacity = 0;  // count-only quarantine
  opts.sweep_budget = 0;               // unlimited
  opts.sweep_deadline_millis = 0.0;    // no deadline
  EXPECT_NO_THROW(opts.validate());
}

TEST(DetectorOptions, ErrorNamesTheOffendingField) {
  DetectorOptions opts;
  opts.first_friends = 0;
  try {
    opts.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("first_friends"), std::string::npos);
  }
}

/// Both detector front-ends validate at construction: a bad options
/// value never produces a half-built detector.
TEST(DetectorOptions, DetectorsRejectInvalidOptionsOnConstruction) {
  DetectorOptions opts;
  opts.first_friends = 0;
  EXPECT_THROW(StreamDetector{opts}, std::invalid_argument);
  EXPECT_THROW(RealTimeDetector{opts}, std::invalid_argument);
}

/// One options value configures both halves of a deployment; the fields
/// each path ignores are harmless.
TEST(DetectorOptions, OneValueConfiguresBothDetectorPaths) {
  DetectorOptions opts;
  opts.rule.invite_rate_min = 5.0;
  opts.first_friends = 10;
  opts.adaptive = false;  // ignored by the streaming path
  StreamDetector stream(opts);
  RealTimeDetector realtime(opts);
  EXPECT_DOUBLE_EQ(realtime.rule().invite_rate_min, 5.0);
  EXPECT_DOUBLE_EQ(stream.rule().invite_rate_min, 5.0);
}

}  // namespace
}  // namespace sybil::core
