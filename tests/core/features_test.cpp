#include "core/features.h"

#include <gtest/gtest.h>

namespace sybil::core {
namespace {

const osn::Network::DecideFn kAcceptAll = [](osn::NodeId, osn::NodeId,
                                             std::uint8_t) { return true; };
const osn::Network::DecideFn kRejectAll = [](osn::NodeId, osn::NodeId,
                                             std::uint8_t) { return false; };

TEST(Features, DefaultsForInactiveAccount) {
  osn::Network net;
  const auto id = net.add_account(osn::Account{});
  const FeatureExtractor fx(net);
  const SybilFeatures f = fx.extract(id);
  EXPECT_DOUBLE_EQ(f.invite_rate_short, 0.0);
  EXPECT_DOUBLE_EQ(f.outgoing_accept_ratio, 1.0);  // no history → benign
  EXPECT_DOUBLE_EQ(f.incoming_accept_ratio, 1.0);
  EXPECT_DOUBLE_EQ(f.clustering_coefficient, 0.0);
}

TEST(Features, FullAcceptanceIsRatioOne) {
  osn::Network net;
  const auto a = net.add_account(osn::Account{});
  const auto b = net.add_account(osn::Account{});
  const auto c = net.add_account(osn::Account{});
  net.send_request(a, b, 0.0, 1.0);
  net.send_request(a, c, 0.0, 1.0);
  net.process_responses(0.5, kAcceptAll);  // nothing due yet
  const FeatureExtractor before(net);
  EXPECT_DOUBLE_EQ(before.extract(a).outgoing_accept_ratio, 0.0);
  net.process_responses(2.0, kAcceptAll);
  const FeatureExtractor after(net);
  EXPECT_DOUBLE_EQ(after.extract(a).outgoing_accept_ratio, 1.0);
}

TEST(Features, PartialAcceptance) {
  osn::Network net;
  const auto a = net.add_account(osn::Account{});
  const auto b = net.add_account(osn::Account{});
  const auto c = net.add_account(osn::Account{});
  net.send_request(a, b, 0.0, 1.0);
  net.send_request(a, c, 0.0, 1.0);
  net.process_responses(2.0, [&](osn::NodeId target, osn::NodeId,
                                 std::uint8_t) { return target == b; });
  const FeatureExtractor fx(net);
  const SybilFeatures f = fx.extract(a);
  EXPECT_DOUBLE_EQ(f.outgoing_accept_ratio, 0.5);
  EXPECT_DOUBLE_EQ(fx.extract(b).incoming_accept_ratio, 1.0);
  EXPECT_DOUBLE_EQ(fx.extract(c).incoming_accept_ratio, 0.0);
}

TEST(Features, InviteRateShortWindow) {
  osn::Network net;
  const auto a = net.add_account(osn::Account{});
  for (int i = 0; i < 30; ++i) {
    const auto target = net.add_account(osn::Account{});
    // All 30 invites within hour 0.
    net.send_request(a, target, 0.5, 1.0);
  }
  const FeatureExtractor fx(net);
  EXPECT_DOUBLE_EQ(fx.extract(a).invite_rate_short, 30.0);
  EXPECT_GT(fx.extract(a).invite_rate_long, 0.0);
}

TEST(Features, ClusteringOverFirstFriends) {
  osn::Network net;
  const auto a = net.add_account(osn::Account{});
  const auto b = net.add_account(osn::Account{});
  const auto c = net.add_account(osn::Account{});
  net.add_friendship(a, b, 1.0);
  net.add_friendship(a, c, 2.0);
  net.add_friendship(b, c, 3.0);
  const FeatureExtractor fx(net);
  EXPECT_DOUBLE_EQ(fx.extract(a).clustering_coefficient, 1.0);
  EXPECT_DOUBLE_EQ(fx.extract(b).clustering_coefficient, 1.0);
}

TEST(Features, VectorLayout) {
  SybilFeatures f;
  f.invite_rate_short = 1.0;
  f.outgoing_accept_ratio = 2.0;
  f.incoming_accept_ratio = 3.0;
  f.clustering_coefficient = 4.0;
  const auto v = f.as_vector();
  EXPECT_EQ(v.size(), SybilFeatures::kFeatureCount);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  EXPECT_DOUBLE_EQ(v[3], 4.0);
}

TEST(Features, BatchMatchesSingle) {
  osn::Network net;
  const auto a = net.add_account(osn::Account{});
  const auto b = net.add_account(osn::Account{});
  net.add_friendship(a, b, 1.0);
  const FeatureExtractor fx(net);
  const auto batch = fx.extract(std::vector<osn::NodeId>{a, b});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0].clustering_coefficient,
                   fx.extract(a).clustering_coefficient);
}

}  // namespace
}  // namespace sybil::core
