#include "core/realtime_detector.h"

#include <gtest/gtest.h>

namespace sybil::core {
namespace {

/// Builds a network with one blatant Sybil (burst of unreciprocated
/// stranger requests) and one normal user.
struct Scenario {
  osn::Network net;
  osn::NodeId sybil;
  osn::NodeId normal;

  Scenario() {
    osn::Account s;
    s.kind = osn::AccountKind::kSybil;
    sybil = net.add_account(s);
    normal = net.add_account(osn::Account{});
    // 60 stranger invites within one hour, 25% accepted.
    for (int i = 0; i < 60; ++i) {
      const auto victim = net.add_account(osn::Account{});
      net.send_request(sybil, victim, 0.2, 0.5, /*stranger*/ 0);
    }
    int k = 0;
    net.process_responses(1.0, [&](osn::NodeId, osn::NodeId, std::uint8_t) {
      return (k++ % 4) == 0;
    });
    // The normal user sends 2 FoF invites, both accepted.
    const auto f1 = net.add_account(osn::Account{});
    const auto f2 = net.add_account(osn::Account{});
    net.send_request(normal, f1, 0.1, 0.6, /*fof*/ 1);
    net.send_request(normal, f2, 0.4, 0.7, /*fof*/ 1);
    net.process_responses(
        1.0, [](osn::NodeId, osn::NodeId, std::uint8_t) { return true; });
  }
};

TEST(RealTime, SweepFlagsOnlySybil) {
  Scenario sc;
  RealTimeDetector detector;
  const FlagBatch flagged =
      detector.sweep(sc.net, {sc.sybil, sc.normal}, /*now=*/2.0);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].account, sc.sybil);
  EXPECT_DOUBLE_EQ(flagged[0].flagged_at, 2.0);
  // The record carries the features the rule fired on.
  EXPECT_LT(flagged[0].features.outgoing_accept_ratio, 0.5);
  EXPECT_EQ(flagged.ids(), std::vector<osn::NodeId>{sc.sybil});
  EXPECT_TRUE(detector.already_flagged(sc.sybil));
  EXPECT_FALSE(detector.already_flagged(sc.normal));
}

TEST(RealTime, FlaggedOnceNotReflagged) {
  Scenario sc;
  RealTimeDetector detector;
  EXPECT_EQ(detector.sweep(sc.net, {sc.sybil}).size(), 1u);
  EXPECT_EQ(detector.sweep(sc.net, {sc.sybil}).size(), 0u);
  EXPECT_EQ(detector.flagged_count(), 1u);
}

TEST(RealTime, BannedAccountsSkipped) {
  Scenario sc;
  sc.net.ban(sc.sybil, 2.0);
  RealTimeDetector detector;
  EXPECT_TRUE(detector.sweep(sc.net, {sc.sybil}).empty());
}

TEST(RealTime, LowActivityAccountNeverFlagged) {
  osn::Network net;
  const auto quiet = net.add_account(osn::Account{});
  const auto other = net.add_account(osn::Account{});
  // A single unanswered stranger request: ratios look awful but the
  // min-requests guard must hold.
  net.send_request(quiet, other, 0.0, 0.5);
  net.process_responses(
      1.0, [](osn::NodeId, osn::NodeId, std::uint8_t) { return false; });
  RealTimeDetector detector;
  EXPECT_TRUE(detector.sweep(net, {quiet}).empty());
}

/// Builds a network with `n` blatant Sybils, returning their ids.
struct BurstScenario {
  osn::Network net;
  std::vector<osn::NodeId> sybils;

  explicit BurstScenario(int n) {
    for (int s = 0; s < n; ++s) {
      osn::Account a;
      a.kind = osn::AccountKind::kSybil;
      sybils.push_back(net.add_account(a));
    }
    for (const osn::NodeId s : sybils) {
      for (int i = 0; i < 60; ++i) {
        const auto victim = net.add_account(osn::Account{});
        net.send_request(s, victim, 0.2, 0.5, /*stranger*/ 0);
      }
    }
    int k = 0;
    net.process_responses(1.0, [&](osn::NodeId, osn::NodeId, std::uint8_t) {
      return (k++ % 4) == 0;
    });
  }
};

/// A budget-cut sweep flags a prefix and carries the rest over; the
/// union of flags across successive sweeps equals one unbudgeted sweep.
TEST(RealTime, BudgetedSweepCarriesOverAndConvergesToUnbudgeted) {
  BurstScenario sc(5);

  RealTimeDetector unbudgeted;
  const FlagBatch all = unbudgeted.sweep(sc.net, sc.sybils, 2.0);
  ASSERT_EQ(all.size(), 5u);

  DetectorOptions cfg;
  cfg.sweep_budget = 2;
  RealTimeDetector budgeted(cfg);
  std::vector<osn::NodeId> flagged_union;
  const FlagBatch first = budgeted.sweep(sc.net, sc.sybils, 2.0);
  EXPECT_EQ(first.size(), 2u);  // budget caps evaluations
  EXPECT_EQ(budgeted.carryover_count(), 3u);
  for (const auto& r : first.records) flagged_union.push_back(r.account);
  // Later sweeps with no new candidates drain the carry-over queue.
  for (int sweep = 0; sweep < 4 && budgeted.carryover_count() > 0; ++sweep) {
    for (const auto& r : budgeted.sweep(sc.net, {}, 3.0).records) {
      flagged_union.push_back(r.account);
    }
  }
  EXPECT_EQ(budgeted.carryover_count(), 0u);
  EXPECT_EQ(flagged_union, all.ids());  // same accounts, same order
}

/// Re-submitting candidates that are already queued must not duplicate
/// them, and carried-over candidates are evaluated before new ones.
TEST(RealTime, CarryoverDeduplicatesResubmittedCandidates) {
  BurstScenario sc(4);
  DetectorOptions cfg;
  cfg.sweep_budget = 1;
  RealTimeDetector detector(cfg);
  EXPECT_EQ(detector.sweep(sc.net, sc.sybils, 2.0).size(), 1u);
  EXPECT_EQ(detector.carryover_count(), 3u);
  // The platform re-submits the same active accounts next sweep.
  EXPECT_EQ(detector.sweep(sc.net, sc.sybils, 3.0).size(), 1u);
  // Still one copy each of the two remaining candidates.
  EXPECT_EQ(detector.carryover_count(), 2u);
}

/// A sweep always evaluates at least one candidate, even under an
/// already-expired deadline — the progress guarantee.
TEST(RealTime, ExpiredDeadlineStillMakesProgress) {
  BurstScenario sc(3);
  DetectorOptions cfg;
  cfg.sweep_deadline_millis = 1e-9;  // expires immediately
  RealTimeDetector detector(cfg);
  std::size_t total = 0;
  for (int sweep = 0; sweep < 10 && total < 3; ++sweep) {
    total += detector.sweep(sc.net, sweep == 0 ? sc.sybils
                                               : std::vector<osn::NodeId>{},
                            2.0)
                 .size();
  }
  EXPECT_EQ(total, 3u);  // every Sybil flagged despite the zero budget
  EXPECT_EQ(detector.carryover_count(), 0u);
}

/// Already-flagged and banned candidates are skipped without consuming
/// budget, so a budgeted sweep is never starved by stale candidates.
TEST(RealTime, SkippedCandidatesDoNotConsumeBudget) {
  BurstScenario sc(3);
  DetectorOptions cfg;
  cfg.sweep_budget = 1;
  RealTimeDetector detector(cfg);
  EXPECT_EQ(detector.sweep(sc.net, {sc.sybils[0]}, 2.0).size(), 1u);
  // Submit the flagged account first; the budget must still reach the
  // fresh candidate behind it.
  const FlagBatch batch =
      detector.sweep(sc.net, {sc.sybils[0], sc.sybils[1]}, 3.0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].account, sc.sybils[1]);
}

TEST(RealTime, AdaptiveFeedbackRetunesRule) {
  DetectorOptions cfg;
  cfg.adaptive = true;
  cfg.retune_every = 10;
  cfg.tuner.min_observations = 10;
  cfg.tuner.smoothing = 1.0;
  RealTimeDetector detector(cfg);
  const double initial_rate = detector.rule().invite_rate_min;
  SybilFeatures normal_f;
  normal_f.invite_rate_short = 1.0;
  normal_f.outgoing_accept_ratio = 0.9;
  normal_f.clustering_coefficient = 0.08;
  for (int i = 0; i < 10; ++i) detector.confirm(normal_f, false);
  EXPECT_NE(detector.rule().invite_rate_min, initial_rate);
}

TEST(RealTime, NonAdaptiveIgnoresFeedback) {
  DetectorOptions cfg;
  cfg.adaptive = false;
  RealTimeDetector detector(cfg);
  const double initial_rate = detector.rule().invite_rate_min;
  SybilFeatures f;
  f.invite_rate_short = 1.0;
  for (int i = 0; i < 500; ++i) detector.confirm(f, false);
  EXPECT_DOUBLE_EQ(detector.rule().invite_rate_min, initial_rate);
}

}  // namespace
}  // namespace sybil::core
