#include "core/realtime_detector.h"

#include <gtest/gtest.h>

namespace sybil::core {
namespace {

/// Builds a network with one blatant Sybil (burst of unreciprocated
/// stranger requests) and one normal user.
struct Scenario {
  osn::Network net;
  osn::NodeId sybil;
  osn::NodeId normal;

  Scenario() {
    osn::Account s;
    s.kind = osn::AccountKind::kSybil;
    sybil = net.add_account(s);
    normal = net.add_account(osn::Account{});
    // 60 stranger invites within one hour, 25% accepted.
    for (int i = 0; i < 60; ++i) {
      const auto victim = net.add_account(osn::Account{});
      net.send_request(sybil, victim, 0.2, 0.5, /*stranger*/ 0);
    }
    int k = 0;
    net.process_responses(1.0, [&](osn::NodeId, osn::NodeId, std::uint8_t) {
      return (k++ % 4) == 0;
    });
    // The normal user sends 2 FoF invites, both accepted.
    const auto f1 = net.add_account(osn::Account{});
    const auto f2 = net.add_account(osn::Account{});
    net.send_request(normal, f1, 0.1, 0.6, /*fof*/ 1);
    net.send_request(normal, f2, 0.4, 0.7, /*fof*/ 1);
    net.process_responses(
        1.0, [](osn::NodeId, osn::NodeId, std::uint8_t) { return true; });
  }
};

TEST(RealTime, SweepFlagsOnlySybil) {
  Scenario sc;
  RealTimeDetector detector;
  const FlagBatch flagged =
      detector.sweep(sc.net, {sc.sybil, sc.normal}, /*now=*/2.0);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].account, sc.sybil);
  EXPECT_DOUBLE_EQ(flagged[0].flagged_at, 2.0);
  // The record carries the features the rule fired on.
  EXPECT_LT(flagged[0].features.outgoing_accept_ratio, 0.5);
  EXPECT_EQ(flagged.ids(), std::vector<osn::NodeId>{sc.sybil});
  EXPECT_TRUE(detector.already_flagged(sc.sybil));
  EXPECT_FALSE(detector.already_flagged(sc.normal));
}

TEST(RealTime, FlaggedOnceNotReflagged) {
  Scenario sc;
  RealTimeDetector detector;
  EXPECT_EQ(detector.sweep(sc.net, {sc.sybil}).size(), 1u);
  EXPECT_EQ(detector.sweep(sc.net, {sc.sybil}).size(), 0u);
  EXPECT_EQ(detector.flagged_count(), 1u);
}

TEST(RealTime, BannedAccountsSkipped) {
  Scenario sc;
  sc.net.ban(sc.sybil, 2.0);
  RealTimeDetector detector;
  EXPECT_TRUE(detector.sweep(sc.net, {sc.sybil}).empty());
}

TEST(RealTime, LowActivityAccountNeverFlagged) {
  osn::Network net;
  const auto quiet = net.add_account(osn::Account{});
  const auto other = net.add_account(osn::Account{});
  // A single unanswered stranger request: ratios look awful but the
  // min-requests guard must hold.
  net.send_request(quiet, other, 0.0, 0.5);
  net.process_responses(
      1.0, [](osn::NodeId, osn::NodeId, std::uint8_t) { return false; });
  RealTimeDetector detector;
  EXPECT_TRUE(detector.sweep(net, {quiet}).empty());
}

TEST(RealTime, AdaptiveFeedbackRetunesRule) {
  DetectorOptions cfg;
  cfg.adaptive = true;
  cfg.retune_every = 10;
  cfg.tuner.min_observations = 10;
  cfg.tuner.smoothing = 1.0;
  RealTimeDetector detector(cfg);
  const double initial_rate = detector.rule().invite_rate_min;
  SybilFeatures normal_f;
  normal_f.invite_rate_short = 1.0;
  normal_f.outgoing_accept_ratio = 0.9;
  normal_f.clustering_coefficient = 0.08;
  for (int i = 0; i < 10; ++i) detector.confirm(normal_f, false);
  EXPECT_NE(detector.rule().invite_rate_min, initial_rate);
}

TEST(RealTime, NonAdaptiveIgnoresFeedback) {
  DetectorOptions cfg;
  cfg.adaptive = false;
  RealTimeDetector detector(cfg);
  const double initial_rate = detector.rule().invite_rate_min;
  SybilFeatures f;
  f.invite_rate_short = 1.0;
  for (int i = 0; i < 500; ++i) detector.confirm(f, false);
  EXPECT_DOUBLE_EQ(detector.rule().invite_rate_min, initial_rate);
}

}  // namespace
}  // namespace sybil::core
