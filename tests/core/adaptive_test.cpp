#include "core/adaptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"

namespace sybil::core {
namespace {

SybilFeatures normal_obs(stats::Rng& rng) {
  SybilFeatures f;
  f.invite_rate_short = stats::sample_lognormal(rng, std::log(2.0), 0.5);
  f.outgoing_accept_ratio = 0.6 + 0.4 * rng.uniform();
  f.clustering_coefficient = 0.02 + 0.1 * rng.uniform();
  return f;
}

SybilFeatures sybil_obs(stats::Rng& rng) {
  SybilFeatures f;
  f.invite_rate_short = stats::sample_lognormal(rng, std::log(50.0), 0.4);
  f.outgoing_accept_ratio = 0.3 * rng.uniform();
  f.clustering_coefficient = 0.001 * rng.uniform();
  return f;
}

TEST(Adaptive, NoRetuneBeforeMinObservations) {
  AdaptiveConfig cfg;
  cfg.min_observations = 100;
  AdaptiveThresholdTuner tuner(cfg);
  stats::Rng rng(1);
  const ThresholdRule initial = tuner.rule();
  for (int i = 0; i < 50; ++i) tuner.observe(normal_obs(rng), false);
  tuner.retune();
  EXPECT_DOUBLE_EQ(tuner.rule().invite_rate_min, initial.invite_rate_min);
}

TEST(Adaptive, RetuneMovesThresholdsTowardNormalQuantiles) {
  AdaptiveConfig cfg;
  cfg.min_observations = 100;
  cfg.smoothing = 1.0;  // jump straight to the estimate
  AdaptiveThresholdTuner tuner(cfg);
  stats::Rng rng(2);
  for (int i = 0; i < 3000; ++i) tuner.observe(normal_obs(rng), false);
  for (int i = 0; i < 300; ++i) tuner.observe(sybil_obs(rng), true);
  const ThresholdRule rule = tuner.retune();
  // Rate threshold sits above almost all normals but below most Sybils.
  EXPECT_GT(rule.invite_rate_min, 6.0);
  EXPECT_LT(rule.invite_rate_min, 40.0);
  // Accept threshold below the normal range floor (0.6) but positive.
  EXPECT_LT(rule.outgoing_accept_max, 0.65);
  EXPECT_GT(rule.outgoing_accept_max, 0.0);
  // Clustering threshold between Sybil (≤0.001) and normal (≥0.02).
  EXPECT_GT(rule.clustering_max, 0.0005);
  EXPECT_LT(rule.clustering_max, 0.03);
  EXPECT_EQ(tuner.normal_observations(), 3000u);
  EXPECT_EQ(tuner.sybil_observations(), 300u);
}

TEST(Adaptive, TunedRuleSeparatesPopulations) {
  AdaptiveConfig cfg;
  cfg.smoothing = 1.0;
  AdaptiveThresholdTuner tuner(cfg);
  stats::Rng rng(3);
  for (int i = 0; i < 2000; ++i) tuner.observe(normal_obs(rng), false);
  const ThresholdDetector det(tuner.retune());
  stats::Rng eval(4);
  int sybils_caught = 0, normals_flagged = 0;
  for (int i = 0; i < 500; ++i) {
    sybils_caught += det.is_sybil(sybil_obs(eval));
    normals_flagged += det.is_sybil(normal_obs(eval));
  }
  EXPECT_GT(sybils_caught, 420);  // > ~85%
  EXPECT_LT(normals_flagged, 10);
}

TEST(Adaptive, SmoothingDampsJumps) {
  AdaptiveConfig slow;
  slow.smoothing = 0.1;
  AdaptiveConfig fast;
  fast.smoothing = 1.0;
  AdaptiveThresholdTuner a(slow), b(fast);
  stats::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto obs = normal_obs(rng);
    a.observe(obs, false);
    b.observe(obs, false);
  }
  const double initial_rate = ThresholdRule{}.invite_rate_min;
  const double slow_move = std::abs(a.retune().invite_rate_min - initial_rate);
  const double fast_move = std::abs(b.retune().invite_rate_min - initial_rate);
  EXPECT_LT(slow_move, fast_move);
}

TEST(Adaptive, ReservoirBounded) {
  AdaptiveConfig cfg;
  cfg.reservoir_capacity = 100;
  AdaptiveThresholdTuner tuner(cfg);
  stats::Rng rng(6);
  for (int i = 0; i < 10000; ++i) tuner.observe(normal_obs(rng), false);
  // Retune still works after far more observations than capacity.
  const ThresholdRule rule = tuner.retune();
  EXPECT_GT(rule.invite_rate_min, 0.0);
  EXPECT_EQ(tuner.normal_observations(), 10000u);
}

}  // namespace
}  // namespace sybil::core
