// FlatSet64 / SeqBitSet unit suite. Both back the streaming hot path
// (edge dedup and seq dedup respectively), and both have the subtle
// bits worth pinning directly: backward-shift deletion across wrapped
// probe chains, the reserved all-ones key, the bitmap set's word
// sharing and slot reclamation, and iteration completeness (the
// checkpoint codec iterates then sorts, so a dropped key corrupts
// recovered state silently).
#include "core/flat_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "stats/rng.h"

namespace sybil::core {
namespace {

template <typename Set>
std::vector<std::uint64_t> sorted_contents(const Set& s) {
  std::vector<std::uint64_t> out(s.begin(), s.end());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FlatSet64, HandlesTheReservedAllOnesKey) {
  FlatSet64 s;
  const std::uint64_t all_ones = ~std::uint64_t{0};
  EXPECT_FALSE(s.contains(all_ones));
  EXPECT_TRUE(s.insert(all_ones));
  EXPECT_FALSE(s.insert(all_ones));
  EXPECT_TRUE(s.contains(all_ones));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(sorted_contents(s), std::vector<std::uint64_t>{all_ones});
  EXPECT_EQ(s.erase(all_ones), 1u);
  EXPECT_EQ(s.erase(all_ones), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(SeqBitSet, SequentialAndSparseRoundTrip) {
  SeqBitSet s;
  // A dense run shares words...
  for (std::uint64_t q = 0; q < 1000; ++q) EXPECT_TRUE(s.insert(q));
  for (std::uint64_t q = 0; q < 1000; ++q) EXPECT_FALSE(s.insert(q));
  // ...and sparse outliers (auto-seq range, word boundaries) coexist.
  const std::uint64_t outliers[] = {
      1ull << 63, (1ull << 63) + 1, ~std::uint64_t{0}, 63, 64, 65, 1 << 20};
  for (std::uint64_t q : outliers) s.insert(q);
  EXPECT_EQ(s.size(), 1000u + 4u);  // 63/64/65 were already present
  for (std::uint64_t q = 0; q < 1000; ++q) EXPECT_TRUE(s.contains(q));
  for (std::uint64_t q : outliers) EXPECT_TRUE(s.contains(q));
  EXPECT_FALSE(s.contains(1000));
  EXPECT_FALSE(s.contains((1ull << 63) + 2));
}

TEST(SeqBitSet, EraseReclaimsWordsAndIterationStaysComplete) {
  SeqBitSet s;
  for (std::uint64_t q = 0; q < 256; ++q) s.insert(q);
  // Erase a word-aligned stripe: words [64, 128) empty out entirely and
  // their slots must be reclaimed without breaking later probes.
  for (std::uint64_t q = 64; q < 128; ++q) EXPECT_EQ(s.erase(q), 1u);
  EXPECT_EQ(s.erase(64), 0u);
  EXPECT_EQ(s.size(), 192u);
  std::vector<std::uint64_t> want;
  for (std::uint64_t q = 0; q < 256; ++q) {
    if (q < 64 || q >= 128) want.push_back(q);
  }
  EXPECT_EQ(sorted_contents(s), want);
  // The emptied range reinserts cleanly.
  for (std::uint64_t q = 64; q < 128; ++q) EXPECT_TRUE(s.insert(q));
  EXPECT_EQ(s.size(), 256u);
}

TEST(SeqBitSet, ClearResetsEverything) {
  SeqBitSet s;
  for (std::uint64_t q = 0; q < 100; ++q) s.insert(q * 1000);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(sorted_contents(s).size(), 0u);
  EXPECT_TRUE(s.insert(5));
  EXPECT_EQ(s.size(), 1u);
}

/// Randomized differential test against std::unordered_set: the mixed
/// insert/erase/contains stream the detector produces (near-monotone
/// inserts, watermark-ordered erases, occasional duplicates), applied
/// identically to both implementations and to FlatSet64.
TEST(SeqBitSet, AgreesWithReferenceUnderMixedWorkload) {
  stats::Rng rng(99);
  SeqBitSet bits;
  FlatSet64 flat;
  std::unordered_set<std::uint64_t> ref;
  std::uint64_t frontier = 0;
  for (int step = 0; step < 50000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.6) {
      // Near-monotone insert with occasional duplicates and jitter.
      const std::uint64_t seq =
          frontier + static_cast<std::uint64_t>(rng.uniform() * 40.0) - 20;
      ++frontier;
      const bool fresh = ref.insert(seq).second;
      EXPECT_EQ(bits.insert(seq), fresh) << "seq " << seq;
      EXPECT_EQ(flat.insert(seq), fresh) << "seq " << seq;
    } else if (roll < 0.9) {
      // Erase from the low end, the watermark-prune pattern.
      const std::uint64_t seq =
          static_cast<std::uint64_t>(rng.uniform() * double(frontier + 1));
      const std::size_t n = ref.erase(seq);
      EXPECT_EQ(bits.erase(seq), n) << "seq " << seq;
      EXPECT_EQ(flat.erase(seq), n) << "seq " << seq;
    } else {
      const std::uint64_t seq =
          static_cast<std::uint64_t>(rng.uniform() * double(frontier + 25));
      EXPECT_EQ(bits.contains(seq), ref.count(seq) != 0) << "seq " << seq;
      EXPECT_EQ(flat.contains(seq), ref.count(seq) != 0) << "seq " << seq;
    }
    ASSERT_EQ(bits.size(), ref.size());
    ASSERT_EQ(flat.size(), ref.size());
  }
  std::vector<std::uint64_t> want(ref.begin(), ref.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(sorted_contents(bits), want);
  EXPECT_EQ(sorted_contents(flat), want);
}

}  // namespace
}  // namespace sybil::core
