#include "core/stream_detector.h"

#include <gtest/gtest.h>

#include "core/features.h"
#include "core/metrics/instrument.h"
#include "osn/simulator.h"

#if SYBIL_METRICS_COMPILED
#include "core/metrics/metrics.h"
#endif

namespace sybil::core {
namespace {

TEST(StreamDetector, CountersTrackEvents) {
  StreamDetector det;
  det.on_request_sent(0, 1, 0.5);
  det.on_request_sent(0, 2, 0.6);
  det.on_request_accepted(0, 1, 1.0);
  det.on_request_rejected(0, 2, 1.5);
  const SybilFeatures f = det.features(0);
  EXPECT_DOUBLE_EQ(f.outgoing_accept_ratio, 0.5);
  EXPECT_DOUBLE_EQ(f.invite_rate_short, 2.0);
  EXPECT_DOUBLE_EQ(det.features(1).incoming_accept_ratio, 1.0);
  EXPECT_DOUBLE_EQ(det.features(2).incoming_accept_ratio, 0.0);
}

TEST(StreamDetector, UnknownAccountHasBenignDefaults) {
  StreamDetector det;
  const SybilFeatures f = det.features(42);
  EXPECT_DOUBLE_EQ(f.outgoing_accept_ratio, 1.0);
  EXPECT_DOUBLE_EQ(f.incoming_accept_ratio, 1.0);
  EXPECT_DOUBLE_EQ(f.invite_rate_short, 0.0);
}

TEST(StreamDetector, ClusteringTracksTriangles) {
  StreamDetector det;
  // Node 0 befriends 1, 2, 3; then 1-2 links: cc = 1/3.
  det.on_friendship(0, 1, 1.0);
  det.on_friendship(0, 2, 2.0);
  det.on_friendship(0, 3, 3.0);
  EXPECT_DOUBLE_EQ(det.features(0).clustering_coefficient, 0.0);
  det.on_friendship(1, 2, 4.0);
  EXPECT_NEAR(det.features(0).clustering_coefficient, 1.0 / 3.0, 1e-12);
  // Existing link counted when the friend attaches afterwards: 4 joins
  // 0's set already linked to 3.
  det.on_friendship(3, 4, 5.0);
  det.on_friendship(0, 4, 6.0);
  // first friends = {1,2,3,4}; links among them: (1,2), (3,4) → 2/C(4,2).
  EXPECT_NEAR(det.features(0).clustering_coefficient, 2.0 / 6.0, 1e-12);
}

TEST(StreamDetector, FirstFriendsPrefixIsBounded) {
  DetectorOptions cfg;
  cfg.first_friends = 3;
  StreamDetector det(cfg);
  for (osn::NodeId v = 1; v <= 10; ++v) {
    det.on_friendship(0, v, static_cast<double>(v));
  }
  // Only friends 1..3 are watched; a late link between 5 and 6 must not
  // change node 0's clustering.
  det.on_friendship(5, 6, 20.0);
  EXPECT_DOUBLE_EQ(det.features(0).clustering_coefficient, 0.0);
  det.on_friendship(1, 2, 21.0);
  EXPECT_NEAR(det.features(0).clustering_coefficient, 1.0 / 3.0, 1e-12);
}

TEST(StreamDetector, DuplicateEdgesIgnored) {
  StreamDetector det;
  det.on_friendship(0, 1, 1.0);
  det.on_friendship(0, 2, 2.0);
  det.on_friendship(1, 2, 3.0);
  det.on_friendship(2, 1, 4.0);  // duplicate, reversed
  EXPECT_NEAR(det.features(0).clustering_coefficient, 1.0, 1e-12);
}

TEST(StreamDetector, FlagsBurstySenderOnce) {
  StreamDetector det;
  // 60 invites in one hour, ~25% accepted, no mutual friends.
  for (int i = 0; i < 60; ++i) {
    det.on_request_sent(0, static_cast<osn::NodeId>(i + 1), 0.3);
  }
  for (int i = 0; i < 60; ++i) {
    if (i % 4 == 0) {
      det.on_request_accepted(0, static_cast<osn::NodeId>(i + 1), 0.8);
    } else {
      det.on_request_rejected(0, static_cast<osn::NodeId>(i + 1), 0.8);
    }
  }
  const FlagBatch flagged = det.take_flagged();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].account, 0u);
  // The rule fires mid-burst, while the invites are still going out.
  EXPECT_DOUBLE_EQ(flagged[0].flagged_at, 0.3);
  EXPECT_LT(flagged[0].features.outgoing_accept_ratio, 0.5);
  EXPECT_TRUE(det.take_flagged().empty());  // reported once
  EXPECT_EQ(det.flagged_total(), 1u);
}

TEST(StreamDetector, BannedAccountsNeverFlagged) {
  StreamDetector det;
  det.on_account_banned(0);
  for (int i = 0; i < 60; ++i) {
    det.on_request_sent(0, static_cast<osn::NodeId>(i + 1), 0.3);
    det.on_request_rejected(0, static_cast<osn::NodeId>(i + 1), 0.5);
  }
  EXPECT_TRUE(det.take_flagged().empty());
}

/// The streaming features must agree EXACTLY with the batch
/// FeatureExtractor when fed the same history — the property that lets
/// a deployment trust either path.
TEST(StreamDetector, ReplayMatchesBatchExtractor) {
  // A logged network exercising every event type: seeded friendships,
  // mixed accept/reject outcomes, censored requests via a mid-stream ban.
  osn::Network net(/*keep_event_log=*/true);
  stats::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    osn::Account a;
    a.kind = i < 20 ? osn::AccountKind::kSybil : osn::AccountKind::kNormal;
    net.add_account(a);
  }
  // Seeded friendships.
  for (int i = 0; i < 150; ++i) {
    net.add_friendship(static_cast<osn::NodeId>(rng.uniform_index(200)),
                       static_cast<osn::NodeId>(rng.uniform_index(200)),
                       -1.0 * static_cast<double>(i));
  }
  // Requests answered with mixed outcomes, plus bans mid-stream.
  for (double t = 0.0; t < 100.0; t += 1.0) {
    for (int k = 0; k < 30; ++k) {
      const auto from = static_cast<osn::NodeId>(rng.uniform_index(200));
      const auto to = static_cast<osn::NodeId>(rng.uniform_index(200));
      net.send_request(from, to, t + rng.uniform(),
                       t + 1.0 + rng.uniform(10.0, 20.0));
    }
    net.process_responses(t + 1.0, [&](osn::NodeId, osn::NodeId,
                                       std::uint8_t) {
      return rng.bernoulli(0.5);
    });
    if (t == 50.0) net.ban(7, t);
  }
  net.process_responses(1e9, [&](osn::NodeId, osn::NodeId, std::uint8_t) {
    return rng.bernoulli(0.5);
  });

  StreamDetector stream;
  stream.replay(net.log());
  const FeatureExtractor batch(net);
  for (osn::NodeId id = 0; id < 200; ++id) {
    const SybilFeatures a = batch.extract(id);
    const SybilFeatures b = stream.features(id);
    ASSERT_DOUBLE_EQ(a.invite_rate_short, b.invite_rate_short) << id;
    ASSERT_DOUBLE_EQ(a.invite_rate_long, b.invite_rate_long) << id;
    ASSERT_DOUBLE_EQ(a.outgoing_accept_ratio, b.outgoing_accept_ratio) << id;
    ASSERT_DOUBLE_EQ(a.incoming_accept_ratio, b.incoming_accept_ratio) << id;
    ASSERT_DOUBLE_EQ(a.clustering_coefficient, b.clustering_coefficient)
        << id;
  }
}

/// A late request referencing an already-banned account (the ban won
/// the race against an in-flight request) must not mutate the banned
/// account's state: the banned side is frozen, the live side updates.
TEST(StreamDetector, BannedPartyEventFreezesBannedSideOnly) {
  StreamDetector det;
  det.on_request_sent(0, 1, 0.5);
  det.on_account_banned(0);
  EXPECT_EQ(det.banned_party_total(), 0u);

  // The bot's client keeps sending after the ban landed.
  det.on_request_sent(0, 2, 1.0);
  EXPECT_EQ(det.banned_party_total(), 1u);
  // Sender's ledger frozen at one send; recipient still counted it.
  EXPECT_DOUBLE_EQ(det.features(0).invite_rate_short, 1.0);
  EXPECT_DOUBLE_EQ(det.features(2).incoming_accept_ratio, 0.0);

  // A response for the pre-ban request arrives after the ban: the live
  // recipient's incoming-accept counters update, the banned sender's
  // outgoing ones do not, and no edge materializes.
  det.on_request_accepted(0, 1, 1.5);
  EXPECT_EQ(det.banned_party_total(), 2u);
  // Frozen: the banned sender's accept was never counted (0 of 1 sent).
  EXPECT_DOUBLE_EQ(det.features(0).outgoing_accept_ratio, 0.0);
  EXPECT_DOUBLE_EQ(det.features(1).incoming_accept_ratio, 1.0);
  EXPECT_DOUBLE_EQ(det.features(1).clustering_coefficient, 0.0);
  EXPECT_TRUE(det.take_flagged().empty());
}

/// In-order ingest() with unique seqs is behaviourally identical to the
/// trusted replay() path: same features, nothing quarantined.
TEST(StreamDetector, InOrderIngestMatchesReplay) {
  osn::EventLog log;
  log.append({osn::EventType::kFriendshipSeeded, 0, 1, 0.5});
  log.append({osn::EventType::kRequestSent, 2, 3, 1.0});
  log.append({osn::EventType::kRequestSent, 2, 4, 1.1});
  log.append({osn::EventType::kRequestAccepted, 3, 2, 2.0});
  log.append({osn::EventType::kRequestRejected, 4, 2, 2.1});
  log.append({osn::EventType::kAccountBanned, 4, 4, 2.3});

  StreamDetector replayed;
  replayed.replay(log);
  StreamDetector ingested;
  const auto& events = log.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    ingested.ingest(events[i], i);
  }
  ingested.finish();

  EXPECT_EQ(ingested.events_in(), events.size());
  EXPECT_EQ(ingested.applied_total(), events.size());
  EXPECT_EQ(ingested.deduped_total(), 0u);
  EXPECT_EQ(ingested.deadletter_total(), 0u);
  EXPECT_EQ(ingested.buffered(), 0u);
  for (osn::NodeId id = 0; id <= 4; ++id) {
    const SybilFeatures a = replayed.features(id);
    const SybilFeatures b = ingested.features(id);
    EXPECT_DOUBLE_EQ(a.invite_rate_short, b.invite_rate_short) << id;
    EXPECT_DOUBLE_EQ(a.outgoing_accept_ratio, b.outgoing_accept_ratio) << id;
    EXPECT_DOUBLE_EQ(a.incoming_accept_ratio, b.incoming_accept_ratio) << id;
    EXPECT_DOUBLE_EQ(a.clustering_coefficient, b.clustering_coefficient)
        << id;
  }
}

/// Auto-assigned sequence numbers never repeat, so kAutoSeq events are
/// exempt from duplicate suppression by construction.
TEST(StreamDetector, AutoSeqEventsAreNeverDeduplicated) {
  StreamDetector det;
  const osn::Event e{osn::EventType::kRequestSent, 0, 1, 1.0};
  det.ingest(e);
  det.ingest(e);
  det.finish();
  EXPECT_EQ(det.applied_total(), 2u);
  EXPECT_EQ(det.deduped_total(), 0u);
  EXPECT_DOUBLE_EQ(det.features(0).invite_rate_short, 2.0);
}

#if SYBIL_METRICS_COMPILED
/// Replaying a log must advance the stream.* metrics exactly as the
/// equivalent live event stream does: replay dispatches through the
/// same handlers, so event totals are identical on both paths.
TEST(StreamDetector, ReplayDrivesSameMetricCountersAsLiveStream) {
  auto& registry = metrics::MetricsRegistry::instance();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);  // the test counts; restored at the end
  const auto counters = [&] {
    return std::vector<std::uint64_t>{
        registry.counter("stream.events.request_sent").value(),
        registry.counter("stream.events.request_accepted").value(),
        registry.counter("stream.events.request_rejected").value(),
        registry.counter("stream.events.friendship").value(),
        registry.counter("stream.events.account_banned").value(),
        registry.counter("stream.flagged").value(),
    };
  };
  const auto delta = [](const std::vector<std::uint64_t>& before,
                        const std::vector<std::uint64_t>& after) {
    std::vector<std::uint64_t> d(before.size());
    for (std::size_t i = 0; i < before.size(); ++i) d[i] = after[i] - before[i];
    return d;
  };

  // One sequence exercising every handler, expressed twice: as direct
  // handler calls (live) and as an osn::EventLog (replay). The log also
  // carries created/dropped events, which have no live handler and must
  // therefore not count on either path.
  StreamDetector live;
  const auto before_live = counters();
  live.on_friendship(0, 1, 0.5);
  live.on_request_sent(2, 3, 1.0);
  live.on_request_sent(2, 4, 1.1);
  live.on_request_accepted(2, 3, 2.0);
  live.on_request_rejected(2, 4, 2.1);
  live.on_account_banned(4);
  const auto live_delta = delta(before_live, counters());

  osn::EventLog log;
  log.append({osn::EventType::kAccountCreated, 0, 0, 0.0});
  log.append({osn::EventType::kFriendshipSeeded, 0, 1, 0.5});
  log.append({osn::EventType::kRequestSent, 2, 3, 1.0});
  log.append({osn::EventType::kRequestSent, 2, 4, 1.1});
  // Log convention: actor = who answered, subject = sender.
  log.append({osn::EventType::kRequestAccepted, 3, 2, 2.0});
  log.append({osn::EventType::kRequestRejected, 4, 2, 2.1});
  log.append({osn::EventType::kRequestDropped, 4, 2, 2.2});
  log.append({osn::EventType::kAccountBanned, 4, 4, 2.3});
  StreamDetector replayed;
  const auto before_replay = counters();
  replayed.replay(log);
  const auto replay_delta = delta(before_replay, counters());

  EXPECT_EQ(live_delta, replay_delta);
  EXPECT_EQ(live_delta[0], 2u);  // request_sent
  EXPECT_EQ(live_delta[1], 1u);  // request_accepted
  EXPECT_EQ(live_delta[2], 1u);  // request_rejected
  EXPECT_EQ(live_delta[3], 1u);  // friendship
  EXPECT_EQ(live_delta[4], 1u);  // account_banned
  // And the two detectors agree on state, not just on counters.
  for (osn::NodeId id = 0; id <= 4; ++id) {
    EXPECT_DOUBLE_EQ(live.features(id).outgoing_accept_ratio,
                     replayed.features(id).outgoing_accept_ratio)
        << id;
  }
  registry.set_enabled(was_enabled);
}
#endif  // SYBIL_METRICS_COMPILED

}  // namespace
}  // namespace sybil::core
