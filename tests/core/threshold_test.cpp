#include "core/threshold_detector.h"

#include <gtest/gtest.h>

namespace sybil::core {
namespace {

SybilFeatures sybil_like() {
  SybilFeatures f;
  f.invite_rate_short = 55.0;
  f.outgoing_accept_ratio = 0.25;
  f.incoming_accept_ratio = 1.0;
  f.clustering_coefficient = 0.0005;
  return f;
}

SybilFeatures normal_like() {
  SybilFeatures f;
  f.invite_rate_short = 2.0;
  f.outgoing_accept_ratio = 0.8;
  f.incoming_accept_ratio = 0.6;
  f.clustering_coefficient = 0.05;
  return f;
}

TEST(Threshold, FlagsSybilProfile) {
  const ThresholdDetector det;
  EXPECT_TRUE(det.is_sybil(sybil_like()));
  EXPECT_FALSE(det.is_sybil(normal_like()));
}

TEST(Threshold, ConjunctionRequiresAllThree) {
  const ThresholdDetector det;
  SybilFeatures f = sybil_like();
  f.invite_rate_short = 5.0;  // below rate threshold
  EXPECT_FALSE(det.is_sybil(f));
  f = sybil_like();
  f.outgoing_accept_ratio = 0.7;  // accepted too often
  EXPECT_FALSE(det.is_sybil(f));
  f = sybil_like();
  f.clustering_coefficient = 0.05;  // too clustered
  EXPECT_FALSE(det.is_sybil(f));
}

TEST(Threshold, BoundaryConditions) {
  const ThresholdDetector det;  // accept<0.5, rate>=20, cc<0.01
  SybilFeatures f = sybil_like();
  f.invite_rate_short = 20.0;  // inclusive lower bound
  EXPECT_TRUE(det.is_sybil(f));
  f.invite_rate_short = 19.999;
  EXPECT_FALSE(det.is_sybil(f));
  f = sybil_like();
  f.outgoing_accept_ratio = 0.5;  // exclusive upper bound
  EXPECT_FALSE(det.is_sybil(f));
  f = sybil_like();
  f.clustering_coefficient = 0.01;  // exclusive upper bound
  EXPECT_FALSE(det.is_sybil(f));
}

TEST(Threshold, MinRequestsGuard) {
  const ThresholdDetector det;
  // Sybil-looking features but too little history to trust the ratios.
  EXPECT_FALSE(det.is_sybil(sybil_like(), 3));
  EXPECT_TRUE(det.is_sybil(sybil_like(), 10));
}

TEST(Threshold, CustomRule) {
  ThresholdRule rule;
  rule.invite_rate_min = 100.0;
  const ThresholdDetector det(rule);
  EXPECT_FALSE(det.is_sybil(sybil_like()));
  SybilFeatures f = sybil_like();
  f.invite_rate_short = 150.0;
  EXPECT_TRUE(det.is_sybil(f));
}

}  // namespace
}  // namespace sybil::core
