#include "core/metrics/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/features.h"
#include "core/metrics/export.h"
#include "core/metrics/instrument.h"
#include "core/metrics/timer.h"
#include "core/parallel.h"
#include "core/realtime_detector.h"
#include "osn/simulator.h"

namespace sybil::core::metrics {
namespace {

TEST(Metrics, CounterAddsAndAggregates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeLastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(Metrics, HistogramBucketSemantics) {
  // Buckets: (-inf, 1], (1, 10], (10, +inf).
  Histogram h({1.0, 10.0});
  h.observe(0.5);
  h.observe(1.0);   // boundary lands in the <= bucket
  h.observe(5.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(Metrics, HistogramUnsortedBoundsAreSorted) {
  Histogram h({10.0, 1.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 10.0}));
}

/// Sharded aggregation: hammering one counter and one histogram from 8
/// raw threads loses nothing.
TEST(Metrics, ShardedAggregationAcrossThreads) {
  Counter c;
  Histogram h({4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(static_cast<double>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[0], static_cast<std::uint64_t>(5 * kPerThread));  // t<=4
  EXPECT_EQ(counts[1], static_cast<std::uint64_t>(3 * kPerThread));
  // Integer-valued observations sum exactly in any shard order.
  EXPECT_DOUBLE_EQ(h.sum(), kPerThread * (0.0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

/// The same property through the deterministic parallel layer with an
/// explicit 8-worker pool (the configuration the tsan preset runs).
TEST(Metrics, ShardedAggregationUnderParallelFor) {
  set_thread_count(8);
  Counter c;
  constexpr std::size_t kN = 100'000;
  parallel_for(kN, [&](const ChunkRange& r) {
    for (std::size_t i = r.begin; i < r.end; ++i) c.add(1);
  });
  set_thread_count(0);
  EXPECT_EQ(c.value(), kN);
}

TEST(Metrics, RegistryFindsSameMetricByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
}

TEST(Metrics, RegistryResetZeroesInPlace) {
  MetricsRegistry registry;
  Counter& c = registry.counter("events");
  Gauge& g = registry.gauge("level");
  Histogram& h = registry.histogram("sizes", {2.0});
  c.add(7);
  g.set(1.0);
  h.observe(1.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed value
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, TimerRecordsCallsAndDurations) {
  Timer t;
  t.record_ms(0.5);
  t.record_ms(2.0);
  EXPECT_EQ(t.calls(), 2u);
  EXPECT_DOUBLE_EQ(t.total_ms(), 2.5);
}

TEST(Metrics, ScopedTimerNestsSpanPaths) {
  auto& registry = MetricsRegistry::instance();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const std::uint64_t outer_before = registry.timer("span_outer").calls();
  const std::uint64_t inner_before =
      registry.timer("span_outer/span_inner").calls();
  {
    ScopedTimer outer("span_outer");
    EXPECT_EQ(outer.path(), "span_outer");
    {
      ScopedTimer inner("span_inner");
      EXPECT_EQ(inner.path(), "span_outer/span_inner");
      EXPECT_EQ(ScopedTimer::current(), &inner);
    }
    EXPECT_EQ(ScopedTimer::current(), &outer);
  }
  EXPECT_EQ(ScopedTimer::current(), nullptr);
  EXPECT_EQ(registry.timer("span_outer").calls(), outer_before + 1);
  EXPECT_EQ(registry.timer("span_outer/span_inner").calls(), inner_before + 1);
  registry.set_enabled(was_enabled);
}

TEST(Metrics, DisabledRegistrySkipsMacroUpdatesAndScopedTimers) {
  auto& registry = MetricsRegistry::instance();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(false);
  const std::uint64_t before =
      registry.counter("disabled_probe").value();
  SYBIL_METRIC_COUNT("disabled_probe", 5);
  {
    ScopedTimer span("disabled_span");
    EXPECT_EQ(ScopedTimer::current(), nullptr);  // inactive span
  }
  EXPECT_EQ(registry.counter("disabled_probe").value(), before);
  EXPECT_EQ(registry.timer("disabled_span").calls(), 0u);
  registry.set_enabled(was_enabled);
}

/// Golden JSON snapshot: exact bytes, pinned so the exporter stays a
/// stable machine-readable interface.
TEST(Metrics, JsonSnapshotGolden) {
  MetricsRegistry registry;
  registry.counter("stream.flagged").add(3);
  registry.gauge("osn.accounts").set(500.0);
  registry.histogram("flags_per_sweep", {1.0, 4.0}).observe(2.0);
  registry.histogram("flags_per_sweep").observe(8.0);
  registry.timer("realtime.sweep").record_ms(1.25);
  const std::string expected =
      "{\"counters\":{\"stream.flagged\":3},"
      "\"gauges\":{\"osn.accounts\":500},"
      "\"histograms\":{\"flags_per_sweep\":{\"bounds\":[1,4],"
      "\"counts\":[0,1,1],\"count\":2,\"sum\":10}},"
      "\"timers\":{\"realtime.sweep\":{\"calls\":1}}}";
  EXPECT_EQ(registry.to_json(), expected);
}

TEST(Metrics, JsonIncludesWallclockOnlyOnRequest) {
  MetricsRegistry registry;
  registry.timer("t").record_ms(0.5);
  EXPECT_EQ(registry.to_json().find("total_ms"), std::string::npos);
  const std::string with_wallclock =
      registry.to_json(JsonOptions{.include_wallclock = true});
  EXPECT_NE(with_wallclock.find("\"total_ms\":0.5"), std::string::npos);
  EXPECT_NE(with_wallclock.find("\"counts\":"), std::string::npos);
}

TEST(Metrics, TextExportListsEveryKind) {
  MetricsRegistry registry;
  registry.counter("c").add(1);
  registry.gauge("g").set(2.0);
  registry.histogram("h", {1.0}).observe(0.5);
  registry.timer("t").record_ms(1.0);
  const std::string text = registry.to_text();
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("gauge"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
  EXPECT_NE(text.find("timer"), std::string::npos);
  EXPECT_NE(text.find("total_ms"), std::string::npos);
  // Deterministic mode (what the bench runner prints) drops wall-clock.
  const std::string stable = registry.to_text(/*include_wallclock=*/false);
  EXPECT_EQ(stable.find("total_ms"), std::string::npos);
  EXPECT_NE(stable.find("calls=1"), std::string::npos);
}

TEST(Metrics, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("zz");
  registry.counter("aa");
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "aa");
  EXPECT_EQ(snap.counters[1].name, "zz");
}

#if SYBIL_METRICS_COMPILED
/// The ISSUE acceptance criterion: after a fixed 500-node ground-truth
/// run (simulate + batch-extract + realtime sweep), the default JSON
/// snapshot of the process-wide registry is byte-identical whether the
/// parallel layer ran 1 worker or 8 — instrumentation totals are a pure
/// function of the workload, never of the schedule.
TEST(Metrics, JsonSnapshotDeterministicAcrossThreadCounts) {
  auto& registry = MetricsRegistry::instance();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);

  const auto run_lab = [&]() -> std::string {
    registry.reset();
    osn::GroundTruthConfig config;
    config.background_users = 500;
    config.subject_normals = 40;
    config.subject_sybils = 40;
    config.sim_hours = 48.0;
    osn::GroundTruthSimulator sim(config);
    sim.run();
    std::vector<osn::NodeId> candidates = sim.subject_normals();
    candidates.insert(candidates.end(), sim.subject_sybils().begin(),
                      sim.subject_sybils().end());
    // Parallel batch extraction + a realtime sweep: touches the
    // parallel.*, realtime.* and osn.* instrumentation.
    const FeatureExtractor extractor(sim.network());
    (void)extractor.extract(candidates);
    RealTimeDetector detector;
    (void)detector.sweep(sim.network(), candidates, /*now=*/48.0);
    return registry.to_json();
  };

  set_thread_count(1);
  const std::string single = run_lab();
  set_thread_count(8);
  const std::string eight = run_lab();
  set_thread_count(0);
  registry.set_enabled(was_enabled);

  EXPECT_EQ(single, eight);
  // Sanity: the run actually produced instrumentation.
  EXPECT_NE(single.find("\"osn.hours\":48"), std::string::npos);
  EXPECT_NE(single.find("realtime.sweep"), std::string::npos);
  EXPECT_NE(single.find("parallel.jobs"), std::string::npos);
}
#endif  // SYBIL_METRICS_COMPILED

}  // namespace
}  // namespace sybil::core::metrics
