#include "ml/logistic.h"

#include <gtest/gtest.h>

#include "stats/distributions.h"

namespace sybil::ml {
namespace {

TEST(Logistic, SeparatesGaussians) {
  stats::Rng rng(1);
  Dataset d(2);
  for (int i = 0; i < 200; ++i) {
    d.add(std::vector<double>{stats::sample_normal(rng, 1.5, 0.5),
                              stats::sample_normal(rng, 1.5, 0.5)},
          kSybilLabel);
    d.add(std::vector<double>{stats::sample_normal(rng, -1.5, 0.5),
                              stats::sample_normal(rng, -1.5, 0.5)},
          kNormalLabel);
  }
  const LogisticModel m = LogisticModel::train(d, LogisticParams{});
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    correct += m.predict(d.row(i)) == d.label(i);
  }
  EXPECT_GE(correct, d.size() * 97 / 100);
}

TEST(Logistic, ProbabilitiesAreCalibratedInDirection) {
  stats::Rng rng(2);
  Dataset d(1);
  for (int i = 0; i < 200; ++i) {
    d.add(std::vector<double>{stats::sample_normal(rng, 1.0, 0.4)},
          kSybilLabel);
    d.add(std::vector<double>{stats::sample_normal(rng, -1.0, 0.4)},
          kNormalLabel);
  }
  const LogisticModel m = LogisticModel::train(d, LogisticParams{});
  EXPECT_GT(m.probability(std::vector<double>{2.0}), 0.9);
  EXPECT_LT(m.probability(std::vector<double>{-2.0}), 0.1);
  EXPECT_GT(m.weights()[0], 0.0);
}

TEST(Logistic, L2ShrinksWeights) {
  stats::Rng rng(3);
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    d.add(std::vector<double>{stats::sample_normal(rng, 1.0, 0.2)},
          kSybilLabel);
    d.add(std::vector<double>{stats::sample_normal(rng, -1.0, 0.2)},
          kNormalLabel);
  }
  LogisticParams weak, strong;
  weak.l2 = 0.0;
  strong.l2 = 0.5;
  const auto mw = LogisticModel::train(d, weak);
  const auto ms = LogisticModel::train(d, strong);
  EXPECT_LT(std::abs(ms.weights()[0]), std::abs(mw.weights()[0]));
}

TEST(Logistic, Errors) {
  EXPECT_THROW(LogisticModel::train(Dataset(1), LogisticParams{}),
               std::invalid_argument);
  Dataset d(2);
  d.add(std::vector<double>{1.0, 2.0}, kSybilLabel);
  const LogisticModel m = LogisticModel::train(d, LogisticParams{});
  EXPECT_THROW(m.probability(std::vector<double>{1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sybil::ml
