#include "ml/kfold.h"

#include <gtest/gtest.h>

#include <set>

namespace sybil::ml {
namespace {

Dataset balanced(std::size_t per_class) {
  Dataset d(1);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, kSybilLabel);
    d.add(std::vector<double>{-static_cast<double>(i)}, kNormalLabel);
  }
  return d;
}

TEST(KFold, PartitionsAllRowsExactlyOnce) {
  const Dataset d = balanced(25);
  stats::Rng rng(1);
  const auto folds = stratified_kfold(d, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> all_test;
  for (const Fold& f : folds) {
    EXPECT_EQ(f.train_indices.size() + f.test_indices.size(), d.size());
    for (std::size_t i : f.test_indices) {
      EXPECT_TRUE(all_test.insert(i).second) << "row tested twice";
    }
    // Train and test are disjoint.
    const std::set<std::size_t> train(f.train_indices.begin(),
                                      f.train_indices.end());
    for (std::size_t i : f.test_indices) EXPECT_FALSE(train.contains(i));
  }
  EXPECT_EQ(all_test.size(), d.size());
}

TEST(KFold, FoldsAreStratified) {
  const Dataset d = balanced(25);
  stats::Rng rng(2);
  for (const Fold& f : stratified_kfold(d, 5, rng)) {
    std::size_t sybils = 0;
    for (std::size_t i : f.test_indices) sybils += d.label(i) == kSybilLabel;
    EXPECT_EQ(sybils, 5u);  // 25 sybils dealt over 5 folds
  }
}

TEST(KFold, Errors) {
  const Dataset d = balanced(3);
  stats::Rng rng(3);
  EXPECT_THROW(stratified_kfold(d, 1, rng), std::invalid_argument);
  EXPECT_THROW(stratified_kfold(d, 4, rng), std::invalid_argument);
}

TEST(CrossValidate, PoolsConfusionAcrossFolds) {
  const Dataset d = balanced(20);
  stats::Rng rng(4);
  // A perfect "classifier" that uses the sign of the single feature
  // (positive → sybil in this construction; 0 is ambiguous but labeled
  // sybil by >=).
  const auto cm = cross_validate(
      d, 4,
      [](const Dataset&) -> Predictor {
        return [](std::span<const double> row) {
          return row[0] >= 0.0 ? kSybilLabel : kNormalLabel;
        };
      },
      rng);
  EXPECT_EQ(cm.total(), d.size());
  // Only the two zero rows can be misclassified.
  EXPECT_GE(cm.accuracy(), 0.95);
}

}  // namespace
}  // namespace sybil::ml
