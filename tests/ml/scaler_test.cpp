#include "ml/scaler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sybil::ml {
namespace {

TEST(Scaler, CentersAndScales) {
  Dataset d(2);
  d.add(std::vector<double>{0.0, 10.0}, kSybilLabel);
  d.add(std::vector<double>{2.0, 10.0}, kNormalLabel);
  d.add(std::vector<double>{4.0, 10.0}, kSybilLabel);
  StandardScaler s;
  s.fit(d);
  EXPECT_DOUBLE_EQ(s.mean()[0], 2.0);
  EXPECT_NEAR(s.scale()[0], std::sqrt(8.0 / 3.0), 1e-12);
  // Constant feature: scale forced to 1, values centered to 0.
  EXPECT_DOUBLE_EQ(s.scale()[1], 1.0);
  const auto row = s.transform(std::vector<double>{4.0, 10.0});
  EXPECT_NEAR(row[0], 2.0 / std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
}

TEST(Scaler, TransformedDatasetHasUnitStats) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    d.add(std::vector<double>{i * 3.0 + 7.0},
          i % 2 ? kSybilLabel : kNormalLabel);
  }
  StandardScaler s;
  s.fit(d);
  const Dataset t = s.transform(d);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t.row(i)[0];
    sq += t.row(i)[0] * t.row(i)[0];
  }
  EXPECT_NEAR(sum / 100.0, 0.0, 1e-9);
  EXPECT_NEAR(sq / 100.0, 1.0, 1e-9);
  EXPECT_EQ(t.label(1), d.label(1));
}

TEST(Scaler, Errors) {
  StandardScaler s;
  EXPECT_THROW(s.transform(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(s.fit(Dataset(1)), std::invalid_argument);
  Dataset d(2);
  d.add(std::vector<double>{1.0, 2.0}, kSybilLabel);
  s.fit(d);
  EXPECT_THROW(s.transform(std::vector<double>{1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sybil::ml
