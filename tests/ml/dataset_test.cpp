#include "ml/dataset.h"

#include <gtest/gtest.h>

namespace sybil::ml {
namespace {

TEST(Dataset, AddAndAccess) {
  Dataset d(2);
  d.add(std::vector<double>{1.0, 2.0}, kSybilLabel);
  d.add(std::vector<double>{3.0, 4.0}, kNormalLabel);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_DOUBLE_EQ(d.row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(d.row(1)[0], 3.0);
  EXPECT_EQ(d.label(0), kSybilLabel);
  EXPECT_EQ(d.label(1), kNormalLabel);
  EXPECT_EQ(d.count_label(kSybilLabel), 1u);
}

TEST(Dataset, InfersFeatureCountFromFirstRow) {
  Dataset d;
  d.add(std::vector<double>{1.0, 2.0, 3.0}, kSybilLabel);
  EXPECT_EQ(d.feature_count(), 3u);
  EXPECT_THROW(d.add(std::vector<double>{1.0}, kSybilLabel),
               std::invalid_argument);
}

TEST(Dataset, RejectsBadLabels) {
  Dataset d(1);
  EXPECT_THROW(d.add(std::vector<double>{1.0}, 0), std::invalid_argument);
  EXPECT_THROW(d.add(std::vector<double>{1.0}, 2), std::invalid_argument);
}

TEST(Dataset, Subset) {
  Dataset d(1);
  for (int i = 0; i < 5; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)},
          i % 2 == 0 ? kSybilLabel : kNormalLabel);
  }
  const std::vector<std::size_t> idx = {4, 0};
  const Dataset sub = d.subset(idx);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.row(0)[0], 4.0);
  EXPECT_DOUBLE_EQ(sub.row(1)[0], 0.0);
  EXPECT_THROW(d.subset(std::vector<std::size_t>{9}), std::out_of_range);
}

TEST(Dataset, ShuffleKeepsRowLabelPairs) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)},
          i < 50 ? kSybilLabel : kNormalLabel);
  }
  stats::Rng rng(1);
  d.shuffle(rng);
  EXPECT_EQ(d.count_label(kSybilLabel), 50u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const bool should_be_sybil = d.row(i)[0] < 50.0;
    EXPECT_EQ(d.label(i) == kSybilLabel, should_be_sybil);
  }
}

}  // namespace
}  // namespace sybil::ml
