#include "ml/dataset_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sybil::ml {
namespace {

Dataset sample_dataset() {
  Dataset d(3);
  d.add(std::vector<double>{1.5, -2.25, 1e-9}, kSybilLabel);
  d.add(std::vector<double>{0.0, 42.0, 3.14159}, kNormalLabel);
  return d;
}

TEST(DatasetIo, RoundTrip) {
  const Dataset original = sample_dataset();
  std::stringstream buffer;
  save_csv(original, buffer);
  const Dataset loaded = load_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.feature_count(), original.feature_count());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.label(i), original.label(i));
    for (std::size_t j = 0; j < original.feature_count(); ++j) {
      EXPECT_DOUBLE_EQ(loaded.row(i)[j], original.row(i)[j]);
    }
  }
}

TEST(DatasetIo, HeaderFormat) {
  std::stringstream buffer;
  save_csv(sample_dataset(), buffer);
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "f0,f1,f2,label");
}

TEST(DatasetIo, RejectsMalformedInput) {
  {
    std::stringstream in("");
    EXPECT_THROW(load_csv(in), std::runtime_error);
  }
  {
    std::stringstream in("f0,f1\n1.0\n");  // header without label column
    EXPECT_THROW(load_csv(in), std::runtime_error);
  }
  {
    std::stringstream in("f0,label\nnotanumber,1\n");
    EXPECT_THROW(load_csv(in), std::runtime_error);
  }
  {
    std::stringstream in("f0,label\n1.0,7\n");  // invalid label value
    EXPECT_THROW(load_csv(in), std::runtime_error);
  }
  {
    std::stringstream in("f0,f1,label\n1.0,1\n");  // too few columns
    EXPECT_THROW(load_csv(in), std::runtime_error);
  }
}

TEST(DatasetIo, SkipsBlankLines) {
  std::stringstream in("f0,label\n\n1.0,1\n\n2.0,-1\n");
  const Dataset d = load_csv(in);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DatasetIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sybil_dataset.csv";
  save_csv(sample_dataset(), path);
  const Dataset loaded = load_csv(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_THROW(load_csv(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace sybil::ml
