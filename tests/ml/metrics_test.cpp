#include "ml/metrics.h"

#include <gtest/gtest.h>

#include "ml/dataset.h"

namespace sybil::ml {
namespace {

TEST(Confusion, RecordsCells) {
  ConfusionMatrix cm;
  cm.record(kSybilLabel, kSybilLabel);    // TP
  cm.record(kSybilLabel, kNormalLabel);   // FN
  cm.record(kNormalLabel, kSybilLabel);   // FP
  cm.record(kNormalLabel, kNormalLabel);  // TN
  EXPECT_EQ(cm.true_sybil, 1u);
  EXPECT_EQ(cm.missed_sybil, 1u);
  EXPECT_EQ(cm.false_sybil, 1u);
  EXPECT_EQ(cm.true_normal, 1u);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(cm.sybil_recall(), 0.5);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(), 0.5);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.5);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.5);
}

TEST(Confusion, RatesWithEmptyDenominators) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.sybil_recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(Confusion, RejectsBadLabels) {
  ConfusionMatrix cm;
  EXPECT_THROW(cm.record(0, kSybilLabel), std::invalid_argument);
}

TEST(Confusion, Merge) {
  ConfusionMatrix a, b;
  a.record(kSybilLabel, kSybilLabel);
  b.record(kNormalLabel, kNormalLabel);
  b.record(kSybilLabel, kNormalLabel);
  a += b;
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.true_sybil, 1u);
  EXPECT_EQ(a.missed_sybil, 1u);
}

TEST(Confusion, TableRendering) {
  ConfusionMatrix cm;
  for (int i = 0; i < 99; ++i) cm.record(kSybilLabel, kSybilLabel);
  cm.record(kSybilLabel, kNormalLabel);
  for (int i = 0; i < 100; ++i) cm.record(kNormalLabel, kNormalLabel);
  const std::string table = cm.to_table("Test");
  EXPECT_NE(table.find("99.00%"), std::string::npos);
  EXPECT_NE(table.find("100.00%"), std::string::npos);
  EXPECT_NE(table.find("Test"), std::string::npos);
}

TEST(Confusion, PerfectClassifier) {
  ConfusionMatrix cm;
  for (int i = 0; i < 10; ++i) {
    cm.record(kSybilLabel, kSybilLabel);
    cm.record(kNormalLabel, kNormalLabel);
  }
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.sybil_recall(), 1.0);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 1.0);
}

}  // namespace
}  // namespace sybil::ml
