#include "ml/roc.h"

#include <gtest/gtest.h>

#include "ml/dataset.h"
#include "stats/distributions.h"

namespace sybil::ml {
namespace {

TEST(Roc, PerfectSeparation) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.2, 0.1};
  const std::vector<int> labels = {kSybilLabel, kSybilLabel, kSybilLabel,
                                   kNormalLabel, kNormalLabel};
  const RocCurve curve = roc_curve(scores, labels);
  EXPECT_NEAR(curve.auc, 1.0, 1e-12);
  EXPECT_NEAR(curve.tpr_at_fpr(0.0), 1.0, 1e-12);
}

TEST(Roc, InvertedScores) {
  const std::vector<double> scores = {0.1, 0.2, 0.9, 0.8};
  const std::vector<int> labels = {kSybilLabel, kSybilLabel, kNormalLabel,
                                   kNormalLabel};
  const RocCurve curve = roc_curve(scores, labels);
  EXPECT_NEAR(curve.auc, 0.0, 1e-12);
  EXPECT_NEAR(curve.tpr_at_fpr(0.0), 0.0, 1e-12);
}

TEST(Roc, TiedScoresGetDiagonalCredit) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels = {kSybilLabel, kSybilLabel, kNormalLabel,
                                   kNormalLabel};
  const RocCurve curve = roc_curve(scores, labels);
  EXPECT_NEAR(curve.auc, 0.5, 1e-12);
}

TEST(Roc, MonotonicPoints) {
  stats::Rng rng(1);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const bool sybil = rng.bernoulli(0.4);
    scores.push_back(stats::sample_normal(rng, sybil ? 1.0 : 0.0, 1.0));
    labels.push_back(sybil ? kSybilLabel : kNormalLabel);
  }
  const RocCurve curve = roc_curve(scores, labels);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].false_positive_rate,
              curve.points[i - 1].false_positive_rate);
    EXPECT_GE(curve.points[i].true_positive_rate,
              curve.points[i - 1].true_positive_rate);
  }
  EXPECT_NEAR(curve.points.back().true_positive_rate, 1.0, 1e-12);
  EXPECT_NEAR(curve.points.back().false_positive_rate, 1.0, 1e-12);
  // Unit-separated Gaussians: AUC = Phi(1/sqrt(2)) ≈ 0.76.
  EXPECT_NEAR(curve.auc, 0.76, 0.06);
}

TEST(Roc, TprAtFprBudget) {
  const std::vector<double> scores = {0.9, 0.6, 0.5, 0.4, 0.1};
  const std::vector<int> labels = {kSybilLabel, kNormalLabel, kSybilLabel,
                                   kNormalLabel, kNormalLabel};
  const RocCurve curve = roc_curve(scores, labels);
  EXPECT_NEAR(curve.tpr_at_fpr(0.0), 0.5, 1e-12);   // only score>=0.9
  EXPECT_NEAR(curve.tpr_at_fpr(0.34), 1.0, 1e-12);  // allow one FP
}

TEST(Roc, Errors) {
  EXPECT_THROW(roc_curve(std::vector<double>{1.0},
                         std::vector<int>{kSybilLabel, kNormalLabel}),
               std::invalid_argument);
  EXPECT_THROW(roc_curve(std::vector<double>{1.0, 2.0},
                         std::vector<int>{kSybilLabel, kSybilLabel}),
               std::invalid_argument);
  EXPECT_THROW(roc_curve(std::vector<double>{1.0, 2.0},
                         std::vector<int>{kSybilLabel, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sybil::ml
