#include "ml/svm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"

namespace sybil::ml {
namespace {

Dataset linearly_separable(std::size_t per_class, stats::Rng& rng) {
  Dataset d(2);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add(std::vector<double>{stats::sample_normal(rng, 2.0, 0.5),
                              stats::sample_normal(rng, 2.0, 0.5)},
          kSybilLabel);
    d.add(std::vector<double>{stats::sample_normal(rng, -2.0, 0.5),
                              stats::sample_normal(rng, -2.0, 0.5)},
          kNormalLabel);
  }
  return d;
}

TEST(Svm, LinearKernelSeparatesGaussians) {
  stats::Rng rng(1);
  const Dataset train = linearly_separable(100, rng);
  SvmParams params;
  params.kernel = Kernel::kLinear;
  params.c = 1.0;
  const SvmModel model = SvmModel::train(train, params);
  EXPECT_GT(model.support_vector_count(), 0u);

  const Dataset test = linearly_separable(100, rng);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += model.predict(test.row(i)) == test.label(i);
  }
  EXPECT_GE(correct, test.size() * 98 / 100);
}

TEST(Svm, RbfKernelSolvesXor) {
  // XOR is not linearly separable; RBF must handle it.
  Dataset d(2);
  stats::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    if (std::abs(x) < 0.1 || std::abs(y) < 0.1) continue;  // margin gap
    d.add(std::vector<double>{x, y},
          (x > 0) == (y > 0) ? kSybilLabel : kNormalLabel);
  }
  SvmParams params;
  params.kernel = Kernel::kRbf;
  params.gamma = 2.0;
  params.c = 10.0;
  const SvmModel model = SvmModel::train(d, params);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    correct += model.predict(d.row(i)) == d.label(i);
  }
  EXPECT_GE(correct, d.size() * 95 / 100);
}

TEST(Svm, DecisionSignMatchesPrediction) {
  stats::Rng rng(3);
  const Dataset train = linearly_separable(50, rng);
  const SvmModel model = SvmModel::train(train, SvmParams{});
  const std::vector<double> probe = {2.0, 2.0};
  EXPECT_EQ(model.predict(probe),
            model.decision(probe) >= 0 ? kSybilLabel : kNormalLabel);
  EXPECT_GT(model.decision(std::vector<double>{3.0, 3.0}), 0.0);
  EXPECT_LT(model.decision(std::vector<double>{-3.0, -3.0}), 0.0);
}

TEST(Svm, DeterministicForFixedSeed) {
  stats::Rng rng(4);
  const Dataset train = linearly_separable(50, rng);
  const SvmModel a = SvmModel::train(train, SvmParams{});
  const SvmModel b = SvmModel::train(train, SvmParams{});
  EXPECT_EQ(a.support_vector_count(), b.support_vector_count());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(Svm, SoftMarginToleratesLabelNoise) {
  stats::Rng rng(5);
  Dataset d = linearly_separable(100, rng);
  // Flip ~5% of labels.
  Dataset noisy(2);
  for (std::size_t i = 0; i < d.size(); ++i) {
    int label = d.label(i);
    if (rng.bernoulli(0.05)) label = -label;
    noisy.add(d.row(i), label);
  }
  SvmParams params;
  params.kernel = Kernel::kLinear;
  params.c = 1.0;
  const SvmModel model = SvmModel::train(noisy, params);
  // Evaluate against the CLEAN labels: the soft margin should ignore
  // the injected noise.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    correct += model.predict(d.row(i)) == d.label(i);
  }
  EXPECT_GE(correct, d.size() * 95 / 100);
}

TEST(Svm, Errors) {
  EXPECT_THROW(SvmModel::train(Dataset(1), SvmParams{}),
               std::invalid_argument);
  Dataset one_class(1);
  one_class.add(std::vector<double>{1.0}, kSybilLabel);
  one_class.add(std::vector<double>{2.0}, kSybilLabel);
  EXPECT_THROW(SvmModel::train(one_class, SvmParams{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sybil::ml
