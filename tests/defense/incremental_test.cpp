// Property suite for the incremental defenses (docs/DEFENSES.md):
//
//   * IncrementalSybilRank vs the batch sybilrank_scores() kernel,
//     across 6 graph regimes × 3 edge-arrival orders × SYBIL_THREADS
//     1 and 8 — within the documented residual bound while streaming,
//     and BIT-exact after a forced full recompute on the quiesced
//     graph (the equivalence contract the service leans on);
//   * exact propagation (residual_epsilon = 0) is bit-exact with NO
//     recompute — every streamed update lands on the batch bytes;
//   * IncrementalClustering vs local_clustering_all(), bit-exact at
//     every comparison point (integer link counts, same expression);
//   * the counted full-recompute fallbacks (frontier fraction, auto
//     iteration-depth growth);
//   * serialize()/restore() round-trips byte-exactly and the restored
//     scorer continues identically.
//
// SYBIL_THREADS only affects the batch kernel (the incremental path is
// deliberately serial); running both settings pins that neither side
// depends on thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "detectors/incremental_clustering.h"
#include "detectors/incremental_rank.h"
#include "detectors/sybilrank.h"
#include "graph/clustering.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "io/container.h"
#include "stats/rng.h"

namespace sybil::detect {
namespace {

using graph::DynamicGraph;
using graph::NodeId;
using graph::TimestampedGraph;

struct Arrival {
  NodeId u, v;
  graph::Time t;
};

/// Distinct edges of g with their creation timestamps, in per-row
/// discovery order (≈ the generator's own arrival order).
std::vector<Arrival> edges_of(const TimestampedGraph& g) {
  std::vector<Arrival> out;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const graph::Neighbor& nb : g.neighbors(u)) {
      if (u < nb.node) out.push_back({u, nb.node, nb.created_at});
    }
  }
  return out;
}

/// The 6 regimes the acceptance gate names: sparse/dense ER, heavy-
/// tailed BA, small-world WS, the OSN-like generator, and OSN-like
/// with an injected Sybil community (the adversarial case).
std::vector<std::pair<std::string, TimestampedGraph>> regimes() {
  std::vector<std::pair<std::string, TimestampedGraph>> out;
  {
    stats::Rng rng(101);
    out.emplace_back("er_sparse", graph::erdos_renyi(300, 0.015, rng));
  }
  {
    stats::Rng rng(102);
    out.emplace_back("er_dense", graph::erdos_renyi(150, 0.12, rng));
  }
  {
    stats::Rng rng(103);
    out.emplace_back("ba", graph::barabasi_albert(300, 3, rng));
  }
  {
    stats::Rng rng(104);
    out.emplace_back("ws", graph::watts_strogatz(300, 6, 0.1, rng));
  }
  graph::OsnGraphParams p;
  p.nodes = 250;
  p.mean_links = 8.0;
  {
    stats::Rng rng(105);
    out.emplace_back("osn", graph::osn_like_graph(p, rng));
  }
  {
    stats::Rng rng(106);
    const TimestampedGraph honest = graph::osn_like_graph(p, rng);
    out.emplace_back("osn_sybil", graph::inject_sybil_community(
                                      honest, 40, 0.3, 25, rng));
  }
  return out;
}

const std::vector<NodeId> kSeeds = {0, 3, 7, 11, 19};

enum class Order { kChronological, kReversed, kShuffled };

std::vector<Arrival> reorder(std::vector<Arrival> edges, Order order,
                             std::uint64_t seed) {
  switch (order) {
    case Order::kChronological:
      break;
    case Order::kReversed:
      std::reverse(edges.begin(), edges.end());
      break;
    case Order::kShuffled:
      std::shuffle(edges.begin(), edges.end(), std::mt19937_64(seed));
      break;
  }
  return edges;
}

/// Streams `edges` into a DynamicGraph in batches, refreshing both
/// incremental defenses after each batch (the service's sweep cadence
/// in miniature). Node count is fixed up front so the auto iteration
/// depth never changes — every post-initial update takes the pure
/// incremental path (full_recompute_fraction = 1 disables the frontier
/// fallback; it has its own test below).
struct StreamResult {
  DynamicGraph g;
  IncrementalSybilRank rank;
  IncrementalClustering clustering;
};

StreamResult stream(NodeId nodes, const std::vector<Arrival>& edges,
                    std::size_t batch, IncrementalRankOptions opts) {
  StreamResult r{DynamicGraph{}, IncrementalSybilRank(opts), {}};
  r.g.ensure_nodes(nodes);
  r.rank.recompute(r.g, kSeeds);
  std::size_t in_batch = 0;
  for (const Arrival& e : edges) {
    if (r.g.add_edge(e.u, e.v, e.t)) {
      r.clustering.on_edge_added(r.g, e.u, e.v);
    }
    if (++in_batch == batch) {
      in_batch = 0;
      r.rank.update(r.g, r.g.dirty());
      r.g.clear_dirty();
    }
  }
  if (in_batch != 0) {
    r.rank.update(r.g, r.g.dirty());
    r.g.clear_dirty();
  }
  return r;
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want,
                          const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << what << " node " << i;
  }
}

// The documented deviation bound for incremental updates: each round
// may skip per-node deltas up to residual_epsilon, and the propagation
// matrix is column-stochastic, so the accumulated L1 (hence L∞) error
// is at most rounds · n · ε per streamed history (docs/DEFENSES.md
// §Incremental contracts). The 16× headroom covers the final degree
// normalization and float non-associativity slack.
double residual_bound(std::size_t iters, std::size_t n, double eps) {
  return 16.0 * static_cast<double>(iters) * static_cast<double>(n) * eps;
}

TEST(IncrementalRank, MatchesBatchAcrossRegimesOrdersAndThreads) {
  IncrementalRankOptions opts;
  opts.residual_epsilon = 1e-12;
  opts.full_recompute_fraction = 1.0;

  for (int threads : {1, 8}) {
    core::set_thread_count(threads);
    for (const auto& [name, base] : regimes()) {
      const NodeId n = base.node_count();
      const std::vector<Arrival> chrono = edges_of(base);
      ASSERT_GT(chrono.size(), 100u) << name;
      for (Order order :
           {Order::kChronological, Order::kReversed, Order::kShuffled}) {
        const std::string what = name + "/order" +
                                 std::to_string(static_cast<int>(order)) +
                                 "/threads" + std::to_string(threads);
        const std::vector<Arrival> edges = reorder(chrono, order, 7);
        StreamResult r = stream(n, edges, 32, opts);
        ASSERT_GT(r.rank.incremental_updates(), 0u) << what;

        // Batch kernel over the quiesced graph (parallel under the
        // current SYBIL_THREADS — its values must not depend on it).
        const std::vector<double> batch =
            sybilrank_scores(r.g.view().csr(), kSeeds);

        // Streaming scores: within the documented residual bound.
        const double bound =
            residual_bound(r.rank.iterations(), n, opts.residual_epsilon);
        ASSERT_EQ(r.rank.scores().size(), batch.size()) << what;
        for (NodeId u = 0; u < n; ++u) {
          ASSERT_NEAR(r.rank.scores()[u], batch[u], bound)
              << what << " node " << u;
        }

        // Forced full recompute on the quiesced graph: bit-exact.
        r.rank.recompute(r.g, kSeeds);
        expect_bitwise_equal(r.rank.scores(), batch, what + "/recomputed");

        // Clustering is maintained per edge and must already be
        // bit-exact — integer link counts, same expression as batch.
        expect_bitwise_equal(r.clustering.coefficients(),
                             graph::local_clustering_all(r.g.view().csr()),
                             what + "/clustering");
      }
    }
  }
  core::set_thread_count(0);
}

// With residual_epsilon = 0 every bit flip propagates, so the streamed
// scores land on the batch bytes with NO recompute — the strongest form
// of the equivalence contract.
TEST(IncrementalRank, ExactPropagationIsBitIdenticalWhileStreaming) {
  IncrementalRankOptions opts;
  opts.residual_epsilon = 0.0;
  opts.full_recompute_fraction = 1.0;

  stats::Rng rng(205);
  const TimestampedGraph base = graph::erdos_renyi(200, 0.03, rng);
  const std::vector<Arrival> edges = edges_of(base);

  StreamResult r = stream(base.node_count(), edges, 16, opts);
  ASSERT_GT(r.rank.incremental_updates(), 4u);
  EXPECT_EQ(r.rank.full_recomputes(), 1u) << "only the initial recompute";
  expect_bitwise_equal(r.rank.scores(),
                       sybilrank_scores(r.g.view().csr(), kSeeds),
                       "exact streaming");
}

TEST(IncrementalRank, LargeFrontierFallsBackToFullRecompute) {
  IncrementalRankOptions opts;
  // Any non-empty dirty set produces a frontier of at least two nodes,
  // which exceeds this fraction of n — every update must fall back.
  opts.full_recompute_fraction = 1e-4;

  stats::Rng rng(207);
  const TimestampedGraph base = graph::erdos_renyi(200, 0.04, rng);
  const std::size_t n_edges = edges_of(base).size();
  StreamResult r = stream(base.node_count(), edges_of(base), 64, opts);

  EXPECT_EQ(r.rank.incremental_updates(), 0u);
  EXPECT_EQ(r.rank.full_recomputes(), 1 + (n_edges + 63) / 64)
      << "initial recompute plus one counted fallback per batch";
  expect_bitwise_equal(r.rank.scores(),
                       sybilrank_scores(r.g.view().csr(), kSeeds),
                       "fallback path");
}

TEST(IncrementalRank, AutoIterationDepthGrowthForcesRecompute) {
  DynamicGraph g;
  g.ensure_nodes(120);  // ceil(log2 120) = 7
  stats::Rng rng(211);
  for (int i = 0; i < 300; ++i) {
    g.add_edge(static_cast<NodeId>(rng.uniform_index(120)),
               static_cast<NodeId>(rng.uniform_index(120)),
               static_cast<double>(i));
  }
  IncrementalSybilRank rank;
  rank.recompute(g, kSeeds);
  ASSERT_EQ(rank.iterations(), 7u);
  g.clear_dirty();

  g.add_edge(0, 200, 1000.0);  // growth: n = 201, ceil(log2 201) = 8
  const std::uint64_t before = rank.full_recomputes();
  rank.update(g, g.dirty());
  g.clear_dirty();
  EXPECT_EQ(rank.iterations(), 8u);
  EXPECT_EQ(rank.full_recomputes(), before + 1)
      << "layer depth changed, the update must recompute";
  expect_bitwise_equal(rank.scores(), sybilrank_scores(g.view().csr(), kSeeds),
                       "post-growth");
}

TEST(IncrementalRank, EmptySeedsYieldAllZeroWithoutThrowing) {
  DynamicGraph g;
  g.ensure_nodes(8);
  g.add_edge(0, 1, 0.0);
  IncrementalSybilRank rank;
  rank.recompute(g, {});
  for (NodeId u = 0; u < 8; ++u) EXPECT_EQ(rank.score(u), 0.0);
}

TEST(IncrementalClustering, HandComputedCases) {
  DynamicGraph g;
  IncrementalClustering cc;
  // Triangle 0-1-2: every node has cc 1.
  for (auto [u, v] : {std::pair<NodeId, NodeId>{0, 1}, {1, 2}, {0, 2}}) {
    ASSERT_TRUE(g.add_edge(u, v, 0.0));
    cc.on_edge_added(g, u, v);
  }
  EXPECT_EQ(cc.coefficient(0), 1.0);
  EXPECT_EQ(cc.coefficient(1), 1.0);
  EXPECT_EQ(cc.coefficient(2), 1.0);
  EXPECT_EQ(cc.triangles_closed(), 1u);

  // Pendant 3 on node 0: cc(3) = 0 (degree 1), cc(0) drops to 1/3
  // (one closed pair of three).
  ASSERT_TRUE(g.add_edge(0, 3, 1.0));
  cc.on_edge_added(g, 0, 3);
  EXPECT_EQ(cc.coefficient(3), 0.0);
  EXPECT_DOUBLE_EQ(cc.coefficient(0), 1.0 / 3.0);
  EXPECT_EQ(cc.links(0), 1u);

  // Close 3-1: 0 now has pairs {1,2},{1,3} closed of 3 → 2/3; 3 has
  // its single pair {0,1} closed → 1; 1 has {0,2},{0,3} of 3 → 2/3.
  ASSERT_TRUE(g.add_edge(3, 1, 2.0));
  cc.on_edge_added(g, 3, 1);
  EXPECT_DOUBLE_EQ(cc.coefficient(0), 2.0 / 3.0);
  EXPECT_EQ(cc.coefficient(3), 1.0);
  EXPECT_DOUBLE_EQ(cc.coefficient(1), 2.0 / 3.0);
  EXPECT_EQ(cc.triangles_closed(), 2u);

  expect_bitwise_equal(cc.coefficients(),
                       graph::local_clustering_all(g.view().csr()),
                       "hand case");
}

TEST(IncrementalClustering, LazyRecomputeFromMidStreamAttachIsExact) {
  stats::Rng rng(213);
  const TimestampedGraph base = graph::osn_like_graph(
      [] {
        graph::OsnGraphParams p;
        p.nodes = 150;
        p.mean_links = 6.0;
        return p;
      }(),
      rng);
  // Attach the maintainer to an already-populated graph (the lazy
  // recompute path), then stream more edges through it.
  DynamicGraph g(base);
  IncrementalClustering cc;
  const NodeId n = g.node_count();
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_index(n));
    const auto v = static_cast<NodeId>(rng.uniform_index(n));
    if (g.add_edge(u, v, 100.0 + i)) cc.on_edge_added(g, u, v);
  }
  ASSERT_GT(cc.edges_applied(), 100u);
  expect_bitwise_equal(cc.coefficients(),
                       graph::local_clustering_all(g.view().csr()),
                       "lazy attach");
}

TEST(IncrementalState, SerializeRestoreRoundTripsAndContinuesIdentically) {
  stats::Rng rng(301);
  const TimestampedGraph base = graph::erdos_renyi(180, 0.03, rng);
  const std::vector<Arrival> edges = edges_of(base);
  const std::size_t half = edges.size() / 2;

  IncrementalRankOptions opts;
  opts.full_recompute_fraction = 1.0;
  StreamResult a = stream(base.node_count(),
                          {edges.begin(), edges.begin() + half}, 24, opts);

  io::ByteWriter wr;
  a.rank.serialize(wr);
  io::ByteWriter wc;
  a.clustering.serialize(wc);
  const std::vector<std::byte> rank_bytes = std::move(wr).take();
  const std::vector<std::byte> cc_bytes = std::move(wc).take();

  IncrementalSybilRank rank_b(opts);
  IncrementalClustering cc_b;
  {
    io::ByteReader rr(rank_bytes);
    rank_b.restore(rr);
    io::ByteReader rc(cc_bytes);
    cc_b.restore(rc);
  }
  expect_bitwise_equal(rank_b.scores(), a.rank.scores(), "restored rank");
  expect_bitwise_equal(cc_b.coefficients(), a.clustering.coefficients(),
                       "restored clustering");
  EXPECT_EQ(rank_b.full_recomputes(), a.rank.full_recomputes());
  EXPECT_EQ(rank_b.incremental_updates(), a.rank.incremental_updates());
  EXPECT_EQ(cc_b.edges_applied(), a.clustering.edges_applied());

  // Re-serializing the restored state reproduces the bytes exactly.
  io::ByteWriter wr2;
  rank_b.serialize(wr2);
  EXPECT_EQ(std::move(wr2).take(), rank_bytes);

  // Both copies stream the second half and stay bit-identical.
  for (std::size_t i = half; i < edges.size(); ++i) {
    const Arrival& e = edges[i];
    if (a.g.add_edge(e.u, e.v, e.t)) {
      a.clustering.on_edge_added(a.g, e.u, e.v);
      cc_b.on_edge_added(a.g, e.u, e.v);
    }
    if ((i - half) % 24 == 23) {
      a.rank.update(a.g, a.g.dirty());
      rank_b.update(a.g, a.g.dirty());
      a.g.clear_dirty();
    }
  }
  a.rank.update(a.g, a.g.dirty());
  rank_b.update(a.g, a.g.dirty());
  a.g.clear_dirty();
  expect_bitwise_equal(rank_b.scores(), a.rank.scores(), "continued rank");
  expect_bitwise_equal(cc_b.coefficients(), a.clustering.coefficients(),
                       "continued clustering");
}

}  // namespace
}  // namespace sybil::detect
