// graph::DynamicGraph unit + property suite: the edge-arrival delta API
// the incremental defenses (detectors/incremental_*.h) are built on.
// The load-bearing property is the last test: after ANY arrival order,
// view() is indistinguishable from the batch NeighborView::from() of a
// TimestampedGraph that replayed the same arrivals — both orderings,
// row by row. That equivalence is what lets the incremental SybilRank
// pin bit-exactness against the batch kernel (incremental_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/neighbor_view.h"
#include "stats/rng.h"

namespace sybil::graph {
namespace {

TEST(DynamicGraph, StartsEmpty) {
  DynamicGraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.dirty().empty());
  EXPECT_EQ(g.view().node_count(), 0u);
}

TEST(DynamicGraph, EnsureNodesCreatesIsolatedCleanNodes) {
  DynamicGraph g;
  g.ensure_nodes(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.dirty().empty());
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(g.degree(u), 0u);
    EXPECT_FALSE(g.is_dirty(u));
  }
  g.ensure_nodes(3);  // shrinking is a no-op
  EXPECT_EQ(g.node_count(), 5u);
}

TEST(DynamicGraph, RejectsSelfLoopsAndDuplicates) {
  DynamicGraph g;
  EXPECT_FALSE(g.add_edge(2, 2, 0.0));
  EXPECT_TRUE(g.dirty().empty()) << "rejected edges must not dirty";

  EXPECT_TRUE(g.add_edge(1, 3, 1.0));
  EXPECT_FALSE(g.add_edge(1, 3, 2.0)) << "duplicate";
  EXPECT_FALSE(g.add_edge(3, 1, 2.0)) << "duplicate, reversed";
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(DynamicGraph, AddEdgeGrowsAndMaintainsBothOrderings) {
  DynamicGraph g;
  // Arrivals deliberately out of id order.
  ASSERT_TRUE(g.add_edge(4, 1, 0.5));
  ASSERT_TRUE(g.add_edge(4, 3, 1.5));
  ASSERT_TRUE(g.add_edge(4, 0, 2.5, /*weak=*/true));
  ASSERT_TRUE(g.add_edge(0, 2, 3.5));
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);

  // Chronological row: arrival order, timestamps and weak bit intact.
  const auto chrono = g.chronological(4);
  ASSERT_EQ(chrono.size(), 3u);
  EXPECT_EQ(chrono[0].node, 1u);
  EXPECT_EQ(chrono[1].node, 3u);
  EXPECT_EQ(chrono[2].node, 0u);
  EXPECT_DOUBLE_EQ(chrono[0].created_at, 0.5);
  EXPECT_DOUBLE_EQ(chrono[2].created_at, 2.5);
  EXPECT_FALSE(chrono[0].weak);
  EXPECT_TRUE(chrono[2].weak);

  // Sorted row: ascending ids over the same neighbors.
  const auto sorted = g.sorted_neighbors(4);
  EXPECT_EQ(std::vector<NodeId>(sorted.begin(), sorted.end()),
            (std::vector<NodeId>{0, 1, 3}));

  EXPECT_TRUE(g.has_edge(4, 0));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(DynamicGraph, DirtySetIsDistinctSortedAndClearable) {
  DynamicGraph g;
  g.add_edge(5, 2, 0.0);
  g.add_edge(5, 7, 1.0);  // 5 dirtied twice, must appear once
  g.add_edge(1, 0, 2.0);

  const auto dirty = g.dirty();
  EXPECT_EQ(std::vector<NodeId>(dirty.begin(), dirty.end()),
            (std::vector<NodeId>{0, 1, 2, 5, 7}));
  EXPECT_TRUE(g.is_dirty(5));
  EXPECT_FALSE(g.is_dirty(3));

  g.clear_dirty();
  EXPECT_TRUE(g.dirty().empty());
  EXPECT_FALSE(g.is_dirty(5));

  // mark_dirty (checkpoint-restore seam) re-marks without edges.
  g.mark_dirty(7);
  g.mark_dirty(7);
  const auto remarked = g.dirty();
  EXPECT_EQ(std::vector<NodeId>(remarked.begin(), remarked.end()),
            (std::vector<NodeId>{7}));
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(DynamicGraph, SeedingFromBaseCopiesRowsAndStaysClean) {
  stats::Rng rng(17);
  const TimestampedGraph base = erdos_renyi(80, 0.08, rng);
  const DynamicGraph g(base);

  EXPECT_EQ(g.node_count(), base.node_count());
  EXPECT_EQ(g.edge_count(), base.edge_count());
  EXPECT_TRUE(g.dirty().empty()) << "the base is the already-scored state";
  for (NodeId u = 0; u < base.node_count(); ++u) {
    const auto want = base.neighbors(u);
    const auto got = g.chronological(u);
    ASSERT_EQ(got.size(), want.size()) << u;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].node, want[i].node) << u;
      EXPECT_EQ(got[i].created_at, want[i].created_at) << u;
    }
    EXPECT_TRUE(std::is_sorted(g.sorted_neighbors(u).begin(),
                               g.sorted_neighbors(u).end()))
        << u;
  }
}

TEST(DynamicGraph, ViewIsCachedUntilMutation) {
  DynamicGraph g;
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 1.0);

  const NeighborView& v1 = g.view();
  const NodeId* row = v1.chronological(1).data();
  // No mutation between calls: the cached snapshot is reused, so the
  // row storage does not move.
  EXPECT_EQ(g.view().chronological(1).data(), row);
  EXPECT_EQ(g.view().edge_count(), 2u);

  g.add_edge(2, 0, 2.0);
  EXPECT_EQ(g.view().edge_count(), 3u) << "mutation invalidates the cache";
  EXPECT_TRUE(g.view().has_edge(0, 2));
}

// The equivalence property: for a random arrival sequence (with
// duplicate and self-loop noise), DynamicGraph::view() must equal the
// batch NeighborView built from a TimestampedGraph replaying the same
// arrivals — offsets, chronological rows, and sorted rows.
TEST(DynamicGraph, ViewMatchesBatchSnapshotUnderRandomArrivals) {
  stats::Rng rng(23);
  constexpr NodeId kNodes = 120;

  DynamicGraph dyn;
  dyn.ensure_nodes(kNodes);
  TimestampedGraph batch(kNodes);

  for (int i = 0; i < 1500; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_index(kNodes));
    const auto v = static_cast<NodeId>(rng.uniform_index(kNodes));
    const double t = static_cast<double>(i);
    if (u == v) {
      EXPECT_FALSE(dyn.add_edge(u, v, t));
      continue;
    }
    EXPECT_EQ(dyn.add_edge(u, v, t), batch.add_edge(u, v, t))
        << "arrival " << i;
  }
  ASSERT_GT(dyn.edge_count(), 500u);
  EXPECT_EQ(dyn.edge_count(), batch.edge_count());

  const NeighborView& got = dyn.view();
  const NeighborView want = NeighborView::from(batch);
  ASSERT_EQ(got.node_count(), want.node_count());
  ASSERT_EQ(got.edge_count(), want.edge_count());
  for (NodeId u = 0; u < kNodes; ++u) {
    const auto gc = got.chronological(u);
    const auto wc = want.chronological(u);
    ASSERT_EQ(std::vector<NodeId>(gc.begin(), gc.end()),
              std::vector<NodeId>(wc.begin(), wc.end()))
        << "chronological row " << u;
    const auto gs = got.sorted(u);
    const auto ws = want.sorted(u);
    ASSERT_EQ(std::vector<NodeId>(gs.begin(), gs.end()),
              std::vector<NodeId>(ws.begin(), ws.end()))
        << "sorted row " << u;
  }
}

}  // namespace
}  // namespace sybil::graph
