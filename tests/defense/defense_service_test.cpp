// Service-level suite for the `service.defense.*` sweep tier
// (docs/DEFENSES.md): the DefenseScorer riding inside the supervisor.
//
//   * contract gating — with DetectorOptions::defense off (the
//     default) stats_json carries no "defense" object and FlagRecords
//     stay unannotated, so every byte-identical contract of the
//     defense-off service is untouched;
//   * kill-and-recover at EVERY durability boundary of the overloaded
//     500-account ground-truth run WITH the tier on — recovered stats
//     (including the defense object) and annotated flags are
//     byte-identical, across SYBIL_THREADS 1 and 8;
//   * checkpoint compatibility both ways: a defense-off supervisor
//     ignores a scorer section; a defense-ON supervisor refuses a
//     checkpoint without one (typed fallback → WAL rebuild that lands
//     on the from-birth bytes);
//   * N-vs-1 shard identity with the tier on — edge events broadcast,
//     so every shard scores the same graph and merged annotated flags
//     match a single shard's, across thread counts;
//   * the defense metric family: per-shard rows sum exactly into the
//     aggregate twins and match the scorers' ground truth;
//   * the committed golden v3 checkpoint binary (tests/data/
//     service_ckpt_v3.sybs, docs/FORMATS.md §5.4): loads field-exact
//     and re-serializes to the same bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics/metrics.h"
#include "core/parallel.h"
#include "faults/process_faults.h"
#include "osn/network.h"
#include "service/checkpoint.h"
#include "service/defense_scorer.h"
#include "service/router.h"
#include "service/supervisor.h"
#include "service/workload.h"
#include "stats/rng.h"

namespace sybil::service {
namespace {

namespace fs = std::filesystem;

class DefenseService : public ::testing::Test {
 protected:
  // The crash sweep commits thousands of checkpoints to a throwaway
  // dir; the durability knob exists exactly so such runs skip fsync.
  static void SetUpTestSuite() { ::setenv("SYBIL_IO_FSYNC", "0", 1); }
  static void TearDownTestSuite() { ::unsetenv("SYBIL_IO_FSYNC"); }
};

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_def_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Same 500-account ground-truth log as the recovery suite: seeded
/// friendships, chatter, three burst senders, mixed accept/reject,
/// mid-stream bans — under options that deliberately overload.
std::vector<osn::Event> build_log(std::uint64_t seed) {
  osn::Network net(/*keep_event_log=*/true);
  stats::Rng rng(seed);
  constexpr int kAccounts = 500;
  for (int i = 0; i < kAccounts; ++i) net.add_account(osn::Account{});
  for (int i = 0; i < 60; ++i) {
    net.add_friendship(
        static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
        static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
        -1.0 * static_cast<double>(i));
  }
  for (double t = 0.0; t < 4.0; t += 1.0) {
    for (int k = 0; k < 15; ++k) {
      net.send_request(
          static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
          static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
          t + rng.uniform(), t + 1.0 + rng.uniform(2.0, 10.0));
    }
    for (int s = 0; s < 3; ++s) {
      for (int k = 0; k < 25; ++k) {
        net.send_request(
            static_cast<osn::NodeId>(10 + s),
            static_cast<osn::NodeId>(rng.uniform_index(kAccounts)),
            t + rng.uniform(), t + 1.0 + rng.uniform(2.0, 10.0));
      }
    }
    net.process_responses(t + 1.0, [&](osn::NodeId, osn::NodeId,
                                       std::uint8_t) {
      return rng.bernoulli(0.4);
    });
    if (t == 2.0) {
      net.ban(3, t);
      net.ban(7, t);
    }
  }
  net.process_responses(1e9, [&](osn::NodeId, osn::NodeId, std::uint8_t) {
    return rng.bernoulli(0.4);
  });
  return net.log().events();
}

const std::vector<graph::NodeId> kSeeds = {1, 2, 5, 20, 21};

/// The recovery suite's overloaded single-shard template, with the
/// defense tier switchable on top.
ServiceOptions make_options(const std::string& dir, bool defense,
                            CrashHook hook = {}) {
  ServiceOptions o;
  o.dir = dir;
  o.wal_fsync = WalFsync::kNever;
  o.wal_segment_records = 48;
  o.checkpoint_every = 256;
  o.checkpoint_retain = 2;
  o.crash_hook = std::move(hook);
  o.detector.overload.queue_capacity = 260;
  o.detector.overload.shed_watermark = 120;
  o.detector.overload.sweep_only_watermark = 200;
  o.detector.overload.resume_watermark = 60;
  o.detector.ingest.watermark_hours = 500.0;
  o.detector.rule.invite_rate_min = 4.0;
  o.detector.rule.min_requests = 5;
  if (defense) {
    o.detector.defense.enabled = true;
    o.detector.defense.seeds = kSeeds;
  }
  return o;
}

/// Index-aligned driver (see recovery_test.cpp for the pump-schedule
/// argument), extended with a flag-sweep cadence that exercises the
/// scorer's refresh path mid-stream. The sweep fires BEFORE offer(i):
/// a checkpoint triggered inside offer(i) then sits between sweep i
/// and sweep i+cadence, so re-running sweeps from the checkpoint
/// position replays exactly the post-checkpoint ones and the sweeps
/// counter stays replay-exact.
void drive(ServiceSupervisor& s, const std::vector<osn::Event>& log,
           std::uint64_t offer_from, std::uint64_t pump_from = 0) {
  for (std::uint64_t i = std::min(offer_from, pump_from); i < log.size();
       ++i) {
    if (i >= pump_from && i % 127 == 0) {
      s.sweep_flags(20.0 + 0.01 * static_cast<double>(i));
    }
    if (i >= offer_from) s.offer(log[i], i);
    if (i >= pump_from && i % 7 == 6) s.pump(3);
  }
  s.flush();
  s.sweep_flags(2e9);
}

struct RunResult {
  std::string stats;
  core::FlagBatch flags;
  std::uint64_t boundaries = 0;
};

RunResult run_baseline(const std::vector<osn::Event>& log,
                       const std::string& dir, bool defense) {
  RunResult result;
  const ServiceOptions opts = make_options(
      dir, defense, [&result](CrashPoint) { ++result.boundaries; });
  ServiceSupervisor s(opts);
  const RecoveryReport report = s.start();
  EXPECT_TRUE(report.cold_start);
  drive(s, log, 0);
  EXPECT_TRUE(s.accounting_ok());
  result.stats = s.stats_json();
  result.flags = s.take_flagged();
  return result;
}

/// Flag equality including the defense annotation columns.
void expect_flags_equal(const core::FlagBatch& a, const core::FlagBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].account, b[i].account) << i;
    ASSERT_DOUBLE_EQ(a[i].flagged_at, b[i].flagged_at) << i;
    ASSERT_EQ(a[i].features.as_vector(), b[i].features.as_vector()) << i;
    ASSERT_EQ(a[i].defense_scored, b[i].defense_scored) << i;
    ASSERT_EQ(a[i].defense_rank, b[i].defense_rank) << i;
    ASSERT_EQ(a[i].defense_clustering, b[i].defense_clustering) << i;
  }
}

RunResult crash_recover_run(const std::vector<osn::Event>& log,
                            const std::string& dir, std::uint64_t b) {
  faults::CrashInjector crash(b);
  auto victim = std::make_unique<ServiceSupervisor>(
      make_options(dir, /*defense=*/true, std::ref(crash)));
  bool crashed = false;
  try {
    victim->start();
    drive(*victim, log, 0);
  } catch (const faults::InjectedCrash&) {
    crashed = true;
  }
  EXPECT_TRUE(crashed) << "boundary " << b << " never crossed";
  victim.reset();  // simulated process death

  ServiceSupervisor recovered(make_options(dir, /*defense=*/true));
  const RecoveryReport report = recovered.start();
  EXPECT_TRUE(recovered.accounting_ok()) << "boundary " << b;
  drive(recovered, log, report.next_index, report.checkpoint_position);
  EXPECT_TRUE(recovered.accounting_ok()) << "boundary " << b;
  RunResult result;
  result.stats = recovered.stats_json();
  result.flags = recovered.take_flagged();
  return result;
}

TEST_F(DefenseService, StatsAndFlagsAreGatedByTheDefenseKnob) {
  const std::vector<osn::Event> log = build_log(7);

  const RunResult off = run_baseline(log, fresh_dir("gate_off"), false);
  EXPECT_EQ(off.stats.find("\"defense\""), std::string::npos)
      << "defense off must not change the stats contract";
  ASSERT_FALSE(off.flags.records.empty());
  for (const core::FlagRecord& r : off.flags) {
    EXPECT_FALSE(r.defense_scored);
    EXPECT_EQ(r.defense_rank, 0.0);
    EXPECT_EQ(r.defense_clustering, 0.0);
  }

  // The on-side runs shed-free so the scorer sees the full stream (a
  // shed edge never reaches the scorer — the documented overload
  // caveat), and inline so the scorer stays queryable.
  ServiceOptions opts = make_options(fresh_dir("gate_on"), true);
  opts.detector.overload.queue_capacity = 100000;
  opts.detector.overload.sweep_only_watermark = 80000;
  opts.detector.overload.shed_watermark = 50000;
  opts.detector.overload.resume_watermark = 10000;
  ServiceSupervisor s(opts);
  s.start();
  drive(s, log, 0);
  const std::string on_stats = s.stats_json();
  const core::FlagBatch on_flags = s.take_flagged();

  EXPECT_NE(on_stats.find(",\"defense\":{"), std::string::npos);
  const DefenseScorer* scorer = s.defense();
  ASSERT_NE(scorer, nullptr);
  EXPECT_GT(scorer->edges_observed(), 100u) << "shed-free: every edge lands";
  EXPECT_GT(scorer->refreshes(), 2u);
  double rank_mass = 0.0;
  for (const double x : scorer->rank().scores()) rank_mass += x;
  EXPECT_GT(rank_mass, 0.0) << "seeded trust must actually propagate";

  // The annotations are exactly the scorer's published columns, and
  // the second signal never changes WHO is flagged, or when.
  ASSERT_FALSE(on_flags.records.empty());
  ASSERT_EQ(on_flags.size(), off.flags.size());
  for (std::size_t i = 0; i < on_flags.size(); ++i) {
    const core::FlagRecord& r = on_flags[i];
    EXPECT_TRUE(r.defense_scored);
    EXPECT_EQ(r.defense_rank, scorer->rank_score(r.account)) << i;
    EXPECT_EQ(r.defense_clustering, scorer->clustering_score(r.account))
        << i;
    EXPECT_EQ(r.account, off.flags[i].account) << i;
    EXPECT_DOUBLE_EQ(r.flagged_at, off.flags[i].flagged_at) << i;
  }
}

TEST_F(DefenseService, ByteIdenticalAtEveryCrashPointWithDefenseOn) {
  const std::vector<osn::Event> log = build_log(7);
  ASSERT_GT(log.size(), 500u);
  const RunResult base = run_baseline(log, fresh_dir("sweep_base"), true);
  ASSERT_GT(base.boundaries, 2 * log.size());
  ASSERT_FALSE(base.flags.records.empty());
  ASSERT_NE(base.stats.find("\"defense\""), std::string::npos);

  const std::string dir = fresh_dir("sweep");
  for (std::uint64_t b = 0; b < base.boundaries; ++b) {
    fs::remove_all(dir);
    const RunResult run = crash_recover_run(log, dir, b);
    ASSERT_EQ(run.stats, base.stats) << "crash boundary " << b;
    expect_flags_equal(run.flags, base.flags);
    if (::testing::Test::HasFailure()) FAIL() << "crash boundary " << b;
  }
}

TEST_F(DefenseService, ByteIdenticalAcrossThreadCountsWithDefenseOn) {
  const std::vector<osn::Event> log = build_log(11);
  const RunResult base = run_baseline(log, fresh_dir("thr_base"), true);
  const std::uint64_t mid = base.boundaries / 2;

  core::set_thread_count(1);
  const RunResult one = crash_recover_run(log, fresh_dir("thr1"), mid);
  core::set_thread_count(8);
  const RunResult eight = crash_recover_run(log, fresh_dir("thr8"), mid);
  core::set_thread_count(0);  // back to automatic

  EXPECT_EQ(one.stats, base.stats);
  EXPECT_EQ(eight.stats, base.stats);
  expect_flags_equal(one.flags, base.flags);
  expect_flags_equal(eight.flags, base.flags);
}

// A defense-off supervisor must load (and simply ignore) a checkpoint
// that carries a scorer section.
TEST_F(DefenseService, DefenseOffReaderIgnoresScorerSection) {
  const std::vector<osn::Event> log = build_log(13);
  const std::string dir = fresh_dir("off_reader");
  {
    ServiceSupervisor s(make_options(dir, /*defense=*/true));
    s.start();
    drive(s, log, 0);
  }
  const RunResult off_base = run_baseline(log, fresh_dir("off_base"), false);

  ServiceSupervisor s(make_options(dir, /*defense=*/false));
  const RecoveryReport report = s.start();
  EXPECT_FALSE(report.cold_start);
  EXPECT_EQ(report.generations_discarded, 0u);
  drive(s, log, report.next_index, report.checkpoint_position);
  // Workload accounting is byte-identical to a from-birth defense-off
  // run — the tier never leaked into the base contract.
  EXPECT_EQ(s.stats_json(), off_base.stats);
}

// The reverse direction: a defense-ON supervisor refuses checkpoints
// without a scorer section — typed SnapshotError inside the generation
// fallback, so EVERY retained generation is discarded and the service
// cold-starts from the surviving WAL. The WAL prefix covered by those
// checkpoints was legitimately pruned, so the rebuilt scorer sees only
// the suffix — exactly the documented "enable the tier from the
// service's birth" caveat (service/defense_scorer.h): the start is
// loud and consistent, never a silently empty graph resumed from a
// scorerless snapshot.
TEST_F(DefenseService, DefenseOnRefusesScorerlessCheckpointAndRebuilds) {
  const std::vector<osn::Event> log = build_log(13);
  const std::string dir = fresh_dir("on_reader");
  {
    ServiceSupervisor s(make_options(dir, /*defense=*/false));
    s.start();
    drive(s, log, 0);
  }
  ServiceSupervisor s(make_options(dir, /*defense=*/true));
  const RecoveryReport report = s.start();
  EXPECT_TRUE(report.cold_start)
      << "every generation lacks the scorer section";
  EXPECT_EQ(report.generations_discarded, 2u);  // both retained ones
  EXPECT_GT(report.records_replayed, 0u);
  EXPECT_TRUE(s.accounting_ok());
  // The service runs on consistently, scoring from the WAL suffix it
  // could still see.
  drive(s, log, report.next_index, report.checkpoint_position);
  EXPECT_TRUE(s.accounting_ok());
  ASSERT_NE(s.defense(), nullptr);
  EXPECT_GT(s.defense()->edges_observed(), 0u);
  EXPECT_NE(s.stats_json().find(",\"defense\":{"), std::string::npos);
}

// ---- Sharded: N-vs-1 identity and the metric family -----------------

/// Shed-free shard template (see shard_test.cpp) with the tier on.
ShardRouterOptions make_router_options(const std::string& dir,
                                       std::uint32_t shards) {
  ShardRouterOptions o;
  o.shards = shards;
  o.shard.dir = dir;
  o.shard.wal_fsync = WalFsync::kNever;
  o.shard.wal_segment_records = 32;
  o.shard.checkpoint_every = 96;
  o.shard.checkpoint_retain = 2;
  o.shard.detector.rule.invite_rate_min = 4.0;
  o.shard.detector.rule.outgoing_accept_max = 0.5;
  o.shard.detector.rule.min_requests = 5;
  o.shard.detector.defense.enabled = true;
  o.shard.detector.defense.seeds = kSeeds;
  return o;
}

WorkloadOptions defense_workload(std::uint64_t seed) {
  WorkloadOptions w;
  w.accounts = 64;
  w.events = 600;
  w.hours = 6.0;
  w.seed = seed;
  w.burst_senders = 2;
  w.burst_fraction = 0.3;
  w.accept_fraction = 0.25;  // plenty of edges for the scorer
  return w;
}

core::FlagBatch run_sharded(const std::vector<osn::Event>& log,
                            const std::string& dir, std::uint32_t shards) {
  ShardRouter router(make_router_options(dir, shards));
  router.start();
  for (std::uint64_t i = 0; i < log.size(); ++i) {
    router.offer(log[i], i);
    if (i % 16 == 15) router.pump();
  }
  router.flush(/*checkpoint=*/true);
  router.sweep_flags(7.0);
  EXPECT_TRUE(router.accounting_ok());
  return router.take_flagged();
}

TEST_F(DefenseService, MergedAnnotatedFlagsMatchSingleShardAcrossThreads) {
  const std::vector<osn::Event> log = synthetic_workload(defense_workload(21));

  core::set_thread_count(1);
  const core::FlagBatch one_1 = run_sharded(log, fresh_dir("n1_t1"), 1);
  const core::FlagBatch four_1 = run_sharded(log, fresh_dir("n4_t1"), 4);
  core::set_thread_count(8);
  const core::FlagBatch one_8 = run_sharded(log, fresh_dir("n1_t8"), 1);
  const core::FlagBatch four_8 = run_sharded(log, fresh_dir("n4_t8"), 4);
  core::set_thread_count(0);

  ASSERT_FALSE(one_1.records.empty());
  bool any_scored = false;
  for (const core::FlagRecord& r : one_1) {
    any_scored = any_scored || (r.defense_scored && r.defense_rank != 0.0);
  }
  EXPECT_TRUE(any_scored);
  // Edge events broadcast to every shard in stream order, so each
  // shard's scorer grows the identical graph and the annotations are
  // partition- and thread-count-invariant.
  expect_flags_equal(four_1, one_1);
  expect_flags_equal(one_8, one_1);
  expect_flags_equal(four_8, one_1);
}

#if SYBIL_METRICS_COMPILED
TEST_F(DefenseService, DefenseMetricsAggregateExactly) {
  auto& registry = core::metrics::MetricsRegistry::instance();
  registry.reset();

  const std::vector<osn::Event> log = synthetic_workload(defense_workload(33));
  ShardRouter router(make_router_options(fresh_dir("metrics"), 2));
  router.start();
  for (std::uint64_t i = 0; i < log.size(); ++i) {
    router.offer(log[i], i);
    if (i % 16 == 15) router.pump();
  }
  router.flush(/*checkpoint=*/true);
  router.sweep_flags(7.0);
  const core::FlagBatch flags = router.take_flagged();
  // The post-sweep refresh deltas have not been published yet; force
  // the publish point the ops loop would hit.
  for (std::uint32_t i = 0; i < router.shards(); ++i) {
    router.shard(i).publish_metrics();
  }

  const char* kRows[] = {"defense.edges_observed", "defense.dirty_vertices",
                         "defense.propagation_rounds",
                         "defense.full_recomputes",
                         "defense.scores_published"};
  for (const char* row : kRows) {
    std::uint64_t per_shard_sum = 0;
    for (std::uint32_t i = 0; i < router.shards(); ++i) {
      per_shard_sum +=
          registry
              .counter("service.shard." + std::to_string(i) + "." + row)
              .value();
    }
    EXPECT_EQ(per_shard_sum,
              registry.counter(std::string("service.") + row).value())
        << row;
  }

  // Registry rows match the scorers' ground truth.
  std::uint64_t edges = 0, dirty = 0, rounds = 0, full = 0;
  for (std::uint32_t i = 0; i < router.shards(); ++i) {
    const DefenseScorer* scorer = router.shard(i).defense();
    ASSERT_NE(scorer, nullptr) << i;
    edges += scorer->edges_observed();
    dirty += scorer->dirty_processed();
    rounds += scorer->rank().rounds_total();
    full += scorer->rank().full_recomputes();
  }
  ASSERT_GT(edges, 0u) << "the workload must actually grow the graph";
  EXPECT_EQ(registry.counter("service.defense.edges_observed").value(),
            edges);
  EXPECT_EQ(registry.counter("service.defense.dirty_vertices").value(),
            dirty);
  EXPECT_EQ(registry.counter("service.defense.propagation_rounds").value(),
            rounds);
  EXPECT_EQ(registry.counter("service.defense.full_recomputes").value(),
            full);
  // Each shard counts its own pre-merge batch, so the aggregate is at
  // least the owner-merged flag count.
  ASSERT_FALSE(flags.records.empty());
  EXPECT_GE(registry.counter("service.defense.scores_published").value(),
            flags.size());
  registry.reset();
}
#endif  // SYBIL_METRICS_COMPILED

// ---- Golden v3 checkpoint (docs/FORMATS.md §5.4) ---------------------

std::string golden(const char* name) {
  return std::string(SYBIL_TEST_DATA_DIR) + "/" + name;
}

/// The exact state behind tests/data/service_ckpt_v3.sybs — every
/// field here is documented in the worked example of FORMATS.md §5.4.
/// Fully deterministic: fixed options, fixed events, no RNG, no clock.
ServiceCheckpointState golden_state() {
  ServiceCheckpointState s;
  s.wal_position = 7;
  s.tier = 1;  // kShedLowPriority
  s.shard_id = 2;
  s.shard_count = 4;
  s.next_seq = 7;
  s.offered = 7;
  s.admitted = 6;
  s.pumped = 5;
  s.shed_low_priority = 1;
  s.sweeps = 2;
  s.sweep_flagged = 1;
  WalRecord r;
  r.index = 6;
  r.seq = 6;
  r.event = {osn::EventType::kRequestSent, 3, 4, 1.5};
  r.flags = 0;
  s.queue.push_back(r);
  s.stream_state = {std::byte{0x53}, std::byte{0x31}};    // opaque "S1"
  s.realtime_state = {std::byte{0x52}, std::byte{0x31}};  // opaque "R1"

  core::DetectorOptions opts;
  opts.defense.enabled = true;
  opts.defense.seeds = {0, 1};
  DefenseScorer scorer(opts);
  scorer.observe({osn::EventType::kRequestAccepted, 1, 2, 1.0});
  scorer.observe({osn::EventType::kRequestAccepted, 2, 3, 2.0});
  scorer.observe({osn::EventType::kFriendshipSeeded, 0, 3, 3.0});
  scorer.observe({osn::EventType::kRequestAccepted, 1, 2, 4.0});  // dup
  scorer.observe({osn::EventType::kRequestAccepted, 3, 3, 5.0});  // loop
  scorer.refresh();
  scorer.observe({osn::EventType::kRequestAccepted, 0, 2, 6.0});
  s.defense_state = scorer.serialize();  // mid-interval: {0, 2} dirty
  return s;
}

TEST_F(DefenseService, GoldenCheckpointV3Loads) {
  const ServiceCheckpointState want = golden_state();
  const ServiceCheckpointState got =
      load_service_checkpoint(golden("service_ckpt_v3.sybs"));
  EXPECT_EQ(got.wal_position, want.wal_position);
  EXPECT_EQ(got.tier, want.tier);
  EXPECT_EQ(got.shard_id, want.shard_id);
  EXPECT_EQ(got.shard_count, want.shard_count);
  EXPECT_EQ(got.next_seq, want.next_seq);
  EXPECT_EQ(got.offered, want.offered);
  EXPECT_EQ(got.admitted, want.admitted);
  EXPECT_EQ(got.pumped, want.pumped);
  EXPECT_EQ(got.shed_low_priority, want.shed_low_priority);
  EXPECT_EQ(got.sweeps, want.sweeps);
  EXPECT_EQ(got.sweep_flagged, want.sweep_flagged);
  ASSERT_EQ(got.queue.size(), 1u);
  EXPECT_EQ(got.queue[0].index, 6u);
  EXPECT_EQ(got.queue[0].seq, 6u);
  EXPECT_EQ(got.queue[0].event.actor, 3u);
  EXPECT_EQ(got.queue[0].event.subject, 4u);
  EXPECT_EQ(got.stream_state, want.stream_state);
  EXPECT_EQ(got.realtime_state, want.realtime_state);
  ASSERT_EQ(got.defense_state, want.defense_state);

  // The scorer blob restores into a working scorer: 4 distinct edges,
  // 2 deterministic skips, one refresh, nodes 0 and 2 still dirty.
  core::DetectorOptions opts;
  opts.defense.enabled = true;
  opts.defense.seeds = {0, 1};
  DefenseScorer scorer(opts);
  scorer.restore(got.defense_state);
  EXPECT_EQ(scorer.edges_observed(), 4u);
  EXPECT_EQ(scorer.ignored(), 2u);
  EXPECT_EQ(scorer.refreshes(), 1u);
  EXPECT_EQ(scorer.graph().edge_count(), 4u);
  const auto dirty = scorer.graph().dirty();
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], 0u);
  EXPECT_EQ(dirty[1], 2u);
}

TEST_F(DefenseService, GoldenCheckpointV3BytesAreFrozen) {
  const std::string fresh = ::testing::TempDir() + "/sybil_ckpt_v3_fresh.sybs";
  save_service_checkpoint(fresh, golden_state());
  std::ifstream fa(golden("service_ckpt_v3.sybs"), std::ios::binary);
  std::ifstream fb(fresh, std::ios::binary);
  ASSERT_TRUE(fa.good()) << "committed golden missing";
  ASSERT_TRUE(fb.good());
  const std::string ba((std::istreambuf_iterator<char>(fa)), {});
  const std::string bb((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_EQ(ba, bb)
      << "service checkpoint format changed without a version bump "
         "(docs/FORMATS.md §5.4)";
  std::remove(fresh.c_str());
}

}  // namespace
}  // namespace sybil::service
