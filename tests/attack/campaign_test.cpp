#include "attack/campaign.h"

#include <gtest/gtest.h>

#include "attack/tools.h"
#include "core/topology.h"

namespace sybil::attack {
namespace {

CampaignConfig small_config(std::uint64_t seed = 7) {
  CampaignConfig c;
  c.normal_users = 5000;
  c.sybils = 400;
  c.campaign_hours = 2000.0;
  c.seed = seed;
  return c;
}

TEST(Tools, Table3HasThreeProfiles) {
  const auto& tools = table3_tools();
  ASSERT_EQ(tools.size(), 3u);
  for (const auto& t : tools) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_EQ(t.platform, "Windows");
    EXPECT_GT(t.target_bias, 0.0);
    EXPECT_GE(t.uniform_mix, 0.0);
    EXPECT_GT(t.crawl_batch, 0u);
  }
  // The super-node collector is the most popularity-hungry.
  EXPECT_GT(tools[1].target_bias, tools[0].target_bias);
  EXPECT_GT(tools[1].target_bias, tools[2].target_bias);
}

class CampaignFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new CampaignResult(run_campaign(small_config()));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static CampaignResult* result_;
};

CampaignResult* CampaignFixture::result_ = nullptr;

TEST_F(CampaignFixture, PopulationsCreated) {
  EXPECT_EQ(result_->normal_ids.size(), 5000u);
  EXPECT_EQ(result_->sybil_ids.size(), 400u);
  EXPECT_EQ(result_->network->account_count(), 5400u);
}

TEST_F(CampaignFixture, SybilsAreMarkedAndEventuallyBanned) {
  for (graph::NodeId s : result_->sybil_ids) {
    const auto& acc = result_->network->account(s);
    EXPECT_TRUE(acc.is_sybil());
    EXPECT_TRUE(acc.banned());
    EXPECT_GE(*acc.banned_at, acc.created_at);
  }
}

TEST_F(CampaignFixture, NormalsNeverBanned) {
  for (graph::NodeId u : result_->normal_ids) {
    EXPECT_FALSE(result_->network->account(u).banned());
  }
}

TEST_F(CampaignFixture, AttackEdgesDominateSybilEdges) {
  core::TopologyAnalyzer topo(*result_->network, result_->sybil_ids);
  EXPECT_GT(topo.total_attack_edges(), 10 * topo.total_sybil_edges());
  // Most Sybils integrate into the normal graph.
  EXPECT_GT(topo.total_attack_edges(), result_->sybil_ids.size());
}

TEST_F(CampaignFixture, MeshedBlocksProduceIntentionalEdges) {
  EXPECT_GT(result_->intentional_sybil_edges, 0u);
  EXPECT_GE(result_->meshed_sybil_ids.size(),
            result_->intentional_sybil_edges);
}

TEST_F(CampaignFixture, SybilEdgeTimesWithinLifetimes) {
  const auto& net = *result_->network;
  for (graph::NodeId s : result_->sybil_ids) {
    for (const auto& nb : net.graph().neighbors(s)) {
      if (!net.account(nb.node).is_sybil()) continue;
      // Both endpoints must have been alive (created, not yet banned)
      // when the edge appeared (small tolerance for the response delay
      // drain at campaign end).
      EXPECT_GE(nb.created_at, net.account(s).created_at - 1e-6);
      EXPECT_GE(nb.created_at, net.account(nb.node).created_at - 1e-6);
    }
  }
}

TEST(Campaign, NoMeshingMeansNoIntentionalEdges) {
  CampaignConfig c = small_config(8);
  c.mesh_block_prob = 0.0;
  const auto result = run_campaign(c);
  EXPECT_EQ(result.intentional_sybil_edges, 0u);
  EXPECT_TRUE(result.meshed_sybil_ids.empty());
}

TEST(Campaign, FullMeshingChainsEveryBlock) {
  CampaignConfig c = small_config(9);
  c.mesh_block_prob = 1.0;
  c.sybils = 100;
  const auto result = run_campaign(c);
  EXPECT_EQ(result.meshed_sybil_ids.size(), 100u);
  // A chain of n Sybils over b blocks has n - b intentional edges.
  EXPECT_GT(result.intentional_sybil_edges, 50u);
  EXPECT_LT(result.intentional_sybil_edges, 100u);
}

TEST(Campaign, Deterministic) {
  const auto a = run_campaign(small_config(11));
  const auto b = run_campaign(small_config(11));
  EXPECT_EQ(a.network->graph().edge_count(),
            b.network->graph().edge_count());
  EXPECT_EQ(a.intentional_sybil_edges, b.intentional_sybil_edges);
}

TEST(Campaign, RejectsEmptyToolList) {
  CampaignConfig c = small_config(12);
  c.tools.clear();
  EXPECT_THROW(run_campaign(c), std::invalid_argument);
}

TEST(Campaign, AcceptAllAblationCutsSybilEdges) {
  CampaignConfig with = small_config(13);
  CampaignConfig without = small_config(13);
  without.sybil_accept_all = false;
  const auto a = run_campaign(with);
  const auto b = run_campaign(without);
  const core::TopologyAnalyzer ta(*a.network, a.sybil_ids);
  const core::TopologyAnalyzer tb(*b.network, b.sybil_ids);
  // Removing the accept-all policy must cut accidental Sybil edges
  // roughly in half or more (only openness-gated accepts remain).
  EXPECT_LT(static_cast<double>(tb.total_sybil_edges()),
            0.7 * static_cast<double>(ta.total_sybil_edges()));
}

TEST(Campaign, RateCapThrottlesNaiveTools) {
  CampaignConfig open = small_config(14);
  CampaignConfig capped = small_config(14);
  capped.platform_rate_cap = 5;
  const auto a = run_campaign(open);
  const auto b = run_campaign(capped);
  const core::TopologyAnalyzer ta(*a.network, a.sybil_ids);
  const core::TopologyAnalyzer tb(*b.network, b.sybil_ids);
  EXPECT_LT(static_cast<double>(tb.total_attack_edges()),
            0.75 * static_cast<double>(ta.total_attack_edges()));
}

TEST(Campaign, AdaptiveAttackerBeatsNaiveUnderCap) {
  CampaignConfig naive = small_config(15);
  naive.platform_rate_cap = 5;
  CampaignConfig adaptive = naive;
  adaptive.attacker_adapts = true;
  const auto a = run_campaign(naive);
  const auto b = run_campaign(adaptive);
  const core::TopologyAnalyzer ta(*a.network, a.sybil_ids);
  const core::TopologyAnalyzer tb(*b.network, b.sybil_ids);
  EXPECT_GT(tb.total_attack_edges(), ta.total_attack_edges());
}

TEST(Campaign, CapNeverExceededPerHour) {
  CampaignConfig c = small_config(16);
  c.platform_rate_cap = 3;
  c.sybils = 50;
  const auto result = run_campaign(c);
  // No Sybil can have sent more than cap * active hours; with lifetime
  // <= 380 h, sent <= 3 * 380.
  for (auto s : result.sybil_ids) {
    EXPECT_LE(result.network->ledger(s).sent(), 3u * 380u);
  }
}

}  // namespace
}  // namespace sybil::attack
