// Chaos-orchestration suite (docs/ROBUSTNESS.md §Scenario harness):
//
//   * scenario manifests: canonical-text round-trip, the committed
//     golden manifest, and loud rejection of everything the identity
//     contract cannot carry (reorder/banned-party windows, overlapping
//     kills, phase gaps);
//   * traffic shapes: defaults stay byte-identical to the legacy flat
//     stream, diurnal/flash-crowd curves move *when* events happen but
//     never what, registration storms add creations only inside their
//     window;
//   * fault schedules: identity outside windows, global seq
//     coordinates, duplicates sharing their original's seq;
//   * down-shard routing: mark_down counts skipped copies outside the
//     routed identity, accounting holds with a hole in the fleet, and
//     restart_shard heals the same shard twice under live traffic (the
//     min-frontier regression);
//   * the orchestrator: the golden manifest — duplicate window + crash
//     during overload + recovery under fire + an ENOSPC [disk] window
//     (storage-degraded tier) + a power cut — produces flags and
//     per-shard stats byte-identical to its undisturbed control, at
//     SYBIL_THREADS 1 and 8;
//   * ScenarioKillSweep (not Chaos*, so the tsan name filter skips it):
//     each shard killed at every durability-boundary crossing of a
//     live-traffic scenario, identity pinned every time.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "chaos/manifest.h"
#include "chaos/orchestrator.h"
#include "core/parallel.h"
#include "faults/fault_schedule.h"
#include "service/router.h"
#include "service/workload.h"

namespace sybil::chaos {
namespace {

namespace fs = std::filesystem;

class ChaosBase : public ::testing::Test {
 protected:
  // Scenario runs churn throwaway checkpoints; skip fsync (same knob
  // and rationale as the recovery suites).
  static void SetUpTestSuite() { ::setenv("SYBIL_IO_FSYNC", "0", 1); }
  static void TearDownTestSuite() { ::unsetenv("SYBIL_IO_FSYNC"); }
};

using ChaosManifest = ChaosBase;
using ChaosWorkload = ChaosBase;
using ChaosFaultSchedule = ChaosBase;
using ChaosRouterDown = ChaosBase;
using ChaosScenario = ChaosBase;
// Heavy boundary sweeps: own fixture name so the tsan preset's Chaos*
// name filter selects only the light tests above.
using ScenarioKillSweep = ChaosBase;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sybil_chaos_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string golden_path() {
  return std::string(SYBIL_TEST_DATA_DIR) + "/scenario_golden.scn";
}

/// Small all-features manifest used by the round-trip and sweep tests:
/// shaped traffic, two sweeping phases, a duplicate-only window.
ScenarioManifest small_manifest() {
  ScenarioManifest m;
  m.name = "small";
  m.workload.accounts = 64;
  m.workload.events = 400;
  m.workload.hours = 6.0;
  m.workload.seed = 3;
  m.workload.burst_senders = 2;
  m.workload.burst_fraction = 0.3;
  m.workload.malformed_fraction = 0.02;
  m.workload.diurnal_amplitude = 0.4;
  m.workload.diurnal_period_hours = 3.0;
  m.workload.flash_crowds.push_back({2.0, 1.0, 1.5});
  m.shards = 3;
  m.wal_segment_records = 32;
  PhaseSpec warm;
  warm.name = "warm";
  warm.until_event = 200;
  warm.pump_interval = 32;
  warm.sweep = true;
  PhaseSpec drain;
  drain.name = "drain";
  drain.until_event = 400;
  drain.pump_interval = 32;
  drain.sweep = true;
  m.phases = {warm, drain};
  faults::FaultWindow w;
  w.from_event = 100;
  w.to_event = 200;
  w.rates.seed = 5;
  w.rates.duplicate = 0.3;
  w.rates.max_skew_hours = 0.5;
  m.fault_windows = {w};
  return m;
}

// ---------------------------------------------------------------------------
// Manifests

TEST_F(ChaosManifest, SerializeParseRoundTrip) {
  ScenarioManifest m = small_manifest();
  KillSpec k1;
  k1.shard = 1;
  k1.at_event = 150;
  k1.down_for = 40;
  KillSpec k2;
  k2.shard = 2;
  k2.at_boundary = 7;
  k2.use_boundary = true;
  k2.down_for = 25;
  m.kills = {k1, k2};
  DiskFaultSpec d;
  d.shard = 0;
  d.kind = DiskFaultSpec::Kind::kIoError;
  d.from_event = 210;
  d.to_event = 260;
  d.seed = 9;
  m.disk_faults = {d};
  m.validate();

  const std::string text = m.serialize();
  const ScenarioManifest back = parse_manifest(text);
  EXPECT_EQ(back.serialize(), text);
  EXPECT_EQ(back.name, "small");
  EXPECT_EQ(back.workload.events, 400u);
  EXPECT_DOUBLE_EQ(back.workload.diurnal_amplitude, 0.4);
  ASSERT_EQ(back.workload.flash_crowds.size(), 1u);
  EXPECT_DOUBLE_EQ(back.workload.flash_crowds[0].intensity, 1.5);
  EXPECT_EQ(back.shards, 3u);
  ASSERT_EQ(back.phases.size(), 2u);
  EXPECT_EQ(back.phases[0].name, "warm");
  EXPECT_TRUE(back.phases[1].sweep);
  ASSERT_EQ(back.fault_windows.size(), 1u);
  EXPECT_DOUBLE_EQ(back.fault_windows[0].rates.duplicate, 0.3);
  ASSERT_EQ(back.kills.size(), 2u);
  EXPECT_FALSE(back.kills[0].use_boundary);
  EXPECT_EQ(back.kills[0].at_event, 150u);
  EXPECT_TRUE(back.kills[1].use_boundary);
  EXPECT_EQ(back.kills[1].at_boundary, 7u);
  ASSERT_EQ(back.disk_faults.size(), 1u);
  EXPECT_EQ(back.disk_faults[0].kind, DiskFaultSpec::Kind::kIoError);
  EXPECT_EQ(back.disk_faults[0].from_event, 210u);
  EXPECT_EQ(back.disk_faults[0].to_event, 260u);
  EXPECT_EQ(back.disk_faults[0].seed, 9u);
  EXPECT_TRUE(back.identity_expected());
}

TEST_F(ChaosManifest, GoldenFileParses) {
  const ScenarioManifest m = load_manifest(golden_path());
  EXPECT_EQ(m.name, "golden-recovery-under-fire");
  EXPECT_EQ(m.shards, 3u);
  EXPECT_EQ(m.workload.events, 3000u);
  EXPECT_EQ(m.phases.size(), 3u);
  EXPECT_EQ(m.phases[1].name, "overload");
  EXPECT_EQ(m.fault_windows.size(), 1u);
  EXPECT_EQ(m.kills.size(), 2u);
  ASSERT_EQ(m.disk_faults.size(), 2u);
  EXPECT_EQ(m.disk_faults[0].kind, DiskFaultSpec::Kind::kNoSpace);
  EXPECT_EQ(m.disk_faults[1].kind, DiskFaultSpec::Kind::kPowerLoss);
  EXPECT_EQ(m.disk_faults[1].seed, 7u);
  EXPECT_TRUE(m.identity_expected());
  // The undisturbed control keeps the shape but drops the chaos.
  const ScenarioManifest u = m.undisturbed();
  EXPECT_TRUE(u.fault_windows.empty());
  EXPECT_TRUE(u.kills.empty());
  EXPECT_TRUE(u.disk_faults.empty());
  EXPECT_EQ(u.phases.size(), 3u);
}

TEST_F(ChaosManifest, RejectsIdentityBreakingRates) {
  ScenarioManifest m = small_manifest();
  m.fault_windows[0].rates.reorder = 0.1;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = small_manifest();
  m.fault_windows[0].rates.banned_party = 0.1;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  // Drop does not break routing, only byte-identity expectations.
  m = small_manifest();
  m.fault_windows[0].rates.drop = 0.1;
  EXPECT_NO_THROW(m.validate());
  EXPECT_FALSE(m.identity_expected());
}

TEST_F(ChaosManifest, RejectsBadPhasesAndKills) {
  ScenarioManifest m = small_manifest();
  m.phases[1].until_event = 399;  // gap: last phase must end at events
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = small_manifest();
  m.phases[1].until_event = 200;  // not strictly increasing
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = small_manifest();
  KillSpec k;
  k.shard = 3;  // out of range for 3 shards
  k.at_event = 10;
  m.kills = {k};
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = small_manifest();
  KillSpec a;
  a.at_event = 100;
  a.down_for = 100;
  KillSpec b;
  b.at_event = 150;  // arms while a's victim is still down
  b.down_for = 10;
  m.kills = {a, b};
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = small_manifest();
  KillSpec late;
  late.at_event = 390;
  late.down_for = 20;  // cannot recover within the stream
  m.kills = {late};
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST_F(ChaosManifest, RejectsBadDiskWindows) {
  ScenarioManifest m = small_manifest();
  DiskFaultSpec d;
  d.shard = 3;  // out of range for 3 shards
  d.from_event = 10;
  d.to_event = 20;
  m.disk_faults = {d};
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = small_manifest();
  d = {};
  d.from_event = 20;
  d.to_event = 20;  // empty window
  m.disk_faults = {d};
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = small_manifest();
  d = {};
  d.from_event = 300;
  d.to_event = 500;  // beyond the stream
  m.disk_faults = {d};
  EXPECT_THROW(m.validate(), std::invalid_argument);

  // One disturbance at a time: a disk window may not overlap a kill
  // downtime (and vice versa), but adjacency is fine.
  m = small_manifest();
  KillSpec k;
  k.shard = 1;
  k.at_event = 100;
  k.down_for = 50;
  m.kills = {k};
  d = {};
  d.from_event = 120;
  d.to_event = 180;  // inside the kill's [100, 150) downtime
  m.disk_faults = {d};
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.disk_faults[0].from_event = 150;  // adjacent
  m.disk_faults[0].to_event = 180;
  EXPECT_NO_THROW(m.validate());
  // Disk windows never break the identity contract.
  EXPECT_TRUE(m.identity_expected());
}

TEST_F(ChaosManifest, ParseFailsWithLineNumbers) {
  EXPECT_THROW(parse_manifest("not a manifest\n"), std::invalid_argument);
  try {
    parse_manifest("sybil-scenario v1\n[workload]\nbogus_key = 1\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Traffic shapes

TEST_F(ChaosWorkload, ShapeDefaultsAreByteIdentical) {
  service::WorkloadOptions base;
  base.accounts = 64;
  base.events = 500;
  base.hours = 12.0;
  base.seed = 9;
  const std::vector<osn::Event> legacy = service::synthetic_workload(base);

  // Zero-amplitude diurnal and a zero-intensity storm are arithmetic
  // no-ops: the stream must stay byte-identical, not just equivalent.
  service::WorkloadOptions shaped = base;
  shaped.diurnal_amplitude = 0.0;
  shaped.registration_storms.push_back({2.0, 3.0, 0.0});
  const std::vector<osn::Event> with = service::synthetic_workload(shaped);
  ASSERT_EQ(with.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(with[i].type, legacy[i].type) << i;
    EXPECT_EQ(with[i].actor, legacy[i].actor) << i;
    EXPECT_EQ(with[i].subject, legacy[i].subject) << i;
    EXPECT_EQ(with[i].time, legacy[i].time) << i;  // bitwise
  }
  // And the legacy timestamp formula is exactly hours*i/events.
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].time, base.hours * static_cast<double>(i) /
                                  static_cast<double>(base.events))
        << i;
  }
}

TEST_F(ChaosWorkload, DiurnalCurveMovesWhenNotWhat) {
  service::WorkloadOptions flat;
  flat.accounts = 64;
  flat.events = 2000;
  flat.hours = 24.0;
  flat.seed = 4;
  service::WorkloadOptions wave = flat;
  wave.diurnal_amplitude = 0.8;
  wave.diurnal_period_hours = 24.0;

  const auto a = service::synthetic_workload(flat);
  const auto b = service::synthetic_workload(wave);
  ASSERT_EQ(a.size(), b.size());
  std::size_t first_half = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    // Content is positional: only timestamps may differ.
    EXPECT_EQ(a[i].type, b[i].type) << i;
    EXPECT_EQ(a[i].actor, b[i].actor) << i;
    EXPECT_EQ(a[i].subject, b[i].subject) << i;
    if (i > 0) EXPECT_GE(b[i].time, b[i - 1].time) << i;
    if (b[i].time < 12.0) ++first_half;
  }
  // rate = 1 + A*sin(2*pi*t/24) is above baseline for t in (0, 12):
  // the first half-day must hold well over half the events.
  EXPECT_GT(first_half, b.size() / 2 + b.size() / 10);
}

TEST_F(ChaosWorkload, FlashCrowdCompressesTimestamps) {
  service::WorkloadOptions o;
  o.accounts = 64;
  o.events = 3000;
  o.hours = 30.0;
  o.seed = 5;
  o.flash_crowds.push_back({10.0, 2.0, 2.0});  // 3x rate inside [10, 12)
  const auto events = service::synthetic_workload(o);
  std::size_t inside = 0, control = 0;
  for (const osn::Event& e : events) {
    if (e.time >= 10.0 && e.time < 12.0) ++inside;
    if (e.time >= 20.0 && e.time < 22.0) ++control;
  }
  EXPECT_GT(inside, 2 * control);
}

TEST_F(ChaosWorkload, RegistrationStormAddsCreationsInWindowOnly) {
  service::WorkloadOptions calm;
  calm.accounts = 64;
  calm.events = 4000;
  calm.hours = 40.0;
  calm.seed = 6;
  service::WorkloadOptions storm = calm;
  storm.registration_storms.push_back({10.0, 5.0, 0.2});

  const auto a = service::synthetic_workload(calm);
  const auto b = service::synthetic_workload(storm);
  ASSERT_EQ(a.size(), b.size());
  std::size_t calm_created = 0, storm_created = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Storms never move the clock.
    EXPECT_EQ(a[i].time, b[i].time) << i;
    const bool in_window = a[i].time >= 10.0 && a[i].time < 15.0;
    if (in_window) {
      calm_created += a[i].type == osn::EventType::kAccountCreated;
      storm_created += b[i].type == osn::EventType::kAccountCreated;
    } else if (a[i].time < 10.0) {
      // Before the first storm window the stream is byte-identical
      // (after it, branch-dependent RNG consumption shifts content —
      // see WorkloadOptions::registration_storms).
      EXPECT_EQ(a[i].type, b[i].type) << i;
      EXPECT_EQ(a[i].actor, b[i].actor) << i;
      EXPECT_EQ(a[i].subject, b[i].subject) << i;
    }
  }
  EXPECT_GT(storm_created, calm_created * 3);
}

TEST_F(ChaosWorkload, ValidateCoversShapeFields) {
  service::WorkloadOptions o;
  o.diurnal_amplitude = 1.0;  // rate would hit zero
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.diurnal_amplitude = 0.5;
  o.diurnal_period_hours = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.flash_crowds.push_back({90.0, 10.0, 1.0});  // beyond hours
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.flash_crowds.push_back({1.0, 0.0, 1.0});  // empty span
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.registration_storms.push_back({1.0, 2.0, -0.1});
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.registration_storms.push_back({1.0, 2.0, 0.8});  // mix overflow
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.diurnal_amplitude = 0.9;
  o.flash_crowds.push_back({1.0, 2.0, 3.0});
  o.registration_storms.push_back({4.0, 2.0, 0.1});
  EXPECT_NO_THROW(o.validate());
}

// ---------------------------------------------------------------------------
// Fault schedules

TEST_F(ChaosFaultSchedule, EmptyScheduleIsIdentity) {
  service::WorkloadOptions o;
  o.accounts = 32;
  o.events = 200;
  o.hours = 4.0;
  const auto events = service::synthetic_workload(o);
  faults::FaultScheduleReport report;
  const auto arrivals = faults::apply_fault_schedule(events, {}, &report);
  ASSERT_EQ(arrivals.size(), events.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i].seq, i);
    EXPECT_EQ(arrivals[i].event.time, events[i].time);
    EXPECT_EQ(arrivals[i].arrival, events[i].time);  // nondecreasing clock
  }
  EXPECT_EQ(report.total.events_in, events.size());
  EXPECT_EQ(report.total.events_out, events.size());
  EXPECT_TRUE(report.per_window.empty());
}

TEST_F(ChaosFaultSchedule, WindowSeqsStayGlobal) {
  service::WorkloadOptions o;
  o.accounts = 32;
  o.events = 300;
  o.hours = 6.0;
  o.seed = 2;
  const auto events = service::synthetic_workload(o);
  faults::FaultWindow w;
  w.from_event = 50;
  w.to_event = 150;
  w.rates.seed = 7;
  w.rates.duplicate = 0.4;
  faults::FaultScheduleReport report;
  const auto arrivals =
      faults::apply_fault_schedule(events, std::span(&w, 1), &report);

  ASSERT_EQ(report.per_window.size(), 1u);
  EXPECT_GT(report.total.duplicated, 0u);
  EXPECT_EQ(arrivals.size(), events.size() + report.total.duplicated);

  // Every original seq appears; every extra copy is an in-window dup
  // sharing its original's seq.
  std::vector<std::size_t> count(events.size(), 0);
  for (const faults::Arrival& a : arrivals) {
    ASSERT_LT(a.seq, events.size());
    ++count[a.seq];
  }
  std::uint64_t extras = 0;
  for (std::size_t seq = 0; seq < count.size(); ++seq) {
    ASSERT_GE(count[seq], 1u) << "lost seq " << seq;
    if (count[seq] > 1) {
      EXPECT_GE(seq, w.from_event);
      EXPECT_LT(seq, w.to_event);
      extras += count[seq] - 1;
    }
  }
  EXPECT_EQ(extras, report.total.duplicated);
}

TEST_F(ChaosFaultSchedule, DropWindowLosesOnlyWindowSeqs) {
  service::WorkloadOptions o;
  o.accounts = 32;
  o.events = 300;
  o.hours = 6.0;
  const auto events = service::synthetic_workload(o);
  faults::FaultWindow w;
  w.from_event = 100;
  w.to_event = 200;
  w.rates.seed = 13;
  w.rates.drop = 0.5;
  faults::FaultScheduleReport report;
  const auto arrivals =
      faults::apply_fault_schedule(events, std::span(&w, 1), &report);
  EXPECT_GT(report.total.dropped, 0u);
  std::set<std::uint64_t> seen;
  for (const faults::Arrival& a : arrivals) seen.insert(a.seq);
  for (std::uint64_t seq = 0; seq < events.size(); ++seq) {
    if (seq < w.from_event || seq >= w.to_event) {
      EXPECT_TRUE(seen.count(seq)) << "clean seq " << seq << " lost";
    }
  }
  EXPECT_EQ(events.size() - seen.size(), report.total.dropped);
}

TEST_F(ChaosFaultSchedule, ValidateRejectsBadWindows) {
  faults::FaultWindow a;
  a.from_event = 10;
  a.to_event = 10;  // empty
  EXPECT_THROW(faults::validate_fault_windows(std::span(&a, 1), 100),
               std::invalid_argument);
  a.to_event = 120;  // beyond the stream
  EXPECT_THROW(faults::validate_fault_windows(std::span(&a, 1), 100),
               std::invalid_argument);
  faults::FaultWindow b[2];
  b[0].from_event = 10;
  b[0].to_event = 50;
  b[1].from_event = 40;  // overlap
  b[1].to_event = 80;
  EXPECT_THROW(faults::validate_fault_windows(std::span(b, 2), 100),
               std::invalid_argument);
  b[1].from_event = 50;  // adjacent is fine
  EXPECT_NO_THROW(faults::validate_fault_windows(std::span(b, 2), 100));
}

// ---------------------------------------------------------------------------
// Down-shard routing

service::ShardRouterOptions down_router_options(const std::string& dir) {
  service::ShardRouterOptions o;
  o.shards = 3;
  o.shard.dir = dir;
  o.shard.wal_fsync = service::WalFsync::kNever;
  o.shard.wal_segment_records = 32;
  o.shard.checkpoint_every = 96;
  o.shard.detector.rule.invite_rate_min = 4.0;
  o.shard.detector.rule.outgoing_accept_max = 0.5;
  o.shard.detector.rule.min_requests = 5;
  return o;
}

service::WorkloadOptions down_workload() {
  service::WorkloadOptions w;
  w.accounts = 64;
  w.events = 400;
  w.hours = 6.0;
  w.seed = 3;
  w.burst_senders = 2;
  w.burst_fraction = 0.3;
  return w;
}

TEST_F(ChaosRouterDown, MarkDownCountsSkippedCopiesOutsideIdentity) {
  const auto events = service::synthetic_workload(down_workload());
  service::ShardRouter router(down_router_options(fresh_dir("down_count")));
  router.start();
  for (std::uint64_t i = 0; i < 100; ++i) router.offer(events[i], i);
  router.pump();
  ASSERT_TRUE(router.accounting_ok());

  router.mark_down(1);
  EXPECT_TRUE(router.is_down(1));
  EXPECT_EQ(router.down_count(), 1u);
  EXPECT_THROW(router.shard(1), std::logic_error);
  EXPECT_THROW(router.mark_down(1), std::logic_error);  // already down

  std::uint64_t skipped = 0;
  for (std::uint64_t i = 100; i < 200; ++i) {
    const service::RouteResult r = router.offer(events[i], i);
    // Skipped copies are owed, not routed: the per-offer identity holds
    // without them.
    EXPECT_EQ(r.routed, r.delivered + r.suppressed);
    skipped += r.skipped_down;
  }
  router.pump();
  EXPECT_GT(skipped, 0u);
  EXPECT_EQ(router.copies_skipped_down(), skipped);
  EXPECT_EQ(router.copies_routed(),
            router.copies_delivered() + router.copies_suppressed());
  EXPECT_TRUE(router.accounting_ok());
  // stats_json marks the hole and surfaces the skipped counter.
  const std::string stats = router.stats_json();
  EXPECT_NE(stats.find("\"down\":true"), std::string::npos);
  EXPECT_NE(stats.find("skipped_down"), std::string::npos);
}

/// Re-drives `events[from..n)` with pumps, offering every event; live
/// shards suppress what they already have.
void redrive(service::ShardRouter& router, const std::vector<osn::Event>& log,
             std::uint64_t from) {
  for (std::uint64_t i = from; i < log.size(); ++i) {
    router.offer(log[i], i);
    if (i % 16 == 15) router.pump();
  }
  router.flush(true);
}

TEST_F(ChaosRouterDown, RestartTwiceUnderLiveTrafficKeepsIdentity) {
  const auto events = service::synthetic_workload(down_workload());

  // Control: uninterrupted run.
  service::ShardRouter clean(down_router_options(fresh_dir("twice_clean")));
  clean.start();
  redrive(clean, events, 0);
  clean.sweep_flags(7.0);
  const core::FlagBatch want = clean.take_flagged();
  std::vector<std::string> want_stats;
  for (std::uint32_t i = 0; i < 3; ++i) {
    want_stats.push_back(clean.shard(i).stats_json());
  }

  // Same stream, with shard 1 taken down and recovered twice, live
  // traffic flowing to the survivors in between. The latent assumption
  // this regression pins: the min-frontier math must tolerate one
  // member recovering repeatedly while its peers never stop.
  service::ShardRouter router(down_router_options(fresh_dir("twice_chaos")));
  router.start();
  std::uint64_t cursor = 0;
  const auto drive_to = [&](std::uint64_t until) {
    for (; cursor < until; ++cursor) {
      router.offer(events[cursor], cursor);
      if (cursor % 16 == 15) router.pump();
    }
  };
  drive_to(120);
  router.mark_down(1);
  drive_to(200);  // survivors keep serving; shard 1's copies are owed
  {
    const service::RecoveryReport rec = router.restart_shard(1);
    EXPECT_LE(rec.next_seq, 120u);
    cursor = rec.next_seq;  // rewind: survivors suppress, victim catches up
  }
  drive_to(260);
  router.mark_down(1);
  drive_to(320);
  {
    const service::RecoveryReport rec = router.restart_shard(1);
    EXPECT_LE(rec.next_seq, 260u);
    EXPECT_GT(rec.next_seq, 0u);
    cursor = rec.next_seq;
  }
  redrive(router, events, cursor);
  ASSERT_TRUE(router.accounting_ok());
  router.sweep_flags(7.0);

  const core::FlagBatch got = router.take_flagged();
  ASSERT_TRUE(flags_equal(got, want));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(router.shard(i).stats_json(), want_stats[i]) << "shard " << i;
  }
}

// ---------------------------------------------------------------------------
// The orchestrator

TEST_F(ChaosScenario, GoldenManifestIdentityUnderFire) {
  const ScenarioManifest m = load_manifest(golden_path());
  ScenarioOutcome disturbed;
  ScenarioOutcome control;
  const IdentityVerdict v =
      verify_identity(m, fresh_dir("golden"), &disturbed, &control);
  EXPECT_TRUE(v.flags_identical);
  EXPECT_TRUE(v.stats_identical);
  EXPECT_TRUE(v.accounting_held);
  ASSERT_TRUE(v.ok());

  // Two process kills plus the [disk] power cut (reported as a kill).
  EXPECT_EQ(disturbed.kills, 3u);
  EXPECT_EQ(disturbed.recoveries, 3u);
  EXPECT_EQ(disturbed.kills_missed, 0u);
  EXPECT_GT(disturbed.copies_skipped_down, 0u);
  EXPECT_GT(disturbed.faults.total.duplicated, 0u);
  EXPECT_GT(disturbed.flags.size(), 0u);
  EXPECT_EQ(disturbed.identity_failures, 0u);
  EXPECT_EQ(control.kills, 0u);
  EXPECT_EQ(control.copies_skipped_down, 0u);

  // Both [disk] windows armed; the ENOSPC window rode shard 0 through
  // the storage-degraded tier and the close flushed it back; the
  // power-loss window cut shard 0's disk in cooldown.
  EXPECT_EQ(disturbed.disk_windows, 2u);
  EXPECT_EQ(disturbed.disk_windows_missed, 0u);
  EXPECT_EQ(disturbed.power_cuts, 1u);
  EXPECT_EQ(disturbed.storage_degraded, 1u);
  EXPECT_EQ(disturbed.storage_recoveries, 1u);
  EXPECT_EQ(control.disk_windows, 0u);
  EXPECT_EQ(control.power_cuts, 0u);

  // The crash-during-overload kill fired inside the overload phase and
  // the phase pushed shards through tier transitions.
  ASSERT_EQ(disturbed.phases.size(), 3u);
  EXPECT_EQ(disturbed.phases[1].name, "overload");
  EXPECT_EQ(disturbed.phases[1].kills, 1u);
  EXPECT_GT(disturbed.phases[1].tier_transitions, 0u);
  // Cooldown holds the recovery-under-fire kill and the power cut.
  EXPECT_EQ(disturbed.phases[2].kills, 2u);
  // Recovery under fire: live traffic kept flowing while down, so the
  // arrivals attributed to each kill's phase exceed its event range.
  EXPECT_GT(disturbed.arrivals_total, m.workload.events);
}

TEST_F(ChaosScenario, GoldenByteIdenticalAcrossThreadCounts) {
  const ScenarioManifest m = load_manifest(golden_path());
  core::set_thread_count(1);
  ScenarioOutcome one;
  const IdentityVerdict v1 =
      verify_identity(m, fresh_dir("golden_t1"), &one);
  core::set_thread_count(8);
  ScenarioOutcome eight;
  const IdentityVerdict v8 =
      verify_identity(m, fresh_dir("golden_t8"), &eight);
  core::set_thread_count(0);
  EXPECT_TRUE(v1.ok());
  EXPECT_TRUE(v8.ok());
  // And the two thread counts agree with each other, byte for byte.
  EXPECT_TRUE(flags_equal(one.flags, eight.flags));
  EXPECT_EQ(one.shard_stats, eight.shard_stats);
}

TEST_F(ChaosScenario, BoundaryKillThatNeverArrivesIsMissed) {
  ScenarioManifest m = small_manifest();
  KillSpec k;
  k.shard = 1;
  k.at_boundary = 1000000;  // far past any crossing this run makes
  k.use_boundary = true;
  k.down_for = 10;
  m.kills = {k};
  ChaosOrchestrator orchestrator(m);
  ChaosRunOptions run;
  run.dir = fresh_dir("missed_kill");
  const ScenarioOutcome out = orchestrator.run(run);
  EXPECT_EQ(out.kills, 0u);
  EXPECT_EQ(out.recoveries, 0u);
  EXPECT_EQ(out.kills_missed, 1u);
  EXPECT_EQ(out.identity_failures, 0u);
}

TEST_F(ChaosScenario, NonIdentityManifestStillHoldsAccounting) {
  ScenarioManifest m = small_manifest();
  m.fault_windows[0].rates.drop = 0.2;  // identity off the table
  KillSpec k;
  k.shard = 0;
  k.at_event = 250;
  k.down_for = 60;
  m.kills = {k};
  ASSERT_FALSE(m.identity_expected());
  ChaosOrchestrator orchestrator(m);
  ChaosRunOptions run;
  run.dir = fresh_dir("droppy");
  const ScenarioOutcome out = orchestrator.run(run);
  EXPECT_EQ(out.kills, 1u);
  EXPECT_EQ(out.recoveries, 1u);
  EXPECT_GT(out.faults.total.dropped, 0u);
  EXPECT_EQ(out.identity_failures, 0u);
}

// ---------------------------------------------------------------------------
// Kill-at-every-boundary sweep

/// Learns the per-shard durability-boundary crossing counts from the
/// undisturbed run, then kills `shard` at crossing k (stride-sampled)
/// and pins flags + per-shard stats against the control every time.
void sweep_shard(const ScenarioManifest& base, std::uint32_t shard,
                 std::size_t stride, const ScenarioOutcome& control,
                 const std::string& tag) {
  ChaosOrchestrator probe(base);
  SCOPED_TRACE(tag + " shard " + std::to_string(shard));
  const std::uint64_t crossings = control.boundary_crossings[shard];
  ASSERT_GT(crossings, 0u);
  std::size_t fired = 0;
  for (std::uint64_t k = 0; k < crossings; k += stride) {
    ScenarioManifest m = base;
    KillSpec kill;
    kill.shard = shard;
    kill.at_boundary = k;
    kill.use_boundary = true;
    kill.down_for = 50;
    m.kills = {kill};
    ChaosOrchestrator orchestrator(m);
    ChaosRunOptions run;
    run.dir = fresh_dir("sweep_" + tag + "_s" + std::to_string(shard) + "_k" +
                        std::to_string(k));
    const ScenarioOutcome out = orchestrator.run(run);
    SCOPED_TRACE("crossing " + std::to_string(k));
    // Crossings late in the run (final flush) can no longer fire — the
    // injector is disarmed before the terminal drain. Either way the
    // run must match the control byte for byte.
    ASSERT_EQ(out.identity_failures, 0u);
    ASSERT_TRUE(flags_equal(out.flags, control.flags));
    ASSERT_EQ(out.shard_stats, control.shard_stats);
    if (out.kills == 1) {
      ASSERT_EQ(out.recoveries, 1u);
      ++fired;
    } else {
      ASSERT_EQ(out.kills_missed, 1u);
    }
  }
  EXPECT_GT(fired, 0u);
}

TEST_F(ScenarioKillSweep, EveryShardEveryBoundarySingleThread) {
  core::set_thread_count(1);
  const ScenarioManifest base = small_manifest();
  ChaosOrchestrator orchestrator(base);
  ChaosRunOptions run;
  run.dir = fresh_dir("sweep_control_t1");
  run.disturbed = false;
  const ScenarioOutcome control = orchestrator.run(run);
  ASSERT_EQ(control.boundary_crossings.size(), base.shards);
  for (std::uint32_t s = 0; s < base.shards; ++s) {
    sweep_shard(base, s, 1, control, "t1");
  }
  core::set_thread_count(0);
}

TEST_F(ScenarioKillSweep, EveryShardStridedEightThreads) {
  core::set_thread_count(8);
  const ScenarioManifest base = small_manifest();
  ChaosOrchestrator orchestrator(base);
  ChaosRunOptions run;
  run.dir = fresh_dir("sweep_control_t8");
  run.disturbed = false;
  const ScenarioOutcome control = orchestrator.run(run);
  for (std::uint32_t s = 0; s < base.shards; ++s) {
    sweep_shard(base, s, 7, control, "t8");
  }
  core::set_thread_count(0);
}

}  // namespace
}  // namespace sybil::chaos
