#include "graph/maxflow.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "stats/rng.h"

namespace sybil::graph {
namespace {

TEST(MaxFlow, SingleArc) {
  FlowNetwork net(2);
  net.add_arc(0, 1, 7);
  EXPECT_EQ(net.max_flow(0, 1), 7);
}

TEST(MaxFlow, SeriesBottleneck) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 10);
  net.add_arc(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(MaxFlow, ParallelPaths) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 2);
  net.add_arc(1, 3, 2);
  net.add_arc(0, 2, 3);
  net.add_arc(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 3);
}

TEST(MaxFlow, ClassicCLRS) {
  // CLRS figure 26.1 network, max flow 23.
  FlowNetwork net(6);
  net.add_arc(0, 1, 16);
  net.add_arc(0, 2, 13);
  net.add_arc(1, 2, 10);
  net.add_arc(2, 1, 4);
  net.add_arc(1, 3, 12);
  net.add_arc(3, 2, 9);
  net.add_arc(2, 4, 14);
  net.add_arc(4, 3, 7);
  net.add_arc(3, 5, 20);
  net.add_arc(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(MaxFlow, DisconnectedIsZero) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 5);
  net.add_arc(2, 3, 5);
  EXPECT_EQ(net.max_flow(0, 3), 0);
}

TEST(MaxFlow, UndirectedLink) {
  FlowNetwork net(3);
  net.add_undirected(0, 1, 2);
  net.add_undirected(1, 2, 2);
  EXPECT_EQ(net.max_flow(0, 2), 2);
}

TEST(MaxFlow, ResidualTracksUnitFlow) {
  FlowNetwork net(3);
  const auto a = net.add_arc(0, 1, 1);
  net.add_arc(1, 2, 1);
  net.max_flow(0, 2);
  EXPECT_EQ(net.residual(a), 0);  // arc saturated
}

TEST(MaxFlow, MinCutSide) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 100);
  net.add_arc(1, 2, 1);  // the cut
  net.add_arc(2, 3, 100);
  net.max_flow(0, 3);
  const auto side = net.min_cut_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, Errors) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_arc(0, 2, 1), std::out_of_range);
  EXPECT_THROW(net.add_arc(0, 1, -1), std::invalid_argument);
  EXPECT_THROW(net.max_flow(1, 1), std::invalid_argument);
}

/// Property: max flow equals min cut capacity on random graphs,
/// verified against a brute-force cut enumeration for small n.
class FlowMinCut : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowMinCut, MatchesBruteForceMinCut) {
  stats::Rng rng(GetParam());
  const int n = 8;
  std::vector<std::vector<std::int64_t>> cap(
      n, std::vector<std::int64_t>(n, 0));
  FlowNetwork net(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && rng.bernoulli(0.35)) {
        cap[u][v] = static_cast<std::int64_t>(rng.uniform_index(10));
        net.add_arc(static_cast<std::size_t>(u), static_cast<std::size_t>(v),
                    cap[u][v]);
      }
    }
  }
  const std::int64_t flow = net.max_flow(0, n - 1);
  // Brute force: minimum over all s-t cuts.
  std::int64_t best = INT64_MAX;
  for (int mask = 0; mask < (1 << n); ++mask) {
    if (!(mask & 1) || (mask & (1 << (n - 1)))) continue;  // s in, t out
    std::int64_t cut = 0;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if ((mask & (1 << u)) && !(mask & (1 << v))) cut += cap[u][v];
      }
    }
    best = std::min(best, cut);
  }
  EXPECT_EQ(flow, best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowMinCut,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

}  // namespace
}  // namespace sybil::graph
