#include "graph/walks.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace sybil::graph {
namespace {

CsrGraph ring(NodeId n) {
  TimestampedGraph g(n);
  for (NodeId u = 0; u < n; ++u) g.add_edge(u, (u + 1) % n, 0);
  return CsrGraph::from(g);
}

TEST(RandomWalk, LengthAndAdjacency) {
  const CsrGraph g = ring(10);
  stats::Rng rng(1);
  const auto path = random_walk(g, 3, 20, rng);
  ASSERT_EQ(path.size(), 21u);
  EXPECT_EQ(path.front(), 3u);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
  }
}

TEST(RandomWalk, StopsAtIsolatedNode) {
  TimestampedGraph g(2);
  const CsrGraph csr = CsrGraph::from(g);
  stats::Rng rng(2);
  const auto path = random_walk(csr, 0, 5, rng);
  EXPECT_EQ(path.size(), 1u);
  EXPECT_EQ(random_walk_endpoint(csr, 0, 5, rng), 0u);
}

TEST(RandomWalk, VisitCountsCoverRing) {
  const CsrGraph g = ring(8);
  stats::Rng rng(3);
  const auto counts = walk_visit_counts(g, 0, 16, 200, rng);
  for (NodeId u = 0; u < 8; ++u) EXPECT_GT(counts[u], 0u);
}

TEST(RouteTable, RoutesFollowEdges) {
  stats::Rng grng(4);
  const CsrGraph g = CsrGraph::from(erdos_renyi(50, 0.2, grng));
  stats::Rng rng(5);
  const RouteTable table(g, rng);
  for (NodeId start : {0u, 10u, 20u}) {
    if (g.degree(start) == 0) continue;
    const auto route = table.route(g, start, 0, 15);
    ASSERT_EQ(route.size(), 16u);
    for (std::size_t i = 1; i < route.size(); ++i) {
      EXPECT_TRUE(g.has_edge(route[i - 1], route[i]));
    }
  }
}

TEST(RouteTable, RoutesAreDeterministic) {
  stats::Rng grng(6);
  const CsrGraph g = CsrGraph::from(erdos_renyi(50, 0.2, grng));
  stats::Rng r1(7), r2(7);
  const RouteTable t1(g, r1), t2(g, r2);
  EXPECT_EQ(t1.route(g, 0, 0, 10), t2.route(g, 0, 0, 10));
  // Same table queried twice gives the same route (it's a table, not a
  // walk).
  EXPECT_EQ(t1.route(g, 0, 0, 10), t1.route(g, 0, 0, 10));
}

TEST(RouteTable, ConvergenceProperty) {
  // Two routes that enter a node along the same edge must leave along
  // the same edge — i.e. once they share a directed edge they coincide
  // forever. Verify on a small dense graph by checking pairwise.
  stats::Rng grng(8);
  const CsrGraph g = CsrGraph::from(erdos_renyi(30, 0.3, grng));
  stats::Rng rng(9);
  const RouteTable table(g, rng);
  const std::size_t w = 12;
  std::vector<std::vector<RouteTable::Hop>> routes;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (std::size_t e = 0; e < std::min<std::size_t>(g.degree(u), 2); ++e) {
      routes.push_back(table.route_hops(g, u, e, w));
    }
  }
  for (const auto& a : routes) {
    for (const auto& b : routes) {
      for (std::size_t i = 0; i + 1 < a.size(); ++i) {
        for (std::size_t j = 0; j + 1 < b.size(); ++j) {
          if (a[i].node == b[j].node && a[i].edge_index == b[j].edge_index) {
            // Same directed position → identical continuation.
            std::size_t k = 0;
            while (i + k < a.size() && j + k < b.size()) {
              ASSERT_EQ(a[i + k].node, b[j + k].node);
              ASSERT_EQ(a[i + k].edge_index, b[j + k].edge_index);
              ++k;
            }
          }
        }
      }
    }
  }
}

TEST(RouteTable, RejectsBadFirstEdge) {
  const CsrGraph g = ring(5);
  stats::Rng rng(10);
  const RouteTable table(g, rng);
  EXPECT_THROW(table.route(g, 0, 5, 3), std::out_of_range);
}

}  // namespace
}  // namespace sybil::graph
