#include "graph/neighbor_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/parallel.h"
#include "graph/clustering.h"
#include "graph/generators.h"
#include "stats/rng.h"

namespace sybil::graph {
namespace {

/// The graph regimes the galloping intersection has to agree with the
/// scalar path on: empty rows, sparse ER (two-pointer path), dense ER
/// (every pair adjacent somewhere), heavy-tailed BA (size-skewed rows
/// that trigger galloping), clustered WS, and an OSN-like graph with a
/// planted sybil region (the workload the paper's feature runs on).
std::vector<TimestampedGraph> regimes() {
  std::vector<TimestampedGraph> out;
  out.emplace_back(0);   // empty graph
  out.emplace_back(7);   // isolated nodes, no edges
  {
    TimestampedGraph star(20);
    for (NodeId v = 1; v < 20; ++v) star.add_edge(0, v, double(v));
    out.push_back(std::move(star));
  }
  {
    stats::Rng rng(11);
    out.push_back(erdos_renyi(120, 0.02, rng));
  }
  {
    stats::Rng rng(12);
    out.push_back(erdos_renyi(60, 0.5, rng));
  }
  {
    stats::Rng rng(13);
    out.push_back(barabasi_albert(200, 3, rng));
  }
  {
    stats::Rng rng(14);
    out.push_back(watts_strogatz(150, 6, 0.1, rng));
  }
  {
    stats::Rng rng(15);
    const TimestampedGraph honest = osn_like_graph({.nodes = 150}, rng);
    out.push_back(inject_sybil_community(honest, 30, 0.4, 12, rng));
  }
  return out;
}

const std::size_t kKValues[] = {2, 5, 50, 1000};

TEST(NeighborView, SortedRowsArePermutedChronologicalRows) {
  for (const TimestampedGraph& tg : regimes()) {
    const NeighborView view = NeighborView::from(tg);
    ASSERT_EQ(view.node_count(), tg.node_count());
    for (NodeId u = 0; u < view.node_count(); ++u) {
      const auto chrono = view.chronological(u);
      const auto sorted = view.sorted(u);
      ASSERT_EQ(chrono.size(), sorted.size());
      EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
      std::vector<NodeId> a(chrono.begin(), chrono.end());
      std::vector<NodeId> b(sorted.begin(), sorted.end());
      std::sort(a.begin(), a.end());
      EXPECT_EQ(a, b) << "node " << u;
      // The chronological row must match the underlying CSR row (the
      // sorted twin shares offsets, never reorders the original).
      const auto csr_row = view.csr().neighbors(u);
      EXPECT_TRUE(std::equal(chrono.begin(), chrono.end(), csr_row.begin(),
                             csr_row.end()));
    }
  }
}

TEST(NeighborView, FirstKIsChronologicalPrefixAndHasEdgeAgrees) {
  for (const TimestampedGraph& tg : regimes()) {
    const NeighborView view = NeighborView::from(tg);
    for (NodeId u = 0; u < view.node_count(); ++u) {
      const auto chrono = view.chronological(u);
      for (std::size_t k : kKValues) {
        const auto prefix = view.first_k(u, k);
        ASSERT_EQ(prefix.size(), std::min(k, chrono.size()));
        EXPECT_TRUE(std::equal(prefix.begin(), prefix.end(), chrono.begin()));
      }
      for (NodeId f : chrono) {
        EXPECT_TRUE(view.has_edge(u, f));
      }
    }
    // Out-of-range and absent lookups are well-defined.
    EXPECT_FALSE(view.has_edge(view.node_count() + 5, 0));
    if (view.node_count() >= 2) {
      const NodeId u = 0;
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const auto sorted = view.sorted(u);
        const bool present =
            std::binary_search(sorted.begin(), sorted.end(), v);
        EXPECT_EQ(view.has_edge(u, v), present);
      }
    }
  }
}

/// The headline property: the galloping view-based kernel (scalar and
/// batched, at 1 and 8 threads) returns the *bit-identical* double the
/// deprecated two-handle scalar path returns — both count links as
/// exact integers, so there is no tolerance here, only ==.
TEST(NeighborView, BatchedClusteringBitIdenticalToScalarPath) {
  for (const TimestampedGraph& tg : regimes()) {
    const CsrGraph csr = CsrGraph::from(tg);
    const NeighborView view = NeighborView::from(tg);
    std::vector<NodeId> subjects(view.node_count());
    for (NodeId u = 0; u < view.node_count(); ++u) subjects[u] = u;

    for (std::size_t k : kKValues) {
      std::vector<double> reference(subjects.size());
      for (std::size_t i = 0; i < subjects.size(); ++i) {
        reference[i] = first_k_clustering(tg, csr, subjects[i], k);
      }
      // Scalar view path (with and without caller scratch).
      ClusteringScratch scratch;
      for (std::size_t i = 0; i < subjects.size(); ++i) {
        const double plain = first_k_clustering(view, subjects[i], k);
        const double scratched =
            first_k_clustering(view, subjects[i], k, scratch);
        EXPECT_EQ(plain, reference[i]) << "k=" << k << " u=" << subjects[i];
        EXPECT_EQ(scratched, reference[i]);
      }
      // Batch path at 1 and 8 worker threads.
      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        core::set_thread_count(threads);
        const std::vector<double> batch =
            first_k_clustering_batch(view, subjects, k);
        core::set_thread_count(0);
        ASSERT_EQ(batch.size(), reference.size());
        for (std::size_t i = 0; i < subjects.size(); ++i) {
          EXPECT_EQ(batch[i], reference[i])
              << "k=" << k << " u=" << subjects[i] << " threads=" << threads;
        }
      }
    }
  }
}

TEST(NeighborView, BatchHandlesUnknownAndDuplicateSubjects) {
  stats::Rng rng(21);
  const TimestampedGraph tg = barabasi_albert(50, 2, rng);
  const NeighborView view = NeighborView::from(tg);
  // Subjects past node_count (streaming sweeps evaluate accounts the
  // snapshot has not seen yet) and repeated subjects must behave like
  // independent scalar calls.
  const std::vector<NodeId> subjects = {0, 49, 50, 1000, 3, 3, 0};
  const std::vector<double> batch = first_k_clustering_batch(view, subjects);
  ASSERT_EQ(batch.size(), subjects.size());
  for (std::size_t i = 0; i < subjects.size(); ++i) {
    EXPECT_EQ(batch[i], first_k_clustering(view, subjects[i]));
  }
  EXPECT_EQ(batch[2], 0.0);
  EXPECT_EQ(batch[3], 0.0);
}

}  // namespace
}  // namespace sybil::graph
