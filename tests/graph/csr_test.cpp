#include "graph/csr.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sybil::graph {
namespace {

TEST(Csr, FromTimestampedGraph) {
  TimestampedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const CsrGraph csr = CsrGraph::from(g);
  EXPECT_EQ(csr.node_count(), 4u);
  EXPECT_EQ(csr.edge_count(), 3u);
  EXPECT_EQ(csr.degree(1), 2u);
  EXPECT_TRUE(csr.has_edge(1, 2));
  EXPECT_FALSE(csr.has_edge(0, 3));
}

TEST(Csr, PreservesNeighborOrder) {
  TimestampedGraph g(4);
  g.add_edge(0, 3, 1.0);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 2, 3.0);
  const CsrGraph csr = CsrGraph::from(g);
  const auto nbrs = csr.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 3u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 2u);
}

TEST(Csr, FromEdgeList) {
  const std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {1, 2}};
  const CsrGraph csr = CsrGraph::from_edges(3, edges);
  EXPECT_EQ(csr.edge_count(), 2u);
  EXPECT_TRUE(csr.has_edge(2, 1));
  EXPECT_EQ(csr.degree(0), 1u);
}

TEST(Csr, FromEdgesRejectsBadInput) {
  EXPECT_THROW(CsrGraph::from_edges(
                   2, std::vector<std::pair<NodeId, NodeId>>{{0, 2}}),
               std::out_of_range);
  EXPECT_THROW(CsrGraph::from_edges(
                   2, std::vector<std::pair<NodeId, NodeId>>{{1, 1}}),
               std::invalid_argument);
}

TEST(Csr, EdgesRoundTrip) {
  TimestampedGraph g(5);
  g.add_edge(0, 4, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(1, 2, 1.0);
  const CsrGraph csr = CsrGraph::from(g);
  auto edges = csr.edges();
  std::sort(edges.begin(), edges.end());
  const std::vector<std::pair<NodeId, NodeId>> expected = {
      {0, 4}, {1, 2}, {2, 3}};
  EXPECT_EQ(edges, expected);
}

TEST(Csr, EmptyGraph) {
  const CsrGraph csr;
  EXPECT_EQ(csr.node_count(), 0u);
  EXPECT_EQ(csr.edge_count(), 0u);
}

TEST(Csr, IsolatedNodes) {
  TimestampedGraph g(10);
  g.add_edge(0, 9, 1.0);
  const CsrGraph csr = CsrGraph::from(g);
  for (NodeId u = 1; u < 9; ++u) EXPECT_EQ(csr.degree(u), 0u);
  EXPECT_TRUE(csr.neighbors(5).empty());
}

}  // namespace
}  // namespace sybil::graph
