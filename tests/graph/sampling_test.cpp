#include "graph/sampling.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/degree.h"
#include "graph/generators.h"

namespace sybil::graph {
namespace {

TEST(BfsSnowball, CoversConnectedRegion) {
  TimestampedGraph g(6);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(3, 4, 0);  // separate component
  const CsrGraph csr = CsrGraph::from(g);
  const auto sample = bfs_snowball(csr, 0, 10);
  const std::set<NodeId> got(sample.begin(), sample.end());
  EXPECT_EQ(got, (std::set<NodeId>{0, 1, 2}));
}

TEST(BfsSnowball, RespectsLimit) {
  stats::Rng rng(1);
  const CsrGraph g = CsrGraph::from(barabasi_albert(500, 3, rng));
  const auto sample = bfs_snowball(g, 0, 50);
  EXPECT_EQ(sample.size(), 50u);
  EXPECT_TRUE(bfs_snowball(g, 0, 0).empty());
}

TEST(BiasedSnowball, EmitsDistinctReachableNodes) {
  stats::Rng grng(2);
  const CsrGraph g = CsrGraph::from(barabasi_albert(300, 3, grng));
  stats::Rng rng(3);
  BiasedSnowballSampler sampler(g, 0, 1.0, rng);
  const auto sample = sampler.sample(100);
  EXPECT_EQ(sample.size(), 100u);
  const std::set<NodeId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(BiasedSnowball, PositiveBetaPrefersPopularNodes) {
  stats::Rng grng(4);
  const CsrGraph g = CsrGraph::from(barabasi_albert(2000, 3, grng));
  const double avg_degree =
      2.0 * static_cast<double>(g.edge_count()) / g.node_count();

  stats::Rng r1(5);
  BiasedSnowballSampler biased(g, 0, 2.0, r1);
  const auto hits = biased.sample(200);
  double mean_deg = 0.0;
  for (NodeId u : hits) mean_deg += g.degree(u);
  mean_deg /= static_cast<double>(hits.size());
  // Popularity-biased snowball should oversample high-degree nodes.
  EXPECT_GT(mean_deg, 1.5 * avg_degree);
}

TEST(BiasedSnowball, AcceptFilterSkipsButExpands) {
  stats::Rng grng(6);
  const CsrGraph g = CsrGraph::from(barabasi_albert(300, 3, grng));
  stats::Rng rng(7);
  BiasedSnowballSampler sampler(g, 0, 1.0, rng);
  const auto evens =
      sampler.sample(50, [](NodeId u) { return u % 2 == 0; });
  for (NodeId u : evens) EXPECT_EQ(u % 2, 0u);
  EXPECT_EQ(evens.size(), 50u);
}

TEST(BiasedSnowball, ExhaustsSmallComponent) {
  TimestampedGraph g(10);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  const CsrGraph csr = CsrGraph::from(g);
  stats::Rng rng(8);
  BiasedSnowballSampler sampler(csr, 0, 1.0, rng);
  const auto sample = sampler.sample(100);
  EXPECT_EQ(sample.size(), 3u);  // only the component is reachable
}

TEST(BiasedSnowball, RejectsBadSeed) {
  TimestampedGraph g(3);
  const CsrGraph csr = CsrGraph::from(g);
  stats::Rng rng(9);
  EXPECT_THROW(BiasedSnowballSampler(csr, 7, 1.0, rng), std::out_of_range);
}

TEST(UniformSample, DistinctAndInRange) {
  stats::Rng grng(10);
  const CsrGraph g = CsrGraph::from(erdos_renyi(100, 0.05, grng));
  stats::Rng rng(11);
  const auto sample = uniform_node_sample(g, 30, rng);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<NodeId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
}

TEST(DegreeBiasedSample, PrefersHubs) {
  stats::Rng grng(12);
  const CsrGraph g = CsrGraph::from(barabasi_albert(2000, 3, grng));
  stats::Rng rng(13);
  const auto biased = degree_biased_sample(g, 100, 2.0, rng);
  const auto uniform = uniform_node_sample(g, 100, rng);
  double bd = 0, ud = 0;
  for (NodeId u : biased) bd += g.degree(u);
  for (NodeId u : uniform) ud += g.degree(u);
  EXPECT_GT(bd / biased.size(), 2.0 * ud / uniform.size());
}

}  // namespace
}  // namespace sybil::graph
