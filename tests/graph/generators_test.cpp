#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/clustering.h"
#include "graph/components.h"
#include "graph/conductance.h"
#include "graph/csr.h"
#include "graph/degree.h"

namespace sybil::graph {
namespace {

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  stats::Rng rng(1);
  const auto g = erdos_renyi(1000, 0.01, rng);
  const double expected = 0.01 * 1000.0 * 999.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected,
              0.15 * expected);
}

TEST(ErdosRenyi, EdgeCasesAndErrors) {
  stats::Rng rng(2);
  EXPECT_EQ(erdos_renyi(100, 0.0, rng).edge_count(), 0u);
  EXPECT_THROW(erdos_renyi(10, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(10, 1.1, rng), std::invalid_argument);
}

TEST(ErdosRenyi, Deterministic) {
  stats::Rng r1(3), r2(3);
  const auto a = erdos_renyi(200, 0.05, r1);
  const auto b = erdos_renyi(200, 0.05, r2);
  EXPECT_EQ(a.edge_count(), b.edge_count());
}

TEST(BarabasiAlbert, DegreesAndConnectivity) {
  stats::Rng rng(4);
  const auto g = barabasi_albert(1000, 3, rng);
  const CsrGraph csr = CsrGraph::from(g);
  // Every non-seed node attaches with m links → min degree >= m... the
  // seed clique nodes have at least m as well.
  for (NodeId u = 0; u < csr.node_count(); ++u) {
    EXPECT_GE(csr.degree(u), 3u) << u;
  }
  EXPECT_EQ(connected_components(csr).count(), 1u);
  // Heavy tail: max degree far above the mean.
  NodeId max_deg = 0;
  for (NodeId u = 0; u < csr.node_count(); ++u) {
    max_deg = std::max(max_deg, csr.degree(u));
  }
  EXPECT_GT(max_deg, 30u);
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  stats::Rng rng(5);
  EXPECT_THROW(barabasi_albert(3, 3, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(10, 0, rng), std::invalid_argument);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  stats::Rng rng(6);
  const auto g = watts_strogatz(20, 4, 0.0, rng);
  const CsrGraph csr = CsrGraph::from(g);
  for (NodeId u = 0; u < 20; ++u) EXPECT_EQ(csr.degree(u), 4u);
  EXPECT_TRUE(csr.has_edge(0, 1));
  EXPECT_TRUE(csr.has_edge(0, 2));
  EXPECT_FALSE(csr.has_edge(0, 3));
}

TEST(WattsStrogatz, RewiringKeepsEdgeCount) {
  stats::Rng rng(7);
  const auto g = watts_strogatz(100, 6, 0.3, rng);
  EXPECT_EQ(g.edge_count(), 300u);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 4, 1.5, rng), std::invalid_argument);
}

TEST(OsnLike, ProducesSocialProperties) {
  stats::Rng rng(8);
  OsnGraphParams p{.nodes = 5000, .mean_links = 10.0,
                   .triadic_closure = 0.4, .pa_beta = 1.0};
  const auto g = osn_like_graph(p, rng);
  const CsrGraph csr = CsrGraph::from(g);
  const double avg_deg = 2.0 * static_cast<double>(csr.edge_count()) /
                         csr.node_count();
  EXPECT_GT(avg_deg, 8.0);
  EXPECT_LT(avg_deg, 25.0);
  // Clustered well above an equivalent random graph.
  const double cc = average_clustering(csr);
  EXPECT_GT(cc, 10.0 * avg_deg / csr.node_count());
  // Heavy-ish degree tail.
  NodeId max_deg = 0;
  for (NodeId u = 0; u < csr.node_count(); ++u) {
    max_deg = std::max(max_deg, csr.degree(u));
  }
  EXPECT_GT(max_deg, static_cast<NodeId>(5 * avg_deg));
}

TEST(OsnLike, RejectsTinyGraphs) {
  stats::Rng rng(9);
  EXPECT_THROW(osn_like_graph({.nodes = 2}, rng), std::invalid_argument);
  OsnGraphParams too_many_comms{.nodes = 10, .communities = 8};
  EXPECT_THROW(osn_like_graph(too_many_comms, rng), std::invalid_argument);
}

TEST(OsnLike, CommunityStructureRaisesModularity) {
  OsnGraphParams flat{.nodes = 4000, .mean_links = 8.0,
                      .triadic_closure = 0.2, .pa_beta = 1.0};
  OsnGraphParams regional = flat;
  regional.communities = 8;
  regional.community_affinity = 0.9;

  stats::Rng r1(10), r2(10);
  const CsrGraph flat_g = CsrGraph::from(osn_like_graph(flat, r1));
  const CsrGraph regional_g = CsrGraph::from(osn_like_graph(regional, r2));

  std::vector<std::uint32_t> labels(4000);
  for (NodeId v = 0; v < 4000; ++v) labels[v] = community_of(v, regional);
  const double q_regional = modularity(regional_g, labels);
  const double q_flat = modularity(flat_g, labels);
  EXPECT_GT(q_regional, 0.3);
  EXPECT_LT(q_flat, 0.1);
  // Still one connected graph (communities are not disconnected).
  EXPECT_EQ(connected_components(regional_g).count(), 1u);
}

TEST(InjectSybilCommunity, StructureIsTight) {
  stats::Rng rng(10);
  const auto honest = erdos_renyi(500, 0.02, rng);
  const auto combined =
      inject_sybil_community(honest, 50, 0.3, 25, rng);
  EXPECT_EQ(combined.node_count(), 550u);
  const CsrGraph csr = CsrGraph::from(combined);

  std::vector<bool> sybil_mask(550, false);
  for (NodeId s = 500; s < 550; ++s) sybil_mask[s] = true;
  const CutStats cut = cut_stats(csr, sybil_mask);
  EXPECT_EQ(cut.cut_edges, 25u);
  // Internal density 0.3 over C(50,2) = 1225 pairs ≈ 368 edges.
  EXPECT_GT(cut.internal_edges, 250u);
  EXPECT_LT(cut.internal_edges, 500u);
  // The injected region is "tight-knit": internal > cut — the classic
  // assumption the paper refutes for wild Sybils.
  EXPECT_GT(cut.internal_edges, cut.cut_edges);
  // Honest edges preserved.
  EXPECT_EQ(csr.edge_count(),
            honest.edge_count() + cut.internal_edges + cut.cut_edges);
}

}  // namespace
}  // namespace sybil::graph
