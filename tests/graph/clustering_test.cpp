#include "graph/clustering.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "stats/rng.h"

namespace sybil::graph {
namespace {

CsrGraph triangle_plus_tail() {
  // Triangle 0-1-2 plus pendant 3 on node 0.
  TimestampedGraph g(4);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 0, 2);
  g.add_edge(0, 3, 3);
  return CsrGraph::from(g);
}

TEST(Clustering, TriangleCounts) {
  const CsrGraph g = triangle_plus_tail();
  EXPECT_EQ(triangle_count(g), 1u);
}

TEST(Clustering, LocalCoefficients) {
  const CsrGraph g = triangle_plus_tail();
  // Node 0: 3 neighbors {1,2,3}, one link (1-2) → 2*1/(3*2) = 1/3.
  EXPECT_NEAR(local_clustering(g, 0), 1.0 / 3.0, 1e-12);
  // Node 1: neighbors {0,2} linked → 1.
  EXPECT_NEAR(local_clustering(g, 1), 1.0, 1e-12);
  // Node 3: degree 1 → 0.
  EXPECT_DOUBLE_EQ(local_clustering(g, 3), 0.0);
}

TEST(Clustering, CompleteGraphIsOne) {
  TimestampedGraph g(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.add_edge(u, v, 0);
  }
  const CsrGraph csr = CsrGraph::from(g);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_NEAR(local_clustering(csr, u), 1.0, 1e-12);
  }
  EXPECT_NEAR(transitivity(csr), 1.0, 1e-12);
  EXPECT_EQ(triangle_count(csr), 10u);
  EXPECT_NEAR(average_clustering(csr), 1.0, 1e-12);
}

TEST(Clustering, StarHasNoTriangles) {
  TimestampedGraph g(6);
  for (NodeId v = 1; v < 6; ++v) g.add_edge(0, v, 0);
  const CsrGraph csr = CsrGraph::from(g);
  EXPECT_EQ(triangle_count(csr), 0u);
  EXPECT_DOUBLE_EQ(local_clustering(csr, 0), 0.0);
  EXPECT_DOUBLE_EQ(transitivity(csr), 0.0);
}

TEST(Clustering, SubsetCoefficient) {
  const CsrGraph g = triangle_plus_tail();
  // Subset {1, 2}: linked → cc = 1.
  const std::vector<NodeId> linked = {1, 2};
  EXPECT_NEAR(clustering_of_subset(g, linked), 1.0, 1e-12);
  // Subset {1, 3}: not linked → 0.
  const std::vector<NodeId> unlinked = {1, 3};
  EXPECT_DOUBLE_EQ(clustering_of_subset(g, unlinked), 0.0);
  // Fewer than 2 friends → 0.
  const std::vector<NodeId> single = {1};
  EXPECT_DOUBLE_EQ(clustering_of_subset(g, single), 0.0);
}

TEST(Clustering, FirstKUsesChronologicalPrefix) {
  // Node 0 first friends with 1 and 2 (linked), later with 3 and 4
  // (unlinked): first-2 cc = 1, full cc smaller.
  TimestampedGraph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 2, 2.5);
  g.add_edge(0, 3, 3.0);
  g.add_edge(0, 4, 4.0);
  const CsrGraph csr = CsrGraph::from(g);
  EXPECT_NEAR(first_k_clustering(g, csr, 0, 2), 1.0, 1e-12);
  EXPECT_NEAR(first_k_clustering(g, csr, 0, 50),
              2.0 * 1.0 / (4.0 * 3.0), 1e-12);
}

TEST(Clustering, TransitivityOfTrianglePlusTail) {
  const CsrGraph g = triangle_plus_tail();
  // wedges: node0 C(3,2)=3, node1 1, node2 1, node3 0 → 5; 3*1/5.
  EXPECT_NEAR(transitivity(g), 0.6, 1e-12);
}

TEST(Clustering, TriadicClosureRaisesClustering) {
  stats::Rng rng1(5), rng2(5);
  OsnGraphParams low{.nodes = 3000, .mean_links = 8.0,
                     .triadic_closure = 0.0, .pa_beta = 1.0};
  OsnGraphParams high{.nodes = 3000, .mean_links = 8.0,
                      .triadic_closure = 0.6, .pa_beta = 1.0};
  const double cc_low = average_clustering(CsrGraph::from(osn_like_graph(low, rng1)));
  const double cc_high = average_clustering(CsrGraph::from(osn_like_graph(high, rng2)));
  EXPECT_GT(cc_high, 2.0 * cc_low);
}

}  // namespace
}  // namespace sybil::graph
