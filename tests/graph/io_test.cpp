#include "graph/io.h"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "graph/generators.h"
#include "io/error.h"
#include "stats/rng.h"

namespace sybil::graph {
namespace {

io::SnapshotErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const io::SnapshotError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a SnapshotError";
  return io::SnapshotErrorCode::kOpenFailed;
}

TEST(GraphIo, RoundTripPreservesStructureAndTimes) {
  stats::Rng rng(1);
  const auto original = erdos_renyi(100, 0.05, rng);
  std::stringstream buffer;
  save_edge_list(original, buffer);
  const auto loaded = load_edge_list(buffer);
  ASSERT_EQ(loaded.node_count(), original.node_count());
  ASSERT_EQ(loaded.edge_count(), original.edge_count());
  for (NodeId u = 0; u < original.node_count(); ++u) {
    for (const Neighbor& nb : original.neighbors(u)) {
      ASSERT_TRUE(loaded.has_edge(u, nb.node));
      EXPECT_DOUBLE_EQ(*loaded.edge_time(u, nb.node), nb.created_at);
    }
  }
}

TEST(GraphIo, LoadsEdgesWithoutTimestamps) {
  std::stringstream in("nodes 3\n0 1\n1 2\n");
  const auto g = load_edge_list(in);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(*g.edge_time(0, 1), 0.0);
}

TEST(GraphIo, SkipsBlankLines) {
  std::stringstream in("nodes 2\n\n0 1 3.5\n\n");
  const auto g = load_edge_list(in);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(*g.edge_time(0, 1), 3.5);
}

TEST(GraphIo, RejectsMissingHeader) {
  std::stringstream in("0 1\n");
  EXPECT_THROW(load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::stringstream in("nodes 2\n0 5\n");
  EXPECT_THROW(load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::stringstream in("nodes 2\n1 1\n");
  EXPECT_THROW(load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsGarbageLine) {
  std::stringstream in("nodes 2\nhello world\n");
  EXPECT_THROW(load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsDuplicateEdge) {
  std::stringstream in("nodes 3\n0 1\n1 2\n1 0 5.0\n");
  EXPECT_EQ(code_of([&] { load_edge_list(in); }),
            io::SnapshotErrorCode::kFormatViolation);
}

TEST(GraphIo, RejectsTrailingJunkAfterEdge) {
  std::stringstream in("nodes 2\n0 1 3.5 surprise\n");
  EXPECT_EQ(code_of([&] { load_edge_list(in); }),
            io::SnapshotErrorCode::kMalformedSection);
}

TEST(GraphIo, RejectsNonNumericTimestamp) {
  std::stringstream in("nodes 2\n0 1 soon\n");
  EXPECT_EQ(code_of([&] { load_edge_list(in); }),
            io::SnapshotErrorCode::kMalformedSection);
}

TEST(GraphIo, RejectsTrailingJunkAfterHeader) {
  std::stringstream in("nodes 2 extra\n0 1\n");
  EXPECT_EQ(code_of([&] { load_edge_list(in); }),
            io::SnapshotErrorCode::kMalformedSection);
}

TEST(GraphIo, MissingFileIsOpenFailed) {
  EXPECT_EQ(code_of([] { load_edge_list("/nonexistent/sybil.edges"); }),
            io::SnapshotErrorCode::kOpenFailed);
}

TEST(GraphIo, FileRoundTrip) {
  stats::Rng rng(2);
  const auto g = erdos_renyi(50, 0.1, rng);
  const std::string path = ::testing::TempDir() + "/sybil_io_test.edges";
  save_edge_list(g, path);
  const auto loaded = load_edge_list(path);
  EXPECT_EQ(loaded.edge_count(), g.edge_count());
  EXPECT_THROW(load_edge_list(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace sybil::graph
