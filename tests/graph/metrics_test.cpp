#include "graph/metrics.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace sybil::graph {
namespace {

CsrGraph star(NodeId leaves) {
  TimestampedGraph g(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) g.add_edge(0, v, 0);
  return CsrGraph::from(g);
}

TEST(Assortativity, StarIsPerfectlyDisassortative) {
  EXPECT_NEAR(degree_assortativity(star(10)), -1.0, 1e-9);
}

TEST(Assortativity, ErrorCases) {
  TimestampedGraph empty(3);
  EXPECT_THROW(degree_assortativity(CsrGraph::from(empty)),
               std::invalid_argument);
  // Ring: all degrees equal → undefined.
  TimestampedGraph ring(4);
  for (NodeId u = 0; u < 4; ++u) ring.add_edge(u, (u + 1) % 4, 0);
  EXPECT_THROW(degree_assortativity(CsrGraph::from(ring)),
               std::domain_error);
}

TEST(Assortativity, BaGraphIsNearNeutralOrDisassortative) {
  stats::Rng rng(1);
  const auto g = CsrGraph::from(barabasi_albert(3000, 3, rng));
  const double r = degree_assortativity(g);
  EXPECT_LT(r, 0.05);   // BA graphs are slightly disassortative
  EXPECT_GT(r, -0.5);
}

TEST(CoreNumbers, KnownDecomposition) {
  // Triangle (3-clique would be 2-core) with a pendant chain.
  TimestampedGraph g(5);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 0, 0);
  g.add_edge(2, 3, 0);
  g.add_edge(3, 4, 0);
  const auto core = core_numbers(CsrGraph::from(g));
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(core[4], 1u);
}

TEST(CoreNumbers, CliqueCore) {
  TimestampedGraph g(6);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.add_edge(u, v, 0);
  }
  g.add_edge(0, 5, 0);  // pendant
  const auto core = core_numbers(CsrGraph::from(g));
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(core[u], 4u);
  EXPECT_EQ(core[5], 1u);
}

TEST(CoreNumbers, CoreIsAtMostDegree) {
  stats::Rng rng(2);
  const auto g = CsrGraph::from(erdos_renyi(500, 0.02, rng));
  const auto core = core_numbers(g);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_LE(core[u], g.degree(u));
  }
}

TEST(BfsDistances, PathGraph) {
  TimestampedGraph g(4);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 3, 0);
  const auto dist = bfs_distances(CsrGraph::from(g), 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[3], 3u);
}

TEST(BfsDistances, DisconnectedIsUnreachable) {
  TimestampedGraph g(3);
  g.add_edge(0, 1, 0);
  const auto dist = bfs_distances(CsrGraph::from(g), 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(PathStats, StarHasSmallDistances) {
  stats::Rng rng(3);
  const auto stats = sampled_path_stats(star(50), 10, rng);
  EXPECT_GT(stats.reachable_pairs, 0u);
  EXPECT_LE(stats.max_distance, 2u);
  EXPECT_GT(stats.mean_distance, 1.0);
  EXPECT_LT(stats.mean_distance, 2.0);
}

TEST(PathStats, SmallWorldGraphHasShortPaths) {
  stats::Rng rng(4);
  const auto g = CsrGraph::from(barabasi_albert(5000, 4, rng));
  stats::Rng sample_rng(5);
  const auto stats = sampled_path_stats(g, 8, sample_rng);
  EXPECT_LT(stats.mean_distance, 6.0);  // log-ish diameter
}

}  // namespace
}  // namespace sybil::graph
