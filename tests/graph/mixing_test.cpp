#include "graph/mixing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace sybil::graph {
namespace {

TEST(Lambda2, CompleteGraphMixesInstantly) {
  TimestampedGraph g(20);
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) g.add_edge(u, v, 0);
  }
  // K_n lazy walk: λ₂ = 1/2 - 1/(2(n-1)) ≈ 0.474.
  const double l2 = lazy_walk_lambda2(CsrGraph::from(g), 200);
  EXPECT_NEAR(l2, 0.5 - 0.5 / 19.0, 0.01);
}

TEST(Lambda2, CycleMixesSlowly) {
  const NodeId n = 64;
  TimestampedGraph g(n);
  for (NodeId u = 0; u < n; ++u) g.add_edge(u, (u + 1) % n, 0);
  // Lazy cycle: λ₂ = (1 + cos(2π/n))/2 → very close to 1.
  const double expected = 0.5 * (1.0 + std::cos(2.0 * M_PI / n));
  EXPECT_NEAR(lazy_walk_lambda2(CsrGraph::from(g), 4000), expected, 0.002);
}

TEST(Lambda2, BarbellHasTinyGap) {
  // Two dense communities with one bridge: λ₂ ≈ 1.
  stats::Rng rng(1);
  TimestampedGraph g(40);
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) g.add_edge(u, v, 0);
  }
  for (NodeId u = 20; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) g.add_edge(u, v, 0);
  }
  g.add_edge(0, 20, 0);
  const double l2 = lazy_walk_lambda2(CsrGraph::from(g), 500);
  EXPECT_GT(l2, 0.97);
}

TEST(Lambda2, ExpanderLikeGraphHasLargeGap) {
  stats::Rng rng(2);
  const auto g = CsrGraph::from(erdos_renyi(500, 0.05, rng));
  // Dense ER is an excellent expander; lazy λ₂ stays near 1/2.
  EXPECT_LT(lazy_walk_lambda2(g, 300), 0.75);
}

TEST(Lambda2, Errors) {
  TimestampedGraph g(1);
  EXPECT_THROW(lazy_walk_lambda2(CsrGraph::from(g)), std::invalid_argument);
}

TEST(Escape, TightRegionTrapsWalks) {
  stats::Rng rng(3);
  const auto base = barabasi_albert(1000, 4, rng);
  const auto combined = inject_sybil_community(base, 100, 0.3, 5, rng);
  const auto g = CsrGraph::from(combined);
  std::vector<NodeId> members;
  for (NodeId v = 1000; v < 1100; ++v) members.push_back(v);
  stats::Rng walk_rng(4);
  const double p = escape_probability(g, members, 20, 4000, walk_rng);
  EXPECT_LT(p, 0.15);  // behind a 5-edge cut, walks stay inside
}

TEST(Escape, OpenRegionLeaksWalks) {
  stats::Rng rng(5);
  const auto g = CsrGraph::from(barabasi_albert(1000, 4, rng));
  // An arbitrary 100-node subset of a well-mixed graph leaks immediately.
  std::vector<NodeId> members;
  for (NodeId v = 0; v < 100; ++v) members.push_back(v * 7);
  stats::Rng walk_rng(6);
  const double p = escape_probability(g, members, 20, 4000, walk_rng);
  EXPECT_GT(p, 0.7);
}

TEST(Escape, Errors) {
  stats::Rng rng(7);
  const auto g = CsrGraph::from(erdos_renyi(10, 0.5, rng));
  stats::Rng walk_rng(8);
  EXPECT_THROW(escape_probability(g, {}, 5, 10, walk_rng),
               std::invalid_argument);
  EXPECT_THROW(escape_probability(g, {0}, 5, 0, walk_rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace sybil::graph
