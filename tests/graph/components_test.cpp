#include "graph/components.h"

#include <gtest/gtest.h>

#include <queue>

#include "graph/generators.h"
#include "stats/rng.h"

namespace sybil::graph {
namespace {

TEST(UnionFind, BasicProperties) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_size(0), 2u);
  EXPECT_EQ(uf.set_size(4), 1u);
  uf.unite(1, 3);
  EXPECT_EQ(uf.set_size(2), 4u);
}

TEST(Components, TwoTriangles) {
  TimestampedGraph g(7);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 0, 0);
  g.add_edge(3, 4, 0);
  g.add_edge(4, 5, 0);
  // node 6 isolated
  const auto comps = connected_components(CsrGraph::from(g));
  EXPECT_EQ(comps.count(), 3u);
  EXPECT_EQ(comps.label[0], comps.label[2]);
  EXPECT_EQ(comps.label[3], comps.label[5]);
  EXPECT_NE(comps.label[0], comps.label[3]);
  EXPECT_EQ(comps.size[comps.largest()], 3u);
}

TEST(Components, MembersAndOrdering) {
  TimestampedGraph g(5);
  g.add_edge(0, 1, 0);
  g.add_edge(2, 3, 0);
  g.add_edge(3, 4, 0);
  const auto comps = connected_components(CsrGraph::from(g));
  const auto by_size = comps.by_size_desc();
  EXPECT_EQ(comps.size[by_size[0]], 3u);
  EXPECT_EQ(comps.size[by_size[1]], 2u);
  const auto members = comps.members(comps.largest());
  EXPECT_EQ(members.size(), 3u);
}

TEST(Components, MaskedDecomposition) {
  // Path 0-1-2-3; mask out node 1 → components {0}, {2,3}.
  TimestampedGraph g(4);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 3, 0);
  const std::vector<bool> mask = {true, false, true, true};
  const auto comps = connected_components_masked(CsrGraph::from(g), mask);
  EXPECT_EQ(comps.count(), 2u);
  EXPECT_EQ(comps.label[1], Components::kNone);
  EXPECT_EQ(comps.label[2], comps.label[3]);
  EXPECT_NE(comps.label[0], comps.label[2]);
}

TEST(Components, MaskSizeMismatchThrows) {
  TimestampedGraph g(2);
  EXPECT_THROW(connected_components_masked(CsrGraph::from(g),
                                           std::vector<bool>{true}),
               std::invalid_argument);
}

/// Property: component labels agree with BFS reachability on random
/// graphs across several densities.
class ComponentsVsBfs : public ::testing::TestWithParam<double> {};

TEST_P(ComponentsVsBfs, AgreesWithBfs) {
  stats::Rng rng(99);
  const TimestampedGraph tg = erdos_renyi(200, GetParam(), rng);
  const CsrGraph g = CsrGraph::from(tg);
  const auto comps = connected_components(g);

  // BFS from node 0; everything reached must share node 0's label, and
  // nothing else may.
  std::vector<bool> reached(g.node_count(), false);
  std::queue<NodeId> q;
  reached[0] = true;
  q.push(0);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.neighbors(u)) {
      if (!reached[v]) {
        reached[v] = true;
        q.push(v);
      }
    }
  }
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_EQ(reached[u], comps.label[u] == comps.label[0]) << "node " << u;
  }
  // Sizes sum to node count.
  std::uint64_t total = 0;
  for (auto s : comps.size) total += s;
  EXPECT_EQ(total, g.node_count());
}

INSTANTIATE_TEST_SUITE_P(Densities, ComponentsVsBfs,
                         ::testing::Values(0.002, 0.01, 0.05, 0.2));

}  // namespace
}  // namespace sybil::graph
