#include "graph/degree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "stats/rng.h"

namespace sybil::graph {
namespace {

CsrGraph path4() {
  TimestampedGraph g(4);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 3, 0);
  return CsrGraph::from(g);
}

TEST(Degree, Sequences) {
  const CsrGraph g = path4();
  const auto all = degree_sequence(g);
  const std::vector<double> expected = {1.0, 2.0, 2.0, 1.0};
  EXPECT_EQ(all, expected);
  const std::vector<NodeId> subset = {1, 3};
  const auto sub = degree_sequence(g, subset);
  EXPECT_EQ(sub, (std::vector<double>{2.0, 1.0}));
}

TEST(Degree, MaskedSequence) {
  const CsrGraph g = path4();
  // Mask {0, 2}: node 1's masked degree = 2, node 3's = 1... node 3's
  // only neighbor is 2 which is masked → 1.
  const std::vector<bool> mask = {true, false, true, false};
  const std::vector<NodeId> nodes = {1, 3};
  const auto seq = masked_degree_sequence(g, nodes, mask);
  EXPECT_EQ(seq, (std::vector<double>{2.0, 1.0}));
  EXPECT_THROW(masked_degree_sequence(g, nodes, std::vector<bool>{true}),
               std::invalid_argument);
}

TEST(Degree, Histogram) {
  const CsrGraph g = path4();
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 3u);  // degrees 0..2
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 2u);
}

TEST(Degree, PowerLawFitRecoversExponent) {
  // Synthetic degrees sampled from a pure power law with alpha = 2.5.
  stats::Rng rng(7);
  std::vector<double> degrees;
  for (int i = 0; i < 50000; ++i) {
    // Inverse-CDF sampling for continuous Pareto with x_min = 1.
    degrees.push_back(std::pow(1.0 - rng.uniform(), -1.0 / 1.5));
  }
  EXPECT_NEAR(fit_power_law_alpha(degrees, 1.0), 2.5, 0.05);
}

TEST(Degree, PowerLawFitErrors) {
  EXPECT_THROW(fit_power_law_alpha(std::vector<double>{1.0, 2.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(fit_power_law_alpha(std::vector<double>{1.0}, 1.0),
               std::domain_error);
}

TEST(Degree, BarabasiAlbertIsHeavyTailed) {
  stats::Rng rng(11);
  const CsrGraph g = CsrGraph::from(barabasi_albert(5000, 3, rng));
  const auto degs = degree_sequence(g);
  const double alpha = fit_power_law_alpha(degs, 5.0);
  // BA exponent is 3 asymptotically; accept a loose band.
  EXPECT_GT(alpha, 2.0);
  EXPECT_LT(alpha, 4.5);
}

}  // namespace
}  // namespace sybil::graph
