#include "graph/conductance.h"

#include <gtest/gtest.h>

namespace sybil::graph {
namespace {

CsrGraph barbell() {
  // Two triangles joined by one bridge edge: {0,1,2} - {3,4,5}.
  TimestampedGraph g(6);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 0, 0);
  g.add_edge(3, 4, 0);
  g.add_edge(4, 5, 0);
  g.add_edge(5, 3, 0);
  g.add_edge(2, 3, 0);
  return CsrGraph::from(g);
}

TEST(CutStats, BarbellLeftHalf) {
  const CsrGraph g = barbell();
  const std::vector<bool> mask = {true, true, true, false, false, false};
  const CutStats s = cut_stats(g, mask);
  EXPECT_EQ(s.internal_edges, 3u);
  EXPECT_EQ(s.cut_edges, 1u);
  EXPECT_EQ(s.volume, 7u);  // degrees 2+2+3
  // conductance = 1 / min(7, 14-7) = 1/7.
  EXPECT_NEAR(s.conductance(total_volume(g)), 1.0 / 7.0, 1e-12);
}

TEST(CutStats, MemberListOverload) {
  const CsrGraph g = barbell();
  const std::vector<NodeId> members = {3, 4, 5};
  const CutStats s = cut_stats(g, members);
  EXPECT_EQ(s.internal_edges, 3u);
  EXPECT_EQ(s.cut_edges, 1u);
}

TEST(CutStats, WholeGraphHasZeroCut) {
  const CsrGraph g = barbell();
  const std::vector<bool> all(6, true);
  const CutStats s = cut_stats(g, all);
  EXPECT_EQ(s.cut_edges, 0u);
  EXPECT_EQ(s.internal_edges, g.edge_count());
  EXPECT_DOUBLE_EQ(s.conductance(total_volume(g)), 0.0);
}

TEST(CutStats, EmptySet) {
  const CsrGraph g = barbell();
  const std::vector<bool> none(6, false);
  const CutStats s = cut_stats(g, none);
  EXPECT_EQ(s.volume, 0u);
  EXPECT_EQ(s.cut_edges, 0u);
}

TEST(CutStats, MaskSizeMismatch) {
  const CsrGraph g = barbell();
  EXPECT_THROW(cut_stats(g, std::vector<bool>{true}), std::invalid_argument);
}

TEST(Modularity, PerfectSplitBeatsRandomLabels) {
  const CsrGraph g = barbell();
  const std::vector<std::uint32_t> split = {0, 0, 0, 1, 1, 1};
  const std::vector<std::uint32_t> mixed = {0, 1, 0, 1, 0, 1};
  EXPECT_GT(modularity(g, split), modularity(g, mixed));
  EXPECT_GT(modularity(g, split), 0.3);
}

TEST(Modularity, SingleCommunityIsZero) {
  const CsrGraph g = barbell();
  const std::vector<std::uint32_t> one(6, 0);
  EXPECT_NEAR(modularity(g, one), 0.0, 1e-12);
}

TEST(Modularity, IgnoresUnlabeled) {
  const CsrGraph g = barbell();
  std::vector<std::uint32_t> labels(6, kNoLabel);
  EXPECT_DOUBLE_EQ(modularity(g, labels), 0.0);
  EXPECT_THROW(modularity(g, std::vector<std::uint32_t>{0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sybil::graph
