#include "graph/graph.h"

#include <gtest/gtest.h>

namespace sybil::graph {
namespace {

TEST(TimestampedGraph, StartsEmpty) {
  TimestampedGraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(TimestampedGraph, AddNodesAndEdges) {
  TimestampedGraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1, 1.0));
  EXPECT_TRUE(g.add_edge(1, 2, 2.0));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(TimestampedGraph, RejectsSelfLoopsAndDuplicates) {
  TimestampedGraph g(2);
  EXPECT_FALSE(g.add_edge(0, 0, 1.0));
  EXPECT_TRUE(g.add_edge(0, 1, 1.0));
  EXPECT_FALSE(g.add_edge(0, 1, 2.0));
  EXPECT_FALSE(g.add_edge(1, 0, 3.0));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(TimestampedGraph, EdgeTimesAreSymmetric) {
  TimestampedGraph g(2);
  g.add_edge(0, 1, 7.5);
  ASSERT_TRUE(g.edge_time(0, 1).has_value());
  EXPECT_DOUBLE_EQ(*g.edge_time(0, 1), 7.5);
  EXPECT_DOUBLE_EQ(*g.edge_time(1, 0), 7.5);
  EXPECT_FALSE(g.edge_time(0, 0).has_value());
}

TEST(TimestampedGraph, NeighborsKeepInsertionOrder) {
  TimestampedGraph g(4);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 3, 3.0);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].node, 2u);
  EXPECT_EQ(nbrs[1].node, 1u);
  EXPECT_EQ(nbrs[2].node, 3u);
  EXPECT_DOUBLE_EQ(nbrs[0].created_at, 1.0);
}

TEST(TimestampedGraph, WeakFlagStored) {
  TimestampedGraph g(3);
  g.add_edge(0, 1, 1.0, /*weak=*/true);
  g.add_edge(0, 2, 2.0, /*weak=*/false);
  EXPECT_TRUE(g.neighbors(0)[0].weak);
  EXPECT_FALSE(g.neighbors(0)[1].weak);
  EXPECT_TRUE(g.neighbors(1)[0].weak);  // symmetric
}

TEST(TimestampedGraph, AddNodeGrows) {
  TimestampedGraph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  g.ensure_nodes(5);
  EXPECT_EQ(g.node_count(), 5u);
  g.ensure_nodes(2);  // never shrinks
  EXPECT_EQ(g.node_count(), 5u);
}

}  // namespace
}  // namespace sybil::graph
