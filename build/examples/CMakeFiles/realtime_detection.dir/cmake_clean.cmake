file(REMOVE_RECURSE
  "CMakeFiles/realtime_detection.dir/realtime_detection.cpp.o"
  "CMakeFiles/realtime_detection.dir/realtime_detection.cpp.o.d"
  "realtime_detection"
  "realtime_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
