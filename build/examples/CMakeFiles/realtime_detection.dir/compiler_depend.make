# Empty compiler generated dependencies file for realtime_detection.
# This may be replaced when dependencies are built.
