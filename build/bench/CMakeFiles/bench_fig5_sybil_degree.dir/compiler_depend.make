# Empty compiler generated dependencies file for bench_fig5_sybil_degree.
# This may be replaced when dependencies are built.
