file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sybil_degree.dir/bench_fig5_sybil_degree.cpp.o"
  "CMakeFiles/bench_fig5_sybil_degree.dir/bench_fig5_sybil_degree.cpp.o.d"
  "bench_fig5_sybil_degree"
  "bench_fig5_sybil_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sybil_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
