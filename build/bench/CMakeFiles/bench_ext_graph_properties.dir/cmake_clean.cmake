file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_graph_properties.dir/bench_ext_graph_properties.cpp.o"
  "CMakeFiles/bench_ext_graph_properties.dir/bench_ext_graph_properties.cpp.o.d"
  "bench_ext_graph_properties"
  "bench_ext_graph_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_graph_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
