# Empty dependencies file for bench_ext_graph_properties.
# This may be replaced when dependencies are built.
