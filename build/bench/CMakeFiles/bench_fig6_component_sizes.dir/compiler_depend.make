# Empty compiler generated dependencies file for bench_fig6_component_sizes.
# This may be replaced when dependencies are built.
