# Empty compiler generated dependencies file for bench_fig9_component_degree.
# This may be replaced when dependencies are built.
