file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_component_degree.dir/bench_fig9_component_degree.cpp.o"
  "CMakeFiles/bench_fig9_component_degree.dir/bench_fig9_component_degree.cpp.o.d"
  "bench_fig9_component_degree"
  "bench_fig9_component_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_component_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
