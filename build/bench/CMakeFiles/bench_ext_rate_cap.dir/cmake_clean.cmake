file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rate_cap.dir/bench_ext_rate_cap.cpp.o"
  "CMakeFiles/bench_ext_rate_cap.dir/bench_ext_rate_cap.cpp.o.d"
  "bench_ext_rate_cap"
  "bench_ext_rate_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rate_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
