file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_incoming_accept.dir/bench_fig3_incoming_accept.cpp.o"
  "CMakeFiles/bench_fig3_incoming_accept.dir/bench_fig3_incoming_accept.cpp.o.d"
  "bench_fig3_incoming_accept"
  "bench_fig3_incoming_accept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_incoming_accept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
