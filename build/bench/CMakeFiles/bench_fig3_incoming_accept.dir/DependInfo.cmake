
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_incoming_accept.cpp" "bench/CMakeFiles/bench_fig3_incoming_accept.dir/bench_fig3_incoming_accept.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_incoming_accept.dir/bench_fig3_incoming_accept.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sybil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/sybil_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/sybil_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/osn/CMakeFiles/sybil_osn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sybil_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sybil_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sybil_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
