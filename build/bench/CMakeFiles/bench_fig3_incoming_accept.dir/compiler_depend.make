# Empty compiler generated dependencies file for bench_fig3_incoming_accept.
# This may be replaced when dependencies are built.
