file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_outgoing_accept.dir/bench_fig2_outgoing_accept.cpp.o"
  "CMakeFiles/bench_fig2_outgoing_accept.dir/bench_fig2_outgoing_accept.cpp.o.d"
  "bench_fig2_outgoing_accept"
  "bench_fig2_outgoing_accept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_outgoing_accept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
