# Empty dependencies file for bench_fig2_outgoing_accept.
# This may be replaced when dependencies are built.
