# Empty compiler generated dependencies file for bench_fig1_invitation_frequency.
# This may be replaced when dependencies are built.
