file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_clustering_coefficient.dir/bench_fig4_clustering_coefficient.cpp.o"
  "CMakeFiles/bench_fig4_clustering_coefficient.dir/bench_fig4_clustering_coefficient.cpp.o.d"
  "bench_fig4_clustering_coefficient"
  "bench_fig4_clustering_coefficient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_clustering_coefficient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
