# Empty compiler generated dependencies file for bench_ext_honeypot.
# This may be replaced when dependencies are built.
