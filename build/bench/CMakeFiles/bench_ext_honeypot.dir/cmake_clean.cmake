file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_honeypot.dir/bench_ext_honeypot.cpp.o"
  "CMakeFiles/bench_ext_honeypot.dir/bench_ext_honeypot.cpp.o.d"
  "bench_ext_honeypot"
  "bench_ext_honeypot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_honeypot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
