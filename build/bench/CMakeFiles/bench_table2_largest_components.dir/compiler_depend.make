# Empty compiler generated dependencies file for bench_table2_largest_components.
# This may be replaced when dependencies are built.
