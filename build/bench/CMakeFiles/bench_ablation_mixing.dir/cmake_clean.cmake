file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mixing.dir/bench_ablation_mixing.cpp.o"
  "CMakeFiles/bench_ablation_mixing.dir/bench_ablation_mixing.cpp.o.d"
  "bench_ablation_mixing"
  "bench_ablation_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
