# Empty compiler generated dependencies file for sybil_stats_tests.
# This may be replaced when dependencies are built.
