file(REMOVE_RECURSE
  "CMakeFiles/sybil_stats_tests.dir/stats/cdf_test.cpp.o"
  "CMakeFiles/sybil_stats_tests.dir/stats/cdf_test.cpp.o.d"
  "CMakeFiles/sybil_stats_tests.dir/stats/distributions_test.cpp.o"
  "CMakeFiles/sybil_stats_tests.dir/stats/distributions_test.cpp.o.d"
  "CMakeFiles/sybil_stats_tests.dir/stats/rng_test.cpp.o"
  "CMakeFiles/sybil_stats_tests.dir/stats/rng_test.cpp.o.d"
  "CMakeFiles/sybil_stats_tests.dir/stats/summary_test.cpp.o"
  "CMakeFiles/sybil_stats_tests.dir/stats/summary_test.cpp.o.d"
  "sybil_stats_tests"
  "sybil_stats_tests.pdb"
  "sybil_stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
