file(REMOVE_RECURSE
  "CMakeFiles/sybil_detectors_tests.dir/detectors/detectors_test.cpp.o"
  "CMakeFiles/sybil_detectors_tests.dir/detectors/detectors_test.cpp.o.d"
  "CMakeFiles/sybil_detectors_tests.dir/detectors/sybilinfer_mcmc_test.cpp.o"
  "CMakeFiles/sybil_detectors_tests.dir/detectors/sybilinfer_mcmc_test.cpp.o.d"
  "sybil_detectors_tests"
  "sybil_detectors_tests.pdb"
  "sybil_detectors_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_detectors_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
