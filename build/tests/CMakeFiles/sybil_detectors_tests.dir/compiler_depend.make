# Empty compiler generated dependencies file for sybil_detectors_tests.
# This may be replaced when dependencies are built.
