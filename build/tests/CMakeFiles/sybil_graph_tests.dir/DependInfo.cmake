
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/clustering_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/clustering_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/clustering_test.cpp.o.d"
  "/root/repo/tests/graph/components_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/components_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/components_test.cpp.o.d"
  "/root/repo/tests/graph/conductance_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/conductance_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/conductance_test.cpp.o.d"
  "/root/repo/tests/graph/csr_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/csr_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/csr_test.cpp.o.d"
  "/root/repo/tests/graph/degree_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/degree_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/degree_test.cpp.o.d"
  "/root/repo/tests/graph/generators_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/generators_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/generators_test.cpp.o.d"
  "/root/repo/tests/graph/graph_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/graph_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/graph_test.cpp.o.d"
  "/root/repo/tests/graph/io_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/io_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/io_test.cpp.o.d"
  "/root/repo/tests/graph/maxflow_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/maxflow_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/maxflow_test.cpp.o.d"
  "/root/repo/tests/graph/metrics_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/metrics_test.cpp.o.d"
  "/root/repo/tests/graph/mixing_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/mixing_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/mixing_test.cpp.o.d"
  "/root/repo/tests/graph/sampling_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/sampling_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/sampling_test.cpp.o.d"
  "/root/repo/tests/graph/walks_test.cpp" "tests/CMakeFiles/sybil_graph_tests.dir/graph/walks_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_graph_tests.dir/graph/walks_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sybil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/sybil_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/sybil_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/osn/CMakeFiles/sybil_osn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sybil_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sybil_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sybil_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
