file(REMOVE_RECURSE
  "CMakeFiles/sybil_graph_tests.dir/graph/clustering_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/clustering_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/components_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/components_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/conductance_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/conductance_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/csr_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/csr_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/degree_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/degree_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/generators_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/generators_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/graph_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/graph_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/io_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/io_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/maxflow_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/maxflow_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/metrics_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/metrics_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/mixing_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/mixing_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/sampling_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/sampling_test.cpp.o.d"
  "CMakeFiles/sybil_graph_tests.dir/graph/walks_test.cpp.o"
  "CMakeFiles/sybil_graph_tests.dir/graph/walks_test.cpp.o.d"
  "sybil_graph_tests"
  "sybil_graph_tests.pdb"
  "sybil_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
