# Empty compiler generated dependencies file for sybil_graph_tests.
# This may be replaced when dependencies are built.
