# Empty compiler generated dependencies file for sybil_integration_tests.
# This may be replaced when dependencies are built.
