file(REMOVE_RECURSE
  "CMakeFiles/sybil_integration_tests.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/sybil_integration_tests.dir/integration/pipeline_test.cpp.o.d"
  "sybil_integration_tests"
  "sybil_integration_tests.pdb"
  "sybil_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
