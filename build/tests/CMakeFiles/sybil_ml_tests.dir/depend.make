# Empty dependencies file for sybil_ml_tests.
# This may be replaced when dependencies are built.
