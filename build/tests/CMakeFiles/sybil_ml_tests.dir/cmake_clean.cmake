file(REMOVE_RECURSE
  "CMakeFiles/sybil_ml_tests.dir/ml/dataset_io_test.cpp.o"
  "CMakeFiles/sybil_ml_tests.dir/ml/dataset_io_test.cpp.o.d"
  "CMakeFiles/sybil_ml_tests.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/sybil_ml_tests.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/sybil_ml_tests.dir/ml/kfold_test.cpp.o"
  "CMakeFiles/sybil_ml_tests.dir/ml/kfold_test.cpp.o.d"
  "CMakeFiles/sybil_ml_tests.dir/ml/logistic_test.cpp.o"
  "CMakeFiles/sybil_ml_tests.dir/ml/logistic_test.cpp.o.d"
  "CMakeFiles/sybil_ml_tests.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/sybil_ml_tests.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/sybil_ml_tests.dir/ml/roc_test.cpp.o"
  "CMakeFiles/sybil_ml_tests.dir/ml/roc_test.cpp.o.d"
  "CMakeFiles/sybil_ml_tests.dir/ml/scaler_test.cpp.o"
  "CMakeFiles/sybil_ml_tests.dir/ml/scaler_test.cpp.o.d"
  "CMakeFiles/sybil_ml_tests.dir/ml/svm_test.cpp.o"
  "CMakeFiles/sybil_ml_tests.dir/ml/svm_test.cpp.o.d"
  "sybil_ml_tests"
  "sybil_ml_tests.pdb"
  "sybil_ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
