# Empty dependencies file for sybil_core_tests.
# This may be replaced when dependencies are built.
