file(REMOVE_RECURSE
  "CMakeFiles/sybil_core_tests.dir/core/adaptive_test.cpp.o"
  "CMakeFiles/sybil_core_tests.dir/core/adaptive_test.cpp.o.d"
  "CMakeFiles/sybil_core_tests.dir/core/edge_order_test.cpp.o"
  "CMakeFiles/sybil_core_tests.dir/core/edge_order_test.cpp.o.d"
  "CMakeFiles/sybil_core_tests.dir/core/features_test.cpp.o"
  "CMakeFiles/sybil_core_tests.dir/core/features_test.cpp.o.d"
  "CMakeFiles/sybil_core_tests.dir/core/realtime_test.cpp.o"
  "CMakeFiles/sybil_core_tests.dir/core/realtime_test.cpp.o.d"
  "CMakeFiles/sybil_core_tests.dir/core/stream_detector_test.cpp.o"
  "CMakeFiles/sybil_core_tests.dir/core/stream_detector_test.cpp.o.d"
  "CMakeFiles/sybil_core_tests.dir/core/threshold_test.cpp.o"
  "CMakeFiles/sybil_core_tests.dir/core/threshold_test.cpp.o.d"
  "CMakeFiles/sybil_core_tests.dir/core/topology_test.cpp.o"
  "CMakeFiles/sybil_core_tests.dir/core/topology_test.cpp.o.d"
  "sybil_core_tests"
  "sybil_core_tests.pdb"
  "sybil_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
