
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adaptive_test.cpp" "tests/CMakeFiles/sybil_core_tests.dir/core/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_core_tests.dir/core/adaptive_test.cpp.o.d"
  "/root/repo/tests/core/edge_order_test.cpp" "tests/CMakeFiles/sybil_core_tests.dir/core/edge_order_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_core_tests.dir/core/edge_order_test.cpp.o.d"
  "/root/repo/tests/core/features_test.cpp" "tests/CMakeFiles/sybil_core_tests.dir/core/features_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_core_tests.dir/core/features_test.cpp.o.d"
  "/root/repo/tests/core/realtime_test.cpp" "tests/CMakeFiles/sybil_core_tests.dir/core/realtime_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_core_tests.dir/core/realtime_test.cpp.o.d"
  "/root/repo/tests/core/stream_detector_test.cpp" "tests/CMakeFiles/sybil_core_tests.dir/core/stream_detector_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_core_tests.dir/core/stream_detector_test.cpp.o.d"
  "/root/repo/tests/core/threshold_test.cpp" "tests/CMakeFiles/sybil_core_tests.dir/core/threshold_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_core_tests.dir/core/threshold_test.cpp.o.d"
  "/root/repo/tests/core/topology_test.cpp" "tests/CMakeFiles/sybil_core_tests.dir/core/topology_test.cpp.o" "gcc" "tests/CMakeFiles/sybil_core_tests.dir/core/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sybil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/sybil_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/sybil_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/osn/CMakeFiles/sybil_osn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sybil_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sybil_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sybil_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
