# Empty dependencies file for sybil_osn_tests.
# This may be replaced when dependencies are built.
