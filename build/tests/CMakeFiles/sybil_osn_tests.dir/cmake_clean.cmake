file(REMOVE_RECURSE
  "CMakeFiles/sybil_osn_tests.dir/osn/behavior_test.cpp.o"
  "CMakeFiles/sybil_osn_tests.dir/osn/behavior_test.cpp.o.d"
  "CMakeFiles/sybil_osn_tests.dir/osn/ledger_test.cpp.o"
  "CMakeFiles/sybil_osn_tests.dir/osn/ledger_test.cpp.o.d"
  "CMakeFiles/sybil_osn_tests.dir/osn/network_test.cpp.o"
  "CMakeFiles/sybil_osn_tests.dir/osn/network_test.cpp.o.d"
  "CMakeFiles/sybil_osn_tests.dir/osn/simulator_test.cpp.o"
  "CMakeFiles/sybil_osn_tests.dir/osn/simulator_test.cpp.o.d"
  "sybil_osn_tests"
  "sybil_osn_tests.pdb"
  "sybil_osn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_osn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
