# Empty dependencies file for sybil_attack_tests.
# This may be replaced when dependencies are built.
