file(REMOVE_RECURSE
  "CMakeFiles/sybil_attack_tests.dir/attack/campaign_test.cpp.o"
  "CMakeFiles/sybil_attack_tests.dir/attack/campaign_test.cpp.o.d"
  "sybil_attack_tests"
  "sybil_attack_tests.pdb"
  "sybil_attack_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_attack_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
