# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sybil_stats_tests[1]_include.cmake")
include("/root/repo/build/tests/sybil_graph_tests[1]_include.cmake")
include("/root/repo/build/tests/sybil_osn_tests[1]_include.cmake")
include("/root/repo/build/tests/sybil_attack_tests[1]_include.cmake")
include("/root/repo/build/tests/sybil_ml_tests[1]_include.cmake")
include("/root/repo/build/tests/sybil_core_tests[1]_include.cmake")
include("/root/repo/build/tests/sybil_detectors_tests[1]_include.cmake")
include("/root/repo/build/tests/sybil_integration_tests[1]_include.cmake")
