file(REMOVE_RECURSE
  "CMakeFiles/sybil_attack.dir/campaign.cpp.o"
  "CMakeFiles/sybil_attack.dir/campaign.cpp.o.d"
  "CMakeFiles/sybil_attack.dir/tools.cpp.o"
  "CMakeFiles/sybil_attack.dir/tools.cpp.o.d"
  "libsybil_attack.a"
  "libsybil_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
