file(REMOVE_RECURSE
  "libsybil_attack.a"
)
