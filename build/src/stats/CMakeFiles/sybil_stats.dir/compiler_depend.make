# Empty compiler generated dependencies file for sybil_stats.
# This may be replaced when dependencies are built.
