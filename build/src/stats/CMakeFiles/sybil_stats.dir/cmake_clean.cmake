file(REMOVE_RECURSE
  "CMakeFiles/sybil_stats.dir/cdf.cpp.o"
  "CMakeFiles/sybil_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/sybil_stats.dir/distributions.cpp.o"
  "CMakeFiles/sybil_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/sybil_stats.dir/rng.cpp.o"
  "CMakeFiles/sybil_stats.dir/rng.cpp.o.d"
  "CMakeFiles/sybil_stats.dir/summary.cpp.o"
  "CMakeFiles/sybil_stats.dir/summary.cpp.o.d"
  "libsybil_stats.a"
  "libsybil_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
