file(REMOVE_RECURSE
  "libsybil_stats.a"
)
