file(REMOVE_RECURSE
  "libsybil_core.a"
)
