# Empty dependencies file for sybil_core.
# This may be replaced when dependencies are built.
