
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/sybil_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/sybil_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/edge_order.cpp" "src/core/CMakeFiles/sybil_core.dir/edge_order.cpp.o" "gcc" "src/core/CMakeFiles/sybil_core.dir/edge_order.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/sybil_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/sybil_core.dir/features.cpp.o.d"
  "/root/repo/src/core/ground_truth.cpp" "src/core/CMakeFiles/sybil_core.dir/ground_truth.cpp.o" "gcc" "src/core/CMakeFiles/sybil_core.dir/ground_truth.cpp.o.d"
  "/root/repo/src/core/realtime_detector.cpp" "src/core/CMakeFiles/sybil_core.dir/realtime_detector.cpp.o" "gcc" "src/core/CMakeFiles/sybil_core.dir/realtime_detector.cpp.o.d"
  "/root/repo/src/core/stream_detector.cpp" "src/core/CMakeFiles/sybil_core.dir/stream_detector.cpp.o" "gcc" "src/core/CMakeFiles/sybil_core.dir/stream_detector.cpp.o.d"
  "/root/repo/src/core/threshold_detector.cpp" "src/core/CMakeFiles/sybil_core.dir/threshold_detector.cpp.o" "gcc" "src/core/CMakeFiles/sybil_core.dir/threshold_detector.cpp.o.d"
  "/root/repo/src/core/topology.cpp" "src/core/CMakeFiles/sybil_core.dir/topology.cpp.o" "gcc" "src/core/CMakeFiles/sybil_core.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/osn/CMakeFiles/sybil_osn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sybil_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sybil_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sybil_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
