file(REMOVE_RECURSE
  "CMakeFiles/sybil_core.dir/adaptive.cpp.o"
  "CMakeFiles/sybil_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/sybil_core.dir/edge_order.cpp.o"
  "CMakeFiles/sybil_core.dir/edge_order.cpp.o.d"
  "CMakeFiles/sybil_core.dir/features.cpp.o"
  "CMakeFiles/sybil_core.dir/features.cpp.o.d"
  "CMakeFiles/sybil_core.dir/ground_truth.cpp.o"
  "CMakeFiles/sybil_core.dir/ground_truth.cpp.o.d"
  "CMakeFiles/sybil_core.dir/realtime_detector.cpp.o"
  "CMakeFiles/sybil_core.dir/realtime_detector.cpp.o.d"
  "CMakeFiles/sybil_core.dir/stream_detector.cpp.o"
  "CMakeFiles/sybil_core.dir/stream_detector.cpp.o.d"
  "CMakeFiles/sybil_core.dir/threshold_detector.cpp.o"
  "CMakeFiles/sybil_core.dir/threshold_detector.cpp.o.d"
  "CMakeFiles/sybil_core.dir/topology.cpp.o"
  "CMakeFiles/sybil_core.dir/topology.cpp.o.d"
  "libsybil_core.a"
  "libsybil_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
