
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detectors/community.cpp" "src/detectors/CMakeFiles/sybil_detectors.dir/community.cpp.o" "gcc" "src/detectors/CMakeFiles/sybil_detectors.dir/community.cpp.o.d"
  "/root/repo/src/detectors/evaluation.cpp" "src/detectors/CMakeFiles/sybil_detectors.dir/evaluation.cpp.o" "gcc" "src/detectors/CMakeFiles/sybil_detectors.dir/evaluation.cpp.o.d"
  "/root/repo/src/detectors/sumup.cpp" "src/detectors/CMakeFiles/sybil_detectors.dir/sumup.cpp.o" "gcc" "src/detectors/CMakeFiles/sybil_detectors.dir/sumup.cpp.o.d"
  "/root/repo/src/detectors/sybilguard.cpp" "src/detectors/CMakeFiles/sybil_detectors.dir/sybilguard.cpp.o" "gcc" "src/detectors/CMakeFiles/sybil_detectors.dir/sybilguard.cpp.o.d"
  "/root/repo/src/detectors/sybilinfer.cpp" "src/detectors/CMakeFiles/sybil_detectors.dir/sybilinfer.cpp.o" "gcc" "src/detectors/CMakeFiles/sybil_detectors.dir/sybilinfer.cpp.o.d"
  "/root/repo/src/detectors/sybilinfer_mcmc.cpp" "src/detectors/CMakeFiles/sybil_detectors.dir/sybilinfer_mcmc.cpp.o" "gcc" "src/detectors/CMakeFiles/sybil_detectors.dir/sybilinfer_mcmc.cpp.o.d"
  "/root/repo/src/detectors/sybillimit.cpp" "src/detectors/CMakeFiles/sybil_detectors.dir/sybillimit.cpp.o" "gcc" "src/detectors/CMakeFiles/sybil_detectors.dir/sybillimit.cpp.o.d"
  "/root/repo/src/detectors/sybilrank.cpp" "src/detectors/CMakeFiles/sybil_detectors.dir/sybilrank.cpp.o" "gcc" "src/detectors/CMakeFiles/sybil_detectors.dir/sybilrank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sybil_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sybil_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
