file(REMOVE_RECURSE
  "libsybil_detectors.a"
)
