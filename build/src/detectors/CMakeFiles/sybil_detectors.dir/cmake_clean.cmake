file(REMOVE_RECURSE
  "CMakeFiles/sybil_detectors.dir/community.cpp.o"
  "CMakeFiles/sybil_detectors.dir/community.cpp.o.d"
  "CMakeFiles/sybil_detectors.dir/evaluation.cpp.o"
  "CMakeFiles/sybil_detectors.dir/evaluation.cpp.o.d"
  "CMakeFiles/sybil_detectors.dir/sumup.cpp.o"
  "CMakeFiles/sybil_detectors.dir/sumup.cpp.o.d"
  "CMakeFiles/sybil_detectors.dir/sybilguard.cpp.o"
  "CMakeFiles/sybil_detectors.dir/sybilguard.cpp.o.d"
  "CMakeFiles/sybil_detectors.dir/sybilinfer.cpp.o"
  "CMakeFiles/sybil_detectors.dir/sybilinfer.cpp.o.d"
  "CMakeFiles/sybil_detectors.dir/sybilinfer_mcmc.cpp.o"
  "CMakeFiles/sybil_detectors.dir/sybilinfer_mcmc.cpp.o.d"
  "CMakeFiles/sybil_detectors.dir/sybillimit.cpp.o"
  "CMakeFiles/sybil_detectors.dir/sybillimit.cpp.o.d"
  "CMakeFiles/sybil_detectors.dir/sybilrank.cpp.o"
  "CMakeFiles/sybil_detectors.dir/sybilrank.cpp.o.d"
  "libsybil_detectors.a"
  "libsybil_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
