# Empty compiler generated dependencies file for sybil_detectors.
# This may be replaced when dependencies are built.
