# Empty dependencies file for sybil_ml.
# This may be replaced when dependencies are built.
