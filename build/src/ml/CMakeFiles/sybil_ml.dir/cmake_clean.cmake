file(REMOVE_RECURSE
  "CMakeFiles/sybil_ml.dir/dataset.cpp.o"
  "CMakeFiles/sybil_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/sybil_ml.dir/dataset_io.cpp.o"
  "CMakeFiles/sybil_ml.dir/dataset_io.cpp.o.d"
  "CMakeFiles/sybil_ml.dir/kfold.cpp.o"
  "CMakeFiles/sybil_ml.dir/kfold.cpp.o.d"
  "CMakeFiles/sybil_ml.dir/logistic.cpp.o"
  "CMakeFiles/sybil_ml.dir/logistic.cpp.o.d"
  "CMakeFiles/sybil_ml.dir/metrics.cpp.o"
  "CMakeFiles/sybil_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/sybil_ml.dir/roc.cpp.o"
  "CMakeFiles/sybil_ml.dir/roc.cpp.o.d"
  "CMakeFiles/sybil_ml.dir/scaler.cpp.o"
  "CMakeFiles/sybil_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/sybil_ml.dir/svm.cpp.o"
  "CMakeFiles/sybil_ml.dir/svm.cpp.o.d"
  "libsybil_ml.a"
  "libsybil_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
