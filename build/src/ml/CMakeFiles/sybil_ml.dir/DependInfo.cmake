
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/sybil_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/sybil_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/dataset_io.cpp" "src/ml/CMakeFiles/sybil_ml.dir/dataset_io.cpp.o" "gcc" "src/ml/CMakeFiles/sybil_ml.dir/dataset_io.cpp.o.d"
  "/root/repo/src/ml/kfold.cpp" "src/ml/CMakeFiles/sybil_ml.dir/kfold.cpp.o" "gcc" "src/ml/CMakeFiles/sybil_ml.dir/kfold.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/ml/CMakeFiles/sybil_ml.dir/logistic.cpp.o" "gcc" "src/ml/CMakeFiles/sybil_ml.dir/logistic.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/sybil_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/sybil_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/roc.cpp" "src/ml/CMakeFiles/sybil_ml.dir/roc.cpp.o" "gcc" "src/ml/CMakeFiles/sybil_ml.dir/roc.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/sybil_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/sybil_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/sybil_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/sybil_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/sybil_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
