file(REMOVE_RECURSE
  "libsybil_ml.a"
)
