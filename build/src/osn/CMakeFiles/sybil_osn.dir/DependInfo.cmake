
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osn/behavior.cpp" "src/osn/CMakeFiles/sybil_osn.dir/behavior.cpp.o" "gcc" "src/osn/CMakeFiles/sybil_osn.dir/behavior.cpp.o.d"
  "/root/repo/src/osn/events.cpp" "src/osn/CMakeFiles/sybil_osn.dir/events.cpp.o" "gcc" "src/osn/CMakeFiles/sybil_osn.dir/events.cpp.o.d"
  "/root/repo/src/osn/ledger.cpp" "src/osn/CMakeFiles/sybil_osn.dir/ledger.cpp.o" "gcc" "src/osn/CMakeFiles/sybil_osn.dir/ledger.cpp.o.d"
  "/root/repo/src/osn/network.cpp" "src/osn/CMakeFiles/sybil_osn.dir/network.cpp.o" "gcc" "src/osn/CMakeFiles/sybil_osn.dir/network.cpp.o.d"
  "/root/repo/src/osn/simulator.cpp" "src/osn/CMakeFiles/sybil_osn.dir/simulator.cpp.o" "gcc" "src/osn/CMakeFiles/sybil_osn.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sybil_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sybil_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
