file(REMOVE_RECURSE
  "CMakeFiles/sybil_osn.dir/behavior.cpp.o"
  "CMakeFiles/sybil_osn.dir/behavior.cpp.o.d"
  "CMakeFiles/sybil_osn.dir/events.cpp.o"
  "CMakeFiles/sybil_osn.dir/events.cpp.o.d"
  "CMakeFiles/sybil_osn.dir/ledger.cpp.o"
  "CMakeFiles/sybil_osn.dir/ledger.cpp.o.d"
  "CMakeFiles/sybil_osn.dir/network.cpp.o"
  "CMakeFiles/sybil_osn.dir/network.cpp.o.d"
  "CMakeFiles/sybil_osn.dir/simulator.cpp.o"
  "CMakeFiles/sybil_osn.dir/simulator.cpp.o.d"
  "libsybil_osn.a"
  "libsybil_osn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_osn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
