file(REMOVE_RECURSE
  "libsybil_osn.a"
)
