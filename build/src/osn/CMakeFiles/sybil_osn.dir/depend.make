# Empty dependencies file for sybil_osn.
# This may be replaced when dependencies are built.
