# CMake generated Testfile for 
# Source directory: /root/repo/src/osn
# Build directory: /root/repo/build/src/osn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
