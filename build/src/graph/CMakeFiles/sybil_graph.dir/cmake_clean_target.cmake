file(REMOVE_RECURSE
  "libsybil_graph.a"
)
