file(REMOVE_RECURSE
  "CMakeFiles/sybil_graph.dir/clustering.cpp.o"
  "CMakeFiles/sybil_graph.dir/clustering.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/components.cpp.o"
  "CMakeFiles/sybil_graph.dir/components.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/conductance.cpp.o"
  "CMakeFiles/sybil_graph.dir/conductance.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/csr.cpp.o"
  "CMakeFiles/sybil_graph.dir/csr.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/degree.cpp.o"
  "CMakeFiles/sybil_graph.dir/degree.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/generators.cpp.o"
  "CMakeFiles/sybil_graph.dir/generators.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/graph.cpp.o"
  "CMakeFiles/sybil_graph.dir/graph.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/io.cpp.o"
  "CMakeFiles/sybil_graph.dir/io.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/maxflow.cpp.o"
  "CMakeFiles/sybil_graph.dir/maxflow.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/metrics.cpp.o"
  "CMakeFiles/sybil_graph.dir/metrics.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/mixing.cpp.o"
  "CMakeFiles/sybil_graph.dir/mixing.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/sampling.cpp.o"
  "CMakeFiles/sybil_graph.dir/sampling.cpp.o.d"
  "CMakeFiles/sybil_graph.dir/walks.cpp.o"
  "CMakeFiles/sybil_graph.dir/walks.cpp.o.d"
  "libsybil_graph.a"
  "libsybil_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
