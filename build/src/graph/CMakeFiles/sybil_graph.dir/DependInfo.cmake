
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/clustering.cpp" "src/graph/CMakeFiles/sybil_graph.dir/clustering.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/clustering.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/graph/CMakeFiles/sybil_graph.dir/components.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/components.cpp.o.d"
  "/root/repo/src/graph/conductance.cpp" "src/graph/CMakeFiles/sybil_graph.dir/conductance.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/conductance.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/sybil_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/degree.cpp" "src/graph/CMakeFiles/sybil_graph.dir/degree.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/degree.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/sybil_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/sybil_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/sybil_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/maxflow.cpp" "src/graph/CMakeFiles/sybil_graph.dir/maxflow.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/maxflow.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/graph/CMakeFiles/sybil_graph.dir/metrics.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/metrics.cpp.o.d"
  "/root/repo/src/graph/mixing.cpp" "src/graph/CMakeFiles/sybil_graph.dir/mixing.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/mixing.cpp.o.d"
  "/root/repo/src/graph/sampling.cpp" "src/graph/CMakeFiles/sybil_graph.dir/sampling.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/sampling.cpp.o.d"
  "/root/repo/src/graph/walks.cpp" "src/graph/CMakeFiles/sybil_graph.dir/walks.cpp.o" "gcc" "src/graph/CMakeFiles/sybil_graph.dir/walks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/sybil_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
