# Empty dependencies file for sybil_graph.
# This may be replaced when dependencies are built.
