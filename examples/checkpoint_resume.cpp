// Crash-safe simulation: periodic checkpoints + deterministic resume.
//
// A production-scale ground-truth simulation can run for hours. This
// example shows the operational pattern for surviving a kill mid-run:
// an hour hook saves an atomic checkpoint every N simulated hours, and
// on restart the simulator is restored from the newest checkpoint and
// finishes the window — producing results identical to a run that was
// never interrupted (the checkpoint captures the RNG stream, pending-
// request heap order and popularity-sampler weights, not just the
// graph).
//
// Usage:
//   checkpoint_resume <state.ckpt>            # start or resume
//   checkpoint_resume <state.ckpt> --kill-at H  # simulate a crash at hour H
//
// Run with --kill-at 60, then run again without it: the second process
// resumes at hour 60 and the final summary matches an uninterrupted run
// bit for bit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "osn/checkpoint.h"
#include "osn/simulator.h"

namespace {

constexpr std::uint64_t kCheckpointEveryHours = 20;

void print_summary(const sybil::osn::GroundTruthSimulator& sim) {
  using namespace sybil;
  const osn::Network& net = sim.network();
  std::uint64_t sybil_accepted = 0, sybil_sent = 0;
  for (const osn::NodeId s : sim.subject_sybils()) {
    sybil_sent += net.ledger(s).sent();
    sybil_accepted += net.ledger(s).sent_accepted();
  }
  std::printf("hours=%llu edges=%llu sybil_sent=%llu sybil_accepted=%llu\n",
              static_cast<unsigned long long>(sim.hours_completed()),
              static_cast<unsigned long long>(net.graph().edge_count()),
              static_cast<unsigned long long>(sybil_sent),
              static_cast<unsigned long long>(sybil_accepted));
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sybil;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <state.ckpt> [--kill-at <hour>]\n", argv[0]);
    return 2;
  }
  const std::string ckpt = argv[1];
  std::uint64_t kill_at = 0;  // 0 = run to completion
  if (argc == 4 && std::strcmp(argv[2], "--kill-at") == 0) {
    kill_at = std::strtoull(argv[3], nullptr, 10);
  } else if (argc != 2) {
    std::fprintf(stderr, "usage: %s <state.ckpt> [--kill-at <hour>]\n",
                 argv[0]);
    return 2;
  }

  std::unique_ptr<osn::GroundTruthSimulator> sim;
  if (file_exists(ckpt)) {
    sim = osn::load_checkpoint(ckpt);
    std::printf("resumed from %s at hour %llu\n", ckpt.c_str(),
                static_cast<unsigned long long>(sim->hours_completed()));
  } else {
    osn::GroundTruthConfig cfg;
    cfg.background_users = 8'000;
    cfg.subject_normals = 300;
    cfg.subject_sybils = 300;
    cfg.sim_hours = 120.0;
    sim = std::make_unique<osn::GroundTruthSimulator>(cfg);
    std::printf("fresh run: %u accounts, %.0f h window\n",
                cfg.background_users + cfg.subject_normals +
                    cfg.subject_sybils,
                cfg.sim_hours);
  }

  // The hook sees hours_completed() already advanced, so a checkpoint
  // written here resumes at the NEXT hour — nothing is replayed.
  sim->set_hour_hook([&](osn::Time end_of_hour, osn::Network&) {
    const auto done = sim->hours_completed();
    if (done % kCheckpointEveryHours == 0) {
      osn::save_checkpoint(*sim, ckpt);
      std::printf("checkpoint at hour %llu\n",
                  static_cast<unsigned long long>(done));
    }
    if (kill_at != 0 && done >= kill_at) {
      // A real crash would not flush anything — the atomic rename in
      // save_checkpoint is what guarantees the file on disk is whole.
      std::printf("simulating crash at hour %.0f\n", end_of_hour);
      std::_Exit(1);
    }
  });

  sim->run();
  print_summary(*sim);
  std::remove(ckpt.c_str());
  std::printf("done; checkpoint removed\n");
  return 0;
}
