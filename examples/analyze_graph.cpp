// File-driven Sybil topology analysis — the adoption path for real data.
//
// A platform exports (a) an anonymized friendship edge list with
// creation timestamps and (b) the node ids of its banned/confirmed
// Sybil accounts; this tool runs the paper's full Section-3 analysis on
// those files. No simulation involved.
//
// Usage:
//   analyze_graph <edges.txt|edges.snap> <sybil_ids.txt>
//   analyze_graph --demo <output_dir>     # write sample inputs and exit
//
// The edge file is either the plain-text format (graph::save_edge_list:
// "nodes N" header then "u v timestamp" lines) or a binary graph
// snapshot (io::save_graph_snapshot) — detected by the container magic,
// no flag needed. Binary is the full-fidelity, checksummed format; see
// docs/FORMATS.md. Sybil id file: one node id per line; '#' comments.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "attack/campaign.h"
#include "core/edge_order.h"
#include "core/topology.h"
#include "graph/io.h"
#include "io/graph_snapshot.h"

namespace {

std::vector<sybil::osn::NodeId> load_ids(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open: " + path);
  std::vector<sybil::osn::NodeId> ids;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    ids.push_back(static_cast<sybil::osn::NodeId>(std::stoul(line)));
  }
  return ids;
}

/// True when the file starts with the binary container magic ("SYBS").
bool is_snapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  return is && std::memcmp(magic, "SYBS", sizeof(magic)) == 0;
}

int write_demo(const std::string& dir) {
  using namespace sybil;
  std::printf("Generating demo inputs (small campaign)...\n");
  attack::CampaignConfig cfg;
  cfg.normal_users = 10'000;
  cfg.sybils = 1'000;
  cfg.campaign_hours = 5'000.0;
  const auto result = attack::run_campaign(cfg);
  const std::string edges = dir + "/demo_edges.txt";
  const std::string snap = dir + "/demo_edges.snap";
  const std::string sybils = dir + "/demo_sybils.txt";
  graph::save_edge_list(result.network->graph(), edges);
  io::save_graph_snapshot(result.network->graph(), snap);
  std::ofstream os(sybils);
  os << "# demo Sybil ids\n";
  for (auto s : result.sybil_ids) os << s << '\n';
  std::printf("Wrote %s, %s and %s\nRun: analyze_graph %s %s\n",
              edges.c_str(), snap.c_str(), sybils.c_str(), edges.c_str(),
              sybils.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sybil;
  if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) {
    return write_demo(argv[2]);
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s <edges.txt|edges.snap> <sybil_ids.txt>\n"
                 "       %s --demo <output_dir>\n",
                 argv[0], argv[0]);
    return 2;
  }

  const graph::TimestampedGraph g = is_snapshot(argv[1])
                                        ? io::load_graph_snapshot(argv[1])
                                        : graph::load_edge_list(argv[1]);
  const auto sybil_ids = load_ids(argv[2]);
  std::printf("Loaded %u nodes, %llu edges, %zu Sybil ids\n", g.node_count(),
              static_cast<unsigned long long>(g.edge_count()),
              sybil_ids.size());
  for (auto s : sybil_ids) {
    if (s >= g.node_count()) {
      std::fprintf(stderr, "sybil id %u out of range\n", s);
      return 2;
    }
  }

  const core::TopologyAnalyzer topo(g, sybil_ids);
  std::printf("\nSybil edges:   %llu\n",
              static_cast<unsigned long long>(topo.total_sybil_edges()));
  std::printf("Attack edges:  %llu\n",
              static_cast<unsigned long long>(topo.total_attack_edges()));
  std::printf("Sybils with >=1 Sybil edge: %.1f%%\n",
              100.0 * topo.fraction_with_sybil_edge());

  const auto& comps = topo.component_stats();
  std::printf("\nSybil components (size >= 2): %zu\n", comps.size());
  std::printf("%10s %12s %13s %10s\n", "Sybils", "Sybil edges",
              "Attack edges", "Audience");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, comps.size()); ++i) {
    std::printf("%10u %12llu %13llu %10llu\n", comps[i].sybils,
                static_cast<unsigned long long>(comps[i].sybil_edges),
                static_cast<unsigned long long>(comps[i].attack_edges),
                static_cast<unsigned long long>(comps[i].audience));
  }

  if (!comps.empty()) {
    const auto members = topo.component_members(0);
    const auto rows = core::edge_order_rows(g, members, topo.sybil_mask());
    const auto summary = core::summarize_edge_order(rows);
    std::printf("\nGiant-component edge order: mean position %.3f "
                "(0.5 = accidental), KS %.3f, intentional rows %zu/%zu\n",
                summary.mean_position, summary.ks_statistic,
                summary.intentional_rows, summary.rows);
  }

  std::size_t above = 0;
  for (const auto& cs : comps) above += cs.attack_edges > cs.sybil_edges;
  std::printf("\nVerdict: %zu/%zu components have more attack than Sybil "
              "edges;\ncommunity-based detection %s viable on this data.\n",
              above, comps.size(),
              above == comps.size() ? "is NOT" : "may be");
  return 0;
}
