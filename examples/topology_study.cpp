// Topology study (paper Section 3): characterize how Sybils embed in the
// social graph — the full measurement pipeline from a simulated
// multi-year attack campaign to the paper's structural findings.
//
// Usage: topology_study [normals] [sybils] [hours]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "attack/campaign.h"
#include "core/edge_order.h"
#include "core/topology.h"
#include "graph/conductance.h"
#include "graph/degree.h"
#include "stats/summary.h"

int main(int argc, char** argv) {
  using namespace sybil;

  attack::CampaignConfig config;
  config.normal_users = 80'000;
  config.sybils = 8'000;
  config.campaign_hours = 30'000.0;
  if (argc > 1) {
    config.normal_users =
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    config.sybils =
        static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
  }
  if (argc > 3) config.campaign_hours = std::strtod(argv[3], nullptr);

  std::printf("Simulating a %.0f-hour Sybil campaign: %u normal users, "
              "%u Sybils...\n",
              config.campaign_hours, config.normal_users, config.sybils);
  const auto result = attack::run_campaign(config);
  const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);

  std::printf("\n--- Do Sybils befriend each other? (Section 3.2) ---\n");
  std::printf("Sybil accounts:          %zu\n", topo.sybil_count());
  std::printf("Attack edges:            %llu\n",
              static_cast<unsigned long long>(topo.total_attack_edges()));
  std::printf("Sybil edges:             %llu\n",
              static_cast<unsigned long long>(topo.total_sybil_edges()));
  std::printf("Sybils with a Sybil edge: %.1f%% (paper: ~20%%)\n",
              100.0 * topo.fraction_with_sybil_edge());

  std::printf("\n--- Sybil communities (Section 3.3) ---\n");
  const auto& comps = topo.component_stats();
  std::printf("Components (size >= 2): %zu\n", comps.size());
  const auto& g = topo.snapshot();
  for (std::size_t i = 0; i < std::min<std::size_t>(5, comps.size()); ++i) {
    const auto members = topo.component_members(i);
    const auto cut = graph::cut_stats(g, members);
    std::printf("  #%zu: %u sybils, %llu sybil edges, %llu attack edges, "
                "audience %llu, conductance %.3f\n",
                i + 1, comps[i].sybils,
                static_cast<unsigned long long>(comps[i].sybil_edges),
                static_cast<unsigned long long>(comps[i].attack_edges),
                static_cast<unsigned long long>(comps[i].audience),
                cut.conductance(graph::total_volume(g)));
  }
  std::size_t above_line = 0;
  for (const auto& cs : comps) above_line += cs.attack_edges > cs.sybil_edges;
  std::printf("Components with more attack than Sybil edges: %zu/%zu "
              "(paper: all)\n",
              above_line, comps.size());

  if (!comps.empty()) {
    std::printf("\n--- Edge formation in the giant component "
                "(Section 3.4) ---\n");
    const auto members = topo.component_members(0);
    const auto rows =
        core::edge_order_rows(*result.network, members, topo.sybil_mask());
    const auto summary = core::summarize_edge_order(rows);
    std::printf("Mean normalized Sybil-edge position: %.3f "
                "(0.5 = uniformly random)\n",
                summary.mean_position);
    std::printf("KS distance from Uniform(0,1):       %.3f\n",
                summary.ks_statistic);
    std::printf("Members with intentional-looking runs: %zu of %zu\n",
                summary.intentional_rows, summary.rows);
    std::printf("Fleet-wired Sybils across the graph:   %zu "
                "(%llu intentional edges)\n",
                result.meshed_sybil_ids.size(),
                static_cast<unsigned long long>(
                    result.intentional_sybil_edges));

    const auto cd = topo.component_degrees(0);
    std::size_t deg1 = 0, deg10 = 0;
    for (double d : cd.sybil_degree) {
      deg1 += d == 1.0;
      deg10 += d <= 10.0;
    }
    const auto n = static_cast<double>(cd.sybil_degree.size());
    std::printf("Giant-component internal degree: %.1f%% have exactly 1, "
                "%.1f%% have <= 10 (paper: 34.5%% / 93.7%%)\n",
                100.0 * static_cast<double>(deg1) / n,
                100.0 * static_cast<double>(deg10) / n);
  }

  std::printf("\n--- Conclusion ---\n");
  std::printf(
      "Wild Sybils integrate into the social graph instead of clustering;\n"
      "their components are loose, accidental, and sit behind attack-edge\n"
      "cuts far too wide for community-based detection.\n");
  return 0;
}
