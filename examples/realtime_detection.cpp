// Deployment scenario (paper Section 2.3): the real-time threshold
// detector running against a live OSN.
//
// The detector sweeps the network every 24 simulated hours *while the
// simulation runs*, newly flagged accounts go to manual verification
// (the simulator's ground truth stands in for Renren's verification
// team), verified Sybils are banned on the spot, and every verdict
// feeds the adaptive threshold tuner. At the end we report cumulative
// precision/recall and detection latency — the deployment-quality
// numbers behind the paper's "100,000 Sybils banned in six months".
//
// At exit the observability registry is dumped (counters, sweep spans,
// event totals — see DESIGN.md §8); set SYBIL_METRICS=off to silence
// both collection and the dump.
//
// Usage: realtime_detection [background_users] [sybils] [hours]
#include <cstdio>
#include <cstdlib>

#include "core/metrics/instrument.h"
#include "core/realtime_detector.h"
#include "osn/simulator.h"
#include "stats/summary.h"

#if SYBIL_METRICS_COMPILED
#include "core/metrics/metrics.h"
#endif

int main(int argc, char** argv) {
  using namespace sybil;

  osn::GroundTruthConfig config;
  config.background_users = 30'000;
  config.subject_normals = 800;
  config.subject_sybils = 800;
  config.sim_hours = 400.0;
  // Renren's prior techniques are switched off: OUR detector is now the
  // banning mechanism, so Sybils live until we catch them.
  config.sybil.ban_after_min = 1e9;
  config.sybil.ban_after_max = 2e9;
  if (argc > 1) {
    config.background_users =
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    config.subject_sybils =
        static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
  }
  if (argc > 3) config.sim_hours = std::strtod(argv[3], nullptr);

  std::printf("Deploying real-time detector on a %u-user OSN with %u Sybils "
              "for %.0f h (sweep every 24 h)...\n\n",
              config.background_users + config.subject_normals,
              config.subject_sybils, config.sim_hours);

  osn::GroundTruthSimulator sim(config);
  core::RealTimeDetector detector;

  std::vector<osn::NodeId> candidates = sim.subject_normals();
  candidates.insert(candidates.end(), sim.subject_sybils().begin(),
                    sim.subject_sybils().end());

  std::size_t true_flags = 0, false_flags = 0, sweeps = 0;
  std::vector<double> latencies;

  std::printf("%-8s %-9s %-14s %-12s %s\n", "hour", "flagged",
              "verified sybil", "cum.recall", "rule rate>=");
  sim.set_hour_hook([&](osn::Time now, osn::Network& net) {
    if (static_cast<std::uint64_t>(now) % 24 != 0) return;
    ++sweeps;
    const core::FlagBatch flagged = detector.sweep(net, candidates, now);
    if (flagged.empty()) return;
    std::size_t sybil_flags = 0;
    for (const core::FlagRecord& rec : flagged) {
      const bool is_sybil = net.account(rec.account).is_sybil();
      // Manual verification feeds back the features the rule fired on —
      // carried in the flag record, no re-extraction needed.
      detector.confirm(rec.features, is_sybil);
      if (is_sybil) {
        ++true_flags;
        ++sybil_flags;
        net.ban(rec.account, now);  // the detector is live: Sybils go down
        latencies.push_back(now - net.account(rec.account).created_at);
      } else {
        ++false_flags;
      }
    }
    std::printf("%-8.0f %-9zu %-14zu %6.1f%%      %.1f/hr\n", now,
                flagged.size(), sybil_flags,
                100.0 * static_cast<double>(true_flags) /
                    static_cast<double>(config.subject_sybils),
                detector.rule().invite_rate_min);
  });
  sim.run();

  std::printf("\n=== Deployment summary (%zu sweeps) ===\n", sweeps);
  std::printf("Sybils caught:      %zu of %u (%.1f%%)\n", true_flags,
              config.subject_sybils,
              100.0 * static_cast<double>(true_flags) /
                  static_cast<double>(config.subject_sybils));
  std::printf("False flags:        %zu (precision %.2f%%)\n", false_flags,
              100.0 * static_cast<double>(true_flags) /
                  static_cast<double>(std::max<std::size_t>(
                      1, true_flags + false_flags)));
  if (!latencies.empty()) {
    std::printf("Detection latency:  mean %.0f h, max %.0f h after account "
                "creation\n",
                stats::summarize(latencies).mean(),
                stats::summarize(latencies).max());
  }
  std::printf("Final tuned rule:   accept < %.2f AND rate >= %.1f/hr AND "
              "cc < %.4f\n",
              detector.rule().outgoing_accept_max,
              detector.rule().invite_rate_min,
              detector.rule().clustering_max);

#if SYBIL_METRICS_COMPILED
  if (core::metrics::metrics_enabled()) {
    std::printf("\n=== Observability (SYBIL_METRICS=off to suppress) ===\n%s",
                core::metrics::MetricsRegistry::instance().to_text().c_str());
  }
#endif
  return 0;
}
