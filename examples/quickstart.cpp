// Quickstart: simulate a small OSN with Sybils, extract the paper's four
// behavioral features, train the threshold + SVM classifiers, and print
// the headline numbers of Yang et al. (IMC 2011).
//
// Usage: quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/ground_truth.h"
#include "core/threshold_detector.h"
#include "ml/kfold.h"
#include "ml/scaler.h"
#include "ml/svm.h"
#include "osn/simulator.h"
#include "stats/summary.h"

int main(int argc, char** argv) {
  using namespace sybil;

  osn::GroundTruthConfig config;  // default (bench) scale: 60k background
  config.subject_normals = 500;
  config.subject_sybils = 500;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::printf("Simulating %u users (%u tracked normals, %u Sybils) for %.0f h...\n",
              config.background_users + config.subject_normals,
              config.subject_normals, config.subject_sybils,
              config.sim_hours);
  osn::GroundTruthSimulator sim(config);
  sim.run();

  const auto normal_cols =
      core::feature_columns(sim.network(), sim.subject_normals());
  const auto sybil_cols =
      core::feature_columns(sim.network(), sim.subject_sybils());

  const auto mean = [](const std::vector<double>& v) {
    return stats::summarize(v).mean();
  };
  std::printf("\nFeature means (paper targets in brackets):\n");
  std::printf("  outgoing accept  normal %.3f [0.79]   sybil %.3f [0.26]\n",
              mean(normal_cols.outgoing_accept),
              mean(sybil_cols.outgoing_accept));
  std::printf("  incoming accept  normal %.3f [spread] sybil %.3f [~1.0]\n",
              mean(normal_cols.incoming_accept),
              mean(sybil_cols.incoming_accept));
  std::printf("  clustering coef  normal %.4f [0.0386] sybil %.4f [0.0006]\n",
              mean(normal_cols.clustering), mean(sybil_cols.clustering));
  std::printf("  invite rate/hr   normal %.2f [low]    sybil %.2f [20-80]\n",
              mean(normal_cols.invite_rate_short),
              mean(sybil_cols.invite_rate_short));

  // 40/hour single-feature threshold (Fig 1 claim: ~70% of Sybils, 0 FP).
  std::size_t sybils_over_40 = 0, normals_over_40 = 0;
  for (double r : sybil_cols.invite_rate_short) sybils_over_40 += r >= 40;
  for (double r : normal_cols.invite_rate_short) normals_over_40 += r >= 40;
  std::printf("  40/hr rule: catches %.1f%% of Sybils [~70%%], %zu normal FPs [0]\n",
              100.0 * static_cast<double>(sybils_over_40) /
                  static_cast<double>(sybil_cols.invite_rate_short.size()),
              normals_over_40);

  // Threshold detector vs SVM, 5-fold CV (Table 1).
  const ml::Dataset data = core::build_ground_truth_dataset(
      sim.network(), sim.subject_normals(), sim.subject_sybils());
  stats::Rng rng(config.seed + 1);

  const core::ThresholdDetector threshold;
  ml::ConfusionMatrix threshold_cm;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    core::SybilFeatures f;
    f.invite_rate_short = row[0];
    f.outgoing_accept_ratio = row[1];
    f.incoming_accept_ratio = row[2];
    f.clustering_coefficient = row[3];
    threshold_cm.record(data.label(i),
                        threshold.is_sybil(f) ? ml::kSybilLabel
                                              : ml::kNormalLabel);
  }

  const ml::ConfusionMatrix svm_cm = ml::cross_validate(
      data, 5,
      [](const ml::Dataset& train) -> ml::Predictor {
        auto scaler = std::make_shared<ml::StandardScaler>();
        scaler->fit(train);
        auto model = std::make_shared<ml::SvmModel>(
            ml::SvmModel::train(scaler->transform(train), ml::SvmParams{}));
        return [scaler, model](std::span<const double> row) {
          return model->predict(scaler->transform(row));
        };
      },
      rng);

  std::printf("\n%s\n", svm_cm.to_table("SVM (5-fold CV)").c_str());
  std::printf("%s\n", threshold_cm.to_table("Threshold rule").c_str());
  std::printf("Paper Table 1: SVM 98.99/99.34, threshold 98.68/99.5\n");
  return 0;
}
