// Chaos replay: what happens to the streaming detector when the event
// feed degrades (docs/ROBUSTNESS.md).
//
// A small Sybil campaign is simulated with its event log retained. The
// log is then delivered to the hardened StreamDetector twice: once
// verbatim, once through a seeded FaultInjector that drops, reorders,
// duplicates, time-rewinds and corrupts records and lets banned bots
// keep sending. The run prints the injector's fault report, the
// detector's exact ingestion accounting (events in == applied + deduped
// + dead-lettered, always), a sample of the dead-letter queue with
// typed reasons, and the clean-vs-faulted detection accuracy delta.
//
// Everything is deterministic in the two seeds: re-running with the
// same arguments reproduces the same degraded feed byte for byte.
//
// Usage: chaos_replay [fault_rate] [chaos_seed]
#include <cstdio>
#include <cstdlib>

#include "attack/campaign.h"
#include "core/stream_detector.h"
#include "faults/fault_injector.h"

int main(int argc, char** argv) {
  using namespace sybil;

  double rate = 0.05;
  if (argc > 1) rate = std::strtod(argv[1], nullptr);
  faults::FaultRates rates;
  rates.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  rates.drop = rates.reorder = rates.duplicate = rate;
  rates.regress = rates.malform = rates.banned_party = rate;

  attack::CampaignConfig cfg;
  cfg.normal_users = 4'000;
  cfg.sybils = 400;
  cfg.campaign_hours = 4'000.0;
  cfg.keep_event_log = true;
  std::printf("Simulating a %u-user campaign with %u Sybils...\n",
              cfg.normal_users, cfg.sybils);
  const attack::CampaignResult campaign = attack::run_campaign(cfg);
  const osn::EventLog& log = campaign.network->log();
  std::vector<bool> is_sybil(campaign.network->account_count(), false);
  for (const auto v : campaign.sybil_ids) is_sybil[v] = true;

  core::DetectorOptions opts;
  opts.ingest.watermark_hours =
      log.max_inversion_hours() + 2.0 * rates.max_skew_hours;
  std::printf("%zu events logged; watermark %.1f h (log inversion %.1f h "
              "+ 2 x %.1f h injected skew)\n\n",
              log.events().size(), opts.ingest.watermark_hours,
              log.max_inversion_hours(), rates.max_skew_hours);

  const auto count_sybils = [&](const core::FlagBatch& flags) {
    std::size_t hits = 0;
    for (const auto& r : flags.records) hits += is_sybil[r.account] ? 1 : 0;
    return hits;
  };

  core::StreamDetector clean(opts);
  const auto& events = log.events();
  for (std::size_t i = 0; i < events.size(); ++i) clean.ingest(events[i], i);
  clean.finish();
  const core::FlagBatch clean_flags = clean.take_flagged();
  std::printf("clean ingest : %llu applied, %llu dead-lettered, "
              "%zu flagged (%zu true Sybils)\n",
              static_cast<unsigned long long>(clean.applied_total()),
              static_cast<unsigned long long>(clean.deadletter_total()),
              clean_flags.size(), count_sybils(clean_flags));

  faults::FaultInjector injector(rates);
  const std::vector<faults::Arrival> arrivals = injector.corrupt(log);
  const faults::FaultReport& rep = injector.report();
  std::printf("\nfault report : %llu in -> %llu out "
              "(dropped %llu, reordered %llu, duplicated %llu,\n"
              "               time-rewound %llu, malformed %llu, "
              "post-ban sends %llu)\n",
              static_cast<unsigned long long>(rep.events_in),
              static_cast<unsigned long long>(rep.events_out),
              static_cast<unsigned long long>(rep.dropped),
              static_cast<unsigned long long>(rep.reordered),
              static_cast<unsigned long long>(rep.duplicated),
              static_cast<unsigned long long>(rep.regressed),
              static_cast<unsigned long long>(rep.malformed),
              static_cast<unsigned long long>(rep.banned_party_injected));

  core::StreamDetector faulted(opts);
  for (const faults::Arrival& a : arrivals) faulted.ingest(a.event, a.seq);
  faulted.finish();
  const core::FlagBatch faulted_flags = faulted.take_flagged();
  std::printf("faulted ingest: %llu applied, %llu deduped, "
              "%llu dead-lettered (%llu evicted), %llu banned-party\n",
              static_cast<unsigned long long>(faulted.applied_total()),
              static_cast<unsigned long long>(faulted.deduped_total()),
              static_cast<unsigned long long>(faulted.deadletter_total()),
              static_cast<unsigned long long>(faulted.dead_letters_dropped()),
              static_cast<unsigned long long>(faulted.banned_party_total()));
  std::printf("accounting    : %llu in == %llu applied + %llu deduped "
              "+ %llu dead-lettered\n",
              static_cast<unsigned long long>(faulted.events_in()),
              static_cast<unsigned long long>(faulted.applied_total()),
              static_cast<unsigned long long>(faulted.deduped_total()),
              static_cast<unsigned long long>(faulted.deadletter_total()));

  std::printf("\ndead-letter sample (most recent of %zu kept):\n",
              faulted.dead_letters().size());
  std::size_t shown = 0;
  for (auto it = faulted.dead_letters().rbegin();
       it != faulted.dead_letters().rend() && shown < 5; ++it, ++shown) {
    std::printf("  seq %llu  reason %-18s  actor %u  t %.2f\n",
                static_cast<unsigned long long>(it->seq),
                core::to_string(it->reason), it->event.actor,
                it->event.time);
  }

  std::printf("\nflagged       : clean %zu (%zu Sybils) vs faulted %zu "
              "(%zu Sybils)\n",
              clean_flags.size(), count_sybils(clean_flags),
              faulted_flags.size(), count_sybils(faulted_flags));
  std::printf("A %.0f%% fault rate costs the detector the difference — and "
              "the dead-letter\nqueue plus stream.* metrics make every lost "
              "event visible.\n",
              100.0 * rate);
  return 0;
}
