// Defense comparison (paper Section 3.1 + conclusion): why the feature-
// based detector succeeds where graph-structural defenses fail.
//
// Runs one wild campaign, then evaluates two families of defenses on the
// SAME population:
//   1. structural: SybilRank trust propagation (the canonical community-
//      assumption detector), and
//   2. behavioral: the paper's threshold detector over the four features.
//
// Usage: defense_comparison [normals] [sybils] [hours]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "attack/campaign.h"
#include "core/features.h"
#include "core/threshold_detector.h"
#include "detectors/evaluation.h"
#include "detectors/sybilrank.h"

int main(int argc, char** argv) {
  using namespace sybil;

  attack::CampaignConfig config;
  config.normal_users = 60'000;
  config.sybils = 6'000;
  config.campaign_hours = 20'000.0;
  if (argc > 1) {
    config.normal_users =
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    config.sybils =
        static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
  }
  if (argc > 3) config.campaign_hours = std::strtod(argv[3], nullptr);

  std::printf("Campaign: %u normals, %u Sybils, %.0f h...\n",
              config.normal_users, config.sybils, config.campaign_hours);
  const auto result = attack::run_campaign(config);
  const osn::Network& net = *result.network;

  std::vector<bool> is_sybil(net.account_count(), false);
  for (auto s : result.sybil_ids) is_sybil[s] = true;

  // --- Structural defense: SybilRank from 50 verified honest seeds. ---
  const auto csr = graph::CsrGraph::from(net.graph());
  std::vector<graph::NodeId> seeds;
  for (std::size_t i = 0; i < 50; ++i) {
    seeds.push_back(result.normal_ids[(i * 1009 + 3) %
                                      result.normal_ids.size()]);
  }
  const auto scores = detect::sybilrank_scores(csr, seeds);
  const auto structural = detect::evaluate_scores(scores, is_sybil);
  std::printf("\nStructural (SybilRank):  AUC %.3f, catches %.1f%% of "
              "Sybils at a 5%% honest-cost budget\n",
              structural.auc, 100.0 * structural.sybil_rejection);

  // --- Behavioral defense: the paper's threshold detector. ---
  const core::FeatureExtractor fx(net);
  const core::ThresholdDetector detector;
  std::size_t caught = 0, false_flags = 0;
  for (auto s : result.sybil_ids) {
    caught += detector.is_sybil(fx.extract(s), net.ledger(s).sent());
  }
  // Evaluate false positives on a normal sample (full scan is identical,
  // just slower).
  const std::size_t normal_sample =
      std::min<std::size_t>(20'000, result.normal_ids.size());
  for (std::size_t i = 0; i < normal_sample; ++i) {
    const auto u = result.normal_ids[i];
    false_flags += detector.is_sybil(fx.extract(u), net.ledger(u).sent());
  }
  std::printf("Behavioral (threshold):  catches %.1f%% of Sybils, "
              "%.2f%% false positives\n",
              100.0 * static_cast<double>(caught) /
                  static_cast<double>(result.sybil_ids.size()),
              100.0 * static_cast<double>(false_flags) /
                  static_cast<double>(normal_sample));

  std::printf(
      "\nReading the numbers: AUC 0.5 is chance. Wild Sybils not only\n"
      "evade trust propagation — because their tools hunt popular,\n"
      "well-trusted targets, they often rank ABOVE the median honest\n"
      "user (AUC < 0.5). The behavioral detector keys on how Sybils\n"
      "must act to operate at all, and is unaffected by where in the\n"
      "graph they sit.\n");
  return 0;
}
