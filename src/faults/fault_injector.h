// Deterministic fault injection for event streams — the chaos half of
// the hostile-input hardening layer (docs/ROBUSTNESS.md).
//
// A FaultInjector models the unreliable transport between a platform's
// event producers and the streaming detector: it takes a clean
// osn::EventLog (or any span of events) and emits the *arrival*
// sequence a degraded feed would deliver — events delayed out of order
// within a bounded skew, redelivered, dropped, stamped with regressed
// or non-finite times, carrying unknown type bytes or hostile account
// ids, plus synthetic post-ban requests exercising the late-ban race.
// Each fault kind has its own rate knob and its own RNG stream, so
// raising one rate never changes which events another fault selects.
//
// Determinism is absolute: the output is a pure function of
// (input events, FaultRates) — per-event decisions draw from
// splitmix64-derived streams keyed by (seed, event index, fault kind),
// no wall clock, no global RNG. The same seed replays byte-identically,
// which is what lets the chaos tests assert exact invariants and lets a
// failure found at one seed be replayed forever.
//
// Arrival model: the clean log is delivered in log order at a
// nondecreasing transport clock (the running maximum of event times —
// real logs interleave responses slightly behind later sends, see
// EventLog::max_inversion_hours). Reordering delays an event's arrival
// by up to max_skew_hours past its in-order slot, and a duplicate is
// redelivered up to max_skew_hours after its (possibly already delayed)
// original — delays compound, so the worst-case lag behind the in-order
// slot is 2 x max_skew_hours. With all rates zero, corrupt() is the
// identity. A StreamDetector watermark of
// max_inversion_hours() + 2 * max_skew_hours therefore absorbs every
// injected reordering and redelivery.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "osn/events.h"

namespace sybil::faults {

/// Per-fault probabilities (each in [0, 1]) and shape knobs.
struct FaultRates {
  std::uint64_t seed = 0;

  /// P(event silently dropped by the transport).
  double drop = 0.0;

  /// P(event's arrival delayed by uniform(0, max_skew_hours)).
  double reorder = 0.0;
  /// Arrival-delay bound for reordering and duplicate redelivery.
  double max_skew_hours = 6.0;

  /// P(event redelivered once more, again within max_skew_hours).
  double duplicate = 0.0;

  /// P(event's *timestamp* rewound by regress_hours — a producer with a
  /// broken clock). Rewinds beyond the detector watermark quarantine.
  double regress = 0.0;
  double regress_hours = 1000.0;

  /// P(one field corrupted: unknown type byte, hostile account id,
  /// NaN timestamp, or actor == subject on a relational event).
  double malform = 0.0;

  /// P(a synthetic post-ban request from the banned account follows
  /// each ban event — bots keep sending after the ban lands).
  double banned_party = 0.0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One delivered record: the event as it arrives (possibly corrupted),
/// its transport sequence number (original log index; a redelivery
/// shares its original's seq; synthesized events get fresh seqs past
/// the input size), and the transport arrival time that ordered it.
struct Arrival {
  osn::Event event;
  std::uint64_t seq = 0;
  graph::Time arrival = 0.0;
};

/// What one corrupt() pass did, for assertions and the bench's chaos
/// rows. events_out == events_in - dropped + duplicated
///                     + banned_party_injected.
struct FaultReport {
  std::uint64_t events_in = 0;
  std::uint64_t events_out = 0;
  std::uint64_t dropped = 0;
  std::uint64_t reordered = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t regressed = 0;
  std::uint64_t malformed = 0;
  std::uint64_t banned_party_injected = 0;
};

class FaultInjector {
 public:
  /// Throws std::invalid_argument if `rates` fails validate().
  explicit FaultInjector(const FaultRates& rates);

  /// Emits the deterministic corrupted arrival sequence for `events`,
  /// sorted by (arrival time, emission order). Counters accumulate in
  /// report() and "stream.faults.*" metrics. May be called repeatedly;
  /// synthesized seqs continue past earlier calls.
  std::vector<Arrival> corrupt(std::span<const osn::Event> events);
  std::vector<Arrival> corrupt(const osn::EventLog& log);

  const FaultReport& report() const noexcept { return report_; }
  const FaultRates& rates() const noexcept { return rates_; }

  /// Account id used by malformed-id corruption: far above any
  /// plausible ingest.max_account_id bound.
  static constexpr graph::NodeId kMalformedNodeId = 0xFFFFFFF0u;

  /// Synthesized events (banned-party probes) get seqs from their own
  /// range starting here: above any log index, below StreamDetector's
  /// auto-seq range. NOTE: these are *explicit* seqs as far as a
  /// ShardRouter is concerned (below kExplicitSeqLimit), so a stream
  /// carrying them must never feed a router frontier — the scenario
  /// manifest layer rejects banned_party rates for exactly this reason.
  static constexpr std::uint64_t kSynthSeqBase = std::uint64_t{1} << 62;

 private:
  FaultRates rates_;
  FaultReport report_;
  std::uint64_t next_synth_seq_ = 0;
  std::uint64_t base_index_ = 0;  // event-index offset across calls
};

}  // namespace sybil::faults
