// Process-level fault channels: crash-point injection and torn-write
// simulation for the crash-tolerant service layer (docs/ROBUSTNESS.md
// §Recovery model).
//
// Where FaultInjector corrupts the *transport* (what arrives), these
// channels kill the *process* (what survives): CrashInjector throws a
// typed InjectedCrash at a chosen durability boundary, simulating the
// process dying exactly there, and tear_file_tail() mutilates a file's
// tail the way a torn write / partial flush would — so recovery code
// can be driven through every crash point and every corruption shape a
// real deployment faces, deterministically.
//
// Layering: this header knows nothing about the service layer. The
// injector's call operator is templated on the boundary-point type, so
// it binds to service::CrashHook (or any future hook) without faults
// linking sybil_service — production binaries stay linkable without the
// chaos layer, and the service stays linkable without it too.
//
// Determinism: a CrashInjector is a pure counter (crash at the Nth
// boundary crossing, optionally only counting one point kind), and
// tear_file_tail derives every choice from splitmix64(seed). The same
// (boundary index, seed) replays the same crash forever.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sybil::faults {

/// Thrown by CrashInjector at its configured boundary. Simulated
/// process death: test harnesses catch it at the top of their drive
/// loop and abandon the supervisor object, exactly as a kill -9 would.
class InjectedCrash : public std::runtime_error {
 public:
  InjectedCrash(std::uint32_t point, std::uint64_t boundary)
      : std::runtime_error("injected crash at boundary #" +
                           std::to_string(boundary) + " (point " +
                           std::to_string(point) + ")"),
        point_(point),
        boundary_(boundary) {}

  /// The boundary kind's integer value (e.g. service::CrashPoint).
  std::uint32_t point() const noexcept { return point_; }
  /// 0-based index of the crossing that crashed.
  std::uint64_t boundary() const noexcept { return boundary_; }

 private:
  std::uint32_t point_;
  std::uint64_t boundary_;
};

/// Counts durability-boundary crossings and throws InjectedCrash at the
/// configured one. Generic over the point enum (see header comment);
/// bind an instance by reference into a hook:
///
///   faults::CrashInjector crash(n);
///   options.crash_hook = std::ref(crash);
///
/// After the crash fires the injector disarms itself, so the *next*
/// supervisor recovering with the same options runs to completion —
/// one injector models one process lifetime's single fatal fault.
class CrashInjector {
 public:
  static constexpr std::uint32_t kAnyPoint = ~std::uint32_t{0};

  /// Crash at the `crash_at`-th crossing (0-based) of `point` (default:
  /// any point kind counts).
  explicit CrashInjector(std::uint64_t crash_at,
                         std::uint32_t point = kAnyPoint) noexcept
      : crash_at_(crash_at), point_(point) {}

  template <typename Point>
  void operator()(Point p) {
    const auto raw = static_cast<std::uint32_t>(p);
    if (point_ != kAnyPoint && raw != point_) return;
    const std::uint64_t boundary = crossings_++;
    if (armed_ && boundary == crash_at_) {
      armed_ = false;
      throw InjectedCrash(raw, boundary);
    }
  }

  /// Boundary crossings counted so far (filtered by the point kind).
  std::uint64_t crossings() const noexcept { return crossings_; }
  /// False once the crash has fired.
  bool armed() const noexcept { return armed_; }
  void disarm() noexcept { armed_ = false; }

 private:
  std::uint64_t crash_at_;
  std::uint32_t point_;
  std::uint64_t crossings_ = 0;
  bool armed_ = true;
};

/// CrashInjector with shard addressing: binds to the sharded service's
/// two-argument hook (service::ShardCrashHook — `(shard, point)`) and
/// counts only the targeted shard's boundary crossings, so a sweep can
/// kill shard k at its Nth durability boundary while every other shard
/// runs clean. kAnyShard degenerates to a fleet-wide CrashInjector.
/// Same layering rule as above: generic over the point type, no service
/// dependency.
class ShardCrashInjector {
 public:
  static constexpr std::uint32_t kAnyShard = ~std::uint32_t{0};

  ShardCrashInjector(std::uint32_t shard, std::uint64_t crash_at,
                     std::uint32_t point = CrashInjector::kAnyPoint) noexcept
      : shard_(shard), inner_(crash_at, point) {}

  template <typename Point>
  void operator()(std::uint32_t shard, Point p) {
    if (shard_ != kAnyShard && shard != shard_) return;
    inner_(p);
  }

  /// Boundary crossings counted on the targeted shard.
  std::uint64_t crossings() const noexcept { return inner_.crossings(); }
  bool armed() const noexcept { return inner_.armed(); }
  void disarm() noexcept { inner_.disarm(); }

 private:
  std::uint32_t shard_;
  CrashInjector inner_;
};

/// What tear_file_tail did to the file.
struct TornTailReport {
  std::uint64_t original_size = 0;
  std::uint64_t new_size = 0;      // after truncation
  std::uint64_t bytes_torn = 0;    // original_size - new_size
  bool bit_flipped = false;        // last surviving byte corrupted too
};

/// Simulates a torn write / partial flush on `path`, deterministically
/// from `seed`: truncates up to `max_tear_bytes` (at least 1) off the
/// tail and, on half of seeds, additionally flips one bit in the last
/// surviving byte — modelling a sector that was partially written
/// rather than cleanly cut. Never leaves the file empty (headers stay;
/// torn *content* is what recovery must handle). Throws
/// std::runtime_error if the file is missing or unwritable.
TornTailReport tear_file_tail(const std::string& path, std::uint64_t seed,
                              std::uint64_t max_tear_bytes = 64);

}  // namespace sybil::faults
