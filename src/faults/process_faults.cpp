#include "faults/process_faults.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/metrics/instrument.h"

namespace sybil::faults {

namespace fs = std::filesystem;

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

TornTailReport tear_file_tail(const std::string& path, std::uint64_t seed,
                              std::uint64_t max_tear_bytes) {
  std::error_code ec;
  const std::uint64_t size = fs::file_size(path, ec);
  if (ec) throw std::runtime_error("tear_file_tail: cannot stat " + path);
  if (size < 2) {
    throw std::runtime_error("tear_file_tail: " + path +
                             " too small to tear");
  }

  std::uint64_t state = seed;
  TornTailReport report;
  report.original_size = size;
  const std::uint64_t bound =
      std::min<std::uint64_t>(max_tear_bytes, size - 1);
  report.bytes_torn = 1 + splitmix64(state) % bound;
  report.new_size = size - report.bytes_torn;
  fs::resize_file(path, report.new_size, ec);
  if (ec) throw std::runtime_error("tear_file_tail: cannot truncate " + path);

  if (splitmix64(state) % 2 == 0) {
    // Half of seeds also corrupt the last surviving byte: a sector the
    // disk half-wrote rather than cleanly cut.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    if (f == nullptr) {
      throw std::runtime_error("tear_file_tail: cannot open " + path);
    }
    unsigned char byte = 0;
    bool ok = std::fseek(f, static_cast<long>(report.new_size - 1),
                         SEEK_SET) == 0 &&
              std::fread(&byte, 1, 1, f) == 1;
    if (ok) {
      byte ^= static_cast<unsigned char>(1u << (splitmix64(state) % 8));
      ok = std::fseek(f, static_cast<long>(report.new_size - 1), SEEK_SET) ==
               0 &&
           std::fwrite(&byte, 1, 1, f) == 1;
    }
    std::fclose(f);
    if (!ok) {
      throw std::runtime_error("tear_file_tail: cannot corrupt " + path);
    }
    report.bit_flipped = true;
  }
  SYBIL_METRIC_COUNT("faults.torn_tails", 1);
  return report;
}

}  // namespace sybil::faults
