#include "faults/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/metrics/instrument.h"
#include "stats/rng.h"

namespace sybil::faults {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("FaultRates: " + what);
}

void check_rate(double rate, const char* name) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    reject(std::string(name) + " must be a probability in [0, 1]");
  }
}

/// Fault kinds get disjoint RNG streams per event so the rates are
/// independent knobs: raising `drop` never changes which events
/// `duplicate` picks.
enum StreamKind : std::uint64_t {
  kDropStream = 1,
  kReorderStream,
  kDuplicateStream,
  kRegressStream,
  kMalformStream,
  kBannedPartyStream,
};

stats::Rng kind_rng(std::uint64_t seed, std::uint64_t index,
                    std::uint64_t kind) {
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)) ^ (kind << 56);
  return stats::Rng(stats::splitmix64_next(state));
}

constexpr std::uint64_t kSynthSeqBase = FaultInjector::kSynthSeqBase;

}  // namespace

void FaultRates::validate() const {
  check_rate(drop, "drop");
  check_rate(reorder, "reorder");
  check_rate(duplicate, "duplicate");
  check_rate(regress, "regress");
  check_rate(malform, "malform");
  check_rate(banned_party, "banned_party");
  if (!(max_skew_hours >= 0.0) || !std::isfinite(max_skew_hours)) {
    reject("max_skew_hours must be finite and >= 0");
  }
  if (!(regress_hours > 0.0) || !std::isfinite(regress_hours)) {
    reject("regress_hours must be finite and > 0");
  }
}

FaultInjector::FaultInjector(const FaultRates& rates) : rates_(rates) {
  rates_.validate();
}

std::vector<Arrival> FaultInjector::corrupt(
    std::span<const osn::Event> events) {
  struct Staged {
    Arrival a;
    std::uint64_t emit;  // tie-break: emission order is deterministic
  };
  std::vector<Staged> staged;
  staged.reserve(events.size());
  FaultReport delta;
  delta.events_in = events.size();

  graph::Time envelope = -std::numeric_limits<graph::Time>::infinity();
  std::uint64_t emit = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t index = base_index_ + i;
    const osn::Event& e = events[i];
    // The transport delivers in log order at a nondecreasing clock: the
    // running max of event times (responses can trail later sends).
    envelope = std::max(envelope, e.time);

    if (rates_.drop > 0.0 &&
        kind_rng(rates_.seed, index, kDropStream).bernoulli(rates_.drop)) {
      ++delta.dropped;
      continue;
    }

    Arrival a{e, index, envelope};
    if (rates_.reorder > 0.0) {
      stats::Rng rng = kind_rng(rates_.seed, index, kReorderStream);
      if (rng.bernoulli(rates_.reorder)) {
        a.arrival = envelope + rng.uniform(0.0, rates_.max_skew_hours);
        ++delta.reordered;
      }
    }
    if (rates_.regress > 0.0 &&
        kind_rng(rates_.seed, index, kRegressStream)
            .bernoulli(rates_.regress)) {
      a.event.time -= rates_.regress_hours;
      ++delta.regressed;
    }
    if (rates_.malform > 0.0) {
      stats::Rng rng = kind_rng(rates_.seed, index, kMalformStream);
      if (rng.bernoulli(rates_.malform)) {
        switch (rng.uniform_index(4)) {
          case 0:
            a.event.type = static_cast<osn::EventType>(0xFF);
            break;
          case 1:
            a.event.actor = kMalformedNodeId;
            break;
          case 2:
            a.event.time = std::numeric_limits<graph::Time>::quiet_NaN();
            break;
          default:
            if (osn::event_is_relational(a.event.type)) {
              a.event.subject = a.event.actor;
            } else {
              a.event.type = static_cast<osn::EventType>(0xFF);
            }
            break;
        }
        ++delta.malformed;
      }
    }
    staged.push_back({a, emit++});

    if (rates_.duplicate > 0.0) {
      stats::Rng rng = kind_rng(rates_.seed, index, kDuplicateStream);
      if (rng.bernoulli(rates_.duplicate)) {
        Arrival dup = a;
        dup.arrival = a.arrival + (rates_.max_skew_hours > 0.0
                                       ? rng.uniform(0.0,
                                                     rates_.max_skew_hours)
                                       : 0.0);
        staged.push_back({dup, emit++});
        ++delta.duplicated;
      }
    }
    if (rates_.banned_party > 0.0 &&
        e.type == osn::EventType::kAccountBanned &&
        kind_rng(rates_.seed, index, kBannedPartyStream)
            .bernoulli(rates_.banned_party)) {
      // The bot keeps sending after the ban: a request from the banned
      // account, slightly after the ban, to a deterministic target.
      osn::Event hostile{osn::EventType::kRequestSent, e.actor,
                         e.actor == 0 ? 1u : e.actor - 1u, e.time + 0.25};
      staged.push_back(
          {Arrival{hostile, kSynthSeqBase + next_synth_seq_++,
                   envelope + 0.25},
           emit++});
      ++delta.banned_party_injected;
    }
  }
  base_index_ += events.size();

  std::sort(staged.begin(), staged.end(),
            [](const Staged& x, const Staged& y) {
              if (x.a.arrival != y.a.arrival) {
                return x.a.arrival < y.a.arrival;
              }
              return x.emit < y.emit;
            });

  std::vector<Arrival> out;
  out.reserve(staged.size());
  for (const Staged& s : staged) out.push_back(s.a);
  delta.events_out = out.size();

  report_.events_in += delta.events_in;
  report_.events_out += delta.events_out;
  report_.dropped += delta.dropped;
  report_.reordered += delta.reordered;
  report_.duplicated += delta.duplicated;
  report_.regressed += delta.regressed;
  report_.malformed += delta.malformed;
  report_.banned_party_injected += delta.banned_party_injected;

  SYBIL_METRIC_COUNT("stream.faults.events_in", delta.events_in);
  SYBIL_METRIC_COUNT("stream.faults.dropped", delta.dropped);
  SYBIL_METRIC_COUNT("stream.faults.reordered", delta.reordered);
  SYBIL_METRIC_COUNT("stream.faults.duplicated", delta.duplicated);
  SYBIL_METRIC_COUNT("stream.faults.regressed", delta.regressed);
  SYBIL_METRIC_COUNT("stream.faults.malformed", delta.malformed);
  SYBIL_METRIC_COUNT("stream.faults.banned_party_injected",
                     delta.banned_party_injected);
  return out;
}

std::vector<Arrival> FaultInjector::corrupt(const osn::EventLog& log) {
  return corrupt(std::span<const osn::Event>(log.events()));
}

}  // namespace sybil::faults
