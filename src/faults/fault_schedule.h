// Scheduled fault windows: FaultInjector rate ramps over event ranges.
//
// A FaultInjector corrupts a whole stream at one set of rates; real
// incidents come and go. A fault schedule is an ordered list of
// non-overlapping [from_event, to_event) windows, each with its own
// FaultRates — the transport is clean outside the windows and degraded
// inside them. apply_fault_schedule() composes per-window FaultInjector
// passes into one arrival sequence whose seqs stay in *global* stream
// coordinates:
//
//   - outside any window, event i arrives as the identity Arrival
//     {event, seq = i, arrival = running max of event times};
//   - inside a window, the slice runs through a fresh FaultInjector
//     (seeded from the window's own rates.seed) and the slice-local
//     seqs are shifted by from_event, so an undropped original keeps
//     seq == its log index and a duplicate keeps sharing its
//     original's seq;
//   - synthesized banned-party events are renumbered into a single
//     schedule-global range at FaultInjector::kSynthSeqBase, so two
//     windows can never collide.
//
// Determinism matches the injector's: the output is a pure function of
// (events, windows). With an empty schedule the output is the identity
// arrival sequence — which is also the cheapest way to turn a clean
// log into Arrivals.
//
// Time envelope: event times in the service workloads are nondecreasing
// (service/workload.h), so each window's slice-local arrival clock
// equals the global one and the composed sequence is sorted by arrival
// within each segment. Across a window seam the clock may step back by
// up to the window's skew — harmless to a seq-addressed router, and
// absorbed by the detector watermark like any other transport jitter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/fault_injector.h"

namespace sybil::faults {

/// One degraded-transport interval over the clean stream, in event
/// (= global seq) coordinates. Half-open: [from_event, to_event).
struct FaultWindow {
  std::uint64_t from_event = 0;
  std::uint64_t to_event = 0;
  FaultRates rates{};
};

/// Throws std::invalid_argument unless windows are sorted, pairwise
/// disjoint, non-empty, within [0, total_events], and each window's
/// rates pass FaultRates::validate().
void validate_fault_windows(std::span<const FaultWindow> windows,
                            std::uint64_t total_events);

/// Per-window injector reports plus the schedule-wide sum.
struct FaultScheduleReport {
  FaultReport total;
  std::vector<FaultReport> per_window;
};

/// The composed arrival sequence for the whole stream (see file
/// comment). `report`, when non-null, receives what each window did.
std::vector<Arrival> apply_fault_schedule(std::span<const osn::Event> events,
                                          std::span<const FaultWindow> windows,
                                          FaultScheduleReport* report = nullptr);

}  // namespace sybil::faults
