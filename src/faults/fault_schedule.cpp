#include "faults/fault_schedule.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace sybil::faults {

void validate_fault_windows(std::span<const FaultWindow> windows,
                            std::uint64_t total_events) {
  std::uint64_t prev_end = 0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const FaultWindow& win = windows[w];
    if (win.from_event >= win.to_event) {
      throw std::invalid_argument(
          "FaultWindow[" + std::to_string(w) +
          "]: from_event must be < to_event");
    }
    if (win.to_event > total_events) {
      throw std::invalid_argument(
          "FaultWindow[" + std::to_string(w) +
          "]: to_event exceeds the stream length");
    }
    if (w > 0 && win.from_event < prev_end) {
      throw std::invalid_argument(
          "FaultWindow[" + std::to_string(w) +
          "]: windows must be sorted and disjoint");
    }
    win.rates.validate();
    prev_end = win.to_event;
  }
}

std::vector<Arrival> apply_fault_schedule(std::span<const osn::Event> events,
                                          std::span<const FaultWindow> windows,
                                          FaultScheduleReport* report) {
  validate_fault_windows(windows, events.size());
  std::vector<Arrival> out;
  out.reserve(events.size() + events.size() / 8);
  if (report != nullptr) {
    *report = FaultScheduleReport{};
    report->per_window.reserve(windows.size());
  }

  // Identity segments track the same transport clock the injector uses:
  // the running max of clean event times. Windows recompute it locally
  // from their slice, which matches because workload times are
  // nondecreasing (see file comment in fault_schedule.h).
  graph::Time envelope = -std::numeric_limits<graph::Time>::infinity();
  std::uint64_t synth_out = 0;  // schedule-global synthesized-seq count
  std::uint64_t next = 0;       // first event not yet emitted

  const auto emit_identity = [&](std::uint64_t upto) {
    for (std::uint64_t i = next; i < upto; ++i) {
      envelope = std::max(envelope, events[i].time);
      out.push_back(Arrival{events[i], i, envelope});
    }
    next = upto;
  };

  for (const FaultWindow& win : windows) {
    emit_identity(win.from_event);
    FaultInjector injector(win.rates);
    std::vector<Arrival> slice = injector.corrupt(
        events.subspan(win.from_event, win.to_event - win.from_event));
    for (Arrival& a : slice) {
      if (a.seq >= FaultInjector::kSynthSeqBase) {
        a.seq = FaultInjector::kSynthSeqBase + synth_out++;
      } else {
        a.seq += win.from_event;
      }
      out.push_back(a);
    }
    // The envelope stays the running max of *clean* event times, so the
    // identity segments are a pure function of the input stream no
    // matter what the windows did (injected delays do not propagate).
    for (std::uint64_t i = win.from_event; i < win.to_event; ++i) {
      envelope = std::max(envelope, events[i].time);
    }
    next = win.to_event;
    if (report != nullptr) {
      const FaultReport& r = injector.report();
      report->per_window.push_back(r);
      report->total.events_in += r.events_in;
      report->total.events_out += r.events_out;
      report->total.dropped += r.dropped;
      report->total.reordered += r.reordered;
      report->total.duplicated += r.duplicated;
      report->total.regressed += r.regressed;
      report->total.malformed += r.malformed;
      report->total.banned_party_injected += r.banned_party_injected;
    }
  }
  emit_identity(events.size());
  if (report != nullptr) {
    report->total.events_in = events.size();
    report->total.events_out = out.size();
  }
  return out;
}

}  // namespace sybil::faults
