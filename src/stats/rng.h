// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in this library takes an explicit Rng (or a
// 64-bit seed), so that each benchmark and test is reproducible run-to-run
// and across machines. We implement xoshiro256** seeded via splitmix64,
// which is the recommended seeding procedure from the xoshiro authors.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace sybil::stats {

/// Splitmix64 step. Used for seeding and as a cheap standalone mixer.
/// Advances `state` and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// Deterministic 64-bit PRNG (xoshiro256**).
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// used with <random> distributions, though the samplers in this library
/// use the member helpers directly for cross-platform determinism
/// (std::*_distribution output is implementation-defined).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Unbiased uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method.
  std::uint64_t uniform_index(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Forks an independent child generator. The child's seed is derived
  /// from this generator's stream, so distinct forks are decorrelated.
  Rng fork() noexcept;

  /// Full 256-bit stream state, for checkpointing: from_state(state())
  /// continues the exact output sequence (osn/checkpoint relies on this
  /// for deterministic simulator resume).
  std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  static Rng from_state(const std::array<std::uint64_t, 4>& s) noexcept {
    Rng rng(0);
    for (int i = 0; i < 4; ++i) rng.s_[i] = s[i];
    return rng;
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace sybil::stats
