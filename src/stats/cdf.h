// Empirical CDFs, quantiles and histograms — the presentation layer for
// every figure in the paper (all of Figs 1-6 and 9 are CDFs).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sybil::stats {

/// Immutable empirical CDF over a sample of doubles.
class EmpiricalCdf {
 public:
  /// Copies and sorts the sample. Precondition: non-empty.
  explicit EmpiricalCdf(std::span<const double> sample);

  /// Fraction of samples <= x, in [0, 1].
  double at(double x) const;

  /// Smallest sample value v with at(v) >= q. Precondition: 0 <= q <= 1.
  double quantile(double q) const;

  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }
  double mean() const { return mean_; }
  std::size_t size() const { return sorted_.size(); }

  /// Evenly spaced evaluation points for plotting: `points` pairs of
  /// (x, CDF percent in [0, 100]) spanning [min, max].
  struct Point {
    double x;
    double cdf_percent;
  };
  std::vector<Point> series(std::size_t points = 50) const;

  /// Like series(), but x values are log-spaced (requires min() > 0).
  std::vector<Point> log_series(std::size_t points = 50) const;

  /// Renders "x<tab>cdf%" rows, one per point — gnuplot-ready.
  std::string to_tsv(std::size_t points = 50, bool log_x = false) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range values are
/// clamped into the first/last bin so no observation is dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  /// Center of the given bin.
  double bin_center(std::size_t bin) const;
  /// Fraction of mass in the given bin (0 if the histogram is empty).
  double fraction(std::size_t bin) const;

 private:
  double lo_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Histogram with logarithmically spaced bin edges; used for degree
/// distributions. Values below `lo` land in bin 0.
class LogHistogram {
 public:
  /// Bins per decade controls resolution. Precondition: lo > 0, hi > lo.
  LogHistogram(double lo, double hi, std::size_t bins_per_decade = 10);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;

 private:
  double log_lo_, log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace sybil::stats
