// Scalar summary statistics used throughout analysis and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sybil::stats {

/// One-pass accumulator for mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two values.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: summary of a whole sample at once.
RunningStats summarize(std::span<const double> sample) noexcept;

/// Median of the sample (average of the two middle values when even).
/// Precondition: non-empty.
double median(std::span<const double> sample);

/// Gini coefficient of a non-negative sample (0 = perfectly equal,
/// → 1 = concentrated). Used to characterize degree inequality.
/// Precondition: non-empty, non-negative, positive total.
double gini(std::span<const double> sample);

/// Pearson correlation of two equal-length samples.
/// Precondition: sizes match, size >= 2, both have non-zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace sybil::stats
