#include "stats/rng.h"

namespace sybil::stats {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // xoshiro state must not be all-zero; splitmix64 outputs make that
  // astronomically unlikely, and seeding from any value (including 0)
  // yields a well-mixed state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() noexcept { return Rng((*this)()); }

}  // namespace sybil::stats
