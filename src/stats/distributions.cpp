#include "stats/distributions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sybil::stats {

double sample_exponential(Rng& rng, double lambda) {
  if (!(lambda > 0.0)) throw std::invalid_argument("exponential: lambda <= 0");
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - rng.uniform()) / lambda;
}

std::uint64_t sample_poisson(Rng& rng, double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: negative mean");
  if (mean == 0.0) return 0;
  if (mean <= 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = rng.uniform();
    while (product > limit) {
      ++k;
      product *= rng.uniform();
    }
    return k;
  }
  // Normal approximation for large means; clamp at zero.
  const double draw = sample_normal(rng, mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(draw));
}

double sample_lognormal(Rng& rng, double mu, double sigma) {
  return std::exp(sample_normal(rng, mu, sigma));
}

double sample_normal(Rng& rng, double mean, double stddev) {
  // Box-Muller. u1 in (0,1] avoids log(0).
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * M_PI * u2);
}

double sample_bounded_pareto(Rng& rng, double alpha, double lo, double hi) {
  if (!(alpha > 0.0) || !(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument("bounded_pareto: bad parameters");
  }
  const double u = rng.uniform();
  const double la = std::pow(lo, -alpha);
  const double ha = std::pow(hi, -alpha);
  return std::pow(la - u * (la - ha), -1.0 / alpha);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("zipf: n == 0");
  if (!(s > 0.0)) throw std::invalid_argument("zipf: s <= 0");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
}

double ZipfSampler::h(double x) const {
  // Antiderivative of x^-s (the s == 1 limit is log).
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfSampler::h_inv(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  // Rejection sampling against the continuous envelope of the Zipf pmf.
  for (;;) {
    const double u = h_x1_ + rng.uniform() * (h_n_ - h_x1_);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(
        std::clamp(x + 0.5, 1.0, static_cast<double>(n_)));
    const double left = h(static_cast<double>(k) - 0.5);
    const double right = h(static_cast<double>(k) + 0.5);
    const double pmf_mass = right - left;  // integral over [k-0.5, k+0.5]
    const double envelope = std::pow(static_cast<double>(k), -s_);
    // Accept with probability pmf(k) / envelope-mass over the cell.
    if (rng.uniform() * pmf_mass <= envelope) return k;
  }
}

AliasSampler::AliasSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("alias: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("alias: weight must be finite and >= 0");
    }
    total += w;
  }
  if (!(total > 0.0)) throw std::invalid_argument("alias: zero total weight");

  prob_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasSampler::operator()(Rng& rng) const {
  const std::size_t column = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

std::size_t sample_weighted_once(Rng& rng, std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (!(total > 0.0) || !std::isfinite(total)) {
    throw std::invalid_argument("sample_weighted_once: bad total weight");
  }
  double mark = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    mark -= std::max(weights[i], 0.0);
    if (mark <= 0.0) return i;
  }
  return weights.size() - 1;  // floating-point fallthrough
}

std::vector<std::uint64_t> sample_distinct(Rng& rng, std::uint64_t n,
                                           std::uint64_t k) {
  if (k > n) throw std::invalid_argument("sample_distinct: k > n");
  // Robert Floyd's algorithm; O(k) expected with a hash-free scan for the
  // small k this library uses (k is a per-user target batch, not n).
  std::vector<std::uint64_t> chosen;
  chosen.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.uniform_index(j + 1);
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  return chosen;
}

}  // namespace sybil::stats
