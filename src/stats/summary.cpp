#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sybil::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

RunningStats summarize(std::span<const double> sample) noexcept {
  RunningStats s;
  for (double x : sample) s.add(x);
  return s;
}

double median(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("median: empty sample");
  std::vector<double> copy(sample.begin(), sample.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  const double upper = copy[mid];
  if (copy.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lower + upper) / 2.0;
}

double gini(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("gini: empty sample");
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  double total = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < copy.size(); ++i) {
    if (copy[i] < 0.0) throw std::invalid_argument("gini: negative value");
    total += copy[i];
    weighted += static_cast<double>(i + 1) * copy[i];
  }
  if (!(total > 0.0)) throw std::invalid_argument("gini: zero total");
  const auto n = static_cast<double>(copy.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("pearson: need matching samples of size >= 2");
  }
  RunningStats sx = summarize(xs), sy = summarize(ys);
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  if (!(denom > 0.0)) throw std::domain_error("pearson: zero variance");
  return cov / denom;
}

}  // namespace sybil::stats
