#include "stats/cdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace sybil::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  if (sorted_.empty()) throw std::invalid_argument("cdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
          static_cast<double>(sorted_.size());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("cdf: q out of range");
  if (q == 0.0) return sorted_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank, sorted_.size()) - 1];
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::series(
    std::size_t points) const {
  std::vector<Point> out;
  if (points < 2) points = 2;
  out.reserve(points);
  const double lo = min(), hi = max();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({x, 100.0 * at(x)});
  }
  return out;
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::log_series(
    std::size_t points) const {
  if (!(min() > 0.0)) {
    throw std::domain_error("cdf: log_series requires positive samples");
  }
  std::vector<Point> out;
  if (points < 2) points = 2;
  out.reserve(points);
  const double llo = std::log10(min()), lhi = std::log10(max());
  for (std::size_t i = 0; i < points; ++i) {
    const double x = std::pow(
        10.0,
        llo + (lhi - llo) * static_cast<double>(i) / static_cast<double>(points - 1));
    out.push_back({x, 100.0 * at(x)});
  }
  return out;
}

std::string EmpiricalCdf::to_tsv(std::size_t points, bool log_x) const {
  const auto pts = log_x ? log_series(points) : series(points);
  std::ostringstream os;
  for (const auto& p : pts) os << p.x << '\t' << p.cdf_percent << '\n';
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("histogram: bad range or bin count");
  }
}

void Histogram::add(double x, std::uint64_t weight) {
  auto bin = static_cast<std::int64_t>(std::floor((x - lo_) / width_));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_.at(bin)) /
                           static_cast<double>(total_);
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || bins_per_decade == 0) {
    throw std::invalid_argument("log histogram: bad parameters");
  }
  log_lo_ = std::log10(lo);
  log_step_ = 1.0 / static_cast<double>(bins_per_decade);
  const auto nbins = static_cast<std::size_t>(
      std::ceil((std::log10(hi) - log_lo_) / log_step_));
  counts_.assign(std::max<std::size_t>(nbins, 1), 0);
}

void LogHistogram::add(double x, std::uint64_t weight) {
  std::int64_t bin = 0;
  if (x > 0.0) {
    bin = static_cast<std::int64_t>(
        std::floor((std::log10(x) - log_lo_) / log_step_));
  }
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double LogHistogram::bin_lower(std::size_t bin) const {
  return std::pow(10.0, log_lo_ + static_cast<double>(bin) * log_step_);
}

double LogHistogram::bin_upper(std::size_t bin) const {
  return std::pow(10.0, log_lo_ + static_cast<double>(bin + 1) * log_step_);
}

}  // namespace sybil::stats
