// Random samplers used by the OSN workload generators.
//
// All samplers are deterministic functions of the supplied Rng, with no
// hidden global state. The discrete heavy-tailed samplers (Zipf, discrete
// power law) are the workhorses behind degree-targeting and popularity
// bias in the attacker toolkit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace sybil::stats {

/// Samples an exponential with rate `lambda` (mean 1/lambda).
/// Precondition: lambda > 0.
double sample_exponential(Rng& rng, double lambda);

/// Samples a Poisson count with the given mean.
/// Uses Knuth's method for small means and normal approximation with
/// continuity correction for mean > 64 (adequate for workload counts).
std::uint64_t sample_poisson(Rng& rng, double mean);

/// Samples a lognormal: exp(N(mu, sigma^2)).
double sample_lognormal(Rng& rng, double mu, double sigma);

/// Samples a standard normal via Box-Muller (single value; the discarded
/// pair member keeps the interface stateless).
double sample_normal(Rng& rng, double mean = 0.0, double stddev = 1.0);

/// Samples a continuous bounded Pareto on [lo, hi] with exponent alpha>0
/// (density ∝ x^-(alpha+1) truncated to the interval).
double sample_bounded_pareto(Rng& rng, double alpha, double lo, double hi);

/// Zipf sampler over ranks {1..n} with exponent s, using rejection
/// sampling (Jason Crease / Devroye style) — O(1) expected per sample,
/// no O(n) table, valid for s > 0, s != 1 handled too.
class ZipfSampler {
 public:
  /// Precondition: n >= 1, s > 0.
  ZipfSampler(std::uint64_t n, double s);

  /// Returns a rank in [1, n].
  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t n() const noexcept { return n_; }
  double exponent() const noexcept { return s_; }

 private:
  double h(double x) const;          // integral of rank^-s
  double h_inv(double x) const;      // inverse of h
  std::uint64_t n_;
  double s_;
  double h_x1_;                      // h(1.5) - 1
  double h_n_;                       // h(n + 0.5)
};

/// Alias-method sampler over an arbitrary discrete distribution.
/// Construction is O(n); each sample is O(1). Weights need not be
/// normalized; non-finite or negative weights are rejected.
class AliasSampler {
 public:
  explicit AliasSampler(std::span<const double> weights);

  /// Returns an index in [0, size()).
  std::size_t operator()(Rng& rng) const;

  std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Weighted pick without building an alias table: O(n) per call.
/// Useful for one-off draws over small, frequently changing weights.
/// Precondition: weights non-empty with positive finite total.
std::size_t sample_weighted_once(Rng& rng, std::span<const double> weights);

/// Floyd's algorithm: k distinct uniform indices from [0, n), in
/// insertion order (not sorted). Precondition: k <= n.
std::vector<std::uint64_t> sample_distinct(Rng& rng, std::uint64_t n,
                                           std::uint64_t k);

/// In-place Fisher-Yates shuffle.
template <typename T>
void shuffle(Rng& rng, std::vector<T>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace sybil::stats
