#include "osn/network.h"

#include <stdexcept>

namespace sybil::osn {

NodeId Network::add_account(const Account& account, Time now) {
  accounts_.push_back(account);
  ledgers_.emplace_back();
  const NodeId id = graph_.add_node();
  if (keep_log_) log_.append({EventType::kAccountCreated, id, id, now});
  return id;
}

bool Network::add_friendship(NodeId u, NodeId v, Time t) {
  if (u >= accounts_.size() || v >= accounts_.size()) {
    throw std::out_of_range("network: unknown account");
  }
  const bool added = graph_.add_edge(u, v, t);
  if (added && keep_log_) {
    log_.append({EventType::kFriendshipSeeded, u, v, t});
  }
  return added;
}

RequestResult Network::send_request(NodeId from, NodeId to, Time now,
                                    Time respond_at, std::uint8_t tag) {
  if (from >= accounts_.size() || to >= accounts_.size() || from == to) {
    return RequestResult::kInvalid;
  }
  if (accounts_[from].banned() || accounts_[to].banned()) {
    return RequestResult::kPartyBanned;
  }
  if (graph_.has_edge(from, to)) return RequestResult::kAlreadyFriends;
  if (!requested_.insert(pair_key(from, to)).second) {
    return RequestResult::kDuplicate;
  }
  ledgers_[from].record_sent(now);
  ledgers_[to].record_received();
  pending_.push({std::max(respond_at, now), from, to, tag});
  if (keep_log_) log_.append({EventType::kRequestSent, from, to, now});
  return RequestResult::kSent;
}

std::size_t Network::process_responses(Time now, const DecideFn& decide) {
  std::size_t accepted = 0;
  while (!pending_.empty() && pending_.top().respond_at <= now) {
    const Pending p = pending_.top();
    pending_.pop();
    if (accounts_[p.from].banned() || accounts_[p.to].banned()) {
      if (keep_log_) {
        log_.append({EventType::kRequestDropped, p.to, p.from, p.respond_at});
      }
      continue;
    }
    if (decide(p.to, p.from, p.tag)) {
      ledgers_[p.from].record_sent_accepted();
      ledgers_[p.to].record_received_accepted();
      // Stranger-request friendships are weak ties; friend-of-friend
      // introductions are strong (tag 0 == stranger; see osn::RequestTag).
      graph_.add_edge(p.from, p.to, p.respond_at, /*weak=*/p.tag == 0);
      ++accepted;
      if (keep_log_) {
        log_.append({EventType::kRequestAccepted, p.to, p.from, p.respond_at});
      }
    } else if (keep_log_) {
      log_.append({EventType::kRequestRejected, p.to, p.from, p.respond_at});
    }
  }
  return accepted;
}

void Network::ban(NodeId who, Time now) {
  Account& acc = accounts_.at(who);
  if (acc.banned()) return;
  acc.banned_at = now;
  if (keep_log_) log_.append({EventType::kAccountBanned, who, who, now});
}

std::vector<NodeId> Network::ids_of_kind(AccountKind kind) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < accounts_.size(); ++id) {
    if (accounts_[id].kind == kind) out.push_back(id);
  }
  return out;
}

}  // namespace sybil::osn
