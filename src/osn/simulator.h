// Ground-truth simulation: the substitute for the paper's 1000-Sybil /
// 1000-normal verified dataset and the 400-hour behavioral window that
// Figs 1-4 and Table 1 are computed from.
//
// The simulator advances in 1-hour steps. Each hour, online normal users
// send invites (mostly to friends-of-friends), online Sybils run their
// management tool (popularity-biased targeting at high rates), pending
// requests that have reached their think-time deadline get answered, and
// Sybils whose "prior-technique" detection time has arrived are banned.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/generators.h"
#include "osn/behavior.h"
#include "osn/network.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace sybil::osn {

struct GroundTruthConfig {
  /// Background population forming the ambient social graph. The
  /// population scale sets the ambient edge density and therefore the
  /// floor on Sybil clustering coefficients; 60k reproduces the paper's
  /// Table 1 numbers (see EXPERIMENTS.md for the scaling discussion).
  std::uint32_t background_users = 60'000;
  /// Tracked accounts: the simulated counterpart of Renren's verified
  /// 1000 + 1000 ground-truth set. Subjects behave exactly like
  /// background accounts of their kind; they are only *tracked*.
  std::uint32_t subject_normals = 1'000;
  std::uint32_t subject_sybils = 1'000;

  double sim_hours = 400.0;
  std::uint64_t seed = 42;

  /// Seed social graph among normal users (pre-existing friendships).
  /// Triadic closure is set so the measured first-50-friends clustering
  /// of normal users lands near the paper's 0.0386 average.
  graph::OsnGraphParams seed_graph{
      .nodes = 0,  // overwritten with the normal population size
      .mean_links = 12.0,
      .triadic_closure = 0.22,
      .pa_beta = 0.8,
  };

  NormalBehaviorParams normal;
  SybilBehaviorParams sybil;

  /// Mean think time before a request is answered, hours (exponential).
  double response_delay_mean = 12.0;
  /// How often the attacker tools refresh their popularity index.
  double popularity_rebuild_hours = 24.0;
};

class GroundTruthSimulator {
 public:
  explicit GroundTruthSimulator(GroundTruthConfig config);

  /// Callback invoked after each simulated hour completes — the hook a
  /// deployed detector (or any live instrumentation) attaches to.
  using HourHook = std::function<void(Time end_of_hour, Network&)>;
  void set_hour_hook(HourHook hook) { hour_hook_ = std::move(hook); }

  /// Runs the full window. Idempotent guard: throws if called twice.
  void run();

  const Network& network() const noexcept { return net_; }
  Network& network() noexcept { return net_; }

  /// Node ids of the tracked subject accounts.
  const std::vector<NodeId>& subject_normals() const noexcept {
    return subject_normals_;
  }
  const std::vector<NodeId>& subject_sybils() const noexcept {
    return subject_sybils_;
  }

  const GroundTruthConfig& config() const noexcept { return config_; }

 private:
  void populate();
  void seed_friendships();
  void rebuild_popularity_index();
  NodeId pick_stranger(NodeId self);
  /// Friend-of-friend pick; falls back to a stranger when u is isolated.
  std::pair<NodeId, std::uint8_t> pick_normal_target(NodeId u);
  NodeId pick_sybil_target(NodeId self);
  bool decide_response(NodeId target, NodeId requester, std::uint8_t tag);
  void hour_step(Time t);

  GroundTruthConfig config_;
  stats::Rng rng_;
  Network net_;
  std::vector<NodeId> normal_ids_;  // background + subjects
  std::vector<NodeId> subject_normals_;
  std::vector<NodeId> subject_sybils_;
  std::vector<Time> sybil_ban_at_;  // parallel to subject_sybils_
  std::unique_ptr<stats::AliasSampler> popularity_;
  HourHook hour_hook_;
  bool ran_ = false;
};

}  // namespace sybil::osn
