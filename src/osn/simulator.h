// Ground-truth simulation: the substitute for the paper's 1000-Sybil /
// 1000-normal verified dataset and the 400-hour behavioral window that
// Figs 1-4 and Table 1 are computed from.
//
// The simulator advances in 1-hour steps. Each hour, online normal users
// send invites (mostly to friends-of-friends), online Sybils run their
// management tool (popularity-biased targeting at high rates), pending
// requests that have reached their think-time deadline get answered, and
// Sybils whose "prior-technique" detection time has arrived are banned.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/generators.h"
#include "osn/behavior.h"
#include "osn/network.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace sybil::osn {

struct GroundTruthConfig {
  /// Background population forming the ambient social graph. The
  /// population scale sets the ambient edge density and therefore the
  /// floor on Sybil clustering coefficients; 60k reproduces the paper's
  /// Table 1 numbers (see EXPERIMENTS.md for the scaling discussion).
  std::uint32_t background_users = 60'000;
  /// Tracked accounts: the simulated counterpart of Renren's verified
  /// 1000 + 1000 ground-truth set. Subjects behave exactly like
  /// background accounts of their kind; they are only *tracked*.
  std::uint32_t subject_normals = 1'000;
  std::uint32_t subject_sybils = 1'000;

  double sim_hours = 400.0;
  std::uint64_t seed = 42;

  /// Seed social graph among normal users (pre-existing friendships).
  /// Triadic closure is set so the measured first-50-friends clustering
  /// of normal users lands near the paper's 0.0386 average.
  graph::OsnGraphParams seed_graph{
      .nodes = 0,  // overwritten with the normal population size
      .mean_links = 12.0,
      .triadic_closure = 0.22,
      .pa_beta = 0.8,
  };

  NormalBehaviorParams normal;
  SybilBehaviorParams sybil;

  /// Mean think time before a request is answered, hours (exponential).
  double response_delay_mean = 12.0;
  /// How often the attacker tools refresh their popularity index.
  double popularity_rebuild_hours = 24.0;
};

class GroundTruthSimulator {
 public:
  explicit GroundTruthSimulator(GroundTruthConfig config);

  /// Callback invoked after each simulated hour completes — the hook a
  /// deployed detector (or any live instrumentation) attaches to.
  using HourHook = std::function<void(Time end_of_hour, Network&)>;
  void set_hour_hook(HourHook hook) { hour_hook_ = std::move(hook); }

  /// Runs (or, on a checkpoint-restored simulator, resumes) the window
  /// from hours_completed() to config().sim_hours. Throws if the window
  /// already finished. A hook that saves a checkpoint mid-run (see
  /// osn/checkpoint.h) observes hours_completed() already advanced past
  /// the hour it fires after, so load+run continues at the next hour.
  void run();

  /// Simulated hours completed so far (equals config().sim_hours once
  /// run() returns; non-zero on a simulator restored mid-window).
  std::uint64_t hours_completed() const noexcept { return hours_done_; }
  bool finished() const noexcept { return finished_; }

  const Network& network() const noexcept { return net_; }
  Network& network() noexcept { return net_; }

  /// Node ids of the tracked subject accounts.
  const std::vector<NodeId>& subject_normals() const noexcept {
    return subject_normals_;
  }
  const std::vector<NodeId>& subject_sybils() const noexcept {
    return subject_sybils_;
  }

  const GroundTruthConfig& config() const noexcept { return config_; }

 private:
  // Serializes/restores the full private state for crash-safe resume
  // (osn/checkpoint.cpp). Restored simulators are built with the
  // RestoreTag ctor, which skips populate()/seed_friendships().
  friend struct CheckpointAccess;
  struct RestoreTag {};
  GroundTruthSimulator(GroundTruthConfig config, RestoreTag);

  void populate();
  void seed_friendships();
  void rebuild_popularity_index();
  NodeId pick_stranger(NodeId self);
  /// Friend-of-friend pick; falls back to a stranger when u is isolated.
  std::pair<NodeId, std::uint8_t> pick_normal_target(NodeId u);
  NodeId pick_sybil_target(NodeId self);
  bool decide_response(NodeId target, NodeId requester, std::uint8_t tag);
  void hour_step(Time t);

  GroundTruthConfig config_;
  stats::Rng rng_;
  Network net_;
  std::vector<NodeId> normal_ids_;  // background + subjects
  std::vector<NodeId> subject_normals_;
  std::vector<NodeId> subject_sybils_;
  std::vector<Time> sybil_ban_at_;  // parallel to subject_sybils_
  /// Weights captured at the last popularity rebuild. Kept so a resumed
  /// run can rebuild the *same* sampler the uninterrupted run was using
  /// (rebuilding from the current graph would reflect edges added since
  /// the last scheduled rebuild and diverge).
  std::vector<double> popularity_weights_;
  std::unique_ptr<stats::AliasSampler> popularity_;
  HourHook hour_hook_;
  std::uint64_t hours_done_ = 0;
  std::uint64_t next_rebuild_ = 0;
  bool running_ = false;  // transient reentrancy guard, not checkpointed
  bool finished_ = false;
};

}  // namespace sybil::osn
