// Account model for the simulated OSN.
//
// Mirrors the aspects of a Renren account the paper's analysis touches:
// account kind (ground truth), gender (the paper notes 77.3% of Sybils
// present as female vs 46.5% of the population), profile attractiveness
// (Sybils use attractive profile photos to win accepts), per-user
// "openness" (how indiscriminately a user accepts strangers — popular
// users are more open, which is why Sybil tools target them), and ban
// state.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.h"

namespace sybil::osn {

using graph::NodeId;
using graph::Time;

enum class AccountKind : std::uint8_t { kNormal, kSybil };
enum class Gender : std::uint8_t { kFemale, kMale };

struct Account {
  AccountKind kind = AccountKind::kNormal;
  Gender gender = Gender::kFemale;
  Time created_at = 0.0;
  std::optional<Time> banned_at;

  /// How appealing this account's profile is to strangers, in [0, 1].
  /// Sybil tools fill profiles with attractive photos → high values.
  double attractiveness = 0.5;

  /// Base probability of accepting a stranger's friend request, in [0,1].
  /// Heterogeneous across normal users (gives the dispersed incoming-
  /// accept CDF of Fig 3); 1.0 for Sybils (they accept everything).
  double openness = 0.5;

  /// Target friend-invitation rate while active, in invites/hour.
  double invite_rate = 0.1;

  /// Total friend-request budget (tool campaign size); 0 = unlimited.
  std::uint32_t request_budget = 0;

  /// Stealthy Sybils throttle their rate and friend through mutual-
  /// friend chains, making them look closer to normal users — the
  /// borderline cases behind the paper's ~1% classifier error.
  bool stealthy = false;

  bool banned() const noexcept { return banned_at.has_value(); }
  bool is_sybil() const noexcept { return kind == AccountKind::kSybil; }
};

}  // namespace sybil::osn
