// Crash-safe simulator checkpoints (docs/FORMATS.md §Checkpoint).
//
// save_checkpoint captures the COMPLETE GroundTruthSimulator state —
// configuration, the xoshiro RNG stream, every account and ledger, the
// friendship graph with per-node adjacency order, the pending-request
// heap in its exact array order, the all-time request-dedup set, the
// event log, subject rosters, scheduled ban times, the popularity
// sampler's last-rebuild weights, and the progress cursor — such that
//
//   load_checkpoint(save_checkpoint(sim))->run()
//
// produces byte-identical downstream results (feature columns, bench
// series, event logs) versus the same simulator never having stopped.
// Writes are atomic (temp file + rename): a process killed mid-save
// leaves the previous checkpoint intact, never a torn file.
//
// Intended use: attach an hour hook that calls save_checkpoint every N
// hours; after a crash, load_checkpoint and call run() to finish the
// window (see examples/checkpoint_resume.cpp).
#pragma once

#include <memory>
#include <string>

#include "osn/simulator.h"

namespace sybil::osn {

/// Atomically writes the simulator's full state to `path`. May be
/// called mid-run from an hour hook (the hook fires between hours, when
/// the state is at a consistent hour boundary). Throws
/// io::SnapshotError(kWriteFailed) on I/O failure.
void save_checkpoint(const GroundTruthSimulator& sim,
                     const std::string& path);

/// Restores a simulator from a checkpoint. Call run() on the result to
/// continue the window; hooks are not serialized — re-attach before
/// running. Rejects corrupt, truncated, version-bumped or non-checkpoint
/// files with typed io::SnapshotErrors, never partial state.
std::unique_ptr<GroundTruthSimulator> load_checkpoint(
    const std::string& path);

}  // namespace sybil::osn
