// Behavioral models for normal users and Sybils.
//
// These encode the generative regularities the paper measures in
// Section 2.2. The parameter defaults are calibrated so that the
// *measured* features (through core::FeatureExtractor) land near the
// paper's numbers: normal outgoing-accept ≈ 0.79, Sybil ≈ 0.26; Sybil
// short-window invite rate such that a 40/hour threshold catches ≈70%
// with no normal false positives; incoming-accept ≈ uniform spread for
// normal users vs ≈1 for Sybils.
#pragma once

#include <cstdint>

#include "osn/account.h"
#include "stats/rng.h"

namespace sybil::osn {

/// Tag values attached to friend requests (see Network::send_request).
enum RequestTag : std::uint8_t {
  kTagStranger = 0,       // target picked with no prior relationship
  kTagFriendOfFriend = 1, // target shares a mutual friend with the sender
};

/// Parameters of the normal-user population.
struct NormalBehaviorParams {
  double female_fraction = 0.465;  // paper: Renren-wide share

  /// Probability a user is online (able to act) in a given hour.
  double online_prob = 0.05;
  /// Per-user mean invites per online hour: lognormal(log(mu), sigma).
  double session_invites_mu = 1.3;
  double session_invites_sigma = 0.5;
  /// Hard cap on a normal user's hourly invite appetite — keeps the
  /// 40/hour detector threshold at zero false positives, as in Fig 1.
  double session_invites_cap = 12.0;

  /// Probability an invite goes to a friend-of-friend vs a stranger.
  double fof_target_prob = 0.9;

  /// Acceptance model: a friend-of-friend request is accepted with
  /// probability fof_accept_base + fof_accept_openness * openness.
  double fof_accept_base = 0.72;
  double fof_accept_openness = 0.26;
  /// A stranger request is accepted with probability
  /// openness * stranger_scale * (0.35 + 0.65 * requester_attractiveness).
  double stranger_scale = 0.55;

  /// A small share of legitimate users behave like marketers: high
  /// invite rates, mostly strangers, poor accept ratios. They are the
  /// honest accounts a behavioral detector risks false-flagging.
  double aggressive_fraction = 0.015;
  double aggressive_rate_mu = 14.0;
  double aggressive_rate_cap = 32.0;
  double aggressive_fof_prob = 0.3;
};

/// Parameters of the Sybil population / attacker tooling.
struct SybilBehaviorParams {
  double female_fraction = 0.773;  // paper: share among ground-truth Sybils

  /// Sybils run management tools: online most of the time.
  double online_prob = 0.7;
  /// Per-Sybil invites per online hour: lognormal(log(mu), sigma).
  /// Median 60 with sigma 0.45 puts ≈70% of measured short-window rates
  /// above 40/hour (budget exhaustion dilutes the final active hour).
  double invites_per_hour_mu = 60.0;
  double invites_per_hour_sigma = 0.45;

  /// Profile attractiveness (young men/women photos).
  double attractiveness_mu = 0.9;
  double attractiveness_jitter = 0.08;

  /// Popularity bias of the tool's target selection: targets are drawn
  /// with probability proportional to (degree + 1)^target_bias.
  double target_bias = 0.4;
  /// Fraction of targets picked uniformly at random (tool exploration;
  /// keeps a Sybil's friend set from collapsing onto the densely
  /// interlinked top of the popularity ranking).
  double uniform_mix = 0.25;

  /// Total request budget per Sybil (the tool campaign size), lognormal
  /// across Sybils. The paper's Sybils accumulate a few hundred friends
  /// (Fig 5) at a ~26% accept rate.
  double request_budget_median = 500.0;
  double request_budget_sigma = 0.5;

  /// Share of "stealthy" Sybils: throttled rate, mutual-friend-chain
  /// targeting (their requests often look like friend-of-friend ones).
  double stealth_fraction = 0.01;
  double stealth_rate_factor = 0.15;
  double stealth_fof_prob = 0.5;
  /// Stealthy Sybils also answer incoming requests selectively, to
  /// blend in (ordinary Sybils accept everything).
  double stealth_incoming_accept = 0.75;

  /// Hours of activity before Renren's (prior) detection bans a Sybil,
  /// uniform in [ban_after_min, ban_after_max].
  double ban_after_min = 60.0;
  double ban_after_max = 380.0;
};

/// Draws a normal-user account from the population model. `openness`
/// is uniform in [0, 1] — the heterogeneity behind Fig 3's dispersion.
Account make_normal_account(const NormalBehaviorParams& p, Time now,
                            stats::Rng& rng);

/// Draws a Sybil account (attractive profile, accept-everything policy).
Account make_sybil_account(const SybilBehaviorParams& p, Time now,
                           stats::Rng& rng);

/// Acceptance decision of a normal target for an incoming request.
bool normal_accepts(const NormalBehaviorParams& p, const Account& target,
                    const Account& requester, std::uint8_t tag,
                    stats::Rng& rng);

}  // namespace sybil::osn
