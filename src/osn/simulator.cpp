#include "osn/simulator.h"

#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>

#include "core/metrics/instrument.h"

namespace sybil::osn {

GroundTruthSimulator::GroundTruthSimulator(GroundTruthConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  populate();
  seed_friendships();
  rebuild_popularity_index();
}

GroundTruthSimulator::GroundTruthSimulator(GroundTruthConfig config,
                                           RestoreTag)
    : config_(std::move(config)), rng_(config_.seed) {
  // Checkpoint restore: CheckpointAccess overwrites every member
  // (including rng_) before the simulator is handed out.
}

void GroundTruthSimulator::populate() {
  const auto add_normals = [&](std::uint32_t count,
                               std::vector<NodeId>* track) {
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeId id =
          net_.add_account(make_normal_account(config_.normal, 0.0, rng_));
      normal_ids_.push_back(id);
      if (track) track->push_back(id);
    }
  };
  add_normals(config_.background_users, nullptr);
  add_normals(config_.subject_normals, &subject_normals_);
  for (std::uint32_t i = 0; i < config_.subject_sybils; ++i) {
    const NodeId id =
        net_.add_account(make_sybil_account(config_.sybil, 0.0, rng_));
    subject_sybils_.push_back(id);
    sybil_ban_at_.push_back(rng_.uniform(config_.sybil.ban_after_min,
                                         config_.sybil.ban_after_max));
  }
}

void GroundTruthSimulator::seed_friendships() {
  // Pre-existing friendships among normal users only; Sybils are fresh
  // accounts. The seed graph's insertion order provides the chronological
  // "first 50 friends" prefix for normal subjects (Fig 4), with negative
  // timestamps marking the pre-window era.
  graph::OsnGraphParams params = config_.seed_graph;
  params.nodes = static_cast<graph::NodeId>(normal_ids_.size());
  stats::Rng seed_rng = rng_.fork();
  const graph::TimestampedGraph seed = osn_like_graph(params, seed_rng);
  const double span = std::max(1.0, static_cast<double>(seed.edge_count()));
  for (graph::NodeId u = 0; u < seed.node_count(); ++u) {
    for (const graph::Neighbor& nb : seed.neighbors(u)) {
      if (u < nb.node) {
        // Map insertion index to a negative pre-window timestamp.
        const Time t = -1.0 - (span - nb.created_at);
        net_.add_friendship(normal_ids_[u], normal_ids_[nb.node], t);
      }
    }
  }
}

void GroundTruthSimulator::rebuild_popularity_index() {
  std::vector<double> weights(net_.account_count());
  const auto& g = net_.graph();
  for (NodeId id = 0; id < weights.size(); ++id) {
    weights[id] = net_.account(id).banned()
                      ? 0.0
                      : std::pow(static_cast<double>(g.degree(id)) + 1.0,
                                 config_.sybil.target_bias);
  }
  popularity_ = std::make_unique<stats::AliasSampler>(weights);
  popularity_weights_ = std::move(weights);
}

NodeId GroundTruthSimulator::pick_stranger(NodeId self) {
  for (int guard = 0; guard < 8; ++guard) {
    const auto cand =
        static_cast<NodeId>(rng_.uniform_index(net_.account_count()));
    if (cand != self && !net_.account(cand).banned()) return cand;
  }
  return self;  // caller rejects self-requests
}

std::pair<NodeId, std::uint8_t> GroundTruthSimulator::pick_normal_target(
    NodeId u) {
  const auto& g = net_.graph();
  // Aggressive (marketer-like) normals target mostly strangers; they are
  // identified by an invite rate above the regular session cap.
  const double fof_prob =
      net_.account(u).invite_rate > config_.normal.session_invites_cap
          ? config_.normal.aggressive_fof_prob
          : config_.normal.fof_target_prob;
  if (g.degree(u) > 0 && rng_.bernoulli(fof_prob)) {
    // People extend their circle through *strong* ties: bridge through a
    // real friend and target one of that friend's real friends. A Sybil
    // that wormed into u's list via a stranger request is never used as
    // a bridge and rarely surfaces as a target — which is why Sybil
    // neighborhoods stay triangle-free (Fig 4).
    const auto strong_pick = [this](std::span<const graph::Neighbor> list)
        -> std::optional<NodeId> {
      for (int attempt = 0; attempt < 6 && !list.empty(); ++attempt) {
        const auto& cand = list[rng_.uniform_index(list.size())];
        if (!cand.weak) return cand.node;
      }
      return std::nullopt;
    };
    if (const auto bridge = strong_pick(g.neighbors(u))) {
      if (const auto target = strong_pick(g.neighbors(*bridge))) {
        if (*target != u && !net_.account(*target).banned()) {
          return {*target, kTagFriendOfFriend};
        }
      }
    }
  }
  return {pick_stranger(u), kTagStranger};
}

NodeId GroundTruthSimulator::pick_sybil_target(NodeId self) {
  for (int guard = 0; guard < 8; ++guard) {
    const NodeId cand =
        rng_.bernoulli(config_.sybil.uniform_mix)
            ? static_cast<NodeId>(rng_.uniform_index(net_.account_count()))
            : static_cast<NodeId>((*popularity_)(rng_));
    if (cand != self && !net_.account(cand).banned()) return cand;
  }
  return self;
}

void GroundTruthSimulator::hour_step(Time t) {
  SYBIL_METRIC_SCOPED_TIMER(span, "osn.hour_step");
  SYBIL_METRIC_COUNT("osn.hours", 1);
  const auto respond_time = [&](Time now) {
    return now + stats::sample_exponential(
                     rng_, 1.0 / config_.response_delay_mean);
  };

  // Normal users (background + subjects) act identically.
  for (NodeId u : normal_ids_) {
    const Account& acc = net_.account(u);
    if (acc.banned() || !rng_.bernoulli(config_.normal.online_prob)) continue;
    const auto invites = stats::sample_poisson(rng_, acc.invite_rate);
    for (std::uint64_t i = 0; i < invites; ++i) {
      const auto [target, tag] = pick_normal_target(u);
      if (target == u) continue;
      const Time sent_at = t + rng_.uniform();
      net_.send_request(u, target, sent_at, respond_time(sent_at), tag);
    }
  }

  // Sybils run their tools until the campaign budget is spent.
  for (std::size_t i = 0; i < subject_sybils_.size(); ++i) {
    const NodeId s = subject_sybils_[i];
    const Account& acc = net_.account(s);
    if (acc.banned() || !rng_.bernoulli(config_.sybil.online_prob)) continue;
    if (acc.request_budget != 0 &&
        net_.ledger(s).sent() >= acc.request_budget) {
      continue;  // tool campaign finished
    }
    auto invites = stats::sample_poisson(rng_, acc.invite_rate);
    if (acc.request_budget != 0) {
      invites = std::min<std::uint64_t>(
          invites, acc.request_budget - net_.ledger(s).sent());
    }
    const auto& g = net_.graph();
    for (std::uint64_t k = 0; k < invites; ++k) {
      NodeId target;
      std::uint8_t tag = kTagStranger;
      // Stealthy Sybils friend through mutual-friend chains: the target
      // genuinely shares a friend, so the request arrives as FoF.
      if (acc.stealthy && g.degree(s) > 0 &&
          rng_.bernoulli(config_.sybil.stealth_fof_prob)) {
        const auto friends = g.neighbors(s);
        const NodeId f = friends[rng_.uniform_index(friends.size())].node;
        const auto fof = g.neighbors(f);
        target = fof.empty() ? pick_sybil_target(s)
                             : fof[rng_.uniform_index(fof.size())].node;
        if (target != s && !net_.account(target).banned() &&
            net_.graph().has_edge(f, target)) {
          tag = kTagFriendOfFriend;
        }
      } else {
        target = pick_sybil_target(s);
      }
      if (target == s || net_.account(target).banned()) continue;
      const Time sent_at = t + rng_.uniform();
      net_.send_request(s, target, sent_at, respond_time(sent_at), tag);
    }
  }

  // Answer everything due by the end of this hour.
  net_.process_responses(t + 1.0,
                         [this](NodeId target, NodeId requester,
                                std::uint8_t tag) {
                           return decide_response(target, requester, tag);
                         });

  // Renren's pre-existing detection techniques ban Sybils over time.
  for (std::size_t i = 0; i < subject_sybils_.size(); ++i) {
    if (!net_.account(subject_sybils_[i]).banned() && t >= sybil_ban_at_[i]) {
      net_.ban(subject_sybils_[i], t);
    }
  }
}

void GroundTruthSimulator::run() {
  if (finished_ || running_) {
    throw std::logic_error("simulator: run() called twice");
  }
  running_ = true;
  SYBIL_METRIC_SCOPED_TIMER(span, "osn.run");
  SYBIL_METRIC_GAUGE_SET("osn.accounts", net_.account_count());
  const auto hours = static_cast<std::uint64_t>(config_.sim_hours);
  for (std::uint64_t h = hours_done_; h < hours; ++h) {
    if (h >= next_rebuild_) {
      rebuild_popularity_index();
      next_rebuild_ =
          h + std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(
                         config_.popularity_rebuild_hours));
    }
    hour_step(static_cast<Time>(h));
    // Advance the progress cursor BEFORE the hook fires: a checkpoint
    // saved from the hook records hour h as done, so a resumed run
    // re-enters the loop at h+1 rather than replaying hour h.
    hours_done_ = h + 1;
    if (hour_hook_) hour_hook_(static_cast<Time>(h) + 1.0, net_);
  }
  hours_done_ = hours;
  // Drain any stragglers past the window end.
  net_.process_responses(config_.sim_hours + 1e9,
                         [this](NodeId target, NodeId requester,
                                std::uint8_t tag) {
                           return decide_response(target, requester, tag);
                         });
  running_ = false;
  finished_ = true;
}

bool GroundTruthSimulator::decide_response(NodeId target, NodeId requester,
                                           std::uint8_t tag) {
  const Account& tgt = net_.account(target);
  if (tgt.is_sybil()) {
    // Sybils accept every incoming request (Fig 3); the rare stealthy
    // ones answer selectively to blend in.
    return !tgt.stealthy ||
           rng_.bernoulli(config_.sybil.stealth_incoming_accept);
  }
  return normal_accepts(config_.normal, tgt, net_.account(requester), tag,
                        rng_);
}

}  // namespace sybil::osn
