// Per-account friend-request ledger.
//
// Accumulates exactly the counters the paper's real-time detector needs:
// how many requests an account sent / had accepted, received / accepted,
// and the temporal structure of its sending (per-hour buckets) from
// which both the short-window (1 h) and long-window (400 h) invitation
// frequencies of Fig 1 are derived.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace sybil::osn {

class RequestLedger {
 public:
  /// Records an outgoing friend request at time t (hours).
  void record_sent(graph::Time t) noexcept;
  /// Records that one of this account's outgoing requests was accepted.
  void record_sent_accepted() noexcept { ++sent_accepted_; }
  /// Records an incoming friend request.
  void record_received() noexcept { ++received_; }
  /// Records that this account accepted an incoming request.
  void record_received_accepted() noexcept { ++received_accepted_; }

  std::uint32_t sent() const noexcept { return sent_; }
  std::uint32_t sent_accepted() const noexcept { return sent_accepted_; }
  std::uint32_t received() const noexcept { return received_; }
  std::uint32_t received_accepted() const noexcept {
    return received_accepted_;
  }

  /// Number of distinct 1-hour buckets with at least one outgoing invite.
  std::uint32_t active_hours() const noexcept { return active_hours_; }
  /// Largest number of invites sent within a single 1-hour bucket.
  std::uint32_t max_hourly() const noexcept { return max_hourly_; }
  /// Mean invites per *active* hour: the short-time-scale frequency.
  double short_term_rate() const noexcept;
  /// Mean invites per hour over a window of `window_hours` (Fig 1 uses
  /// 400): the long-time-scale frequency.
  double long_term_rate(double window_hours) const noexcept;

  graph::Time first_send() const noexcept { return first_send_; }
  graph::Time last_send() const noexcept { return last_send_; }

  /// Flat copy of the full counter state, for checkpointing — includes
  /// the in-progress hour bucket, which the public accessors fold away
  /// but an exact resume must preserve.
  struct Raw {
    std::uint32_t sent, sent_accepted, received, received_accepted;
    std::int64_t current_bucket;
    std::uint32_t current_bucket_count, active_hours, max_hourly;
    graph::Time first_send, last_send;
  };
  Raw raw() const noexcept {
    return {sent_,           sent_accepted_, received_,
            received_accepted_, current_bucket_, current_bucket_count_,
            active_hours_,   max_hourly_,    first_send_,
            last_send_};
  }
  static RequestLedger from_raw(const Raw& r) noexcept {
    RequestLedger ledger;
    ledger.sent_ = r.sent;
    ledger.sent_accepted_ = r.sent_accepted;
    ledger.received_ = r.received;
    ledger.received_accepted_ = r.received_accepted;
    ledger.current_bucket_ = r.current_bucket;
    ledger.current_bucket_count_ = r.current_bucket_count;
    ledger.active_hours_ = r.active_hours;
    ledger.max_hourly_ = r.max_hourly;
    ledger.first_send_ = r.first_send;
    ledger.last_send_ = r.last_send;
    return ledger;
  }

 private:
  std::uint32_t sent_ = 0;
  std::uint32_t sent_accepted_ = 0;
  std::uint32_t received_ = 0;
  std::uint32_t received_accepted_ = 0;

  std::int64_t current_bucket_ = -1;
  std::uint32_t current_bucket_count_ = 0;
  std::uint32_t active_hours_ = 0;
  std::uint32_t max_hourly_ = 0;
  graph::Time first_send_ = -1.0;
  graph::Time last_send_ = -1.0;
};

}  // namespace sybil::osn
