#include "osn/events.h"

namespace sybil::osn {

void EventLog::append(Event e) {
  events_.push_back(e);
  ++counts_[static_cast<std::size_t>(e.type)];
}

void EventLog::clear() {
  events_.clear();
  for (auto& c : counts_) c = 0;
}

}  // namespace sybil::osn
