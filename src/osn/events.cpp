#include "osn/events.h"

#include <algorithm>
#include <limits>

namespace sybil::osn {

void EventLog::append(Event e) {
  events_.push_back(e);
  ++counts_[static_cast<std::size_t>(e.type)];
}

void EventLog::clear() {
  events_.clear();
  for (auto& c : counts_) c = 0;
}

graph::Time EventLog::max_inversion_hours() const noexcept {
  graph::Time running_max = -std::numeric_limits<graph::Time>::infinity();
  graph::Time worst = 0.0;
  for (const Event& e : events_) {
    if (e.time < running_max) worst = std::max(worst, running_max - e.time);
    running_max = std::max(running_max, e.time);
  }
  return worst;
}

}  // namespace sybil::osn
