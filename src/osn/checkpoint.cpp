#include "osn/checkpoint.h"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "core/metrics/instrument.h"
#include "io/container.h"

namespace sybil::osn {

// Friend of Network and GroundTruthSimulator: the one place private
// simulator state is serialized/restored.
struct CheckpointAccess {
  using Pending = Network::Pending;
  using PendingQueue = decltype(Network::pending_);

  // Standard trick for reaching std::priority_queue's protected
  // container: `c` is inherited from PendingQueue, so &QueueAccess::c
  // has type `std::vector<Pending> PendingQueue::*` and applies to the
  // queue directly. Saving the heap's exact array (rather than
  // re-pushing popped elements) keeps resumed pop order byte-identical
  // even for tied respond_at values.
  struct QueueAccess : PendingQueue {
    static const std::vector<Pending>& container(const PendingQueue& q) {
      return q.*&QueueAccess::c;
    }
    static std::vector<Pending>& container(PendingQueue& q) {
      return q.*&QueueAccess::c;
    }
  };

  static void save(const GroundTruthSimulator& sim, const std::string& path);
  static std::unique_ptr<GroundTruthSimulator> load(const std::string& path);
};

namespace {

using io::ByteReader;
using io::ByteWriter;
using io::SnapshotError;
using io::SnapshotErrorCode;

// Section ids (docs/FORMATS.md §Checkpoint).
constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecConfig = 2;
constexpr std::uint32_t kSecRng = 3;
constexpr std::uint32_t kSecAccounts = 4;
constexpr std::uint32_t kSecLedgers = 5;
constexpr std::uint32_t kSecGraphDegrees = 6;
constexpr std::uint32_t kSecGraphNbrNode = 7;
constexpr std::uint32_t kSecGraphNbrTime = 8;
constexpr std::uint32_t kSecGraphNbrWeak = 9;
constexpr std::uint32_t kSecPending = 10;
constexpr std::uint32_t kSecRequested = 11;
constexpr std::uint32_t kSecEvents = 12;
constexpr std::uint32_t kSecNormalIds = 13;
constexpr std::uint32_t kSecSubjectNormals = 14;
constexpr std::uint32_t kSecSubjectSybils = 15;
constexpr std::uint32_t kSecBanAt = 16;
constexpr std::uint32_t kSecPopularity = 17;

struct Meta {
  std::uint64_t accounts;
  std::uint64_t pending;
  std::uint64_t requested;
  std::uint64_t events;
  std::uint64_t hours_done;
  std::uint64_t next_rebuild;
  std::uint8_t finished;
  std::uint8_t keep_log;
};

// One field list, two directions: Io is ByteWriter-backed (serialize)
// or ByteReader-backed (restore). Field order is the on-disk order —
// append new fields at the end and bump io::kFormatVersion.
template <typename Io>
void visit_config(GroundTruthConfig& c, Io&& io) {
  io(c.background_users);
  io(c.subject_normals);
  io(c.subject_sybils);
  io(c.sim_hours);
  io(c.seed);
  io(c.seed_graph.nodes);
  io(c.seed_graph.mean_links);
  io(c.seed_graph.triadic_closure);
  io(c.seed_graph.pa_beta);
  io(c.seed_graph.communities);
  io(c.seed_graph.community_affinity);
  io(c.normal.female_fraction);
  io(c.normal.online_prob);
  io(c.normal.session_invites_mu);
  io(c.normal.session_invites_sigma);
  io(c.normal.session_invites_cap);
  io(c.normal.fof_target_prob);
  io(c.normal.fof_accept_base);
  io(c.normal.fof_accept_openness);
  io(c.normal.stranger_scale);
  io(c.normal.aggressive_fraction);
  io(c.normal.aggressive_rate_mu);
  io(c.normal.aggressive_rate_cap);
  io(c.normal.aggressive_fof_prob);
  io(c.sybil.female_fraction);
  io(c.sybil.online_prob);
  io(c.sybil.invites_per_hour_mu);
  io(c.sybil.invites_per_hour_sigma);
  io(c.sybil.attractiveness_mu);
  io(c.sybil.attractiveness_jitter);
  io(c.sybil.target_bias);
  io(c.sybil.uniform_mix);
  io(c.sybil.request_budget_median);
  io(c.sybil.request_budget_sigma);
  io(c.sybil.stealth_fraction);
  io(c.sybil.stealth_rate_factor);
  io(c.sybil.stealth_fof_prob);
  io(c.sybil.stealth_incoming_accept);
  io(c.sybil.ban_after_min);
  io(c.sybil.ban_after_max);
  io(c.response_delay_mean);
  io(c.popularity_rebuild_hours);
}

struct WriteField {
  ByteWriter& w;
  template <typename T>
  void operator()(T& v) {
    w.write(v);
  }
};

struct ReadField {
  ByteReader& r;
  template <typename T>
  void operator()(T& v) {
    v = r.template read<T>();
  }
};

void write_account(ByteWriter& w, const Account& a) {
  w.write(static_cast<std::uint8_t>(a.kind));
  w.write(static_cast<std::uint8_t>(a.gender));
  w.write(static_cast<std::uint8_t>(a.stealthy ? 1 : 0));
  w.write(static_cast<std::uint8_t>(a.banned() ? 1 : 0));
  w.write(a.created_at);
  w.write(a.banned_at.value_or(0.0));
  w.write(a.attractiveness);
  w.write(a.openness);
  w.write(a.invite_rate);
  w.write(a.request_budget);
}

Account read_account(ByteReader& r) {
  Account a;
  const auto kind = r.read<std::uint8_t>();
  const auto gender = r.read<std::uint8_t>();
  const auto stealthy = r.read<std::uint8_t>();
  const auto banned = r.read<std::uint8_t>();
  if (kind > 1 || gender > 1 || stealthy > 1 || banned > 1) {
    throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                        "account enum/flag byte out of range");
  }
  a.kind = static_cast<AccountKind>(kind);
  a.gender = static_cast<Gender>(gender);
  a.stealthy = stealthy != 0;
  a.created_at = r.read<Time>();
  const Time banned_at = r.read<Time>();
  if (banned != 0) a.banned_at = banned_at;
  a.attractiveness = r.read<double>();
  a.openness = r.read<double>();
  a.invite_rate = r.read<double>();
  a.request_budget = r.read<std::uint32_t>();
  return a;
}

void write_ledger(ByteWriter& w, const RequestLedger& ledger) {
  const RequestLedger::Raw raw = ledger.raw();
  w.write(raw.sent);
  w.write(raw.sent_accepted);
  w.write(raw.received);
  w.write(raw.received_accepted);
  w.write(raw.current_bucket);
  w.write(raw.current_bucket_count);
  w.write(raw.active_hours);
  w.write(raw.max_hourly);
  w.write(raw.first_send);
  w.write(raw.last_send);
}

RequestLedger read_ledger(ByteReader& r) {
  RequestLedger::Raw raw;
  raw.sent = r.read<std::uint32_t>();
  raw.sent_accepted = r.read<std::uint32_t>();
  raw.received = r.read<std::uint32_t>();
  raw.received_accepted = r.read<std::uint32_t>();
  raw.current_bucket = r.read<std::int64_t>();
  raw.current_bucket_count = r.read<std::uint32_t>();
  raw.active_hours = r.read<std::uint32_t>();
  raw.max_hourly = r.read<std::uint32_t>();
  raw.first_send = r.read<Time>();
  raw.last_send = r.read<Time>();
  return RequestLedger::from_raw(raw);
}

std::vector<std::uint32_t> read_id_section(const io::ContainerReader& reader,
                                           std::uint32_t id,
                                           std::uint64_t node_count) {
  const auto ids = reader.pod_section<std::uint32_t>(id);
  for (const std::uint32_t v : ids) {
    if (v >= node_count) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "node id out of range in section " +
                              std::to_string(id));
    }
  }
  return {ids.begin(), ids.end()};
}

}  // namespace

void CheckpointAccess::save(const GroundTruthSimulator& sim,
                            const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "osn.checkpoint.save");
  const Network& net = sim.net_;
  io::ContainerWriter writer(io::PayloadKind::kSimulatorCheckpoint);

  {
    ByteWriter w;
    w.write<std::uint64_t>(net.account_count());
    w.write<std::uint64_t>(QueueAccess::container(net.pending_).size());
    w.write<std::uint64_t>(net.requested_.size());
    w.write<std::uint64_t>(net.log_.size());
    w.write<std::uint64_t>(sim.hours_done_);
    w.write<std::uint64_t>(sim.next_rebuild_);
    w.write<std::uint8_t>(sim.finished_ ? 1 : 0);
    w.write<std::uint8_t>(net.keep_log_ ? 1 : 0);
    writer.add_section(kSecMeta, std::move(w).take());
  }
  {
    ByteWriter w;
    GroundTruthConfig config = sim.config_;
    visit_config(config, WriteField{w});
    writer.add_section(kSecConfig, std::move(w).take());
  }
  {
    const std::array<std::uint64_t, 4> state = sim.rng_.state();
    writer.add_pod_section<std::uint64_t>(kSecRng, state);
  }
  {
    ByteWriter w;
    for (NodeId id = 0; id < net.account_count(); ++id) {
      write_account(w, net.account(id));
    }
    writer.add_section(kSecAccounts, std::move(w).take());
  }
  {
    ByteWriter w;
    for (NodeId id = 0; id < net.account_count(); ++id) {
      write_ledger(w, net.ledger(id));
    }
    writer.add_section(kSecLedgers, std::move(w).take());
  }
  {
    const graph::TimestampedGraph& g = net.graph();
    std::vector<std::uint32_t> degrees(g.node_count());
    std::vector<NodeId> nodes;
    std::vector<double> times;
    std::vector<std::uint8_t> weak;
    nodes.reserve(2 * g.edge_count());
    times.reserve(2 * g.edge_count());
    weak.reserve(2 * g.edge_count());
    for (NodeId u = 0; u < g.node_count(); ++u) {
      degrees[u] = g.degree(u);
      for (const graph::Neighbor& nb : g.neighbors(u)) {
        nodes.push_back(nb.node);
        times.push_back(nb.created_at);
        weak.push_back(nb.weak ? 1 : 0);
      }
    }
    writer.add_pod_section<std::uint32_t>(kSecGraphDegrees, degrees);
    writer.add_pod_section<NodeId>(kSecGraphNbrNode, nodes);
    writer.add_pod_section<double>(kSecGraphNbrTime, times);
    writer.add_pod_section<std::uint8_t>(kSecGraphNbrWeak, weak);
  }
  {
    ByteWriter w;
    for (const Pending& p : QueueAccess::container(net.pending_)) {
      w.write(p.respond_at);
      w.write(p.from);
      w.write(p.to);
      w.write(p.tag);
    }
    writer.add_section(kSecPending, std::move(w).take());
  }
  {
    // Sorted so identical simulator state always produces identical
    // checkpoint bytes, independent of hash-set iteration order.
    std::vector<std::uint64_t> keys(net.requested_.begin(),
                                    net.requested_.end());
    std::sort(keys.begin(), keys.end());
    writer.add_pod_section<std::uint64_t>(kSecRequested, keys);
  }
  {
    ByteWriter w;
    for (const Event& e : net.log().events()) {
      w.write(static_cast<std::uint8_t>(e.type));
      w.write(e.actor);
      w.write(e.subject);
      w.write(e.time);
    }
    writer.add_section(kSecEvents, std::move(w).take());
  }
  writer.add_pod_section<NodeId>(kSecNormalIds, sim.normal_ids_);
  writer.add_pod_section<NodeId>(kSecSubjectNormals, sim.subject_normals_);
  writer.add_pod_section<NodeId>(kSecSubjectSybils, sim.subject_sybils_);
  writer.add_pod_section<double>(kSecBanAt, sim.sybil_ban_at_);
  writer.add_pod_section<double>(kSecPopularity, sim.popularity_weights_);

  writer.commit(path);
  SYBIL_METRIC_COUNT("osn.checkpoint.saved", 1);
}

std::unique_ptr<GroundTruthSimulator> CheckpointAccess::load(
    const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "osn.checkpoint.load");
  // Checkpoints are consumed once at resume, so the plain read() path
  // is as good as mmap and keeps no mapping alive afterwards.
  const io::ContainerReader reader(path,
                                   io::PayloadKind::kSimulatorCheckpoint,
                                   /*prefer_mmap=*/false);

  Meta meta;
  {
    ByteReader r(reader.section(kSecMeta));
    meta.accounts = r.read<std::uint64_t>();
    meta.pending = r.read<std::uint64_t>();
    meta.requested = r.read<std::uint64_t>();
    meta.events = r.read<std::uint64_t>();
    meta.hours_done = r.read<std::uint64_t>();
    meta.next_rebuild = r.read<std::uint64_t>();
    meta.finished = r.read<std::uint8_t>();
    meta.keep_log = r.read<std::uint8_t>();
    if (!r.exhausted() || meta.finished > 1 || meta.keep_log > 1) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "checkpoint meta malformed");
    }
  }

  GroundTruthConfig config;
  {
    ByteReader r(reader.section(kSecConfig));
    visit_config(config, ReadField{r});
    if (!r.exhausted()) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "checkpoint config section has trailing bytes");
    }
  }

  auto sim = std::unique_ptr<GroundTruthSimulator>(new GroundTruthSimulator(
      config, GroundTruthSimulator::RestoreTag{}));

  {
    const auto state = reader.pod_section<std::uint64_t>(kSecRng);
    if (state.size() != 4) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "rng section must hold 4 u64 words");
    }
    sim->rng_ = stats::Rng::from_state(
        {state[0], state[1], state[2], state[3]});
  }

  Network& net = sim->net_;
  net.keep_log_ = meta.keep_log != 0;
  {
    ByteReader r(reader.section(kSecAccounts));
    net.accounts_.reserve(meta.accounts);
    for (std::uint64_t i = 0; i < meta.accounts; ++i) {
      net.accounts_.push_back(read_account(r));
    }
    if (!r.exhausted()) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "accounts section has trailing bytes");
    }
  }
  {
    ByteReader r(reader.section(kSecLedgers));
    net.ledgers_.reserve(meta.accounts);
    for (std::uint64_t i = 0; i < meta.accounts; ++i) {
      net.ledgers_.push_back(read_ledger(r));
    }
    if (!r.exhausted()) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "ledgers section has trailing bytes");
    }
  }
  {
    const auto degrees = reader.pod_section<std::uint32_t>(kSecGraphDegrees);
    const auto nodes = reader.pod_section<NodeId>(kSecGraphNbrNode);
    const auto times = reader.pod_section<double>(kSecGraphNbrTime);
    const auto weak = reader.pod_section<std::uint8_t>(kSecGraphNbrWeak);
    if (degrees.size() != meta.accounts || nodes.size() != times.size() ||
        nodes.size() != weak.size()) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "graph sections inconsistent");
    }
    std::uint64_t sum = 0;
    for (const std::uint32_t d : degrees) sum += d;
    if (sum != nodes.size() || sum % 2 != 0) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "degree sum does not match neighbor arrays");
    }
    std::vector<std::vector<graph::Neighbor>> adj(meta.accounts);
    std::size_t at = 0;
    for (std::uint64_t u = 0; u < meta.accounts; ++u) {
      adj[u].reserve(degrees[u]);
      for (std::uint32_t k = 0; k < degrees[u]; ++k, ++at) {
        if (nodes[at] >= meta.accounts || nodes[at] == u) {
          throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                              "neighbor id out of range or self-loop");
        }
        adj[u].push_back({nodes[at], times[at], weak[at] != 0});
      }
    }
    net.graph_ = graph::TimestampedGraph::from_adjacency(std::move(adj));
  }
  {
    ByteReader r(reader.section(kSecPending));
    std::vector<Pending> heap;
    heap.reserve(meta.pending);
    for (std::uint64_t i = 0; i < meta.pending; ++i) {
      Pending p;
      p.respond_at = r.read<Time>();
      p.from = r.read<NodeId>();
      p.to = r.read<NodeId>();
      p.tag = r.read<std::uint8_t>();
      if (p.from >= meta.accounts || p.to >= meta.accounts) {
        throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                            "pending request endpoint out of range");
      }
      heap.push_back(p);
    }
    if (!r.exhausted()) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "pending section has trailing bytes");
    }
    if (!std::is_heap(heap.begin(), heap.end(), std::greater<>())) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "pending section is not a valid min-heap");
    }
    // Install the array verbatim: the resumed queue pops in exactly the
    // order the interrupted one would have.
    QueueAccess::container(net.pending_) = std::move(heap);
  }
  {
    const auto keys = reader.pod_section<std::uint64_t>(kSecRequested);
    if (keys.size() != meta.requested) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "requested section count mismatch");
    }
    net.requested_.reserve(keys.size());
    net.requested_.insert(keys.begin(), keys.end());
    if (net.requested_.size() != keys.size()) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "requested section holds duplicate keys");
    }
  }
  {
    ByteReader r(reader.section(kSecEvents));
    for (std::uint64_t i = 0; i < meta.events; ++i) {
      const auto type = r.read<std::uint8_t>();
      if (type > static_cast<std::uint8_t>(EventType::kFriendshipSeeded)) {
        throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                            "event type byte out of range");
      }
      Event e;
      e.type = static_cast<EventType>(type);
      e.actor = r.read<NodeId>();
      e.subject = r.read<NodeId>();
      e.time = r.read<Time>();
      net.log_.append(e);
    }
    if (!r.exhausted()) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "events section has trailing bytes");
    }
  }

  sim->normal_ids_ = read_id_section(reader, kSecNormalIds, meta.accounts);
  sim->subject_normals_ =
      read_id_section(reader, kSecSubjectNormals, meta.accounts);
  sim->subject_sybils_ =
      read_id_section(reader, kSecSubjectSybils, meta.accounts);
  {
    const auto ban_at = reader.pod_section<double>(kSecBanAt);
    if (ban_at.size() != sim->subject_sybils_.size()) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "ban-time section not parallel to subject sybils");
    }
    sim->sybil_ban_at_.assign(ban_at.begin(), ban_at.end());
  }
  {
    const auto weights = reader.pod_section<double>(kSecPopularity);
    if (weights.size() != meta.accounts && !weights.empty()) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "popularity section not parallel to accounts");
    }
    sim->popularity_weights_.assign(weights.begin(), weights.end());
    if (!sim->popularity_weights_.empty()) {
      sim->popularity_ =
          std::make_unique<stats::AliasSampler>(sim->popularity_weights_);
    }
  }

  sim->hours_done_ = meta.hours_done;
  sim->next_rebuild_ = meta.next_rebuild;
  sim->finished_ = meta.finished != 0;
  SYBIL_METRIC_COUNT("osn.checkpoint.loaded", 1);
  return sim;
}

void save_checkpoint(const GroundTruthSimulator& sim,
                     const std::string& path) {
  CheckpointAccess::save(sim, path);
}

std::unique_ptr<GroundTruthSimulator> load_checkpoint(
    const std::string& path) {
  return CheckpointAccess::load(path);
}

}  // namespace sybil::osn
