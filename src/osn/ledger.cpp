#include "osn/ledger.h"

#include <algorithm>
#include <cmath>

namespace sybil::osn {

void RequestLedger::record_sent(graph::Time t) noexcept {
  ++sent_;
  if (first_send_ < 0.0) first_send_ = t;
  last_send_ = std::max(last_send_, t);
  const auto bucket = static_cast<std::int64_t>(std::floor(t));
  if (bucket != current_bucket_) {
    current_bucket_ = bucket;
    current_bucket_count_ = 0;
    ++active_hours_;
  }
  ++current_bucket_count_;
  max_hourly_ = std::max(max_hourly_, current_bucket_count_);
}

double RequestLedger::short_term_rate() const noexcept {
  if (active_hours_ == 0) return 0.0;
  return static_cast<double>(sent_) / static_cast<double>(active_hours_);
}

double RequestLedger::long_term_rate(double window_hours) const noexcept {
  if (sent_ == 0 || !(window_hours > 0.0)) return 0.0;
  // The effective window is the account's sending lifetime, capped at the
  // requested window — a young account is not diluted by hours it did
  // not exist for.
  const double lifetime = std::max(1.0, last_send_ - first_send_ + 1.0);
  return static_cast<double>(sent_) / std::min(lifetime, window_hours);
}

}  // namespace sybil::osn
