// The simulated OSN: accounts + friendship graph + the friend-request
// state machine (send → pending → accept/reject/drop), with per-account
// ledgers and an optional event log.
//
// This is the substrate standing in for Renren's production system. The
// request mechanics matter for fidelity: requests are answered after a
// think-time delay, and banning an account drops its in-flight requests
// — which is exactly the censoring effect the paper observes in Fig 3
// (Sybils banned before they could answer all outstanding requests).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "osn/account.h"
#include "osn/events.h"
#include "osn/ledger.h"

namespace sybil::osn {

enum class RequestResult : std::uint8_t {
  kSent,
  kInvalid,        // self-request or unknown id
  kDuplicate,      // already requested this target before
  kAlreadyFriends,
  kPartyBanned,    // sender or target is banned
};

class Network {
 public:
  explicit Network(bool keep_event_log = false)
      : keep_log_(keep_event_log) {}

  /// Registers an account; returns its node id.
  NodeId add_account(const Account& account, Time now = 0.0);

  std::size_t account_count() const noexcept { return accounts_.size(); }
  const Account& account(NodeId id) const { return accounts_.at(id); }
  Account& account(NodeId id) { return accounts_.at(id); }

  /// Seeds a pre-existing friendship directly (no request mechanics);
  /// used to install the established social graph the simulation window
  /// starts from. Returns false if the edge already exists.
  bool add_friendship(NodeId u, NodeId v, Time t);

  /// Sends a friend request from -> to at `now`; if it will be answered,
  /// the answer happens at `respond_at` (>= now). `tag` is carried with
  /// the request and handed back to the responder's decision procedure —
  /// the simulator uses it to mark how the target was selected (e.g.
  /// friend-of-friend vs stranger), which shapes acceptance.
  RequestResult send_request(NodeId from, NodeId to, Time now,
                             Time respond_at, std::uint8_t tag = 0);

  /// Target's decision procedure: return true to accept `requester`.
  using DecideFn =
      std::function<bool(NodeId target, NodeId requester, std::uint8_t tag)>;

  /// Answers every pending request due at or before `now` using `decide`.
  /// Requests involving banned parties are dropped unanswered. Returns
  /// the number of requests accepted.
  std::size_t process_responses(Time now, const DecideFn& decide);

  /// Bans an account: it stops acting and its in-flight requests are
  /// dropped (lazily, at response-processing time).
  void ban(NodeId who, Time now);

  const graph::TimestampedGraph& graph() const noexcept { return graph_; }
  const RequestLedger& ledger(NodeId id) const { return ledgers_.at(id); }
  const EventLog& log() const noexcept { return log_; }
  std::size_t pending_count() const noexcept { return pending_.size(); }

  /// All account ids of the given kind.
  std::vector<NodeId> ids_of_kind(AccountKind kind) const;

 private:
  // Serializes/restores the full private state (including the pending
  // heap's exact array order, which re-pushing could perturb for tied
  // respond_at values). See osn/checkpoint.cpp.
  friend struct CheckpointAccess;

  struct Pending {
    Time respond_at;
    NodeId from;
    NodeId to;
    std::uint8_t tag;
    bool operator>(const Pending& other) const noexcept {
      return respond_at > other.respond_at;
    }
  };

  static std::uint64_t pair_key(NodeId from, NodeId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  bool keep_log_;
  std::vector<Account> accounts_;
  std::vector<RequestLedger> ledgers_;
  graph::TimestampedGraph graph_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  std::unordered_set<std::uint64_t> requested_;  // all-time directed dedup
  EventLog log_;
};

}  // namespace sybil::osn
