#include "osn/behavior.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"

namespace sybil::osn {

Account make_normal_account(const NormalBehaviorParams& p, Time now,
                            stats::Rng& rng) {
  Account a;
  a.kind = AccountKind::kNormal;
  a.gender =
      rng.bernoulli(p.female_fraction) ? Gender::kFemale : Gender::kMale;
  a.created_at = now;
  a.attractiveness = std::clamp(stats::sample_normal(rng, 0.5, 0.18), 0.0, 1.0);
  a.openness = rng.uniform();
  if (rng.bernoulli(p.aggressive_fraction)) {
    a.invite_rate = std::min(
        stats::sample_lognormal(rng, std::log(p.aggressive_rate_mu), 0.4),
        p.aggressive_rate_cap);
    // Marketers are marked via a rate above the normal session cap; the
    // simulator gives them stranger-heavy targeting. They also accept
    // almost everyone (they want reach) — the honest accounts that look
    // most Sybil-like to a learned classifier.
    a.openness = 0.8 + 0.2 * rng.uniform();
  } else {
    a.invite_rate = std::min(
        stats::sample_lognormal(rng, std::log(p.session_invites_mu),
                                p.session_invites_sigma),
        p.session_invites_cap);
  }
  return a;
}

Account make_sybil_account(const SybilBehaviorParams& p, Time now,
                           stats::Rng& rng) {
  Account a;
  a.kind = AccountKind::kSybil;
  a.gender =
      rng.bernoulli(p.female_fraction) ? Gender::kFemale : Gender::kMale;
  a.created_at = now;
  a.attractiveness = std::clamp(
      stats::sample_normal(rng, p.attractiveness_mu, p.attractiveness_jitter),
      0.0, 1.0);
  a.openness = 1.0;  // Sybils accept every incoming request (Fig 3)
  a.invite_rate = stats::sample_lognormal(
      rng, std::log(p.invites_per_hour_mu), p.invites_per_hour_sigma);
  a.request_budget = static_cast<std::uint32_t>(
      1 + stats::sample_lognormal(rng, std::log(p.request_budget_median),
                                  p.request_budget_sigma));
  if (rng.bernoulli(p.stealth_fraction)) {
    a.stealthy = true;
    a.invite_rate = std::max(1.0, a.invite_rate * p.stealth_rate_factor);
  }
  return a;
}

bool normal_accepts(const NormalBehaviorParams& p, const Account& target,
                    const Account& requester, std::uint8_t tag,
                    stats::Rng& rng) {
  double prob;
  if (tag == kTagFriendOfFriend) {
    prob = p.fof_accept_base + p.fof_accept_openness * target.openness;
  } else {
    prob = target.openness * p.stranger_scale *
           (0.35 + 0.65 * requester.attractiveness);
  }
  return rng.bernoulli(std::clamp(prob, 0.0, 1.0));
}

}  // namespace sybil::osn
