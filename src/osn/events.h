// Append-only event log for the OSN simulator.
//
// The log is optional (the Network works without one) and is what the
// real-time detector pipeline and the examples consume: it is the
// simulated equivalent of the operational request stream Renren gave the
// authors access to.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace sybil::osn {

enum class EventType : std::uint8_t {
  kAccountCreated,
  kRequestSent,
  kRequestAccepted,
  kRequestRejected,
  kRequestDropped,  // pending request discarded (party banned)
  kAccountBanned,
  kFriendshipSeeded,  // pre-existing edge installed without a request
};

struct Event {
  EventType type;
  graph::NodeId actor;    // who performed the action
  graph::NodeId subject;  // the other party (== actor for account events)
  graph::Time time;
};

/// Simple append-only event log with typed counters.
class EventLog {
 public:
  void append(Event e);

  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  std::uint64_t count(EventType t) const noexcept {
    return counts_[static_cast<std::size_t>(t)];
  }
  void clear();

 private:
  std::vector<Event> events_;
  std::uint64_t counts_[7] = {};
};

}  // namespace sybil::osn
