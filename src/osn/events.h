// Append-only event log for the OSN simulator.
//
// The log is optional (the Network works without one) and is what the
// real-time detector pipeline and the examples consume: it is the
// simulated equivalent of the operational request stream Renren gave the
// authors access to.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace sybil::osn {

enum class EventType : std::uint8_t {
  kAccountCreated,
  kRequestSent,
  kRequestAccepted,
  kRequestRejected,
  kRequestDropped,  // pending request discarded (party banned)
  kAccountBanned,
  kFriendshipSeeded,  // pre-existing edge installed without a request
};

inline constexpr std::size_t kEventTypeCount = 7;

/// True when a raw type byte names a known EventType — the validation
/// hook the hardened ingestion path uses on untrusted records.
constexpr bool event_type_known(std::uint8_t raw) noexcept {
  return raw < kEventTypeCount;
}

/// Relational events involve two distinct parties; account-scoped
/// events (created/banned) legitimately carry actor == subject.
constexpr bool event_is_relational(EventType t) noexcept {
  return t != EventType::kAccountCreated && t != EventType::kAccountBanned;
}

struct Event {
  EventType type;
  graph::NodeId actor;    // who performed the action
  graph::NodeId subject;  // the other party (== actor for account events)
  graph::Time time;
};

/// Simple append-only event log with typed counters.
class EventLog {
 public:
  void append(Event e);

  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  std::uint64_t count(EventType t) const noexcept {
    return counts_[static_cast<std::size_t>(t)];
  }
  void clear();

  /// Largest amount (hours) by which an event's time lags the running
  /// maximum over the log so far — the intrinsic out-of-orderness of
  /// this log (responses are logged at their due time, which can trail
  /// later sends). A reorder watermark at least this wide replays the
  /// log without quarantining anything; the chaos harness sizes
  /// watermarks as max_inversion_hours() + injected skew.
  graph::Time max_inversion_hours() const noexcept;

 private:
  std::vector<Event> events_;
  std::uint64_t counts_[kEventTypeCount] = {};
};

}  // namespace sybil::osn
