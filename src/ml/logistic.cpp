#include "ml/logistic.h"

#include <cmath>
#include <stdexcept>

namespace sybil::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

double LogisticModel::probability(std::span<const double> row) const {
  if (row.size() != w_.size()) {
    throw std::invalid_argument("logistic: feature count mismatch");
  }
  double z = b_;
  for (std::size_t j = 0; j < row.size(); ++j) z += w_[j] * row[j];
  return sigmoid(z);
}

LogisticModel LogisticModel::train(const Dataset& data,
                                   const LogisticParams& p) {
  if (data.empty()) throw std::invalid_argument("logistic: empty dataset");
  const std::size_t n = data.size(), f = data.feature_count();
  LogisticModel m;
  m.w_.assign(f, 0.0);
  m.b_ = 0.0;
  std::vector<double> grad(f);
  for (std::size_t epoch = 0; epoch < p.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = data.row(i);
      const double target = data.label(i) == kSybilLabel ? 1.0 : 0.0;
      const double err = m.probability(row) - target;
      for (std::size_t j = 0; j < f; ++j) grad[j] += err * row[j];
      grad_b += err;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < f; ++j) {
      m.w_[j] -= p.learning_rate * (grad[j] * inv_n + p.l2 * m.w_[j]);
    }
    m.b_ -= p.learning_rate * grad_b * inv_n;
  }
  return m;
}

}  // namespace sybil::ml
