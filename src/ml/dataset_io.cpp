#include "ml/dataset_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/vfs.h"

namespace sybil::ml {

void save_csv(const Dataset& data, std::ostream& os) {
  for (std::size_t j = 0; j < data.feature_count(); ++j) {
    os << 'f' << j << ',';
  }
  os << "label\n";
  os.precision(17);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (double x : row) os << x << ',';
    os << data.label(i) << '\n';
  }
}

void save_csv(const Dataset& data, const std::string& path) {
  // Serialize in memory, then write through the vfs: storage faults —
  // including close-time write-back errors the ofstream path never
  // checked — surface as typed io::VfsError (a std::runtime_error, so
  // existing catch sites still hold) and are injectable in tests.
  std::ostringstream os;
  save_csv(data, os);
  const std::string text = os.str();
  auto f = io::default_vfs()->open(path, io::VfsMode::kTruncate);
  if (!text.empty()) f->write(text.data(), text.size());
  f->close();
}

Dataset load_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("csv: empty input");
  }
  // Count columns from the header; the last must be "label".
  std::size_t columns = 1;
  for (char c : line) columns += c == ',';
  if (columns < 2 || line.rfind("label") == std::string::npos) {
    throw std::runtime_error("csv: bad header");
  }
  const std::size_t features = columns - 1;

  Dataset data(features);
  std::vector<double> row(features);
  std::uint64_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    for (std::size_t j = 0; j < features; ++j) {
      if (!std::getline(ls, cell, ',')) {
        throw std::runtime_error("csv: too few columns at line " +
                                 std::to_string(line_no));
      }
      try {
        std::size_t used = 0;
        row[j] = std::stod(cell, &used);
        if (used != cell.size()) throw std::invalid_argument(cell);
      } catch (const std::exception&) {
        throw std::runtime_error("csv: bad number at line " +
                                 std::to_string(line_no));
      }
    }
    if (!std::getline(ls, cell)) {
      throw std::runtime_error("csv: missing label at line " +
                               std::to_string(line_no));
    }
    int label = 0;
    try {
      label = std::stoi(cell);
    } catch (const std::exception&) {
      throw std::runtime_error("csv: bad label at line " +
                               std::to_string(line_no));
    }
    if (label != kSybilLabel && label != kNormalLabel) {
      throw std::runtime_error("csv: label must be +1/-1 at line " +
                               std::to_string(line_no));
    }
    data.add(row, label);
  }
  return data;
}

Dataset load_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return load_csv(is);
}

}  // namespace sybil::ml
