#include "ml/metrics.h"

#include <sstream>
#include <stdexcept>

#include "ml/dataset.h"

namespace sybil::ml {

void ConfusionMatrix::record(int actual, int predicted) {
  if (actual == kSybilLabel) {
    predicted == kSybilLabel ? ++true_sybil : ++missed_sybil;
  } else if (actual == kNormalLabel) {
    predicted == kSybilLabel ? ++false_sybil : ++true_normal;
  } else {
    throw std::invalid_argument("confusion: label must be +1 or -1");
  }
}

namespace {
double ratio(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double ConfusionMatrix::accuracy() const noexcept {
  return ratio(true_sybil + true_normal, total());
}
double ConfusionMatrix::sybil_recall() const noexcept {
  return ratio(true_sybil, actual_sybils());
}
double ConfusionMatrix::sybil_miss_rate() const noexcept {
  return ratio(missed_sybil, actual_sybils());
}
double ConfusionMatrix::false_positive_rate() const noexcept {
  return ratio(false_sybil, actual_normals());
}
double ConfusionMatrix::normal_recall() const noexcept {
  return ratio(true_normal, actual_normals());
}
double ConfusionMatrix::precision() const noexcept {
  return ratio(true_sybil, true_sybil + false_sybil);
}
double ConfusionMatrix::f1() const noexcept {
  const double p = precision(), r = sybil_recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionMatrix& ConfusionMatrix::operator+=(
    const ConfusionMatrix& other) noexcept {
  true_sybil += other.true_sybil;
  missed_sybil += other.missed_sybil;
  false_sybil += other.false_sybil;
  true_normal += other.true_normal;
  return *this;
}

std::string ConfusionMatrix::to_table(const std::string& title) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << title << " predicted\n";
  os << "                Sybil     Non-Sybil\n";
  os << "True Sybil      " << 100.0 * sybil_recall() << "%    "
     << 100.0 * sybil_miss_rate() << "%\n";
  os << "     Non-Sybil  " << 100.0 * false_positive_rate() << "%    "
     << 100.0 * normal_recall() << "%\n";
  return os.str();
}

}  // namespace sybil::ml
