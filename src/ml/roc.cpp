#include "ml/roc.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ml/dataset.h"

namespace sybil::ml {

double RocCurve::tpr_at_fpr(double budget) const {
  double best = 0.0;
  for (const RocPoint& p : points) {
    if (p.false_positive_rate <= budget) {
      best = std::max(best, p.true_positive_rate);
    }
  }
  return best;
}

RocCurve roc_curve(std::span<const double> scores,
                   std::span<const int> labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    throw std::invalid_argument("roc: size mismatch or empty");
  }
  std::size_t positives = 0, negatives = 0;
  for (int y : labels) {
    if (y == kSybilLabel) {
      ++positives;
    } else if (y == kNormalLabel) {
      ++negatives;
    } else {
      throw std::invalid_argument("roc: label must be +1 or -1");
    }
  }
  if (positives == 0 || negatives == 0) {
    throw std::invalid_argument("roc: need both classes");
  }

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  RocCurve curve;
  curve.points.push_back({scores[order.front()] + 1.0, 0.0, 0.0});
  std::size_t tp = 0, fp = 0;
  double auc = 0.0;
  for (std::size_t i = 0; i < order.size();) {
    const double s = scores[order[i]];
    // Consume ties as one threshold step (proper ROC with ties).
    const std::size_t fp_before = fp;
    const std::size_t tp_before = tp;
    while (i < order.size() && scores[order[i]] == s) {
      (labels[order[i]] == kSybilLabel ? tp : fp) += 1;
      ++i;
    }
    const double tpr = static_cast<double>(tp) / positives;
    const double fpr = static_cast<double>(fp) / negatives;
    // Trapezoid over the FPR step.
    auc += (fpr - static_cast<double>(fp_before) / negatives) *
           (tpr + static_cast<double>(tp_before) / positives) / 2.0;
    curve.points.push_back({s, tpr, fpr});
  }
  curve.auc = auc;
  return curve;
}

}  // namespace sybil::ml
