// Labeled dataset container for the classifier stack.
//
// Rows are feature vectors (the paper uses 4 behavioral features);
// labels are binary: +1 = Sybil, -1 = normal.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace sybil::ml {

inline constexpr int kSybilLabel = +1;
inline constexpr int kNormalLabel = -1;

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t feature_count) : features_(feature_count) {}

  /// Appends a labeled row. Precondition: row.size() == feature_count().
  void add(std::span<const double> row, int label);

  std::size_t size() const noexcept { return labels_.size(); }
  std::size_t feature_count() const noexcept { return features_; }
  bool empty() const noexcept { return labels_.empty(); }

  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * features_, features_};
  }
  int label(std::size_t i) const { return labels_.at(i); }

  std::size_t count_label(int label) const noexcept;

  /// Raw row-major feature storage and labels (what the binary snapshot
  /// writer serializes; see io/dataset_snapshot.h).
  std::span<const double> raw_data() const noexcept { return data_; }
  std::span<const int> raw_labels() const noexcept { return labels_; }

  /// Direct restore for snapshot loading. Preconditions (validated by
  /// the loader): data.size() == labels.size() * feature_count, every
  /// label is +1 or -1.
  static Dataset from_raw(std::size_t feature_count,
                          std::vector<double> data, std::vector<int> labels);

  /// Subset by row indices.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Deterministic in-place row shuffle.
  void shuffle(stats::Rng& rng);

 private:
  std::size_t features_ = 0;
  std::vector<double> data_;  // row-major
  std::vector<int> labels_;
};

}  // namespace sybil::ml
