// Binary classification metrics (Table 1 is a pair of confusion
// matrices expressed as row-normalized percentages).
#pragma once

#include <cstdint>
#include <string>

namespace sybil::ml {

struct ConfusionMatrix {
  std::uint64_t true_sybil = 0;    // Sybil predicted Sybil (TP)
  std::uint64_t missed_sybil = 0;  // Sybil predicted normal (FN)
  std::uint64_t false_sybil = 0;   // normal predicted Sybil (FP)
  std::uint64_t true_normal = 0;   // normal predicted normal (TN)

  void record(int actual, int predicted);

  std::uint64_t total() const noexcept {
    return true_sybil + missed_sybil + false_sybil + true_normal;
  }
  std::uint64_t actual_sybils() const noexcept {
    return true_sybil + missed_sybil;
  }
  std::uint64_t actual_normals() const noexcept {
    return false_sybil + true_normal;
  }

  double accuracy() const noexcept;
  /// True-positive rate: Sybils predicted Sybil (Table 1 top-left %).
  double sybil_recall() const noexcept;
  /// False-negative rate (Table 1 top-right %).
  double sybil_miss_rate() const noexcept;
  /// False-positive rate: normals predicted Sybil (Table 1 bottom-left %).
  double false_positive_rate() const noexcept;
  /// True-negative rate (Table 1 bottom-right %).
  double normal_recall() const noexcept;
  double precision() const noexcept;
  double f1() const noexcept;

  /// Merges another confusion matrix (for cross-validation pooling).
  ConfusionMatrix& operator+=(const ConfusionMatrix& other) noexcept;

  /// Renders the paper's Table 1 layout for one classifier.
  std::string to_table(const std::string& title) const;
};

}  // namespace sybil::ml
