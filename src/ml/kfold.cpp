#include "ml/kfold.h"

#include <stdexcept>

#include "stats/distributions.h"

namespace sybil::ml {

std::vector<Fold> stratified_kfold(const Dataset& data, std::size_t k,
                                   stats::Rng& rng) {
  if (k < 2) throw std::invalid_argument("kfold: k < 2");
  std::vector<std::size_t> sybils, normals;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) == kSybilLabel ? sybils : normals).push_back(i);
  }
  if (sybils.size() < k || normals.size() < k) {
    throw std::invalid_argument("kfold: class smaller than k");
  }
  stats::shuffle(rng, sybils);
  stats::shuffle(rng, normals);

  std::vector<std::vector<std::size_t>> fold_members(k);
  const auto deal = [&](const std::vector<std::size_t>& pool) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      fold_members[i % k].push_back(pool[i]);
    }
  };
  deal(sybils);
  deal(normals);

  std::vector<Fold> folds(k);
  for (std::size_t f = 0; f < k; ++f) {
    folds[f].test_indices = fold_members[f];
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      folds[f].train_indices.insert(folds[f].train_indices.end(),
                                    fold_members[g].begin(),
                                    fold_members[g].end());
    }
  }
  return folds;
}

ConfusionMatrix cross_validate(const Dataset& data, std::size_t k,
                               const Trainer& train, stats::Rng& rng) {
  ConfusionMatrix pooled;
  for (const Fold& fold : stratified_kfold(data, k, rng)) {
    const Dataset train_set = data.subset(fold.train_indices);
    const Predictor predict = train(train_set);
    for (std::size_t i : fold.test_indices) {
      pooled.record(data.label(i), predict(data.row(i)));
    }
  }
  return pooled;
}

}  // namespace sybil::ml
