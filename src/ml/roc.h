// ROC analysis for score-based classifiers.
//
// Extension beyond the paper's fixed-operating-point Table 1: sweeping
// the decision threshold over a score exposes the full trade-off, which
// the ablation benches use to compare single-feature rules against the
// conjunction and the learned classifiers.
#pragma once

#include <span>
#include <vector>

namespace sybil::ml {

struct RocPoint {
  double threshold;            // score >= threshold → predicted Sybil
  double true_positive_rate;   // Sybil recall
  double false_positive_rate;  // normals misflagged
};

struct RocCurve {
  /// Points ordered by decreasing threshold (FPR non-decreasing).
  std::vector<RocPoint> points;
  double auc = 0.0;

  /// Highest TPR achievable with FPR <= budget.
  double tpr_at_fpr(double budget) const;
};

/// Builds the ROC of `scores` (higher = more Sybil-like) against binary
/// labels (+1 Sybil / -1 normal, as ml::Dataset). Both classes required.
RocCurve roc_curve(std::span<const double> scores,
                   std::span<const int> labels);

}  // namespace sybil::ml
