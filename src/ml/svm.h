// Support vector machine trained with Platt's SMO algorithm.
//
// The paper compares its threshold detector against "a computationally
// expensive SVM" (Table 1). No external ML tooling is assumed: this is a
// from-scratch soft-margin SVM with linear and RBF kernels, adequate for
// the paper's 2000-sample, 4-feature ground-truth problem and validated
// in tests against analytically separable cases.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "stats/rng.h"

namespace sybil::ml {

enum class Kernel { kLinear, kRbf };

struct SvmParams {
  Kernel kernel = Kernel::kRbf;
  double c = 10.0;        // soft-margin penalty
  double gamma = 0.5;     // RBF width (ignored for linear)
  double tol = 1e-3;      // KKT violation tolerance
  std::size_t max_passes = 10;   // passes with no alpha change before stop
  std::size_t max_iterations = 20'000;
  std::uint64_t seed = 1234;     // SMO partner-selection randomness
};

class SvmModel {
 public:
  /// Trains on the given (already scaled) dataset.
  static SvmModel train(const Dataset& data, const SvmParams& params);

  /// Decision value (distance-like score; positive → Sybil side).
  double decision(std::span<const double> row) const;

  /// Predicted label: kSybilLabel or kNormalLabel.
  int predict(std::span<const double> row) const {
    return decision(row) >= 0.0 ? kSybilLabel : kNormalLabel;
  }

  std::size_t support_vector_count() const noexcept { return sv_.size(); }
  double bias() const noexcept { return b_; }
  const SvmParams& params() const noexcept { return params_; }

 private:
  double kernel(std::span<const double> a, std::span<const double> b) const;

  SvmParams params_;
  std::vector<std::vector<double>> sv_;     // support vectors
  std::vector<double> sv_alpha_y_;          // alpha_i * y_i
  double b_ = 0.0;
};

}  // namespace sybil::ml
