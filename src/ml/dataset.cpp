#include "ml/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace sybil::ml {

void Dataset::add(std::span<const double> row, int label) {
  if (features_ == 0 && data_.empty()) features_ = row.size();
  if (row.size() != features_) {
    throw std::invalid_argument("dataset: feature count mismatch");
  }
  if (label != kSybilLabel && label != kNormalLabel) {
    throw std::invalid_argument("dataset: label must be +1 or -1");
  }
  data_.insert(data_.end(), row.begin(), row.end());
  labels_.push_back(label);
}

Dataset Dataset::from_raw(std::size_t feature_count,
                          std::vector<double> data, std::vector<int> labels) {
  if (data.size() != labels.size() * feature_count) {
    throw std::invalid_argument("dataset: raw size mismatch");
  }
  Dataset out(feature_count);
  out.data_ = std::move(data);
  out.labels_ = std::move(labels);
  return out;
}

std::size_t Dataset::count_label(int label) const noexcept {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), label));
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(features_);
  for (std::size_t i : indices) {
    if (i >= size()) throw std::out_of_range("dataset: subset index");
    out.add(row(i), label(i));
  }
  return out;
}

void Dataset::shuffle(stats::Rng& rng) {
  for (std::size_t i = size(); i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    if (j == i - 1) continue;
    for (std::size_t f = 0; f < features_; ++f) {
      std::swap(data_[(i - 1) * features_ + f], data_[j * features_ + f]);
    }
    std::swap(labels_[i - 1], labels_[j]);
  }
}

}  // namespace sybil::ml
