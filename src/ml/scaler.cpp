#include "ml/scaler.h"

#include <cmath>
#include <stdexcept>

namespace sybil::ml {

void StandardScaler::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("scaler: empty dataset");
  const std::size_t f = data.feature_count();
  mean_.assign(f, 0.0);
  scale_.assign(f, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) {
      const double d = row[j] - mean_[j];
      scale_[j] += d * d;
    }
  }
  for (double& s : scale_) {
    s = std::sqrt(s / static_cast<double>(data.size()));
    if (!(s > 1e-12)) s = 1.0;  // constant feature: center only
  }
}

std::vector<double> StandardScaler::transform(
    std::span<const double> row) const {
  if (!fitted()) throw std::logic_error("scaler: not fitted");
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("scaler: feature count mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / scale_[j];
  }
  return out;
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out(data.feature_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.add(transform(data.row(i)), data.label(i));
  }
  return out;
}

}  // namespace sybil::ml
