// L2-regularized logistic regression via batch gradient descent.
//
// Extension baseline beyond the paper: a cheaper learned classifier to
// compare against the SVM and threshold rule in the ablation benches.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace sybil::ml {

struct LogisticParams {
  double learning_rate = 0.5;
  double l2 = 1e-4;
  std::size_t epochs = 500;
};

class LogisticModel {
 public:
  static LogisticModel train(const Dataset& data, const LogisticParams& p);

  /// P(label == Sybil | row), in (0, 1).
  double probability(std::span<const double> row) const;
  int predict(std::span<const double> row) const {
    return probability(row) >= 0.5 ? kSybilLabel : kNormalLabel;
  }

  const std::vector<double>& weights() const noexcept { return w_; }
  double bias() const noexcept { return b_; }

 private:
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace sybil::ml
