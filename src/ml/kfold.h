// Stratified k-fold cross-validation (the paper uses 5 sub-samples:
// 4 for training, 1 for testing).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ml/dataset.h"
#include "ml/metrics.h"
#include "stats/rng.h"

namespace sybil::ml {

struct Fold {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Produces k stratified folds: each class is shuffled independently and
/// dealt round-robin so class balance is preserved per fold.
/// Precondition: k >= 2 and each class has at least k members.
std::vector<Fold> stratified_kfold(const Dataset& data, std::size_t k,
                                   stats::Rng& rng);

/// Trains via `train` on each fold's training subset and evaluates the
/// returned predictor on the held-out subset; returns the pooled
/// confusion matrix over all folds.
///
/// `train` receives the training subset and returns a predictor
/// (label = predictor(row)).
using Predictor = std::function<int(std::span<const double>)>;
using Trainer = std::function<Predictor(const Dataset&)>;

ConfusionMatrix cross_validate(const Dataset& data, std::size_t k,
                               const Trainer& train, stats::Rng& rng);

}  // namespace sybil::ml
