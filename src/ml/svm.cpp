#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sybil::ml {

namespace {

double kernel_eval(Kernel k, double gamma, std::span<const double> a,
                   std::span<const double> b) {
  double acc = 0.0;
  if (k == Kernel::kLinear) {
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::exp(-gamma * acc);
}

}  // namespace

double SvmModel::kernel(std::span<const double> a,
                        std::span<const double> b) const {
  return kernel_eval(params_.kernel, params_.gamma, a, b);
}

double SvmModel::decision(std::span<const double> row) const {
  double f = b_;
  for (std::size_t i = 0; i < sv_.size(); ++i) {
    f += sv_alpha_y_[i] * kernel(sv_[i], row);
  }
  return f;
}

SvmModel SvmModel::train(const Dataset& data, const SvmParams& params) {
  if (data.empty()) throw std::invalid_argument("svm: empty dataset");
  if (data.count_label(kSybilLabel) == 0 ||
      data.count_label(kNormalLabel) == 0) {
    throw std::invalid_argument("svm: need both classes");
  }
  const std::size_t n = data.size();
  stats::Rng rng(params.seed);

  // Precompute the kernel matrix: n is small (thousands) in every use of
  // this library, so O(n^2) memory buys a large constant-factor win.
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v =
          kernel_eval(params.kernel, params.gamma, data.row(i), data.row(j));
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const auto decision_on = [&](std::size_t i) {
    double f = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] != 0.0) {
        f += alpha[j] * static_cast<double>(data.label(j)) * k[j * n + i];
      }
    }
    return f;
  };

  std::size_t passes = 0, iterations = 0;
  while (passes < params.max_passes && iterations < params.max_iterations) {
    ++iterations;
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double yi = data.label(i);
      const double ei = decision_on(i) - yi;
      const bool violates = (yi * ei < -params.tol && alpha[i] < params.c) ||
                            (yi * ei > params.tol && alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = rng.uniform_index(n - 1);
      if (j >= i) ++j;
      const double yj = data.label(j);
      const double ej = decision_on(j) - yj;

      const double ai_old = alpha[i], aj_old = alpha[j];
      double lo, hi;
      if (yi != yj) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(params.c, params.c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - params.c);
        hi = std::min(params.c, ai_old + aj_old);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
      if (eta >= 0.0) continue;

      double aj = aj_old - yj * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-5) continue;
      const double ai = ai_old + yi * yj * (aj_old - aj);

      alpha[i] = ai;
      alpha[j] = aj;

      const double b1 = b - ei - yi * (ai - ai_old) * k[i * n + i] -
                        yj * (aj - aj_old) * k[i * n + j];
      const double b2 = b - ej - yi * (ai - ai_old) * k[i * n + j] -
                        yj * (aj - aj_old) * k[j * n + j];
      if (ai > 0.0 && ai < params.c) {
        b = b1;
      } else if (aj > 0.0 && aj < params.c) {
        b = b2;
      } else {
        b = (b1 + b2) / 2.0;
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  SvmModel model;
  model.params_ = params;
  model.b_ = b;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-8) {
      const auto row = data.row(i);
      model.sv_.emplace_back(row.begin(), row.end());
      model.sv_alpha_y_.push_back(alpha[i] *
                                  static_cast<double>(data.label(i)));
    }
  }
  return model;
}

}  // namespace sybil::ml
