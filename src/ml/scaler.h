// Feature standardization (zero mean, unit variance per feature).
// SMO convergence and RBF kernels are scale-sensitive; the raw features
// span orders of magnitude (rates vs ratios vs clustering coefficients).
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace sybil::ml {

class StandardScaler {
 public:
  /// Learns per-feature mean and stddev. Constant features get scale 1
  /// (they pass through centered).
  void fit(const Dataset& data);

  /// Applies the learned transform to a single row (returns a copy).
  std::vector<double> transform(std::span<const double> row) const;

  /// Transforms a whole dataset.
  Dataset transform(const Dataset& data) const;

  bool fitted() const noexcept { return !mean_.empty(); }
  const std::vector<double>& mean() const noexcept { return mean_; }
  const std::vector<double>& scale() const noexcept { return scale_; }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace sybil::ml
