// CSV serialization for labeled datasets: lets a deployment export
// ground-truth features for offline analysis and reload them without
// re-running a simulation.
//
// Format: header "f0,f1,...,label", then one row per sample; labels are
// +1 / -1 as in ml::Dataset.
#pragma once

#include <iosfwd>
#include <string>

#include "ml/dataset.h"

namespace sybil::ml {

void save_csv(const Dataset& data, std::ostream& os);
void save_csv(const Dataset& data, const std::string& path);

/// Throws std::runtime_error on malformed input (bad header, wrong
/// column count, non-numeric cell, invalid label).
Dataset load_csv(std::istream& is);
Dataset load_csv(const std::string& path);

}  // namespace sybil::ml
