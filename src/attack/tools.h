// Sybil creation/management tool profiles (paper Table 3).
//
// The paper surveys three commercial Windows tools that create and drive
// Renren Sybils; all advertise snowball-sampling the social graph for
// *popular* targets. We model each tool as a parameterized targeting
// strategy. The parameters are inferred from the advertised feature
// lists the paper describes — the survey itself (names, prices) is data
// we reproduce as a static table; the *behavior* is what the campaign
// simulator executes.
#pragma once

#include <string>
#include <vector>

namespace sybil::attack {

struct ToolProfile {
  std::string name;
  std::string platform;
  std::string cost;
  /// Popularity-bias exponent of target selection (degree^beta).
  double target_bias;
  /// Fraction of targets picked uniformly at random (exploration mix).
  double uniform_mix;
  /// Snowball frontier batch: targets gathered per crawl step.
  std::size_t crawl_batch;
};

/// The three tools of Table 3, with behavior parameters inferred from
/// their advertised functionality ("collect super nodes" → strong bias;
/// "marketing assistant" → broad but popularity-directed; "almighty
/// assistant" → mixed-mode automation).
const std::vector<ToolProfile>& table3_tools();

}  // namespace sybil::attack
