#include "attack/campaign.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sybil::attack {

namespace {

struct SybilPlan {
  Time arrival;
  Time banned_at;
  double invite_rate;
  bool meshed;         // attacker wires this block intentionally
  std::uint32_t block; // attacker id
  std::uint8_t tool;   // index into CampaignConfig::tools
};

std::uint8_t pick_tool(const CampaignConfig& cfg, stats::Rng& rng) {
  double total = 0.0;
  for (const auto& t : cfg.tools) total += t.share;
  double mark = rng.uniform() * total;
  for (std::size_t i = 0; i < cfg.tools.size(); ++i) {
    mark -= cfg.tools[i].share;
    if (mark <= 0.0) return static_cast<std::uint8_t>(i);
  }
  return static_cast<std::uint8_t>(cfg.tools.size() - 1);
}

std::vector<SybilPlan> plan_sybils(const CampaignConfig& cfg,
                                   stats::Rng& rng) {
  std::vector<SybilPlan> plans;
  plans.reserve(cfg.sybils);
  std::uint32_t block_id = 0;
  while (plans.size() < cfg.sybils) {
    const auto block_size = std::min<std::uint64_t>(
        1 + stats::sample_poisson(rng,
                                  std::max(0.0, cfg.attacker_block_mean - 1)),
        cfg.sybils - plans.size());
    const bool meshed = rng.bernoulli(cfg.mesh_block_prob);
    const std::uint8_t tool = pick_tool(cfg, rng);
    const double window =
        std::max(1.0, cfg.campaign_hours - cfg.lifetime_max - 24.0);
    const Time block_start = rng.uniform(0.0, window);
    for (std::uint64_t i = 0; i < block_size; ++i) {
      SybilPlan p;
      // Fleet members come online over the attacker's first day.
      p.arrival = block_start + rng.uniform(0.0, 24.0);
      p.banned_at =
          p.arrival + (rng.bernoulli(cfg.longlived_fraction)
                           ? rng.uniform(cfg.longlived_min, cfg.longlived_max)
                           : rng.uniform(cfg.lifetime_min, cfg.lifetime_max));
      p.invite_rate = stats::sample_lognormal(
          rng, std::log(cfg.invites_mu), cfg.invites_sigma);
      p.meshed = meshed;
      p.block = block_id;
      p.tool = tool;
      plans.push_back(p);
    }
    ++block_id;
  }
  std::sort(plans.begin(), plans.end(),
            [](const SybilPlan& a, const SybilPlan& b) {
              return a.arrival < b.arrival;
            });
  return plans;
}

/// Popularity index: alias table over (degree + 1)^bias, excluding
/// banned accounts. The bias == 1 case avoids pow() on the hot rebuild.
std::unique_ptr<stats::AliasSampler> build_popularity(
    const osn::Network& net, double bias) {
  const auto& g = net.graph();
  std::vector<double> weights(net.account_count());
  for (NodeId id = 0; id < weights.size(); ++id) {
    if (net.account(id).banned()) {
      weights[id] = 0.0;
    } else if (bias == 1.0) {
      weights[id] = static_cast<double>(g.degree(id)) + 1.0;
    } else {
      weights[id] = std::pow(static_cast<double>(g.degree(id)) + 1.0, bias);
    }
  }
  return std::make_unique<stats::AliasSampler>(weights);
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  stats::Rng rng(config.seed);
  CampaignResult result;
  result.network = std::make_unique<osn::Network>(config.keep_event_log);
  osn::Network& net = *result.network;

  // --- Established normal user base with a static social graph. ---
  for (std::uint32_t i = 0; i < config.normal_users; ++i) {
    result.normal_ids.push_back(
        net.add_account(osn::make_normal_account(config.normal, 0.0, rng)));
  }
  {
    graph::OsnGraphParams gp = config.normal_graph;
    gp.nodes = config.normal_users;
    stats::Rng graph_rng = rng.fork();
    const graph::TimestampedGraph base = osn_like_graph(gp, graph_rng);
    const double span = std::max(1.0, static_cast<double>(base.edge_count()));
    for (NodeId u = 0; u < base.node_count(); ++u) {
      for (const graph::Neighbor& nb : base.neighbors(u)) {
        if (u < nb.node) {
          net.add_friendship(u, nb.node, -1.0 - (span - nb.created_at));
        }
      }
    }
  }

  // --- Sybil arrival plan. ---
  const std::vector<SybilPlan> plans = plan_sybils(config, rng);

  if (config.tools.empty()) {
    throw std::invalid_argument("campaign: tools must be non-empty");
  }
  std::vector<std::unique_ptr<stats::AliasSampler>> popularity(
      config.tools.size());
  const auto rebuild_all = [&] {
    for (std::size_t i = 0; i < config.tools.size(); ++i) {
      popularity[i] = build_popularity(net, config.tools[i].bias);
    }
  };
  rebuild_all();
  double next_rebuild = config.popularity_rebuild_hours;

  struct ActiveSybil {
    NodeId id;
    Time banned_at;
    double invite_rate;
    std::uint8_t tool;
  };
  std::vector<ActiveSybil> active;
  std::size_t next_plan = 0;
  // Last created Sybil of each *meshed* block, for chain wiring.
  std::uint32_t block_count = 0;
  for (const SybilPlan& p : plans) {
    block_count = std::max(block_count, p.block + 1);
  }
  std::vector<NodeId> block_tail(block_count, 0xffffffffu);

  const auto decide = [&](NodeId target, NodeId requester,
                          std::uint8_t tag) -> bool {
    const osn::Account& tgt = net.account(target);
    if (tgt.is_sybil() && config.sybil_accept_all) return true;
    return osn::normal_accepts(config.normal, tgt, net.account(requester),
                               tag, rng);
  };

  const auto hours = static_cast<std::uint64_t>(config.campaign_hours);
  for (std::uint64_t h = 0; h < hours; ++h) {
    const Time t = static_cast<Time>(h);

    // Ban expired Sybils (before this hour's sends).
    for (std::size_t i = 0; i < active.size();) {
      if (t >= active[i].banned_at) {
        net.ban(active[i].id, active[i].banned_at);
        active[i] = active.back();
        active.pop_back();
      } else {
        ++i;
      }
    }

    // Activate new arrivals.
    while (next_plan < plans.size() && plans[next_plan].arrival <= t) {
      const SybilPlan& p = plans[next_plan];
      osn::Account acc = osn::make_sybil_account(config.sybil, p.arrival, rng);
      acc.invite_rate = p.invite_rate;
      if (!config.sybil_accept_all) {
        // Ablation: Sybils answer incoming requests with ordinary-user
        // openness instead of accepting everything.
        acc.openness = rng.uniform();
      }
      const NodeId id = net.add_account(acc, p.arrival);
      result.sybil_ids.push_back(id);
      active.push_back({id, p.banned_at, p.invite_rate, p.tool});
      if (p.meshed) {
        result.meshed_sybil_ids.push_back(id);
        const NodeId tail = block_tail[p.block];
        if (tail != 0xffffffffu &&
            net.add_friendship(tail, id, p.arrival + 1e-3)) {
          ++result.intentional_sybil_edges;
        }
        block_tail[p.block] = id;
      }
      ++next_plan;
    }

    if (t >= next_rebuild) {
      rebuild_all();
      next_rebuild = t + std::max(1.0, config.popularity_rebuild_hours);
    }

    // Active Sybils run their tools.
    for (const ActiveSybil& s : active) {
      // An adaptive attacker throttles to the cap but runs the tool for
      // proportionally more hours, preserving total volume; a naive
      // tool keeps bursting and loses everything above the cap.
      double rate = s.invite_rate;
      double online_prob = config.online_prob;
      if (config.platform_rate_cap > 0 && config.attacker_adapts &&
          rate > config.platform_rate_cap) {
        online_prob = std::min(
            1.0, online_prob * rate /
                     static_cast<double>(config.platform_rate_cap));
        rate = static_cast<double>(config.platform_rate_cap);
      }
      if (!rng.bernoulli(online_prob)) continue;
      const auto& tool = config.tools[s.tool];
      auto invites = stats::sample_poisson(rng, rate);
      if (config.platform_rate_cap > 0) {
        invites = std::min<std::uint64_t>(invites, config.platform_rate_cap);
      }
      for (std::uint64_t k = 0; k < invites; ++k) {
        NodeId target;
        if (rng.bernoulli(tool.uniform_mix)) {
          target = static_cast<NodeId>(rng.uniform_index(net.account_count()));
        } else {
          target = static_cast<NodeId>((*popularity[s.tool])(rng));
        }
        if (target == s.id || net.account(target).banned()) continue;
        const Time sent_at = t + rng.uniform();
        const Time respond_at =
            sent_at + stats::sample_exponential(
                          rng, 1.0 / config.response_delay_mean);
        net.send_request(s.id, target, sent_at, respond_at,
                         osn::kTagStranger);
      }
    }

    net.process_responses(t + 1.0, decide);
  }

  // Final drain and final bans.
  for (const ActiveSybil& s : active) net.ban(s.id, s.banned_at);
  net.process_responses(config.campaign_hours + 1e9, decide);
  return result;
}

}  // namespace sybil::attack
