#include "attack/tools.h"

namespace sybil::attack {

const std::vector<ToolProfile>& table3_tools() {
  static const std::vector<ToolProfile> kTools = {
      {"Renren Marketing Assistant V1.0", "Windows", "$37",
       /*target_bias=*/1.0, /*uniform_mix=*/0.10, /*crawl_batch=*/50},
      {"Renren Super Node Collector V1.0", "Windows", "Contact Author",
       /*target_bias=*/2.0, /*uniform_mix=*/0.02, /*crawl_batch=*/100},
      {"Renren Almighty Assistant V5.8", "Windows", "Contact Author",
       /*target_bias=*/0.6, /*uniform_mix=*/0.25, /*crawl_batch=*/30},
  };
  return kTools;
}

}  // namespace sybil::attack
