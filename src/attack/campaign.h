// Topology-scale Sybil campaign simulation.
//
// This is the substitute for the paper's 667,723-Sybil Renren dataset
// (Section 3). A static normal social graph stands in for the
// established user base; Sybil accounts arrive over a multi-year window,
// run management tools that target *popular* accounts (normal or Sybil —
// the tool cannot tell), and are banned after an exposure period by the
// platform's detection. Sybil–Sybil ("Sybil") edges arise *emergently*:
// a successful Sybil becomes popular, other attackers' tools sample it,
// and it accepts — the accidental-edge mechanism of Section 3.4.
//
// A small fraction of attackers additionally wire their own Sybil fleet
// together intentionally at creation time (the circled vertical runs in
// Fig 8 and the Sybil-edge-rich component in Table 2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/generators.h"
#include "osn/behavior.h"
#include "osn/network.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace sybil::attack {

using graph::NodeId;
using graph::Time;

struct CampaignConfig {
  /// Established normal user base (static during the campaign).
  std::uint32_t normal_users = 300'000;
  graph::OsnGraphParams normal_graph{
      .nodes = 0,  // overwritten with normal_users
      .mean_links = 12.0,
      .triadic_closure = 0.55,
      .pa_beta = 1.0,
  };

  std::uint32_t sybils = 15'000;
  /// Campaign window (paper: 2008 → Feb 2011 ≈ 3 years ≈ 26k hours).
  /// Longer windows lower the number of concurrently-live Sybils and
  /// with it the accidental Sybil-edge rate.
  double campaign_hours = 60'000.0;

  /// Sybil active lifetime before the platform bans it, uniform hours.
  double lifetime_min = 60.0;
  double lifetime_max = 380.0;

  /// A small share of Sybils evade detection for much longer — the
  /// well-maintained, popular-looking accounts. They keep sending and
  /// keep being sampled by other attackers' tools, becoming the high-
  /// degree magnets of the giant Sybil component (Fig 9's degree tail).
  double longlived_fraction = 0.01;
  double longlived_min = 800.0;
  double longlived_max = 6000.0;

  /// Tool activity: the tool runs in bursts — online_prob of the hours,
  /// sending invites_per_hour (lognormal across Sybils) while running.
  /// Expected volume 0.05 * 21 ≈ 1 invite/hour matches the calibrated
  /// topology, while the *short-window rate* stays in the 20-80/hour
  /// band the paper measures (Fig 1). The heavy tail (sigma 1.0)
  /// produces the Fig 5 degree tail: a few Sybils become very popular
  /// and act as accidental-edge magnets.
  double online_prob = 0.05;
  double invites_mu = 21.0;
  double invites_sigma = 1.0;

  /// The management-tool market (Table 3): each attacker block runs one
  /// tool; tools differ in popularity bias (weight = (degree+1)^bias)
  /// and exploration mix. The strong-bias "super node collector" is what
  /// concentrates Sybil edges onto popular Sybils.
  struct ToolMix {
    double bias;
    double uniform_mix;
    double share;  // fraction of attacker blocks using this tool
  };
  std::vector<ToolMix> tools = {
      {0.6, 0.25, 0.55},  // marketing assistant: broad targeting
      {1.0, 0.10, 0.30},  // almighty assistant: popularity-directed
      {1.4, 0.05, 0.15},  // super node collector: hub hunting
  };

  /// Attacker fleets: Sybils are created in blocks per attacker, block
  /// size ~ 1 + Poisson(attacker_block_mean - 1).
  double attacker_block_mean = 8.0;
  /// Probability an attacker intentionally links its block into a chain
  /// at creation time (intentional Sybil edges).
  double mesh_block_prob = 0.02;

  /// Normal-side acceptance model (stranger path only — Sybil requests
  /// carry no prior relationship).
  osn::NormalBehaviorParams normal;
  /// Sybil profile model (attractiveness drives acceptance).
  osn::SybilBehaviorParams sybil;

  /// When true (the paper's observation), Sybils accept every incoming
  /// request. Setting it false is an ablation: Sybil targets then accept
  /// strangers like ordinary users, which removes the accidental
  /// Sybil-edge channel almost entirely.
  bool sybil_accept_all = true;

  /// Platform countermeasure: maximum friend requests any account may
  /// send per hour (0 = unlimited). With `attacker_adapts` false the
  /// tools keep bursting and excess requests are simply blocked; with it
  /// true the tools throttle to the cap and burn their (finite)
  /// lifetime instead — the countermeasure-evaluation bench sweeps both.
  std::uint32_t platform_rate_cap = 0;
  bool attacker_adapts = false;

  double response_delay_mean = 12.0;
  double popularity_rebuild_hours = 72.0;

  /// Record the full osn::EventLog on the campaign network. Off by
  /// default (the log costs memory proportional to total activity);
  /// the chaos bench and fault-injection harness need it to replay the
  /// campaign through a hardened StreamDetector.
  bool keep_event_log = false;

  std::uint64_t seed = 7;
};

/// Result handle: the populated network plus bookkeeping about the
/// Sybil population.
struct CampaignResult {
  std::unique_ptr<osn::Network> network;
  std::vector<NodeId> sybil_ids;
  std::vector<NodeId> normal_ids;
  /// Sybils whose attacker wired its block intentionally.
  std::vector<NodeId> meshed_sybil_ids;
  /// Count of Sybil–Sybil edges created intentionally at block creation.
  std::uint64_t intentional_sybil_edges = 0;
};

/// Runs the campaign to completion. Deterministic in config.seed.
CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace sybil::attack
