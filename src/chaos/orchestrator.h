// ChaosOrchestrator: drives the sharded service through a
// ScenarioManifest — traffic shapes, fault windows, shard kills with
// recovery under fire, overload phases — deterministically, with the
// accounting identities asserted at every step and (for identity-
// expected manifests) the final FlagBatch and per-shard stats byte-
// identical to an undisturbed run of the same manifest.
//
// The determinism protocol (docs/ROBUSTNESS.md §Scenario harness):
//
//   Boundary schedule. The manifest's phases compile to a list of
//   *boundary points* in global-seq space (every pump_interval multiple
//   within a phase, plus the phase end). At boundary s the orchestrator
//   pumps each shard through seq s-1 (ServiceSupervisor::pump_through —
//   idempotent at a fixed bound), optionally sweeps at the clean time
//   of event s-1, and checkpoints. The schedule is a pure function of
//   the manifest, so disturbed and undisturbed runs fire byte-identical
//   boundary sequences — which is why admission verdicts (a function of
//   queue depth, i.e. of the pump schedule) align across runs.
//
//   Kills. A KillSpec arms a faults::ShardCrashInjector; the victim
//   dies mid-offer (or mid-checkpoint) by InjectedCrash. The
//   orchestrator marks it down (ShardRouter::mark_down), immediately
//   re-offers the interrupted (event, seq) so surviving shards past the
//   victim still receive it (the min-frontier contract), and keeps
//   offering live traffic to the survivors. After down_for further
//   events it restarts the shard (WAL replay + checkpoint load), fires
//   the boundaries the recovered state proves it missed — the count of
//   durable sweeps tells it exactly which sweep boundary the state is
//   at, and pump/checkpoint re-fires are idempotent — then rewinds the
//   arrival cursor to the shard's redelivery frontier and re-walks:
//   live shards suppress every re-offered copy, the victim replays its
//   exact undisturbed admission trajectory.
//
//   Identity checks. router.accounting_ok() (per-shard identity +
//   cross-shard copies identity + frontier consistency) is asserted
//   after every arrival and every boundary; failures are counted, never
//   masked.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/manifest.h"
#include "core/detector.h"
#include "faults/process_faults.h"
#include "service/router.h"

namespace sybil::chaos {

struct ChaosRunOptions {
  /// Service state root for this run. WIPED (remove_all) at run start —
  /// a scenario is a from-scratch reproduction, not a resume.
  std::string dir;
  /// False strips fault windows and kills (the control run). The
  /// boundary schedule and traffic shape are unchanged.
  bool disturbed = true;
};

/// Per-phase slice of the run report (CLI `--scenario` prints these).
struct PhaseReport {
  std::string name;
  std::uint64_t first_event = 0;
  std::uint64_t until_event = 0;
  /// Arrivals offered while the head was in this phase — includes
  /// window duplicates and post-restart re-offers, so it can exceed
  /// until_event - first_event.
  std::uint64_t arrivals = 0;
  std::uint64_t boundaries = 0;  // global boundary fires
  std::uint64_t sweeps = 0;      // ...of which ran a flag sweep
  std::uint64_t kills = 0;
  std::uint64_t recoveries = 0;
  /// Fleet tier-transition delta across the phase (live shards at the
  /// phase edges; best-effort while a shard is down).
  std::uint64_t tier_transitions = 0;
  std::uint64_t identity_checks = 0;
  std::uint64_t identity_failures = 0;
};

struct ScenarioOutcome {
  std::vector<PhaseReport> phases;
  /// What the fault windows injected (disturbed runs only).
  faults::FaultScheduleReport faults;
  std::uint64_t arrivals_total = 0;
  std::uint64_t kills = 0;
  std::uint64_t recoveries = 0;
  /// at_boundary kills whose crossing never arrived (disarmed at end).
  std::uint64_t kills_missed = 0;
  std::uint64_t identity_checks = 0;
  std::uint64_t identity_failures = 0;
  std::uint64_t copies_skipped_down = 0;
  // [disk] execution (disturbed runs only).
  std::uint64_t disk_windows = 0;         // windows armed
  std::uint64_t disk_windows_missed = 0;  // ranges passed while deferred
  std::uint64_t power_cuts = 0;           // power-loss cuts fired
  std::uint64_t storage_degraded = 0;     // shards seen storage-degraded
  std::uint64_t storage_recoveries = 0;   // degraded exits forced at close
  /// Durability-boundary crossings per shard over the whole run (the
  /// kill-at-every-boundary sweeps learn their iteration space here).
  std::vector<std::uint64_t> boundary_crossings;
  /// Owner-merged final flags and the stats the identity contract pins.
  core::FlagBatch flags;
  std::vector<std::string> shard_stats;
  std::string router_stats;
};

class ChaosOrchestrator {
 public:
  /// Validates the manifest once up front.
  explicit ChaosOrchestrator(ScenarioManifest manifest);

  /// Executes the scenario. Throws only on harness bugs (state-dir I/O
  /// failures, manifest/stream mismatch); injected faults and identity
  /// failures are reported in the outcome, not thrown.
  ScenarioOutcome run(const ChaosRunOptions& options);

  const ScenarioManifest& manifest() const noexcept { return manifest_; }

 private:
  ScenarioManifest manifest_;
};

/// Byte-identity verdict between a disturbed run and its control.
struct IdentityVerdict {
  bool flags_identical = false;
  bool stats_identical = false;
  bool accounting_held = false;
  bool ok() const noexcept {
    return flags_identical && stats_identical && accounting_held;
  }
};

/// Field-exact FlagBatch comparison (account, flag time, features,
/// defense annotations).
bool flags_equal(const core::FlagBatch& a, const core::FlagBatch& b);

/// Runs `manifest` disturbed under <dir>/disturbed and undisturbed
/// under <dir>/undisturbed, then compares final flags + per-shard
/// stats. `disturbed`/`undisturbed` receive the outcomes when non-null.
IdentityVerdict verify_identity(const ScenarioManifest& manifest,
                                const std::string& dir,
                                ScenarioOutcome* disturbed = nullptr,
                                ScenarioOutcome* undisturbed = nullptr);

}  // namespace sybil::chaos
