#include "chaos/orchestrator.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

namespace sybil::chaos {

namespace fs = std::filesystem;

ChaosOrchestrator::ChaosOrchestrator(ScenarioManifest manifest)
    : manifest_(std::move(manifest)) {
  manifest_.validate();
}

bool flags_equal(const core::FlagBatch& a, const core::FlagBatch& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const core::FlagRecord& ra = a[i];
    const core::FlagRecord& rb = b[i];
    if (ra.account != rb.account || ra.flagged_at != rb.flagged_at ||
        ra.features.as_vector() != rb.features.as_vector() ||
        ra.defense_scored != rb.defense_scored ||
        ra.defense_rank != rb.defense_rank ||
        ra.defense_clustering != rb.defense_clustering) {
      return false;
    }
  }
  return true;
}

ScenarioOutcome ChaosOrchestrator::run(const ChaosRunOptions& options) {
  if (options.dir.empty()) {
    throw std::invalid_argument("ChaosRunOptions::dir must be set");
  }
  const bool disturbed = options.disturbed;
  fs::remove_all(options.dir);

  const std::vector<osn::Event> events =
      service::synthetic_workload(manifest_.workload);

  ScenarioOutcome out;
  const std::vector<faults::Arrival> arrivals =
      disturbed
          ? faults::apply_fault_schedule(events, manifest_.fault_windows,
                                         &out.faults)
          : faults::apply_fault_schedule(events, {}, &out.faults);

  // The boundary schedule: a pure function of the manifest, so the
  // disturbed and undisturbed runs fire the same pump/sweep/checkpoint
  // sequence at the same global-seq points (see orchestrator.h).
  struct Boundary {
    std::uint64_t seq = 0;
    bool sweep = false;
    double time = 0.0;  // clean time of event seq-1 (sweep stamp)
    std::size_t phase = 0;
  };
  std::vector<Boundary> boundaries;
  std::vector<std::size_t> sweep_at;  // boundary index of the k-th sweep
  {
    std::uint64_t prev = 0;
    for (std::size_t pi = 0; pi < manifest_.phases.size(); ++pi) {
      const PhaseSpec& p = manifest_.phases[pi];
      for (std::uint64_t s = prev + p.pump_interval; s < p.until_event;
           s += p.pump_interval) {
        boundaries.push_back({s, false, events[s - 1].time, pi});
      }
      boundaries.push_back(
          {p.until_event, p.sweep, events[p.until_event - 1].time, pi});
      if (p.sweep) sweep_at.push_back(boundaries.size() - 1);
      prev = p.until_event;
    }
  }

  out.phases.resize(manifest_.phases.size());
  {
    std::uint64_t prev = 0;
    for (std::size_t pi = 0; pi < manifest_.phases.size(); ++pi) {
      out.phases[pi].name = manifest_.phases[pi].name;
      out.phases[pi].first_event = prev;
      out.phases[pi].until_event = manifest_.phases[pi].until_event;
      prev = manifest_.phases[pi].until_event;
    }
  }

  service::ShardRouterOptions ro;
  ro.shards = manifest_.shards;
  ro.shard.dir = options.dir;
  ro.shard.detector = manifest_.detector_options();
  ro.shard.wal_fsync = manifest_.fsync;
  ro.shard.wal_segment_records = manifest_.wal_segment_records;
  // The boundary schedule owns every checkpoint: index-triggered
  // checkpoints would fire at different WAL positions after a rewind
  // and desynchronize the runs.
  ro.shard.checkpoint_every = 0;
  ro.shard.checkpoint_retain = manifest_.checkpoint_retain;

  std::vector<std::uint64_t> crossings(manifest_.shards, 0);
  std::optional<faults::ShardCrashInjector> injector;
  ro.crash_hook = [&crossings, &injector](std::uint32_t s,
                                          service::CrashPoint p) {
    ++crossings[s];
    if (injector) (*injector)(s, p);
  };

  service::ShardRouter router(ro);
  router.start();

  // Schedule state.
  struct Downtime {
    KillSpec spec;
    std::uint64_t restart_at = 0;  // head position that triggers restart
  };
  std::optional<KillSpec> armed;
  std::optional<Downtime> down;
  std::size_t kill_idx = 0;
  std::vector<std::size_t> bidx(manifest_.shards, 0);  // next boundary, per shard
  std::size_t gb = 0;          // next boundary not yet fired globally
  std::uint64_t head = 0;      // one past the highest fresh seq offered
  std::size_t cursor = 0;      // next arrival
  std::size_t cur_phase = 0;
  std::uint64_t tier_base = 0;

  const auto fleet_tiers = [&]() {
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
      if (!router.is_down(i)) n += router.shard(i).tier_transitions();
    }
    return n;
  };

  const auto check_identity = [&]() {
    ++out.identity_checks;
    ++out.phases[cur_phase].identity_checks;
    if (!router.accounting_ok()) {
      ++out.identity_failures;
      ++out.phases[cur_phase].identity_failures;
    }
  };

  const auto fleet_level = [&]() {
    if (down) return false;
    for (std::size_t b : bidx) {
      if (b != gb) return false;
    }
    return true;
  };

  // One shard's boundary ops, in the canonical order: pump to the
  // boundary's stream position, sweep (if scheduled), checkpoint.
  // pump_through and checkpoint_now are idempotent re-fired at the same
  // position; sweeps are not, which is why recovery counts durable
  // sweeps to find the re-fire start (do_restart below).
  const auto fire_for_shard = [&](std::uint32_t i, const Boundary& b) {
    service::ServiceSupervisor& s = router.shard(i);
    s.pump_through(b.seq - 1);
    if (b.sweep) s.sweep_flags(b.time);
    s.checkpoint_now();
  };

  const auto on_crash = [&](std::uint32_t victim) {
    router.mark_down(victim);
    injector.reset();
    down = Downtime{*armed, head + armed->down_for};
    armed.reset();
    ++out.kills;
    ++out.phases[cur_phase].kills;
  };

  const auto fire_global = [&](const Boundary& b) {
    ++out.phases[b.phase].boundaries;
    if (b.sweep) ++out.phases[b.phase].sweeps;
    if (fleet_level()) {
      // Steady state: one parallel pump lane per shard — the same
      // deterministic-parallel path pump() uses.
      router.pump_through(b.seq - 1);
    } else {
      for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
        if (!router.is_down(i) && bidx[i] == gb) {
          router.shard(i).pump_through(b.seq - 1);
        }
      }
    }
    for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
      if (router.is_down(i) || bidx[i] != gb) continue;
      try {
        if (b.sweep) router.shard(i).sweep_flags(b.time);
        router.shard(i).checkpoint_now();
        bidx[i] = gb + 1;
      } catch (const faults::InjectedCrash&) {
        // Death at the checkpoint boundary: the sweep above ran but
        // died with the process; do_restart recomputes bidx from what
        // proved durable.
        on_crash(i);
      }
    }
  };

  const auto do_restart = [&]() {
    const std::uint32_t v = down->spec.shard;
    const service::RecoveryReport rec = router.restart_shard(v);
    ++out.recoveries;
    ++out.phases[cur_phase].recoveries;
    // The recovered state retains exactly the sweeps its newest durable
    // checkpoint saw; pumps and checkpoints re-fire idempotently, so
    // the sweep count alone pins the boundary to resume from.
    const std::uint64_t durable_sweeps = router.shard(v).sweeps();
    bidx[v] = durable_sweeps == 0
                  ? 0
                  : sweep_at[static_cast<std::size_t>(durable_sweeps) - 1] + 1;
    // Rewind to the victim's redelivery frontier: every live shard
    // suppresses the re-walked copies, the victim replays its exact
    // undisturbed admission trajectory.
    std::size_t r = 0;
    while (r < arrivals.size() && arrivals[r].seq < rec.next_seq) ++r;
    cursor = std::min(cursor, r);
    down.reset();
  };

  const auto maybe_arm = [&]() {
    if (!disturbed || armed || down || kill_idx >= manifest_.kills.size()) {
      return;
    }
    // A kill never arms while the fleet is uneven (a victim catching
    // up): one disturbance at a time keeps recovery analyzable.
    if (!fleet_level()) return;
    const KillSpec& k = manifest_.kills[kill_idx];
    if (k.use_boundary) {
      if (k.at_boundary < crossings[k.shard]) {
        ++out.kills_missed;  // crossing already passed (deferred too long)
        ++kill_idx;
        return;
      }
      injector.emplace(k.shard, k.at_boundary - crossings[k.shard]);
      armed = k;
      ++kill_idx;
    } else if (head >= k.at_event) {
      injector.emplace(k.shard, std::uint64_t{0});
      armed = k;
      ++kill_idx;
    }
  };

  while (cursor < arrivals.size() || down) {
    if (cursor >= arrivals.size()) {
      // Stream ended with the victim still down: recover now and let
      // the rewound cursor drive the catch-up.
      do_restart();
      continue;
    }
    maybe_arm();
    const faults::Arrival& a = arrivals[cursor];

    // A recovered victim lagging behind the global boundary schedule
    // fires its missed boundaries exactly where the undisturbed run
    // fired them: before the first offer at or past each boundary seq.
    for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
      if (router.is_down(i)) continue;
      while (bidx[i] < gb && boundaries[bidx[i]].seq <= a.seq) {
        fire_for_shard(i, boundaries[bidx[i]]);
        ++bidx[i];
      }
    }

    try {
      router.offer(a.event, a.seq);
    } catch (const faults::InjectedCrash&) {
      if (!armed) throw;  // cannot happen: only the armed injector throws
      on_crash(armed->shard);
      // Complete the torn delivery: shards ordered after the victim in
      // the route plan have not seen this seq, and later offers would
      // advance their frontiers past it — re-offer before anything
      // newer (the min-frontier contract; see ShardRouter::mark_down).
      router.offer(a.event, a.seq);
    }
    ++out.arrivals_total;
    ++out.phases[cur_phase].arrivals;
    check_identity();

    const bool fresh = a.seq >= head;
    ++cursor;
    if (!fresh) continue;
    head = a.seq + 1;
    while (cur_phase + 1 < out.phases.size() &&
           head > manifest_.phases[cur_phase].until_event) {
      const std::uint64_t t = fleet_tiers();
      // Saturate: a restarted shard re-bases its (ops-only, never
      // checkpointed) transition counter, so the fleet sum can step
      // backwards across a recovery.
      out.phases[cur_phase].tier_transitions = t > tier_base ? t - tier_base : 0;
      tier_base = t;
      ++cur_phase;
    }
    while (gb < boundaries.size() && boundaries[gb].seq <= head) {
      fire_global(boundaries[gb]);
      ++gb;
      check_identity();
    }
    if (down && head >= down->restart_at) do_restart();
  }

  // A kill whose trigger never arrived (no further traffic on the
  // victim) is reported, not silently dropped.
  if (injector) {
    injector.reset();
    if (armed) {
      armed.reset();
      ++out.kills_missed;
    }
  }
  while (kill_idx < manifest_.kills.size()) {
    ++out.kills_missed;
    ++kill_idx;
  }

  // Level the fleet: any boundary still owed (a victim recovered at
  // stream end, or a final stretch of dropped events) fires now, in
  // order, before the terminal flush.
  for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
    while (bidx[i] < gb) {
      fire_for_shard(i, boundaries[bidx[i]]);
      ++bidx[i];
    }
  }
  while (gb < boundaries.size()) {
    fire_global(boundaries[gb]);
    ++gb;
  }
  check_identity();

  router.flush(true);
  router.sweep_flags(manifest_.workload.hours + 1.0);
  check_identity();

  {
    const std::uint64_t t = fleet_tiers();
    out.phases[cur_phase].tier_transitions = t > tier_base ? t - tier_base : 0;
  }
  out.copies_skipped_down = router.copies_skipped_down();
  out.boundary_crossings = crossings;
  out.flags = router.take_flagged();
  out.shard_stats.reserve(manifest_.shards);
  for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
    out.shard_stats.push_back(router.shard(i).stats_json());
  }
  out.router_stats = router.stats_json();
  return out;
}

IdentityVerdict verify_identity(const ScenarioManifest& manifest,
                                const std::string& dir,
                                ScenarioOutcome* disturbed,
                                ScenarioOutcome* undisturbed) {
  ChaosOrchestrator orchestrator(manifest);
  ChaosRunOptions d;
  d.dir = dir + "/disturbed";
  d.disturbed = true;
  ChaosRunOptions u;
  u.dir = dir + "/undisturbed";
  u.disturbed = false;
  ScenarioOutcome dd = orchestrator.run(d);
  ScenarioOutcome uu = orchestrator.run(u);
  IdentityVerdict v;
  v.flags_identical = flags_equal(dd.flags, uu.flags);
  v.stats_identical = dd.shard_stats == uu.shard_stats;
  v.accounting_held =
      dd.identity_failures == 0 && uu.identity_failures == 0;
  if (disturbed != nullptr) *disturbed = std::move(dd);
  if (undisturbed != nullptr) *undisturbed = std::move(uu);
  return v;
}

}  // namespace sybil::chaos
