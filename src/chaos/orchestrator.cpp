#include "chaos/orchestrator.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "io/faulty_vfs.h"
#include "io/vfs.h"

namespace sybil::chaos {

namespace fs = std::filesystem;

ChaosOrchestrator::ChaosOrchestrator(ScenarioManifest manifest)
    : manifest_(std::move(manifest)) {
  manifest_.validate();
}

bool flags_equal(const core::FlagBatch& a, const core::FlagBatch& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const core::FlagRecord& ra = a[i];
    const core::FlagRecord& rb = b[i];
    if (ra.account != rb.account || ra.flagged_at != rb.flagged_at ||
        ra.features.as_vector() != rb.features.as_vector() ||
        ra.defense_scored != rb.defense_scored ||
        ra.defense_rank != rb.defense_rank ||
        ra.defense_clustering != rb.defense_clustering) {
      return false;
    }
  }
  return true;
}

ScenarioOutcome ChaosOrchestrator::run(const ChaosRunOptions& options) {
  if (options.dir.empty()) {
    throw std::invalid_argument("ChaosRunOptions::dir must be set");
  }
  const bool disturbed = options.disturbed;
  fs::remove_all(options.dir);

  const std::vector<osn::Event> events =
      service::synthetic_workload(manifest_.workload);

  ScenarioOutcome out;
  const std::vector<faults::Arrival> arrivals =
      disturbed
          ? faults::apply_fault_schedule(events, manifest_.fault_windows,
                                         &out.faults)
          : faults::apply_fault_schedule(events, {}, &out.faults);

  // The boundary schedule: a pure function of the manifest, so the
  // disturbed and undisturbed runs fire the same pump/sweep/checkpoint
  // sequence at the same global-seq points (see orchestrator.h).
  struct Boundary {
    std::uint64_t seq = 0;
    bool sweep = false;
    double time = 0.0;  // clean time of event seq-1 (sweep stamp)
    std::size_t phase = 0;
  };
  std::vector<Boundary> boundaries;
  std::vector<std::size_t> sweep_at;  // boundary index of the k-th sweep
  {
    std::uint64_t prev = 0;
    for (std::size_t pi = 0; pi < manifest_.phases.size(); ++pi) {
      const PhaseSpec& p = manifest_.phases[pi];
      for (std::uint64_t s = prev + p.pump_interval; s < p.until_event;
           s += p.pump_interval) {
        boundaries.push_back({s, false, events[s - 1].time, pi});
      }
      boundaries.push_back(
          {p.until_event, p.sweep, events[p.until_event - 1].time, pi});
      if (p.sweep) sweep_at.push_back(boundaries.size() - 1);
      prev = p.until_event;
    }
  }

  out.phases.resize(manifest_.phases.size());
  {
    std::uint64_t prev = 0;
    for (std::size_t pi = 0; pi < manifest_.phases.size(); ++pi) {
      out.phases[pi].name = manifest_.phases[pi].name;
      out.phases[pi].first_event = prev;
      out.phases[pi].until_event = manifest_.phases[pi].until_event;
      prev = manifest_.phases[pi].until_event;
    }
  }

  service::ShardRouterOptions ro;
  ro.shards = manifest_.shards;
  ro.shard.dir = options.dir;
  ro.shard.detector = manifest_.detector_options();
  ro.shard.wal_fsync = manifest_.fsync;
  ro.shard.wal_segment_records = manifest_.wal_segment_records;
  // The boundary schedule owns every checkpoint: index-triggered
  // checkpoints would fire at different WAL positions after a rewind
  // and desynchronize the runs.
  ro.shard.checkpoint_every = 0;
  ro.shard.checkpoint_retain = manifest_.checkpoint_retain;

  // Per-shard injectable storage: only a disturbed run with [disk]
  // windows pays for the indirection; otherwise every shard writes
  // through the real vfs exactly as before.
  std::vector<std::unique_ptr<io::FaultyVfs>> disk_vfs;
  if (disturbed && !manifest_.disk_faults.empty()) {
    disk_vfs.reserve(manifest_.shards);
    for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
      disk_vfs.push_back(std::make_unique<io::FaultyVfs>());
    }
    ro.shard_vfs = [&disk_vfs](std::uint32_t i) -> io::Vfs* {
      return disk_vfs[i].get();
    };
  }

  std::vector<std::uint64_t> crossings(manifest_.shards, 0);
  std::optional<faults::ShardCrashInjector> injector;
  ro.crash_hook = [&crossings, &injector](std::uint32_t s,
                                          service::CrashPoint p) {
    ++crossings[s];
    if (injector) (*injector)(s, p);
  };

  service::ShardRouter router(ro);
  router.start();

  // Schedule state.
  struct Downtime {
    KillSpec spec;
    std::uint64_t restart_at = 0;  // head position that triggers restart
  };
  std::optional<KillSpec> armed;
  std::optional<Downtime> down;
  std::size_t kill_idx = 0;
  std::optional<DiskFaultSpec> disk_active;
  std::size_t disk_idx = 0;
  std::vector<std::size_t> bidx(manifest_.shards, 0);  // next boundary, per shard
  std::size_t gb = 0;          // next boundary not yet fired globally
  std::uint64_t head = 0;      // one past the highest fresh seq offered
  std::size_t cursor = 0;      // next arrival
  std::size_t cur_phase = 0;
  std::uint64_t tier_base = 0;

  const auto fleet_tiers = [&]() {
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
      if (!router.is_down(i)) n += router.shard(i).tier_transitions();
    }
    return n;
  };

  const auto check_identity = [&]() {
    ++out.identity_checks;
    ++out.phases[cur_phase].identity_checks;
    if (!router.accounting_ok()) {
      ++out.identity_failures;
      ++out.phases[cur_phase].identity_failures;
    }
  };

  const auto fleet_level = [&]() {
    if (down) return false;
    for (std::size_t b : bidx) {
      if (b != gb) return false;
    }
    return true;
  };

  // One shard's boundary ops, in the canonical order: pump to the
  // boundary's stream position, sweep (if scheduled), checkpoint.
  // pump_through and checkpoint_now are idempotent re-fired at the same
  // position; sweeps are not, which is why recovery counts durable
  // sweeps to find the re-fire start (do_restart below).
  const auto fire_for_shard = [&](std::uint32_t i, const Boundary& b) {
    service::ServiceSupervisor& s = router.shard(i);
    s.pump_through(b.seq - 1);
    if (b.sweep) s.sweep_flags(b.time);
    s.checkpoint_now();
  };

  const auto on_crash = [&](std::uint32_t victim) {
    router.mark_down(victim);
    injector.reset();
    down = Downtime{*armed, head + armed->down_for};
    armed.reset();
    ++out.kills;
    ++out.phases[cur_phase].kills;
  };

  // A power cut fired on the active [disk] window's shard: its "disk"
  // is dead (unsynced tail lost or torn per the window's seed). Treat
  // it like a kill — mark down, reboot the vfs so recovery can read
  // what survived, restart when the window closes, re-drive from the
  // victim's frontier.
  const auto on_power_cut = [&]() {
    const std::uint32_t victim = disk_active->shard;
    router.mark_down(victim);
    disk_vfs[victim]->reboot();
    KillSpec spec;
    spec.shard = victim;
    down = Downtime{spec, disk_active->to_event};
    disk_active.reset();
    ++out.power_cuts;
    ++out.kills;
    ++out.phases[cur_phase].kills;
  };

  const auto fire_global = [&](const Boundary& b) {
    ++out.phases[b.phase].boundaries;
    if (b.sweep) ++out.phases[b.phase].sweeps;
    if (fleet_level()) {
      // Steady state: one parallel pump lane per shard — the same
      // deterministic-parallel path pump() uses.
      router.pump_through(b.seq - 1);
    } else {
      for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
        if (!router.is_down(i) && bidx[i] == gb) {
          router.shard(i).pump_through(b.seq - 1);
        }
      }
    }
    for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
      if (router.is_down(i) || bidx[i] != gb) continue;
      try {
        if (b.sweep) router.shard(i).sweep_flags(b.time);
        router.shard(i).checkpoint_now();
        bidx[i] = gb + 1;
      } catch (const faults::InjectedCrash&) {
        // Death at the checkpoint boundary: the sweep above ran but
        // died with the process; do_restart recomputes bidx from what
        // proved durable.
        on_crash(i);
      } catch (const io::VfsError& e) {
        // ENOSPC/EIO at a boundary degrade in place inside the
        // supervisor and never unwind to here; only a power cut (the
        // boundary's WAL sync or checkpoint fsync hit the window's
        // cut_at_op) escapes — the shard "lost power" mid-boundary.
        if (e.kind() != io::VfsFaultKind::kPowerLoss || !disk_active) throw;
        on_power_cut();
      }
    }
  };

  const auto do_restart = [&]() {
    const std::uint32_t v = down->spec.shard;
    const service::RecoveryReport rec = router.restart_shard(v);
    ++out.recoveries;
    ++out.phases[cur_phase].recoveries;
    // The recovered state retains exactly the sweeps its newest durable
    // checkpoint saw; pumps and checkpoints re-fire idempotently, so
    // the sweep count alone pins the boundary to resume from.
    const std::uint64_t durable_sweeps = router.shard(v).sweeps();
    bidx[v] = durable_sweeps == 0
                  ? 0
                  : sweep_at[static_cast<std::size_t>(durable_sweeps) - 1] + 1;
    // Rewind to the victim's redelivery frontier: every live shard
    // suppresses the re-walked copies, the victim replays its exact
    // undisturbed admission trajectory.
    std::size_t r = 0;
    while (r < arrivals.size() && arrivals[r].seq < rec.next_seq) ++r;
    cursor = std::min(cursor, r);
    down.reset();
  };

  const auto maybe_arm = [&]() {
    if (!disturbed || armed || down || disk_active ||
        kill_idx >= manifest_.kills.size()) {
      return;
    }
    // A kill never arms while the fleet is uneven (a victim catching
    // up): one disturbance at a time keeps recovery analyzable.
    if (!fleet_level()) return;
    const KillSpec& k = manifest_.kills[kill_idx];
    if (k.use_boundary) {
      if (k.at_boundary < crossings[k.shard]) {
        ++out.kills_missed;  // crossing already passed (deferred too long)
        ++kill_idx;
        return;
      }
      injector.emplace(k.shard, k.at_boundary - crossings[k.shard]);
      armed = k;
      ++kill_idx;
    } else if (head >= k.at_event) {
      injector.emplace(k.shard, std::uint64_t{0});
      armed = k;
      ++kill_idx;
    }
  };

  // Close the active [disk] window: clear the fault plan, then force
  // the shard's storage retry so the buffered WAL backlog flushes and
  // full durability resumes before any later disturbance arms.
  const auto close_disk_window = [&]() {
    const std::uint32_t s = disk_active->shard;
    disk_vfs[s]->clear_faults();
    if (!router.is_down(s) &&
        disk_active->kind != DiskFaultSpec::Kind::kPowerLoss &&
        router.shard(s).storage_degraded()) {
      ++out.storage_degraded;
      if (router.shard(s).retry_storage_now()) ++out.storage_recoveries;
    }
    disk_active.reset();
  };

  const auto disk_tick = [&]() {
    if (disk_vfs.empty()) return;
    if (disk_active && head >= disk_active->to_event) close_disk_window();
    if (disk_active || armed || down) return;
    while (disk_idx < manifest_.disk_faults.size()) {
      const DiskFaultSpec& d = manifest_.disk_faults[disk_idx];
      if (head >= d.to_event) {
        // The whole range passed while the fleet was uneven or another
        // disturbance was live: reported, never silently dropped.
        ++out.disk_windows_missed;
        ++disk_idx;
        continue;
      }
      if (head >= d.from_event && fleet_level()) {
        io::FaultyVfs& v = *disk_vfs[d.shard];
        // The window models a fault beginning *now* on an otherwise
        // healthy device: everything the run wrote before it is
        // declared durable (the barrier the fsync knob may have
        // skipped), so a power cut risks only in-window state — a prior
        // checkpoint that already justified a WAL prune cannot be
        // retroactively unrenamed into a recovery hole.
        v.settle();
        io::FaultConfig cfg;
        cfg.seed = d.seed;
        switch (d.kind) {
          case DiskFaultSpec::Kind::kNoSpace:
            cfg.byte_budget = 0;  // every write from here is ENOSPC
            break;
          case DiskFaultSpec::Kind::kIoError:
            cfg.fail_from = v.ops();  // every op from here is EIO...
            cfg.fail_count = io::FaultConfig::kNever;  // ...until cleared
            cfg.fail_kind = io::VfsFaultKind::kIoError;
            break;
          case DiskFaultSpec::Kind::kPowerLoss:
            cfg.cut_at_op = v.ops();  // cut at the shard's next disk op
            break;
        }
        v.configure(cfg);
        disk_active = d;
        ++out.disk_windows;
        ++disk_idx;
      }
      break;
    }
  };

  while (cursor < arrivals.size() || down) {
    if (cursor >= arrivals.size()) {
      // Stream ended with the victim still down: recover now and let
      // the rewound cursor drive the catch-up.
      do_restart();
      continue;
    }
    disk_tick();
    maybe_arm();
    const faults::Arrival& a = arrivals[cursor];

    // A recovered victim lagging behind the global boundary schedule
    // fires its missed boundaries exactly where the undisturbed run
    // fired them: before the first offer at or past each boundary seq.
    for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
      if (router.is_down(i)) continue;
      while (bidx[i] < gb && boundaries[bidx[i]].seq <= a.seq) {
        fire_for_shard(i, boundaries[bidx[i]]);
        ++bidx[i];
      }
    }

    try {
      router.offer(a.event, a.seq);
    } catch (const faults::InjectedCrash&) {
      if (!armed) throw;  // cannot happen: only the armed injector throws
      on_crash(armed->shard);
      // Complete the torn delivery: shards ordered after the victim in
      // the route plan have not seen this seq, and later offers would
      // advance their frontiers past it — re-offer before anything
      // newer (the min-frontier contract; see ShardRouter::mark_down).
      router.offer(a.event, a.seq);
    } catch (const io::VfsError& e) {
      // Only a power cut unwinds out of offer() — ENOSPC/EIO degrade in
      // place inside the supervisor. Same torn-delivery protocol as a
      // process kill: mark down, complete the delivery to survivors.
      if (e.kind() != io::VfsFaultKind::kPowerLoss || !disk_active) throw;
      on_power_cut();
      router.offer(a.event, a.seq);
    }
    ++out.arrivals_total;
    ++out.phases[cur_phase].arrivals;
    check_identity();

    const bool fresh = a.seq >= head;
    ++cursor;
    if (!fresh) continue;
    head = a.seq + 1;
    while (cur_phase + 1 < out.phases.size() &&
           head > manifest_.phases[cur_phase].until_event) {
      const std::uint64_t t = fleet_tiers();
      // Saturate: a restarted shard re-bases its (ops-only, never
      // checkpointed) transition counter, so the fleet sum can step
      // backwards across a recovery.
      out.phases[cur_phase].tier_transitions = t > tier_base ? t - tier_base : 0;
      tier_base = t;
      ++cur_phase;
    }
    while (gb < boundaries.size() && boundaries[gb].seq <= head) {
      fire_global(boundaries[gb]);
      ++gb;
      check_identity();
    }
    if (down && head >= down->restart_at) do_restart();
  }

  // A kill whose trigger never arrived (no further traffic on the
  // victim) is reported, not silently dropped.
  if (injector) {
    injector.reset();
    if (armed) {
      armed.reset();
      ++out.kills_missed;
    }
  }
  while (kill_idx < manifest_.kills.size()) {
    ++out.kills_missed;
    ++kill_idx;
  }

  // A [disk] window still open at stream end (to_event == events, or a
  // tail of dropped arrivals) closes before the terminal boundaries and
  // flush — the run must end fully durable, with the backlog flushed.
  if (disk_active) close_disk_window();
  while (disk_idx < manifest_.disk_faults.size()) {
    ++out.disk_windows_missed;
    ++disk_idx;
  }

  // Level the fleet: any boundary still owed (a victim recovered at
  // stream end, or a final stretch of dropped events) fires now, in
  // order, before the terminal flush.
  for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
    while (bidx[i] < gb) {
      fire_for_shard(i, boundaries[bidx[i]]);
      ++bidx[i];
    }
  }
  while (gb < boundaries.size()) {
    fire_global(boundaries[gb]);
    ++gb;
  }
  check_identity();

  router.flush(true);
  router.sweep_flags(manifest_.workload.hours + 1.0);
  check_identity();

  {
    const std::uint64_t t = fleet_tiers();
    out.phases[cur_phase].tier_transitions = t > tier_base ? t - tier_base : 0;
  }
  out.copies_skipped_down = router.copies_skipped_down();
  out.boundary_crossings = crossings;
  out.flags = router.take_flagged();
  out.shard_stats.reserve(manifest_.shards);
  for (std::uint32_t i = 0; i < manifest_.shards; ++i) {
    out.shard_stats.push_back(router.shard(i).stats_json());
  }
  out.router_stats = router.stats_json();
  return out;
}

IdentityVerdict verify_identity(const ScenarioManifest& manifest,
                                const std::string& dir,
                                ScenarioOutcome* disturbed,
                                ScenarioOutcome* undisturbed) {
  ChaosOrchestrator orchestrator(manifest);
  ChaosRunOptions d;
  d.dir = dir + "/disturbed";
  d.disturbed = true;
  ChaosRunOptions u;
  u.dir = dir + "/undisturbed";
  u.disturbed = false;
  ScenarioOutcome dd = orchestrator.run(d);
  ScenarioOutcome uu = orchestrator.run(u);
  IdentityVerdict v;
  v.flags_identical = flags_equal(dd.flags, uu.flags);
  v.stats_identical = dd.shard_stats == uu.shard_stats;
  v.accounting_held =
      dd.identity_failures == 0 && uu.identity_failures == 0;
  if (disturbed != nullptr) *disturbed = std::move(dd);
  if (undisturbed != nullptr) *undisturbed = std::move(uu);
  return v;
}

}  // namespace sybil::chaos
