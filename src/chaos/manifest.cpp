#include "chaos/manifest.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sybil::chaos {

namespace {

constexpr const char* kMagic = "sybil-scenario v1";

std::string fmt_double(double v) {
  char buf[40];
  // Shortest round-trip-safe decimal: %.17g always reparses to the
  // same double, and integral values print without a trailing ".0"
  // noise (e.g. "96" not "96.000000000000000").
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) return buf;
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

const char* disk_kind_name(DiskFaultSpec::Kind k) {
  switch (k) {
    case DiskFaultSpec::Kind::kNoSpace:
      return "enospc";
    case DiskFaultSpec::Kind::kIoError:
      return "eio";
    case DiskFaultSpec::Kind::kPowerLoss:
      return "powerloss";
  }
  return "enospc";
}

const char* fsync_name(service::WalFsync f) {
  switch (f) {
    case service::WalFsync::kEveryAppend:
      return "always";
    case service::WalFsync::kOnRotate:
      return "rotate";
    case service::WalFsync::kNever:
      return "never";
  }
  return "never";
}

struct Line {
  std::size_t number = 0;
  std::string key;
  std::vector<std::string> values;  // whitespace-split value tokens
};

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("scenario manifest line " +
                              std::to_string(line) + ": " + what);
}

double parse_double(const Line& l, std::size_t idx = 0) {
  if (idx >= l.values.size()) fail(l.number, l.key + ": missing value");
  const std::string& s = l.values[idx];
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    fail(l.number, l.key + ": not a number: '" + s + "'");
  }
  return v;
}

std::uint64_t parse_u64(const Line& l, std::size_t idx = 0) {
  if (idx >= l.values.size()) fail(l.number, l.key + ": missing value");
  const std::string& s = l.values[idx];
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    fail(l.number, l.key + ": not a non-negative integer: '" + s + "'");
  }
  return std::strtoull(s.c_str(), nullptr, 10);
}

bool parse_bool(const Line& l) {
  if (l.values.size() != 1) fail(l.number, l.key + ": expected true|false");
  if (l.values[0] == "true") return true;
  if (l.values[0] == "false") return false;
  fail(l.number, l.key + ": expected true|false, got '" + l.values[0] + "'");
}

service::TrafficWindow parse_window(const Line& l) {
  if (l.values.size() != 3) {
    fail(l.number, l.key + ": expected <start_hour> <span_hours> <intensity>");
  }
  service::TrafficWindow w;
  w.start_hour = parse_double(l, 0);
  w.span_hours = parse_double(l, 1);
  w.intensity = parse_double(l, 2);
  return w;
}

}  // namespace

core::DetectorOptions ScenarioManifest::detector_options() const {
  core::DetectorOptions d;
  d.rule.invite_rate_min = invite_rate_min;
  d.rule.outgoing_accept_max = outgoing_accept_max;
  d.rule.min_requests = min_requests;
  d.overload = overload;
  return d;
}

void ScenarioManifest::validate() const {
  if (name.empty() || name.find_first_of("\n\r") != std::string::npos) {
    throw std::invalid_argument(
        "ScenarioManifest::name must be non-empty and single-line");
  }
  workload.validate();
  if (shards == 0 || shards > 4096) {
    throw std::invalid_argument(
        "ScenarioManifest::shards must be in [1, 4096]");
  }
  if (wal_segment_records == 0) {
    throw std::invalid_argument(
        "ScenarioManifest::wal_segment_records must be >= 1");
  }
  if (checkpoint_retain == 0) {
    throw std::invalid_argument(
        "ScenarioManifest::checkpoint_retain must be >= 1");
  }
  detector_options().validate();
  if (phases.empty()) {
    throw std::invalid_argument(
        "ScenarioManifest: at least one [phase] is required");
  }
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseSpec& p = phases[i];
    if (p.until_event <= prev) {
      throw std::invalid_argument(
          "ScenarioManifest: phase until_event values must be strictly "
          "increasing (phase '" + p.name + "')");
    }
    if (p.pump_interval == 0) {
      throw std::invalid_argument(
          "ScenarioManifest: phase pump_interval must be >= 1 (phase '" +
          p.name + "')");
    }
    prev = p.until_event;
  }
  if (prev != workload.events) {
    throw std::invalid_argument(
        "ScenarioManifest: the last phase must end exactly at "
        "workload.events (" + std::to_string(workload.events) + "), got " +
        std::to_string(prev));
  }
  faults::validate_fault_windows(fault_windows, workload.events);
  for (const faults::FaultWindow& w : fault_windows) {
    if (w.rates.reorder > 0.0) {
      throw std::invalid_argument(
          "ScenarioManifest: fault windows cannot reorder — an "
          "out-of-order offer below an advanced redelivery frontier "
          "would be suppressed as a duplicate (silent loss); reorder "
          "chaos lives at the detector layer (tests/faults)");
    }
    if (w.rates.banned_party > 0.0) {
      throw std::invalid_argument(
          "ScenarioManifest: fault windows cannot inject banned-party "
          "events — their synthesized seqs (FaultInjector::kSynthSeqBase)"
          " are explicit to a ShardRouter and would poison the frontier "
          "math");
    }
  }
  std::uint64_t prev_free = 0;  // first event where no event-kill is live
  for (std::size_t i = 0; i < kills.size(); ++i) {
    const KillSpec& k = kills[i];
    if (k.shard >= shards) {
      throw std::invalid_argument(
          "ScenarioManifest: kill[" + std::to_string(i) +
          "].shard out of range");
    }
    if (k.down_for == 0) {
      throw std::invalid_argument(
          "ScenarioManifest: kill[" + std::to_string(i) +
          "].down_for must be >= 1");
    }
    if (!k.use_boundary) {
      if (k.at_event < prev_free) {
        throw std::invalid_argument(
            "ScenarioManifest: kills must be sorted and non-overlapping "
            "(kill[" + std::to_string(i) + "] arms while the previous "
            "victim is still down)");
      }
      if (k.at_event + k.down_for > workload.events) {
        throw std::invalid_argument(
            "ScenarioManifest: kill[" + std::to_string(i) +
            "] must recover within the stream (at_event + down_for <= "
            "events)");
      }
      prev_free = k.at_event + k.down_for;
    }
    // at_boundary kills cannot be range-checked statically (the
    // crossing count is a property of the run); the orchestrator
    // defers an arm while any shard is down or catching up, and
    // reports kills whose boundary never arrives as missed.
  }
  for (std::size_t i = 0; i < disk_faults.size(); ++i) {
    const DiskFaultSpec& d = disk_faults[i];
    if (d.shard >= shards) {
      throw std::invalid_argument(
          "ScenarioManifest: disk[" + std::to_string(i) +
          "].shard out of range");
    }
    if (d.from_event >= d.to_event || d.to_event > workload.events) {
      throw std::invalid_argument(
          "ScenarioManifest: disk[" + std::to_string(i) +
          "] window must satisfy from_event < to_event <= events");
    }
  }
  // One disturbance at a time: every event-triggered kill downtime and
  // every disk-fault window must form a single non-overlapping chain —
  // the orchestrator's recovery state machine handles one victim, and
  // overlapping disturbances would make the re-drive schedule ambiguous.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (const KillSpec& k : kills) {
    if (!k.use_boundary) {
      spans.emplace_back(k.at_event, k.at_event + k.down_for);
    }
  }
  for (const DiskFaultSpec& d : disk_faults) {
    spans.emplace_back(d.from_event, d.to_event);
  }
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first < spans[i - 1].second) {
      throw std::invalid_argument(
          "ScenarioManifest: kill downtimes and disk-fault windows must "
          "not overlap (one disturbance at a time)");
    }
  }
}

bool ScenarioManifest::identity_expected() const {
  for (const faults::FaultWindow& w : fault_windows) {
    if (w.rates.drop > 0.0 || w.rates.regress > 0.0 ||
        w.rates.malform > 0.0 || w.rates.reorder > 0.0 ||
        w.rates.banned_party > 0.0) {
      return false;
    }
  }
  return true;
}

ScenarioManifest ScenarioManifest::undisturbed() const {
  ScenarioManifest m = *this;
  m.fault_windows.clear();
  m.kills.clear();
  m.disk_faults.clear();
  return m;
}

std::string ScenarioManifest::serialize() const {
  std::string out;
  out += kMagic;
  out += "\nname = " + name + "\n";
  out += "\n[workload]\n";
  const service::WorkloadOptions& w = workload;
  out += "accounts = " + std::to_string(w.accounts) + "\n";
  out += "events = " + std::to_string(w.events) + "\n";
  out += "hours = " + fmt_double(w.hours) + "\n";
  out += "seed = " + std::to_string(w.seed) + "\n";
  out += "burst_senders = " + std::to_string(w.burst_senders) + "\n";
  out += "burst_fraction = " + fmt_double(w.burst_fraction) + "\n";
  out += "accept_fraction = " + fmt_double(w.accept_fraction) + "\n";
  out += "reject_fraction = " + fmt_double(w.reject_fraction) + "\n";
  out += "seed_friend_fraction = " + fmt_double(w.seed_friend_fraction) + "\n";
  out += "created_fraction = " + fmt_double(w.created_fraction) + "\n";
  out += "ban_fraction = " + fmt_double(w.ban_fraction) + "\n";
  out += "malformed_fraction = " + fmt_double(w.malformed_fraction) + "\n";
  out += "diurnal_amplitude = " + fmt_double(w.diurnal_amplitude) + "\n";
  out += "diurnal_period_hours = " + fmt_double(w.diurnal_period_hours) + "\n";
  for (const service::TrafficWindow& fc : w.flash_crowds) {
    out += "flash_crowd = " + fmt_double(fc.start_hour) + " " +
           fmt_double(fc.span_hours) + " " + fmt_double(fc.intensity) + "\n";
  }
  for (const service::TrafficWindow& rs : w.registration_storms) {
    out += "registration_storm = " + fmt_double(rs.start_hour) + " " +
           fmt_double(rs.span_hours) + " " + fmt_double(rs.intensity) + "\n";
  }
  out += "\n[service]\n";
  out += "shards = " + std::to_string(shards) + "\n";
  out += std::string("fsync = ") + fsync_name(fsync) + "\n";
  out += "wal_segment_records = " + std::to_string(wal_segment_records) + "\n";
  out += "checkpoint_retain = " + std::to_string(checkpoint_retain) + "\n";
  out += "queue_capacity = " + std::to_string(overload.queue_capacity) + "\n";
  out += "shed_watermark = " + std::to_string(overload.shed_watermark) + "\n";
  out += "sweep_only_watermark = " +
         std::to_string(overload.sweep_only_watermark) + "\n";
  out += "resume_watermark = " + std::to_string(overload.resume_watermark) +
         "\n";
  out += "invite_rate_min = " + fmt_double(invite_rate_min) + "\n";
  out += "outgoing_accept_max = " + fmt_double(outgoing_accept_max) + "\n";
  out += "min_requests = " + std::to_string(min_requests) + "\n";
  for (const PhaseSpec& p : phases) {
    out += "\n[phase]\n";
    out += "name = " + p.name + "\n";
    out += "until_event = " + std::to_string(p.until_event) + "\n";
    out += "pump_interval = " + std::to_string(p.pump_interval) + "\n";
    out += std::string("sweep = ") + (p.sweep ? "true" : "false") + "\n";
  }
  for (const faults::FaultWindow& fw : fault_windows) {
    out += "\n[faults]\n";
    out += "from_event = " + std::to_string(fw.from_event) + "\n";
    out += "to_event = " + std::to_string(fw.to_event) + "\n";
    out += "seed = " + std::to_string(fw.rates.seed) + "\n";
    out += "drop = " + fmt_double(fw.rates.drop) + "\n";
    out += "duplicate = " + fmt_double(fw.rates.duplicate) + "\n";
    out += "max_skew_hours = " + fmt_double(fw.rates.max_skew_hours) + "\n";
    out += "regress = " + fmt_double(fw.rates.regress) + "\n";
    out += "regress_hours = " + fmt_double(fw.rates.regress_hours) + "\n";
    out += "malform = " + fmt_double(fw.rates.malform) + "\n";
  }
  for (const KillSpec& k : kills) {
    out += "\n[kill]\n";
    out += "shard = " + std::to_string(k.shard) + "\n";
    if (k.use_boundary) {
      out += "at_boundary = " + std::to_string(k.at_boundary) + "\n";
    } else {
      out += "at_event = " + std::to_string(k.at_event) + "\n";
    }
    out += "down_for = " + std::to_string(k.down_for) + "\n";
  }
  for (const DiskFaultSpec& d : disk_faults) {
    out += "\n[disk]\n";
    out += "shard = " + std::to_string(d.shard) + "\n";
    out += std::string("kind = ") + disk_kind_name(d.kind) + "\n";
    out += "from_event = " + std::to_string(d.from_event) + "\n";
    out += "to_event = " + std::to_string(d.to_event) + "\n";
    out += "seed = " + std::to_string(d.seed) + "\n";
  }
  return out;
}

ScenarioManifest parse_manifest(const std::string& text) {
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  bool magic_seen = false;
  enum class Section {
    kNone, kWorkload, kService, kPhase, kFaults, kKill, kDisk
  };
  Section section = Section::kNone;
  ScenarioManifest m;
  m.phases.clear();

  const auto trim = [](std::string s) {
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) return std::string();
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
  };

  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (!magic_seen) {
      if (line != kMagic) {
        fail(lineno, std::string("expected header '") + kMagic + "'");
      }
      magic_seen = true;
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') fail(lineno, "unterminated section header");
      const std::string s = line.substr(1, line.size() - 2);
      if (s == "workload") {
        section = Section::kWorkload;
      } else if (s == "service") {
        section = Section::kService;
      } else if (s == "phase") {
        section = Section::kPhase;
        m.phases.emplace_back();
      } else if (s == "faults") {
        section = Section::kFaults;
        m.fault_windows.emplace_back();
      } else if (s == "kill") {
        section = Section::kKill;
        m.kills.emplace_back();
      } else if (s == "disk") {
        section = Section::kDisk;
        m.disk_faults.emplace_back();
      } else {
        fail(lineno, "unknown section [" + s + "]");
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(lineno, "expected 'key = value'");
    Line l;
    l.number = lineno;
    l.key = trim(line.substr(0, eq));
    std::istringstream vs(line.substr(eq + 1));
    std::string tok;
    while (vs >> tok) l.values.push_back(tok);
    if (l.key.empty()) fail(lineno, "empty key");
    if (l.values.empty()) fail(lineno, l.key + ": missing value");

    switch (section) {
      case Section::kNone:
        if (l.key == "name") {
          m.name = l.values[0];
          for (std::size_t i = 1; i < l.values.size(); ++i) {
            m.name += " " + l.values[i];
          }
        } else {
          fail(lineno, "key '" + l.key + "' outside any section");
        }
        break;
      case Section::kWorkload: {
        service::WorkloadOptions& w = m.workload;
        if (l.key == "accounts") {
          w.accounts = static_cast<std::uint32_t>(parse_u64(l));
        } else if (l.key == "events") {
          w.events = parse_u64(l);
        } else if (l.key == "hours") {
          w.hours = parse_double(l);
        } else if (l.key == "seed") {
          w.seed = parse_u64(l);
        } else if (l.key == "burst_senders") {
          w.burst_senders = static_cast<std::uint32_t>(parse_u64(l));
        } else if (l.key == "burst_fraction") {
          w.burst_fraction = parse_double(l);
        } else if (l.key == "accept_fraction") {
          w.accept_fraction = parse_double(l);
        } else if (l.key == "reject_fraction") {
          w.reject_fraction = parse_double(l);
        } else if (l.key == "seed_friend_fraction") {
          w.seed_friend_fraction = parse_double(l);
        } else if (l.key == "created_fraction") {
          w.created_fraction = parse_double(l);
        } else if (l.key == "ban_fraction") {
          w.ban_fraction = parse_double(l);
        } else if (l.key == "malformed_fraction") {
          w.malformed_fraction = parse_double(l);
        } else if (l.key == "diurnal_amplitude") {
          w.diurnal_amplitude = parse_double(l);
        } else if (l.key == "diurnal_period_hours") {
          w.diurnal_period_hours = parse_double(l);
        } else if (l.key == "flash_crowd") {
          w.flash_crowds.push_back(parse_window(l));
        } else if (l.key == "registration_storm") {
          w.registration_storms.push_back(parse_window(l));
        } else {
          fail(lineno, "unknown [workload] key '" + l.key + "'");
        }
        break;
      }
      case Section::kService:
        if (l.key == "shards") {
          m.shards = static_cast<std::uint32_t>(parse_u64(l));
        } else if (l.key == "fsync") {
          const std::string& v = l.values[0];
          if (v == "always") {
            m.fsync = service::WalFsync::kEveryAppend;
          } else if (v == "rotate") {
            m.fsync = service::WalFsync::kOnRotate;
          } else if (v == "never") {
            m.fsync = service::WalFsync::kNever;
          } else {
            fail(lineno, "fsync: expected always|rotate|never");
          }
        } else if (l.key == "wal_segment_records") {
          m.wal_segment_records = parse_u64(l);
        } else if (l.key == "checkpoint_retain") {
          m.checkpoint_retain = static_cast<std::size_t>(parse_u64(l));
        } else if (l.key == "queue_capacity") {
          m.overload.queue_capacity = static_cast<std::size_t>(parse_u64(l));
        } else if (l.key == "shed_watermark") {
          m.overload.shed_watermark = static_cast<std::size_t>(parse_u64(l));
        } else if (l.key == "sweep_only_watermark") {
          m.overload.sweep_only_watermark =
              static_cast<std::size_t>(parse_u64(l));
        } else if (l.key == "resume_watermark") {
          m.overload.resume_watermark = static_cast<std::size_t>(parse_u64(l));
        } else if (l.key == "invite_rate_min") {
          m.invite_rate_min = parse_double(l);
        } else if (l.key == "outgoing_accept_max") {
          m.outgoing_accept_max = parse_double(l);
        } else if (l.key == "min_requests") {
          m.min_requests = static_cast<std::uint32_t>(parse_u64(l));
        } else {
          fail(lineno, "unknown [service] key '" + l.key + "'");
        }
        break;
      case Section::kPhase: {
        PhaseSpec& p = m.phases.back();
        if (l.key == "name") {
          p.name = l.values[0];
        } else if (l.key == "until_event") {
          p.until_event = parse_u64(l);
        } else if (l.key == "pump_interval") {
          p.pump_interval = parse_u64(l);
        } else if (l.key == "sweep") {
          p.sweep = parse_bool(l);
        } else {
          fail(lineno, "unknown [phase] key '" + l.key + "'");
        }
        break;
      }
      case Section::kFaults: {
        faults::FaultWindow& fw = m.fault_windows.back();
        if (l.key == "from_event") {
          fw.from_event = parse_u64(l);
        } else if (l.key == "to_event") {
          fw.to_event = parse_u64(l);
        } else if (l.key == "seed") {
          fw.rates.seed = parse_u64(l);
        } else if (l.key == "drop") {
          fw.rates.drop = parse_double(l);
        } else if (l.key == "duplicate") {
          fw.rates.duplicate = parse_double(l);
        } else if (l.key == "max_skew_hours") {
          fw.rates.max_skew_hours = parse_double(l);
        } else if (l.key == "regress") {
          fw.rates.regress = parse_double(l);
        } else if (l.key == "regress_hours") {
          fw.rates.regress_hours = parse_double(l);
        } else if (l.key == "malform") {
          fw.rates.malform = parse_double(l);
        } else if (l.key == "reorder") {
          fw.rates.reorder = parse_double(l);  // validate() rejects > 0
        } else if (l.key == "banned_party") {
          fw.rates.banned_party = parse_double(l);  // validate() rejects
        } else {
          fail(lineno, "unknown [faults] key '" + l.key + "'");
        }
        break;
      }
      case Section::kKill: {
        KillSpec& k = m.kills.back();
        if (l.key == "shard") {
          k.shard = static_cast<std::uint32_t>(parse_u64(l));
        } else if (l.key == "at_event") {
          k.at_event = parse_u64(l);
          k.use_boundary = false;
        } else if (l.key == "at_boundary") {
          k.at_boundary = parse_u64(l);
          k.use_boundary = true;
        } else if (l.key == "down_for") {
          k.down_for = parse_u64(l);
        } else {
          fail(lineno, "unknown [kill] key '" + l.key + "'");
        }
        break;
      }
      case Section::kDisk: {
        DiskFaultSpec& d = m.disk_faults.back();
        if (l.key == "shard") {
          d.shard = static_cast<std::uint32_t>(parse_u64(l));
        } else if (l.key == "kind") {
          const std::string& v = l.values[0];
          if (v == "enospc") {
            d.kind = DiskFaultSpec::Kind::kNoSpace;
          } else if (v == "eio") {
            d.kind = DiskFaultSpec::Kind::kIoError;
          } else if (v == "powerloss") {
            d.kind = DiskFaultSpec::Kind::kPowerLoss;
          } else {
            fail(lineno, "kind: expected enospc|eio|powerloss");
          }
        } else if (l.key == "from_event") {
          d.from_event = parse_u64(l);
        } else if (l.key == "to_event") {
          d.to_event = parse_u64(l);
        } else if (l.key == "seed") {
          d.seed = parse_u64(l);
        } else {
          fail(lineno, "unknown [disk] key '" + l.key + "'");
        }
        break;
      }
    }
  }
  if (!magic_seen) {
    throw std::invalid_argument(
        std::string("scenario manifest: missing header '") + kMagic + "'");
  }
  m.validate();
  return m;
}

ScenarioManifest load_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read scenario manifest: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_manifest(buf.str());
}

}  // namespace sybil::chaos
