// Scenario manifests: declarative, serializable chaos schedules for
// the sharded detection service (docs/ROBUSTNESS.md §Scenario harness,
// docs/FORMATS.md §9 for the text format).
//
// A ScenarioManifest composes, over one synthetic workload:
//
//   - a traffic shape (service::WorkloadOptions — diurnal curve, flash
//     crowds, registration storms);
//   - service geometry (shard count, WAL/checkpoint knobs, the
//     overload watermarks that define the shed tiers);
//   - phases: a partition of the stream into [prev_until, until_event)
//     ranges, each fixing the pump cadence and whether a flag sweep
//     runs at the phase end — together these define the deterministic
//     *boundary schedule* the orchestrator replays identically in
//     disturbed and undisturbed runs;
//   - fault windows: faults::FaultWindow rate ramps over event ranges
//     (transport-level chaos);
//   - kills: timed shard deaths (ShardCrashInjector at a durability
//     boundary) with a downtime budget, after which the orchestrator
//     restarts the shard and re-drives it — recovery under fire.
//
// The identity contract: a manifest whose fault windows are duplicate-
// only (identity_expected()) must produce a final owner-merged
// FlagBatch and per-shard stats byte-identical to undisturbed() — the
// same manifest with windows and kills stripped. Two rate knobs are
// rejected outright at this layer because they break seq-addressed
// routing, not just identity: `reorder` (an out-of-order offer below an
// already-advanced frontier would be wrongly suppressed — silent loss)
// and `banned_party` (synthesized seqs at FaultInjector::kSynthSeqBase
// are *explicit* to a router and would poison the frontier math).
// Reorder/late-ban chaos stays covered at the detector layer
// (tests/faults); drop/regress/malform are accepted here but clear
// identity_expected().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector_options.h"
#include "faults/fault_schedule.h"
#include "service/wal.h"
#include "service/workload.h"

namespace sybil::chaos {

/// One stream range with a fixed operational cadence. The orchestrator
/// pumps (and checkpoints) at every multiple of `pump_interval` from
/// the phase start, and always at `until_event`; `sweep` adds a flag
/// sweep at the phase-end boundary, stamped with the last clean event
/// time before it.
struct PhaseSpec {
  std::string name = "phase";
  std::uint64_t until_event = 0;  // exclusive end; strictly increasing
  std::uint64_t pump_interval = 64;
  bool sweep = false;
};

/// One timed shard death. Exactly one trigger:
///   at_event     — arm when the head of the stream reaches this seq;
///                  the shard dies at its next durability boundary.
///   at_boundary  — arm immediately; the shard dies at this 0-based
///                  durability-boundary crossing (absolute, counted
///                  from the run's start — the kill-at-every-boundary
///                  sweeps iterate this number).
/// After `down_for` further fresh events the orchestrator restarts the
/// shard (or at end of stream, whichever comes first).
struct KillSpec {
  std::uint32_t shard = 0;
  std::uint64_t at_event = 0;
  std::uint64_t at_boundary = 0;
  bool use_boundary = false;
  std::uint64_t down_for = 1;
};

/// One shard-addressed disk-fault window ([disk] section): while the
/// head of the stream is in [from_event, to_event), the named shard's
/// storage (its io::FaultyVfs) rejects writes with the given kind. The
/// shard rides the window in storage-degraded mode — verdicts from
/// memory, WAL appends buffered, checkpoints suspended — and the
/// orchestrator closes the window by clearing the fault and forcing a
/// retry, which flushes the backlog. kPowerLoss instead cuts the
/// shard's "disk" at its next write/fsync (unsynced bytes lost or torn
/// per `seed`), and the orchestrator treats it like a kill: restart,
/// recover, re-drive. Windows never break the identity contract.
struct DiskFaultSpec {
  enum class Kind : std::uint32_t {
    kNoSpace = 0,   // ENOSPC on every write
    kIoError = 1,   // EIO on every write
    kPowerLoss = 2  // power cut at the next write/fsync in the window
  };
  std::uint32_t shard = 0;
  Kind kind = Kind::kNoSpace;
  std::uint64_t from_event = 0;  // arm when the head reaches this seq
  std::uint64_t to_event = 0;    // exclusive; fault cleared here
  std::uint64_t seed = 0;        // power-loss tear determinism
};

struct ScenarioManifest {
  std::string name = "scenario";

  // [workload]
  service::WorkloadOptions workload{};

  // [service]
  std::uint32_t shards = 1;
  service::WalFsync fsync = service::WalFsync::kNever;
  std::uint64_t wal_segment_records = 4096;
  std::size_t checkpoint_retain = 2;
  core::OverloadOptions overload{};
  /// Threshold-rule relaxation so the synthetic burst senders cross it
  /// (same defaults as the sybil_service CLI driver).
  double invite_rate_min = 4.0;
  double outgoing_accept_max = 0.5;
  std::uint32_t min_requests = 5;

  std::vector<PhaseSpec> phases;
  std::vector<faults::FaultWindow> fault_windows;
  std::vector<KillSpec> kills;
  std::vector<DiskFaultSpec> disk_faults;

  /// Throws std::invalid_argument naming the offending field. Requires
  /// at least one phase, phases ending exactly at workload.events, and
  /// rejects reorder/banned_party fault rates (header comment).
  void validate() const;

  /// True when every fault window is duplicate-only, i.e. the final
  /// FlagBatch and per-shard stats are contractually byte-identical to
  /// the undisturbed run. Kills never break identity — that is the
  /// point of the harness.
  bool identity_expected() const;

  /// The control run: same traffic shape, geometry and phases, no
  /// fault windows, no kills, no disk faults.
  ScenarioManifest undisturbed() const;

  /// The DetectorOptions every shard runs with (rule relaxation +
  /// overload watermarks applied over defaults).
  core::DetectorOptions detector_options() const;

  /// Canonical text form (docs/FORMATS.md §9). parse_manifest() of the
  /// result reproduces this manifest exactly.
  std::string serialize() const;
};

/// Parses the text format. Throws std::invalid_argument with a line
/// number on malformed input; the result has been validate()d.
ScenarioManifest parse_manifest(const std::string& text);

/// Reads and parses a manifest file. Throws std::runtime_error if the
/// file cannot be read.
ScenarioManifest load_manifest(const std::string& path);

}  // namespace sybil::chaos
