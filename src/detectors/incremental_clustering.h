// Incremental local-clustering-coefficient maintenance.
//
// graph::local_clustering_all() rescans every node's full neighborhood:
// O(sum deg^2) per call. The live service needs the paper's cc signal
// after every accepted friend request, and a new edge {u, v} can only
// change the coefficient of u, v, and their *common* neighbors (each
// common neighbor w gains exactly one edge — {u, v} — inside N(w), and
// u and v each gain |common| edges inside their own neighborhoods).
// This class keeps a per-node count of links-among-neighbors and folds
// each edge in as O(deg(u) + deg(v) + |common|):
//
//   on_edge_added(g, u, v)   after g.add_edge succeeded
//
// Coefficients are recomputed from the exact integer link counts with
// the same 2·links / (d·(d−1)) expression as the batch kernel, so they
// are bit-identical to local_clustering_all() on the same graph — the
// invariant the property suite pins after every arrival order.
//
// Single-threaded by design, for the same reason as
// IncrementalSybilRank (one scorer per already-parallel shard lane).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.h"
#include "io/container.h"

namespace sybil::detect {

class IncrementalClustering {
 public:
  IncrementalClustering() = default;

  /// Full rebuild of link counts + coefficients from the graph.
  void recompute(const graph::DynamicGraph& g);

  /// Folds edge {u, v} in. Call once per *successful* add_edge, after
  /// the insertion. Lazily initializes on first use.
  void on_edge_added(const graph::DynamicGraph& g, graph::NodeId u,
                     graph::NodeId v);

  bool initialized() const noexcept { return initialized_; }

  double coefficient(graph::NodeId u) const {
    return u < cc_.size() ? cc_[u] : 0.0;
  }
  const std::vector<double>& coefficients() const noexcept { return cc_; }

  /// Edges among N(u) (the exact integer the coefficient derives from).
  std::uint64_t links(graph::NodeId u) const {
    return u < links_.size() ? links_[u] : 0;
  }

  std::uint64_t edges_applied() const noexcept { return edges_applied_; }
  std::uint64_t triangles_closed() const noexcept { return triangles_closed_; }

  void serialize(io::ByteWriter& w) const;
  void restore(io::ByteReader& r);

 private:
  void refresh_coefficient(const graph::DynamicGraph& g, graph::NodeId u);

  bool initialized_ = false;
  std::vector<std::uint64_t> links_;  // edges among N(u), per node
  std::vector<double> cc_;
  std::uint64_t edges_applied_ = 0;
  std::uint64_t triangles_closed_ = 0;
};

}  // namespace sybil::detect
