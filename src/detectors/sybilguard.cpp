#include "detectors/sybilguard.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"

namespace sybil::detect {

namespace {
stats::Rng make_table_rng(std::uint64_t seed) { return stats::Rng(seed); }
}  // namespace

SybilGuard::SybilGuard(const graph::CsrGraph& g, SybilGuardParams params)
    : g_(g), params_(params), length_(params.route_length), table_([&] {
        stats::Rng rng = make_table_rng(params.seed);
        return graph::RouteTable(g, rng);
      }()) {
  if (length_ == 0) {
    const double n = std::max<double>(2.0, g.node_count());
    length_ = static_cast<std::size_t>(std::ceil(std::sqrt(n * std::log(n))));
  }
}

std::vector<graph::NodeId> SybilGuard::routes_from(graph::NodeId node) const {
  std::vector<graph::NodeId> visited;
  const std::size_t routes =
      std::min<std::size_t>(g_.degree(node), params_.max_routes_per_node);
  visited.reserve(routes * (length_ + 1));
  for (std::size_t e = 0; e < routes; ++e) {
    const auto route = table_.route(g_, node, e, length_);
    visited.insert(visited.end(), route.begin(), route.end());
  }
  return visited;
}

double SybilGuard::intersection_score(graph::NodeId verifier,
                                      graph::NodeId suspect) const {
  if (g_.degree(verifier) == 0 || g_.degree(suspect) == 0) return 0.0;
  const auto suspect_nodes = routes_from(suspect);
  const std::unordered_set<graph::NodeId> suspect_set(suspect_nodes.begin(),
                                                      suspect_nodes.end());
  const std::size_t routes =
      std::min<std::size_t>(g_.degree(verifier), params_.max_routes_per_node);
  std::size_t intersecting = 0;
  for (std::size_t e = 0; e < routes; ++e) {
    for (graph::NodeId u : table_.route(g_, verifier, e, length_)) {
      if (suspect_set.contains(u)) {
        ++intersecting;
        break;
      }
    }
  }
  return static_cast<double>(intersecting) / static_cast<double>(routes);
}

std::vector<double> SybilGuardDefense::score(const graph::CsrGraph& g,
                                             const DefenseContext& ctx) const {
  if (ctx.honest_seeds.empty()) {
    throw std::invalid_argument("sybilguard: no seeds");
  }
  const SybilGuard guard(g, params_);
  const graph::NodeId verifier = ctx.honest_seeds.front();
  std::vector<double> scores(g.node_count(), 0.0);
  const auto score_one = [&](graph::NodeId v) {
    scores[v] = guard.intersection_score(verifier, v);
  };
  if (ctx.eval_nodes.empty()) {
    core::parallel_for(g.node_count(), [&](const core::ChunkRange& c) {
      for (std::size_t v = c.begin; v < c.end; ++v) {
        score_one(static_cast<graph::NodeId>(v));
      }
    });
  } else {
    core::parallel_for(ctx.eval_nodes.size(), [&](const core::ChunkRange& c) {
      for (std::size_t i = c.begin; i < c.end; ++i) {
        score_one(ctx.eval_nodes[i]);
      }
    });
  }
  return scores;
}

}  // namespace sybil::detect
