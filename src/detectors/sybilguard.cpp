#include "detectors/sybilguard.h"

#include <algorithm>
#include <cmath>

namespace sybil::detect {

namespace {
stats::Rng make_table_rng(std::uint64_t seed) { return stats::Rng(seed); }
}  // namespace

SybilGuard::SybilGuard(const graph::CsrGraph& g, SybilGuardParams params)
    : g_(g), params_(params), length_(params.route_length), table_([&] {
        stats::Rng rng = make_table_rng(params.seed);
        return graph::RouteTable(g, rng);
      }()) {
  if (length_ == 0) {
    const double n = std::max<double>(2.0, g.node_count());
    length_ = static_cast<std::size_t>(std::ceil(std::sqrt(n * std::log(n))));
  }
}

std::vector<graph::NodeId> SybilGuard::routes_from(graph::NodeId node) const {
  std::vector<graph::NodeId> visited;
  const std::size_t routes =
      std::min<std::size_t>(g_.degree(node), params_.max_routes_per_node);
  visited.reserve(routes * (length_ + 1));
  for (std::size_t e = 0; e < routes; ++e) {
    const auto route = table_.route(g_, node, e, length_);
    visited.insert(visited.end(), route.begin(), route.end());
  }
  return visited;
}

double SybilGuard::intersection_score(graph::NodeId verifier,
                                      graph::NodeId suspect) const {
  if (g_.degree(verifier) == 0 || g_.degree(suspect) == 0) return 0.0;
  const auto suspect_nodes = routes_from(suspect);
  const std::unordered_set<graph::NodeId> suspect_set(suspect_nodes.begin(),
                                                      suspect_nodes.end());
  const std::size_t routes =
      std::min<std::size_t>(g_.degree(verifier), params_.max_routes_per_node);
  std::size_t intersecting = 0;
  for (std::size_t e = 0; e < routes; ++e) {
    for (graph::NodeId u : table_.route(g_, verifier, e, length_)) {
      if (suspect_set.contains(u)) {
        ++intersecting;
        break;
      }
    }
  }
  return static_cast<double>(intersecting) / static_cast<double>(routes);
}

}  // namespace sybil::detect
