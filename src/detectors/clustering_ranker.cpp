#include "detectors/clustering_ranker.h"

#include "graph/clustering.h"

namespace sybil::detect {

std::vector<double> clustering_ranker_scores(const graph::CsrGraph& g) {
  return graph::local_clustering_all(g);
}

std::vector<double> ClusteringRankerDefense::score(
    const graph::CsrGraph& g, const DefenseContext& /*ctx*/) const {
  return clustering_ranker_scores(g);
}

}  // namespace sybil::detect
