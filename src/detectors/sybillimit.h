// SybilLimit (Yu et al., S&P 2008) — tail intersection with balance.
//
// Each node runs r independent random routes of length w = O(log n) and
// registers only the route *tails* (the final edge). A verifier accepts
// a suspect when one of the suspect's tails lands on a verifier tail
// edge, subject to the balance condition that caps how many suspects a
// single tail may admit. Honest pairs share tails w.h.p. when
// r = Θ(√m) (birthday bound on edges); Sybils are limited to O(log n)
// accepted suspects per attack edge.
//
// Simplification (documented in DESIGN.md): the r protocol instances
// use independent random walks rather than r per-instance routing
// permutations. The tail distribution — and therefore the birthday-
// intersection and escape-probability arguments — is unchanged; walks
// are deterministic per (seed, node) so tails are stable registrations.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "detectors/defense.h"
#include "graph/csr.h"
#include "stats/rng.h"

namespace sybil::detect {

struct SybilLimitParams {
  /// Number of routes per node; 0 → ceil(r_factor * sqrt(m)).
  std::size_t routes = 0;
  double r_factor = 1.0;
  /// Route length; 0 → ceil(w_factor * log2(n)).
  std::size_t route_length = 0;
  double w_factor = 2.0;
  /// Balance: a tail admits at most
  /// max(balance_floor, balance_alpha * accepted_total / tail_count).
  double balance_alpha = 4.0;
  std::size_t balance_floor = 4;
  std::uint64_t seed = 13;
};

class SybilLimit {
 public:
  SybilLimit(const graph::CsrGraph& g, SybilLimitParams params = {});

  /// Per-verifier acceptance state (the balance condition is stateful).
  class Verifier {
   public:
    /// Tail intersection + balance; accepting mutates balance counters.
    bool accepts(graph::NodeId suspect);
    /// Intersection-only score: fraction of suspect tails hitting the
    /// verifier's tail set.
    double tail_score(graph::NodeId suspect) const;

   private:
    friend class SybilLimit;
    const SybilLimit* owner_ = nullptr;
    std::unordered_map<std::uint64_t, std::uint32_t> tail_load_;
    std::size_t accepted_total_ = 0;
  };

  Verifier make_verifier(graph::NodeId verifier) const;

  std::size_t routes() const noexcept { return routes_; }
  std::size_t route_length() const noexcept { return length_; }

  /// Tail edges (canonical undirected keys) of a node's routes;
  /// deterministic in (params.seed, node).
  std::vector<std::uint64_t> tails_of(graph::NodeId node) const;

 private:
  static std::uint64_t edge_key(graph::NodeId a, graph::NodeId b) noexcept;

  const graph::CsrGraph& g_;
  SybilLimitParams params_;
  std::size_t routes_;
  std::size_t length_;
};

/// SybilLimit behind the unified interface: the first honest seed is
/// the verifier and each eval node's score is the fraction of its tails
/// intersecting the verifier's tail set (the score-based variant;
/// tail_score is const so suspects are scored in parallel).
class SybilLimitDefense final : public SybilDefense {
 public:
  explicit SybilLimitDefense(SybilLimitParams params = {})
      : params_(params) {}

  std::string_view name() const noexcept override { return "sybillimit"; }
  Determinism determinism() const noexcept override {
    return Determinism::kSeeded;
  }
  std::vector<double> score(const graph::CsrGraph& g,
                            const DefenseContext& ctx) const override;

 private:
  SybilLimitParams params_;
};

}  // namespace sybil::detect
