#include "detectors/sybillimit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"

namespace sybil::detect {

SybilLimit::SybilLimit(const graph::CsrGraph& g, SybilLimitParams params)
    : g_(g), params_(params), routes_(params.routes),
      length_(params.route_length) {
  const double n = std::max<double>(2.0, g.node_count());
  const double m = std::max<double>(1.0, static_cast<double>(g.edge_count()));
  if (routes_ == 0) {
    routes_ = static_cast<std::size_t>(
        std::ceil(params_.r_factor * std::sqrt(m)));
  }
  if (length_ == 0) {
    length_ = static_cast<std::size_t>(
        std::ceil(params_.w_factor * std::log2(n)));
  }
}

std::uint64_t SybilLimit::edge_key(graph::NodeId a, graph::NodeId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

std::vector<std::uint64_t> SybilLimit::tails_of(graph::NodeId node) const {
  std::vector<std::uint64_t> tails;
  if (g_.degree(node) == 0) return tails;
  tails.reserve(routes_);
  std::uint64_t mix = params_.seed ^ (0x9e3779b97f4a7c15ULL * (node + 1));
  stats::Rng rng(stats::splitmix64_next(mix));
  for (std::size_t r = 0; r < routes_; ++r) {
    graph::NodeId prev = node, cur = node;
    for (std::size_t step = 0; step < length_; ++step) {
      const auto nbrs = g_.neighbors(cur);
      prev = cur;
      cur = nbrs[rng.uniform_index(nbrs.size())];
    }
    if (prev != cur) tails.push_back(edge_key(prev, cur));
  }
  return tails;
}

SybilLimit::Verifier SybilLimit::make_verifier(graph::NodeId verifier) const {
  Verifier v;
  v.owner_ = this;
  for (std::uint64_t tail : tails_of(verifier)) v.tail_load_.emplace(tail, 0);
  return v;
}

double SybilLimit::Verifier::tail_score(graph::NodeId suspect) const {
  const auto tails = owner_->tails_of(suspect);
  if (tails.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::uint64_t t : tails) hits += tail_load_.contains(t) ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(tails.size());
}

bool SybilLimit::Verifier::accepts(graph::NodeId suspect) {
  const auto tails = owner_->tails_of(suspect);
  if (tail_load_.empty() || tails.empty()) return false;
  const double per_tail_budget = std::max<double>(
      static_cast<double>(owner_->params_.balance_floor),
      owner_->params_.balance_alpha *
          (static_cast<double>(accepted_total_) + 1.0) /
          static_cast<double>(tail_load_.size()));
  // Pick the intersecting tail with the least load (the protocol routes
  // the suspect to its least-loaded intersection).
  std::unordered_map<std::uint64_t, std::uint32_t>::iterator best =
      tail_load_.end();
  for (std::uint64_t t : tails) {
    const auto it = tail_load_.find(t);
    if (it != tail_load_.end() &&
        (best == tail_load_.end() || it->second < best->second)) {
      best = it;
    }
  }
  if (best == tail_load_.end()) return false;
  if (static_cast<double>(best->second) + 1.0 > per_tail_budget) return false;
  ++best->second;
  ++accepted_total_;
  return true;
}

std::vector<double> SybilLimitDefense::score(const graph::CsrGraph& g,
                                             const DefenseContext& ctx) const {
  if (ctx.honest_seeds.empty()) {
    throw std::invalid_argument("sybillimit: no seeds");
  }
  const SybilLimit limit(g, params_);
  const SybilLimit::Verifier verifier =
      limit.make_verifier(ctx.honest_seeds.front());
  std::vector<double> scores(g.node_count(), 0.0);
  const auto score_one = [&](graph::NodeId v) {
    scores[v] = verifier.tail_score(v);
  };
  if (ctx.eval_nodes.empty()) {
    core::parallel_for(g.node_count(), [&](const core::ChunkRange& c) {
      for (std::size_t v = c.begin; v < c.end; ++v) {
        score_one(static_cast<graph::NodeId>(v));
      }
    });
  } else {
    core::parallel_for(ctx.eval_nodes.size(), [&](const core::ChunkRange& c) {
      for (std::size_t i = c.begin; i < c.end; ++i) {
        score_one(ctx.eval_nodes[i]);
      }
    });
  }
  return scores;
}

}  // namespace sybil::detect
