// SybilInfer (Danezis & Mittal, NDSS 2009) — walk-trace inference.
//
// SybilInfer samples short random walks and infers, via Bayesian
// reasoning, which cut of the graph best separates a slow-mixing
// (Sybil) region from the fast-mixing honest region. We implement the
// core statistical engine rather than the full MCMC over cuts
// (documented simplification): under fast mixing, a length-O(log n)
// walk's endpoint distribution approaches stationarity (∝ degree), so
// for each node we compare its observed walk-visit mass against its
// stationary expectation. Honest nodes score ≈ 1; nodes in a region
// that walks rarely enter (behind a small cut) score < 1. The full
// protocol thresholds a posterior; we expose the ratio as a score and
// threshold it in the evaluation harness, which is the same decision
// geometry.
#pragma once

#include <cstdint>
#include <vector>

#include "detectors/defense.h"
#include "graph/csr.h"
#include "stats/rng.h"

namespace sybil::detect {

struct SybilInferParams {
  /// Walks started per honest-seed node.
  std::size_t walks_per_seed = 20;
  /// Walk length; 0 → ceil(log2(n)) * length_factor.
  std::size_t walk_length = 0;
  double length_factor = 3.0;
  std::uint64_t seed = 17;
};

class SybilInfer {
 public:
  SybilInfer(const graph::CsrGraph& g, SybilInferParams params = {});

  /// Runs walks from the given trusted honest seeds and returns a score
  /// per node: (endpoint visits / degree), normalized so the median
  /// honest-seed score is 1. Higher = more likely honest.
  std::vector<double> scores(const std::vector<graph::NodeId>& seeds) const;

  std::size_t walk_length() const noexcept { return length_; }

 private:
  const graph::CsrGraph& g_;
  SybilInferParams params_;
  std::size_t length_;
};

/// SybilInfer's stationarity heuristic behind the unified interface.
class SybilInferDefense final : public SybilDefense {
 public:
  explicit SybilInferDefense(SybilInferParams params = {})
      : params_(params) {}

  std::string_view name() const noexcept override { return "sybilinfer"; }
  Determinism determinism() const noexcept override {
    return Determinism::kSeeded;
  }
  std::vector<double> score(const graph::CsrGraph& g,
                            const DefenseContext& ctx) const override {
    return SybilInfer(g, params_).scores(ctx.honest_seeds);
  }

 private:
  SybilInferParams params_;
};

}  // namespace sybil::detect
