#include "detectors/sumup.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace sybil::detect {

SumUpResult sumup_collect(const graph::CsrGraph& g, graph::NodeId collector,
                          const std::vector<graph::NodeId>& voters,
                          SumUpParams params) {
  if (collector >= g.node_count()) {
    throw std::out_of_range("sumup: collector out of range");
  }
  const std::uint64_t c_max =
      params.c_max == 0 ? std::max<std::uint64_t>(1, voters.size())
                        : params.c_max;

  // BFS levels from the collector, for the vote envelope.
  std::vector<std::uint32_t> level(g.node_count(), 0xffffffffu);
  std::vector<std::uint64_t> width;  // nodes per level
  {
    std::queue<graph::NodeId> q;
    level[collector] = 0;
    q.push(collector);
    width.push_back(1);
    while (!q.empty()) {
      const graph::NodeId u = q.front();
      q.pop();
      for (graph::NodeId v : g.neighbors(u)) {
        if (level[v] == 0xffffffffu) {
          level[v] = level[u] + 1;
          if (level[v] >= width.size()) width.push_back(0);
          ++width[level[v]];
          q.push(v);
        }
      }
    }
  }
  // Envelope radius: grow until a level is wide enough to carry c_max.
  std::uint32_t radius = params.envelope_radius;
  if (radius == 0) {
    radius = 1;
    while (radius < width.size() && width[radius] < c_max) ++radius;
  }

  // Flow network: graph nodes + super source.
  const std::size_t source = g.node_count();
  graph::FlowNetwork net(g.node_count() + 1);
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    for (graph::NodeId v : g.neighbors(u)) {
      if (u >= v) continue;
      const std::uint32_t lmin = std::min(level[u], level[v]);
      std::int64_t cap = 1;
      if (lmin < radius) {
        // Envelope links share c_max across the level's width.
        const std::uint64_t w = std::max<std::uint64_t>(
            1, width[std::min<std::size_t>(lmin + 1, width.size() - 1)]);
        cap = static_cast<std::int64_t>(
            std::max<std::uint64_t>(1, (c_max + w - 1) / w));
      }
      net.add_undirected(u, v, cap);
    }
  }
  std::vector<std::size_t> voter_arcs;
  voter_arcs.reserve(voters.size());
  for (graph::NodeId v : voters) {
    if (v >= g.node_count()) throw std::out_of_range("sumup: voter id");
    voter_arcs.push_back(net.add_arc(source, v, 1));
  }

  net.max_flow(source, collector);

  SumUpResult result;
  result.accepted.resize(voters.size(), false);
  for (std::size_t i = 0; i < voters.size(); ++i) {
    if (net.residual(voter_arcs[i]) == 0) {
      result.accepted[i] = true;
      ++result.accepted_count;
    }
  }
  return result;
}

std::vector<double> SumUpDefense::score(const graph::CsrGraph& g,
                                        const DefenseContext& ctx) const {
  if (ctx.honest_seeds.empty()) {
    throw std::invalid_argument("sumup: no seeds");
  }
  const graph::NodeId collector = ctx.honest_seeds.front();
  std::vector<graph::NodeId> voters;
  if (ctx.eval_nodes.empty()) {
    voters.reserve(g.node_count() > 0 ? g.node_count() - 1 : 0);
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      if (v != collector) voters.push_back(v);
    }
  } else {
    for (graph::NodeId v : ctx.eval_nodes) {
      if (v != collector) voters.push_back(v);
    }
  }
  SumUpParams params = params_;
  if (params.c_max == 0) params.c_max = voters.size();
  const SumUpResult result = sumup_collect(g, collector, voters, params);
  std::vector<double> scores(g.node_count(), 0.0);
  scores[collector] = 1.0;
  for (std::size_t i = 0; i < voters.size(); ++i) {
    scores[voters[i]] = result.accepted[i] ? 1.0 : 0.0;
  }
  return scores;
}

}  // namespace sybil::detect
