// Incremental power-iteration SybilRank over a DynamicGraph.
//
// sybilrank_scores() (sybilrank.h) is a batch algorithm: k rounds of
//   t_i[v] = sum_{u in N(v)} t_{i-1}[u] / deg(u)
// over the whole graph. In the live service a sweep arrives after a
// handful of new edges, and recomputing every node for every round is
// O(k·E) per sweep. This class keeps *all* k+1 iterate layers resident
// ((k+1)·V doubles — the explicit memory cost of incrementality) and,
// on update, re-evaluates only a frontier:
//
//   round 1 frontier = dirty ∪ N(dirty)      (degrees and rows changed)
//   round i+1 adds   N({v : |Δt_i[v]| > residual_epsilon})
//
// The frontier is cumulative across rounds — a node whose degree
// changed perturbs every round through the 1/deg factor, so once in,
// always re-evaluated. Per-node sums walk the chronological row in
// arrival order, exactly like the batch kernel walks its CSR row, so a
// full recompute here is bit-identical to sybilrank_scores() on the
// same graph — the property the test suite pins. Incremental updates
// deviate from batch only by skipped sub-epsilon propagations,
// bounded by O(rounds · ε) per score.
//
// Full-recompute fallbacks (counted, observable):
//   - first update after construction or restore-less start;
//   - the auto iteration depth ceil(log2 n) changed (n crossed a power
//     of two — layer counts no longer line up);
//   - the initial frontier exceeds full_recompute_fraction · V (the
//     incremental path would touch most of the graph anyway).
//
// Deliberately single-threaded: the service runs one scorer per shard
// inside an already-parallel pump/sweep lane (one lane per shard), and
// nesting parallel_for inside that lane would deadlock the fixed-chunk
// scheduler. Values are thread-count-independent by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dynamic_graph.h"
#include "io/container.h"

namespace sybil::detect {

struct IncrementalRankOptions {
  /// Power-iteration rounds; 0 means ceil(log2(max(2, n))) like the
  /// batch path (recomputed as the graph grows).
  std::size_t iterations = 0;
  /// A round-i change below this magnitude does not propagate to the
  /// next round's frontier. 0 propagates every bit flip (exact).
  double residual_epsilon = 1e-12;
  /// Fall back to full recompute when the initial frontier exceeds
  /// this fraction of the node count.
  double full_recompute_fraction = 0.25;
};

class IncrementalSybilRank {
 public:
  explicit IncrementalSybilRank(IncrementalRankOptions opts = {})
      : opts_(opts) {}

  /// Full recompute from scratch; stores `seeds` for later updates.
  /// Empty seeds yield all-zero scores (the batch path throws instead —
  /// the service treats "no seeds" as "rank tier disabled").
  void recompute(const graph::DynamicGraph& g,
                 std::span<const graph::NodeId> seeds);

  /// Folds the given dirty vertices (plus any node-count growth) into
  /// the standing scores. Falls back to recompute() when needed; see
  /// the header comment for the exact triggers.
  void update(const graph::DynamicGraph& g,
              std::span<const graph::NodeId> dirty);

  bool initialized() const noexcept { return initialized_; }

  /// Degree-normalized trust, 0.0 for unknown/isolated nodes.
  double score(graph::NodeId u) const {
    return u < scores_.size() ? scores_[u] : 0.0;
  }
  const std::vector<double>& scores() const noexcept { return scores_; }

  std::size_t iterations() const noexcept { return iters_; }
  std::uint64_t full_recomputes() const noexcept { return full_recomputes_; }
  std::uint64_t incremental_updates() const noexcept {
    return incremental_updates_;
  }
  /// Frontier re-evaluation rounds across all incremental updates.
  std::uint64_t rounds_total() const noexcept { return rounds_total_; }
  /// Node re-evaluations across all incremental rounds.
  std::uint64_t propagated_total() const noexcept { return propagated_total_; }

  /// Byte-exact state codec (layers, seeds, counters) for the service
  /// checkpoint; restore() rebuilds an identical scorer.
  void serialize(io::ByteWriter& w) const;
  void restore(io::ByteReader& r);

 private:
  std::size_t auto_iterations(std::size_t n) const;

  IncrementalRankOptions opts_;
  bool initialized_ = false;
  std::size_t iters_ = 0;
  std::size_t node_count_ = 0;
  std::vector<graph::NodeId> seeds_;
  std::vector<std::vector<double>> layers_;  // iters_ + 1 rows of V doubles
  std::vector<double> inv_degree_;
  std::vector<double> scores_;
  std::uint64_t full_recomputes_ = 0;
  std::uint64_t incremental_updates_ = 0;
  std::uint64_t rounds_total_ = 0;
  std::uint64_t propagated_total_ = 0;
};

}  // namespace sybil::detect
