// Conductance-based local community detection (the common core that
// Viswanath et al., SIGCOMM 2010 showed all social Sybil defenses reduce
// to). Greedily grows a community around a trusted seed, adding at each
// step the frontier node that yields the lowest community conductance;
// a node's rank in the inclusion order is its trust score. Sybils behind
// a small cut are ranked late (or never included).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace sybil::detect {

struct CommunityParams {
  /// Stop after including this many nodes (0 → whole component).
  std::size_t max_size = 0;
};

struct CommunityRanking {
  /// Inclusion order (first = seed). Nodes never reached are absent.
  std::vector<graph::NodeId> order;
  /// Conductance after each inclusion (parallel to order).
  std::vector<double> conductance_trace;
  /// rank[v] = position in `order`, or UINT32_MAX if never included.
  std::vector<std::uint32_t> rank;

  static constexpr std::uint32_t kUnranked = 0xffffffffu;
};

/// Greedy conductance expansion from `seed`. O((V + E) log V)-ish with
/// a lazy priority queue; intended for graphs up to a few hundred
/// thousand edges.
CommunityRanking community_expand(const graph::CsrGraph& g,
                                  graph::NodeId seed,
                                  CommunityParams params = {});

}  // namespace sybil::detect
