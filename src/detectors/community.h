// Conductance-based local community detection (the common core that
// Viswanath et al., SIGCOMM 2010 showed all social Sybil defenses reduce
// to). Greedily grows a community around a trusted seed, adding at each
// step the frontier node that yields the lowest community conductance;
// a node's rank in the inclusion order is its trust score. Sybils behind
// a small cut are ranked late (or never included).
#pragma once

#include <cstdint>
#include <vector>

#include "detectors/defense.h"
#include "graph/csr.h"

namespace sybil::detect {

struct CommunityParams {
  /// Stop after including this many nodes (0 → whole component).
  std::size_t max_size = 0;
};

struct CommunityRanking {
  /// Inclusion order (first = seed). Nodes never reached are absent.
  std::vector<graph::NodeId> order;
  /// Conductance after each inclusion (parallel to order).
  std::vector<double> conductance_trace;
  /// rank[v] = position in `order`, or UINT32_MAX if never included.
  std::vector<std::uint32_t> rank;

  static constexpr std::uint32_t kUnranked = 0xffffffffu;
};

/// Greedy conductance expansion from `seed`. O((V + E) log V)-ish with
/// a lazy priority queue; intended for graphs up to a few hundred
/// thousand edges.
CommunityRanking community_expand(const graph::CsrGraph& g,
                                  graph::NodeId seed,
                                  CommunityParams params = {});

/// Conductance expansion behind the unified interface: a node's score
/// is 1 - rank/|order| (never-included nodes score 0), expanding from
/// the first honest seed. Pure greedy — no RNG.
class CommunityDefense final : public SybilDefense {
 public:
  explicit CommunityDefense(CommunityParams params = {}) : params_(params) {}

  std::string_view name() const noexcept override { return "community"; }
  Determinism determinism() const noexcept override {
    return Determinism::kPure;
  }
  std::vector<double> score(const graph::CsrGraph& g,
                            const DefenseContext& ctx) const override;

 private:
  CommunityParams params_;
};

}  // namespace sybil::detect
