// SybilInfer's full Bayesian engine (Danezis & Mittal, NDSS 2009).
//
// Where detectors/sybilinfer.h ships the fast stationarity heuristic,
// this is the faithful machinery: sample random-walk traces, then run
// Metropolis-Hastings over candidate honest sets X, scoring each X by
// the trace likelihood under the fast-mixing model
//
//   P(trace s→e | X) ∝  p_stay · deg(e)/vol(side of s)   if e on s's side
//                       (1-p_stay) · deg(e)/vol(other)   otherwise,
//
// and reporting each node's marginal posterior probability of being
// honest. Known-honest seed nodes are pinned into X. The chain state is
// summarized by four trace counts (N_XX, N_XY, N_YX, N_YY) and the two
// side volumes, so each MH step costs O(traces incident to the flipped
// node). Intended for graphs up to a few tens of thousands of nodes;
// the heuristic scorer covers the larger benches.
#pragma once

#include <cstdint>
#include <vector>

#include "detectors/defense.h"
#include "graph/csr.h"
#include "stats/rng.h"

namespace sybil::detect {

struct SybilInferMcmcParams {
  std::size_t walks_per_node = 5;
  /// Walk length; 0 → ceil(length_factor * log2(n)).
  std::size_t walk_length = 0;
  double length_factor = 2.0;
  /// Model probability that a walk stays on its start side.
  double stay_prob = 0.9;
  /// MH schedule, in sweeps (1 sweep = node_count proposals).
  std::size_t burn_in_sweeps = 30;
  std::size_t sample_sweeps = 60;
  std::uint64_t seed = 23;
};

/// Returns per-node marginal posterior P(node is honest), in [0, 1]
/// (higher = more honest). `honest_seeds` are pinned honest.
std::vector<double> sybilinfer_mcmc_scores(
    const graph::CsrGraph& g, const std::vector<graph::NodeId>& honest_seeds,
    SybilInferMcmcParams params = {});

/// The full Bayesian engine behind the unified interface. The MH chain
/// is inherently sequential; determinism comes from the fixed seed.
class SybilInferMcmcDefense final : public SybilDefense {
 public:
  explicit SybilInferMcmcDefense(SybilInferMcmcParams params = {})
      : params_(params) {}

  std::string_view name() const noexcept override {
    return "sybilinfer-mcmc";
  }
  Determinism determinism() const noexcept override {
    return Determinism::kSeeded;
  }
  std::vector<double> score(const graph::CsrGraph& g,
                            const DefenseContext& ctx) const override {
    return sybilinfer_mcmc_scores(g, ctx.honest_seeds, params_);
  }

 private:
  SybilInferMcmcParams params_;
};

}  // namespace sybil::detect
