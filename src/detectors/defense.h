// The unified defense interface: every structure-based Sybil defense in
// this library (SybilGuard, SybilLimit, SybilInfer, SybilInfer-MCMC,
// SumUp, SybilRank, community expansion, clustering ranker) is exposed
// as a SybilDefense that maps (graph, trusted seeds) to one honesty
// score per node — the comparative-evaluation shape of the paper's
// Section 3.1 battery, and the seam later scaling work (sharding,
// batching, alternative backends) plugs into.
//
// Determinism contract: score() must be a pure function of
// (graph, context, construction-time tuning). Defenses that use
// randomness derive every stream from their fixed master seed (via
// core::chunk_rng for parallel loops), so results are bit-identical for
// any SYBIL_THREADS setting. The declared Determinism level tells
// callers whether a defense consumes a seed at all.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr.h"

namespace sybil::detect {

/// Declared determinism contract of a defense.
enum class Determinism {
  /// No randomness at all: score() depends only on (graph, context).
  kPure,
  /// Uses RNG streams derived from a fixed master seed; still
  /// bit-identical run-to-run and across thread counts.
  kSeeded,
};

std::string_view to_string(Determinism d) noexcept;

/// Inputs shared by every defense invocation.
struct DefenseContext {
  /// Trusted honest nodes. Propagation defenses use all of them;
  /// pairwise/collector defenses (SybilGuard, SybilLimit, SumUp) use
  /// the first as the verifier / vote collector.
  std::vector<graph::NodeId> honest_seeds;
  /// Nodes whose scores the caller will consume (empty = all nodes).
  /// Pairwise defenses only guarantee meaningful scores here; entries
  /// outside the set are 0.
  std::vector<graph::NodeId> eval_nodes;
};

/// Polymorphic Sybil defense: per-node honesty scores, higher = more
/// likely honest. Implementations must be const-callable and safe to
/// invoke from a single thread while the library parallelizes
/// internally via core/parallel.h.
class SybilDefense {
 public:
  virtual ~SybilDefense() = default;

  virtual std::string_view name() const noexcept = 0;
  virtual Determinism determinism() const noexcept = 0;

  /// Scores every node of `g` (vector size == g.node_count()).
  virtual std::vector<double> score(const graph::CsrGraph& g,
                                    const DefenseContext& ctx) const = 0;

  /// Convenience overload matching the common call shape.
  std::vector<double> score(const graph::CsrGraph& g,
                            const std::vector<graph::NodeId>& seeds) const {
    DefenseContext ctx;
    ctx.honest_seeds = seeds;
    return score(g, ctx);
  }
};

/// Cross-defense tuning knobs understood by the registry factories
/// (0 / 0.0 = keep the detector's own default). Kept deliberately flat:
/// benches sweep these without naming concrete detector types.
struct DefenseTuning {
  std::uint64_t seed = 0;
  std::size_t route_length = 0;         // SybilGuard, SybilLimit
  std::size_t max_routes_per_node = 0;  // SybilGuard
  double r_factor = 0.0;                // SybilLimit
  std::size_t walks_per_seed = 0;       // SybilInfer
  std::size_t mcmc_burn_in_sweeps = 0;  // SybilInfer-MCMC
  std::size_t mcmc_sample_sweeps = 0;   // SybilInfer-MCMC
};

/// Name -> factory registry over every ported defense. The eight
/// built-ins self-register on first access; callers may add more.
class DefenseRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<SybilDefense>(const DefenseTuning&)>;

  /// Registers (or replaces) a factory under `name`.
  static void register_defense(std::string name, Factory factory);

  /// Registered names in registration order (built-ins first) — the
  /// stable row order of the bench tables.
  static std::vector<std::string> names();

  static bool contains(std::string_view name);

  /// Instantiates a defense; throws std::out_of_range for unknown names.
  static std::unique_ptr<SybilDefense> create(std::string_view name,
                                              const DefenseTuning& tuning = {});
};

}  // namespace sybil::detect
