// Clustering-coefficient ranker — the paper's own structural signal
// (Fig 4) recast as a baseline defense: wild Sybils befriend strangers
// whose friends are strangers to each other, so their neighborhoods
// close almost no triangles and their local clustering coefficient sits
// orders of magnitude below normal users'. Ranking nodes by local
// clustering (higher = more honest) is therefore the structural
// detector that *does* survive the paper's wild setting, while the
// community-assumption defenses collapse — and on the classic
// injected-community setting it inverts, which the defense-evaluation
// bench makes visible.
#pragma once

#include <vector>

#include "detectors/defense.h"
#include "graph/csr.h"

namespace sybil::detect {

/// Per-node local clustering coefficients (higher = more honest).
/// Parallel over the fixed chunk partition; no RNG.
std::vector<double> clustering_ranker_scores(const graph::CsrGraph& g);

class ClusteringRankerDefense final : public SybilDefense {
 public:
  std::string_view name() const noexcept override { return "clustering"; }
  Determinism determinism() const noexcept override {
    return Determinism::kPure;
  }
  std::vector<double> score(const graph::CsrGraph& g,
                            const DefenseContext& ctx) const override;
};

}  // namespace sybil::detect
