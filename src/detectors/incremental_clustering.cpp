#include "detectors/incremental_clustering.h"

#include <algorithm>

namespace sybil::detect {

namespace {

constexpr std::uint32_t kClusteringStateVersion = 1;
constexpr std::uint64_t kMaxPlausible = 1ull << 33;

/// Two-pointer |a ∩ b| over ascending rows, optionally collecting the
/// members. Counts are exact integers, so any correct intersection
/// yields values bit-identical to the batch kernels'.
std::uint64_t intersect(std::span<const graph::NodeId> a,
                        std::span<const graph::NodeId> b,
                        std::vector<graph::NodeId>* out) {
  std::uint64_t hits = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++hits;
      if (out != nullptr) out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return hits;
}

}  // namespace

void IncrementalClustering::refresh_coefficient(const graph::DynamicGraph& g,
                                                graph::NodeId u) {
  const std::size_t d = g.degree(u);
  // Same expression as graph::local_clustering over the same exact
  // integers — bit-identical by construction.
  cc_[u] = d < 2 ? 0.0
                 : 2.0 * static_cast<double>(links_[u]) /
                       (static_cast<double>(d) * static_cast<double>(d - 1));
}

void IncrementalClustering::recompute(const graph::DynamicGraph& g) {
  const graph::NodeId n = g.node_count();
  links_.assign(n, 0);
  cc_.assign(n, 0.0);
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto row = g.sorted_neighbors(u);
    std::uint64_t twice = 0;
    for (const graph::NodeId w : row) {
      twice += intersect(row, g.sorted_neighbors(w), nullptr);
    }
    links_[u] = twice / 2;
    refresh_coefficient(g, u);
  }
  initialized_ = true;
}

void IncrementalClustering::on_edge_added(const graph::DynamicGraph& g,
                                          graph::NodeId u, graph::NodeId v) {
  if (!initialized_) {
    recompute(g);
    ++edges_applied_;
    return;
  }
  const graph::NodeId n = g.node_count();
  if (n > links_.size()) {
    links_.resize(n, 0);
    cc_.resize(n, 0.0);
  }
  std::vector<graph::NodeId> common;
  intersect(g.sorted_neighbors(u), g.sorted_neighbors(v), &common);
  for (const graph::NodeId w : common) {
    links_[w] += 1;  // N(w) gained edge {u, v}
    refresh_coefficient(g, w);
  }
  links_[u] += common.size();  // N(u) gained edges {v, w} for each common w
  links_[v] += common.size();
  refresh_coefficient(g, u);
  refresh_coefficient(g, v);
  triangles_closed_ += common.size();
  ++edges_applied_;
}

void IncrementalClustering::serialize(io::ByteWriter& w) const {
  w.write(kClusteringStateVersion);
  w.write(static_cast<std::uint8_t>(initialized_ ? 1 : 0));
  w.write(static_cast<std::uint64_t>(links_.size()));
  for (const std::uint64_t x : links_) w.write(x);
  for (const double x : cc_) w.write(x);
  w.write(edges_applied_);
  w.write(triangles_closed_);
}

void IncrementalClustering::restore(io::ByteReader& r) {
  const auto version = r.read<std::uint32_t>();
  if (version != kClusteringStateVersion) {
    throw io::SnapshotError(io::SnapshotErrorCode::kUnsupportedVersion,
                            "incremental-clustering state version mismatch");
  }
  initialized_ = r.read<std::uint8_t>() != 0;
  const auto n = r.read<std::uint64_t>();
  if (n >= kMaxPlausible) {
    throw io::SnapshotError(io::SnapshotErrorCode::kMalformedSection,
                            "incremental-clustering state counts implausible");
  }
  links_.resize(n);
  for (auto& x : links_) x = r.read<std::uint64_t>();
  cc_.resize(n);
  for (auto& x : cc_) x = r.read<double>();
  edges_applied_ = r.read<std::uint64_t>();
  triangles_closed_ = r.read<std::uint64_t>();
}

}  // namespace sybil::detect
