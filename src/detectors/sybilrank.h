// SybilRank (Cao et al., NSDI 2012) — early-terminated trust propagation.
//
// Extension baseline beyond the paper's four: the detector that became
// the canonical "community assumption" ranker after this paper was
// published. Trust is seeded at verified honest nodes and spread by
// O(log n) power iterations (early termination keeps trust from fully
// mixing into a Sybil region); nodes are ranked by degree-normalized
// trust, low rank → Sybil.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace sybil::detect {

struct SybilRankParams {
  /// Power iterations; 0 → ceil(log2(n)).
  std::size_t iterations = 0;
};

/// Returns degree-normalized trust per node (higher = more honest).
std::vector<double> sybilrank_scores(const graph::CsrGraph& g,
                                     const std::vector<graph::NodeId>& seeds,
                                     SybilRankParams params = {});

}  // namespace sybil::detect
