// SybilRank (Cao et al., NSDI 2012) — early-terminated trust propagation.
//
// Extension baseline beyond the paper's four: the detector that became
// the canonical "community assumption" ranker after this paper was
// published. Trust is seeded at verified honest nodes and spread by
// O(log n) power iterations (early termination keeps trust from fully
// mixing into a Sybil region); nodes are ranked by degree-normalized
// trust, low rank → Sybil.
#pragma once

#include <cstdint>
#include <vector>

#include "detectors/defense.h"
#include "graph/csr.h"

namespace sybil::detect {

struct SybilRankParams {
  /// Power iterations; 0 → ceil(log2(n)).
  std::size_t iterations = 0;
};

/// Returns degree-normalized trust per node (higher = more honest).
std::vector<double> sybilrank_scores(const graph::CsrGraph& g,
                                     const std::vector<graph::NodeId>& seeds,
                                     SybilRankParams params = {});

/// SybilRank behind the unified interface. Power iteration is pull-
/// based and parallel; no RNG at all.
class SybilRankDefense final : public SybilDefense {
 public:
  explicit SybilRankDefense(SybilRankParams params = {}) : params_(params) {}

  std::string_view name() const noexcept override { return "sybilrank"; }
  Determinism determinism() const noexcept override {
    return Determinism::kPure;
  }
  std::vector<double> score(const graph::CsrGraph& g,
                            const DefenseContext& ctx) const override {
    return sybilrank_scores(g, ctx.honest_seeds, params_);
  }

 private:
  SybilRankParams params_;
};

}  // namespace sybil::detect
