#include "detectors/incremental_rank.h"

#include <algorithm>
#include <cmath>

namespace sybil::detect {

namespace {

constexpr std::uint32_t kRankStateVersion = 1;

// Restore guard: reject row counts that cannot have come from a real
// checkpoint before attempting a multi-gigabyte resize.
constexpr std::uint64_t kMaxPlausible = 1ull << 33;

}  // namespace

std::size_t IncrementalSybilRank::auto_iterations(std::size_t n) const {
  if (opts_.iterations != 0) return opts_.iterations;
  return static_cast<std::size_t>(
      std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(n)))));
}

void IncrementalSybilRank::recompute(const graph::DynamicGraph& g,
                                     std::span<const graph::NodeId> seeds) {
  const std::size_t n = g.node_count();
  seeds_.assign(seeds.begin(), seeds.end());
  iters_ = auto_iterations(n);
  layers_.assign(iters_ + 1, std::vector<double>(n, 0.0));
  if (!seeds_.empty()) {
    const double share = 1.0 / static_cast<double>(seeds_.size());
    for (const graph::NodeId s : seeds_) {
      if (s < n) layers_[0][s] += share;
    }
  }
  inv_degree_.assign(n, 0.0);
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto d = g.degree(u);
    if (d > 0) inv_degree_[u] = 1.0 / static_cast<double>(d);
  }
  // Same pull-sum in the same per-node arrival order as the batch
  // kernel (its CSR rows are chronological), hence bit-identical.
  for (std::size_t it = 1; it <= iters_; ++it) {
    const std::vector<double>& prev = layers_[it - 1];
    std::vector<double>& cur = layers_[it];
    for (graph::NodeId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (const graph::Neighbor& nb : g.chronological(v)) {
        sum += prev[nb.node] * inv_degree_[nb.node];
      }
      cur[v] = sum;
    }
  }
  scores_ = layers_[iters_];
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto d = g.degree(u);
    if (d > 0) scores_[u] /= static_cast<double>(d);
  }
  node_count_ = n;
  initialized_ = true;
  ++full_recomputes_;
}

void IncrementalSybilRank::update(const graph::DynamicGraph& g,
                                  std::span<const graph::NodeId> dirty) {
  const std::size_t n = g.node_count();
  if (!initialized_ || auto_iterations(n) != iters_) {
    recompute(g, seeds_);
    return;
  }
  if (n > node_count_) {
    // New nodes enter with zero trust everywhere; the batch path gives
    // isolated nodes exactly zero too.
    for (auto& layer : layers_) layer.resize(n, 0.0);
    inv_degree_.resize(n, 0.0);
    scores_.resize(n, 0.0);
    node_count_ = n;
  }
  if (dirty.empty()) {
    ++incremental_updates_;
    return;
  }
  for (const graph::NodeId u : dirty) {
    const auto d = g.degree(u);
    inv_degree_[u] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  }
  // Initial frontier: the dirty vertices plus everyone who pulls from
  // them (rows or 1/deg factors changed).
  std::vector<std::uint8_t> in_frontier(n, 0);
  std::vector<graph::NodeId> frontier;
  const auto enlist = [&](graph::NodeId v) {
    if (in_frontier[v] == 0) {
      in_frontier[v] = 1;
      frontier.push_back(v);
    }
  };
  for (const graph::NodeId u : dirty) {
    enlist(u);
    for (const graph::NodeId w : g.sorted_neighbors(u)) enlist(w);
  }
  if (static_cast<double>(frontier.size()) >
      opts_.full_recompute_fraction * static_cast<double>(n)) {
    recompute(g, seeds_);
    return;
  }
  ++incremental_updates_;
  std::sort(frontier.begin(), frontier.end());
  std::vector<graph::NodeId> additions;
  for (std::size_t it = 1; it <= iters_; ++it) {
    const std::vector<double>& prev = layers_[it - 1];
    std::vector<double>& cur = layers_[it];
    additions.clear();
    for (const graph::NodeId v : frontier) {
      double sum = 0.0;
      for (const graph::Neighbor& nb : g.chronological(v)) {
        sum += prev[nb.node] * inv_degree_[nb.node];
      }
      const double old = cur[v];
      cur[v] = sum;
      if (std::abs(sum - old) > opts_.residual_epsilon) {
        for (const graph::NodeId w : g.sorted_neighbors(v)) {
          if (in_frontier[w] == 0) {
            in_frontier[w] = 1;
            additions.push_back(w);
          }
        }
      }
    }
    propagated_total_ += frontier.size();
    ++rounds_total_;
    if (!additions.empty()) {
      frontier.insert(frontier.end(), additions.begin(), additions.end());
      std::sort(frontier.begin(), frontier.end());
    }
  }
  for (const graph::NodeId v : frontier) {
    const auto d = g.degree(v);
    scores_[v] = d > 0 ? layers_[iters_][v] / static_cast<double>(d)
                       : layers_[iters_][v];
  }
}

void IncrementalSybilRank::serialize(io::ByteWriter& w) const {
  w.write(kRankStateVersion);
  w.write(static_cast<std::uint8_t>(initialized_ ? 1 : 0));
  if (!initialized_) return;
  w.write(static_cast<std::uint64_t>(iters_));
  w.write(static_cast<std::uint64_t>(node_count_));
  w.write(static_cast<std::uint64_t>(seeds_.size()));
  for (const graph::NodeId s : seeds_) w.write(s);
  for (const auto& layer : layers_) {
    for (const double x : layer) w.write(x);
  }
  for (const double x : inv_degree_) w.write(x);
  for (const double x : scores_) w.write(x);
  w.write(full_recomputes_);
  w.write(incremental_updates_);
  w.write(rounds_total_);
  w.write(propagated_total_);
}

void IncrementalSybilRank::restore(io::ByteReader& r) {
  const auto version = r.read<std::uint32_t>();
  if (version != kRankStateVersion) {
    throw io::SnapshotError(io::SnapshotErrorCode::kUnsupportedVersion,
                            "incremental-rank state version mismatch");
  }
  const bool initialized = r.read<std::uint8_t>() != 0;
  if (!initialized) {
    initialized_ = false;
    iters_ = 0;
    node_count_ = 0;
    seeds_.clear();
    layers_.clear();
    inv_degree_.clear();
    scores_.clear();
    full_recomputes_ = incremental_updates_ = 0;
    rounds_total_ = propagated_total_ = 0;
    return;
  }
  const auto iters = r.read<std::uint64_t>();
  const auto n = r.read<std::uint64_t>();
  const auto seed_count = r.read<std::uint64_t>();
  if (iters >= 1024 || n >= kMaxPlausible || seed_count >= kMaxPlausible) {
    throw io::SnapshotError(io::SnapshotErrorCode::kMalformedSection,
                            "incremental-rank state counts implausible");
  }
  seeds_.resize(seed_count);
  for (auto& s : seeds_) s = r.read<graph::NodeId>();
  layers_.assign(iters + 1, std::vector<double>(n));
  for (auto& layer : layers_) {
    for (auto& x : layer) x = r.read<double>();
  }
  inv_degree_.resize(n);
  for (auto& x : inv_degree_) x = r.read<double>();
  scores_.resize(n);
  for (auto& x : scores_) x = r.read<double>();
  full_recomputes_ = r.read<std::uint64_t>();
  incremental_updates_ = r.read<std::uint64_t>();
  rounds_total_ = r.read<std::uint64_t>();
  propagated_total_ = r.read<std::uint64_t>();
  iters_ = static_cast<std::size_t>(iters);
  node_count_ = static_cast<std::size_t>(n);
  initialized_ = true;
}

}  // namespace sybil::detect
