// SybilGuard (Yu et al., SIGCOMM 2006) — random-route intersection.
//
// Every node registers random routes through the graph; a verifier V
// accepts a suspect S when S's routes intersect V's. Honest nodes in a
// fast-mixing honest region intersect with high probability; Sybils
// behind a small attack-edge cut rarely reach the honest region's
// routes. Route length defaults to the paper's Θ(√(n·log n)).
//
// This implementation centralizes the protocol (we hold the whole graph)
// but preserves its decision structure: per-edge random routes derived
// from per-node routing permutations (graph::RouteTable).
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "detectors/defense.h"
#include "graph/csr.h"
#include "graph/walks.h"
#include "stats/rng.h"

namespace sybil::detect {

struct SybilGuardParams {
  /// Route length; 0 → ceil(sqrt(n * log n)).
  std::size_t route_length = 0;
  /// Cap on routes per node (high-degree verifiers get expensive).
  std::size_t max_routes_per_node = 32;
  /// Fraction of suspect routes that must intersect the verifier's
  /// route set for acceptance.
  double accept_fraction = 0.5;
  std::uint64_t seed = 11;
};

class SybilGuard {
 public:
  SybilGuard(const graph::CsrGraph& g, SybilGuardParams params = {});

  /// Fraction of the verifier's routes that intersect the suspect's
  /// routes (the acceptance score, in [0, 1]). SybilGuard votes per
  /// verifier route: even if one verifier route strays into a Sybil
  /// region (and so intersects every Sybil there), the majority of
  /// verifier routes stay in the honest region and out-vote it.
  double intersection_score(graph::NodeId verifier,
                            graph::NodeId suspect) const;

  /// Accept/reject decision.
  bool accepts(graph::NodeId verifier, graph::NodeId suspect) const {
    return intersection_score(verifier, suspect) >= params_.accept_fraction;
  }

  std::size_t route_length() const noexcept { return length_; }

 private:
  std::vector<graph::NodeId> routes_from(graph::NodeId node) const;

  const graph::CsrGraph& g_;
  SybilGuardParams params_;
  std::size_t length_;
  graph::RouteTable table_;
};

/// SybilGuard behind the unified interface: the first honest seed acts
/// as the verifier and every eval node (default: all nodes) receives
/// its route-intersection score, computed in parallel over suspects.
class SybilGuardDefense final : public SybilDefense {
 public:
  explicit SybilGuardDefense(SybilGuardParams params = {})
      : params_(params) {}

  std::string_view name() const noexcept override { return "sybilguard"; }
  Determinism determinism() const noexcept override {
    return Determinism::kSeeded;
  }
  std::vector<double> score(const graph::CsrGraph& g,
                            const DefenseContext& ctx) const override;

 private:
  SybilGuardParams params_;
};

}  // namespace sybil::detect
