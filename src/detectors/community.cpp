#include "detectors/community.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace sybil::detect {

CommunityRanking community_expand(const graph::CsrGraph& g,
                                  graph::NodeId seed,
                                  CommunityParams params) {
  if (seed >= g.node_count()) throw std::out_of_range("community: bad seed");
  const double two_m =
      std::max<double>(1.0, 2.0 * static_cast<double>(g.edge_count()));

  CommunityRanking out;
  out.rank.assign(g.node_count(), CommunityRanking::kUnranked);
  std::vector<std::uint32_t> links_in(g.node_count(), 0);  // edges into S
  std::vector<bool> member(g.node_count(), false);

  // Lazy min-heap over (cut delta, node); stale entries skipped at pop.
  using Entry = std::pair<std::int64_t, graph::NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  double volume = 0.0, cut = 0.0;
  const auto include = [&](graph::NodeId v) {
    member[v] = true;
    out.rank[v] = static_cast<std::uint32_t>(out.order.size());
    out.order.push_back(v);
    const double d = g.degree(v);
    cut += d - 2.0 * static_cast<double>(links_in[v]);
    volume += d;
    out.conductance_trace.push_back(
        cut / std::max(1.0, std::min(volume, two_m - volume)));
    for (graph::NodeId w : g.neighbors(v)) {
      if (member[w]) continue;
      ++links_in[w];
      const std::int64_t delta = static_cast<std::int64_t>(g.degree(w)) -
                                 2 * static_cast<std::int64_t>(links_in[w]);
      heap.push({delta, w});
    }
  };

  include(seed);
  const std::size_t limit =
      params.max_size == 0 ? g.node_count() : params.max_size;
  while (!heap.empty() && out.order.size() < limit) {
    const auto [delta, v] = heap.top();
    heap.pop();
    if (member[v]) continue;
    const std::int64_t current = static_cast<std::int64_t>(g.degree(v)) -
                                 2 * static_cast<std::int64_t>(links_in[v]);
    if (current != delta) continue;  // stale; a fresher entry exists
    include(v);
  }
  return out;
}

std::vector<double> CommunityDefense::score(const graph::CsrGraph& g,
                                            const DefenseContext& ctx) const {
  if (ctx.honest_seeds.empty()) {
    throw std::invalid_argument("community: no seeds");
  }
  const CommunityRanking ranking =
      community_expand(g, ctx.honest_seeds.front(), params_);
  std::vector<double> scores(g.node_count(), 0.0);
  const double size = static_cast<double>(ranking.order.size());
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (ranking.rank[v] == CommunityRanking::kUnranked) continue;
    scores[v] = 1.0 - static_cast<double>(ranking.rank[v]) / size;
  }
  return scores;
}

}  // namespace sybil::detect
