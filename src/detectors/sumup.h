// SumUp (Tran et al., NSDI 2009) — Sybil-resilient vote collection.
//
// Votes flow over social links (unit capacities) toward a trusted vote
// collector; a Sybil region behind a small attack-edge cut can deliver
// at most cut-many votes no matter how many Sybils vote. We implement
// the max-flow core with SumUp's pruned "vote envelope": capacities
// within distance d of the collector are scaled up so that up to Cmax
// honest votes can be collected without congestion near the collector.
#pragma once

#include <cstdint>
#include <vector>

#include "detectors/defense.h"
#include "graph/csr.h"
#include "graph/maxflow.h"

namespace sybil::detect {

struct SumUpParams {
  /// Number of votes the collector expects to gather (sets the envelope
  /// capacity). 0 → number of voters.
  std::uint64_t c_max = 0;
  /// Envelope radius (BFS hops from the collector with boosted
  /// capacity); 0 → grows until the envelope frontier exceeds c_max.
  std::uint32_t envelope_radius = 0;
};

struct SumUpResult {
  /// accepted[i] == true iff voter i's vote reached the collector.
  std::vector<bool> accepted;
  std::uint64_t accepted_count = 0;
};

/// Collects votes from `voters` toward `collector` over graph `g`.
SumUpResult sumup_collect(const graph::CsrGraph& g, graph::NodeId collector,
                          const std::vector<graph::NodeId>& voters,
                          SumUpParams params = {});

/// SumUp behind the unified interface: the first honest seed collects,
/// eval nodes (default: everyone else) vote, and a node's score is 1 if
/// its vote reached the collector. Pure max-flow — no RNG.
class SumUpDefense final : public SybilDefense {
 public:
  explicit SumUpDefense(SumUpParams params = {}) : params_(params) {}

  std::string_view name() const noexcept override { return "sumup"; }
  Determinism determinism() const noexcept override {
    return Determinism::kPure;
  }
  std::vector<double> score(const graph::CsrGraph& g,
                            const DefenseContext& ctx) const override;

 private:
  SumUpParams params_;
};

}  // namespace sybil::detect
