#include "detectors/sybilinfer_mcmc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/walks.h"

namespace sybil::detect {

namespace {

struct Trace {
  graph::NodeId start;
  graph::NodeId end;
};

/// Chain state: membership plus the aggregates the likelihood needs.
struct ChainState {
  std::vector<bool> honest;        // X membership
  double vol_x = 0.0, vol_y = 0.0;
  // Trace counts by (start side, end side); X = honest.
  double n_xx = 0.0, n_xy = 0.0, n_yx = 0.0, n_yy = 0.0;
};

double log_likelihood(const ChainState& s, double stay, double log_vol_total) {
  // Σ log deg(e) is membership-independent and omitted. Same-side
  // endpoints are modeled as fast mixing within the side (density
  // deg(e)/vol(side)); cross-side escapes are spread over the whole
  // graph (density deg(e)/vol(total)) — normalizing escapes by the tiny
  // receiving side would make one-node partitions spuriously likely.
  // Degenerate states (same-side traces on an empty side) get -inf.
  if ((s.vol_x <= 0.0 && s.n_xx > 0) || (s.vol_y <= 0.0 && s.n_yy > 0)) {
    return -std::numeric_limits<double>::infinity();
  }
  double ll = 0.0;
  if (s.n_xx > 0) ll += s.n_xx * (std::log(stay) - std::log(s.vol_x));
  if (s.n_yy > 0) ll += s.n_yy * (std::log(stay) - std::log(s.vol_y));
  ll += (s.n_xy + s.n_yx) * (std::log1p(-stay) - log_vol_total);
  return ll;
}

}  // namespace

std::vector<double> sybilinfer_mcmc_scores(
    const graph::CsrGraph& g, const std::vector<graph::NodeId>& honest_seeds,
    SybilInferMcmcParams params) {
  const graph::NodeId n = g.node_count();
  if (n < 2) throw std::invalid_argument("sybilinfer-mcmc: graph too small");
  if (honest_seeds.empty()) {
    throw std::invalid_argument("sybilinfer-mcmc: no honest seeds");
  }
  if (!(params.stay_prob > 0.0) || !(params.stay_prob < 1.0)) {
    throw std::invalid_argument("sybilinfer-mcmc: stay_prob must be in (0,1)");
  }
  std::size_t length = params.walk_length;
  if (length == 0) {
    length = static_cast<std::size_t>(
        std::ceil(params.length_factor * std::log2(std::max<double>(2.0, n))));
  }

  stats::Rng rng(params.seed);

  // --- Sample traces. ---
  std::vector<Trace> traces;
  traces.reserve(static_cast<std::size_t>(n) * params.walks_per_node);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.degree(v) == 0) continue;
    for (std::size_t w = 0; w < params.walks_per_node; ++w) {
      traces.push_back({v, graph::random_walk_endpoint(g, v, length, rng)});
    }
  }
  // Per-node incident trace ids (start or end touches the node).
  std::vector<std::vector<std::uint32_t>> incident(n);
  for (std::uint32_t t = 0; t < traces.size(); ++t) {
    incident[traces[t].start].push_back(t);
    if (traces[t].end != traces[t].start) {
      incident[traces[t].end].push_back(t);
    }
  }

  // --- Initial state: everyone honest. ---
  ChainState state;
  state.honest.assign(n, true);
  for (graph::NodeId v = 0; v < n; ++v) {
    state.vol_x += g.degree(v);
  }
  state.n_xx = static_cast<double>(traces.size());

  std::vector<bool> pinned(n, false);
  for (graph::NodeId s : honest_seeds) pinned.at(s) = true;

  const auto count_of = [&](bool s_honest, bool e_honest) -> double& {
    if (s_honest) return e_honest ? state.n_xx : state.n_xy;
    return e_honest ? state.n_yx : state.n_yy;
  };
  const auto apply_flip = [&](graph::NodeId v) {
    // Remove incident traces, flip, re-add.
    for (std::uint32_t t : incident[v]) {
      count_of(state.honest[traces[t].start],
               state.honest[traces[t].end]) -= 1.0;
    }
    const double d = g.degree(v);
    if (state.honest[v]) {
      state.vol_x -= d;
      state.vol_y += d;
    } else {
      state.vol_y -= d;
      state.vol_x += d;
    }
    state.honest[v] = !state.honest[v];
    for (std::uint32_t t : incident[v]) {
      count_of(state.honest[traces[t].start],
               state.honest[traces[t].end]) += 1.0;
    }
  };

  // --- Metropolis-Hastings over membership flips. ---
  const double log_vol_total = std::log(state.vol_x + state.vol_y);
  double current_ll = log_likelihood(state, params.stay_prob, log_vol_total);
  std::vector<std::uint32_t> honest_samples(n, 0);
  std::size_t samples_taken = 0;
  const std::size_t total_sweeps =
      params.burn_in_sweeps + params.sample_sweeps;
  for (std::size_t sweep = 0; sweep < total_sweeps; ++sweep) {
    for (graph::NodeId step = 0; step < n; ++step) {
      const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
      if (pinned[v]) continue;
      apply_flip(v);
      const double proposed_ll =
          log_likelihood(state, params.stay_prob, log_vol_total);
      const double log_accept = proposed_ll - current_ll;
      if (log_accept >= 0.0 || rng.uniform() < std::exp(log_accept)) {
        current_ll = proposed_ll;
      } else {
        apply_flip(v);  // revert
      }
    }
    if (sweep >= params.burn_in_sweeps) {
      ++samples_taken;
      for (graph::NodeId v = 0; v < n; ++v) {
        honest_samples[v] += state.honest[v] ? 1 : 0;
      }
    }
  }

  std::vector<double> scores(n, 1.0);
  if (samples_taken > 0) {
    for (graph::NodeId v = 0; v < n; ++v) {
      scores[v] = static_cast<double>(honest_samples[v]) /
                  static_cast<double>(samples_taken);
    }
  }
  return scores;
}

}  // namespace sybil::detect
