#include "detectors/sybilinfer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/walks.h"

namespace sybil::detect {

SybilInfer::SybilInfer(const graph::CsrGraph& g, SybilInferParams params)
    : g_(g), params_(params), length_(params.walk_length) {
  if (length_ == 0) {
    const double n = std::max<double>(2.0, g.node_count());
    length_ = static_cast<std::size_t>(
        std::ceil(params_.length_factor * std::log2(n)));
  }
}

std::vector<double> SybilInfer::scores(
    const std::vector<graph::NodeId>& seeds) const {
  if (seeds.empty()) throw std::invalid_argument("sybilinfer: no seeds");
  // Walk fan-out runs on the parallel layer: per-chunk RNG streams
  // derived from params_.seed keep the histogram bit-identical for any
  // SYBIL_THREADS setting.
  const std::vector<std::uint64_t> endpoint_visits = graph::endpoint_histogram(
      g_, seeds, params_.walks_per_seed, length_, params_.seed);
  const std::uint64_t total_walks =
      static_cast<std::uint64_t>(seeds.size()) * params_.walks_per_seed;
  // Stationary expectation of endpoint mass is deg(v) / 2m.
  const double two_m =
      std::max<double>(1.0, 2.0 * static_cast<double>(g_.edge_count()));
  std::vector<double> score(g_.node_count(), 0.0);
  for (graph::NodeId v = 0; v < g_.node_count(); ++v) {
    const double expected =
        static_cast<double>(total_walks) * static_cast<double>(g_.degree(v)) /
        two_m;
    // Laplace smoothing keeps rarely-visited low-degree honest nodes
    // from being zeroed out by sampling noise.
    score[v] = (static_cast<double>(endpoint_visits[v]) + 0.5) /
               (expected + 0.5);
  }
  return score;
}

}  // namespace sybil::detect
