// Evaluation harness for the baseline Sybil defenses: turns per-node
// scores (higher = more honest) or binary decisions into the metrics
// the defense-evaluation bench reports — ranking AUC and Sybil-recall
// at a fixed honest-node false-reject budget.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace sybil::detect {

struct DefenseMetrics {
  /// Probability a random Sybil scores below a random honest node
  /// (1.0 = perfect separation, 0.5 = chance).
  double auc = 0.0;
  /// Fraction of Sybils rejected when the threshold is set so that at
  /// most `honest_budget` honest nodes are rejected.
  double sybil_rejection = 0.0;
  /// Fraction of honest nodes rejected at that threshold.
  double honest_rejection = 0.0;
};

/// Computes metrics from honesty scores. `is_sybil` marks ground truth.
/// `eval_nodes` restricts evaluation to a node subset (empty = all).
/// `honest_budget` is the tolerated honest false-rejection rate.
DefenseMetrics evaluate_scores(std::span<const double> scores,
                               const std::vector<bool>& is_sybil,
                               std::span<const graph::NodeId> eval_nodes = {},
                               double honest_budget = 0.05);

/// Metrics from binary accept decisions over an evaluated node sample.
DefenseMetrics evaluate_decisions(std::span<const graph::NodeId> nodes,
                                  const std::vector<bool>& accepted,
                                  const std::vector<bool>& is_sybil);

}  // namespace sybil::detect
