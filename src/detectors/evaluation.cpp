#include "detectors/evaluation.h"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.h"

namespace sybil::detect {

DefenseMetrics evaluate_scores(std::span<const double> scores,
                               const std::vector<bool>& is_sybil,
                               std::span<const graph::NodeId> eval_nodes,
                               double honest_budget) {
  if (scores.size() != is_sybil.size()) {
    throw std::invalid_argument("evaluate: size mismatch");
  }
  std::vector<double> honest, sybil;
  const auto consider = [&](graph::NodeId v) {
    (is_sybil[v] ? sybil : honest).push_back(scores[v]);
  };
  if (eval_nodes.empty()) {
    for (graph::NodeId v = 0; v < scores.size(); ++v) consider(v);
  } else {
    for (graph::NodeId v : eval_nodes) consider(v);
  }
  if (honest.empty() || sybil.empty()) {
    throw std::invalid_argument("evaluate: need both classes");
  }

  DefenseMetrics m;
  // AUC via rank statistic: merge-sort both samples.
  std::sort(honest.begin(), honest.end());
  std::sort(sybil.begin(), sybil.end());
  // For each sybil score, count honest scores strictly above it (+0.5
  // for ties) — P(sybil < honest). The sweep over the sybil sample is
  // sharded on the parallel layer; per-chunk partials are combined in
  // chunk order so the sum is bit-stable across thread counts.
  const double wins = core::parallel_reduce(
      sybil.size(), 0.0,
      [&](const core::ChunkRange& c) {
        double partial = 0.0;
        for (std::size_t i = c.begin; i < c.end; ++i) {
          const double s = sybil[i];
          const auto lo = std::lower_bound(honest.begin(), honest.end(), s);
          const auto hi = std::upper_bound(honest.begin(), honest.end(), s);
          partial += static_cast<double>(honest.end() - hi) +
                     0.5 * static_cast<double>(hi - lo);
        }
        return partial;
      },
      [](double acc, double p) { return acc + p; });
  m.auc = wins / (static_cast<double>(honest.size()) *
                  static_cast<double>(sybil.size()));

  // Threshold at the honest_budget quantile of honest scores: rejecting
  // everything below it rejects at most that fraction of honest nodes.
  const auto cut_rank = static_cast<std::size_t>(
      honest_budget * static_cast<double>(honest.size()));
  const double threshold = honest[std::min(cut_rank, honest.size() - 1)];
  const auto below = [threshold](std::span<const double> v) {
    return static_cast<double>(
               std::lower_bound(v.begin(), v.end(), threshold) - v.begin()) /
           static_cast<double>(v.size());
  };
  m.sybil_rejection = below(sybil);
  m.honest_rejection = below(honest);
  return m;
}

DefenseMetrics evaluate_decisions(std::span<const graph::NodeId> nodes,
                                  const std::vector<bool>& accepted,
                                  const std::vector<bool>& is_sybil) {
  if (nodes.size() != accepted.size()) {
    throw std::invalid_argument("evaluate: size mismatch");
  }
  std::uint64_t sybils = 0, sybils_rejected = 0;
  std::uint64_t honests = 0, honest_rejected = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (is_sybil[nodes[i]]) {
      ++sybils;
      sybils_rejected += accepted[i] ? 0 : 1;
    } else {
      ++honests;
      honest_rejected += accepted[i] ? 0 : 1;
    }
  }
  if (sybils == 0 || honests == 0) {
    throw std::invalid_argument("evaluate: need both classes");
  }
  DefenseMetrics m;
  m.sybil_rejection =
      static_cast<double>(sybils_rejected) / static_cast<double>(sybils);
  m.honest_rejection =
      static_cast<double>(honest_rejected) / static_cast<double>(honests);
  // Binary decisions: AUC equals balanced accuracy against rejection.
  m.auc = 0.5 * (m.sybil_rejection + (1.0 - m.honest_rejection));
  return m;
}

}  // namespace sybil::detect
