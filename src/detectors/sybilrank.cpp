#include "detectors/sybilrank.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"

namespace sybil::detect {

std::vector<double> sybilrank_scores(const graph::CsrGraph& g,
                                     const std::vector<graph::NodeId>& seeds,
                                     SybilRankParams params) {
  if (seeds.empty()) throw std::invalid_argument("sybilrank: no seeds");
  std::size_t iters = params.iterations;
  if (iters == 0) {
    iters = static_cast<std::size_t>(
        std::ceil(std::log2(std::max<double>(2.0, g.node_count()))));
  }
  std::vector<double> trust(g.node_count(), 0.0);
  const double share = 1.0 / static_cast<double>(seeds.size());
  for (graph::NodeId s : seeds) trust[s] += share;

  // Precompute 1/deg once; the iteration then pulls
  //   next[v] = sum_{u in N(v)} trust[u] / deg(u)
  // instead of scattering, so chunks write disjoint slots and the
  // per-node summation order is fixed (bit-stable for any thread count).
  std::vector<double> inv_degree(g.node_count(), 0.0);
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    if (g.degree(u) > 0) inv_degree[u] = 1.0 / static_cast<double>(g.degree(u));
  }

  std::vector<double> next(g.node_count());
  for (std::size_t it = 0; it < iters; ++it) {
    core::parallel_for(g.node_count(), [&](const core::ChunkRange& c) {
      for (std::size_t v = c.begin; v < c.end; ++v) {
        double sum = 0.0;
        for (graph::NodeId u : g.neighbors(static_cast<graph::NodeId>(v))) {
          sum += trust[u] * inv_degree[u];
        }
        next[v] = sum;
      }
    });
    trust.swap(next);
  }
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    if (g.degree(u) > 0) trust[u] /= static_cast<double>(g.degree(u));
  }
  return trust;
}

}  // namespace sybil::detect
