#include "detectors/sybilrank.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sybil::detect {

std::vector<double> sybilrank_scores(const graph::CsrGraph& g,
                                     const std::vector<graph::NodeId>& seeds,
                                     SybilRankParams params) {
  if (seeds.empty()) throw std::invalid_argument("sybilrank: no seeds");
  std::size_t iters = params.iterations;
  if (iters == 0) {
    iters = static_cast<std::size_t>(
        std::ceil(std::log2(std::max<double>(2.0, g.node_count()))));
  }
  std::vector<double> trust(g.node_count(), 0.0);
  const double share = 1.0 / static_cast<double>(seeds.size());
  for (graph::NodeId s : seeds) trust[s] += share;

  std::vector<double> next(g.node_count());
  for (std::size_t it = 0; it < iters; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (graph::NodeId u = 0; u < g.node_count(); ++u) {
      const auto d = static_cast<double>(g.degree(u));
      if (trust[u] == 0.0 || d == 0.0) continue;
      const double out = trust[u] / d;
      for (graph::NodeId v : g.neighbors(u)) next[v] += out;
    }
    trust.swap(next);
  }
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    if (g.degree(u) > 0) trust[u] /= static_cast<double>(g.degree(u));
  }
  return trust;
}

}  // namespace sybil::detect
