#include "detectors/defense.h"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/metrics/instrument.h"
#include "detectors/clustering_ranker.h"
#include "detectors/community.h"
#include "detectors/sumup.h"
#include "detectors/sybilguard.h"
#include "detectors/sybilinfer.h"
#include "detectors/sybilinfer_mcmc.h"
#include "detectors/sybillimit.h"
#include "detectors/sybilrank.h"

namespace sybil::detect {

std::string_view to_string(Determinism d) noexcept {
  switch (d) {
    case Determinism::kPure:
      return "pure";
    case Determinism::kSeeded:
      return "seeded";
  }
  return "?";
}

namespace {

struct Registry {
  std::mutex mutex;
  // Insertion-ordered so bench tables have a stable row order.
  std::vector<std::pair<std::string, DefenseRegistry::Factory>> entries;

  static Registry& instance() {
    static Registry r;
    r.ensure_builtins();
    return r;
  }

  void add(std::string name, DefenseRegistry::Factory factory) {
    std::lock_guard<std::mutex> lock(mutex);
    for (auto& [existing, f] : entries) {
      if (existing == name) {
        f = std::move(factory);
        return;
      }
    }
    entries.emplace_back(std::move(name), std::move(factory));
  }

  void ensure_builtins() {
    std::call_once(builtins_once, [this] { register_builtins(); });
  }

  void register_builtins();

  std::once_flag builtins_once;
};

SybilGuardParams guard_params(const DefenseTuning& t) {
  SybilGuardParams p;
  if (t.seed != 0) p.seed = t.seed;
  if (t.route_length != 0) p.route_length = t.route_length;
  if (t.max_routes_per_node != 0) p.max_routes_per_node = t.max_routes_per_node;
  return p;
}

SybilLimitParams limit_params(const DefenseTuning& t) {
  SybilLimitParams p;
  if (t.seed != 0) p.seed = t.seed;
  if (t.route_length != 0) p.route_length = t.route_length;
  if (t.r_factor != 0.0) p.r_factor = t.r_factor;
  return p;
}

SybilInferParams infer_params(const DefenseTuning& t) {
  SybilInferParams p;
  if (t.seed != 0) p.seed = t.seed;
  if (t.walks_per_seed != 0) p.walks_per_seed = t.walks_per_seed;
  return p;
}

SybilInferMcmcParams mcmc_params(const DefenseTuning& t) {
  SybilInferMcmcParams p;
  if (t.seed != 0) p.seed = t.seed;
  if (t.mcmc_burn_in_sweeps != 0) p.burn_in_sweeps = t.mcmc_burn_in_sweeps;
  if (t.mcmc_sample_sweeps != 0) p.sample_sweeps = t.mcmc_sample_sweeps;
  return p;
}

void Registry::register_builtins() {
  // Registration order is the paper's presentation order: the four
  // defenses the paper evaluates, then the post-paper baselines, then
  // the paper's own structural signal.
  add("sybilguard", [](const DefenseTuning& t) -> std::unique_ptr<SybilDefense> {
    return std::make_unique<SybilGuardDefense>(guard_params(t));
  });
  add("sybillimit", [](const DefenseTuning& t) -> std::unique_ptr<SybilDefense> {
    return std::make_unique<SybilLimitDefense>(limit_params(t));
  });
  add("sybilinfer", [](const DefenseTuning& t) -> std::unique_ptr<SybilDefense> {
    return std::make_unique<SybilInferDefense>(infer_params(t));
  });
  add("sybilinfer-mcmc",
      [](const DefenseTuning& t) -> std::unique_ptr<SybilDefense> {
        return std::make_unique<SybilInferMcmcDefense>(mcmc_params(t));
      });
  add("sumup", [](const DefenseTuning&) -> std::unique_ptr<SybilDefense> {
    return std::make_unique<SumUpDefense>();
  });
  add("sybilrank", [](const DefenseTuning&) -> std::unique_ptr<SybilDefense> {
    return std::make_unique<SybilRankDefense>();
  });
  add("community", [](const DefenseTuning&) -> std::unique_ptr<SybilDefense> {
    return std::make_unique<CommunityDefense>();
  });
  add("clustering", [](const DefenseTuning&) -> std::unique_ptr<SybilDefense> {
    return std::make_unique<ClusteringRankerDefense>();
  });
}

#if SYBIL_METRICS_COMPILED
/// Decorator the registry wraps every created defense in: score() runs
/// under a "defense.score.<name>" span and bumps call/node counters.
/// Observation only — scores pass through untouched, so the registry's
/// bit-identity golden tests hold with metrics on or off.
class InstrumentedDefense final : public SybilDefense {
 public:
  explicit InstrumentedDefense(std::unique_ptr<SybilDefense> inner)
      : inner_(std::move(inner)),
        span_name_("defense.score." + std::string(inner_->name())) {}

  std::string_view name() const noexcept override { return inner_->name(); }
  Determinism determinism() const noexcept override {
    return inner_->determinism();
  }

  std::vector<double> score(const graph::CsrGraph& g,
                            const DefenseContext& ctx) const override {
    SYBIL_METRIC_SCOPED_TIMER(span, span_name_);
    SYBIL_METRIC_COUNT("defense.score_calls", 1);
    SYBIL_METRIC_COUNT("defense.nodes_scored", g.node_count());
    return inner_->score(g, ctx);
  }

 private:
  std::unique_ptr<SybilDefense> inner_;
  std::string span_name_;
};
#endif  // SYBIL_METRICS_COMPILED

std::unique_ptr<SybilDefense> maybe_instrument(
    std::unique_ptr<SybilDefense> defense) {
#if SYBIL_METRICS_COMPILED
  return std::make_unique<InstrumentedDefense>(std::move(defense));
#else
  return defense;
#endif
}

}  // namespace

void DefenseRegistry::register_defense(std::string name, Factory factory) {
  Registry::instance().add(std::move(name), std::move(factory));
}

std::vector<std::string> DefenseRegistry::names() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> out;
  out.reserve(r.entries.size());
  for (const auto& [name, factory] : r.entries) out.push_back(name);
  return out;
}

bool DefenseRegistry::contains(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& [existing, factory] : r.entries) {
    if (existing == name) return true;
  }
  return false;
}

std::unique_ptr<SybilDefense> DefenseRegistry::create(
    std::string_view name, const DefenseTuning& tuning) {
  Factory factory;
  {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const auto& [existing, f] : r.entries) {
      if (existing == name) {
        factory = f;
        break;
      }
    }
  }
  if (!factory) {
    throw std::out_of_range("defense registry: unknown defense '" +
                            std::string(name) + "'");
  }
  return maybe_instrument(factory(tuning));
}

}  // namespace sybil::detect
