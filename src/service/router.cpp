#include "service/router.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "core/parallel.h"

namespace sybil::service {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMaxShards = 4096;

std::string shard_dir_name(std::uint32_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%04u", i);
  return buf;
}

void append_field(std::string& out, const char* key, std::uint64_t value) {
  if (out.back() != '{') out += ',';
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::uint32_t shard_of(graph::NodeId id, std::uint32_t shards) noexcept {
  if (shards <= 1) return 0;
  // splitmix64 finalizer: adjacent account ids land on unrelated shards,
  // so id-assignment patterns in a feed cannot stripe one shard.
  std::uint64_t x = static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % shards);
}

RoutePlan plan_route(const osn::Event& e, std::uint32_t shards) noexcept {
  RoutePlan plan;
  switch (e.type) {
    case osn::EventType::kAccountCreated:
      plan.count = 1;
      plan.target[0] = shard_of(e.actor, shards);
      break;
    case osn::EventType::kRequestAccepted:
    case osn::EventType::kFriendshipSeeded:
    case osn::EventType::kAccountBanned:
      // Edge-creating events update the clustering coefficient of
      // third-party watchers on any shard; ban bits gate every handler.
      // Both are global dependencies: broadcast.
      plan.broadcast = true;
      break;
    default: {
      // Two-party events (and unknown types, which each shard's
      // dead-letter path will classify): double-delivery to both
      // owners, collapsed to one copy on a shared shard.
      const std::uint32_t a = shard_of(e.actor, shards);
      const std::uint32_t b = shard_of(e.subject, shards);
      plan.target[0] = std::min(a, b);
      plan.target[1] = std::max(a, b);
      plan.count = a == b ? 1 : 2;
      break;
    }
  }
  return plan;
}

std::vector<std::uint32_t> route_shards(const osn::Event& e,
                                        std::uint32_t shards) {
  const RoutePlan plan = plan_route(e, shards);
  std::vector<std::uint32_t> out;
  if (plan.broadcast) {
    out.resize(shards);
    for (std::uint32_t i = 0; i < shards; ++i) out[i] = i;
  } else {
    out.assign(plan.target.begin(), plan.target.begin() + plan.count);
  }
  return out;
}

void ShardRouterOptions::validate() const {
  if (shards == 0 || shards > kMaxShards) {
    throw std::invalid_argument(
        "ShardRouterOptions::shards must be in [1, " +
        std::to_string(kMaxShards) + "]");
  }
  if (shard.crash_hook) {
    throw std::invalid_argument(
        "ShardRouterOptions::shard.crash_hook must be empty; use the "
        "shard-addressed ShardRouterOptions::crash_hook");
  }
  shard.validate();  // template itself must be coherent (dir etc.)
}

ShardRouter::ShardRouter(const ShardRouterOptions& options)
    : options_((options.validate(), options)) {
  shards_.reserve(options_.shards);
  for (std::uint32_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<ServiceSupervisor>(shard_options(i)));
  }
  frontier_.assign(options_.shards, 0);
  down_.assign(options_.shards, 0);
}

ShardRouter::~ShardRouter() = default;

ServiceOptions ShardRouter::shard_options(std::uint32_t i) const {
  ServiceOptions o = options_.shard;
  o.dir = options_.shard.dir + "/" + shard_dir_name(i);
  o.shard_id = i;
  o.shard_count = options_.shards;
  if (options_.shard_vfs) o.vfs = options_.shard_vfs(i);
  if (options_.crash_hook) {
    const ShardCrashHook hook = options_.crash_hook;
    o.crash_hook = [i, hook](CrashPoint p) { hook(i, p); };
  }
  return o;
}

RouterRecoveryReport ShardRouter::start() {
  if (started_) throw std::logic_error("ShardRouter::start called twice");
  // A root holding state for shards this router was not configured with
  // means the partition count changed: hash ownership moved, and every
  // shard would silently replay the wrong slice. Fail before any I/O.
  if (fs::exists(options_.shard.dir)) {
    for (const auto& entry : fs::directory_iterator(options_.shard.dir)) {
      const std::string name = entry.path().filename().string();
      if (name.size() != 10 || name.rfind("shard-", 0) != 0) continue;
      const std::string digits = name.substr(6);
      if (digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      if (std::stoul(digits) >= options_.shards) {
        throw std::runtime_error(
            "service root " + options_.shard.dir + " contains " + name +
            " but the router is configured with " +
            std::to_string(options_.shards) +
            " shards; resharding requires a migration, not a restart");
      }
    }
  }
  RouterRecoveryReport report;
  report.shards.reserve(shards_.size());
  for (std::uint32_t i = 0; i < shards_.size(); ++i) {
    report.shards.push_back(shards_[i]->start());
    frontier_[i] = report.shards.back().next_seq;
  }
  report.next_seq = *std::min_element(frontier_.begin(), frontier_.end());
  started_ = true;
  return report;
}

void ShardRouter::deliver(std::uint32_t i, const osn::Event& e,
                          std::uint64_t seq, RouteResult& result) {
  if (down_[i]) {
    // Owed, not routed: the dead shard's frontier entry is stale, so
    // neither leg of the routed == delivered + suppressed identity can
    // honestly claim this copy. The post-restart re-drive delivers it.
    ++copies_skipped_down_;
    ++result.skipped_down;
    return;
  }
  if (seq < frontier_[i]) {
    // Already durable on this shard from a previous process lifetime:
    // redelivery is the upstream at-least-once contract doing its job.
    ++copies_routed_;
    ++result.routed;
    ++copies_suppressed_;
    ++result.suppressed;
    return;
  }
  if (in_batch_ && !group_open_[i]) {
    // Lazy group open: a shard that only sees suppressed copies never
    // opens (or pays the commit of) a group.
    shards_[i]->begin_offer_batch();
    group_open_[i] = 1;
  }
  // Account the copy only after the shard's offer returns: a delivery
  // that dies mid-WAL-append never happened (the resume re-drives it),
  // so the copies identity survives a crash unwinding through here.
  const bool admitted = shards_[i]->offer(e, seq);
  frontier_[i] = seq + 1;
  ++copies_routed_;
  ++result.routed;
  ++copies_delivered_;
  ++result.delivered;
  if (admitted) ++result.admitted;
}

void ShardRouter::route_one(const osn::Event& e, std::uint64_t seq,
                            RouteResult& result) {
  ++offers_;
  const auto n = static_cast<std::uint32_t>(shards_.size());
  const RoutePlan plan = plan_route(e, n);
  if (plan.broadcast) {
    for (std::uint32_t i = 0; i < n; ++i) deliver(i, e, seq, result);
  } else {
    for (std::uint32_t t = 0; t < plan.count; ++t) {
      deliver(plan.target[t], e, seq, result);
    }
  }
}

RouteResult ShardRouter::offer(const osn::Event& e, std::uint64_t seq) {
  if (seq >= kExplicitSeqLimit) {
    throw std::invalid_argument(
        "ShardRouter::offer requires an explicit global seq (auto seqs "
        "cannot define a redelivery frontier)");
  }
  RouteResult result;
  route_one(e, seq, result);
  return result;
}

RouteResult ShardRouter::offer_batch(std::span<const osn::Event> events,
                                     std::uint64_t base_seq) {
  if (base_seq + events.size() > kExplicitSeqLimit) {
    throw std::invalid_argument(
        "ShardRouter::offer_batch requires explicit global seqs (auto "
        "seqs cannot define a redelivery frontier)");
  }
  RouteResult result;
  if (group_open_.size() != shards_.size()) {
    group_open_.assign(shards_.size(), 0);
  }
  in_batch_ = true;
  try {
    for (std::size_t i = 0; i < events.size(); ++i) {
      route_one(events[i], base_seq + i, result);
    }
    in_batch_ = false;
    // Commit groups in ascending shard order: one fsync per touched
    // shard, and a deterministic sequence of kWalGroupCommit crash
    // points for the kill-at-every-boundary sweeps.
    for (std::uint32_t i = 0; i < shards_.size(); ++i) {
      if (group_open_[i]) {
        group_open_[i] = 0;
        if (shards_[i]) shards_[i]->commit_offer_batch();
      }
    }
  } catch (...) {
    // A crash (injected or real) unwinding mid-batch leaves the open
    // groups unacknowledged; drop them without committing — exactly
    // the durability state recovery handles — so surviving shards go
    // back to per-record fsync until the stream is re-driven.
    in_batch_ = false;
    for (std::uint32_t i = 0; i < shards_.size(); ++i) {
      if (group_open_[i]) {
        group_open_[i] = 0;
        if (shards_[i]) shards_[i]->abort_offer_batch();
      }
    }
    throw;
  }
  return result;
}

std::size_t ShardRouter::pump(std::size_t max_per_shard) {
  if (shards_.size() == 1 && shards_[0]) return shards_[0]->pump(max_per_shard);
  // One fixed lane (chunk) per shard: disjoint supervisor state, no
  // durability boundaries crossed, atomic metrics — so the drain is
  // identical to the serial loop for any SYBIL_THREADS.
  std::vector<std::size_t> pumped(shards_.size(), 0);
  core::parallel_for(
      shards_.size(),
      [&](const core::ChunkRange& c) {
        for (std::size_t i = c.begin; i < c.end; ++i) {
          if (shards_[i]) pumped[i] = shards_[i]->pump(max_per_shard);
        }
      },
      /*grain=*/1);
  std::size_t n = 0;
  for (std::size_t p : pumped) n += p;
  return n;
}

std::size_t ShardRouter::pump_through(std::uint64_t seq_bound) {
  if (shards_.size() == 1 && shards_[0]) {
    return shards_[0]->pump_through(seq_bound);
  }
  std::vector<std::size_t> pumped(shards_.size(), 0);
  core::parallel_for(
      shards_.size(),
      [&](const core::ChunkRange& c) {
        for (std::size_t i = c.begin; i < c.end; ++i) {
          if (shards_[i]) pumped[i] = shards_[i]->pump_through(seq_bound);
        }
      },
      /*grain=*/1);
  std::size_t n = 0;
  for (std::size_t p : pumped) n += p;
  return n;
}

std::size_t ShardRouter::sweep_flags(graph::Time now) {
  if (shards_.size() == 1 && shards_[0]) return shards_[0]->sweep_flags(now);
  std::vector<std::size_t> flagged(shards_.size(), 0);
  core::parallel_for(
      shards_.size(),
      [&](const core::ChunkRange& c) {
        for (std::size_t i = c.begin; i < c.end; ++i) {
          if (shards_[i]) flagged[i] = shards_[i]->sweep_flags(now);
        }
      },
      /*grain=*/1);
  std::size_t n = 0;
  for (std::size_t f : flagged) n += f;
  return n;
}

void ShardRouter::checkpoint_now() {
  for (auto& s : shards_) {
    if (s) s->checkpoint_now();
  }
}

void ShardRouter::flush(bool checkpoint) {
  for (auto& s : shards_) {
    if (s) s->flush(checkpoint);
  }
}

core::FlagBatch ShardRouter::take_flagged() {
  core::FlagBatch merged;
  const auto n = static_cast<std::uint32_t>(shards_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!shards_[i]) continue;
    core::FlagBatch batch = shards_[i]->take_flagged();
    for (const core::FlagRecord& r : batch.records) {
      // Non-owner replicas see only the slice of an account's history
      // that was routed to them; their flags are partial-evidence noise
      // by design. The owner shard saw everything — keep its verdicts.
      if (shard_of(r.account, n) == i) merged.records.push_back(r);
    }
  }
  std::sort(merged.records.begin(), merged.records.end(),
            [](const core::FlagRecord& a, const core::FlagRecord& b) {
              if (a.flagged_at != b.flagged_at) {
                return a.flagged_at < b.flagged_at;
              }
              return a.account < b.account;
            });
  return merged;
}

void ShardRouter::mark_down(std::uint32_t i) {
  if (i >= shards_.size()) {
    throw std::out_of_range("ShardRouter::mark_down: no such shard");
  }
  if (down_[i]) {
    throw std::logic_error("ShardRouter::mark_down: shard already down");
  }
  // The supervisor's destructor closes the WAL FILE*, flushing any
  // buffered appends — the same bytes a dead host's page cache would
  // have drained. An open batch group dies unacknowledged with it
  // (other shards' groups are untouched).
  if (i < group_open_.size()) group_open_[i] = 0;
  shards_[i].reset();
  down_[i] = 1;
}

bool ShardRouter::is_down(std::uint32_t i) const {
  if (i >= shards_.size()) {
    throw std::out_of_range("ShardRouter::is_down: no such shard");
  }
  return down_[i] != 0;
}

std::uint32_t ShardRouter::down_count() const noexcept {
  std::uint32_t n = 0;
  for (unsigned char d : down_) n += d;
  return n;
}

ServiceSupervisor& ShardRouter::shard(std::uint32_t i) {
  if (i < shards_.size() && !shards_[i]) {
    throw std::logic_error("ShardRouter::shard: shard is down");
  }
  return *shards_.at(i);
}

const ServiceSupervisor& ShardRouter::shard(std::uint32_t i) const {
  if (i < shards_.size() && !shards_[i]) {
    throw std::logic_error("ShardRouter::shard: shard is down");
  }
  return *shards_.at(i);
}

RecoveryReport ShardRouter::restart_shard(std::uint32_t i) {
  if (i >= shards_.size()) {
    throw std::out_of_range("ShardRouter::restart_shard: no such shard");
  }
  shards_[i] = std::make_unique<ServiceSupervisor>(shard_options(i));
  const RecoveryReport report = shards_[i]->start();
  frontier_[i] = report.next_seq;
  down_[i] = 0;
  return report;
}

std::uint64_t ShardRouter::next_seq() const noexcept {
  return *std::min_element(frontier_.begin(), frontier_.end());
}

bool ShardRouter::accounting_ok() const noexcept {
  if (copies_routed_ != copies_delivered_ + copies_suppressed_) return false;
  for (std::uint32_t i = 0; i < shards_.size(); ++i) {
    // A down shard has no live state to check; its durable state is
    // re-audited by restart_shard's recovery. The live fleet's
    // identities must hold at every instant regardless.
    if (!shards_[i]) continue;
    if (!shards_[i]->accounting_ok()) return false;
    if (frontier_[i] != shards_[i]->next_seq()) return false;
  }
  return true;
}

std::string ShardRouter::stats_json() const {
  std::uint64_t offered = 0, admitted = 0, pumped = 0;
  std::uint64_t shed_low = 0, shed_sweep = 0, shed_cap = 0;
  std::uint64_t queued = 0, applied = 0, deduped = 0;
  std::uint64_t deadlettered = 0, dl_dropped = 0, buffered = 0;
  std::uint64_t banned_party = 0, flagged = 0, sweeps = 0, sweep_flagged = 0;
  std::uint64_t by_reason[core::kStreamErrorCodeCount] = {};
  for (const auto& s : shards_) {
    if (!s) continue;  // down shard: excluded from aggregates
    offered += s->offered();
    admitted += s->admitted();
    pumped += s->pumped();
    shed_low += s->shed_low_priority();
    shed_sweep += s->shed_sweep_only();
    shed_cap += s->shed_capacity();
    queued += s->queue_depth();
    applied += s->detector().applied_total();
    deduped += s->detector().deduped_total();
    deadlettered += s->detector().deadletter_total();
    dl_dropped += s->detector().dead_letters_dropped();
    buffered += s->detector().buffered();
    banned_party += s->detector().banned_party_total();
    flagged += s->detector().flagged_total();
    sweeps += s->sweeps();
    sweep_flagged += s->sweep_flagged();
    for (std::size_t r = 0; r < core::kStreamErrorCodeCount; ++r) {
      by_reason[r] +=
          s->detector().deadletter_by_reason(static_cast<core::StreamErrorCode>(r));
    }
  }

  std::string out = "{";
  append_field(out, "shards", shards_.size());
  append_field(out, "offers", offers_);
  out += ",\"copies\":{";
  append_field(out, "routed", copies_routed_);
  append_field(out, "delivered", copies_delivered_);
  append_field(out, "suppressed", copies_suppressed_);
  if (copies_skipped_down_ > 0) {
    append_field(out, "skipped_down", copies_skipped_down_);
  }
  out += '}';
  // Aggregate identity: counts *delivered copies*, so it is the exact
  // sum of the per-shard identities (cross-shard fanout is visible in
  // "copies" above, never silently folded away).
  out += ",\"aggregate\":{";
  append_field(out, "offered", offered);
  append_field(out, "admitted", admitted);
  out += ",\"shed\":{";
  append_field(out, "low_priority", shed_low);
  append_field(out, "sweep_only", shed_sweep);
  append_field(out, "capacity", shed_cap);
  append_field(out, "total", shed_low + shed_sweep + shed_cap);
  out += '}';
  append_field(out, "queued", queued);
  append_field(out, "pumped", pumped);
  append_field(out, "applied", applied);
  append_field(out, "deduped", deduped);
  out += ",\"deadlettered\":{";
  append_field(out, "total", deadlettered);
  for (std::size_t r = 0; r < core::kStreamErrorCodeCount; ++r) {
    append_field(out, core::to_string(static_cast<core::StreamErrorCode>(r)),
                 by_reason[r]);
  }
  append_field(out, "dropped", dl_dropped);
  out += '}';
  append_field(out, "buffered", buffered);
  append_field(out, "banned_party", banned_party);
  append_field(out, "flagged_total", flagged);
  append_field(out, "sweeps", sweeps);
  append_field(out, "sweep_flagged", sweep_flagged);
  out += '}';
  out += ",\"per_shard\":[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) out += ',';
    out += shards_[i] ? shards_[i]->stats_json() : "{\"down\":true}";
  }
  out += "]}";
  return out;
}

}  // namespace sybil::service
