#include "service/workload.h"

#include <limits>
#include <stdexcept>

#include "stats/rng.h"

namespace sybil::service {

namespace {

using osn::Event;
using osn::EventType;

/// Bounded pool of outstanding (from, to) requests that accept/reject
/// events resolve. A ring so memory stays O(1) at any stream length.
class PendingRing {
 public:
  bool empty() const noexcept { return size_ == 0; }

  void push(graph::NodeId from, graph::NodeId to) noexcept {
    slots_[head_] = {from, to};
    head_ = (head_ + 1) % kCapacity;
    if (size_ < kCapacity) ++size_;
  }

  /// Removes and returns a pseudo-uniformly chosen entry.
  std::pair<graph::NodeId, graph::NodeId> pop(stats::Rng& rng) noexcept {
    const std::size_t pick =
        (head_ + kCapacity - 1 - rng.uniform_index(size_)) % kCapacity;
    const auto out = slots_[pick];
    // Swap the victim with the newest entry, then shrink.
    const std::size_t newest = (head_ + kCapacity - 1) % kCapacity;
    slots_[pick] = slots_[newest];
    head_ = newest;
    --size_;
    return out;
  }

 private:
  static constexpr std::size_t kCapacity = 1024;
  std::pair<graph::NodeId, graph::NodeId> slots_[kCapacity];
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace

void WorkloadOptions::validate() const {
  if (accounts < 16) {
    throw std::invalid_argument("WorkloadOptions::accounts must be >= 16");
  }
  if (events == 0) {
    throw std::invalid_argument("WorkloadOptions::events must be >= 1");
  }
  if (!(hours > 0.0)) {
    throw std::invalid_argument("WorkloadOptions::hours must be > 0");
  }
  if (burst_senders == 0 || burst_senders >= accounts / 2) {
    throw std::invalid_argument(
        "WorkloadOptions::burst_senders must be in [1, accounts/2)");
  }
  const double mix = accept_fraction + reject_fraction +
                     seed_friend_fraction + created_fraction + ban_fraction +
                     malformed_fraction;
  if (mix < 0.0 || mix > 0.9) {
    throw std::invalid_argument(
        "WorkloadOptions: event-mix fractions must sum to <= 0.9 "
        "(the remainder is organic request traffic)");
  }
}

std::vector<osn::Event> synthetic_workload(const WorkloadOptions& o) {
  o.validate();
  stats::Rng rng(o.seed);
  PendingRing pending;
  std::vector<Event> out;
  out.reserve(o.events);

  // Cumulative thresholds over one uniform draw per event.
  const double t_created = o.created_fraction;
  const double t_ban = t_created + o.ban_fraction;
  const double t_accept = t_ban + o.accept_fraction;
  const double t_reject = t_accept + o.reject_fraction;
  const double t_seed = t_reject + o.seed_friend_fraction;
  const double t_malformed = t_seed + o.malformed_fraction;

  // Organic accounts live above the burst-sender id range; bans only
  // ever hit organic accounts so the burst signature keeps building.
  const auto organic = [&]() -> graph::NodeId {
    return o.burst_senders + 1 +
           static_cast<graph::NodeId>(
               rng.uniform_index(o.accounts - o.burst_senders - 1));
  };

  std::uint64_t malformed_shape = 0;
  for (std::uint64_t i = 0; i < o.events; ++i) {
    const double t = o.hours * static_cast<double>(i) /
                     static_cast<double>(o.events);
    const double u = rng.uniform();
    if (u < t_created) {
      const graph::NodeId a = organic();
      out.push_back({EventType::kAccountCreated, a, a, t});
    } else if (u < t_ban) {
      const graph::NodeId a = organic();
      out.push_back({EventType::kAccountBanned, a, a, t});
    } else if (u < t_accept && !pending.empty()) {
      const auto [from, to] = pending.pop(rng);
      // Dispatch convention: the accepter acts, the sender is subject.
      out.push_back({EventType::kRequestAccepted, to, from, t});
    } else if (u < t_reject && !pending.empty()) {
      const auto [from, to] = pending.pop(rng);
      out.push_back({EventType::kRequestRejected, to, from, t});
    } else if (u < t_seed) {
      const graph::NodeId a = organic();
      graph::NodeId b = organic();
      while (b == a) b = organic();
      out.push_back({EventType::kFriendshipSeeded, a, b, t});
    } else if (u < t_malformed) {
      const graph::NodeId a = organic();
      graph::NodeId b = organic();
      while (b == a) b = organic();
      switch (malformed_shape++ % 4) {
        case 0:
          out.push_back({static_cast<EventType>(0xEE), a, b, t});
          break;
        case 1:
          out.push_back({EventType::kRequestSent, a, a, t});
          break;
        case 2:
          out.push_back({EventType::kRequestSent, a, b,
                         std::numeric_limits<double>::quiet_NaN()});
          break;
        default:
          out.push_back({EventType::kRequestSent,
                         std::numeric_limits<graph::NodeId>::max() - 7, b, t});
          break;
      }
    } else {
      // A friend request: burst senders take burst_fraction of them.
      graph::NodeId from;
      if (rng.bernoulli(o.burst_fraction)) {
        from = 1 + static_cast<graph::NodeId>(
                       rng.uniform_index(o.burst_senders));
      } else {
        from = organic();
      }
      graph::NodeId to = organic();
      while (to == from) to = organic();
      out.push_back({EventType::kRequestSent, from, to, t});
      pending.push(from, to);
    }
  }
  return out;
}

}  // namespace sybil::service
