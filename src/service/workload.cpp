#include "service/workload.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "stats/rng.h"

namespace sybil::service {

namespace {

using osn::Event;
using osn::EventType;

/// Bounded pool of outstanding (from, to) requests that accept/reject
/// events resolve. A ring so memory stays O(1) at any stream length.
class PendingRing {
 public:
  bool empty() const noexcept { return size_ == 0; }

  void push(graph::NodeId from, graph::NodeId to) noexcept {
    slots_[head_] = {from, to};
    head_ = (head_ + 1) % kCapacity;
    if (size_ < kCapacity) ++size_;
  }

  /// Removes and returns a pseudo-uniformly chosen entry.
  std::pair<graph::NodeId, graph::NodeId> pop(stats::Rng& rng) noexcept {
    const std::size_t pick =
        (head_ + kCapacity - 1 - rng.uniform_index(size_)) % kCapacity;
    const auto out = slots_[pick];
    // Swap the victim with the newest entry, then shrink.
    const std::size_t newest = (head_ + kCapacity - 1) % kCapacity;
    slots_[pick] = slots_[newest];
    head_ = newest;
    --size_;
    return out;
  }

 private:
  static constexpr std::size_t kCapacity = 1024;
  std::pair<graph::NodeId, graph::NodeId> slots_[kCapacity];
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

constexpr double kTwoPi = 6.283185307179586476925286766559;

void validate_windows(const std::vector<TrafficWindow>& windows,
                      double hours, const char* field) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const TrafficWindow& w = windows[i];
    const std::string name =
        std::string("WorkloadOptions::") + field + "[" + std::to_string(i) + "]";
    if (!(w.start_hour >= 0.0) || !std::isfinite(w.start_hour)) {
      throw std::invalid_argument(name + ".start_hour must be >= 0");
    }
    if (!(w.span_hours > 0.0) || !std::isfinite(w.span_hours)) {
      throw std::invalid_argument(name + ".span_hours must be > 0");
    }
    if (w.start_hour + w.span_hours > hours) {
      throw std::invalid_argument(name + " must end within `hours`");
    }
    if (!(w.intensity >= 0.0) || !std::isfinite(w.intensity)) {
      throw std::invalid_argument(name + ".intensity must be >= 0 and finite");
    }
  }
}

/// Cumulative expected events (unnormalized) on [0, t] under the shaped
/// rate 1 + A*sin(2*pi*t/P) + sum of active flash-crowd intensities.
/// Strictly increasing for A < 1, which is what validate() guarantees.
double shaped_cumulative(const WorkloadOptions& o, double t) {
  double sum = t;
  if (o.diurnal_amplitude != 0.0) {
    const double p = o.diurnal_period_hours;
    sum += o.diurnal_amplitude * (p / kTwoPi) * (1.0 - std::cos(kTwoPi * t / p));
  }
  for (const TrafficWindow& w : o.flash_crowds) {
    const double lo = w.start_hour;
    const double hi = w.start_hour + w.span_hours;
    if (t > lo) sum += w.intensity * (std::min(t, hi) - lo);
  }
  return sum;
}

/// Inverse of shaped_cumulative by bisection: deterministic, monotone
/// in `target`, and exact enough (64 halvings of [0, hours]) that equal
/// targets give bit-equal times on every platform.
double shaped_time(const WorkloadOptions& o, double target) {
  double lo = 0.0, hi = o.hours;
  for (int iter = 0; iter < 64 && lo < hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (shaped_cumulative(o, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

void WorkloadOptions::validate() const {
  if (accounts < 16) {
    throw std::invalid_argument("WorkloadOptions::accounts must be >= 16");
  }
  if (events == 0) {
    throw std::invalid_argument("WorkloadOptions::events must be >= 1");
  }
  if (!(hours > 0.0)) {
    throw std::invalid_argument("WorkloadOptions::hours must be > 0");
  }
  if (burst_senders == 0 || burst_senders >= accounts / 2) {
    throw std::invalid_argument(
        "WorkloadOptions::burst_senders must be in [1, accounts/2)");
  }
  const double mix = accept_fraction + reject_fraction +
                     seed_friend_fraction + created_fraction + ban_fraction +
                     malformed_fraction;
  if (mix < 0.0 || mix > 0.9) {
    throw std::invalid_argument(
        "WorkloadOptions: event-mix fractions must sum to <= 0.9 "
        "(the remainder is organic request traffic)");
  }
  if (!(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0)) {
    throw std::invalid_argument(
        "WorkloadOptions::diurnal_amplitude must be in [0, 1)");
  }
  if (!(diurnal_period_hours > 0.0) || !std::isfinite(diurnal_period_hours)) {
    throw std::invalid_argument(
        "WorkloadOptions::diurnal_period_hours must be > 0 and finite");
  }
  validate_windows(flash_crowds, hours, "flash_crowds");
  validate_windows(registration_storms, hours, "registration_storms");
  // Conservative bound: even with every storm active at once, the mix
  // must leave organic request mass (the generator's remainder branch).
  double storm_boost = 0.0;
  for (const TrafficWindow& w : registration_storms) storm_boost += w.intensity;
  if (mix + storm_boost > 0.9) {
    throw std::invalid_argument(
        "WorkloadOptions: registration_storms intensities plus the "
        "event-mix fractions must sum to <= 0.9");
  }
}

std::vector<osn::Event> synthetic_workload(const WorkloadOptions& o) {
  o.validate();
  stats::Rng rng(o.seed);
  PendingRing pending;
  std::vector<Event> out;
  out.reserve(o.events);

  // Cumulative thresholds over one uniform draw per event.
  const double t_created = o.created_fraction;
  const double t_ban = t_created + o.ban_fraction;
  const double t_accept = t_ban + o.accept_fraction;
  const double t_reject = t_accept + o.reject_fraction;
  const double t_seed = t_reject + o.seed_friend_fraction;
  const double t_malformed = t_seed + o.malformed_fraction;

  // Organic accounts live above the burst-sender id range; bans only
  // ever hit organic accounts so the burst signature keeps building.
  const auto organic = [&]() -> graph::NodeId {
    return o.burst_senders + 1 +
           static_cast<graph::NodeId>(
               rng.uniform_index(o.accounts - o.burst_senders - 1));
  };

  // Traffic shape. `shaped` guards the timeline: with the default flat
  // shape the legacy expression below is used verbatim, keeping old
  // streams byte-identical (tested). Storms only move probability mass
  // between two branches of the same single draw, so they leave the
  // timeline and the RNG draw sequence untouched.
  const bool shaped = o.diurnal_amplitude != 0.0 || !o.flash_crowds.empty();
  const double total_mass = shaped ? shaped_cumulative(o, o.hours) : 0.0;
  const bool storms = !o.registration_storms.empty();

  std::uint64_t malformed_shape = 0;
  for (std::uint64_t i = 0; i < o.events; ++i) {
    const double t =
        shaped ? shaped_time(o, total_mass * static_cast<double>(i) /
                                    static_cast<double>(o.events))
               : o.hours * static_cast<double>(i) /
                     static_cast<double>(o.events);
    double created_upper = t_created;
    if (storms) {
      for (const TrafficWindow& w : o.registration_storms) {
        if (t >= w.start_hour && t < w.start_hour + w.span_hours) {
          created_upper += w.intensity;
        }
      }
    }
    const double storm_shift = created_upper - t_created;
    const double u = rng.uniform();
    if (u < created_upper) {
      const graph::NodeId a = organic();
      out.push_back({EventType::kAccountCreated, a, a, t});
    } else if (u < t_ban + storm_shift) {
      const graph::NodeId a = organic();
      out.push_back({EventType::kAccountBanned, a, a, t});
    } else if (u < t_accept + storm_shift && !pending.empty()) {
      const auto [from, to] = pending.pop(rng);
      // Dispatch convention: the accepter acts, the sender is subject.
      out.push_back({EventType::kRequestAccepted, to, from, t});
    } else if (u < t_reject + storm_shift && !pending.empty()) {
      const auto [from, to] = pending.pop(rng);
      out.push_back({EventType::kRequestRejected, to, from, t});
    } else if (u < t_seed + storm_shift) {
      const graph::NodeId a = organic();
      graph::NodeId b = organic();
      while (b == a) b = organic();
      out.push_back({EventType::kFriendshipSeeded, a, b, t});
    } else if (u < t_malformed + storm_shift) {
      const graph::NodeId a = organic();
      graph::NodeId b = organic();
      while (b == a) b = organic();
      switch (malformed_shape++ % 4) {
        case 0:
          out.push_back({static_cast<EventType>(0xEE), a, b, t});
          break;
        case 1:
          out.push_back({EventType::kRequestSent, a, a, t});
          break;
        case 2:
          out.push_back({EventType::kRequestSent, a, b,
                         std::numeric_limits<double>::quiet_NaN()});
          break;
        default:
          out.push_back({EventType::kRequestSent,
                         std::numeric_limits<graph::NodeId>::max() - 7, b, t});
          break;
      }
    } else {
      // A friend request: burst senders take burst_fraction of them.
      graph::NodeId from;
      if (rng.bernoulli(o.burst_fraction)) {
        from = 1 + static_cast<graph::NodeId>(
                       rng.uniform_index(o.burst_senders));
      } else {
        from = organic();
      }
      graph::NodeId to = organic();
      while (to == from) to = organic();
      out.push_back({EventType::kRequestSent, from, to, t});
      pending.push(from, to);
    }
  }
  return out;
}

}  // namespace sybil::service
