// Operator CLI for the sharded detection service.
//
// Drives a deterministic synthetic population (service/workload.h)
// through a ShardRouter and reports the router accounting JSON plus a
// canonical digest of the owner-merged FlagBatch. With --verify-single
// it runs the same stream through N shards and through 1 shard and
// fails unless the merged FlagBatches are byte-identical — the sharded
// architecture's acceptance check, executable at any population size:
//
//   SYBIL_IO_FSYNC=0 sybil_service --shards 8 --accounts 5000000
//     --events 6000000 --fsync never --checkpoint-every 0
//     --no-final-checkpoint --verify-single   (one line)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "chaos/manifest.h"
#include "chaos/orchestrator.h"
#include "core/detector.h"
#include "service/router.h"
#include "service/workload.h"

namespace {

using namespace sybil;

constexpr const char* kUsage = R"(usage: sybil_service [options]

Sharded detection service driver (synthetic workload).

options:
  --shards N            shard count (default 1)
  --dir PATH            state root (default: ./sybil-service-state)
  --accounts M          population size (default 2000)
  --events E            stream length (default 20000)
  --seed S              workload seed (default 1)
  --hours H             stream span in simulated hours (default 96)
  --burst-senders K     sybil-like hot senders (default 8)
  --fsync MODE          WAL durability: always|rotate|never (default always)
  --segment-records R   WAL records per segment (default 4096)
  --checkpoint-every C  checkpoint cadence in WAL records, 0 = manual only
                        (default 10000)
  --no-final-checkpoint skip the checkpoint inside the final flush
  --verify-single       run N shards then 1 shard; fail unless the merged
                        FlagBatches are byte-identical
  --scenario PATH       run a chaos scenario manifest (docs/FORMATS.md §9)
                        instead of the plain workload: prints a per-phase
                        report and, when the manifest is identity-expected,
                        verifies the final flags against an undisturbed run
  --stats               print the full router stats JSON
  --help                this text

Checkpoint fsync honours the SYBIL_IO_FSYNC env knob; set it to 0 for
throwaway state directories.
)";

struct CliOptions {
  std::uint32_t shards = 1;
  std::string dir = "./sybil-service-state";
  service::WorkloadOptions workload{};
  service::WalFsync fsync = service::WalFsync::kEveryAppend;
  std::uint64_t segment_records = 4096;
  std::uint64_t checkpoint_every = 10000;
  bool final_checkpoint = true;
  bool verify_single = false;
  bool stats = false;
};

/// Removes `flag` (with `values` following operands) from argv; returns
/// the operands or empty when the flag is absent.
std::vector<std::string> take_flag(int& argc, char** argv, const char* flag,
                                   int values) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    if (i + values >= argc) {
      std::fprintf(stderr, "sybil_service: %s needs %d value(s)\n", flag,
                   values);
      std::exit(2);
    }
    std::vector<std::string> out;
    for (int v = 1; v <= values; ++v) out.emplace_back(argv[i + v]);
    for (int j = i; j + values + 1 <= argc; ++j) argv[j] = argv[j + values + 1];
    argc -= values + 1;
    return out.empty() ? std::vector<std::string>{""} : out;
  }
  return {};
}

/// Threshold rule the synthetic burst senders are designed to cross
/// (the tests use the same relaxation; production rules come from
/// config, not from this driver).
core::DetectorOptions detector_options() {
  core::DetectorOptions d;
  d.rule.invite_rate_min = 4.0;
  d.rule.outgoing_accept_max = 0.5;
  d.rule.min_requests = 5;
  return d;
}

service::ShardRouterOptions router_options(const CliOptions& cli,
                                           std::uint32_t shards,
                                           const std::string& dir) {
  service::ShardRouterOptions o;
  o.shards = shards;
  o.shard.detector = detector_options();
  o.shard.dir = dir;
  o.shard.wal_fsync = cli.fsync;
  o.shard.wal_segment_records = cli.segment_records;
  o.shard.checkpoint_every = cli.checkpoint_every;
  return o;
}

/// FNV-1a over the canonical byte layout of a merged FlagBatch, so two
/// runs (any shard count, any machine) can be compared from logs alone.
std::uint64_t flag_digest(const core::FlagBatch& batch) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ull;
    }
  };
  for (const core::FlagRecord& r : batch.records) {
    mix(&r.account, sizeof(r.account));
    mix(&r.flagged_at, sizeof(r.flagged_at));
    const auto f = r.features.as_vector();
    mix(f.data(), f.size() * sizeof(double));
  }
  return h;
}

struct RunResult {
  core::FlagBatch flags;
  std::string stats;
};

RunResult run_once(const CliOptions& cli,
                   const std::vector<osn::Event>& events,
                   std::uint32_t shards, const std::string& dir) {
  service::ShardRouter router(router_options(cli, shards, dir));
  router.start();
  // Same trajectory as offering one event at a time with a pump every
  // 1024, but each batch group-commits the per-shard WAL appends (one
  // fsync per touched shard per batch) and the pump drains all shards
  // in parallel.
  const std::span<const osn::Event> all(events);
  for (std::uint64_t base = 0; base < all.size(); base += 1024) {
    const std::size_t n = std::min<std::size_t>(1024, all.size() - base);
    router.offer_batch(all.subspan(base, n), base);
    router.pump();
  }
  router.flush(cli.final_checkpoint);
  router.sweep_flags(cli.workload.hours + 1.0);
  if (!router.accounting_ok()) {
    std::fprintf(stderr, "sybil_service: accounting identity violated\n");
    std::exit(1);
  }
  RunResult result;
  result.flags = router.take_flagged();
  result.stats = router.stats_json();
  return result;
}

/// `--scenario` mode: run the manifest, print the per-phase report, and
/// (when the manifest promises it) verify byte-identity against the
/// undisturbed control run. Returns the process exit code.
int run_scenario(const std::string& path, const std::string& dir,
                 bool print_stats) {
  chaos::ScenarioManifest manifest;
  try {
    manifest = chaos::load_manifest(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sybil_service: %s\n", e.what());
    return 2;
  }
  const bool identity = manifest.identity_expected();
  std::printf("scenario: %s  (events=%llu shards=%u phases=%zu faults=%zu "
              "kills=%zu disk=%zu identity=%s)\n",
              manifest.name.c_str(),
              static_cast<unsigned long long>(manifest.workload.events),
              manifest.shards, manifest.phases.size(),
              manifest.fault_windows.size(), manifest.kills.size(),
              manifest.disk_faults.size(),
              identity ? "expected" : "not-expected");

  chaos::ScenarioOutcome outcome;
  bool ok = true;
  if (identity) {
    const chaos::IdentityVerdict verdict =
        chaos::verify_identity(manifest, dir, &outcome);
    ok = verdict.ok();
    std::printf("identity: flags %s  shard-stats %s  accounting %s\n",
                verdict.flags_identical ? "==" : "!=",
                verdict.stats_identical ? "==" : "!=",
                verdict.accounting_held ? "held" : "VIOLATED");
  } else {
    chaos::ChaosRunOptions run;
    run.dir = dir + "/disturbed";
    chaos::ChaosOrchestrator orchestrator(std::move(manifest));
    outcome = orchestrator.run(run);
    ok = outcome.identity_failures == 0;
  }

  for (const chaos::PhaseReport& p : outcome.phases) {
    std::printf("phase %-12s [%6llu,%6llu)  arrivals=%-7llu boundaries=%-5llu "
                "sweeps=%-3llu kills=%llu recoveries=%llu tier-transitions=%llu "
                "identity=%llu/%llu\n",
                p.name.c_str(), static_cast<unsigned long long>(p.first_event),
                static_cast<unsigned long long>(p.until_event),
                static_cast<unsigned long long>(p.arrivals),
                static_cast<unsigned long long>(p.boundaries),
                static_cast<unsigned long long>(p.sweeps),
                static_cast<unsigned long long>(p.kills),
                static_cast<unsigned long long>(p.recoveries),
                static_cast<unsigned long long>(p.tier_transitions),
                static_cast<unsigned long long>(p.identity_checks -
                                                p.identity_failures),
                static_cast<unsigned long long>(p.identity_checks));
  }
  std::printf("faults: arrivals=%llu dropped=%llu duplicated=%llu "
              "regressed=%llu malformed=%llu\n",
              static_cast<unsigned long long>(outcome.faults.total.events_out),
              static_cast<unsigned long long>(outcome.faults.total.dropped),
              static_cast<unsigned long long>(outcome.faults.total.duplicated),
              static_cast<unsigned long long>(outcome.faults.total.regressed),
              static_cast<unsigned long long>(outcome.faults.total.malformed));
  std::printf("kills: fired=%llu recovered=%llu missed=%llu  "
              "copies-skipped-down=%llu\n",
              static_cast<unsigned long long>(outcome.kills),
              static_cast<unsigned long long>(outcome.recoveries),
              static_cast<unsigned long long>(outcome.kills_missed),
              static_cast<unsigned long long>(outcome.copies_skipped_down));
  std::printf("disk: windows=%llu missed=%llu power-cuts=%llu "
              "storage-degraded=%llu recovered=%llu\n",
              static_cast<unsigned long long>(outcome.disk_windows),
              static_cast<unsigned long long>(outcome.disk_windows_missed),
              static_cast<unsigned long long>(outcome.power_cuts),
              static_cast<unsigned long long>(outcome.storage_degraded),
              static_cast<unsigned long long>(outcome.storage_recoveries));
  std::printf("flags: %zu  digest: %016llx  identity-checks: %llu passed, "
              "%llu failed\n",
              outcome.flags.size(),
              static_cast<unsigned long long>(flag_digest(outcome.flags)),
              static_cast<unsigned long long>(outcome.identity_checks -
                                              outcome.identity_failures),
              static_cast<unsigned long long>(outcome.identity_failures));
  if (print_stats) std::printf("%s\n", outcome.router_stats.c_str());
  return ok ? 0 : 1;
}

bool batches_identical(const core::FlagBatch& a, const core::FlagBatch& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a[i];
    const auto& rb = b[i];
    if (ra.account != rb.account || ra.flagged_at != rb.flagged_at ||
        ra.features.as_vector() != rb.features.as_vector()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!take_flag(argc, argv, "--help", 0).empty()) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (const auto v = take_flag(argc, argv, "--shards", 1); !v.empty()) {
    cli.shards = static_cast<std::uint32_t>(std::stoul(v[0]));
  }
  if (const auto v = take_flag(argc, argv, "--dir", 1); !v.empty()) {
    cli.dir = v[0];
  }
  if (const auto v = take_flag(argc, argv, "--accounts", 1); !v.empty()) {
    cli.workload.accounts = static_cast<std::uint32_t>(std::stoul(v[0]));
  }
  if (const auto v = take_flag(argc, argv, "--events", 1); !v.empty()) {
    cli.workload.events = std::stoull(v[0]);
  }
  if (const auto v = take_flag(argc, argv, "--seed", 1); !v.empty()) {
    cli.workload.seed = std::stoull(v[0]);
  }
  if (const auto v = take_flag(argc, argv, "--hours", 1); !v.empty()) {
    cli.workload.hours = std::stod(v[0]);
  }
  if (const auto v = take_flag(argc, argv, "--burst-senders", 1); !v.empty()) {
    cli.workload.burst_senders = static_cast<std::uint32_t>(std::stoul(v[0]));
  }
  if (const auto v = take_flag(argc, argv, "--fsync", 1); !v.empty()) {
    if (v[0] == "always") {
      cli.fsync = service::WalFsync::kEveryAppend;
    } else if (v[0] == "rotate") {
      cli.fsync = service::WalFsync::kOnRotate;
    } else if (v[0] == "never") {
      cli.fsync = service::WalFsync::kNever;
    } else {
      std::fprintf(stderr, "sybil_service: unknown --fsync mode %s\n",
                   v[0].c_str());
      return 2;
    }
  }
  if (const auto v = take_flag(argc, argv, "--segment-records", 1);
      !v.empty()) {
    cli.segment_records = std::stoull(v[0]);
  }
  if (const auto v = take_flag(argc, argv, "--checkpoint-every", 1);
      !v.empty()) {
    cli.checkpoint_every = std::stoull(v[0]);
  }
  if (!take_flag(argc, argv, "--no-final-checkpoint", 0).empty()) {
    cli.final_checkpoint = false;
  }
  if (!take_flag(argc, argv, "--verify-single", 0).empty()) {
    cli.verify_single = true;
  }
  std::string scenario_path;
  if (const auto v = take_flag(argc, argv, "--scenario", 1); !v.empty()) {
    scenario_path = v[0];
  }
  if (!take_flag(argc, argv, "--stats", 0).empty()) cli.stats = true;
  if (argc > 1) {
    std::fprintf(stderr, "sybil_service: unknown argument %s\n%s", argv[1],
                 kUsage);
    return 2;
  }

  if (!scenario_path.empty()) {
    return run_scenario(scenario_path, cli.dir, cli.stats);
  }

  // Account ids must fit the ingestion bound.
  if (cli.workload.accounts >
      core::DetectorOptions{}.ingest.max_account_id) {
    std::fprintf(stderr,
                 "sybil_service: --accounts exceeds the ingestion account-id "
                 "bound\n");
    return 2;
  }

  const std::vector<osn::Event> events =
      service::synthetic_workload(cli.workload);
  std::printf("workload: accounts=%u events=%zu shards=%u\n",
              cli.workload.accounts, events.size(), cli.shards);

  const RunResult sharded =
      run_once(cli, events, cli.shards,
               cli.dir + "/n" + std::to_string(cli.shards));
  std::printf("flags: %zu  digest: %016llx\n", sharded.flags.size(),
              static_cast<unsigned long long>(flag_digest(sharded.flags)));
  if (cli.stats) std::printf("%s\n", sharded.stats.c_str());

  if (cli.verify_single && cli.shards != 1) {
    const RunResult single = run_once(cli, events, 1, cli.dir + "/n1");
    const bool ok = batches_identical(sharded.flags, single.flags);
    std::printf("verify-single: %u-shard flags %s 1-shard flags "
                "(%zu vs %zu records)\n",
                cli.shards, ok ? "==" : "!=", sharded.flags.size(),
                single.flags.size());
    if (!ok) return 1;
  }
  return 0;
}
