// Deterministic synthetic event workloads for the service layer.
//
// The OSN simulator (osn/simulator.h) produces behaviourally rich logs
// but materializes a full Network; the sharded-service equivalence runs
// need multi-million-account streams where only the *event stream*
// matters. synthetic_workload() emits a pure function of its options:
// a time-ordered mix of friend-request traffic with a configurable set
// of burst senders (sybil-like: high invite rate, low accept ratio —
// the paper's §4 signature) that cross a relaxed ThresholdRule, plus
// optional structurally malformed events for the dead-letter path.
//
// Determinism notes: times are strictly nondecreasing (so replay under
// any reorder watermark applies every event, on every shard — the
// property the N-vs-1-shard byte-identity proof needs), and malformed
// events are limited to watermark-independent shapes (unknown type,
// self-referential, non-finite time, out-of-range id): a time-
// regression quarantine depends on the local high watermark, which is
// legitimately shard-local (docs/ROBUSTNESS.md §Sharded recovery).
#pragma once

#include <cstdint>
#include <vector>

#include "osn/events.h"

namespace sybil::service {

struct WorkloadOptions {
  std::uint32_t accounts = 2000;
  std::uint64_t events = 20000;
  /// Stream span in simulated hours; event i is stamped hours*i/events.
  double hours = 96.0;
  std::uint64_t seed = 1;
  /// Accounts 1..burst_senders send `burst_fraction` of all requests —
  /// far above the organic rate, with near-zero accepts.
  std::uint32_t burst_senders = 8;
  double burst_fraction = 0.2;
  // Event-mix fractions (the remainder is organic kRequestSent).
  double accept_fraction = 0.15;
  double reject_fraction = 0.08;
  double seed_friend_fraction = 0.05;
  double created_fraction = 0.02;
  double ban_fraction = 0.002;
  /// Structurally invalid events (0 = clean feed). Cycled through the
  /// four watermark-independent dead-letter shapes.
  double malformed_fraction = 0.0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// The stream, in offer order. Event i's transport seq is its index.
std::vector<osn::Event> synthetic_workload(const WorkloadOptions& options);

}  // namespace sybil::service
