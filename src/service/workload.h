// Deterministic synthetic event workloads for the service layer.
//
// The OSN simulator (osn/simulator.h) produces behaviourally rich logs
// but materializes a full Network; the sharded-service equivalence runs
// need multi-million-account streams where only the *event stream*
// matters. synthetic_workload() emits a pure function of its options:
// a time-ordered mix of friend-request traffic with a configurable set
// of burst senders (sybil-like: high invite rate, low accept ratio —
// the paper's §4 signature) that cross a relaxed ThresholdRule, plus
// optional structurally malformed events for the dead-letter path.
//
// Determinism notes: times are strictly nondecreasing (so replay under
// any reorder watermark applies every event, on every shard — the
// property the N-vs-1-shard byte-identity proof needs), and malformed
// events are limited to watermark-independent shapes (unknown type,
// self-referential, non-finite time, out-of-range id): a time-
// regression quarantine depends on the local high watermark, which is
// legitimately shard-local (docs/ROBUSTNESS.md §Sharded recovery).
#pragma once

#include <cstdint>
#include <vector>

#include "osn/events.h"

namespace sybil::service {

/// One timed traffic disturbance over the stream's simulated clock.
/// Meaning of `intensity` depends on where the window is used:
/// in `flash_crowds` it is extra event *rate* (1.0 doubles the base
/// rate inside the window); in `registration_storms` it is extra
/// kAccountCreated probability mass added to the event mix inside the
/// window (0.1 adds ten points of registrations).
struct TrafficWindow {
  double start_hour = 0.0;
  double span_hours = 0.0;
  double intensity = 0.0;
};

struct WorkloadOptions {
  std::uint32_t accounts = 2000;
  std::uint64_t events = 20000;
  /// Stream span in simulated hours; event i is stamped hours*i/events.
  double hours = 96.0;
  std::uint64_t seed = 1;
  /// Accounts 1..burst_senders send `burst_fraction` of all requests —
  /// far above the organic rate, with near-zero accepts.
  std::uint32_t burst_senders = 8;
  double burst_fraction = 0.2;
  // Event-mix fractions (the remainder is organic kRequestSent).
  double accept_fraction = 0.15;
  double reject_fraction = 0.08;
  double seed_friend_fraction = 0.05;
  double created_fraction = 0.02;
  double ban_fraction = 0.002;
  /// Structurally invalid events (0 = clean feed). Cycled through the
  /// four watermark-independent dead-letter shapes.
  double malformed_fraction = 0.0;

  // Traffic shape (scenario manifests; docs/ROBUSTNESS.md §Scenario
  // harness). With every field at its default the stream is
  // byte-identical to the legacy flat-rate workload: event i stamped
  // hours*i/events, same RNG draws, same mix.
  //
  /// Diurnal rate curve: instantaneous rate 1 + A*sin(2*pi*t/period).
  /// 0 (default) keeps the flat legacy timeline; must stay in [0, 1)
  /// so the rate never reaches zero.
  double diurnal_amplitude = 0.0;
  double diurnal_period_hours = 24.0;
  /// Extra-rate windows: event timestamps compress inside each window
  /// (more events per simulated hour), stretching elsewhere to keep the
  /// total count and span fixed. Event *content* RNG is positional, so
  /// shapes change when, never what.
  std::vector<TrafficWindow> flash_crowds;
  /// Registration storms: inside each window, `intensity` is added to
  /// created_fraction (taken from organic request mass). Timestamps are
  /// unaffected, and the stream *before* the first storm window is
  /// byte-identical to the unstormed stream; from the window on, the
  /// branch-dependent RNG consumption (a created event draws fewer
  /// values than a request) shifts the content sequence — deterministic,
  /// but not a positional splice.
  std::vector<TrafficWindow> registration_storms;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// The stream, in offer order. Event i's transport seq is its index.
std::vector<osn::Event> synthetic_workload(const WorkloadOptions& options);

}  // namespace sybil::service
