// Segmented write-ahead log for the supervised detection service.
//
// Every event OFFERED to the service — admitted or shed — is appended
// here before anything else happens to it, together with the admission
// verdict, so recovery can re-execute recorded decisions instead of
// re-deciding them: replay reconstructs the exact accounting (applied /
// deduped / dead-lettered / shed counters) of the uninterrupted run,
// not merely the same detector state.
//
// On-disk layout (docs/FORMATS.md §WAL has the byte-level spec and a
// worked hexdump). A segment file "wal-<base>.seg" is a 24-byte header
// followed by fixed-size 44-byte records:
//
//   header   magic "SYWL", endian tag, header size, format version,
//            shard id (v2; reserved zero in v1), base record index (u64)
//   record   crc32 (of the following 40 bytes) ·
//            index u64 · seq u64 · time f64 ·
//            actor u32 · subject u32 · type u32 · flags u32
//
// Fixed-size records make torn-tail detection trivial: a crash mid-
// append leaves either a partial trailing record (length not a multiple
// of 44) or a trailing record whose CRC fails; recovery truncates the
// segment back to its last valid record and reports both. Rotation is
// atomic in the container sense: a new segment is created, headered and
// (per policy) fsync'd before the writer moves to it; existing segments
// are never rewritten.
//
// Durability: WalFsync::kEveryAppend (the default, and what the
// crash-consistency proof assumes) fsyncs after every record; kOnRotate
// fsyncs only at segment boundaries (bounded loss window); kNever is
// for benches. Directory entries are fsync'd when a segment is created
// (io::Vfs::sync_parent_dir), so a machine crash cannot unlink a synced
// segment. All file I/O goes through the segment's io::Vfs (WalOptions::
// vfs), so storage faults — ENOSPC, EIO, short writes, power cuts — are
// injectable per shard; see suspend_sync()/resume_sync() for how the
// supervisor rides out a disk-fault window without losing records.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "io/vfs.h"
#include "osn/events.h"

namespace sybil::service {

/// Durability boundaries the service crosses, exposed as a test seam:
/// the crash hook (if any) is invoked at each, and a hook that throws
/// simulates the process dying exactly there (faults::CrashInjector).
/// kWalRecordHalf fires between the two halves of a record write and
/// yields a genuinely torn tail on disk.
enum class CrashPoint : std::uint32_t {
  kWalRecordHalf = 0,
  kWalAppend = 1,           // record fully written (and synced per policy)
  kWalRotate = 2,           // new segment created and headered
  kCheckpointCommit = 3,    // checkpoint container about to commit
  kCheckpointCommitted = 4, // checkpoint durable, retention not yet pruned
  kWalGroupCommit = 5,      // group-commit fsync completed (see begin_group)
};

constexpr const char* to_string(CrashPoint p) noexcept {
  switch (p) {
    case CrashPoint::kWalRecordHalf: return "wal-record-half";
    case CrashPoint::kWalAppend: return "wal-append";
    case CrashPoint::kWalRotate: return "wal-rotate";
    case CrashPoint::kCheckpointCommit: return "checkpoint-commit";
    case CrashPoint::kCheckpointCommitted: return "checkpoint-committed";
    case CrashPoint::kWalGroupCommit: return "wal-group-commit";
  }
  return "unknown";
}

using CrashHook = std::function<void(CrashPoint)>;

enum class WalFsync : std::uint32_t {
  kEveryAppend = 0,
  kOnRotate = 1,
  kNever = 2,
};

struct WalOptions {
  std::string dir;  // segment directory; created if absent
  /// Records per segment before rotation.
  std::uint64_t segment_records = 4096;
  WalFsync fsync = WalFsync::kEveryAppend;
  /// Stamped into every segment header (format v2) so a segment
  /// misplaced into another shard's directory is rejected at scan time
  /// instead of replaying the wrong partition's history. Single-instance
  /// services write shard 0.
  std::uint32_t shard_id = 0;
  /// Test seam; empty in production. A non-empty hook also switches
  /// appends to a two-phase write so kWalRecordHalf can tear records.
  CrashHook crash_hook{};

  /// Storage backend (null → io::default_vfs()). Fault-injection tests
  /// and the chaos [disk] section hand each shard its own FaultyVfs.
  io::Vfs* vfs = nullptr;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Admission-verdict bits stored in a record's flags word.
struct WalRecordFlags {
  static constexpr std::uint32_t kShed = 1u << 0;
  /// Bits 1-2: ServiceTier at decision time.
  static constexpr std::uint32_t kTierShift = 1;
  static constexpr std::uint32_t kTierMask = 3u << kTierShift;
  /// Bit 3: capacity shed (vs tier shed), for the shed.* breakdown.
  static constexpr std::uint32_t kCapacity = 1u << 3;
};

/// One logged offer, in memory.
struct WalRecord {
  std::uint64_t index = 0;  // global record index, 0-based
  std::uint64_t seq = 0;    // transport seq as offered (may be kAutoSeq)
  osn::Event event{};
  std::uint32_t flags = 0;

  bool shed() const noexcept { return (flags & WalRecordFlags::kShed) != 0; }
};

/// Appender. Always starts a fresh segment (recovery never appends to a
/// possibly-torn file); close() or destruction flushes, destruction
/// never throws.
class WalWriter {
 public:
  /// Opens a new segment whose base index is `next_index`. Throws
  /// io::SnapshotError(kWriteFailed) on I/O failure.
  WalWriter(const WalOptions& options, std::uint64_t next_index);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; returns its global index. Rotates first when
  /// the current segment is full (unless sync is suspended — a degraded
  /// writer never rotates, so a segment may temporarily overfill).
  ///
  /// Storage faults: a thrown io::VfsError from rotation leaves the
  /// writer untouched (nothing appended, next_index() unchanged). A
  /// VfsError from the post-append flush/fsync means the record IS
  /// appended (next_index() advanced, bytes retained in the write
  /// buffer for a later retry) but NOT yet durable — the caller decides
  /// whether to degrade (suspend_sync) or fail loudly. While sync is
  /// suspended, append never throws on storage faults.
  std::uint64_t append(const osn::Event& e, std::uint64_t seq,
                       std::uint32_t flags);

  // ---- Group commit ----
  //
  // Under WalFsync::kEveryAppend each append pays an fsync — correct,
  // and the dominant cost of the offer path. When the caller already
  // holds a batch of offers (the supervisor pump), the appends between
  // begin_group() and commit_group() buffer in the segment file and
  // commit_group() issues ONE flush + fsync for all of them. The
  // durability boundary moves from each record to the group commit:
  // after commit_group() returns, every record of the group is exactly
  // as durable as per-record fsync would have made it; a crash inside
  // the group can lose the whole (unacknowledged) suffix, which
  // recovery already tolerates via strict-prefix replay. Rotation
  // mid-group still seals the outgoing segment. Other fsync policies
  // are unaffected apart from metrics.

  /// Starts a commit group. Throws std::logic_error if one is open.
  void begin_group();

  /// Ends the group: one flush+fsync covering every append since
  /// begin_group() (under kEveryAppend; other policies just close the
  /// group). Fires CrashPoint::kWalGroupCommit after the sync — the
  /// batch's durability boundary. Returns records committed.
  std::uint64_t commit_group();

  /// Closes an open group WITHOUT the commit fsync or crash point
  /// (no-op when none is open). For exception unwinding only: the
  /// group's records stay buffered and unacknowledged, exactly as if
  /// the process had died before the commit — which is the durability
  /// state recovery already handles.
  void abort_group() noexcept {
    in_group_ = false;
    group_records_ = 0;
  }

  bool in_group() const noexcept { return in_group_; }

  /// Flushes (and per policy fsyncs) the current segment. Throws
  /// io::VfsError on storage failure (bytes stay retained for retry).
  void sync();

  // ---- Storage-degraded operation ----
  //
  // When the disk rejects writes (ENOSPC/EIO), the supervisor parks the
  // writer in suspended-sync mode: appends land only in the in-memory
  // write buffer (bounded by the supervisor's storage buffer policy),
  // rotation and every flush/fsync are skipped, and nothing can throw.
  // resume_sync() pushes the whole backlog and restores the configured
  // durability policy — all-or-nothing thanks to buffer retention.

  /// Enters suspended-sync mode. Idempotent.
  void suspend_sync() noexcept { sync_suspended_ = true; }

  /// Flushes the buffered backlog and (per policy) fsyncs, then leaves
  /// suspended-sync mode. Throws io::VfsError if the disk still rejects
  /// the backlog — the writer stays suspended and the unwritten suffix
  /// stays buffered.
  void resume_sync();

  bool sync_suspended() const noexcept { return sync_suspended_; }

  /// Records appended since the last successful flush to the OS — the
  /// occupancy of the degraded-mode buffer.
  std::uint64_t unsynced_records() const noexcept { return unsynced_records_; }

  std::uint64_t next_index() const noexcept { return next_index_; }
  std::uint64_t segments_opened() const noexcept { return segments_opened_; }

 private:
  void open_segment();
  void write_bytes(const void* data, std::size_t n);
  void flush_buffer();      // file flush + unsynced reset
  void sync_per_policy();   // flush + fsync unless WalFsync::kNever

  WalOptions options_;
  io::Vfs* vfs_ = nullptr;
  std::unique_ptr<io::BufferedVfsFile> file_;
  std::uint64_t next_index_;
  std::uint64_t segment_base_ = 0;
  std::uint64_t segments_opened_ = 0;
  std::string segment_path_;
  bool in_group_ = false;
  bool sync_suspended_ = false;
  std::uint64_t group_records_ = 0;
  std::uint64_t unsynced_records_ = 0;
};

/// What a recovery scan found and did.
struct WalScanReport {
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_scanned = 0;   // valid records seen (all segments)
  std::uint64_t records_returned = 0;  // records with index >= from_index
  /// Whole records dropped because they sat at or behind a corrupt
  /// record (strict prefix semantics: nothing after the first bad CRC
  /// in a segment is trusted).
  std::uint64_t records_truncated = 0;
  /// Segments whose tail was healed (file truncated in place back to
  /// its last valid record).
  std::uint64_t torn_tails_healed = 0;
  /// Highest valid record index seen + 1 (0 when the log is empty):
  /// where the next WalWriter continues.
  std::uint64_t next_index = 0;
};

/// `expected_shard` value that disables the shard-identity check.
inline constexpr std::uint32_t kWalAnyShard = ~std::uint32_t{0};

/// Scans `dir` in segment order, validates every record CRC, heals torn
/// tails in place, and returns the valid records with index >=
/// `from_index` in index order. Segments entirely below `from_index`
/// are skipped without reading their records. Throws io::SnapshotError
/// on unreadable directories; corrupt *content* never throws — it is
/// truncated and reported (a WAL's job is to survive exactly that).
/// A v2 segment header carrying a shard id other than `expected_shard`
/// throws SnapshotError(kFormatViolation): a foreign shard's log is
/// misconfiguration, not corruption, and must never be replayed here
/// (v1 headers predate shard identity and are exempt). Reads and tail
/// healing go through `vfs` (null → io::default_vfs()).
std::vector<WalRecord> scan_wal(const std::string& dir,
                                std::uint64_t from_index,
                                WalScanReport& report,
                                std::uint32_t expected_shard = kWalAnyShard,
                                io::Vfs* vfs = nullptr);

/// Deletes segments whose entire record range lies below `index` (all
/// retained checkpoints are at or above it). Returns segments removed.
std::uint64_t prune_wal(const std::string& dir, std::uint64_t index,
                        io::Vfs* vfs = nullptr);

}  // namespace sybil::service
