#include "service/defense_scorer.h"

#include <algorithm>

#include "io/error.h"

namespace sybil::service {

namespace {

constexpr std::uint32_t kScorerStateVersion = 1;
constexpr std::uint64_t kMaxPlausible = 1ull << 33;

}  // namespace

DefenseScorer::DefenseScorer(const core::DetectorOptions& options)
    : max_account_id_(options.ingest.max_account_id),
      seeds_(options.defense.seeds),
      rank_(detect::IncrementalRankOptions{
          options.defense.rank_iterations,
          options.defense.residual_epsilon,
          options.defense.full_recompute_fraction,
      }) {
  // Seeds must exist from the start: a seed account that only joined
  // the graph later would miss its layer-0 trust share until the next
  // full recompute, breaking incremental-vs-batch equivalence.
  for (const graph::NodeId s : seeds_) graph_.ensure_nodes(s + 1);
}

void DefenseScorer::observe(const osn::Event& e) {
  if (e.type != osn::EventType::kRequestAccepted &&
      e.type != osn::EventType::kFriendshipSeeded) {
    return;
  }
  if (e.actor == e.subject || e.actor > max_account_id_ ||
      e.subject > max_account_id_) {
    ++ignored_;
    return;
  }
  if (graph_.add_edge(e.actor, e.subject, e.time)) {
    clustering_.on_edge_added(graph_, e.actor, e.subject);
    ++edges_observed_;
  } else {
    ++ignored_;  // duplicate friendship (e.g. re-accepted)
  }
}

void DefenseScorer::refresh() {
  ++refreshes_;
  const auto dirty = graph_.dirty();
  dirty_processed_ += dirty.size();
  if (!clustering_.initialized()) clustering_.recompute(graph_);
  if (!seeds_.empty()) {
    if (!rank_.initialized()) {
      rank_.recompute(graph_, seeds_);
    } else {
      rank_.update(graph_, dirty);
    }
  }
  graph_.clear_dirty();
}

std::vector<std::byte> DefenseScorer::serialize() const {
  io::ByteWriter w;
  w.write(kScorerStateVersion);
  w.write(edges_observed_);
  w.write(ignored_);
  w.write(refreshes_);
  w.write(dirty_processed_);

  // Full adjacency, row by row in arrival order — exactly what restore
  // needs to rebuild both orderings without the global edge sequence.
  const graph::NodeId n = graph_.node_count();
  w.write(static_cast<std::uint64_t>(n));
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto row = graph_.chronological(u);
    w.write(static_cast<std::uint64_t>(row.size()));
    for (const graph::Neighbor& nb : row) {
      w.write(nb.node);
      w.write(nb.created_at);
      w.write(static_cast<std::uint8_t>(nb.weak ? 1 : 0));
    }
  }
  const auto dirty = graph_.dirty();
  w.write(static_cast<std::uint64_t>(dirty.size()));
  for (const graph::NodeId u : dirty) w.write(u);

  rank_.serialize(w);
  clustering_.serialize(w);
  return std::move(w).take();
}

void DefenseScorer::restore(const std::vector<std::byte>& bytes) {
  io::ByteReader r(bytes);
  const auto version = r.read<std::uint32_t>();
  if (version != kScorerStateVersion) {
    throw io::SnapshotError(io::SnapshotErrorCode::kUnsupportedVersion,
                            "defense-scorer state version mismatch");
  }
  edges_observed_ = r.read<std::uint64_t>();
  ignored_ = r.read<std::uint64_t>();
  refreshes_ = r.read<std::uint64_t>();
  dirty_processed_ = r.read<std::uint64_t>();

  const auto n = r.read<std::uint64_t>();
  if (n >= kMaxPlausible) {
    throw io::SnapshotError(io::SnapshotErrorCode::kMalformedSection,
                            "defense-scorer node count implausible");
  }
  std::vector<std::vector<graph::Neighbor>> adj(n);
  for (auto& row : adj) {
    const auto deg = r.read<std::uint64_t>();
    if (deg >= kMaxPlausible) {
      throw io::SnapshotError(io::SnapshotErrorCode::kMalformedSection,
                              "defense-scorer row length implausible");
    }
    row.resize(deg);
    for (graph::Neighbor& nb : row) {
      nb.node = r.read<graph::NodeId>();
      nb.created_at = r.read<graph::Time>();
      nb.weak = r.read<std::uint8_t>() != 0;
      if (nb.node >= n) {
        throw io::SnapshotError(io::SnapshotErrorCode::kMalformedSection,
                                "defense-scorer neighbor id out of range");
      }
    }
  }
  graph_ = graph::DynamicGraph(
      graph::TimestampedGraph::from_adjacency(std::move(adj)));

  const auto dirty_count = r.read<std::uint64_t>();
  if (dirty_count > n) {
    throw io::SnapshotError(io::SnapshotErrorCode::kMalformedSection,
                            "defense-scorer dirty count implausible");
  }
  for (std::uint64_t i = 0; i < dirty_count; ++i) {
    const auto u = r.read<graph::NodeId>();
    if (u >= n) {
      throw io::SnapshotError(io::SnapshotErrorCode::kMalformedSection,
                              "defense-scorer dirty id out of range");
    }
    graph_.mark_dirty(u);
  }

  rank_.restore(r);
  clustering_.restore(r);
}

}  // namespace sybil::service
