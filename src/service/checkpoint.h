// Incremental service checkpoints: SYBS containers (PR 3 subsystem,
// PayloadKind::kServiceCheckpoint) capturing everything the supervisor
// needs to resume byte-identically — the two detectors' exact state
// (core/detector_state.h), the admitted-but-unpumped queue, the
// replay-exact accounting counters, the degradation tier, and the WAL
// position P (count of WAL records written when the checkpoint was
// taken). Recovery = load the newest valid generation + replay WAL
// records with index >= P; the checkpointed queue holds exactly the
// admitted records below P that had not reached the detector, so the
// two sources are disjoint and exactly-once is exact by construction
// (the detector's seq dedup remains as defense in depth).
//
// Generations: files are named "ckpt-<20-digit P>.sybs" in their own
// directory; bounded retention keeps the newest K. A corrupt newest
// generation (typed SnapshotError on load) falls back to the previous
// one — never a crash, never silent loss (docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "service/wal.h"

namespace sybil::service {

/// Everything a checkpoint stores; the supervisor fills/consumes it.
struct ServiceCheckpointState {
  std::uint64_t wal_position = 0;
  std::uint32_t tier = 0;
  /// Shard identity (format v2). A checkpoint written by shard i of N
  /// refuses to restore into a supervisor configured as a different
  /// shard — a misdirected state directory must fail loudly, not decode
  /// quietly into the wrong partition. shard_count == 0 means "written
  /// by a v1 build / unknown"; identity is then not checked.
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 0;
  /// One past the highest explicit transport seq ever offered (v2).
  /// Recovery needs it because fully-covered WAL segments are pruned:
  /// the redelivery frontier must survive even when the records that
  /// established it no longer exist on disk.
  std::uint64_t next_seq = 0;
  // Replay-exact workload counters (see ServiceSupervisor::stats_json).
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t pumped = 0;
  std::uint64_t shed_low_priority = 0;
  std::uint64_t shed_sweep_only = 0;
  std::uint64_t shed_capacity = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t sweep_flagged = 0;
  /// Admitted records (index < wal_position) not yet pumped, in offer
  /// order.
  std::vector<WalRecord> queue;
  /// core::serialize_stream_state / serialize_realtime_state blobs.
  std::vector<std::byte> stream_state;
  std::vector<std::byte> realtime_state;
  /// service::DefenseScorer::serialize blob (format v3, section written
  /// only when non-empty — i.e. when DetectorOptions::defense is on).
  /// A v2/v1 checkpoint, or a v3 one written with the tier off, loads
  /// with this empty.
  std::vector<std::byte> defense_state;
};

/// Atomically commits `state` to `path`, durably unless the
/// SYBIL_IO_FSYNC knob opts out (io::SyncMode::kEnv — the machine-crash
/// recovery proof assumes the knob is on, its default; process-crash
/// recovery holds either way). All I/O goes through `vfs` (null →
/// io::default_vfs()); on any storage fault the temp file is removed
/// and the existing generation is untouched. Throws io::SnapshotError
/// (io::VfsError for storage faults).
void save_service_checkpoint(const std::string& path,
                             const ServiceCheckpointState& state,
                             io::Vfs* vfs = nullptr);

/// Loads and fully validates one generation; throws the matching typed
/// io::SnapshotError on any corruption (the supervisor catches it and
/// falls back a generation).
ServiceCheckpointState load_service_checkpoint(const std::string& path);

/// "<dir>/ckpt-<20-digit position>.sybs".
std::string checkpoint_path(const std::string& dir, std::uint64_t position);

/// Checkpoint generations in `dir`, sorted by WAL position ascending.
std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir);

/// Deletes all but the newest `retain` generations; returns how many
/// were removed.
std::uint64_t prune_checkpoints(const std::string& dir, std::size_t retain);

}  // namespace sybil::service
