#include "service/supervisor.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "core/detector_state.h"
#include "core/metrics/instrument.h"
#include "io/error.h"
#include "service/defense_scorer.h"

namespace sybil::service {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t tier_bits(core::ServiceTier tier) noexcept {
  return (static_cast<std::uint32_t>(tier) << WalRecordFlags::kTierShift) &
         WalRecordFlags::kTierMask;
}

constexpr core::ServiceTier tier_from_flags(std::uint32_t flags) noexcept {
  return static_cast<core::ServiceTier>((flags & WalRecordFlags::kTierMask) >>
                                        WalRecordFlags::kTierShift);
}

/// Kinds shed at ServiceTier::kShedLowPriority — bookkeeping events
/// whose loss degrades feature freshness but cannot lose a verdict
/// (the request/accept/reject flow and bans still land).
bool low_priority(osn::EventType t) noexcept {
  return t == osn::EventType::kAccountCreated ||
         t == osn::EventType::kRequestDropped ||
         t == osn::EventType::kFriendshipSeeded;
}

void fire(const CrashHook& hook, CrashPoint p) {
  if (hook) hook(p);
}

void append_field(std::string& out, const char* key, std::uint64_t value) {
  if (out.back() != '{') out += ',';
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

#if SYBIL_METRICS_COMPILED

// Per-instance metric handles. The instrument.h macros cache handles in
// function-local statics, which would fuse every shard of a sharded
// service onto one metric name; a supervisor therefore resolves its own
// handles once, under its shard namespace ("service.shard.<i>.*" when
// it is one of N, plain "service.*" standalone), and sharded counters
// additionally feed the aggregated "service.*" family so fleet-wide
// dashboards need no client-side summing (docs/OBSERVABILITY.md).
struct ServiceSupervisor::Metrics {
  struct Count {
    core::metrics::Counter* local = nullptr;
    core::metrics::Counter* agg = nullptr;  // aggregate twin (sharded only)
    void add(std::uint64_t n = 1) const noexcept {
      // Unregistered handles (the defense family with the tier off)
      // no-op, so a defense-off build exports exactly the PR 7 rows.
      if (n == 0 || local == nullptr || !core::metrics::metrics_enabled()) {
        return;
      }
      local->add(n);
      if (agg != nullptr) agg->add(n);
    }
  };
  // Gauges are instantaneous, so an aggregated twin would be
  // last-writer-wins noise across shards: local only.
  struct Level {
    core::metrics::Gauge* local = nullptr;
    void set(double v) const noexcept {
      if (core::metrics::metrics_enabled()) local->set(v);
    }
  };

  Count recoveries;
  Count cold_starts;
  Count replayed_records;
  Count generations_discarded;
  Count tier_transitions;
  Count shed_low_priority;
  Count shed_sweep_only;
  Count shed_capacity;
  Count sweeps;
  Count deadletter[core::kStreamErrorCodeCount];
  Count deadletter_total;
  Count deadletter_dropped;
  // Defense tier (registered only when DetectorOptions::defense is on;
  // unregistered handles no-op — see Count::add).
  Count defense_edges;
  Count defense_dirty;
  Count defense_rounds;
  Count defense_full;
  Count defense_scores;
  // Storage-degraded mode incidents (docs/OBSERVABILITY.md §storage.*).
  Count storage_entries;
  Count storage_exits;
  Count storage_retries;
  Count storage_retry_failures;
  Count storage_checkpoints_suspended;
  Level storage_buffered;
  Level queue_depth;
  Level tier;

  explicit Metrics(const ServiceOptions& o) {
    auto& reg = core::metrics::MetricsRegistry::instance();
    const bool sharded = o.shard_count > 1;
    const std::string prefix =
        sharded ? "service.shard." + std::to_string(o.shard_id) + "."
                : std::string("service.");
    const auto count = [&](const std::string& name) {
      Count c;
      c.local = &reg.counter(prefix + name);
      if (sharded) c.agg = &reg.counter("service." + name);
      return c;
    };
    const auto level = [&](const std::string& name) {
      Level l;
      l.local = &reg.gauge(prefix + name);
      return l;
    };
    recoveries = count("recovery.count");
    cold_starts = count("recovery.cold_starts");
    replayed_records = count("recovery.replayed_records");
    generations_discarded = count("recovery.generations_discarded");
    tier_transitions = count("tier.transitions");
    shed_low_priority = count("shed.low_priority");
    shed_sweep_only = count("shed.sweep_only");
    shed_capacity = count("shed.capacity");
    sweeps = count("sweeps");
    for (std::size_t i = 0; i < core::kStreamErrorCodeCount; ++i) {
      deadletter[i] = count(std::string("deadletter.") +
                            core::to_string(static_cast<core::StreamErrorCode>(i)));
    }
    deadletter_total = count("deadletter.total");
    deadletter_dropped = count("deadletter.dropped");
    if (o.detector.defense.enabled) {
      defense_edges = count("defense.edges_observed");
      defense_dirty = count("defense.dirty_vertices");
      defense_rounds = count("defense.propagation_rounds");
      defense_full = count("defense.full_recomputes");
      defense_scores = count("defense.scores_published");
    }
    storage_entries = count("storage.degraded_entries");
    storage_exits = count("storage.degraded_exits");
    storage_retries = count("storage.retries");
    storage_retry_failures = count("storage.retry_failures");
    storage_checkpoints_suspended = count("storage.checkpoints_suspended");
    storage_buffered = level("storage.buffered");
    queue_depth = level("queue.depth");
    tier = level("tier");
  }
};

#define SYBIL_SERVICE_METRIC(expr)           \
  do {                                       \
    if (metrics_ != nullptr) metrics_->expr; \
  } while (0)

#else  // SYBIL_METRICS_COMPILED == 0

struct ServiceSupervisor::Metrics {};

#define SYBIL_SERVICE_METRIC(expr) \
  do {                             \
  } while (0)

#endif  // SYBIL_METRICS_COMPILED

void StorageOptions::validate() const {
  if (buffer_records == 0) {
    throw std::invalid_argument("StorageOptions::buffer_records must be >= 1");
  }
  if (retry_backoff == 0) {
    throw std::invalid_argument("StorageOptions::retry_backoff must be >= 1");
  }
  if (retry_backoff_cap < retry_backoff) {
    throw std::invalid_argument(
        "StorageOptions::retry_backoff_cap must be >= retry_backoff");
  }
}

void ServiceOptions::validate() const {
  detector.validate();
  storage.validate();
  if (dir.empty()) {
    throw std::invalid_argument("ServiceOptions::dir must be non-empty");
  }
  if (wal_segment_records == 0) {
    throw std::invalid_argument(
        "ServiceOptions::wal_segment_records must be >= 1");
  }
  if (checkpoint_retain == 0) {
    throw std::invalid_argument("ServiceOptions::checkpoint_retain must be "
                                ">= 1 (retention is the fallback depth)");
  }
  if (shard_count == 0) {
    throw std::invalid_argument("ServiceOptions::shard_count must be >= 1");
  }
  if (shard_id >= shard_count) {
    throw std::invalid_argument(
        "ServiceOptions::shard_id must be < shard_count");
  }
}

ServiceSupervisor::ServiceSupervisor(const ServiceOptions& options)
    : options_((options.validate(), options)),
      detector_(options.detector),
      realtime_(options.detector) {
  if (options_.detector.defense.enabled) {
    scorer_ = std::make_unique<DefenseScorer>(options_.detector);
  }
#if SYBIL_METRICS_COMPILED
  metrics_ = std::make_unique<Metrics>(options_);
#endif
}

ServiceSupervisor::~ServiceSupervisor() = default;

void ServiceSupervisor::require_started(const char* what) const {
  if (!started_) {
    throw std::logic_error(std::string("ServiceSupervisor::") + what +
                           " before start()");
  }
}

void ServiceSupervisor::reset_state() {
  detector_ = core::StreamDetector(options_.detector);
  realtime_ = core::RealTimeDetector(options_.detector);
  if (scorer_ != nullptr) {
    scorer_ = std::make_unique<DefenseScorer>(options_.detector);
  }
  queue_.clear();
  tier_ = core::ServiceTier::kFull;
  offered_ = admitted_ = pumped_ = 0;
  shed_low_priority_ = shed_sweep_only_ = shed_capacity_ = 0;
  sweeps_ = sweep_flagged_ = 0;
  next_seq_ = 0;
  storage_degraded_ = false;
  storage_backoff_ = storage_retry_in_ = 0;
}

RecoveryReport ServiceSupervisor::start() {
  if (started_) {
    throw std::logic_error("ServiceSupervisor::start called twice");
  }
  SYBIL_METRIC_SCOPED_TIMER(span, "service.recovery");
  const std::string wal_dir = options_.dir + "/wal";
  const std::string ckpt_dir = options_.dir + "/ckpt";
  fs::create_directories(ckpt_dir);

  RecoveryReport report;
  std::uint64_t from_index = 0;

  // Newest valid checkpoint generation wins; corrupt generations are
  // discarded (typed SnapshotError) and the previous one is tried —
  // never a crash, never silent loss, just a longer WAL replay.
  const auto generations = list_checkpoints(ckpt_dir);
  for (std::size_t i = generations.size(); i-- > 0;) {
    try {
      const ServiceCheckpointState state =
          load_service_checkpoint(generations[i].second);
      // Identity check before anything is restored: a checkpoint from
      // another shard is misconfiguration, not corruption, so it must
      // escape the fallback loop and fail the whole start() loudly
      // (plain logic_error — only SnapshotError triggers fallback).
      if (state.shard_count != 0 &&
          (state.shard_count != options_.shard_count ||
           state.shard_id != options_.shard_id)) {
        throw std::logic_error(
            "service checkpoint " + generations[i].second +
            " was written by shard " + std::to_string(state.shard_id) +
            "/" + std::to_string(state.shard_count) +
            " but this supervisor is shard " +
            std::to_string(options_.shard_id) + "/" +
            std::to_string(options_.shard_count));
      }
      core::restore_stream_state(detector_, state.stream_state);
      core::restore_realtime_state(realtime_, state.realtime_state);
      if (scorer_ != nullptr) {
        // A defense-enabled supervisor refuses a checkpoint without a
        // scorer section: typed SnapshotError, so the fallback loop
        // tries an older generation and ultimately rebuilds the scorer
        // from the full WAL (cold start) rather than resuming with a
        // silently empty graph. A defense-off supervisor ignores any
        // defense_state it finds.
        if (state.defense_state.empty()) {
          throw io::SnapshotError(
              io::SnapshotErrorCode::kFormatViolation,
              "checkpoint " + generations[i].second +
                  " carries no defense-scorer section but "
                  "DetectorOptions::defense is enabled");
        }
        scorer_->restore(state.defense_state);
      }
      queue_.assign(state.queue.begin(), state.queue.end());
      tier_ = static_cast<core::ServiceTier>(state.tier);
      offered_ = state.offered;
      admitted_ = state.admitted;
      pumped_ = state.pumped;
      shed_low_priority_ = state.shed_low_priority;
      shed_sweep_only_ = state.shed_sweep_only;
      shed_capacity_ = state.shed_capacity;
      sweeps_ = state.sweeps;
      sweep_flagged_ = state.sweep_flagged;
      next_seq_ = state.next_seq;
      report.cold_start = false;
      report.checkpoint_file = generations[i].second;
      report.checkpoint_position = state.wal_position;
      from_index = state.wal_position;
      break;
    } catch (const io::SnapshotError&) {
      reset_state();  // a partial restore must not leak into a fallback
      ++report.generations_discarded;
      SYBIL_SERVICE_METRIC(generations_discarded.add(1));
    }
  }

  // Replay the WAL suffix, re-executing each record's recorded
  // admission verdict: shed records advance the shed counters they
  // advanced the first time, admitted records re-enter the queue. The
  // checkpointed queue holds only indices below from_index and the
  // replay only indices at or above it, so nothing is applied twice.
  WalScanReport scan;
  const std::vector<WalRecord> records =
      scan_wal(wal_dir, from_index, scan, options_.shard_id, options_.vfs);
  for (const WalRecord& r : records) {
    ++offered_;
    if (r.seq < kExplicitSeqLimit) {
      next_seq_ = std::max(next_seq_, r.seq + 1);
    }
    if (r.shed()) {
      if ((r.flags & WalRecordFlags::kCapacity) != 0) {
        ++shed_capacity_;
      } else if (tier_from_flags(r.flags) == core::ServiceTier::kSweepOnly) {
        ++shed_sweep_only_;
      } else {
        ++shed_low_priority_;
      }
    } else {
      queue_.push_back(r);
      ++admitted_;
    }
    tier_ = tier_from_flags(r.flags);
  }
  report.records_replayed = records.size();
  report.records_truncated = scan.records_truncated;
  report.torn_tails_healed = scan.torn_tails_healed;

  // Appends resume on a fresh segment past everything durable. (The
  // max guards the kOnRotate/kNever policies, where a checkpoint may
  // outlive unsynced WAL records it thought it covered.)
  const std::uint64_t next = std::max(from_index, scan.next_index);
  WalOptions wal_opts;
  wal_opts.dir = wal_dir;
  wal_opts.segment_records = options_.wal_segment_records;
  wal_opts.fsync = options_.wal_fsync;
  wal_opts.shard_id = options_.shard_id;
  wal_opts.crash_hook = options_.crash_hook;
  wal_opts.vfs = options_.vfs;
  wal_ = std::make_unique<WalWriter>(wal_opts, next);

  report.next_index = next;
  report.next_seq = next_seq_;
  recovery_ = report;
  started_ = true;
  SYBIL_SERVICE_METRIC(recoveries.add(1));
  if (report.cold_start) SYBIL_SERVICE_METRIC(cold_starts.add(1));
  SYBIL_SERVICE_METRIC(replayed_records.add(report.records_replayed));
  SYBIL_SERVICE_METRIC(queue_depth.set(static_cast<double>(queue_.size())));
  SYBIL_SERVICE_METRIC(tier.set(static_cast<std::uint32_t>(tier_)));
  return report;
}

void ServiceSupervisor::update_tier() {
  const auto& o = options_.detector.overload;
  const std::size_t depth = queue_.size();
  core::ServiceTier next = tier_;
  if (depth >= o.sweep_only_watermark) {
    next = core::ServiceTier::kSweepOnly;
  } else if (depth >= o.shed_watermark) {
    // Degrade at least one tier, but never un-degrade here: a queue
    // between the watermarks keeps the tier it has (hysteresis).
    if (tier_ == core::ServiceTier::kFull) {
      next = core::ServiceTier::kShedLowPriority;
    }
  } else if (depth <= o.resume_watermark) {
    next = core::ServiceTier::kFull;
  }
  if (next != tier_) {
    tier_ = next;
    ++tier_transitions_;
    SYBIL_SERVICE_METRIC(tier_transitions.add(1));
  }
  SYBIL_SERVICE_METRIC(tier.set(static_cast<std::uint32_t>(tier_)));
}

bool ServiceSupervisor::offer(const osn::Event& e, std::uint64_t seq) {
  require_started("offer");
  update_tier();
  const bool ban = e.type == osn::EventType::kAccountBanned;
  bool shed = false;
  bool capacity = false;
  if (!ban) {
    if (queue_.size() >= options_.detector.overload.queue_capacity) {
      shed = capacity = true;
    } else if (tier_ == core::ServiceTier::kSweepOnly) {
      shed = true;
    } else if (tier_ == core::ServiceTier::kShedLowPriority &&
               low_priority(e.type)) {
      shed = true;
    }
  }

  std::uint32_t flags = tier_bits(tier_);
  if (shed) flags |= WalRecordFlags::kShed;
  if (capacity) flags |= WalRecordFlags::kCapacity;

  // Durability first: the verdict is logged before it takes effect, so
  // a crash between append and enqueue loses only counter increments
  // that replay re-derives from the record itself.
  //
  // Storage faults (ENOSPC/EIO) do NOT lose the offer: the supervisor
  // enters storage-degraded mode, where the record lands in the WAL
  // writer's bounded in-memory buffer and everything downstream —
  // verdict, counters, queue, detector — proceeds identically to the
  // undisturbed run. Power loss is the exception: the process is
  // "dead", so the error propagates.
  std::uint64_t index;
  if (storage_degraded_) {
    const std::uint64_t buffered = wal_->unsynced_records();
    if (buffered >= options_.storage.buffer_records) {
      throw StorageBufferOverflow(options_.shard_id, buffered,
                                  options_.storage.buffer_records);
    }
    index = wal_->append(e, seq, flags);  // suspended: cannot throw
  } else {
    const std::uint64_t before = wal_->next_index();
    try {
      index = wal_->append(e, seq, flags);
    } catch (const io::VfsError& err) {
      if (err.kind() == io::VfsFaultKind::kPowerLoss) throw;
      enter_storage_degraded(err);
      if (wal_->next_index() == before) {
        // Rotation failed before anything was appended; now that sync
        // is suspended the append is buffer-only and cannot throw.
        index = wal_->append(e, seq, flags);
      } else {
        // The record IS appended (buffered, not durable); the failure
        // was the post-append flush/fsync.
        index = wal_->next_index() - 1;
      }
    }
  }
  if (storage_degraded_) {
    SYBIL_SERVICE_METRIC(
        storage_buffered.set(static_cast<double>(wal_->unsynced_records())));
  }
  ++offered_;
  if (seq < kExplicitSeqLimit) next_seq_ = std::max(next_seq_, seq + 1);
  if (shed) {
    if (capacity) {
      ++shed_capacity_;
      SYBIL_SERVICE_METRIC(shed_capacity.add(1));
    } else if (tier_ == core::ServiceTier::kSweepOnly) {
      ++shed_sweep_only_;
      SYBIL_SERVICE_METRIC(shed_sweep_only.add(1));
    } else {
      ++shed_low_priority_;
      SYBIL_SERVICE_METRIC(shed_low_priority.add(1));
    }
  } else {
    queue_.push_back(WalRecord{index, seq, e, flags});
    ++admitted_;
  }
  SYBIL_SERVICE_METRIC(queue_depth.set(static_cast<double>(queue_.size())));
  maybe_checkpoint();
  storage_tick();
  return !shed;
}

void ServiceSupervisor::begin_offer_batch() {
  require_started("begin_offer_batch");
  wal_->begin_group();
}

std::uint64_t ServiceSupervisor::commit_offer_batch() {
  require_started("commit_offer_batch");
  try {
    return wal_->commit_group();
  } catch (const io::VfsError& err) {
    // The group's records are appended and buffered; only the commit
    // fsync failed. Degrade instead of unwinding — the caller simply
    // must not acknowledge the batch upstream yet (and recovery already
    // treats an unsynced group as losable, which is the contract).
    if (err.kind() == io::VfsFaultKind::kPowerLoss) throw;
    if (!storage_degraded_) enter_storage_degraded(err);
    SYBIL_SERVICE_METRIC(
        storage_buffered.set(static_cast<double>(wal_->unsynced_records())));
    return 0;
  }
}

std::size_t ServiceSupervisor::pump(std::size_t max_events) {
  require_started("pump");
  std::size_t n = 0;
  while (!queue_.empty() && (max_events == 0 || n < max_events)) {
    const WalRecord r = queue_.front();
    queue_.pop_front();
    ++pumped_;
    ++n;
    detector_.ingest(r.event, r.seq);
    if (scorer_ != nullptr) scorer_->observe(r.event);
  }
  SYBIL_SERVICE_METRIC(queue_depth.set(static_cast<double>(queue_.size())));
  publish_metrics();
  return n;
}

std::size_t ServiceSupervisor::pump_through(std::uint64_t seq_bound) {
  require_started("pump_through");
  std::size_t n = 0;
  while (!queue_.empty() && queue_.front().seq < kExplicitSeqLimit &&
         queue_.front().seq <= seq_bound) {
    const WalRecord r = queue_.front();
    queue_.pop_front();
    ++pumped_;
    ++n;
    detector_.ingest(r.event, r.seq);
    if (scorer_ != nullptr) scorer_->observe(r.event);
  }
  SYBIL_SERVICE_METRIC(queue_depth.set(static_cast<double>(queue_.size())));
  publish_metrics();
  return n;
}

std::size_t ServiceSupervisor::sweep_flags(graph::Time now) {
  require_started("sweep_flags");
  ++sweeps_;
  const std::size_t n = detector_.sweep_flags(now);
  sweep_flagged_ += n;
  // Defense refresh rides the sweep cadence: scores fold in everything
  // pumped before this sweep, a pure function of the event prefix —
  // what keeps N-shard and 1-shard annotations identical.
  if (scorer_ != nullptr) scorer_->refresh();
  SYBIL_SERVICE_METRIC(sweeps.add(1));
  return n;
}

core::FlagBatch ServiceSupervisor::take_flagged() {
  core::FlagBatch batch = detector_.take_flagged();
  if (scorer_ != nullptr) {
    for (core::FlagRecord& r : batch.records) {
      r.defense_scored = true;
      r.defense_rank = scorer_->rank_score(r.account);
      r.defense_clustering = scorer_->clustering_score(r.account);
    }
    SYBIL_SERVICE_METRIC(defense_scores.add(batch.records.size()));
  }
  return batch;
}

void ServiceSupervisor::publish_metrics() {
#if SYBIL_METRICS_COMPILED
  if (metrics_ == nullptr) return;
  std::uint64_t total_delta = 0;
  for (std::size_t i = 0; i < core::kStreamErrorCodeCount; ++i) {
    const std::uint64_t now =
        detector_.deadletter_by_reason(static_cast<core::StreamErrorCode>(i));
    const std::uint64_t delta = now - published_deadletter_[i];
    published_deadletter_[i] = now;
    total_delta += delta;
    metrics_->deadletter[i].add(delta);
  }
  metrics_->deadletter_total.add(total_delta);
  const std::uint64_t dropped = detector_.dead_letters_dropped();
  metrics_->deadletter_dropped.add(dropped - published_deadletter_dropped_);
  published_deadletter_dropped_ = dropped;
  if (scorer_ != nullptr) {
    const auto publish = [](const Metrics::Count& c, std::uint64_t now,
                            std::uint64_t& prev) {
      c.add(now - prev);
      prev = now;
    };
    publish(metrics_->defense_edges, scorer_->edges_observed(),
            published_defense_edges_);
    publish(metrics_->defense_dirty, scorer_->dirty_processed(),
            published_defense_dirty_);
    publish(metrics_->defense_rounds, scorer_->rank().rounds_total(),
            published_defense_rounds_);
    publish(metrics_->defense_full, scorer_->rank().full_recomputes(),
            published_defense_full_);
  }
#endif
}

void ServiceSupervisor::maybe_checkpoint() {
  if (options_.checkpoint_every == 0) return;
  if (wal_->next_index() % options_.checkpoint_every == 0) checkpoint_now();
}

void ServiceSupervisor::checkpoint_now() {
  require_started("checkpoint_now");
  // Checkpointing is suspended while storage-degraded: a checkpoint's
  // WAL position must never outrun durable records, and the disk is
  // rejecting writes anyway. Counted, never silent — the backlog of
  // suspended checkpoints shows up in storage.checkpoints_suspended.
  if (storage_degraded_) {
    ++storage_checkpoints_suspended_;
    SYBIL_SERVICE_METRIC(storage_checkpoints_suspended.add(1));
    return;
  }
  fire(options_.crash_hook, CrashPoint::kCheckpointCommit);

  ServiceCheckpointState state;
  state.wal_position = wal_->next_index();
  state.tier = static_cast<std::uint32_t>(tier_);
  state.shard_id = options_.shard_id;
  state.shard_count = options_.shard_count;
  state.next_seq = next_seq_;
  state.offered = offered_;
  state.admitted = admitted_;
  state.pumped = pumped_;
  state.shed_low_priority = shed_low_priority_;
  state.shed_sweep_only = shed_sweep_only_;
  state.shed_capacity = shed_capacity_;
  state.sweeps = sweeps_;
  state.sweep_flagged = sweep_flagged_;
  state.queue.assign(queue_.begin(), queue_.end());
  state.stream_state = core::serialize_stream_state(detector_);
  state.realtime_state = core::serialize_realtime_state(realtime_);
  if (scorer_ != nullptr) state.defense_state = scorer_->serialize();

  const std::string ckpt_dir = options_.dir + "/ckpt";
  try {
    // A checkpoint must never claim a position past the durable WAL,
    // so the WAL syncs first; the container commit is atomic and
    // removes its temp file on any storage fault, so a failure here
    // never touches existing generations.
    wal_->sync();
    save_service_checkpoint(checkpoint_path(ckpt_dir, state.wal_position),
                            state, options_.vfs);
  } catch (const io::VfsError& err) {
    if (err.kind() == io::VfsFaultKind::kPowerLoss) throw;
    enter_storage_degraded(err);
    ++storage_checkpoints_suspended_;
    SYBIL_SERVICE_METRIC(storage_checkpoints_suspended.add(1));
    return;
  }
  fire(options_.crash_hook, CrashPoint::kCheckpointCommitted);

  // Retention, then WAL pruning up to the oldest *retained* generation
  // — the fallback path must always find the records it would replay.
  prune_checkpoints(ckpt_dir, options_.checkpoint_retain);
  const auto generations = list_checkpoints(ckpt_dir);
  if (!generations.empty()) {
    prune_wal(options_.dir + "/wal", generations.front().first, options_.vfs);
  }
}

void ServiceSupervisor::flush(bool checkpoint) {
  require_started("flush");
  pump(0);
  detector_.finish();
  publish_metrics();
  // End-of-stream is the loud boundary: a flush cannot leave records
  // buffered behind a degraded disk, so it forces one retry and throws
  // the original fault kind if the disk still refuses.
  if (storage_degraded_ && !retry_storage_now()) {
    throw io::VfsError(
        storage_error_kind_,
        "flush: storage still degraded on shard " +
            std::to_string(options_.shard_id) + " with " +
            std::to_string(wal_->unsynced_records()) + " records buffered");
  }
  if (checkpoint) checkpoint_now();
}

void ServiceSupervisor::enter_storage_degraded(const io::VfsError& err) {
  storage_degraded_ = true;
  storage_error_kind_ = err.kind();
  wal_->suspend_sync();
  storage_backoff_ = options_.storage.retry_backoff;
  storage_retry_in_ = storage_backoff_;
  ++storage_entries_;
  SYBIL_SERVICE_METRIC(storage_entries.add(1));
}

void ServiceSupervisor::storage_tick() {
  if (!storage_degraded_) return;
  if (storage_retry_in_ > 0) --storage_retry_in_;
  if (storage_retry_in_ == 0) retry_storage_now();
}

bool ServiceSupervisor::retry_storage_now() {
  if (!storage_degraded_) return true;
  ++storage_retries_;
  SYBIL_SERVICE_METRIC(storage_retries.add(1));
  try {
    wal_->resume_sync();
  } catch (const io::VfsError& err) {
    if (err.kind() == io::VfsFaultKind::kPowerLoss) throw;
    ++storage_retry_failures_;
    SYBIL_SERVICE_METRIC(storage_retry_failures.add(1));
    storage_backoff_ =
        std::min(storage_backoff_ * 2, options_.storage.retry_backoff_cap);
    storage_retry_in_ = storage_backoff_;
    return false;
  }
  storage_degraded_ = false;
  storage_backoff_ = storage_retry_in_ = 0;
  ++storage_exits_;
  SYBIL_SERVICE_METRIC(storage_exits.add(1));
  SYBIL_SERVICE_METRIC(storage_buffered.set(0));
  return true;
}

bool ServiceSupervisor::accounting_ok() const noexcept {
  const std::uint64_t shed_total =
      shed_low_priority_ + shed_sweep_only_ + shed_capacity_;
  if (offered_ != shed_total + queue_.size() + detector_.events_in()) {
    return false;
  }
  if (admitted_ != offered_ - shed_total) return false;
  if (pumped_ != detector_.events_in()) return false;
  return detector_.events_in() ==
         detector_.applied_total() + detector_.deduped_total() +
             detector_.deadletter_total() + detector_.buffered();
}

std::string ServiceSupervisor::stats_json() const {
  std::string out = "{";
  append_field(out, "offered", offered_);
  append_field(out, "admitted", admitted_);
  out += ",\"shed\":{";
  append_field(out, "low_priority", shed_low_priority_);
  append_field(out, "sweep_only", shed_sweep_only_);
  append_field(out, "capacity", shed_capacity_);
  append_field(out, "total",
               shed_low_priority_ + shed_sweep_only_ + shed_capacity_);
  out += '}';
  append_field(out, "queued", queue_.size());
  append_field(out, "pumped", pumped_);
  append_field(out, "applied", detector_.applied_total());
  append_field(out, "deduped", detector_.deduped_total());
  out += ",\"deadlettered\":{";
  append_field(out, "total", detector_.deadletter_total());
  for (std::size_t i = 0; i < core::kStreamErrorCodeCount; ++i) {
    const auto code = static_cast<core::StreamErrorCode>(i);
    append_field(out, core::to_string(code),
                 detector_.deadletter_by_reason(code));
  }
  append_field(out, "dropped", detector_.dead_letters_dropped());
  out += '}';
  append_field(out, "buffered", detector_.buffered());
  append_field(out, "banned_party", detector_.banned_party_total());
  append_field(out, "accounts_seen", detector_.accounts_seen());
  append_field(out, "flagged_total", detector_.flagged_total());
  append_field(out, "sweeps", sweeps_);
  append_field(out, "sweep_flagged", sweep_flagged_);
  append_field(out, "next_seq", next_seq_);
  if (scorer_ != nullptr) {
    // Replay-exact like everything else here: the scorer's counters are
    // checkpointed and WAL replay re-derives them deterministically.
    out += ",\"defense\":{";
    append_field(out, "edges", scorer_->edges_observed());
    append_field(out, "ignored", scorer_->ignored());
    append_field(out, "refreshes", scorer_->refreshes());
    append_field(out, "dirty", scorer_->dirty_processed());
    append_field(out, "rank_full_recomputes",
                 scorer_->rank().full_recomputes());
    append_field(out, "rank_updates", scorer_->rank().incremental_updates());
    append_field(out, "rank_rounds", scorer_->rank().rounds_total());
    append_field(out, "rank_propagated", scorer_->rank().propagated_total());
    append_field(out, "triangles_closed",
                 scorer_->clustering().triangles_closed());
    out += '}';
  }
  out += ",\"tier\":\"";
  out += core::to_string(tier_);
  out += "\"}";
  return out;
}

}  // namespace sybil::service
