#include "service/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/metrics/instrument.h"
#include "io/container.h"
#include "io/error.h"

namespace sybil::service {

namespace fs = std::filesystem;
using io::ByteReader;
using io::ByteWriter;
using io::SnapshotError;
using io::SnapshotErrorCode;

namespace {

// Section ids within the kServiceCheckpoint container.
constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecQueue = 2;
constexpr std::uint32_t kSecStream = 3;
constexpr std::uint32_t kSecRealtime = 4;
constexpr std::uint32_t kSecDefense = 5;

// v1: PR 5 single-instance layout. v2 appends the shard identity
// (shard_id/shard_count) and the redelivery frontier (next_seq) to the
// meta section; every other section is unchanged, so v1 blobs load with
// the new fields defaulted (shard_count 0 = identity unknown). v3 adds
// the optional kSecDefense section carrying the defense-scorer state;
// the meta layout is unchanged, and v1/v2 blobs load with it empty
// (docs/FORMATS.md §5.4).
constexpr std::uint32_t kCheckpointVersion = 3;

}  // namespace

void save_service_checkpoint(const std::string& path,
                             const ServiceCheckpointState& state,
                             io::Vfs* vfs) {
  SYBIL_METRIC_SCOPED_TIMER(span, "service.checkpoint.save");
  io::ContainerWriter writer(io::PayloadKind::kServiceCheckpoint);

  ByteWriter meta;
  meta.write(kCheckpointVersion);
  meta.write(state.tier);
  meta.write(state.wal_position);
  meta.write(state.offered);
  meta.write(state.admitted);
  meta.write(state.pumped);
  meta.write(state.shed_low_priority);
  meta.write(state.shed_sweep_only);
  meta.write(state.shed_capacity);
  meta.write(state.sweeps);
  meta.write(state.sweep_flagged);
  meta.write(state.shard_id);
  meta.write(state.shard_count);
  meta.write(state.next_seq);
  writer.add_section(kSecMeta, std::move(meta).take());

  ByteWriter queue;
  queue.write(static_cast<std::uint64_t>(state.queue.size()));
  for (const WalRecord& r : state.queue) {
    queue.write(r.index);
    queue.write(r.seq);
    queue.write(static_cast<std::uint32_t>(r.event.type));
    queue.write(r.event.actor);
    queue.write(r.event.subject);
    queue.write(r.event.time);
    queue.write(r.flags);
  }
  writer.add_section(kSecQueue, std::move(queue).take());

  writer.add_section(kSecStream, state.stream_state);
  writer.add_section(kSecRealtime, state.realtime_state);
  if (!state.defense_state.empty()) {
    writer.add_section(kSecDefense, state.defense_state);
  }
  // SyncMode::kEnv: durable by default; the SYBIL_IO_FSYNC knob can
  // turn sync off for throwaway state dirs (benches, crash sweeps).
  writer.commit(path, io::SyncMode::kEnv, vfs);
  SYBIL_METRIC_COUNT("service.checkpoint.saved", 1);
}

ServiceCheckpointState load_service_checkpoint(const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "service.checkpoint.load");
  const io::ContainerReader reader(path, io::PayloadKind::kServiceCheckpoint);
  ServiceCheckpointState state;

  ByteReader meta(reader.section(kSecMeta));
  const auto version = meta.read<std::uint32_t>();
  if (version > kCheckpointVersion) {
    throw SnapshotError(SnapshotErrorCode::kUnsupportedVersion,
                        "service checkpoint v" + std::to_string(version) +
                            " newer than supported v" +
                            std::to_string(kCheckpointVersion));
  }
  state.tier = meta.read<std::uint32_t>();
  state.wal_position = meta.read<std::uint64_t>();
  state.offered = meta.read<std::uint64_t>();
  state.admitted = meta.read<std::uint64_t>();
  state.pumped = meta.read<std::uint64_t>();
  state.shed_low_priority = meta.read<std::uint64_t>();
  state.shed_sweep_only = meta.read<std::uint64_t>();
  state.shed_capacity = meta.read<std::uint64_t>();
  state.sweeps = meta.read<std::uint64_t>();
  state.sweep_flagged = meta.read<std::uint64_t>();
  if (version >= 2) {
    state.shard_id = meta.read<std::uint32_t>();
    state.shard_count = meta.read<std::uint32_t>();
    state.next_seq = meta.read<std::uint64_t>();
  }

  ByteReader queue(reader.section(kSecQueue));
  const auto n = queue.read<std::uint64_t>();
  if (n > (std::uint64_t{1} << 32)) {
    throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                        "checkpoint queue count implausibly large");
  }
  state.queue.resize(n);
  for (WalRecord& r : state.queue) {
    r.index = queue.read<std::uint64_t>();
    r.seq = queue.read<std::uint64_t>();
    r.event.type = static_cast<osn::EventType>(queue.read<std::uint32_t>());
    r.event.actor = queue.read<graph::NodeId>();
    r.event.subject = queue.read<graph::NodeId>();
    r.event.time = queue.read<graph::Time>();
    r.flags = queue.read<std::uint32_t>();
  }

  const auto stream = reader.section(kSecStream);
  state.stream_state.assign(stream.begin(), stream.end());
  const auto realtime = reader.section(kSecRealtime);
  state.realtime_state.assign(realtime.begin(), realtime.end());
  if (reader.has_section(kSecDefense)) {
    const auto defense = reader.section(kSecDefense);
    state.defense_state.assign(defense.begin(), defense.end());
  }
  SYBIL_METRIC_COUNT("service.checkpoint.loaded", 1);
  return state;
}

std::string checkpoint_path(const std::string& dir, std::uint64_t position) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%020llu.sybs",
                static_cast<unsigned long long>(position));
  return dir + "/" + buf;
}

std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  if (!fs::exists(dir)) return out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 30 || name.rfind("ckpt-", 0) != 0 ||
        name.substr(25) != ".sybs") {
      continue;
    }
    const std::string digits = name.substr(5, 20);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    out.emplace_back(std::stoull(digits), entry.path().string());
  }
  if (ec) {
    throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                        "cannot list checkpoint directory " + dir);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t prune_checkpoints(const std::string& dir, std::size_t retain) {
  const auto generations = list_checkpoints(dir);
  std::uint64_t removed = 0;
  if (generations.size() <= retain) return removed;
  for (std::size_t i = 0; i + retain < generations.size(); ++i) {
    std::error_code ec;
    if (fs::remove(generations[i].second, ec) && !ec) ++removed;
  }
  if (removed > 0) {
    SYBIL_METRIC_COUNT("service.checkpoint.pruned", removed);
  }
  return removed;
}

}  // namespace sybil::service
