#include "service/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "core/metrics/instrument.h"
#include "io/crc32.h"
#include "io/error.h"

namespace sybil::service {

namespace fs = std::filesystem;
using io::SnapshotError;
using io::SnapshotErrorCode;

namespace {

// "SYWL" in little-endian byte order: segment files start 53 59 57 4C.
constexpr std::uint32_t kWalMagic = 0x4C575953u;
constexpr std::uint16_t kWalEndianTag = 0x0102u;
constexpr std::uint16_t kWalHeaderSize = 24;
// v1: shard_id field written as zero ("reserved"). v2 stamps the owning
// shard's id there; layout is byte-identical, so v1 segments still scan
// (they predate shard identity and skip the ownership check).
constexpr std::uint32_t kWalFormatVersion = 2;

struct SegmentHeader {
  std::uint32_t magic;
  std::uint16_t endian_tag;
  std::uint16_t header_size;
  std::uint32_t format_version;
  std::uint32_t shard_id;
  std::uint64_t base_index;
};
static_assert(sizeof(SegmentHeader) == kWalHeaderSize);

/// Record payload as laid out on disk, after the leading CRC32. The
/// field order packs without padding; the static_assert enforces it.
struct RecordDisk {
  std::uint64_t index;
  std::uint64_t seq;
  double time;
  std::uint32_t actor;
  std::uint32_t subject;
  std::uint32_t type;
  std::uint32_t flags;
};
constexpr std::size_t kRecordPayloadSize = 40;
constexpr std::size_t kRecordSize = 4 + kRecordPayloadSize;
static_assert(sizeof(RecordDisk) == kRecordPayloadSize);

std::string segment_name(std::uint64_t base) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.seg",
                static_cast<unsigned long long>(base));
  return buf;
}

std::uint32_t payload_crc(const RecordDisk& rec) noexcept {
  return io::crc32({reinterpret_cast<const std::byte*>(&rec), sizeof(rec)});
}

/// Chunked read adapter for recovery scans: the scan reads a 4-byte
/// CRC and a 40-byte record at a time, which through the raw VFS
/// passthrough is a syscall (plus a metric bump) per call — a 64 KiB
/// front buffer amortizes both without changing read semantics (short
/// reads still only happen at end of file).
class ScanReader {
 public:
  explicit ScanReader(io::VfsFile& inner) : inner_(inner) {}

  std::size_t read(void* buf, std::size_t n) {
    auto* dst = static_cast<unsigned char*>(buf);
    std::size_t done = 0;
    while (done < n) {
      if (pos_ == len_) {
        len_ = inner_.read(buffer_, sizeof buffer_);
        pos_ = 0;
        if (len_ == 0) break;
      }
      const std::size_t take = std::min(n - done, len_ - pos_);
      std::memcpy(dst + done, buffer_ + pos_, take);
      pos_ += take;
      done += take;
    }
    return done;
  }

 private:
  io::VfsFile& inner_;
  unsigned char buffer_[1 << 16];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

/// Segment files in `dir`, sorted by base index parsed from the name.
std::vector<std::pair<std::uint64_t, fs::path>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, fs::path>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
        name.substr(24) != ".seg") {
      continue;
    }
    const std::string digits = name.substr(4, 20);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    out.emplace_back(std::stoull(digits), entry.path());
  }
  if (ec) {
    throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                        "cannot list WAL directory " + dir);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

void WalOptions::validate() const {
  if (dir.empty()) {
    throw std::invalid_argument("WalOptions: dir must be non-empty");
  }
  if (segment_records == 0) {
    throw std::invalid_argument("WalOptions: segment_records must be >= 1");
  }
}

WalWriter::WalWriter(const WalOptions& options, std::uint64_t next_index)
    : options_(options),
      vfs_(options.vfs != nullptr ? options.vfs : io::default_vfs()),
      next_index_(next_index) {
  options_.validate();
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                        "cannot create WAL directory " + options_.dir);
  }
  open_segment();
}

// BufferedVfsFile's destructor best-effort flushes and closes without
// throwing; destruction of a degraded writer simply drops the backlog.
WalWriter::~WalWriter() = default;

void WalWriter::open_segment() {
  if (file_ != nullptr) {
    // Seal the outgoing segment: whatever durability the policy
    // promises must hold before the writer moves on. Throws VfsError
    // (backlog retained, rotation not started) if the disk refuses.
    sync_per_policy();
  }
  const std::uint64_t base = next_index_;
  const std::string path = options_.dir + "/" + segment_name(base);
  std::unique_ptr<io::BufferedVfsFile> fresh;
  try {
    fresh = std::make_unique<io::BufferedVfsFile>(
        vfs_->open(path, io::VfsMode::kTruncate));
    SegmentHeader header{};
    header.magic = kWalMagic;
    header.endian_tag = kWalEndianTag;
    header.header_size = kWalHeaderSize;
    header.format_version = kWalFormatVersion;
    header.shard_id = options_.shard_id;
    header.base_index = base;
    fresh->write(&header, sizeof(header));
    fresh->flush();
    if (options_.fsync != WalFsync::kNever) {
      fresh->fsync();
      SYBIL_METRIC_COUNT("service.wal.fsyncs", 1);
      // Make the directory entry itself durable: a synced segment that
      // vanishes on power loss is no WAL at all.
      vfs_->sync_parent_dir(path);
      SYBIL_METRIC_COUNT("io.fsyncs", 1);
    }
  } catch (const io::VfsError&) {
    // Remove the stillborn segment so no file claims base `base`: the
    // scan/prune range invariant (segment i covers [base_i, base_{i+1}))
    // must keep holding while the sealed segment absorbs further
    // records in degraded mode.
    fresh.reset();
    vfs_->remove(path);
    throw;
  }
  if (file_ != nullptr) {
    try {
      file_->close();
    } catch (const io::VfsError&) {
      // The outgoing segment was flushed (and per policy fsync'd)
      // above; a close failure after that cannot lose acknowledged
      // records but must still surface typed — undo the rotation first.
      fresh.reset();
      vfs_->remove(path);
      throw;
    }
  }
  file_ = std::move(fresh);
  segment_base_ = base;
  segment_path_ = path;
  ++segments_opened_;
  SYBIL_METRIC_COUNT("service.wal.segments", 1);
  if (options_.crash_hook) options_.crash_hook(CrashPoint::kWalRotate);
}

void WalWriter::write_bytes(const void* data, std::size_t n) {
  file_->write(data, n);  // buffered: cannot fail
}

void WalWriter::flush_buffer() {
  file_->flush();
  unsynced_records_ = 0;
}

void WalWriter::sync_per_policy() {
  flush_buffer();
  if (options_.fsync != WalFsync::kNever) {
    file_->fsync();
    SYBIL_METRIC_COUNT("service.wal.fsyncs", 1);
  }
}

std::uint64_t WalWriter::append(const osn::Event& e, std::uint64_t seq,
                                std::uint32_t flags) {
  if (!sync_suspended_ &&
      next_index_ - segment_base_ >= options_.segment_records) {
    open_segment();  // may throw: nothing appended, writer unchanged
  }
  RecordDisk rec{};
  rec.index = next_index_;
  rec.seq = seq;
  rec.time = e.time;
  rec.actor = e.actor;
  rec.subject = e.subject;
  rec.type = static_cast<std::uint32_t>(e.type);
  rec.flags = flags;
  const std::uint32_t crc = payload_crc(rec);
  const auto* bytes = reinterpret_cast<const std::byte*>(&rec);
  write_bytes(&crc, sizeof(crc));
  if (options_.crash_hook) {
    // Two-phase write so a hook throwing at kWalRecordHalf leaves a
    // genuinely torn record on disk (the flushed first half survives
    // the simulated crash; the second half was never written).
    write_bytes(bytes, kRecordPayloadSize / 2);
    try {
      if (!sync_suspended_) file_->flush();
    } catch (const io::VfsError&) {
      // A storage fault mid-record: complete the record in the buffer
      // so the on-disk torn prefix is exactly the head of the retained
      // bytes — the next successful flush heals the tear seamlessly —
      // then report the record appended-but-not-durable.
      write_bytes(bytes + kRecordPayloadSize / 2, kRecordPayloadSize / 2);
      ++unsynced_records_;
      ++next_index_;
      SYBIL_METRIC_COUNT("service.wal.appends", 1);
      SYBIL_METRIC_COUNT("service.wal.bytes", kRecordSize);
      throw;
    }
    options_.crash_hook(CrashPoint::kWalRecordHalf);
    write_bytes(bytes + kRecordPayloadSize / 2, kRecordPayloadSize / 2);
  } else {
    write_bytes(bytes, sizeof(rec));
  }
  SYBIL_METRIC_COUNT("service.wal.appends", 1);
  SYBIL_METRIC_COUNT("service.wal.bytes", kRecordSize);
  ++unsynced_records_;
  const std::uint64_t index = next_index_++;
  if (in_group_) {
    // Deferred durability: the record stays buffered until
    // commit_group() issues the coalesced flush + fsync.
    ++group_records_;
  } else if (options_.fsync == WalFsync::kEveryAppend && !sync_suspended_) {
    // Throws VfsError on a storage fault — after the index advanced:
    // the record is appended but not durable (see the header contract).
    sync_per_policy();
  }
  if (options_.crash_hook) options_.crash_hook(CrashPoint::kWalAppend);
  return index;
}

void WalWriter::begin_group() {
  if (in_group_) {
    throw std::logic_error("WalWriter: begin_group while a group is open");
  }
  in_group_ = true;
  group_records_ = 0;
}

std::uint64_t WalWriter::commit_group() {
  if (!in_group_) {
    throw std::logic_error("WalWriter: commit_group without begin_group");
  }
  in_group_ = false;
  const std::uint64_t n = group_records_;
  group_records_ = 0;
  if (options_.fsync == WalFsync::kEveryAppend && n > 0 && !sync_suspended_) {
    // Throws VfsError on a storage fault: the group's records stay
    // appended (and retained in the buffer); the caller decides whether
    // to degrade. The group is closed either way.
    sync_per_policy();
  }
  SYBIL_METRIC_COUNT("service.wal.group_commit.groups", 1);
  SYBIL_METRIC_COUNT("service.wal.group_commit.records", n);
  if (options_.crash_hook) options_.crash_hook(CrashPoint::kWalGroupCommit);
  return n;
}

void WalWriter::sync() {
  if (sync_suspended_) return;  // degraded: nothing to promise
  sync_per_policy();
}

void WalWriter::resume_sync() {
  // Push the whole degraded backlog, then restore the configured
  // durability policy. Retention makes this all-or-nothing: on a
  // VfsError the unwritten suffix stays buffered and the writer stays
  // suspended for the next retry.
  flush_buffer();
  if (options_.fsync != WalFsync::kNever) {
    file_->fsync();
    SYBIL_METRIC_COUNT("service.wal.fsyncs", 1);
  }
  sync_suspended_ = false;
}

std::vector<WalRecord> scan_wal(const std::string& dir,
                                std::uint64_t from_index,
                                WalScanReport& report,
                                std::uint32_t expected_shard, io::Vfs* vfs) {
  if (vfs == nullptr) vfs = io::default_vfs();
  report = WalScanReport{};
  report.next_index = from_index;
  std::vector<WalRecord> out;
  if (!fs::exists(dir)) return out;  // cold start: nothing logged yet
  const auto segments = list_segments(dir);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [base, path] = segments[i];
    // A segment's record range ends where the next one begins; skip
    // segments entirely behind the checkpoint without reading records.
    if (i + 1 < segments.size() && segments[i + 1].first <= from_index) {
      continue;
    }
    ++report.segments_scanned;
    std::unique_ptr<io::VfsFile> f;
    try {
      f = vfs->open(path.string(), io::VfsMode::kRead);
    } catch (const io::VfsError&) {
      throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                          "cannot open WAL segment " + path.string());
    }
    const auto reader = std::make_unique<ScanReader>(*f);
    SegmentHeader header{};
    const bool header_ok =
        reader->read(&header, sizeof(header)) == sizeof(header) &&
        header.magic == kWalMagic && header.endian_tag == kWalEndianTag &&
        header.header_size == kWalHeaderSize &&
        header.format_version <= kWalFormatVersion &&
        header.base_index == base;
    if (!header_ok) {
      // An unreadable header means the whole segment is untrustworthy
      // (created but never secured). Nothing in it can be replayed;
      // leave the file for a writer at this base to overwrite.
      ++report.torn_tails_healed;
      SYBIL_METRIC_COUNT("service.wal.torn_tails", 1);
      continue;
    }
    if (expected_shard != kWalAnyShard && header.format_version >= 2 &&
        header.shard_id != expected_shard) {
      throw SnapshotError(
          SnapshotErrorCode::kFormatViolation,
          "WAL segment " + path.string() + " belongs to shard " +
              std::to_string(header.shard_id) + ", not shard " +
              std::to_string(expected_shard));
    }
    std::uint64_t valid = 0;  // records validated in this segment
    bool tail_bad = false;
    for (;;) {
      std::uint32_t crc = 0;
      RecordDisk rec{};
      const std::size_t got_crc = reader->read(&crc, sizeof(crc));
      if (got_crc == 0) break;  // clean end of segment
      const std::size_t got_rec =
          got_crc == sizeof(crc) ? reader->read(&rec, sizeof(rec)) : 0;
      if (got_rec != sizeof(rec) || payload_crc(rec) != crc ||
          rec.index != base + valid) {
        tail_bad = true;
        break;
      }
      ++valid;
      ++report.records_scanned;
      if (rec.index >= from_index) {
        WalRecord r;
        r.index = rec.index;
        r.seq = rec.seq;
        r.event.type = static_cast<osn::EventType>(rec.type);
        r.event.actor = rec.actor;
        r.event.subject = rec.subject;
        r.event.time = rec.time;
        r.flags = rec.flags;
        out.push_back(r);
        ++report.records_returned;
      }
      report.next_index = std::max(report.next_index, rec.index + 1);
    }
    if (tail_bad) {
      // Strict prefix semantics: nothing at or after the first bad
      // record is trusted. Heal the file back to its last valid record
      // so the next scan is clean.
      std::error_code size_ec;
      const auto file_size = fs::file_size(path, size_ec);
      const std::uint64_t keep = kWalHeaderSize + valid * kRecordSize;
      if (!size_ec && file_size > keep) {
        const std::uint64_t dropped_bytes = file_size - keep;
        // Whole bad records plus any partial trailing bytes count as
        // one truncated record each.
        report.records_truncated +=
            (dropped_bytes + kRecordSize - 1) / kRecordSize;
        try {
          vfs->truncate(path.string(), keep);
        } catch (const io::VfsError&) {
          throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                              "cannot heal WAL segment " + path.string());
        }
        ++report.torn_tails_healed;
        SYBIL_METRIC_COUNT("service.wal.torn_tails", 1);
        SYBIL_METRIC_COUNT("service.wal.truncated_records",
                           (dropped_bytes + kRecordSize - 1) / kRecordSize);
      }
    }
  }
  SYBIL_METRIC_COUNT("service.wal.scanned_records", report.records_scanned);
  return out;
}

std::uint64_t prune_wal(const std::string& dir, std::uint64_t index,
                        io::Vfs* vfs) {
  if (vfs == nullptr) vfs = io::default_vfs();
  if (!fs::exists(dir)) return 0;
  const auto segments = list_segments(dir);
  std::uint64_t removed = 0;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i covers [base_i, base_{i+1}); delete it only when every
    // record it can hold is behind the oldest retained checkpoint.
    if (segments[i + 1].first <= index) {
      if (vfs->remove(segments[i].second.string())) ++removed;
    }
  }
  if (removed > 0) SYBIL_METRIC_COUNT("service.wal.segments_pruned", removed);
  return removed;
}

}  // namespace sybil::service
