#include "service/wal.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "core/metrics/instrument.h"
#include "io/container.h"
#include "io/crc32.h"
#include "io/error.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sybil::service {

namespace fs = std::filesystem;
using io::SnapshotError;
using io::SnapshotErrorCode;

namespace {

// "SYWL" in little-endian byte order: segment files start 53 59 57 4C.
constexpr std::uint32_t kWalMagic = 0x4C575953u;
constexpr std::uint16_t kWalEndianTag = 0x0102u;
constexpr std::uint16_t kWalHeaderSize = 24;
// v1: shard_id field written as zero ("reserved"). v2 stamps the owning
// shard's id there; layout is byte-identical, so v1 segments still scan
// (they predate shard identity and skip the ownership check).
constexpr std::uint32_t kWalFormatVersion = 2;

struct SegmentHeader {
  std::uint32_t magic;
  std::uint16_t endian_tag;
  std::uint16_t header_size;
  std::uint32_t format_version;
  std::uint32_t shard_id;
  std::uint64_t base_index;
};
static_assert(sizeof(SegmentHeader) == kWalHeaderSize);

/// Record payload as laid out on disk, after the leading CRC32. The
/// field order packs without padding; the static_assert enforces it.
struct RecordDisk {
  std::uint64_t index;
  std::uint64_t seq;
  double time;
  std::uint32_t actor;
  std::uint32_t subject;
  std::uint32_t type;
  std::uint32_t flags;
};
constexpr std::size_t kRecordPayloadSize = 40;
constexpr std::size_t kRecordSize = 4 + kRecordPayloadSize;
static_assert(sizeof(RecordDisk) == kRecordPayloadSize);

std::string segment_name(std::uint64_t base) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.seg",
                static_cast<unsigned long long>(base));
  return buf;
}

std::uint32_t payload_crc(const RecordDisk& rec) noexcept {
  return io::crc32({reinterpret_cast<const std::byte*>(&rec), sizeof(rec)});
}

/// Segment files in `dir`, sorted by base index parsed from the name.
std::vector<std::pair<std::uint64_t, fs::path>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, fs::path>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
        name.substr(24) != ".seg") {
      continue;
    }
    const std::string digits = name.substr(4, 20);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    out.emplace_back(std::stoull(digits), entry.path());
  }
  if (ec) {
    throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                        "cannot list WAL directory " + dir);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool fsync_file(std::FILE* f) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(f)) != 0) return false;
  SYBIL_METRIC_COUNT("service.wal.fsyncs", 1);
  return true;
#else
  (void)f;
  return true;
#endif
}

}  // namespace

void WalOptions::validate() const {
  if (dir.empty()) {
    throw std::invalid_argument("WalOptions: dir must be non-empty");
  }
  if (segment_records == 0) {
    throw std::invalid_argument("WalOptions: segment_records must be >= 1");
  }
}

WalWriter::WalWriter(const WalOptions& options, std::uint64_t next_index)
    : options_(options), next_index_(next_index) {
  options_.validate();
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                        "cannot create WAL directory " + options_.dir);
  }
  open_segment();
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void WalWriter::open_segment() {
  if (file_ != nullptr) {
    // Seal the outgoing segment: whatever durability the policy
    // promises must hold before the writer moves on.
    std::fflush(file_);
    if (options_.fsync != WalFsync::kNever) fsync_file(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
  segment_base_ = next_index_;
  segment_path_ = options_.dir + "/" + segment_name(segment_base_);
  file_ = std::fopen(segment_path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                        "cannot create WAL segment " + segment_path_);
  }
  SegmentHeader header{};
  header.magic = kWalMagic;
  header.endian_tag = kWalEndianTag;
  header.header_size = kWalHeaderSize;
  header.format_version = kWalFormatVersion;
  header.shard_id = options_.shard_id;
  header.base_index = segment_base_;
  write_bytes(&header, sizeof(header));
  if (std::fflush(file_) != 0) {
    throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                        "cannot write WAL segment header " + segment_path_);
  }
  if (options_.fsync != WalFsync::kNever) {
    fsync_file(file_);
    // Make the directory entry itself durable: a synced segment that
    // vanishes on power loss is no WAL at all.
    io::fsync_parent_dir(segment_path_);
  }
  ++segments_opened_;
  SYBIL_METRIC_COUNT("service.wal.segments", 1);
  if (options_.crash_hook) options_.crash_hook(CrashPoint::kWalRotate);
}

void WalWriter::write_bytes(const void* data, std::size_t n) {
  if (std::fwrite(data, 1, n, file_) != n) {
    throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                        "WAL write failed: " + segment_path_);
  }
}

std::uint64_t WalWriter::append(const osn::Event& e, std::uint64_t seq,
                                std::uint32_t flags) {
  if (next_index_ - segment_base_ >= options_.segment_records) {
    open_segment();
  }
  RecordDisk rec{};
  rec.index = next_index_;
  rec.seq = seq;
  rec.time = e.time;
  rec.actor = e.actor;
  rec.subject = e.subject;
  rec.type = static_cast<std::uint32_t>(e.type);
  rec.flags = flags;
  const std::uint32_t crc = payload_crc(rec);
  if (options_.crash_hook) {
    // Two-phase write so a hook throwing at kWalRecordHalf leaves a
    // genuinely torn record on disk (the flushed first half survives
    // the simulated crash; the second half was never written).
    const auto* bytes = reinterpret_cast<const std::byte*>(&rec);
    write_bytes(&crc, sizeof(crc));
    write_bytes(bytes, kRecordPayloadSize / 2);
    std::fflush(file_);
    options_.crash_hook(CrashPoint::kWalRecordHalf);
    write_bytes(bytes + kRecordPayloadSize / 2, kRecordPayloadSize / 2);
  } else {
    write_bytes(&crc, sizeof(crc));
    write_bytes(&rec, sizeof(rec));
  }
  if (in_group_) {
    // Deferred durability: the record stays buffered until
    // commit_group() issues the coalesced flush + fsync.
    ++group_records_;
  } else if (options_.fsync == WalFsync::kEveryAppend) {
    if (std::fflush(file_) != 0 || !fsync_file(file_)) {
      throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                          "WAL fsync failed: " + segment_path_);
    }
  }
  SYBIL_METRIC_COUNT("service.wal.appends", 1);
  SYBIL_METRIC_COUNT("service.wal.bytes", kRecordSize);
  const std::uint64_t index = next_index_++;
  if (options_.crash_hook) options_.crash_hook(CrashPoint::kWalAppend);
  return index;
}

void WalWriter::begin_group() {
  if (in_group_) {
    throw std::logic_error("WalWriter: begin_group while a group is open");
  }
  in_group_ = true;
  group_records_ = 0;
}

std::uint64_t WalWriter::commit_group() {
  if (!in_group_) {
    throw std::logic_error("WalWriter: commit_group without begin_group");
  }
  in_group_ = false;
  const std::uint64_t n = group_records_;
  group_records_ = 0;
  if (options_.fsync == WalFsync::kEveryAppend && n > 0) {
    if (std::fflush(file_) != 0 || !fsync_file(file_)) {
      throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                          "WAL group-commit fsync failed: " + segment_path_);
    }
  }
  SYBIL_METRIC_COUNT("service.wal.group_commit.groups", 1);
  SYBIL_METRIC_COUNT("service.wal.group_commit.records", n);
  if (options_.crash_hook) options_.crash_hook(CrashPoint::kWalGroupCommit);
  return n;
}

void WalWriter::sync() {
  if (std::fflush(file_) != 0) {
    throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                        "WAL flush failed: " + segment_path_);
  }
  if (options_.fsync != WalFsync::kNever) fsync_file(file_);
}

std::vector<WalRecord> scan_wal(const std::string& dir,
                                std::uint64_t from_index,
                                WalScanReport& report,
                                std::uint32_t expected_shard) {
  report = WalScanReport{};
  report.next_index = from_index;
  std::vector<WalRecord> out;
  if (!fs::exists(dir)) return out;  // cold start: nothing logged yet
  const auto segments = list_segments(dir);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [base, path] = segments[i];
    // A segment's record range ends where the next one begins; skip
    // segments entirely behind the checkpoint without reading records.
    if (i + 1 < segments.size() && segments[i + 1].first <= from_index) {
      continue;
    }
    ++report.segments_scanned;
    std::FILE* f = std::fopen(path.string().c_str(), "rb");
    if (f == nullptr) {
      throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                          "cannot open WAL segment " + path.string());
    }
    SegmentHeader header{};
    const bool header_ok =
        std::fread(&header, 1, sizeof(header), f) == sizeof(header) &&
        header.magic == kWalMagic && header.endian_tag == kWalEndianTag &&
        header.header_size == kWalHeaderSize &&
        header.format_version <= kWalFormatVersion &&
        header.base_index == base;
    if (!header_ok) {
      // An unreadable header means the whole segment is untrustworthy
      // (created but never secured). Nothing in it can be replayed;
      // leave the file for a writer at this base to overwrite.
      std::fclose(f);
      ++report.torn_tails_healed;
      SYBIL_METRIC_COUNT("service.wal.torn_tails", 1);
      continue;
    }
    if (expected_shard != kWalAnyShard && header.format_version >= 2 &&
        header.shard_id != expected_shard) {
      std::fclose(f);
      throw SnapshotError(
          SnapshotErrorCode::kFormatViolation,
          "WAL segment " + path.string() + " belongs to shard " +
              std::to_string(header.shard_id) + ", not shard " +
              std::to_string(expected_shard));
    }
    std::uint64_t valid = 0;  // records validated in this segment
    bool tail_bad = false;
    for (;;) {
      std::uint32_t crc = 0;
      RecordDisk rec{};
      const std::size_t got_crc = std::fread(&crc, 1, sizeof(crc), f);
      if (got_crc == 0) break;  // clean end of segment
      const std::size_t got_rec = got_crc == sizeof(crc)
                                      ? std::fread(&rec, 1, sizeof(rec), f)
                                      : 0;
      if (got_rec != sizeof(rec) || payload_crc(rec) != crc ||
          rec.index != base + valid) {
        tail_bad = true;
        break;
      }
      ++valid;
      ++report.records_scanned;
      if (rec.index >= from_index) {
        WalRecord r;
        r.index = rec.index;
        r.seq = rec.seq;
        r.event.type = static_cast<osn::EventType>(rec.type);
        r.event.actor = rec.actor;
        r.event.subject = rec.subject;
        r.event.time = rec.time;
        r.flags = rec.flags;
        out.push_back(r);
        ++report.records_returned;
      }
      report.next_index = std::max(report.next_index, rec.index + 1);
    }
    if (tail_bad) {
      // Strict prefix semantics: nothing at or after the first bad
      // record is trusted. Heal the file back to its last valid record
      // so the next scan is clean.
      std::error_code size_ec;
      const auto file_size = fs::file_size(path, size_ec);
      std::fclose(f);
      const std::uint64_t keep = kWalHeaderSize + valid * kRecordSize;
      if (!size_ec && file_size > keep) {
        const std::uint64_t dropped_bytes = file_size - keep;
        // Whole bad records plus any partial trailing bytes count as
        // one truncated record each.
        report.records_truncated +=
            (dropped_bytes + kRecordSize - 1) / kRecordSize;
        std::error_code resize_ec;
        fs::resize_file(path, keep, resize_ec);
        if (resize_ec) {
          throw SnapshotError(SnapshotErrorCode::kWriteFailed,
                              "cannot heal WAL segment " + path.string());
        }
        ++report.torn_tails_healed;
        SYBIL_METRIC_COUNT("service.wal.torn_tails", 1);
        SYBIL_METRIC_COUNT("service.wal.truncated_records",
                           (dropped_bytes + kRecordSize - 1) / kRecordSize);
      }
    } else {
      std::fclose(f);
    }
  }
  SYBIL_METRIC_COUNT("service.wal.scanned_records", report.records_scanned);
  return out;
}

std::uint64_t prune_wal(const std::string& dir, std::uint64_t index) {
  if (!fs::exists(dir)) return 0;
  const auto segments = list_segments(dir);
  std::uint64_t removed = 0;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i covers [base_i, base_{i+1}); delete it only when every
    // record it can hold is behind the oldest retained checkpoint.
    if (segments[i + 1].first <= index) {
      std::error_code ec;
      if (fs::remove(segments[i].second, ec) && !ec) ++removed;
    }
  }
  if (removed > 0) SYBIL_METRIC_COUNT("service.wal.segments_pruned", removed);
  return removed;
}

}  // namespace sybil::service
