// Rolling structure-based defense scores for one service shard.
//
// The registry defenses (detectors/defense.h) are batch algorithms over
// a static graph. DefenseScorer is their live-service counterpart — the
// `service.defense.*` sweep tier (docs/DEFENSES.md): the supervisor
// feeds it every *pumped* event, it grows a graph::DynamicGraph from
// the edge-bearing kinds (accepted requests, seeded friendships), and
// each flag sweep refresh()es two incremental defenses over the dirty
// vertices:
//
//   detect::IncrementalSybilRank      rolling trust propagation
//   detect::IncrementalClustering     rolling clustering coefficients
//
// Scores are a *second signal*: take_flagged() annotates the threshold
// detector's FlagRecords with them (defense_rank / defense_clustering
// columns), never changing who is flagged — so every byte-identical
// contract of the defense-off service survives unchanged.
//
// Determinism: the scorer sees exactly the pumped event sequence, which
// WAL replay reproduces exactly; duplicate edges and out-of-bound ids
// are skipped deterministically; and both incremental defenses are
// single-threaded with fixed evaluation order. Checkpoints carry the
// full scorer state (serialize()/restore()), so a recovered shard
// scores byte-identically to one that never crashed. Counted caveat:
// enabling `defense` on a service whose WAL was already pruned loses
// the pre-checkpoint edges — enable the tier from the service's birth.
#pragma once

#include <cstdint>
#include <vector>

#include "core/detector_options.h"
#include "detectors/incremental_clustering.h"
#include "detectors/incremental_rank.h"
#include "graph/dynamic_graph.h"
#include "io/container.h"
#include "osn/events.h"

namespace sybil::service {

class DefenseScorer {
 public:
  explicit DefenseScorer(const core::DetectorOptions& options);

  /// Folds one pumped event into the rolling graph. Non-edge kinds are
  /// ignored; self-loops, duplicates and ids beyond
  /// ingest.max_account_id are counted as `ignored` and skipped.
  void observe(const osn::Event& e);

  /// Sweep-tier refresh: updates rank scores from the dirty vertices
  /// (first call = initial full recompute) and clears the dirty set.
  /// Clustering needs no refresh — it is maintained per edge.
  void refresh();

  /// Degree-normalized SybilRank trust (0.0 before the first refresh,
  /// for unknown nodes, and when no seeds are configured).
  double rank_score(graph::NodeId u) const { return rank_.score(u); }

  /// Rolling local clustering coefficient (0.0 for unknown nodes).
  double clustering_score(graph::NodeId u) const {
    return clustering_.coefficient(u);
  }

  const graph::DynamicGraph& graph() const noexcept { return graph_; }
  const detect::IncrementalSybilRank& rank() const noexcept { return rank_; }
  const detect::IncrementalClustering& clustering() const noexcept {
    return clustering_;
  }

  // Replay-exact counters (reported in stats_json's "defense" object).
  std::uint64_t edges_observed() const noexcept { return edges_observed_; }
  std::uint64_t ignored() const noexcept { return ignored_; }
  std::uint64_t refreshes() const noexcept { return refreshes_; }
  /// Dirty vertices folded across all refreshes.
  std::uint64_t dirty_processed() const noexcept { return dirty_processed_; }

  /// Byte-exact state blob for the service checkpoint's defense
  /// section; restore() rebuilds an identical scorer.
  std::vector<std::byte> serialize() const;
  void restore(const std::vector<std::byte>& bytes);

 private:
  std::uint32_t max_account_id_;
  std::vector<graph::NodeId> seeds_;
  graph::DynamicGraph graph_;
  detect::IncrementalSybilRank rank_;
  detect::IncrementalClustering clustering_;
  std::uint64_t edges_observed_ = 0;
  std::uint64_t ignored_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t dirty_processed_ = 0;
};

}  // namespace sybil::service
