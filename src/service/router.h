// N-way sharded detection service: a ShardRouter hash-partitions the
// event stream by account id across N ServiceSupervisor shards, each
// owning its own WAL segments, checkpoint generations, recovery path
// and 3-tier degradation state (one overloaded shard sheds without
// dragging the others down).
//
// Cross-shard protocol. An event's feature effects decide who must see
// it (derived from the StreamDetector handlers; docs/ROBUSTNESS.md
// §Sharded recovery has the argument):
//
//   kAccountCreated                 → owner(actor) only
//   kRequestSent/Rejected/Dropped   → owner(actor) + owner(subject)
//                                     (double-delivery; one copy when
//                                     both parties hash to one shard)
//   kRequestAccepted/
//   kFriendshipSeeded               → every shard (edges feed the
//                                     clustering coefficient of third-
//                                     party watchers on any shard)
//   kAccountBanned                  → every shard (ban bits gate every
//                                     handler and are never shed)
//   unknown types                   → routed like a pair event and left
//                                     for each shard's dead-letter path
//
// With this routing the owner shard of any account X receives every
// event that can mutate X's state, in global (time, seq) order, so its
// per-account features and flag times are identical to a 1-shard run.
// Non-owner shards hold partial replicas and may spuriously flag
// accounts they do not own; take_flagged() keeps owner-shard records
// only and merges them in canonical (flagged_at, account) order, which
// is how the N-shard FlagBatch is byte-identical to the 1-shard one.
//
// Exactly-once across crashes: every delivered copy lands in the target
// shard's WAL with its global seq, so each shard's recovery exposes a
// redelivery frontier (RecoveryReport::next_seq). The router suppresses
// re-offered seqs below a shard's frontier, keeping per-shard WALs
// duplicate-free — replay determinism and the kill-at-every-boundary
// sweep therefore hold *per shard*, with designed cross-shard copies
// accounted explicitly (copies_routed/delivered/suppressed).
//
// Accounting. Each shard keeps the PR 5 identity
//   offered == applied + deduped + deadlettered + buffered
//              + queued + shed
// and the router-aggregated identity is the sum over shards, where
// "offered" counts delivered copies, not unique events (fanout is
// reported separately, so unique-event math stays recoverable).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "service/supervisor.h"

namespace sybil::service {

/// Owning shard of an account id: splitmix64-mixed, then reduced mod
/// `shards`, so adjacent ids spread instead of striping.
std::uint32_t shard_of(graph::NodeId id, std::uint32_t shards) noexcept;

/// Allocation-free routing decision for one event: either a broadcast
/// to every shard, or up to two explicit targets (ascending, already
/// collapsed when both parties hash to one shard). This is the hot-path
/// form — route_shards() materializes the same set as a vector.
struct RoutePlan {
  bool broadcast = false;
  std::uint32_t count = 0;               // targets used when !broadcast
  std::array<std::uint32_t, 2> target{};
};

/// Computes where an event goes, without touching the heap. The per-
/// event dispatch (type switch + owner hashing) happens once here, so
/// a broadcast to N shards costs one plan, not N re-dispatches.
RoutePlan plan_route(const osn::Event& e, std::uint32_t shards) noexcept;

/// The shards an event is delivered to, ascending and deduplicated.
/// Exposed for tests and capacity planning; wraps plan_route().
std::vector<std::uint32_t> route_shards(const osn::Event& e,
                                        std::uint32_t shards);

/// Crash hook with shard addressing: faults::ShardCrashInjector binds
/// here to kill one shard at a chosen durability boundary while its
/// peers run clean.
using ShardCrashHook = std::function<void(std::uint32_t shard, CrashPoint)>;

struct ShardRouterOptions {
  /// Template for every shard. `dir` is the *root*: shard i lives in
  /// "<dir>/shard-<4 digits>". shard_id/shard_count/crash_hook are
  /// overwritten per shard; the template's own crash_hook must be empty
  /// (use the shard-addressed hook below).
  ServiceOptions shard{};
  std::uint32_t shards = 1;
  ShardCrashHook crash_hook{};
  /// Shard-addressed storage backend: when set, shard i's supervisor
  /// runs every durable path through shard_vfs(i) instead of the
  /// template's `shard.vfs` — how the chaos [disk] section injects
  /// ENOSPC/EIO/power-loss into exactly one shard's disk while its
  /// peers stay clean. May return null (→ io::default_vfs()).
  std::function<io::Vfs*(std::uint32_t)> shard_vfs{};

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// What start() found: per-shard recovery outcomes plus the global
/// resume point.
struct RouterRecoveryReport {
  std::vector<RecoveryReport> shards;
  /// Resume the global stream here: the minimum shard frontier. Events
  /// at or past it may be missing from some shard; events below it are
  /// durable everywhere they were routed (re-offering them is harmless
  /// — every copy is suppressed).
  std::uint64_t next_seq = 0;
};

/// Per-offer outcome: how the copies fanned out.
struct RouteResult {
  std::uint32_t routed = 0;      // target shards for this event
  std::uint32_t delivered = 0;   // copies offered into a shard
  std::uint32_t suppressed = 0;  // copies dropped by a shard's frontier
  std::uint32_t admitted = 0;    // delivered copies that were not shed
  /// Copies addressed to a down shard and skipped. NOT part of `routed`
  /// (or the routed == delivered + suppressed identity): a down shard's
  /// copies are owed, not routed, and the re-drive after restart_shard
  /// delivers them.
  std::uint32_t skipped_down = 0;
};

class ShardRouter {
 public:
  /// Validates options and builds the shards; no I/O until start().
  explicit ShardRouter(const ShardRouterOptions& options);
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Recovers every shard (checkpoint + WAL replay each) and opens the
  /// per-shard WALs. Refuses a root holding shard directories at or
  /// past `shards` — resharding is not a restart, it needs a migration.
  RouterRecoveryReport start();

  /// Routes one event. `seq` must be an explicit global stream seq
  /// (below kExplicitSeqLimit); offers must replay the same (event,
  /// seq) pairs in the same order after any rewind — at-least-once
  /// upstream, exactly-once per shard via the frontiers.
  RouteResult offer(const osn::Event& e, std::uint64_t seq);

  /// Routes a contiguous run of the global stream: events[i] carries
  /// seq base_seq + i. Equivalent to offering each in order, except
  /// that every shard's WAL appends for the batch are group-committed
  /// — ONE fsync per touched shard instead of one per copy (the
  /// dominant cost under WalFsync::kEveryAppend). The batch's
  /// durability boundary is the commit at the end (CrashPoint::
  /// kWalGroupCommit per shard, ascending); callers must not
  /// acknowledge the batch upstream before this returns. Verdicts,
  /// accounting and the resulting detector state are identical to the
  /// per-event path. Returns the summed RouteResult.
  RouteResult offer_batch(std::span<const osn::Event> events,
                          std::uint64_t base_seq);

  /// Drains up to `max_per_shard` events into each shard's detector
  /// (0 = all). With multiple shards the drains run on the deterministic
  /// parallel layer, one fixed lane per shard — shard state is disjoint
  /// and this path crosses no durability boundary, so the result is
  /// identical to the serial drain for any SYBIL_THREADS. Down shards
  /// are skipped. Returns the total pumped.
  std::size_t pump(std::size_t max_per_shard = 0);

  /// pump() cut at a global stream position instead of a count: drains
  /// each live shard's queue while the head's explicit seq is <=
  /// `seq_bound` (ServiceSupervisor::pump_through per shard, same
  /// parallel lanes as pump). Idempotent at a fixed bound — the chaos
  /// orchestrator's pump boundaries are defined this way so a
  /// recovered shard can be re-driven through the exact boundary
  /// sequence of an undisturbed run. Returns the total pumped.
  std::size_t pump_through(std::uint64_t seq_bound);

  /// Sweeps every shard (parallel per shard, like pump). Returns the
  /// total newly flagged, *before* ownership filtering (non-owner
  /// replicas may flag accounts the merge later drops).
  std::size_t sweep_flags(graph::Time now);

  /// Checkpoints every shard at its current WAL position.
  void checkpoint_now();

  /// Pumps and finishes every shard; checkpoints unless told not to.
  void flush(bool checkpoint = true);

  /// Owner-filtered, canonically merged flags: each shard's drained
  /// records are kept only where shard_of(account) owns them, then the
  /// union is sorted by (flagged_at, account) — a total order, since an
  /// account flags at most once globally after filtering.
  core::FlagBatch take_flagged();

  /// Takes shard `i` out of service, destroying its supervisor — the
  /// in-process analogue of the shard's host dying (buffered WAL bytes
  /// flush on close, exactly the durability a crashed process's page
  /// cache would drain). While down: copies routed to it are skipped
  /// and counted in copies_skipped_down() (owed, not routed — the
  /// routed == delivered + suppressed identity keeps holding on the
  /// live fleet), pump/sweep/checkpoint/flush/take_flagged ignore it,
  /// accounting_ok() checks only live shards, and next_seq() is NOT a
  /// valid resume point (the dead shard's frontier entry is its last
  /// in-memory value, which can overstate what is durable) — call
  /// restart_shard(i) first. A caller that keeps offering live traffic
  /// while a shard is down MUST, when a crash unwinds mid-offer,
  /// re-offer the interrupted (event, seq) before any later seq:
  /// lower-indexed shards already hold that seq, and advancing past it
  /// would strand it below their frontiers forever (the min-frontier
  /// contract assumes each seq is offered until every live target has
  /// it). Typically invoked from inside a ShardCrashHook after an
  /// InjectedCrash unwinds out of offer().
  void mark_down(std::uint32_t i);
  bool is_down(std::uint32_t i) const;
  std::uint32_t down_count() const noexcept;
  std::uint64_t copies_skipped_down() const noexcept {
    return copies_skipped_down_;
  }

  /// Replaces shard `i` with a fresh supervisor recovered from its own
  /// directory — the single-shard crash path (clears the down state if
  /// mark_down(i) preceded it). The caller must then re-drive the
  /// global stream from the *router's* next_seq() (the minimum
  /// frontier, not the restarted shard's: the crash may have left a
  /// later-ordered shard missing a seq the victim already made
  /// durable). Every shard's frontier suppresses copies it has. Safe
  /// to call repeatedly on the same shard across one stream — the
  /// frontier math never assumes shards recover together (regression-
  /// tested with one shard restarted twice mid-stream).
  RecoveryReport restart_shard(std::uint32_t i);

  /// Global redelivery frontier: the minimum shard frontier. Re-driving
  /// the stream from here reaches every missing copy; everything below
  /// it is durable wherever it was routed. Only meaningful with no
  /// shard down (see mark_down).
  std::uint64_t next_seq() const noexcept;

  std::uint32_t shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Throws std::logic_error for a down shard (there is no supervisor
  /// to hand out until restart_shard brings one back).
  ServiceSupervisor& shard(std::uint32_t i);
  const ServiceSupervisor& shard(std::uint32_t i) const;
  std::uint32_t owner_of(graph::NodeId id) const noexcept {
    return shard_of(id, static_cast<std::uint32_t>(shards_.size()));
  }

  std::uint64_t offers() const noexcept { return offers_; }
  std::uint64_t copies_routed() const noexcept { return copies_routed_; }
  std::uint64_t copies_delivered() const noexcept { return copies_delivered_; }
  std::uint64_t copies_suppressed() const noexcept {
    return copies_suppressed_;
  }

  /// Every shard's identity, plus the router-aggregated one, plus
  /// frontier consistency (frontier[i] == shard i's next_seq).
  bool accounting_ok() const noexcept;

  /// Canonical JSON: {"shards":N,"offers":...,"copies":{...},
  /// "aggregate":{summed replay-exact counters},"per_shard":[...]}.
  /// Deterministic for any SYBIL_THREADS, like the per-shard JSON it
  /// embeds.
  std::string stats_json() const;

 private:
  ServiceOptions shard_options(std::uint32_t i) const;
  void deliver(std::uint32_t i, const osn::Event& e, std::uint64_t seq,
               RouteResult& result);
  void route_one(const osn::Event& e, std::uint64_t seq,
                 RouteResult& result);

  ShardRouterOptions options_;
  std::vector<std::unique_ptr<ServiceSupervisor>> shards_;
  /// Per-shard redelivery frontier (mirrors each shard's next_seq()).
  std::vector<std::uint64_t> frontier_;
  /// 1 where mark_down() killed the shard (shards_[i] is null there).
  std::vector<unsigned char> down_;
  /// offer_batch scratch: 1 where shard i has an open WAL commit group
  /// (opened lazily at its first delivered copy of the batch).
  std::vector<unsigned char> group_open_;
  bool in_batch_ = false;
  bool started_ = false;

  std::uint64_t offers_ = 0;
  std::uint64_t copies_routed_ = 0;
  std::uint64_t copies_delivered_ = 0;
  std::uint64_t copies_suppressed_ = 0;
  std::uint64_t copies_skipped_down_ = 0;
};

}  // namespace sybil::service
