// Supervised, crash-fault-tolerant detection service.
//
// ServiceSupervisor wraps the StreamDetector + RealTimeDetector pair
// behind a durable event path (the deployment posture the paper's
// Section 2.3 pipeline implies — a service banning ~100k accounts
// cannot drop or double-count friend-request events across restarts):
//
//   offer(event) ──admission──▶ WAL append ──▶ ingest queue
//                                                 │ pump()
//                                                 ▼
//                                        StreamDetector::ingest
//
// Every offered event is WAL-logged with its admission verdict before
// anything else happens; periodic checkpoints capture exact detector
// state plus the WAL position; recovery (start()) loads the newest
// valid checkpoint generation — falling back past corrupt ones — and
// replays the WAL suffix, re-executing recorded admission verdicts.
// The recovered service is byte-identical to one that never crashed:
// same verdicts, same features, same accounting JSON (tested at every
// crash point; docs/ROBUSTNESS.md §Recovery model).
//
// Overload control: a bounded ingest queue with three degradation
// tiers (DetectorOptions::overload) — full service, shed-low-priority,
// flag-sweep-only — entered at depth watermarks and left with
// hysteresis. Ban events are never shed. The accounting identity
//
//   offered == applied + deduped + dead-lettered + buffered
//              + queued + shed
//
// extends the hardened-ingest invariant and holds at every instant
// (accounting_ok()).
//
// Storage degradation (the fourth degradation response, alongside the
// three queue tiers): when the disk under the WAL rejects writes
// (ENOSPC/EIO — io::VfsError), the supervisor does not crash and does
// not lose the offer. It enters storage-degraded mode: verdicts keep
// being served from memory, WAL appends accumulate in the writer's
// bounded in-memory buffer, checkpointing is suspended (counted, not
// silently skipped), and writes are retried on a deterministic capped
// exponential backoff. If the buffer fills before the disk recovers,
// offer() fails loudly with a typed StorageBufferOverflow. When the
// fault window closes (a retry succeeds), the whole backlog flushes and
// full durability resumes — a run that degraded through a disk-fault
// window is byte-identical (flags, stats_json) to one that never did
// (docs/ROBUSTNESS.md §Storage fault model).
//
// Threading: the supervisor is single-threaded by design — determinism
// is the property the recovery proof rests on. SYBIL_THREADS affects
// nothing on this path (asserted by the recovery tests at 1 and 8).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/detector_options.h"
#include "core/realtime_detector.h"
#include "core/stream_detector.h"
#include "service/checkpoint.h"
#include "service/wal.h"

namespace sybil::service {

class DefenseScorer;

/// Explicit transport seqs live below this bound; values at or above it
/// are reserved for StreamDetector's auto-assigned seqs plus the
/// kAutoSeq sentinel, and never advance the redelivery frontier.
inline constexpr std::uint64_t kExplicitSeqLimit = std::uint64_t{1} << 63;

/// Storage-degraded mode policy (ServiceOptions::storage).
struct StorageOptions {
  /// Degraded-mode buffer bound: offers that would leave more than this
  /// many records unflushed throw StorageBufferOverflow. The buffer is
  /// the WAL writer's retained write buffer, so nothing is copied.
  std::size_t buffer_records = 4096;
  /// Retry cadence, measured in offers (the supervisor's only clock —
  /// wall time would break replay determinism): first retry after this
  /// many offers, doubling per failure up to the cap.
  std::uint64_t retry_backoff = 4;
  std::uint64_t retry_backoff_cap = 64;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Thrown by offer() when the disk-fault window outlives the bounded
/// degraded-mode buffer: the loud, typed end of graceful degradation.
/// The offer was NOT logged; the supervisor remains usable (still
/// degraded) and the caller decides whether to drop, spill or abort.
class StorageBufferOverflow : public std::runtime_error {
 public:
  StorageBufferOverflow(std::uint32_t shard, std::uint64_t buffered,
                        std::size_t bound)
      : std::runtime_error(
            "storage-degraded buffer full on shard " + std::to_string(shard) +
            ": " + std::to_string(buffered) + " records buffered (bound " +
            std::to_string(bound) + ") and the disk still rejects writes"),
        shard_(shard),
        buffered_(buffered) {}
  std::uint32_t shard() const noexcept { return shard_; }
  std::uint64_t buffered() const noexcept { return buffered_; }

 private:
  std::uint32_t shard_;
  std::uint64_t buffered_;
};

struct ServiceOptions {
  core::DetectorOptions detector{};
  /// Service state root: WAL segments under <dir>/wal, checkpoint
  /// generations under <dir>/ckpt. Created on demand.
  std::string dir;
  /// Partition identity when this supervisor is one shard of a
  /// ShardRouter (service/router.h): stamped into WAL segment headers
  /// and checkpoints, namespaces the operational metrics as
  /// "service.shard.<id>.*" (aggregated into "service.*"), and makes
  /// recovery refuse state written by any other shard. The standalone
  /// default (shard 0 of 1) keeps the PR 5 behaviour: plain "service.*"
  /// metric names and no second copy.
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 1;
  WalFsync wal_fsync = WalFsync::kEveryAppend;
  std::uint64_t wal_segment_records = 4096;
  /// Take a checkpoint whenever the WAL reaches a multiple of this many
  /// records (0 = only explicit checkpoint_now()/flush() calls).
  /// Index-based, not counter-based, so an uninterrupted run and a
  /// recovered run checkpoint at the same stream positions.
  std::uint64_t checkpoint_every = 10000;
  /// Checkpoint generations kept on disk (the corrupt-latest fallback
  /// depth); older generations and fully-covered WAL segments are
  /// pruned after each successful checkpoint.
  std::size_t checkpoint_retain = 2;
  /// Test seam: invoked at every durability boundary (see CrashPoint).
  CrashHook crash_hook{};
  /// Storage backend for every durable path this supervisor owns — WAL
  /// segments, checkpoint containers, pruning (null → io::default_vfs()).
  /// Fault-injection tests and the chaos [disk] section hand each shard
  /// its own io::FaultyVfs.
  io::Vfs* vfs = nullptr;
  /// Storage-degraded mode policy (see file comment).
  StorageOptions storage{};

  /// Throws std::invalid_argument naming the offending field (also
  /// validates the embedded DetectorOptions and StorageOptions).
  void validate() const;
};

/// What start() found and did — the typed recovery outcome.
struct RecoveryReport {
  /// No usable checkpoint generation existed (first boot, or every
  /// generation corrupt); state was rebuilt from the full WAL.
  bool cold_start = true;
  /// Generation recovered from (empty on cold start).
  std::string checkpoint_file;
  std::uint64_t checkpoint_position = 0;
  /// Corrupt generations skipped before a valid one loaded.
  std::uint64_t generations_discarded = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t records_truncated = 0;
  std::uint64_t torn_tails_healed = 0;
  /// WAL index where offers resume. Events the caller offered at or
  /// past this index before the crash never became durable (torn tail)
  /// and must be offered again — at-least-once delivery upstream plus
  /// the WAL's exactly-once replay below this index.
  std::uint64_t next_index = 0;
  /// Redelivery frontier: one past the highest explicit transport seq
  /// that is durable on this shard (checkpoint next_seq joined with the
  /// replayed WAL suffix). A router re-driving the global stream from
  /// any earlier point must suppress seqs below this before they reach
  /// offer(), keeping the shard's WAL duplicate-free.
  std::uint64_t next_seq = 0;
};

class ServiceSupervisor {
 public:
  /// Validates options and builds the detectors; no I/O until start().
  explicit ServiceSupervisor(const ServiceOptions& options);
  ~ServiceSupervisor();
  ServiceSupervisor(const ServiceSupervisor&) = delete;
  ServiceSupervisor& operator=(const ServiceSupervisor&) = delete;

  /// Recovers state (checkpoint + WAL replay) and opens the WAL for
  /// appending. Must be called exactly once, before any offer/pump.
  RecoveryReport start();

  /// Admission control + WAL + enqueue for one event. Returns true if
  /// the event was admitted, false if shed (it is still WAL-logged
  /// either way, so recovery reconstructs shed accounting exactly).
  /// Ban events are always admitted. Throws io::SnapshotError if the
  /// WAL cannot be written — an event that cannot be made durable is
  /// never silently applied.
  bool offer(const osn::Event& e,
             std::uint64_t seq = core::StreamDetector::kAutoSeq);

  /// Group-commit bracket for a run of offer() calls (WalWriter::
  /// begin_group). Between these, WAL appends buffer and the single
  /// commit fsync in commit_offer_batch() is the batch's durability
  /// boundary — callers must not acknowledge offers upstream until it
  /// returns. Admission verdicts, accounting and queue effects of each
  /// offer are unchanged. Returns records committed.
  void begin_offer_batch();
  std::uint64_t commit_offer_batch();
  /// Unwind path: drops an open group without committing (see
  /// WalWriter::abort_group). Safe before start() and with no group.
  void abort_offer_batch() noexcept {
    if (wal_) wal_->abort_group();
  }

  /// Drains up to `max_events` queued events (0 = all) into the
  /// detector. Returns how many were pumped.
  std::size_t pump(std::size_t max_events = 0);

  /// Drains queued events while their explicit transport seq is <=
  /// `seq_bound` (auto-seq records stop the drain too — they carry no
  /// position in the global stream). The queue is seq-ascending when
  /// fed through a ShardRouter, so this is pump() cut at a stream
  /// position instead of a count — and it is idempotent at a fixed
  /// bound, which is what lets a chaos orchestrator *re*-drive a
  /// recovered shard through the exact pump boundaries of an
  /// undisturbed run (docs/ROBUSTNESS.md §Scenario harness). Returns
  /// how many were pumped.
  std::size_t pump_through(std::uint64_t seq_bound);

  /// Flag-sweep-only tier's periodic pass: re-evaluates existing
  /// evidence without new ingestion. Returns newly flagged count.
  std::size_t sweep_flags(graph::Time now);

  /// Takes an incremental checkpoint at the current WAL position and
  /// prunes old generations / covered WAL segments.
  void checkpoint_now();

  /// End of stream: pump everything, drain the detector's reorder
  /// buffer, checkpoint (skippable for huge throwaway runs where
  /// serializing multi-GB detector state buys nothing). After flush()
  /// the service can keep ingesting.
  void flush(bool checkpoint = true);

  /// Publishes detector-owned operational counters (per-reason dead
  /// letters) into the metric registry under this shard's namespace,
  /// as deltas since the last publish. Called from pump()/flush();
  /// exposed so tests and ops loops can force a publish point.
  void publish_metrics();

  /// Drains the detector's newly flagged accounts. When the defense
  /// tier is on (DetectorOptions::defense), each record is annotated
  /// with the scorer's rolling rank/clustering columns — a second
  /// signal that never changes *who* is flagged (docs/DEFENSES.md).
  core::FlagBatch take_flagged();

  core::ServiceTier tier() const noexcept { return tier_; }
  std::size_t queue_depth() const noexcept { return queue_.size(); }
  const RecoveryReport& recovery() const noexcept { return recovery_; }

  // ---- Storage-degraded mode (see file comment) ----

  /// True while the disk under the WAL is rejecting writes and appends
  /// are accumulating in the bounded in-memory buffer.
  bool storage_degraded() const noexcept { return storage_degraded_; }
  /// Records currently buffered un-durably (0 when not degraded and
  /// outside an open offer batch).
  std::uint64_t storage_buffered() const noexcept {
    return wal_ ? wal_->unsynced_records() : 0;
  }
  /// The fault kind that triggered the current/most recent degradation.
  io::VfsFaultKind storage_error_kind() const noexcept {
    return storage_error_kind_;
  }
  /// Forces one storage retry NOW regardless of backoff (the chaos
  /// orchestrator calls this when a fault window closes). Returns true
  /// if the service is fully durable afterwards (including the
  /// not-degraded case). Throws only for power-loss faults, which are
  /// not retryable in-process.
  bool retry_storage_now();

  // Storage-incident counters (ops-only, not in stats_json: a degraded
  // run must keep stats_json byte-identical to an undisturbed one).
  std::uint64_t storage_degraded_entries() const noexcept {
    return storage_entries_;
  }
  std::uint64_t storage_degraded_exits() const noexcept {
    return storage_exits_;
  }
  std::uint64_t storage_retries() const noexcept { return storage_retries_; }
  std::uint64_t storage_retry_failures() const noexcept {
    return storage_retry_failures_;
  }
  std::uint64_t storage_checkpoints_suspended() const noexcept {
    return storage_checkpoints_suspended_;
  }

  // Replay-exact workload counters (the same values stats_json reports).
  std::uint64_t offered() const noexcept { return offered_; }
  std::uint64_t admitted() const noexcept { return admitted_; }
  std::uint64_t pumped() const noexcept { return pumped_; }
  std::uint64_t shed_low_priority() const noexcept {
    return shed_low_priority_;
  }
  std::uint64_t shed_sweep_only() const noexcept { return shed_sweep_only_; }
  std::uint64_t shed_capacity() const noexcept { return shed_capacity_; }
  std::uint64_t shed_total() const noexcept {
    return shed_low_priority_ + shed_sweep_only_ + shed_capacity_;
  }
  std::uint64_t tier_transitions() const noexcept {
    return tier_transitions_;
  }
  std::uint64_t sweeps() const noexcept { return sweeps_; }
  std::uint64_t sweep_flagged() const noexcept { return sweep_flagged_; }
  /// One past the highest explicit seq offered (the live redelivery
  /// frontier; equals recovery().next_seq right after start()).
  std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// The workload-accounting identity, checkable at any instant.
  bool accounting_ok() const noexcept;

  /// Deterministic accounting snapshot as canonical JSON — the
  /// "metrics JSON" the recovery-determinism tests pin byte-for-byte.
  /// Contains only replay-exact workload counters (offered/shed/
  /// applied/deduped/dead-letter-by-reason/flagged/...); operational
  /// incident counters (checkpoints written, fsyncs, recoveries) live
  /// in the global metrics registry, which recovery legitimately
  /// perturbs (docs/OBSERVABILITY.md §service.*).
  std::string stats_json() const;

  core::StreamDetector& detector() noexcept { return detector_; }
  const core::StreamDetector& detector() const noexcept { return detector_; }
  core::RealTimeDetector& realtime() noexcept { return realtime_; }
  /// The defense tier's scorer, or nullptr when the tier is off.
  const DefenseScorer* defense() const noexcept { return scorer_.get(); }

 private:
  struct Metrics;  // per-instance handles; see supervisor.cpp

  void require_started(const char* what) const;
  void reset_state();
  void update_tier();
  void maybe_checkpoint();
  void enter_storage_degraded(const io::VfsError& err);
  void storage_tick();

  ServiceOptions options_;
  core::StreamDetector detector_;
  core::RealTimeDetector realtime_;
  /// Built iff options_.detector.defense.enabled; observes every pumped
  /// event, refreshes at every flag sweep, state rides in checkpoints.
  std::unique_ptr<DefenseScorer> scorer_;
  std::unique_ptr<Metrics> metrics_;
  std::unique_ptr<WalWriter> wal_;
  std::deque<WalRecord> queue_;
  core::ServiceTier tier_ = core::ServiceTier::kFull;
  RecoveryReport recovery_{};
  bool started_ = false;

  // Replay-exact workload counters (mirrored into checkpoints).
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t pumped_ = 0;
  std::uint64_t shed_low_priority_ = 0;
  std::uint64_t shed_sweep_only_ = 0;
  std::uint64_t shed_capacity_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t sweep_flagged_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t tier_transitions_ = 0;  // ops-only, not in stats_json
  // Storage-degraded mode state + incident counters (all ops-only).
  bool storage_degraded_ = false;
  io::VfsFaultKind storage_error_kind_ = io::VfsFaultKind::kIoError;
  std::uint64_t storage_backoff_ = 0;   // current backoff, in offers
  std::uint64_t storage_retry_in_ = 0;  // offers until the next retry
  std::uint64_t storage_entries_ = 0;
  std::uint64_t storage_exits_ = 0;
  std::uint64_t storage_retries_ = 0;
  std::uint64_t storage_retry_failures_ = 0;
  std::uint64_t storage_checkpoints_suspended_ = 0;
  /// Registry values already published per dead-letter reason, so
  /// publish_metrics() emits exact deltas (ops-only, not checkpointed).
  std::uint64_t published_deadletter_[core::kStreamErrorCodeCount] = {};
  std::uint64_t published_deadletter_dropped_ = 0;
  /// Scorer counters already published (same delta pattern; ops-only).
  std::uint64_t published_defense_edges_ = 0;
  std::uint64_t published_defense_dirty_ = 0;
  std::uint64_t published_defense_rounds_ = 0;
  std::uint64_t published_defense_full_ = 0;
};

}  // namespace sybil::service
